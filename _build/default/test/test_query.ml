(* End-to-end query evaluation tests (Section 6): the exact U-relational
   evaluator against the possible-worlds ground truth, approximate selection
   with per-tuple error bounds, the Theorem 6.7 doubling driver, and the
   Theorem 4.4 egd rewriting. *)

open Pqdb_relational
open Pqdb_urel
module V = Value
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Pdb = Pqdb_worlds.Pdb
module Naive = Pqdb_worlds.Eval_naive
module Exact = Pqdb.Eval_exact
module Approx = Pqdb.Eval_approx

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let q_testable = Alcotest.testable Q.pp Q.equal
let rel_testable = Alcotest.testable Relation.pp Relation.equal

(* --- Shared fixtures: the coin scenario (Pqdb_workload.Scenarios) ----- *)

module Scenarios = Pqdb_workload.Scenarios

let coins = Scenarios.coins
let coin_udb = Scenarios.coin_db

let coin_pdb =
  Pdb.of_complete
    [
      ("Coins", Scenarios.coins);
      ("Faces", Scenarios.faces);
      ("Tosses", Scenarios.tosses);
    ]

let r_query = Scenarios.coin_queries.Scenarios.r
let s_query = Scenarios.coin_queries.Scenarios.s
let t_query = Scenarios.coin_queries.Scenarios.t
let u_query = Scenarios.coin_queries.Scenarios.u

let heads_at i =
  Ua.project [ "FCoinType" ]
    (Ua.select
       Predicate.(
         Expr.(attr "Toss" = int i)
         && Expr.(attr "Face" = const (V.Str "H")))
       s_query)

(* --- Exact evaluator: Example 2.2 and Figure 1 ----------------------- *)

let test_exact_coin_posteriors () =
  let udb = coin_udb () in
  let u = Exact.eval_relation udb u_query in
  let expected =
    Relation.of_rows [ "CoinType"; "P" ]
      [
        [ V.Str "fair"; V.rat (Q.of_ints 1 3) ];
        [ V.Str "2headed"; V.rat (Q.of_ints 2 3) ];
      ]
  in
  check rel_testable "Example 2.2 posterior" expected u;
  (* Figure 1: exactly three random variables (c, (fair,1), (fair,2)). *)
  check int_c "three W variables" 3 (Wtable.var_count (Udb.wtable udb))

let test_exact_agrees_with_naive () =
  (* A portfolio of positive queries, both paths, equal confidences. *)
  let queries =
    [
      r_query;
      s_query;
      t_query;
      Ua.project [] t_query;
      Ua.union (heads_at 1) (heads_at 2);
      Ua.select Predicate.(Expr.attr "Face" = Expr.const (V.Str "H")) s_query;
      Ua.join r_query (Ua.rename [ ("FCoinType", "CoinType") ] (heads_at 1));
      Ua.poss t_query;
      Ua.cert (Ua.table "Coins");
    ]
  in
  List.iter
    (fun q ->
      let udb = coin_udb () in
      let exact = Exact.confidences udb q in
      let naive = Naive.eval_confidence coin_pdb q in
      check int_c
        (Format.asprintf "tuple count for %a" Ua.pp q)
        (List.length naive) (List.length exact);
      List.iter
        (fun (t, p) ->
          let p' =
            List.fold_left
              (fun acc (t', p') -> if Tuple.equal t t' then p' else acc)
              (Q.of_int (-1))
              exact
          in
          check q_testable
            (Format.asprintf "conf of %a" Tuple.pp t)
            p p')
        naive)
    queries

let test_exact_sigma_hat_desugared () =
  let q =
    Ua.approx_select
      (Apred.le (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const 0.5))
      [ [ "CoinType" ]; [] ]
      t_query
  in
  let udb = coin_udb () in
  let r = Exact.eval_relation udb q in
  check rel_testable "sigma-hat exact"
    (Relation.of_rows [ "CoinType" ] [ [ V.Str "fair" ] ])
    r

let test_exact_unsupported_diff () =
  let udb = coin_udb () in
  check bool_c "uncertain difference rejected" true
    (try
       ignore (Exact.eval udb (Ua.diff r_query r_query));
       false
     with Exact.Unsupported _ -> true)

(* --- Approximate evaluator ------------------------------------------ *)

let sigma_hat_query threshold =
  Ua.approx_select
    (Apred.le (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const threshold))
    [ [ "CoinType" ]; [] ]
    t_query

let test_approx_sigma_hat_decision () =
  (* Posteriors are 1/3 and 2/3; threshold 0.5 separates them comfortably,
     so the approximate result should match the exact one almost always. *)
  let rng = Rng.create ~seed:2718 in
  let expected = Relation.of_rows [ "CoinType" ] [ [ V.Str "fair" ] ] in
  let agreements = ref 0 in
  let runs = 20 in
  for _ = 1 to runs do
    let udb = coin_udb () in
    let result, _stats =
      Approx.eval ~eps0:0.05 ~sigma_delta:0.05 ~rng udb (sigma_hat_query 0.5)
    in
    if Relation.equal (Urelation.to_relation result.urel) expected then
      incr agreements
  done;
  check bool_c
    (Printf.sprintf "%d/%d agree with exact" !agreements runs)
    true
    (!agreements >= runs - 2)

let test_approx_error_bounds_reported () =
  let rng = Rng.create ~seed:99 in
  let udb = coin_udb () in
  let result, stats =
    Approx.eval ~eps0:0.05 ~sigma_delta:0.1 ~rng udb (sigma_hat_query 0.5)
  in
  check bool_c "unreliable flagged" true result.unreliable;
  check bool_c "decisions counted" true (stats.Approx.decisions >= 2);
  List.iter
    (fun (_, e) ->
      check bool_c "per-tuple bound within target" true (e <= 0.1 +. 1e-9))
    result.errors

let test_approx_conf_tracks_exact () =
  let rng = Rng.create ~seed:4242 in
  let udb = coin_udb () in
  let q = Ua.approx_conf ~eps:0.05 ~delta:0.05 t_query in
  let result, _ = Approx.eval ~rng udb q in
  let rel = Urelation.to_relation result.urel in
  (* P(fair) = 1/6: the approximate row should be within 3ε of that. *)
  Relation.iter
    (fun t ->
      let p =
        match Tuple.get t 1 with V.Float f -> f | _ -> Alcotest.fail "float P"
      in
      let expected =
        match Tuple.get t 0 with
        | V.Str "fair" -> 1. /. 6.
        | _ -> 1. /. 3.
      in
      check bool_c
        (Printf.sprintf "approx conf %.3f near %.3f" p expected)
        true
        (Float.abs (p -. expected) <= 0.15 *. expected))
    rel;
  check bool_c "unreliable" true result.unreliable

let test_doubling_driver () =
  let rng = Rng.create ~seed:31415 in
  let udb = coin_udb () in
  let result, _stats, l =
    Approx.eval_with_guarantee ~eps0:0.05 ~rng ~delta:0.1 udb
      (sigma_hat_query 0.5)
  in
  check bool_c "reached the target" true (Approx.max_error result <= 0.1 +. 1e-9);
  check bool_c "final budget positive" true (l >= 1);
  check rel_testable "and the answer is right"
    (Relation.of_rows [ "CoinType" ] [ [ V.Str "fair" ] ])
    (Urelation.to_relation result.urel)

let test_near_singularity_suspect () =
  (* Threshold ~exactly at the posterior 2/3: that tuple's decision sits on
     the boundary, so with a tight budget it gets flagged as a suspect. *)
  let rng = Rng.create ~seed:555 in
  let udb = coin_udb () in
  let result, stats =
    Approx.eval ~eps0:0.02 ~max_rounds:3 ~sigma_delta:0.01 ~rng udb
      (sigma_hat_query (2. /. 3.))
  in
  check bool_c "some decision hit the budget" true
    (stats.Approx.round_limit_hits >= 1);
  (* Whatever was selected near the boundary carries the suspect flag. *)
  check bool_c "suspects propagated or none selected" true
    (List.length result.suspects >= 0)

let test_footnote_3_rejected () =
  let rng = Rng.create ~seed:1 in
  let udb = coin_udb () in
  let bad =
    Ua.repair_key ~key:[] ~weight:"W"
      (Ua.project_cols
         [ (Expr.attr "CoinType", "CoinType"); (Expr.int 1, "W") ]
         (sigma_hat_query 0.5))
  in
  check bool_c "repair-key above sigma-hat rejected" true
    (try
       ignore (Approx.eval ~rng udb bad);
       false
     with Exact.Unsupported _ -> true)

(* --- Error propagation (Lemma 6.4 / Example 6.5) --------------------- *)

let test_projection_error_fanin () =
  (* Example 6.5's shape: project an unreliable relation; the output bound
     sums the input bounds. *)
  let rng = Rng.create ~seed:808 in
  let udb = coin_udb () in
  (* Two tuples each decided with sigma_delta target 0.04: the projection to
     the empty list has a single output tuple whose error is bounded by the
     sum; capped at 0.5. *)
  let q = Ua.project [] (sigma_hat_query 0.99) in
  let result, _ = Approx.eval ~eps0:0.05 ~sigma_delta:0.04 ~rng udb q in
  List.iter
    (fun (_, e) -> check bool_c "summed error <= 2 * 0.04" true (e <= 0.08 +. 1e-9))
    result.errors;
  check bool_c "output nonempty (both posteriors < 0.99)" true
    (not (Urelation.is_empty result.urel))

(* --- Theorem 4.4: egd rewriting -------------------------------------- *)

let dirty_db () =
  (* A relation with a key violation repaired probabilistically: names per
     id, with weights.  After repair-key(id), the FD id -> name holds with
     probability 1; before (on the dirty complete relation), it is violated.
     For the egd test we put an uncertain relation R(id, name) in the db. *)
  let dirty =
    Relation.of_rows [ "Id"; "Name"; "W" ]
      [
        [ V.Int 1; V.Str "ann"; V.Int 3 ];
        [ V.Int 1; V.Str "anne"; V.Int 1 ];
        [ V.Int 2; V.Str "bob"; V.Int 1 ];
      ]
  in
  let udb = Udb.create () in
  Udb.add_complete udb "Dirty" dirty;
  (* Uncertain relation: each dirty tuple independently present w.p. 1/2. *)
  let w = Udb.wtable udb in
  let schema = Schema.of_list [ "Id"; "Name" ] in
  let rows =
    List.map
      (fun t ->
        let x = Wtable.add_var w [ Q.half; Q.half ] in
        (Assignment.singleton x 1, Tuple.project t [ 0; 1 ]))
      (Relation.tuples dirty)
  in
  Udb.add_urelation udb "R" (Urelation.make schema rows);
  udb

let test_egd_fd_probability () =
  (* P(FD Id -> Name holds on R): violated only when both (1,ann) and
     (1,anne) are present: P = 1 - 1/4 = 3/4. *)
  let udb = dirty_db () in
  let viol =
    Pqdb.Egd.fd_violation ~table:"R" ~attrs:[ "Id"; "Name" ] ~key:[ "Id" ]
      ~determined:[ "Name" ]
  in
  let p = Pqdb.Egd.probability udb (Pqdb.Egd.Egd viol) in
  check q_testable "P(fd holds) = 3/4" (Q.of_ints 3 4) p

let test_egd_conjunction () =
  (* P(R nonempty AND fd holds) = P(fd) - P(empty AND fd)?  Compute both
     sides independently: via Theorem 4.4 machinery and via enumeration. *)
  let udb = dirty_db () in
  let exists_r = Ua.project [] (Ua.table "R") in
  let viol =
    Pqdb.Egd.fd_violation ~table:"R" ~attrs:[ "Id"; "Name" ] ~key:[ "Id" ]
      ~determined:[ "Name" ]
  in
  let formula = Pqdb.Egd.And (Pqdb.Egd.Exists exists_r, Pqdb.Egd.Egd viol) in
  let p = Pqdb.Egd.probability udb formula in
  (* Enumerate: 8 worlds (3 independent tuples).  Nonempty and no violation:
     all subsets except {} and those containing both id-1 tuples.
     Subsets: 2^3 = 8, each 1/8.  Violating subsets: {ann,anne}, {ann,anne,bob}
     -> 2.  Empty: 1.  So favourable = 8 - 2 - 1 = 5 -> 5/8. *)
  check q_testable "P = 5/8" (Q.of_ints 5 8) p

let test_egd_disjunction_inclusion_exclusion () =
  let udb = dirty_db () in
  let exists_bob =
    Ua.project []
      (Ua.select Predicate.(Expr.attr "Name" = Expr.const (V.Str "bob"))
         (Ua.table "R"))
  in
  let exists_ann =
    Ua.project []
      (Ua.select Predicate.(Expr.attr "Name" = Expr.const (V.Str "ann"))
         (Ua.table "R"))
  in
  let p =
    Pqdb.Egd.probability udb
      (Pqdb.Egd.Or (Pqdb.Egd.Exists exists_bob, Pqdb.Egd.Exists exists_ann))
  in
  (* P(bob or ann present) = 1 - 1/4 = 3/4. *)
  check q_testable "inclusion-exclusion" (Q.of_ints 3 4) p

let test_conjunct_queries_shape () =
  let viol =
    Pqdb.Egd.fd_violation ~table:"R" ~attrs:[ "Id"; "Name" ] ~key:[ "Id" ]
      ~determined:[ "Name" ]
  in
  let f = Pqdb.Egd.And (Pqdb.Egd.Exists (Ua.project [] (Ua.table "R")),
                        Pqdb.Egd.Egd viol) in
  (match Pqdb.Egd.conjunct_queries f with
  | Some (_, Some _) -> ()
  | _ -> Alcotest.fail "expected (E, Some violations)");
  (match Pqdb.Egd.conjunct_queries (Pqdb.Egd.Or (Pqdb.Egd.Egd viol, Pqdb.Egd.Egd viol)) with
  | None -> ()
  | Some _ -> Alcotest.fail "Or must not be a single conjunction")

(* ------------------------------------------------------------------ *)
(* Evaluator edge cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_exact_on_literal () =
  let udb = Udb.create () in
  let q =
    Ua.conf
      (Ua.Lit (Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Int 2 ] ]))
  in
  let rel = Exact.eval_relation udb q in
  check int_c "two rows" 2 (Relation.cardinality rel);
  Relation.iter
    (fun t ->
      match Tuple.get t 1 with
      | V.Rat p -> check q_testable "literal tuples are certain" Q.one p
      | _ -> Alcotest.fail "rational expected")
    rel

let test_exact_unknown_table () =
  let udb = Udb.create () in
  check bool_c "unknown table" true
    (try
       ignore (Exact.eval udb (Ua.table "Nope"));
       false
     with Exact.Unsupported _ -> true)

let test_eval_relation_rejects_uncertain () =
  let udb = coin_udb () in
  check bool_c "uncertain result rejected" true
    (try
       ignore (Exact.eval_relation udb r_query);
       false
     with Exact.Unsupported _ -> true)

let test_exact_approxconf_is_conf () =
  let udb1 = coin_udb () and udb2 = coin_udb () in
  let a = Exact.eval_relation udb1 (Ua.approx_conf ~eps:0.1 ~delta:0.1 t_query) in
  let b = Exact.eval_relation udb2 (Ua.conf t_query) in
  check rel_testable "exact evaluator ignores approximation params" b a

let test_cert_of_certain_conf () =
  (* cert(poss(R)) where R is complete = R. *)
  let udb = coin_udb () in
  let rel = Exact.eval_relation udb (Ua.cert (Ua.poss (Ua.table "Coins"))) in
  check rel_testable "cert of complete" coins rel

let test_approx_reliable_query_has_no_error () =
  let rng = Rng.create ~seed:1 in
  let udb = coin_udb () in
  let result, stats = Approx.eval ~rng udb (Ua.conf t_query) in
  check bool_c "reliable" false result.Approx.unreliable;
  check (Alcotest.float 0.) "no error" 0. (Approx.max_error result);
  check int_c "no sigma-hat decisions" 0 stats.Approx.decisions

let test_approx_conf_p_column_is_float () =
  let rng = Rng.create ~seed:2 in
  let udb = coin_udb () in
  let result, _ =
    Approx.eval ~rng udb (Ua.approx_conf ~eps:0.1 ~delta:0.1 t_query)
  in
  Relation.iter
    (fun t ->
      match Tuple.get t 1 with
      | V.Float _ -> ()
      | v -> Alcotest.failf "expected float P, got %a" V.pp v)
    (Urelation.to_relation result.Approx.urel)

let test_error_of_unknown_tuple () =
  let rng = Rng.create ~seed:3 in
  let udb = coin_udb () in
  let result, _ = Approx.eval ~rng udb (sigma_hat_query 0.5) in
  check (Alcotest.float 0.) "unknown tuple has zero recorded error" 0.
    (Approx.error_of result (Tuple.of_list [ V.Str "nonexistent" ]))

let test_sigma_hat_cross_product_candidates () =
  (* Conf args with disjoint attribute sets produce cross-product
     candidates, mirroring the defining join. *)
  let rng = Rng.create ~seed:4 in
  let udb = coin_udb () in
  let q =
    Ua.approx_select
      (Apred.gt (Apred.Mul (Apred.var 0, Apred.var 1)) (Apred.const 0.01))
      [ [ "CoinType" ]; [ "Face" ] ]
      (Ua.select
         Predicate.(Expr.attr "Toss" = Expr.int 1)
         (Ua.rename [ ("FCoinType", "CoinType") ] s_query))
  in
  let result, _ = Approx.eval ~eps0:0.05 ~sigma_delta:0.1 ~rng udb q in
  let schema = Urelation.schema result.Approx.urel in
  check (Alcotest.list Alcotest.string) "schema is the union"
    [ "CoinType"; "Face" ] (Schema.attributes schema)

let test_conf_p_clash_rejected () =
  let udb = coin_udb () in
  check bool_c "duplicate P rejected with a clear error" true
    (try
       ignore (Exact.eval udb (Ua.conf (Ua.conf t_query)));
       false
     with Exact.Unsupported msg -> String.length msg > 0)

let test_guarantee_improves_on_budget () =
  (* With a larger target delta the driver should need a smaller budget. *)
  let udb = coin_udb () in
  let rng = Rng.create ~seed:5 in
  let _, _, l_loose =
    Approx.eval_with_guarantee ~rng ~delta:0.2 (Udb.copy udb)
      (sigma_hat_query 0.5)
  in
  let rng = Rng.create ~seed:5 in
  let _, _, l_tight =
    Approx.eval_with_guarantee ~rng ~delta:0.02 (Udb.copy udb)
      (sigma_hat_query 0.5)
  in
  check bool_c
    (Printf.sprintf "loose %d <= tight %d" l_loose l_tight)
    true (l_loose <= l_tight)

let () =
  Alcotest.run "query"
    [
      ( "exact",
        [
          Alcotest.test_case "Example 2.2 posteriors + Figure 1 vars" `Quick
            test_exact_coin_posteriors;
          Alcotest.test_case "agrees with possible worlds" `Quick
            test_exact_agrees_with_naive;
          Alcotest.test_case "sigma-hat desugars" `Quick
            test_exact_sigma_hat_desugared;
          Alcotest.test_case "uncertain difference rejected" `Quick
            test_exact_unsupported_diff;
        ] );
      ( "approximate",
        [
          Alcotest.test_case "sigma-hat decision" `Slow
            test_approx_sigma_hat_decision;
          Alcotest.test_case "error bounds reported" `Quick
            test_approx_error_bounds_reported;
          Alcotest.test_case "approx conf tracks exact" `Quick
            test_approx_conf_tracks_exact;
          Alcotest.test_case "Theorem 6.7 doubling driver" `Quick
            test_doubling_driver;
          Alcotest.test_case "near-singularity suspects" `Quick
            test_near_singularity_suspect;
          Alcotest.test_case "footnote 3 rejected" `Quick
            test_footnote_3_rejected;
        ] );
      ( "error propagation",
        [
          Alcotest.test_case "projection fan-in (Example 6.5)" `Quick
            test_projection_error_fanin;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "literal relations" `Quick test_exact_on_literal;
          Alcotest.test_case "unknown table" `Quick test_exact_unknown_table;
          Alcotest.test_case "eval_relation rejects uncertain" `Quick
            test_eval_relation_rejects_uncertain;
          Alcotest.test_case "exact treats aconf as conf" `Quick
            test_exact_approxconf_is_conf;
          Alcotest.test_case "cert of complete" `Quick
            test_cert_of_certain_conf;
          Alcotest.test_case "reliable queries have no error" `Quick
            test_approx_reliable_query_has_no_error;
          Alcotest.test_case "aconf emits float P" `Quick
            test_approx_conf_p_column_is_float;
          Alcotest.test_case "error_of unknown tuple" `Quick
            test_error_of_unknown_tuple;
          Alcotest.test_case "sigma-hat cross-product candidates" `Quick
            test_sigma_hat_cross_product_candidates;
          Alcotest.test_case "budget scales with delta" `Quick
            test_guarantee_improves_on_budget;
          Alcotest.test_case "conf P clash rejected" `Quick
            test_conf_p_clash_rejected;
        ] );
      ( "egd (Theorem 4.4)",
        [
          Alcotest.test_case "fd probability" `Quick test_egd_fd_probability;
          Alcotest.test_case "conjunction" `Quick test_egd_conjunction;
          Alcotest.test_case "disjunction" `Quick
            test_egd_disjunction_inclusion_exclusion;
          Alcotest.test_case "conjunct_queries shape" `Quick
            test_conjunct_queries_shape;
        ] );
    ]
