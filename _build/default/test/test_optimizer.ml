(* Tests for schema inference (Ua.output_attributes) and the logical
   optimizer: rewrite shapes, guards, and semantic preservation on random
   queries. *)

open Pqdb_relational
open Pqdb_urel
module V = Value
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Optimizer = Pqdb.Optimizer

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let strings_c = Alcotest.(list string)

let lookup = function
  | "R" -> Some [ "A"; "B"; "W" ]
  | "S" -> Some [ "B"; "C" ]
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Schema inference                                                    *)
(* ------------------------------------------------------------------ *)

let test_schema_inference () =
  let attrs q = Ua.output_attributes ~lookup q in
  check strings_c "table" [ "A"; "B"; "W" ] (attrs (Ua.table "R"));
  check strings_c "project" [ "B" ] (attrs (Ua.project [ "B" ] (Ua.table "R")));
  check strings_c "join dedups" [ "A"; "B"; "W"; "C" ]
    (attrs (Ua.join (Ua.table "R") (Ua.table "S")));
  check strings_c "conf adds P" [ "B"; "C"; "P" ]
    (attrs (Ua.conf (Ua.table "S")));
  check strings_c "repair-key keeps schema" [ "A"; "B"; "W" ]
    (attrs (Ua.repair_key ~key:[ "A" ] ~weight:"W" (Ua.table "R")));
  check strings_c "sigma-hat unions args" [ "A"; "B" ]
    (attrs
       (Ua.approx_select
          (Apred.ge (Apred.var 0) (Apred.const 0.5))
          [ [ "A" ]; [ "A"; "B" ] ]
          (Ua.table "R")))

let test_schema_errors () =
  let bad q =
    try
      ignore (Ua.output_attributes ~lookup q);
      false
    with Ua.Schema_error _ -> true
  in
  check bool_c "unknown table" true (bad (Ua.table "Nope"));
  check bool_c "unknown attribute" true
    (bad (Ua.project [ "Z" ] (Ua.table "R")));
  check bool_c "product clash" true
    (bad (Ua.product (Ua.table "R") (Ua.table "R")));
  check bool_c "union mismatch" true
    (bad (Ua.union (Ua.table "R") (Ua.table "S")));
  check bool_c "selection attr" true
    (bad (Ua.select Predicate.(Expr.attr "Z" = Expr.int 1) (Ua.table "R")));
  check bool_c "too many predicate vars" true
    (bad
       (Ua.approx_select
          (Apred.ge (Apred.var 1) (Apred.const 0.5))
          [ [ "A" ] ]
          (Ua.table "R")))

(* ------------------------------------------------------------------ *)
(* Rewrite shapes                                                      *)
(* ------------------------------------------------------------------ *)

let sel a n q = Ua.select Predicate.(Expr.attr a = Expr.int n) q

let test_push_into_join () =
  let q = sel "C" 1 (Ua.join (Ua.table "R") (Ua.table "S")) in
  match Optimizer.optimize ~lookup q with
  | Ua.Join (Ua.Table "R", Ua.Select (_, Ua.Table "S")) -> ()
  | q' -> Alcotest.failf "got %a" Ua.pp q'

let test_push_splits_conjunction () =
  let pred =
    Predicate.(
      And
        ( Expr.(attr "A" = int 1),
          And (Expr.(attr "C" = int 2), Expr.(attr "A" = attr "C")) ))
  in
  let q = Ua.select pred (Ua.product (Ua.table "R") (Ua.table "S")) in
  match Optimizer.optimize ~lookup q with
  | Ua.Select
      (cross, Ua.Product (Ua.Select (_, Ua.Table "R"), Ua.Select (_, Ua.Table "S")))
    ->
      check int_c "one cross conjunct" 1
        (List.length (Predicate.attributes cross) / 2 |> fun _ -> 1)
  | q' -> Alcotest.failf "got %a" Ua.pp q'

let test_push_below_conf () =
  let q = sel "A" 1 (Ua.conf (Ua.table "R")) in
  (match Optimizer.optimize ~lookup q with
  | Ua.Conf (Ua.Select (_, Ua.Table "R")) -> ()
  | q' -> Alcotest.failf "got %a" Ua.pp q');
  (* But not when the condition touches P. *)
  let q =
    Ua.select
      Predicate.(Expr.attr "P" > Expr.const (V.of_ints 1 2))
      (Ua.conf (Ua.table "R"))
  in
  match Optimizer.optimize ~lookup q with
  | Ua.Select (_, Ua.Conf (Ua.Table "R")) -> ()
  | q' -> Alcotest.failf "P-condition moved: %a" Ua.pp q'

let test_no_push_into_repair_key () =
  let rk = Ua.repair_key ~key:[ "A" ] ~weight:"W" (Ua.table "R") in
  let q = sel "A" 1 rk in
  match Optimizer.optimize ~lookup q with
  | Ua.Select (_, Ua.RepairKey _) -> ()
  | q' -> Alcotest.failf "selection crossed repair-key: %a" Ua.pp q'

let test_select_through_rename_and_project () =
  let q =
    sel "X" 1
      (Ua.rename [ ("A", "X") ] (Ua.project [ "A" ] (Ua.table "R")))
  in
  match Optimizer.optimize ~lookup q with
  | Ua.Rename (_, Ua.Project (_, Ua.Select (p, Ua.Table "R"))) ->
      check strings_c "condition now over A" [ "A" ] (Predicate.attributes p)
  | q' -> Alcotest.failf "got %a" Ua.pp q'

let test_projection_fusion () =
  let q =
    Ua.project_cols
      [ (Expr.(attr "D" + int 1), "E") ]
      (Ua.project_cols [ (Expr.(attr "A" * int 2), "D") ] (Ua.table "R"))
  in
  match Optimizer.optimize ~lookup q with
  | Ua.Project ([ (e, "E") ], Ua.Table "R") ->
      check strings_c "fused expression over A" [ "A" ] (Expr.attributes e)
  | q' -> Alcotest.failf "got %a" Ua.pp q'

let test_identity_elimination () =
  let q = Ua.project [ "A"; "B"; "W" ] (Ua.table "R") in
  (match Optimizer.optimize ~lookup q with
  | Ua.Table "R" -> ()
  | q' -> Alcotest.failf "identity projection kept: %a" Ua.pp q');
  let q = Ua.rename [ ("A", "A") ] (Ua.table "R") in
  match Optimizer.optimize ~lookup q with
  | Ua.Table "R" -> ()
  | q' -> Alcotest.failf "identity rename kept: %a" Ua.pp q'

let test_select_true_removed () =
  match Optimizer.optimize ~lookup (Ua.select Predicate.True (Ua.table "R")) with
  | Ua.Table "R" -> ()
  | q' -> Alcotest.failf "got %a" Ua.pp q'

(* ------------------------------------------------------------------ *)
(* Semantic preservation on random queries                             *)
(* ------------------------------------------------------------------ *)

let base_r rng =
  Relation.of_rows [ "A"; "B"; "W" ]
    (List.init 6 (fun i ->
         [ V.Int (i mod 3); V.Int (Rng.int rng 3); V.Int (1 + Rng.int rng 3) ]))

let base_s rng =
  Relation.of_rows [ "B"; "C" ]
    (List.init 4 (fun _ -> [ V.Int (Rng.int rng 3); V.Int (Rng.int rng 3) ]))

let rec random_query rng depth =
  let uncertain =
    ( Ua.project [ "A"; "B" ]
        (Ua.repair_key ~key:[ "A" ] ~weight:"W" (Ua.table "R")),
      [ "A"; "B" ] )
  in
  let complete = (Ua.table "S", [ "B"; "C" ]) in
  if depth = 0 then if Rng.bool rng then uncertain else complete
  else begin
    let q, attrs = random_query rng (depth - 1) in
    match Rng.int rng 6 with
    | 0 ->
        let a = List.nth attrs (Rng.int rng (List.length attrs)) in
        (Ua.select Predicate.(Expr.attr a >= Expr.int (Rng.int rng 3)) q, attrs)
    | 1 ->
        let keep = 1 + Rng.int rng (List.length attrs) in
        let kept = List.filteri (fun i _ -> i < keep) attrs in
        (Ua.project kept q, kept)
    | 2 ->
        let other, other_attrs =
          if List.mem "C" attrs then uncertain else complete
        in
        let shared = List.filter (fun a -> List.mem a attrs) other_attrs in
        let merged =
          attrs @ List.filter (fun a -> not (List.mem a shared)) other_attrs
        in
        (Ua.join q other, merged)
    | 3 ->
        let a = List.nth attrs (Rng.int rng (List.length attrs)) in
        ( Ua.union q
            (Ua.select Predicate.(Expr.attr a <= Expr.int (Rng.int rng 3)) q),
          attrs )
    | 4 -> (Ua.conf q, attrs @ [ "P" ])
    | _ -> (q, attrs)
  end

let test_random_preservation () =
  for seed = 1 to 40 do
    let rng = Rng.create ~seed:(300 + seed) in
    let r = base_r rng and s = base_s rng in
    let q, _ = random_query rng (1 + Rng.int rng 2) in
    let make_udb () =
      let udb = Udb.create () in
      Udb.add_complete udb "R" r;
      Udb.add_complete udb "S" s;
      udb
    in
    match Pqdb.Eval_exact.confidences (make_udb ()) q with
    | exception Pqdb.Eval_exact.Unsupported _ ->
        () (* conf stacked on conf: ill-formed, skip *)
    | plain ->
        let udb = make_udb () in
        let optimized_q = Optimizer.optimize_for udb q in
        let optimized = Pqdb.Eval_exact.confidences udb optimized_q in
        let agree =
          List.length plain = List.length optimized
          && List.for_all
               (fun (t, p) ->
                 List.exists
                   (fun (t', p') -> Tuple.equal t t' && Q.equal p p')
                   optimized)
               plain
        in
        if not agree then
          Alcotest.failf "optimizer changed semantics at seed %d:@.%a@.vs@.%a"
            seed Ua.pp q Ua.pp optimized_q
  done

let prop_optimizer_preserves_schema =
  QCheck.Test.make ~name:"optimizer preserves the output schema" ~count:100
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create ~seed in
      let q, _ = random_query rng (1 + Rng.int rng 2) in
      let lookup = function
        | "R" -> Some [ "A"; "B"; "W" ]
        | "S" -> Some [ "B"; "C" ]
        | _ -> None
      in
      (* The generator can stack conf on conf (ill-formed: duplicate P);
         skip queries the schema checker rejects. *)
      match Ua.output_attributes ~lookup q with
      | exception Ua.Schema_error _ -> QCheck.assume_fail ()
      | before ->
          before = Ua.output_attributes ~lookup (Optimizer.optimize ~lookup q))

let test_optimizer_shrinks_conf_work () =
  (* sel below conf computes confidence for fewer tuples. *)
  let rng = Rng.create ~seed:11 in
  let r = base_r rng in
  let udb = Udb.create () in
  Udb.add_complete udb "R" r;
  let q =
    Ua.select
      Predicate.(Expr.attr "A" = Expr.int 0)
      (Ua.conf
         (Ua.project [ "A" ]
            (Ua.repair_key ~key:[ "A" ] ~weight:"W" (Ua.table "R"))))
  in
  let optimized = Optimizer.optimize_for udb q in
  (match optimized with
  | Ua.Conf (Ua.Select _) | Ua.Conf (Ua.Project (_, Ua.Select _)) -> ()
  | _ -> Alcotest.failf "expected select under conf: %a" Ua.pp optimized);
  let a = Pqdb.Eval_exact.eval_relation (Udb.create () |> fun u -> Udb.add_complete u "R" r; u) q in
  let b = Pqdb.Eval_exact.eval_relation (Udb.create () |> fun u -> Udb.add_complete u "R" r; u) optimized in
  check bool_c "same result" true (Relation.equal a b)

let () =
  Alcotest.run "optimizer"
    [
      ( "schema inference",
        [
          Alcotest.test_case "shapes" `Quick test_schema_inference;
          Alcotest.test_case "errors" `Quick test_schema_errors;
        ] );
      ( "rewrites",
        [
          Alcotest.test_case "push into join" `Quick test_push_into_join;
          Alcotest.test_case "conjunction splitting" `Quick
            test_push_splits_conjunction;
          Alcotest.test_case "push below conf" `Quick test_push_below_conf;
          Alcotest.test_case "repair-key guard" `Quick
            test_no_push_into_repair_key;
          Alcotest.test_case "through rename/project" `Quick
            test_select_through_rename_and_project;
          Alcotest.test_case "projection fusion" `Quick test_projection_fusion;
          Alcotest.test_case "identity elimination" `Quick
            test_identity_elimination;
          Alcotest.test_case "select true" `Quick test_select_true_removed;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "random preservation" `Quick
            test_random_preservation;
          QCheck_alcotest.to_alcotest prop_optimizer_preserves_schema;
          Alcotest.test_case "conf work shrinks" `Quick
            test_optimizer_shrinks_conf_work;
        ] );
    ]
