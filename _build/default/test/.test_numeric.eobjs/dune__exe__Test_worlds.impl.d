test/test_worlds.ml: Alcotest Eval_naive Expr List Pdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_workload Pqdb_worlds Predicate Relation Tuple Value
