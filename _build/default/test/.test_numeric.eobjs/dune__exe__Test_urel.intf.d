test/test_urel.mli:
