test/test_lang.ml: Alcotest Array Expr List Option Pqdb Pqdb_ast Pqdb_lang Pqdb_numeric Pqdb_relational Pqdb_workload Predicate QCheck QCheck_alcotest Relation Schema Tuple Value
