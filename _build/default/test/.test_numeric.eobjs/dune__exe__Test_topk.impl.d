test/test_topk.ml: Alcotest Assignment Confidence Float List Pqdb Pqdb_ast Pqdb_montecarlo Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_workload Printf QCheck QCheck_alcotest Tuple Value Wtable
