test/test_relational.ml: Alcotest Algebra Array Csv Expr List Pqdb_numeric Pqdb_relational Predicate QCheck QCheck_alcotest Relation Schema Tuple Value
