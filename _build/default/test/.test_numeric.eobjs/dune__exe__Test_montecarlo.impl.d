test/test_montecarlo.ml: Alcotest Array Assignment Dnf Estimator Float Karp_luby List Pqdb_montecarlo Pqdb_numeric Pqdb_urel Printf QCheck QCheck_alcotest Rational Rng Stats Wtable
