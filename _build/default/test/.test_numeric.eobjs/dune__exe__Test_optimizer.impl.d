test/test_optimizer.ml: Alcotest Expr List Pqdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Predicate QCheck QCheck_alcotest Relation Tuple Udb Value
