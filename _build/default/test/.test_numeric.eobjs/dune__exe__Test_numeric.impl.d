test/test_numeric.ml: Alcotest Array Bigint Interval List Pqdb_numeric QCheck QCheck_alcotest Rational Rng Stats String
