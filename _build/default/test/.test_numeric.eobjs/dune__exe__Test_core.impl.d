test/test_core.ml: Alcotest Array Assignment Dnf Estimator Float Interval List Pqdb Pqdb_ast Pqdb_montecarlo Pqdb_numeric Pqdb_urel Printf QCheck QCheck_alcotest Rational Rng Stats Wtable
