test/test_workload.ml: Alcotest Assignment Confidence Hashtbl List Option Pqdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_workload Relation Schema Tuple Urelation Value Wtable
