test/test_provenance.ml: Alcotest Assignment Confidence Expr List Pqdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Predicate Relation Schema Translate Tuple Udb Urelation Value Vertical Wtable
