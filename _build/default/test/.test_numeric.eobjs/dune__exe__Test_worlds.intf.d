test/test_worlds.mli:
