(* Ground-truth possible-worlds semantics tests, centered on the paper's
   running Example 2.2 (the coin bag) and Example 6.1 (approximate selection,
   evaluated exactly here via its desugaring). *)

open Pqdb_relational
open Pqdb_worlds
module V = Value
module Q = Pqdb_numeric.Rational
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let q_testable = Alcotest.testable Q.pp Q.equal
let rel_testable = Alcotest.testable Relation.pp Relation.equal

(* --- The Example 2.2 database ------------------------------------- *)

let coins = Pqdb_workload.Scenarios.coins
let faces = Pqdb_workload.Scenarios.faces
let tosses = Pqdb_workload.Scenarios.tosses

let coin_db =
  Pdb.of_complete [ ("Coins", coins); ("Faces", faces); ("Tosses", tosses) ]

(* R := π_CoinType(repair-key_∅@Count(Coins)) *)
let r_query =
  Ua.project [ "CoinType" ]
    (Ua.repair_key ~key:[] ~weight:"Count" (Ua.table "Coins"))

(* S := π_{CoinType,Toss,Face}(repair-key_{CoinType,Toss}@FProb(Faces × Tosses)),
   with Faces carrying a renamed CoinType column to keep × disjoint. *)
let s_query =
  Ua.project
    [ "FCoinType"; "Toss"; "Face" ]
    (Ua.repair_key
       ~key:[ "FCoinType"; "Toss" ]
       ~weight:"FProb"
       (Ua.product (Ua.table "Faces") (Ua.table "Tosses")))

let heads_at i =
  Ua.project [ "FCoinType" ]
    (Ua.select
       Predicate.(
         Expr.(attr "Toss" = int i)
         && Expr.(attr "Face" = const (V.Str "H")))
       s_query)

(* T := R ⋈ π(σ_{Toss=1 ∧ Face=H}(S)) ⋈ π(σ_{Toss=2 ∧ Face=H}(S)), aligning
   the S-side attribute back to CoinType for the natural join. *)
let t_query =
  Ua.join
    (Ua.join r_query (Ua.rename [ ("FCoinType", "CoinType") ] (heads_at 1)))
    (Ua.rename [ ("FCoinType", "CoinType") ] (heads_at 2))

(* U := π_{CoinType, P1/P2 → P}(ρ_{P→P1}(conf(T)) ⋈ ρ_{P→P2}(conf(π_∅(T)))) *)
let u_query =
  Ua.project_cols
    [
      (Expr.attr "CoinType", "CoinType");
      (Expr.(attr "P1" / attr "P2"), "P");
    ]
    (Ua.join
       (Ua.rename [ ("P", "P1") ] (Ua.conf t_query))
       (Ua.rename [ ("P", "P2") ] (Ua.conf (Ua.project [] t_query))))

(* --- Pdb construction and repair-key ------------------------------- *)

let test_repair_key_distribution () =
  let repairs = Pdb.repair_key ~key:[] ~weight:"Count" coins in
  check int_c "two repairs" 2 (List.length repairs);
  let total = Q.sum (List.map snd repairs) in
  check q_testable "probabilities sum to 1" Q.one total;
  List.iter
    (fun (rel, p) ->
      check int_c "one tuple per repair" 1 (Relation.cardinality rel);
      let t = List.hd (Relation.tuples rel) in
      match Tuple.get t 0 with
      | V.Str "fair" -> check q_testable "fair weight" (Q.of_ints 2 3) p
      | V.Str "2headed" -> check q_testable "2headed weight" (Q.of_ints 1 3) p
      | _ -> Alcotest.fail "unexpected coin")
    repairs

let test_repair_key_grouped () =
  (* Key {FCoinType}: fair group has two choices, 2headed has one; the number
     of repairs is 2 * 1 = 2. *)
  let repairs = Pdb.repair_key ~key:[ "FCoinType" ] ~weight:"FProb" faces in
  check int_c "2 x 1 repairs" 2 (List.length repairs);
  check q_testable "sum to one" Q.one (Q.sum (List.map snd repairs));
  List.iter
    (fun (rel, _) ->
      check int_c "one tuple per key group" 2 (Relation.cardinality rel))
    repairs

let test_repair_key_rejects_bad_weight () =
  let bad =
    Relation.of_rows [ "A"; "W" ] [ [ V.Int 1; V.Int 0 ] ]
  in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "repair-key: weight must be positive") (fun () ->
      ignore (Pdb.repair_key ~key:[] ~weight:"W" bad))

let test_tensor () =
  let a =
    Pdb.of_worlds ~complete:[]
      [
        ([ ("R", Relation.of_rows [ "A" ] [ [ V.Int 1 ] ]) ], Q.of_ints 1 2);
        ([ ("R", Relation.of_rows [ "A" ] [ [ V.Int 2 ] ]) ], Q.of_ints 1 2);
      ]
  in
  let b =
    Pdb.of_worlds ~complete:[]
      [
        ([ ("S", Relation.of_rows [ "B" ] [ [ V.Int 3 ] ]) ], Q.of_ints 1 3);
        ([ ("S", Relation.of_rows [ "B" ] [ [ V.Int 4 ] ]) ], Q.of_ints 2 3);
      ]
  in
  let ab = Pdb.tensor a b in
  check int_c "4 worlds" 4 (Pdb.world_count ab);
  let probs = List.map snd (Pdb.worlds ab) in
  check q_testable "sum to 1" Q.one (Q.sum probs)

let test_pdb_validation () =
  Alcotest.check_raises "probabilities must sum to 1"
    (Invalid_argument "Pdb: world probabilities must sum to 1") (fun () ->
      ignore
        (Pdb.of_worlds ~complete:[]
           [ ([ ("R", Relation.of_rows [ "A" ] [ [ V.Int 1 ] ]) ], Q.half) ]))

(* --- Query evaluation: Example 2.2 step by step --------------------- *)

let test_r_has_two_worlds () =
  let prel = Eval_naive.eval coin_db r_query in
  check int_c "two possible relations" 2 (List.length prel);
  let confs = Eval_naive.eval_confidence coin_db r_query in
  let find name =
    List.assoc (Tuple.of_list [ V.Str name ])
      (List.map (fun (t, p) -> (t, p)) confs)
  in
  ignore find;
  List.iter
    (fun (t, p) ->
      match Tuple.get t 0 with
      | V.Str "fair" -> check q_testable "P(fair)" (Q.of_ints 2 3) p
      | V.Str "2headed" -> check q_testable "P(2headed)" (Q.of_ints 1 3) p
      | _ -> Alcotest.fail "unexpected tuple")
    confs

let test_s_has_four_relations () =
  (* The paper's eight worlds carry four distinct S relations (S1..S4). *)
  let prel = Eval_naive.eval coin_db s_query in
  check int_c "four distinct S relations" 4 (List.length prel);
  List.iter
    (fun (_, p) -> check q_testable "each 1/4" (Q.of_ints 1 4) p)
    prel

let test_t_confidences () =
  let confs = Eval_naive.eval_confidence coin_db t_query in
  check int_c "two possible tuples" 2 (List.length confs);
  List.iter
    (fun (t, p) ->
      match Tuple.get t 0 with
      | V.Str "fair" -> check q_testable "P(fair in T)" (Q.of_ints 1 6) p
      | V.Str "2headed" ->
          check q_testable "P(2headed in T)" (Q.of_ints 1 3) p
      | _ -> Alcotest.fail "unexpected tuple")
    confs

let test_evidence_probability () =
  (* conf(π_∅(T)) = Pr(both tosses H) = 1/2. *)
  let confs =
    Eval_naive.eval_confidence coin_db (Ua.project [] t_query)
  in
  match confs with
  | [ (_, p) ] -> check q_testable "P(HH)" Q.half p
  | _ -> Alcotest.fail "expected a single nullary tuple"

let test_u_posterior () =
  (* The headline of Example 2.2: posteriors 1/3 and 2/3. *)
  let u = Eval_naive.eval_certain coin_db u_query in
  let expected =
    Relation.of_rows [ "CoinType"; "P" ]
      [
        [ V.Str "fair"; V.rat (Q.of_ints 1 3) ];
        [ V.Str "2headed"; V.rat (Q.of_ints 2 3) ];
      ]
  in
  check rel_testable "posterior table" expected u

let test_cert_poss () =
  let poss = Eval_naive.eval_certain coin_db (Ua.poss r_query) in
  check int_c "poss has both coin types" 2 (Relation.cardinality poss);
  let cert = Eval_naive.eval_certain coin_db (Ua.cert r_query) in
  check int_c "cert is empty" 0 (Relation.cardinality cert);
  let cert_coins = Eval_naive.eval_certain coin_db (Ua.cert (Ua.table "Coins")) in
  check rel_testable "complete relation is certain" coins cert_coins

let test_repair_key_on_uncertain_rejected () =
  let bad = Ua.repair_key ~key:[] ~weight:"Count" (Ua.table "Rbad") in
  let db =
    Pdb.of_worlds ~complete:[]
      [
        ( [ ("Rbad", Relation.of_rows [ "A"; "Count" ] [ [ V.Int 1; V.Int 1 ] ]) ],
          Q.half );
        ( [ ("Rbad", Relation.of_rows [ "A"; "Count" ] [ [ V.Int 2; V.Int 1 ] ]) ],
          Q.half );
      ]
  in
  check bool_c "raises Not_complete" true
    (try
       ignore (Eval_naive.eval db bad);
       false
     with Eval_naive.Not_complete _ -> true)

(* --- σ̂ via desugaring (Example 6.1) -------------------------------- *)

let sigma_hat_query =
  (* σ̂_{conf[CoinType]/conf[∅] <= 0.5}(T): keeps coin types whose posterior
     given the evidence is at most 1/2 — exactly {fair}. *)
  Ua.approx_select
    (Apred.le (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const 0.5))
    [ [ "CoinType" ]; [] ]
    t_query

let test_sigma_hat_exact () =
  let result = Eval_naive.eval_certain coin_db sigma_hat_query in
  let expected =
    Relation.of_rows [ "CoinType" ] [ [ V.Str "fair" ] ]
  in
  check rel_testable "only the fair coin qualifies" expected result

let test_desugar_structure () =
  let d = Ua.desugar_sigma_hat sigma_hat_query in
  (* After desugaring no ApproxSelect remains and conf appears twice. *)
  let count_conf =
    Ua.size d
    |> fun _ ->
    let rec go = function
      | Ua.Conf q -> 1 + go q
      | Ua.Table _ | Ua.Lit _ -> 0
      | Ua.Select (_, q)
      | Ua.Project (_, q)
      | Ua.Rename (_, q)
      | Ua.ApproxConf (_, q)
      | Ua.RepairKey { query = q; _ }
      | Ua.Poss q
      | Ua.Cert q ->
          go q
      | Ua.Product (a, b) | Ua.Join (a, b) | Ua.Union (a, b) | Ua.Diff (a, b)
        ->
          go a + go b
      | Ua.ApproxSelect _ -> Alcotest.fail "sigma-hat survived desugaring"
    in
    go d
  in
  check int_c "two conf nodes" 2 count_conf

(* --- AST structure helpers ------------------------------------------ *)

let test_ast_metrics () =
  check bool_c "positive" true (Ua.is_positive u_query);
  check bool_c "not positive with diff" false
    (Ua.is_positive (Ua.diff r_query r_query));
  check int_c "nesting depth 0" 0 (Ua.nesting_depth u_query);
  check int_c "nesting depth 1" 1 (Ua.nesting_depth sigma_hat_query);
  check int_c "conf width" 2 (Ua.max_conf_width sigma_hat_query);
  check
    (Alcotest.list Alcotest.string)
    "tables" [ "Coins" ] (Ua.tables r_query);
  check bool_c "no sigma-hat under repair-key" false
    (Ua.has_sigma_hat_below_repair_key sigma_hat_query)

let test_diff_in_worlds () =
  (* Full UA difference works in the ground-truth evaluator. *)
  let q = Ua.diff (Ua.poss r_query) r_query in
  let confs = Eval_naive.eval_confidence coin_db q in
  (* poss(R) = {fair, 2headed}; R misses each with the other's probability. *)
  List.iter
    (fun (t, p) ->
      match Tuple.get t 0 with
      | V.Str "fair" -> check q_testable "1 - 2/3" (Q.of_ints 1 3) p
      | V.Str "2headed" -> check q_testable "1 - 1/3" (Q.of_ints 2 3) p
      | _ -> Alcotest.fail "unexpected tuple")
    confs

let test_normalize_merges_worlds () =
  let r1 = Relation.of_rows [ "A" ] [ [ V.Int 1 ] ] in
  let db =
    Pdb.of_worlds ~complete:[]
      [
        ([ ("R", r1) ], Q.of_ints 1 4);
        ([ ("R", r1) ], Q.of_ints 1 4);
        ([ ("R", Relation.of_rows [ "A" ] []) ], Q.half);
      ]
  in
  let n = Pdb.normalize db in
  check int_c "merged to two worlds" 2 (Pdb.world_count n);
  check q_testable "merged probability" Q.half
    (List.fold_left
       (fun acc (w, p) ->
         if Relation.equal (Pdb.find w "R") r1 then Q.add acc p else acc)
       Q.zero (Pdb.worlds n))

let test_prel_normalization () =
  let r = Relation.of_rows [ "A" ] [ [ V.Int 1 ] ] in
  let prel =
    [ (r, Q.of_ints 1 3); (r, Q.of_ints 1 3); (r, Q.of_ints 1 3) ]
  in
  (match Pdb.normalize_prel prel with
  | [ (_, p) ] -> check q_testable "summed" Q.one p
  | _ -> Alcotest.fail "expected one world");
  check bool_c "equal_prel is order-insensitive" true
    (Pdb.equal_prel
       [ (r, Q.half); (Relation.of_rows [ "A" ] [], Q.half) ]
       [ (Relation.of_rows [ "A" ] [], Q.half); (r, Q.half) ])

let test_confidence_of_missing_tuple () =
  let r = Relation.of_rows [ "A" ] [ [ V.Int 1 ] ] in
  let prel = [ (r, Q.one) ] in
  check q_testable "absent tuple has confidence 0" Q.zero
    (Pdb.confidence_of prel (Tuple.of_list [ V.Int 9 ]))

let test_nested_conf_in_naive () =
  (* conf inside a subquery that is itself aggregated: selection on the
     P column of an inner conf, then conf again on the (complete) result. *)
  let q =
    Ua.conf
      (Ua.project [ "CoinType" ]
         (Ua.select
            Predicate.(Expr.attr "P" < Expr.const (V.of_ints 1 4))
            (Ua.conf t_query)))
  in
  let rel = Eval_naive.eval_certain coin_db q in
  (* Only fair (1/6 < 1/4) survives the selection; its outer conf is 1. *)
  check rel_testable "nested conf"
    (Relation.of_rows [ "CoinType"; "P" ]
       [ [ V.Str "fair"; V.rat Q.one ] ])
    rel

let () =
  Alcotest.run "worlds"
    [
      ( "pdb",
        [
          Alcotest.test_case "repair-key distribution" `Quick
            test_repair_key_distribution;
          Alcotest.test_case "repair-key with grouping" `Quick
            test_repair_key_grouped;
          Alcotest.test_case "repair-key weight validation" `Quick
            test_repair_key_rejects_bad_weight;
          Alcotest.test_case "tensor" `Quick test_tensor;
          Alcotest.test_case "validation" `Quick test_pdb_validation;
        ] );
      ( "example 2.2",
        [
          Alcotest.test_case "R has two worlds" `Quick test_r_has_two_worlds;
          Alcotest.test_case "S has four relations" `Quick
            test_s_has_four_relations;
          Alcotest.test_case "T confidences" `Quick test_t_confidences;
          Alcotest.test_case "evidence probability 1/2" `Quick
            test_evidence_probability;
          Alcotest.test_case "posterior U (headline)" `Quick test_u_posterior;
          Alcotest.test_case "cert/poss" `Quick test_cert_poss;
          Alcotest.test_case "repair-key needs complete input" `Quick
            test_repair_key_on_uncertain_rejected;
        ] );
      ( "sigma-hat",
        [
          Alcotest.test_case "exact result (Example 6.1)" `Quick
            test_sigma_hat_exact;
          Alcotest.test_case "desugaring structure" `Quick
            test_desugar_structure;
        ] );
      ( "structure",
        [
          Alcotest.test_case "normalize merges worlds" `Quick
            test_normalize_merges_worlds;
          Alcotest.test_case "prel normalization" `Quick
            test_prel_normalization;
          Alcotest.test_case "confidence of absent tuple" `Quick
            test_confidence_of_missing_tuple;
          Alcotest.test_case "nested conf" `Quick test_nested_conf_in_naive;
        ] );
      ( "ast",
        [
          Alcotest.test_case "metrics" `Quick test_ast_metrics;
          Alcotest.test_case "difference over worlds" `Quick
            test_diff_in_worlds;
        ] );
    ]
