(* Tests for the provenance module (the ≺ relation of Section 6) and the
   vertical decomposition of attribute-level uncertainty. *)

open Pqdb_relational
open Pqdb_urel
module V = Value
module Q = Pqdb_numeric.Rational
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Provenance = Pqdb.Provenance

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let q_testable = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Provenance                                                           *)
(* ------------------------------------------------------------------ *)

let small_db () =
  let udb = Udb.create () in
  Udb.add_complete udb "R"
    (Relation.of_rows [ "A"; "B" ]
       [ [ V.Int 1; V.Int 10 ]; [ V.Int 2; V.Int 10 ]; [ V.Int 3; V.Int 20 ] ]);
  Udb.add_complete udb "S"
    (Relation.of_rows [ "B"; "C" ]
       [ [ V.Int 10; V.Str "x" ]; [ V.Int 20; V.Str "y" ] ]);
  udb

let test_select_preserves () =
  let udb = small_db () in
  let p =
    Provenance.compute udb
      (Ua.select Predicate.(Expr.attr "A" >= Expr.int 2) (Ua.table "R"))
  in
  let t = Tuple.of_list [ V.Int 2; V.Int 10 ] in
  (match Provenance.leaves p t with
  | [ Provenance.Base ("R", r) ] -> check bool_c "same tuple" true (Tuple.equal r t)
  | _ -> Alcotest.fail "expected exactly the base tuple");
  check int_c "no sigma-hats" 0 (Provenance.sigma_hat_count p)

let test_projection_fanin () =
  (* π_B(R): output (10) depends on the two input tuples with B = 10. *)
  let udb = small_db () in
  let p = Provenance.compute udb (Ua.project [ "B" ] (Ua.table "R")) in
  let leaves = Provenance.leaves p (Tuple.of_list [ V.Int 10 ]) in
  check int_c "fan-in of 2" 2 (List.length leaves);
  let leaves20 = Provenance.leaves p (Tuple.of_list [ V.Int 20 ]) in
  check int_c "fan-in of 1" 1 (List.length leaves20)

let test_join_unions_components () =
  let udb = small_db () in
  let p = Provenance.compute udb (Ua.join (Ua.table "R") (Ua.table "S")) in
  let out = Tuple.of_list [ V.Int 1; V.Int 10; V.Str "x" ] in
  let leaves = Provenance.leaves p out in
  check int_c "two components" 2 (List.length leaves);
  let names =
    List.filter_map
      (function Provenance.Base (n, _) -> Some n | _ -> None)
      leaves
  in
  check (Alcotest.list Alcotest.string) "both tables" [ "R"; "S" ]
    (List.sort compare names)

let test_union_merges () =
  let udb = small_db () in
  let q =
    Ua.union
      (Ua.project [ "B" ] (Ua.table "R"))
      (Ua.project [ "B" ] (Ua.table "S"))
  in
  let p = Provenance.compute udb q in
  let leaves = Provenance.leaves p (Tuple.of_list [ V.Int 10 ]) in
  (* Two R tuples and one S tuple project to B=10. *)
  check int_c "both occurrences" 3 (List.length leaves)

let test_sigma_hat_is_leaf () =
  let udb = small_db () in
  let w = Udb.wtable udb in
  (* Add an uncertain relation to make sigma-hat meaningful. *)
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  Udb.add_urelation udb "U"
    (Urelation.make (Schema.of_list [ "A" ])
       [
         (Assignment.singleton x 1, Tuple.of_list [ V.Int 1 ]);
         (Assignment.empty, Tuple.of_list [ V.Int 2 ]);
       ]);
  let sigma =
    Ua.approx_select
      (Apred.ge (Apred.var 0) (Apred.const 0.4))
      [ [ "A" ] ] (Ua.table "U")
  in
  let q = Ua.join sigma (Ua.table "R") in
  let p = Provenance.compute udb q in
  check int_c "one sigma-hat" 1 (Provenance.sigma_hat_count p);
  let out = Tuple.of_list [ V.Int 1; V.Int 10 ] in
  let sh = Provenance.sigma_hat_leaves p out in
  check int_c "depends on one sigma-hat tuple" 1 (List.length sh);
  (match sh with
  | [ (0, t) ] -> check bool_c "the A=1 decision" true
      (Tuple.equal t (Tuple.of_list [ V.Int 1 ]))
  | _ -> Alcotest.fail "unexpected sigma-hat leaves");
  (* The base side is still tracked. *)
  let bases =
    List.filter_map
      (function Provenance.Base (n, _) -> Some n | _ -> None)
      (Provenance.leaves p out)
  in
  check (Alcotest.list Alcotest.string) "R contributes" [ "R" ] bases

let test_provenance_result_matches_exact () =
  let udb = small_db () in
  let q = Ua.conf (Ua.project [ "B" ] (Ua.table "R")) in
  let p = Provenance.compute udb q in
  let via_exact = Pqdb.Eval_exact.eval (small_db ()) q in
  check bool_c "same result" true
    (Relation.equal
       (Urelation.to_relation (Provenance.result p))
       (Urelation.to_relation via_exact))

let test_example_6_5_shape () =
  (* Example 6.5: pi_A over n independent tuples — the single output tuple's
     provenance is the entire input. *)
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  let n = 5 in
  let rows =
    List.init n (fun i ->
        let x = Wtable.add_var w [ Q.half; Q.half ] in
        (Assignment.singleton x 1, Tuple.of_list [ V.Str "a"; V.Int i ]))
  in
  Udb.add_urelation udb "U" (Urelation.make (Schema.of_list [ "A"; "B" ]) rows);
  let sigma =
    Ua.approx_select
      (Apred.ge (Apred.var 0) (Apred.const 0.3))
      [ [ "A"; "B" ] ] (Ua.table "U")
  in
  let p = Provenance.compute udb (Ua.project [ "A" ] sigma) in
  let leaves = Provenance.sigma_hat_leaves p (Tuple.of_list [ V.Str "a" ]) in
  check int_c "provenance is the whole input" n (List.length leaves)

(* ------------------------------------------------------------------ *)
(* Vertical decomposition                                               *)
(* ------------------------------------------------------------------ *)

let spec_row name_alts city_alts =
  [
    name_alts;
    city_alts;
  ]

let test_vertical_sizes () =
  let w = Wtable.create () in
  let alts vs = List.map (fun v -> (V.Str v, Q.of_ints 1 (List.length vs))) vs in
  let rows =
    [
      spec_row (alts [ "ann"; "anne" ]) (alts [ "vienna"; "ithaca" ]);
      spec_row (alts [ "bob" ]) (alts [ "vienna"; "ithaca"; "berlin" ]);
    ]
  in
  let v = Vertical.build w ~tid:"#id" ~attrs:[ "Name"; "City" ] ~rows in
  check int_c "tuples" 2 (Vertical.tuple_count v);
  (* Component rows: (2+2) + (1+3) = 8; expanded: 2*2 + 1*3 = 7.  With more
     uncertain attributes the gap is exponential. *)
  check int_c "component size" 8 (Vertical.component_size v);
  check int_c "expanded size" 7 (Vertical.expanded_size v);
  check int_c "expanded matches prediction" 7 (Urelation.size (Vertical.expanded v))

let test_vertical_exponential_gap () =
  let w = Wtable.create () in
  let k = 8 in
  let alts = [ (V.Int 0, Q.half); (V.Int 1, Q.half) ] in
  let attrs = List.init k (fun i -> "A" ^ string_of_int i) in
  let rows = [ List.init k (fun _ -> alts) ] in
  let v = Vertical.build w ~tid:"#id" ~attrs ~rows in
  check int_c "linear components" (2 * k) (Vertical.component_size v);
  check int_c "exponential expansion" (1 lsl k) (Vertical.expanded_size v)

let test_vertical_semantics () =
  (* Marginals computed on the expanded relation match the per-attribute
     distributions. *)
  let w = Wtable.create () in
  let rows =
    [
      [
        [ (V.Str "ann", Q.of_ints 3 4); (V.Str "anne", Q.of_ints 1 4) ];
        [ (V.Str "vienna", Q.one) ];
      ];
    ]
  in
  let v = Vertical.build w ~tid:"#id" ~attrs:[ "Name"; "City" ] ~rows in
  let expanded = Vertical.expanded v in
  let p =
    Confidence.exact w
      (Urelation.clauses_for expanded
         (Tuple.of_list [ V.Str "ann"; V.Str "vienna" ]))
  in
  check q_testable "P(ann, vienna) = 3/4" (Q.of_ints 3 4) p;
  (* Components decode consistently: the Name component holds both
     alternatives conditioned on the same variable. *)
  let name_comp = List.assoc "Name" (Vertical.components v) in
  check int_c "name component rows" 2 (Urelation.size name_comp);
  let joined =
    Translate.join (List.assoc "Name" (Vertical.components v))
      (List.assoc "City" (Vertical.components v))
  in
  (* Joining components on the tid reconstructs the expanded relation. *)
  let reconstructed =
    Translate.project_attrs [ "Name"; "City" ] joined
  in
  check bool_c "join of components = expansion" true
    (List.for_all2
       (fun (a1, t1) (a2, t2) ->
         Assignment.equal a1 a2 && Tuple.equal t1 t2)
       (Urelation.rows reconstructed)
       (Urelation.rows expanded))

let test_vertical_validation () =
  let w = Wtable.create () in
  check bool_c "tid clash rejected" true
    (try
       ignore (Vertical.build w ~tid:"A" ~attrs:[ "A" ] ~rows:[]);
       false
     with Invalid_argument _ -> true);
  check bool_c "arity mismatch rejected" true
    (try
       ignore
         (Vertical.build w ~tid:"#id" ~attrs:[ "A"; "B" ]
            ~rows:[ [ [ (V.Int 1, Q.one) ] ] ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "provenance"
    [
      ( "lineage (Section 6)",
        [
          Alcotest.test_case "select preserves" `Quick test_select_preserves;
          Alcotest.test_case "projection fan-in" `Quick test_projection_fanin;
          Alcotest.test_case "join unions components" `Quick
            test_join_unions_components;
          Alcotest.test_case "union merges occurrences" `Quick
            test_union_merges;
          Alcotest.test_case "sigma-hat leaves" `Quick test_sigma_hat_is_leaf;
          Alcotest.test_case "result matches exact eval" `Quick
            test_provenance_result_matches_exact;
          Alcotest.test_case "Example 6.5 whole-input provenance" `Quick
            test_example_6_5_shape;
        ] );
      ( "vertical decomposition",
        [
          Alcotest.test_case "sizes" `Quick test_vertical_sizes;
          Alcotest.test_case "exponential gap" `Quick
            test_vertical_exponential_gap;
          Alcotest.test_case "semantics" `Quick test_vertical_semantics;
          Alcotest.test_case "validation" `Quick test_vertical_validation;
        ] );
    ]
