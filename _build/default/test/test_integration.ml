(* Integration tests: random positive UA queries evaluated both through the
   succinct U-relational path (Eval_exact) and the explicit possible-worlds
   ground truth (Eval_naive) must produce identical tuple confidences; the
   approximate path must agree with the exact one away from thresholds. *)

open Pqdb_relational
open Pqdb_urel
module V = Value
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Pdb = Pqdb_worlds.Pdb
module Naive = Pqdb_worlds.Eval_naive
module Scenarios = Pqdb_workload.Scenarios

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let q_testable = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Random positive-query agreement                                     *)
(* ------------------------------------------------------------------ *)

(* Small complete base tables; uncertainty enters via repair-key. *)
let base_r rng =
  let rows =
    List.init 6 (fun i ->
        [ V.Int (i mod 3); V.Int (Rng.int rng 3); V.Int (1 + Rng.int rng 3) ])
  in
  Relation.of_rows [ "A"; "B"; "W" ] rows

let base_s rng =
  let rows =
    List.init 4 (fun _ -> [ V.Int (Rng.int rng 3); V.Int (Rng.int rng 3) ])
  in
  Relation.of_rows [ "B"; "C" ] rows

(* A generator of well-formed positive queries, tracking output attributes. *)
let rec random_query rng depth =
  let uncertain =
    ( Ua.project [ "A"; "B" ]
        (Ua.repair_key ~key:[ "A" ] ~weight:"W" (Ua.table "R")),
      [ "A"; "B" ] )
  in
  let complete = (Ua.table "S", [ "B"; "C" ]) in
  if depth = 0 then if Rng.bool rng then uncertain else complete
  else begin
    let q, attrs = random_query rng (depth - 1) in
    match Rng.int rng 6 with
    | 0 ->
        (* selection on a random attribute *)
        let a = List.nth attrs (Rng.int rng (List.length attrs)) in
        ( Ua.select
            Predicate.(Expr.attr a >= Expr.int (Rng.int rng 3))
            q,
          attrs )
    | 1 ->
        (* projection onto a nonempty random prefix *)
        let keep = 1 + Rng.int rng (List.length attrs) in
        let kept = List.filteri (fun i _ -> i < keep) attrs in
        (Ua.project kept q, kept)
    | 2 ->
        (* natural join with the other base *)
        let other, other_attrs =
          if List.mem "C" attrs then uncertain else complete
        in
        let shared = List.filter (fun a -> List.mem a attrs) other_attrs in
        let merged =
          attrs @ List.filter (fun a -> not (List.mem a shared)) other_attrs
        in
        (Ua.join q other, merged)
    | 3 ->
        (* union with a differently-selected copy *)
        let a = List.nth attrs (Rng.int rng (List.length attrs)) in
        ( Ua.union q
            (Ua.select Predicate.(Expr.attr a <= Expr.int (Rng.int rng 3)) q),
          attrs )
    | 4 -> (Ua.poss q, attrs)
    | _ -> (q, attrs)
  end

let confidences_agree exact naive =
  List.length exact = List.length naive
  && List.for_all
       (fun (t, p) ->
         List.exists
           (fun (t', p') -> Tuple.equal t t' && Q.equal p p')
           exact)
       naive

let test_random_query_agreement () =
  for seed = 1 to 40 do
    let rng = Rng.create ~seed in
    let r = base_r rng and s = base_s rng in
    let q, _ = random_query rng (1 + Rng.int rng 2) in
    let udb = Udb.create () in
    Udb.add_complete udb "R" r;
    Udb.add_complete udb "S" s;
    let exact = Pqdb.Eval_exact.confidences udb q in
    let pdb = Pdb.of_complete [ ("R", r); ("S", s) ] in
    let naive = Naive.eval_confidence pdb q in
    if not (confidences_agree exact naive) then
      Alcotest.failf "disagreement at seed %d on %a" seed Ua.pp q
  done

let test_random_query_agreement_with_conf_inside () =
  (* Queries that use conf as a subquery (compositionality, the paper's
     headline feature). *)
  for seed = 1 to 20 do
    let rng = Rng.create ~seed:(1000 + seed) in
    let r = base_r rng and s = base_s rng in
    let inner, attrs = random_query rng 1 in
    let q =
      Ua.select
        Predicate.(Expr.attr "P" > Expr.const (V.of_ints 1 4))
        (Ua.conf (Ua.project [ List.hd attrs ] inner))
    in
    let udb = Udb.create () in
    Udb.add_complete udb "R" r;
    Udb.add_complete udb "S" s;
    let exact = Pqdb.Eval_exact.confidences udb q in
    let pdb = Pdb.of_complete [ ("R", r); ("S", s) ] in
    let naive = Naive.eval_confidence pdb q in
    if not (confidences_agree exact naive) then
      Alcotest.failf "conf-compositional disagreement at seed %d on %a" seed
        Ua.pp q
  done

(* ------------------------------------------------------------------ *)
(* Decode-based agreement: Urelation decode = Eval_naive worlds        *)
(* ------------------------------------------------------------------ *)

let test_decode_agreement () =
  for seed = 1 to 15 do
    let rng = Rng.create ~seed:(2000 + seed) in
    let r = base_r rng and s = base_s rng in
    let q, _ = random_query rng 2 in
    let udb = Udb.create () in
    Udb.add_complete udb "R" r;
    Udb.add_complete udb "S" s;
    let u = Pqdb.Eval_exact.eval udb q in
    let prel = Enumerate.decode (Udb.wtable udb) u in
    let pdb = Pdb.of_complete [ ("R", r); ("S", s) ] in
    let ground = Naive.eval pdb q in
    if not (Pdb.equal_prel prel ground) then
      Alcotest.failf "world-set disagreement at seed %d on %a" seed Ua.pp q
  done

(* ------------------------------------------------------------------ *)
(* Approximate evaluation agrees with exact away from thresholds       *)
(* ------------------------------------------------------------------ *)

let test_approx_matches_exact_cleaning () =
  let rng = Rng.create ~seed:77 in
  let mismatches = ref 0 in
  let runs = 10 in
  for seed = 1 to runs do
    let udb = Scenarios.cleaning_db (Rng.create ~seed) ~customers:3 ~max_dups:2 in
    (* A threshold no exact marginal is near: marginals are ratios of small
       integer weights; 0.47 is far from all of them w.r.t. eps0 = 0.02. *)
    let query = Scenarios.confident_customers ~threshold:0.47 in
    let exact =
      Pqdb.Eval_exact.eval_relation (Udb.copy udb) (Ua.desugar_sigma_hat query)
    in
    let result, _, _ =
      Pqdb.Eval_approx.eval_with_guarantee ~eps0:0.02 ~rng ~delta:0.02
        (Udb.copy udb) query
    in
    let approx = Urelation.to_relation result.Pqdb.Eval_approx.urel in
    if not (Relation.equal exact approx) then incr mismatches
  done;
  check bool_c
    (Printf.sprintf "%d/%d mismatches" !mismatches runs)
    true (!mismatches <= 1)

let test_approx_matches_exact_tuple_independent () =
  (* sigma-hat over random tuple-independent relations: thresholds sit away
     from the k/10 grid the marginals live on, so decisions are solid. *)
  let rng = Rng.create ~seed:88 in
  let mismatches = ref 0 in
  let runs = 12 in
  for seed = 1 to runs do
    let udb = Udb.create () in
    let w = Udb.wtable udb in
    let u =
      Pqdb_workload.Gen.tuple_independent (Rng.create ~seed:(40 + seed)) w
        ~attrs:[ "A"; "B" ] ~rows:4 ~domain:3
    in
    Udb.add_urelation udb "U" u;
    let query =
      Ua.approx_select
        (Apred.ge (Apred.var 0) (Apred.const 0.44))
        [ [ "A"; "B" ] ]
        (Ua.table "U")
    in
    let exact =
      Pqdb.Eval_exact.eval_relation (Udb.copy udb)
        (Ua.desugar_sigma_hat query)
    in
    let result, _, _ =
      Pqdb.Eval_approx.eval_with_guarantee ~eps0:0.02 ~rng ~delta:0.02
        (Udb.copy udb) query
    in
    if
      not
        (Relation.equal exact
           (Urelation.to_relation result.Pqdb.Eval_approx.urel))
    then incr mismatches
  done;
  check bool_c
    (Printf.sprintf "%d/%d mismatches" !mismatches runs)
    true (!mismatches <= 1)

(* ------------------------------------------------------------------ *)
(* Compositionality: uncertainty built from computed confidences        *)
(* ------------------------------------------------------------------ *)

let test_repair_key_over_conf () =
  (* Stage 1: marginals of an uncertain relation (conf output, complete).
     Stage 2: repair-key using those *computed probabilities* as weights —
     the compositionality the paper's introduction claims as novel.  Both
     evaluators must agree. *)
  let r = Relation.of_rows [ "A"; "W" ] [ [ V.Int 1; V.Int 3 ]; [ V.Int 2; V.Int 1 ] ] in
  let stage1 =
    Ua.conf
      (Ua.project [ "A" ] (Ua.repair_key ~key:[] ~weight:"W" (Ua.table "R")))
  in
  (* P column holds 3/4 and 1/4; repair on the empty key redraws A with
     those weights. *)
  let stage2 = Ua.repair_key ~key:[] ~weight:"P" stage1 in
  let udb = Udb.create () in
  Udb.add_complete udb "R" r;
  let exact = Pqdb.Eval_exact.confidences udb (Ua.project [ "A" ] stage2) in
  let pdb = Pdb.of_complete [ ("R", r) ] in
  let naive =
    Naive.eval_confidence pdb (Ua.project [ "A" ] stage2)
  in
  check int_c "two possible tuples" 2 (List.length exact);
  List.iter
    (fun (t, p) ->
      let p' =
        List.fold_left
          (fun acc (t', q) -> if Tuple.equal t t' then q else acc)
          Q.zero exact
      in
      check q_testable (Format.asprintf "conf of %a" Tuple.pp t) p p')
    naive;
  (* And the marginals are the stage-1 probabilities again. *)
  List.iter
    (fun (t, p) ->
      match Tuple.get t 0 with
      | V.Int 1 -> check q_testable "redrawn 3/4" (Q.of_ints 3 4) p
      | V.Int 2 -> check q_testable "redrawn 1/4" (Q.of_ints 1 4) p
      | _ -> Alcotest.fail "unexpected tuple")
    exact

let test_conf_of_conf () =
  (* conf of a complete relation (itself a conf output) is certainty.  The
     paper assumes P is not already in the schema, so the inner P column is
     renamed first. *)
  let udb = Scenarios.coin_db () in
  let q =
    Ua.conf
      (Ua.rename [ ("P", "P0") ] (Ua.conf Scenarios.coin_queries.Scenarios.t))
  in
  let rel = Pqdb.Eval_exact.eval_relation udb q in
  Relation.iter
    (fun t ->
      match Tuple.get t (Tuple.arity t - 1) with
      | V.Rat p -> check q_testable "outer conf is 1" Q.one p
      | _ -> Alcotest.fail "rational expected")
    rel

(* ------------------------------------------------------------------ *)
(* CSV to query end-to-end                                             *)
(* ------------------------------------------------------------------ *)

let test_csv_to_query () =
  let csv = "CoinType,Count\nfair,2\n2headed,1\n" in
  let coins = Csv.parse_string csv in
  let udb = Udb.create () in
  Udb.add_complete udb "Coins" coins;
  let q =
    Pqdb_lang.Qparser.parse_query
      "conf(project[CoinType](repairkey[@Count](Coins)))"
  in
  let rel = Pqdb.Eval_exact.eval_relation udb q in
  check int_c "two rows" 2 (Relation.cardinality rel);
  check bool_c "fair marginal" true
    (Relation.mem rel
       (Tuple.of_list [ V.Str "fair"; V.rat (Q.of_ints 2 3) ]))

(* ------------------------------------------------------------------ *)
(* Shared-subexpression semantics                                      *)
(* ------------------------------------------------------------------ *)

let test_shared_repair_key_is_one_relation () =
  (* S join S must be S itself (same repaired relation), not two independent
     repairs. *)
  let udb = Scenarios.coin_db () in
  let s = Scenarios.coin_queries.Scenarios.s in
  let joined = Pqdb.Eval_exact.confidences (Udb.copy udb) (Ua.join s s) in
  let single = Pqdb.Eval_exact.confidences (Udb.copy udb) s in
  check int_c "same possible tuples" (List.length single) (List.length joined);
  List.iter
    (fun (t, p) ->
      let p' =
        List.fold_left
          (fun acc (t', q) -> if Tuple.equal t t' then q else acc)
          Q.zero joined
      in
      check q_testable "same marginals" p p')
    single

let () =
  Alcotest.run "integration"
    [
      ( "agreement",
        [
          Alcotest.test_case "random positive queries" `Quick
            test_random_query_agreement;
          Alcotest.test_case "compositional conf" `Quick
            test_random_query_agreement_with_conf_inside;
          Alcotest.test_case "decoded world sets" `Quick test_decode_agreement;
          Alcotest.test_case "approx vs exact sigma-hat" `Slow
            test_approx_matches_exact_cleaning;
          Alcotest.test_case "approx vs exact (tuple-independent)" `Slow
            test_approx_matches_exact_tuple_independent;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "csv -> parse -> evaluate" `Quick
            test_csv_to_query;
          Alcotest.test_case "repair-key over conf (compositionality)" `Quick
            test_repair_key_over_conf;
          Alcotest.test_case "conf of conf" `Quick test_conf_of_conf;
          Alcotest.test_case "shared repair-key" `Quick
            test_shared_repair_key_is_one_relation;
        ] );
    ]
