(* Tests for the textual query language: lexing, parsing, let-programs, and
   round-trip evaluation against the algebra built programmatically. *)

open Pqdb_relational
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Lexer = Pqdb_lang.Lexer
module Token = Pqdb_lang.Token
module Qparser = Pqdb_lang.Qparser
module Scenarios = Pqdb_workload.Scenarios
module Q = Pqdb_numeric.Rational

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let rel_testable = Alcotest.testable Relation.pp Relation.equal

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let tokens text = List.map fst (Lexer.tokenize text)

let test_lexer_basics () =
  check int_c "count (incl. Eof)" 10
    (List.length (tokens "select [ A = 1 ] (R)"));
  (match tokens "select[A >= 1.5](R)" with
  | [ Token.Kw "select"; Lbracket; Ident "A"; Ge; Float 1.5; Rbracket;
      Lparen; Ident "R"; Rparen; Eof ] ->
      ()
  | _ -> Alcotest.fail "unexpected token stream");
  (match tokens "$1 <> 'two words' -- comment\n42" with
  | [ Token.Dollar 1; Neq; String "two words"; Int 42; Eof ] -> ()
  | _ -> Alcotest.fail "strings/comments/dollars")

let test_lexer_keywords_case_insensitive () =
  (match tokens "SELECT Conf ASELECT" with
  | [ Token.Kw "select"; Kw "conf"; Kw "aselect"; Eof ] -> ()
  | _ -> Alcotest.fail "keywords must be case-insensitive");
  (* Identifiers keep their case. *)
  match tokens "CoinType" with
  | [ Token.Ident "CoinType"; Eof ] -> ()
  | _ -> Alcotest.fail "identifier case"

let test_lexer_arrow_vs_minus () =
  (match tokens "A -> B" with
  | [ Token.Ident "A"; Arrow; Ident "B"; Eof ] -> ()
  | _ -> Alcotest.fail "arrow");
  match tokens "A - B" with
  | [ Token.Ident "A"; Minus; Ident "B"; Eof ] -> ()
  | _ -> Alcotest.fail "minus"

let test_lexer_errors () =
  check bool_c "bad char" true
    (try
       ignore (Lexer.tokenize "select # R");
       false
     with Lexer.Error _ -> true);
  check bool_c "unterminated string" true
    (try
       ignore (Lexer.tokenize "'oops");
       false
     with Lexer.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  (match Qparser.parse_query "conf(R)" with
  | Ua.Conf (Ua.Table "R") -> ()
  | q -> Alcotest.failf "got %a" Ua.pp q);
  (match Qparser.parse_query "select[A = 1](R)" with
  | Ua.Select (_, Ua.Table "R") -> ()
  | q -> Alcotest.failf "got %a" Ua.pp q);
  match Qparser.parse_query "project[A, B + 1 -> C](R)" with
  | Ua.Project ([ (Expr.Attr "A", "A"); (Expr.Add _, "C") ], Ua.Table "R") ->
      ()
  | q -> Alcotest.failf "got %a" Ua.pp q

let test_parse_binops_left_assoc () =
  match Qparser.parse_query "A union B minus C" with
  | Ua.Diff (Ua.Union (Ua.Table "A", Ua.Table "B"), Ua.Table "C") -> ()
  | q -> Alcotest.failf "got %a" Ua.pp q

let test_parse_repairkey () =
  (match Qparser.parse_query "repairkey[K1, K2 @ W](R)" with
  | Ua.RepairKey { key = [ "K1"; "K2" ]; weight = "W"; query = Ua.Table "R" }
    ->
      ()
  | q -> Alcotest.failf "got %a" Ua.pp q);
  match Qparser.parse_query "repairkey[@ W](R)" with
  | Ua.RepairKey { key = []; weight = "W"; _ } -> ()
  | q -> Alcotest.failf "got %a" Ua.pp q

let test_parse_aselect () =
  match Qparser.parse_query "aselect[$1 / $2 <= 0.5 | conf[A], conf[]](R)" with
  | Ua.ApproxSelect
      {
        phi = Apred.Cmp (Apred.Le, Apred.Div (Apred.Var 0, Apred.Var 1), _);
        conf_args = [ [ "A" ]; [] ];
        input = Ua.Table "R";
      } ->
      ()
  | q -> Alcotest.failf "got %a" Ua.pp q

let test_parse_aconf () =
  match Qparser.parse_query "aconf[0.1, 0.05](R)" with
  | Ua.ApproxConf ({ eps = 0.1; delta = 0.05 }, Ua.Table "R") -> ()
  | q -> Alcotest.failf "got %a" Ua.pp q

let test_parse_lit () =
  match Qparser.parse_query "lit[A, B]((1, 'x'), (2, 'y'))" with
  | Ua.Lit rel ->
      check int_c "two rows" 2 (Relation.cardinality rel);
      check bool_c "content" true
        (Relation.mem rel (Tuple.of_list [ Value.Int 1; Value.Str "x" ]))
  | q -> Alcotest.failf "got %a" Ua.pp q

let test_parse_condition_grammar () =
  let q =
    Qparser.parse_query
      "select[not (A = 1 or B < 2) and C * 2 >= D / 3](R)"
  in
  match q with
  | Ua.Select (p, _) ->
      (* Spot-check semantics of the parsed predicate. *)
      let schema = Schema.of_list [ "A"; "B"; "C"; "D" ] in
      let t a b c d =
        Tuple.of_list [ Value.Int a; Value.Int b; Value.Int c; Value.Int d ]
      in
      check bool_c "case 1" false (Predicate.eval schema (t 1 5 9 1) p);
      check bool_c "case 2" true (Predicate.eval schema (t 2 5 9 1) p);
      check bool_c "case 3" false (Predicate.eval schema (t 2 1 9 1) p)
  | q -> Alcotest.failf "got %a" Ua.pp q

let test_parse_errors () =
  let bad text =
    try
      ignore (Qparser.parse_query text);
      false
    with Qparser.Error _ -> true
  in
  check bool_c "missing paren" true (bad "conf(R");
  check bool_c "trailing" true (bad "R extra");
  check bool_c "computed without name" true (bad "project[A + 1](R)");
  check bool_c "dollar zero" true (bad "aselect[$0 >= 1 | conf[]](R)")

let test_parse_program_views () =
  let views, final =
    Qparser.parse_program
      "let V = select[A = 1](R); let W2 = V union V; conf(W2)"
  in
  check int_c "two views" 2 (List.length views);
  (match final with
  | Some (Ua.Conf (Ua.Union (a, b))) ->
      check bool_c "views substituted" true (a = b)
  | _ -> Alcotest.fail "unexpected final query");
  let _, none = Qparser.parse_program "let V = R;" in
  check bool_c "program may end after lets" true (none = None)

(* ------------------------------------------------------------------ *)
(* End to end: parsed Example 2.2 equals the programmatic one          *)
(* ------------------------------------------------------------------ *)

let example_program =
  {|
  let R = project[CoinType](repairkey[@Count](Coins));
  let S = project[FCoinType, Toss, Face](
            repairkey[FCoinType, Toss @ FProb](Faces times Tosses));
  let H1 = rename[FCoinType -> CoinType](
             project[FCoinType](select[Toss = 1 and Face = 'H'](S)));
  let H2 = rename[FCoinType -> CoinType](
             project[FCoinType](select[Toss = 2 and Face = 'H'](S)));
  let T = R join H1 join H2;
  project[CoinType, P1 / P2 -> P](
    rename[P -> P1](conf(T)) join rename[P -> P2](conf(project[](T))))
|}

let test_end_to_end_coin () =
  let _views, final = Qparser.parse_program example_program in
  let q = Option.get final in
  let udb = Scenarios.coin_db () in
  let u = Pqdb.Eval_exact.eval_relation udb q in
  let expected =
    Relation.of_rows [ "CoinType"; "P" ]
      [
        [ Value.Str "fair"; Value.rat (Q.of_ints 1 3) ];
        [ Value.Str "2headed"; Value.rat (Q.of_ints 2 3) ];
      ]
  in
  check rel_testable "posterior via the textual language" expected u

(* ------------------------------------------------------------------ *)
(* Pretty printer: parse (print q) = q                                  *)
(* ------------------------------------------------------------------ *)

module Pretty = Pqdb_lang.Pretty

(* Random queries restricted to the printable fragment: identifier names,
   non-negative integer constants, quote-free strings. *)
let printable_query_gen =
  let open QCheck.Gen in
  let name = oneofl [ "R"; "S"; "T2"; "Data" ] in
  let attr = oneofl [ "A"; "B"; "C"; "D" ] in
  let pred =
    let atom =
      map3
        (fun a op c ->
          let ops =
            [| Predicate.Eq; Predicate.Neq; Predicate.Lt; Predicate.Le;
               Predicate.Gt; Predicate.Ge |]
          in
          Predicate.Cmp (ops.(op), Expr.Attr a, Expr.Const (Value.Int c)))
        attr (int_range 0 5) (int_range 0 9)
    in
    oneof
      [
        atom;
        map2 (fun a b -> Predicate.And (a, b)) atom atom;
        map2 (fun a b -> Predicate.Or (a, b)) atom atom;
        map (fun a -> Predicate.Not a) atom;
      ]
  in
  let rec query depth =
    if depth = 0 then map (fun n -> Ua.Table n) name
    else begin
      let sub = query (depth - 1) in
      oneof
        [
          map (fun n -> Ua.Table n) name;
          map2 (fun p q -> Ua.Select (p, q)) pred sub;
          map2 (fun a q -> Ua.project [ a ] q) attr sub;
          map3
            (fun a b q -> Ua.Rename ([ (a, b) ], q))
            attr
            (oneofl [ "X"; "Y" ])
            sub;
          map2 (fun a b -> Ua.Join (a, b)) sub sub;
          map2 (fun a b -> Ua.Union (a, b)) sub sub;
          map2 (fun a b -> Ua.Product (a, b)) sub sub;
          map (fun q -> Ua.Conf q) sub;
          map (fun q -> Ua.Poss q) sub;
          map (fun q -> Ua.Cert q) sub;
          map2
            (fun k q -> Ua.RepairKey { key = [ k ]; weight = "W"; query = q })
            attr sub;
          map2
            (fun t q ->
              Ua.ApproxSelect
                {
                  phi =
                    Apred.ge
                      (Apred.Div (Apred.var 0, Apred.var 1))
                      (Apred.const (float_of_int t /. 10.));
                  conf_args = [ [ "A" ]; [] ];
                  input = q;
                })
            (int_range 1 9) sub;
        ]
    end
  in
  query 3

let prop_pretty_roundtrip =
  QCheck.Test.make ~name:"parse (print q) = q" ~count:300
    (QCheck.make printable_query_gen) (fun q ->
      let printed = Pretty.query_to_string q in
      match Qparser.parse_query printed with
      | q' -> q' = q
      | exception _ ->
          QCheck.Test.fail_reportf "unparseable: %s" printed)

let test_pretty_coin_roundtrip () =
  let q = Scenarios.coin_queries.Scenarios.u in
  let printed = Pretty.query_to_string q in
  let q' = Qparser.parse_query printed in
  check bool_c "coin posterior query roundtrips" true (q' = q)

let test_pretty_lit_roundtrip () =
  let q =
    Ua.Lit
      (Relation.of_rows [ "A"; "B" ]
         [ [ Value.Int 1; Value.Str "x" ]; [ Value.Int 2; Value.Bool true ] ])
  in
  let q' = Qparser.parse_query (Pretty.query_to_string q) in
  match (q, q') with
  | Ua.Lit a, Ua.Lit b ->
      check bool_c "literal relation roundtrips" true (Relation.equal a b)
  | _ -> Alcotest.fail "expected literals"

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "keyword case" `Quick
            test_lexer_keywords_case_insensitive;
          Alcotest.test_case "arrow vs minus" `Quick test_lexer_arrow_vs_minus;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple terms" `Quick test_parse_simple;
          Alcotest.test_case "binops left assoc" `Quick
            test_parse_binops_left_assoc;
          Alcotest.test_case "repairkey" `Quick test_parse_repairkey;
          Alcotest.test_case "aselect" `Quick test_parse_aselect;
          Alcotest.test_case "aconf" `Quick test_parse_aconf;
          Alcotest.test_case "literal relations" `Quick test_parse_lit;
          Alcotest.test_case "condition grammar" `Quick
            test_parse_condition_grammar;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "programs with views" `Quick
            test_parse_program_views;
        ] );
      ( "end to end",
        [ Alcotest.test_case "Example 2.2 via text" `Quick test_end_to_end_coin ]
      );
      ( "pretty",
        [
          qcheck prop_pretty_roundtrip;
          Alcotest.test_case "coin query roundtrips" `Quick
            test_pretty_coin_roundtrip;
          Alcotest.test_case "literal roundtrips" `Quick
            test_pretty_lit_roundtrip;
        ] );
    ]
