(* Tests for the paper's core machinery (Section 5): Theorem 5.2 closed-form
   ε, Theorem 5.5 corner search, singularities (Definition 5.6) and the
   Figure-3 predicate-approximation algorithm (Theorem 5.8). *)

open Pqdb_numeric
open Pqdb_urel
open Pqdb_montecarlo
module Apred = Pqdb_ast.Apred
module Q = Rational
module Epsilon = Pqdb.Epsilon
module Linear_eps = Pqdb.Linear_eps
module Orthotope = Pqdb.Orthotope
module Singularity = Pqdb.Singularity
module Predicate_approx = Pqdb.Predicate_approx
module Error_bound = Pqdb.Error_bound

let check = Alcotest.check
let bool_c = Alcotest.bool
let float_c = Alcotest.float

(* ------------------------------------------------------------------ *)
(* Theorem 5.2: closed-form epsilon for linear predicates              *)
(* ------------------------------------------------------------------ *)

(* Example 5.4: φ(x1, x2) = (x1/x2 >= c) as x1 - c*x2 >= 0 with c = 1/2 at
   p̂ = (1/2, 1/2): ε = α/β = (p̂1 - c·p̂2)/(p̂1 + c·p̂2) = 1/3, and the
   orthotope [3/8, 3/4]² touches the hyperplane 2x1 = x2 at (3/8, 3/4). *)
let example_5_4_pred =
  Apred.ge
    (Apred.Sub (Apred.var 0, Apred.Mul (Apred.const 0.5, Apred.var 1)))
    (Apred.const 0.)

let test_example_5_4 () =
  let point = [| 0.5; 0.5 |] in
  let eps = Epsilon.epsilon example_5_4_pred point in
  check (float_c 1e-12) "epsilon = 1/3" (1. /. 3.) eps;
  let o = Interval.orthotope_relative ~eps point in
  check (float_c 1e-12) "x1 lo = 3/8" 0.375 o.(0).Interval.lo;
  check (float_c 1e-12) "x1 hi = 3/4" 0.75 o.(0).Interval.hi;
  (* The touching point (3/8, 3/4) is on the hyperplane 2x1 = x2. *)
  check (float_c 1e-12) "touch point on hyperplane" 0.
    ((2. *. o.(0).Interval.lo) -. o.(1).Interval.hi)

let test_theorem_5_2_nonzero_b () =
  (* x1 >= b with b = 0.4 at p̂1 = 0.5: the interval [p̂/(1+ε), p̂/(1-ε)]
     stays above b iff p̂/(1+ε) >= b, i.e. ε <= p̂/b - 1 = 0.25. *)
  let pred = Apred.ge (Apred.var 0) (Apred.const 0.4) in
  let eps = Epsilon.epsilon pred [| 0.5 |] in
  check (float_c 1e-12) "quadratic-root epsilon" 0.25 eps

let test_theorem_5_2_negative_b () =
  (* x1 - x2 >= -0.2 at (0.3, 0.4): satisfied; formula must give ε in (0,1)
     with all corners of the orthotope satisfying the predicate. *)
  let pred =
    Apred.ge (Apred.Sub (Apred.var 0, Apred.var 1)) (Apred.const (-0.2))
  in
  let point = [| 0.3; 0.4 |] in
  let eps = Epsilon.epsilon pred point in
  check bool_c "positive" true (eps > 0.);
  check bool_c "corners agree just below eps" true
    (Orthotope.corners_agree pred ~point ~eps:(eps *. (1. -. 1e-9)));
  check bool_c "corners fail just above" false
    (Orthotope.corners_agree pred ~point ~eps:(eps *. 1.01))

let test_boundary_gives_zero () =
  (* Remark 5.3: a point on the hyperplane yields ε = 0. *)
  let pred = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  check (float_c 0.) "on boundary" 0. (Epsilon.epsilon pred [| 0.5 |])

let test_equality_atom_zero () =
  (* Example 5.7 / predicate "confidence = 1/2": not approximable. *)
  let pred = Apred.eq (Apred.var 0) (Apred.const 0.5) in
  check (float_c 0.) "equality at satisfied point" 0.
    (Epsilon.epsilon pred [| 0.5 |]);
  (* But a *false* equality away from the line has positive radius. *)
  check bool_c "false equality robust" true
    (Epsilon.epsilon pred [| 0.8 |] > 0.)

let test_constant_predicate () =
  let pred = Apred.ge (Apred.const 1.) (Apred.const 0.) in
  check (float_c 0.) "constant true has max radius" Linear_eps.eps_max
    (Epsilon.epsilon pred [| 0.5 |])

let test_composition_min_max () =
  let a = Apred.ge (Apred.var 0) (Apred.const 0.4) in
  (* ε_a = 0.25 at 0.5 *)
  let b = Apred.ge (Apred.var 0) (Apred.const 0.25) in
  (* ε_b = 1 - clamped: p̂/(1+ε) >= 0.25 iff ε <= 1 -> eps 1-; compute *)
  let pa = Epsilon.epsilon a [| 0.5 |] in
  let pb = Epsilon.epsilon b [| 0.5 |] in
  let both = Epsilon.epsilon (Apred.conj a b) [| 0.5 |] in
  let either = Epsilon.epsilon (Apred.disj a b) [| 0.5 |] in
  check (float_c 1e-12) "conj is min" (Float.min pa pb) both;
  check (float_c 1e-12) "disj is max" (Float.max pa pb) either

let test_mixed_truth_disjunction_sound () =
  (* Or(a, b) with a true near its boundary and b false but very robustly
     false: the sound ε is a's small radius, not b's large one. *)
  let a = Apred.ge (Apred.var 0) (Apred.const 0.49) in
  (* true at 0.5, small radius *)
  let b = Apred.ge (Apred.var 0) (Apred.const 10.) in
  (* false at 0.5, hugely robust *)
  let eps = Epsilon.epsilon (Apred.disj a b) [| 0.5 |] in
  let eps_a = Epsilon.epsilon a [| 0.5 |] in
  check (float_c 1e-12) "disjunction uses the true disjunct" eps_a eps;
  check bool_c "orthotope is homogeneous" true
    (Orthotope.corners_agree (Apred.disj a b) ~point:[| 0.5 |] ~eps)

(* Property: for random linear atoms, the closed form agrees with the corner
   binary search, and random interior samples agree with the center. *)
let random_linear_case =
  QCheck.make
    QCheck.Gen.(
      let coef = float_range (-2.) 2. in
      let pos = float_range 0.1 0.9 in
      map
        (fun (a1, a2, b, p1, p2) -> (a1, a2, b, p1, p2))
        (tup5 coef coef (float_range (-1.) 1.) pos pos))

let prop_linear_matches_search =
  QCheck.Test.make ~name:"Thm 5.2 closed form matches corner search"
    ~count:200 random_linear_case (fun (a1, a2, b, p1, p2) ->
      let pred =
        Apred.ge
          (Apred.Add
             ( Apred.Mul (Apred.const a1, Apred.var 0),
               Apred.Mul (Apred.const a2, Apred.var 1) ))
          (Apred.const b)
      in
      let point = [| p1; p2 |] in
      let closed = Epsilon.epsilon pred point in
      let searched = Orthotope.epsilon_search ~iterations:50 pred point in
      (* Corner search is exact for linear atoms (monotone per variable). *)
      Float.abs (closed -. searched) <= 1e-6 +. (1e-4 *. closed))

let prop_orthotope_homogeneous =
  QCheck.Test.make ~name:"Lemma 5.1 orthotope is homogeneous (sampled)"
    ~count:200 random_linear_case (fun (a1, a2, b, p1, p2) ->
      let pred =
        Apred.ge
          (Apred.Add
             ( Apred.Mul (Apred.const a1, Apred.var 0),
               Apred.Mul (Apred.const a2, Apred.var 1) ))
          (Apred.const b)
      in
      let point = [| p1; p2 |] in
      let eps = Epsilon.epsilon pred point in
      QCheck.assume (eps > 1e-9);
      let rng = Rng.create ~seed:42 in
      Orthotope.homogeneous_on_samples rng pred ~point
        ~eps:(eps *. 0.999) ~samples:100)

(* ------------------------------------------------------------------ *)
(* Theorem 5.5: corner search on non-linear single-occurrence atoms    *)
(* ------------------------------------------------------------------ *)

let ratio_pred c =
  (* x0 / x1 >= c — non-linear as written (division by a variable). *)
  Apred.ge (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const c)

let test_corner_search_ratio () =
  let pred = ratio_pred 0.5 in
  let point = [| 0.5; 0.5 |] in
  let eps = Epsilon.epsilon pred point in
  check bool_c "positive radius" true (eps > 0.);
  check bool_c "corners agree" true (Orthotope.corners_agree pred ~point ~eps);
  let rng = Rng.create ~seed:3 in
  check bool_c "interior homogeneous" true
    (Orthotope.homogeneous_on_samples rng pred ~point ~eps:(eps *. 0.999)
       ~samples:200)

let test_multi_occurrence_rejected () =
  (* x0 * x0 >= 0.25 is non-linear with a repeated variable. *)
  let pred =
    Apred.ge (Apred.Mul (Apred.var 0, Apred.var 0)) (Apred.const 0.25)
  in
  check bool_c "raises Unsupported" true
    (try
       ignore (Epsilon.epsilon pred [| 0.7 |]);
       false
     with Epsilon.Unsupported _ -> true)

let test_split_duplicates () =
  let pred =
    Apred.ge (Apred.Mul (Apred.var 0, Apred.var 0)) (Apred.const 0.25)
  in
  let pred', origin = Epsilon.split_duplicates pred in
  check Alcotest.int "arity grew" 2 (Apred.arity pred');
  check bool_c "now single occurrence" true (Apred.single_occurrence pred');
  check (Alcotest.array Alcotest.int) "origin map" [| 0; 0 |] origin;
  (* And the split predicate is now in the supported fragment. *)
  check bool_c "epsilon computable" true
    (Epsilon.epsilon pred' [| 0.7; 0.7 |] > 0.)

(* ------------------------------------------------------------------ *)
(* Singularities (Definition 5.6)                                      *)
(* ------------------------------------------------------------------ *)

let test_singularity_linear () =
  let pred = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  check bool_c "on boundary: singular" true
    (Singularity.possibly_singular ~eps0:0.05 pred [| 0.5 |]);
  check bool_c "near boundary within eps0: singular" true
    (Singularity.possibly_singular ~eps0:0.05 pred [| 0.51 |]);
  check bool_c "far from boundary: not singular" false
    (Singularity.possibly_singular ~eps0:0.05 pred [| 0.8 |]);
  let rng = Rng.create ~seed:17 in
  check bool_c "definitely singular on boundary" true
    (Singularity.definitely_singular ~rng ~eps0:0.05 pred [| 0.5 |]);
  check bool_c "not flagged far away" false
    (Singularity.definitely_singular ~rng ~eps0:0.05 pred [| 0.8 |])

let test_certainty_test_singular () =
  (* Example 5.7: tuple certainty conf = 1 is always a singularity when the
     true confidence is 1...  relative boxes around 1 include values > 1, and
     the predicate x >= 1 flips below 1. *)
  let pred = Apred.ge (Apred.var 0) (Apred.const 1.) in
  check bool_c "certainty test singular at p=1" true
    (Singularity.possibly_singular ~eps0:0.01 pred [| 1.0 |])

(* ------------------------------------------------------------------ *)
(* Figure 3 (Theorem 5.8)                                              *)
(* ------------------------------------------------------------------ *)

(* One approximable value: P(x=1) with x ~ Bernoulli(p_true), DNF {x=1}. *)
let bernoulli_estimator w p_true =
  let num = int_of_float (Float.round (p_true *. 1000.)) in
  let x = Wtable.add_var w [ Q.of_ints (1000 - num) 1000; Q.of_ints num 1000 ] in
  Estimator.create (Dnf.prepare w [ Assignment.singleton x 1 ])

let test_fig3_decides_correctly () =
  (* conf >= 0.5 with true p = 0.8: over many runs the decision is wrong at
     most δ of the time (plus statistical slack). *)
  let delta = 0.1 in
  let rng = Rng.create ~seed:123 in
  let tally = Stats.tally () in
  for _ = 1 to 200 do
    let w = Wtable.create () in
    let est = bernoulli_estimator w 0.8 in
    let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
    let d = Predicate_approx.decide ~eps0:0.05 ~rng ~delta phi [| est |] in
    Stats.record tally (d.value = true);
    assert (d.error_bound <= delta +. 1e-9)
  done;
  let rate = Stats.error_rate tally in
  check bool_c
    (Printf.sprintf "error rate %.3f within delta" rate)
    true
    (rate <= delta +. 0.05)

let test_fig3_terminates_on_boundary () =
  (* True p exactly on the boundary: the ε0 floor still forces termination
     (the answer is unreliable, but the loop must stop). *)
  let rng = Rng.create ~seed:31 in
  let w = Wtable.create () in
  let est = bernoulli_estimator w 0.5 in
  let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  let d = Predicate_approx.decide ~eps0:0.1 ~rng ~delta:0.2 phi [| est |] in
  check bool_c "terminated" true (d.rounds > 0);
  check bool_c "bound met at eps0" true (d.error_bound <= 0.2 +. 1e-9)

let test_fig3_far_cheaper_than_near () =
  (* The adaptive algorithm spends fewer estimator calls when the true value
     is far from the decision boundary (the E7 claim, smoke-tested). *)
  let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  let calls p seed =
    let rng = Rng.create ~seed in
    let total = ref 0 in
    for _ = 1 to 20 do
      let w = Wtable.create () in
      let est = bernoulli_estimator w p in
      let d = Predicate_approx.decide ~eps0:0.02 ~rng ~delta:0.1 phi [| est |] in
      total := !total + d.estimator_calls
    done;
    !total
  in
  let far = calls 0.9 1 and near = calls 0.55 1 in
  check bool_c
    (Printf.sprintf "far (%d) cheaper than near (%d)" far near)
    true (far < near)

let test_fig3_vs_naive () =
  (* Same decision, adaptive at most as many calls as naive when far from
     the boundary. *)
  let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  let rng = Rng.create ~seed:77 in
  let adaptive_calls = ref 0 and naive_calls = ref 0 in
  for _ = 1 to 20 do
    let w = Wtable.create () in
    let est = bernoulli_estimator w 0.9 in
    let d = Predicate_approx.decide ~eps0:0.02 ~rng ~delta:0.1 phi [| est |] in
    adaptive_calls := !adaptive_calls + d.estimator_calls;
    let w2 = Wtable.create () in
    let est2 = bernoulli_estimator w2 0.9 in
    let d2 = Predicate_approx.decide_naive ~eps0:0.02 ~rng ~delta:0.1 phi [| est2 |] in
    naive_calls := !naive_calls + d2.estimator_calls;
    check bool_c "same decision" d2.value d.value
  done;
  check bool_c
    (Printf.sprintf "adaptive %d < naive %d" !adaptive_calls !naive_calls)
    true
    (!adaptive_calls < !naive_calls)

let test_fig3_round_limit () =
  let rng = Rng.create ~seed:13 in
  let w = Wtable.create () in
  let est = bernoulli_estimator w 0.5 in
  let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  let d =
    Predicate_approx.decide ~eps0:0.001 ~max_rounds:3 ~rng ~delta:0.001 phi
      [| est |]
  in
  check bool_c "hit the limit" true d.hit_round_limit;
  check Alcotest.int "stopped at 3 rounds" 3 d.rounds

let test_fig3_two_values_ratio () =
  (* Conditional-probability style predicate x0/x1 <= 0.6 with true values
     p0 = 1/6, p1 = 1/2 (ratio 1/3): decided true reliably. *)
  let rng = Rng.create ~seed:55 in
  let phi =
    Apred.le (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const 0.6)
  in
  let tally = Stats.tally () in
  for _ = 1 to 50 do
    let w = Wtable.create () in
    let e0 = bernoulli_estimator w (1. /. 6.) in
    let e1 = bernoulli_estimator w 0.5 in
    let d = Predicate_approx.decide ~eps0:0.05 ~rng ~delta:0.1 phi [| e0; e1 |] in
    Stats.record tally d.value
  done;
  check bool_c "ratio predicate decided true" true
    (Stats.error_rate tally <= 0.1 +. 0.06)

(* ------------------------------------------------------------------ *)
(* Proposition 6.6 bounds                                              *)
(* ------------------------------------------------------------------ *)

let test_error_bound_shapes () =
  let b l = Error_bound.proposition_6_6 ~k:2 ~d:2 ~n:10 ~eps0:0.1 ~rounds:l in
  (* Pick budgets large enough that the bound is below its cap of 1. *)
  check bool_c "decreasing in l" true (b 6000 < b 5000);
  let l0 = Error_bound.rounds_for_guarantee ~k:2 ~d:2 ~n:10 ~eps0:0.1 ~delta:0.05 in
  check bool_c "l0 achieves the bound" true (b l0 <= 0.05 +. 1e-9);
  (* The solved recurrence is dominated by the closed form. *)
  let per_level = Stats.delta' ~eps:0.1 ~rounds:l0 in
  check bool_c "recurrence <= closed form" true
    (Error_bound.recurrence ~k:2 ~n:10 ~d:2 ~per_level <= b l0 +. 1e-12)

(* ------------------------------------------------------------------ *)
(* More epsilon / decision behaviours                                  *)
(* ------------------------------------------------------------------ *)

let test_linear_extraction () =
  let module L = Linear_eps in
  let e = Apred.Add (Apred.Mul (Apred.const 2., Apred.var 0), Apred.const 1.) in
  (match L.of_expr ~arity:1 e with
  | Some l ->
      check (float_c 1e-12) "coeff" 2. l.L.coeffs.(0);
      check (float_c 1e-12) "const" 1. l.L.constant
  | None -> Alcotest.fail "expected linear");
  check bool_c "x*y is not linear" true
    (L.of_expr ~arity:2 (Apred.Mul (Apred.var 0, Apred.var 1)) = None);
  check bool_c "1/x is not linear" true
    (L.of_expr ~arity:1 (Apred.Div (Apred.const 1., Apred.var 0)) = None);
  (* Division by a constant is linear. *)
  (match L.of_expr ~arity:1 (Apred.Div (Apred.var 0, Apred.const 2.)) with
  | Some l -> check (float_c 1e-12) "x/2 coeff" 0.5 l.L.coeffs.(0)
  | None -> Alcotest.fail "x/2 should be linear");
  check bool_c "x/0 rejected" true
    (L.of_expr ~arity:1 (Apred.Div (Apred.var 0, Apred.const 0.)) = None)

let prop_epsilon_monotone_in_distance =
  (* For x >= c, moving the point away from c never shrinks epsilon. *)
  QCheck.Test.make ~name:"epsilon monotone in distance from boundary"
    ~count:200
    (QCheck.pair (QCheck.float_range 0.1 0.4) (QCheck.float_range 0.0 0.4))
    (fun (c, step) ->
      let pred = Apred.ge (Apred.var 0) (Apred.const c) in
      let near = Epsilon.epsilon pred [| c +. 0.05 |] in
      let far = Epsilon.epsilon pred [| c +. 0.05 +. step |] in
      far >= near -. 1e-12)

let test_epsilon_false_conjunction () =
  (* And(a, b) with a true, b false: overall false; homogeneity follows the
     false conjunct. *)
  let a = Apred.ge (Apred.var 0) (Apred.const 0.1) in
  let b = Apred.ge (Apred.var 0) (Apred.const 0.9) in
  let p = [| 0.5 |] in
  let eps = Epsilon.epsilon (Apred.conj a b) p in
  check (float_c 1e-12) "false conjunct drives it" (Epsilon.epsilon b p) eps;
  check bool_c "predicate is false at p" false (Apred.eval p (Apred.conj a b))

let test_epsilon_for_decision_alias () =
  let pred = Apred.ge (Apred.var 0) (Apred.const 0.4) in
  check (float_c 0.) "alias agrees" (Epsilon.epsilon pred [| 0.5 |])
    (Epsilon.epsilon_for_decision pred [| 0.5 |])

let test_epsilon_search_is_sound_at_low_precision () =
  (* Few bisection iterations yield a smaller but still sound radius. *)
  let pred = Apred.ge (Apred.var 0) (Apred.const 0.4) in
  let point = [| 0.5 |] in
  let coarse = Orthotope.epsilon_search ~iterations:5 pred point in
  let fine = Orthotope.epsilon_search ~iterations:50 pred point in
  check bool_c "coarse <= fine" true (coarse <= fine +. 1e-12);
  check bool_c "coarse still homogeneous" true
    (Orthotope.corners_agree pred ~point ~eps:coarse)

let test_decide_argument_validation () =
  let rng = Rng.create ~seed:1 in
  let w = Wtable.create () in
  let est = bernoulli_estimator w 0.5 in
  let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  check bool_c "bad delta" true
    (try
       ignore (Predicate_approx.decide ~rng ~delta:0. phi [| est |]);
       false
     with Invalid_argument _ -> true);
  check bool_c "bad eps0" true
    (try
       ignore (Predicate_approx.decide ~eps0:1.5 ~rng ~delta:0.1 phi [| est |]);
       false
     with Invalid_argument _ -> true);
  check bool_c "not enough estimators" true
    (try
       ignore (Predicate_approx.decide ~rng ~delta:0.1 phi [||]);
       false
     with Invalid_argument _ -> true)

let test_decide_with_degenerate_estimator () =
  (* One genuinely certain value (p = 1) alongside a sampled one. *)
  let rng = Rng.create ~seed:6 in
  let w = Wtable.create () in
  let certain =
    Estimator.create (Dnf.prepare w [ Pqdb_urel.Assignment.empty ])
  in
  let sampled = bernoulli_estimator w 0.8 in
  let phi =
    Apred.conj
      (Apred.ge (Apred.var 0) (Apred.const 0.9))
      (Apred.ge (Apred.var 1) (Apred.const 0.5))
  in
  let d =
    Predicate_approx.decide ~eps0:0.05 ~rng ~delta:0.1 phi
      [| certain; sampled |]
  in
  check bool_c "decided true" true d.Predicate_approx.value;
  check bool_c "bound met" true (d.Predicate_approx.error_bound <= 0.1 +. 1e-9)

let test_decide_all_degenerate () =
  let rng = Rng.create ~seed:6 in
  let w = Wtable.create () in
  let certain =
    Estimator.create (Dnf.prepare w [ Pqdb_urel.Assignment.empty ])
  in
  let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  let d = Predicate_approx.decide ~rng ~delta:0.1 phi [| certain |] in
  check bool_c "no sampling" true (d.Predicate_approx.estimator_calls = 0);
  check bool_c "true" true d.Predicate_approx.value;
  check (float_c 0.) "zero error" 0. d.Predicate_approx.error_bound;
  check bool_c "no floor reliance" false d.Predicate_approx.used_floor

let test_split_duplicates_preserves_semantics () =
  let pred =
    Apred.ge (Apred.Mul (Apred.var 0, Apred.var 0)) (Apred.const 0.25)
  in
  let pred2, origin = Epsilon.split_duplicates pred in
  List.iter
    (fun x ->
      let expanded = Array.map (fun o -> [| x |].(o)) origin in
      check bool_c "same truth value" (Apred.eval [| x |] pred)
        (Apred.eval expanded pred2))
    [ 0.1; 0.4; 0.5; 0.6; 0.9 ]

let test_independent_bound_is_cheaper () =
  (* With two approximable values the 1 - prod(1 - d_i) bound reaches the
     target with no more sampling than the Figure-3 sum. *)
  let phi =
    Apred.conj
      (Apred.ge (Apred.var 0) (Apred.const 0.5))
      (Apred.ge (Apred.var 1) (Apred.const 0.5))
  in
  let total flag seed =
    let rng = Rng.create ~seed in
    let calls = ref 0 in
    for _ = 1 to 10 do
      let w = Wtable.create () in
      let e0 = bernoulli_estimator w 0.8 in
      let e1 = bernoulli_estimator w 0.9 in
      let d =
        Predicate_approx.decide ~independent:flag ~eps0:0.05 ~rng ~delta:0.1
          phi [| e0; e1 |]
      in
      calls := !calls + d.Predicate_approx.estimator_calls
    done;
    !calls
  in
  check bool_c "independent bound needs no more calls" true
    (total true 42 <= total false 42)

let test_example_6_3_inequality () =
  (* Example 6.3: treating the error *bound* delta as the exact error
     probability overstates P(sigma(R) nonempty).  With true per-tuple error
     e < delta for t1 (dropped) and delta for t2 (kept):
       true  P = (1 - delta) + e * delta        (t2 correct, or both flip)
       model P = (1 - delta) + delta^2
     so the model is too optimistic whenever e < delta. *)
  let delta = 0.1 and e = 0.01 in
  let truth = 1. -. delta +. (e *. delta) in
  let modelled = 1. -. delta +. (delta *. delta) in
  check bool_c "model overstates" true (modelled > truth);
  check (float_c 1e-12) "paper's numbers" 0.901 truth;
  check (float_c 1e-12) "modelled value" 0.91 modelled

(* ------------------------------------------------------------------ *)
(* The Apred language itself                                            *)
(* ------------------------------------------------------------------ *)

let apred_gen =
  let open QCheck.Gen in
  let expr =
    oneof
      [
        map (fun i -> Apred.Var i) (int_range 0 1);
        map (fun c -> Apred.Const (float_of_int c /. 4.)) (int_range 0 4);
      ]
  in
  let atom =
    map3
      (fun op a b ->
        let ops = [| Apred.Eq; Neq; Lt; Le; Gt; Ge |] in
        Apred.Cmp (ops.(op), a, b))
      (int_range 0 5) expr expr
  in
  let rec go depth =
    if depth = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map2 (fun a b -> Apred.And (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Apred.Or (a, b)) (go (depth - 1)) (go (depth - 1)));
          (2, map (fun a -> Apred.Not a) (go (depth - 1)));
        ]
  in
  go 3

let sample_points =
  [ [| 0.; 0. |]; [| 0.25; 0.75 |]; [| 0.5; 0.5 |]; [| 1.; 0.25 |] ]

let prop_apred_nnf_equivalent =
  QCheck.Test.make ~name:"apred nnf preserves semantics" ~count:300
    (QCheck.make apred_gen) (fun phi ->
      let n = Apred.nnf phi in
      List.for_all (fun p -> Apred.eval p phi = Apred.eval p n) sample_points)

let prop_apred_nnf_removes_not =
  QCheck.Test.make ~name:"apred nnf eliminates Not" ~count:300
    (QCheck.make apred_gen) (fun phi ->
      let rec no_not = function
        | Apred.Not _ -> false
        | Apred.And (a, b) | Apred.Or (a, b) -> no_not a && no_not b
        | Apred.Cmp _ | Apred.True | Apred.False -> true
      in
      no_not (Apred.nnf phi))

let prop_apred_rational_eval_agrees =
  (* On dyadic points every constant and intermediate is float-exact, so the
     rational and float evaluations must decide identically. *)
  QCheck.Test.make ~name:"apred rational eval agrees with float" ~count:300
    (QCheck.make apred_gen) (fun phi ->
      List.for_all
        (fun p ->
          let pr = Array.map Q.of_float p in
          match Apred.eval_rational pr phi with
          | v -> v = Apred.eval p phi
          | exception Division_by_zero ->
              (* float path yields inf/nan instead; skip those points *)
              true)
        sample_points)

let test_apred_structure () =
  let phi =
    Apred.conj
      (Apred.ge (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const 0.5))
      (Apred.lt (Apred.var 1) (Apred.const 1.))
  in
  check Alcotest.int "arity" 2 (Apred.arity phi);
  check (Alcotest.array Alcotest.int) "occurrences" [| 1; 2 |]
    (Apred.occurrences phi);
  check bool_c "not single occurrence" false (Apred.single_occurrence phi);
  check Alcotest.int "variable-free arity" 0
    (Apred.arity (Apred.ge (Apred.const 1.) (Apred.const 0.)))

(* ------------------------------------------------------------------ *)
(* Approximable values (the Section 5 generalization)                  *)
(* ------------------------------------------------------------------ *)

module Approximable = Pqdb.Approximable

let test_sampler_converges () =
  let rng = Rng.create ~seed:21 in
  let values = Array.init 1000 (fun i -> float_of_int (i mod 10)) in
  (* true mean 4.5 *)
  let v = Approximable.of_sampler ~lower_bound:1. ~values () in
  Approximable.refine_by rng v 20_000;
  check bool_c "estimate near 4.5" true
    (Float.abs (Approximable.estimate v -. 4.5) < 0.2);
  check bool_c "bound shrinks with draws" true
    (Approximable.delta_bound v ~eps:0.1 < 0.5)

let test_sampler_validation () =
  check bool_c "empty population" true
    (try
       ignore (Approximable.of_sampler ~lower_bound:1. ~values:[||] ());
       false
     with Invalid_argument _ -> true);
  check bool_c "non-positive lower bound" true
    (try
       ignore
         (Approximable.of_sampler ~lower_bound:0. ~values:[| 1.; 2. |] ());
       false
     with Invalid_argument _ -> true);
  (* Constant population collapses to an exact value. *)
  let v = Approximable.of_sampler ~lower_bound:1. ~values:[| 3.; 3. |] () in
  check bool_c "constant population is exact" true (Approximable.is_exact v);
  check (float_c 0.) "exact value" 3. (Approximable.estimate v)

let test_decide_values_on_sampler () =
  (* Decide mean >= threshold by sampling: error rate within delta. *)
  let delta = 0.1 in
  let tally = Stats.tally () in
  for seed = 1 to 60 do
    let rng = Rng.create ~seed:(900 + seed) in
    let values = Array.init 500 (fun i -> float_of_int (10 + (i mod 20))) in
    (* true mean 19.5; threshold 15 is comfortably below *)
    let phi = Apred.ge (Apred.var 0) (Apred.const 15.) in
    let d =
      Predicate_approx.decide_values ~eps0:0.05 ~rng ~delta phi
        [| Approximable.of_sampler ~lower_bound:10. ~values () |]
    in
    Stats.record tally d.Predicate_approx.value
  done;
  check bool_c "sampling decisions within delta" true
    (Stats.error_rate tally <= delta +. 0.05)

let test_decide_values_mixed_kinds () =
  let rng = Rng.create ~seed:77 in
  let w = Wtable.create () in
  let conf = Approximable.of_karp_luby (bernoulli_estimator w 0.9) in
  let agg =
    Approximable.of_sampler ~lower_bound:1.
      ~values:(Array.init 100 (fun i -> float_of_int (1 + (i mod 5))))
      ()
  in
  let known = Approximable.constant 2. in
  (* conf * known >= 1 and agg >= 2  (true: 0.9*2 = 1.8 >= 1, mean 3 >= 2) *)
  let phi =
    Apred.conj
      (Apred.ge (Apred.Mul (Apred.var 0, Apred.var 2)) (Apred.const 1.))
      (Apred.ge (Apred.var 1) (Apred.const 2.))
  in
  let d =
    Predicate_approx.decide_values ~eps0:0.05 ~rng ~delta:0.1 phi
      [| conf; agg; known |]
  in
  check bool_c "mixed decision true" true d.Predicate_approx.value;
  check bool_c "bound met" true (d.Predicate_approx.error_bound <= 0.1 +. 1e-9)

let test_decide_values_matches_karp_luby_path () =
  (* The generic loop over of_karp_luby values behaves like the dedicated
     Estimator-array implementation. *)
  let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  let run_generic seed =
    let rng = Rng.create ~seed in
    let w = Wtable.create () in
    let est = bernoulli_estimator w 0.8 in
    Predicate_approx.decide_values ~eps0:0.05 ~rng ~delta:0.1 phi
      [| Approximable.of_karp_luby est |]
  in
  let run_direct seed =
    let rng = Rng.create ~seed in
    let w = Wtable.create () in
    let est = bernoulli_estimator w 0.8 in
    Predicate_approx.decide ~eps0:0.05 ~rng ~delta:0.1 phi [| est |]
  in
  let g = run_generic 5 and d = run_direct 5 in
  check bool_c "same decision" d.Predicate_approx.value
    g.Predicate_approx.value;
  check Alcotest.int "same call count" d.Predicate_approx.estimator_calls
    g.Predicate_approx.estimator_calls

let test_recurrence_base_case () =
  check (float_c 0.) "d = 0 has no error" 0.
    (Error_bound.recurrence ~k:3 ~n:10 ~d:0 ~per_level:0.1)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "core"
    [
      ( "theorem 5.2",
        [
          Alcotest.test_case "Example 5.4 / Figure 2" `Quick test_example_5_4;
          Alcotest.test_case "nonzero b" `Quick test_theorem_5_2_nonzero_b;
          Alcotest.test_case "negative b" `Quick test_theorem_5_2_negative_b;
          Alcotest.test_case "boundary gives 0 (Remark 5.3)" `Quick
            test_boundary_gives_zero;
          Alcotest.test_case "equality atoms" `Quick test_equality_atom_zero;
          Alcotest.test_case "constant predicates" `Quick
            test_constant_predicate;
          Alcotest.test_case "and/or composition" `Quick
            test_composition_min_max;
          Alcotest.test_case "mixed-truth disjunction sound" `Quick
            test_mixed_truth_disjunction_sound;
          qcheck prop_linear_matches_search;
          qcheck prop_orthotope_homogeneous;
        ] );
      ( "theorem 5.5",
        [
          Alcotest.test_case "ratio predicate corner search" `Quick
            test_corner_search_ratio;
          Alcotest.test_case "multi-occurrence rejected" `Quick
            test_multi_occurrence_rejected;
          Alcotest.test_case "split_duplicates" `Quick test_split_duplicates;
        ] );
      ( "singularity",
        [
          Alcotest.test_case "linear detection" `Quick test_singularity_linear;
          Alcotest.test_case "certainty test (Example 5.7)" `Quick
            test_certainty_test_singular;
        ] );
      ( "figure 3",
        [
          Alcotest.test_case "decides within delta" `Slow
            test_fig3_decides_correctly;
          Alcotest.test_case "terminates on boundary" `Quick
            test_fig3_terminates_on_boundary;
          Alcotest.test_case "far cheaper than near" `Slow
            test_fig3_far_cheaper_than_near;
          Alcotest.test_case "adaptive beats naive" `Slow test_fig3_vs_naive;
          Alcotest.test_case "round limit" `Quick test_fig3_round_limit;
          Alcotest.test_case "two-value ratio predicate" `Slow
            test_fig3_two_values_ratio;
        ] );
      ( "more behaviours",
        [
          Alcotest.test_case "linear extraction" `Quick test_linear_extraction;
          qcheck prop_epsilon_monotone_in_distance;
          Alcotest.test_case "false conjunction homogeneity" `Quick
            test_epsilon_false_conjunction;
          Alcotest.test_case "epsilon_for_decision alias" `Quick
            test_epsilon_for_decision_alias;
          Alcotest.test_case "coarse search stays sound" `Quick
            test_epsilon_search_is_sound_at_low_precision;
          Alcotest.test_case "decide argument validation" `Quick
            test_decide_argument_validation;
          Alcotest.test_case "decide with degenerate estimator" `Quick
            test_decide_with_degenerate_estimator;
          Alcotest.test_case "decide with only degenerate" `Quick
            test_decide_all_degenerate;
          Alcotest.test_case "split preserves semantics" `Quick
            test_split_duplicates_preserves_semantics;
          Alcotest.test_case "independence bound cheaper" `Quick
            test_independent_bound_is_cheaper;
          Alcotest.test_case "Example 6.3 inequality" `Quick
            test_example_6_3_inequality;
          Alcotest.test_case "recurrence base case" `Quick
            test_recurrence_base_case;
        ] );
      ( "apred language",
        [
          qcheck prop_apred_nnf_equivalent;
          qcheck prop_apred_nnf_removes_not;
          qcheck prop_apred_rational_eval_agrees;
          Alcotest.test_case "structure" `Quick test_apred_structure;
        ] );
      ( "approximable values",
        [
          Alcotest.test_case "sampler converges" `Quick test_sampler_converges;
          Alcotest.test_case "sampler validation" `Quick
            test_sampler_validation;
          Alcotest.test_case "sampled decisions within delta" `Slow
            test_decide_values_on_sampler;
          Alcotest.test_case "mixed kinds" `Quick
            test_decide_values_mixed_kinds;
          Alcotest.test_case "generic = dedicated on Karp-Luby" `Quick
            test_decide_values_matches_karp_luby_path;
        ] );
      ( "proposition 6.6",
        [ Alcotest.test_case "bound shapes" `Quick test_error_bound_shapes ]
      );
    ]
