(* Tests for the workload generators and named scenarios. *)

open Pqdb_relational
open Pqdb_urel
module Gen = Pqdb_workload.Gen
module Scenarios = Pqdb_workload.Scenarios
module Rng = Pqdb_numeric.Rng
module Q = Pqdb_numeric.Rational
module Ua = Pqdb_ast.Ua

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let q_testable = Alcotest.testable Q.pp Q.equal

let test_random_relation () =
  let rng = Rng.create ~seed:1 in
  let r = Gen.random_relation rng ~attrs:[ "A"; "B" ] ~rows:50 ~domain:1000 in
  check bool_c "rows bounded" true (Relation.cardinality r <= 50);
  check bool_c "mostly distinct with a large domain" true
    (Relation.cardinality r > 40);
  check int_c "arity" 2 (Schema.arity (Relation.schema r))

let test_weighted_relation () =
  let rng = Rng.create ~seed:2 in
  let r =
    Gen.weighted_relation rng ~attrs:[ "A" ] ~rows:30 ~domain:10 ~weight:"W"
  in
  let widx = Schema.index (Relation.schema r) "W" in
  Relation.iter
    (fun t ->
      match Tuple.get t widx with
      | Value.Int w -> check bool_c "positive weight" true (w >= 1)
      | _ -> Alcotest.fail "int weight expected")
    r

let test_tuple_independent () =
  let rng = Rng.create ~seed:3 in
  let w = Wtable.create () in
  let u = Gen.tuple_independent rng w ~attrs:[ "A" ] ~rows:20 ~domain:100 in
  check int_c "one var per row" (Urelation.size u) (Wtable.var_count w);
  List.iter
    (fun (a, _) -> check int_c "condition size 1" 1 (Assignment.cardinal a))
    (Urelation.rows u)

let test_random_dnf () =
  let rng = Rng.create ~seed:4 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:6 ~clauses:10 ~clause_len:3 in
  check int_c "clause count" 10 (List.length clauses);
  check int_c "vars registered" 6 (Wtable.var_count w);
  List.iter
    (fun c -> check bool_c "clause nonempty" true (not (Assignment.is_empty c)))
    clauses;
  (* Confidence is a proper probability. *)
  let p = Confidence.exact w clauses in
  check bool_c "proper probability" true (Q.is_proper_probability p)

let test_bernoulli_dnf () =
  let rng = Rng.create ~seed:5 in
  let w = Wtable.create () in
  let clauses = Gen.bernoulli_dnf rng w ~p:0.37 in
  check q_testable "exact weight" (Q.of_ints 370 1000)
    (Confidence.exact w clauses)

let test_linear_predicate_arity () =
  let rng = Rng.create ~seed:6 in
  let pred = Gen.linear_predicate rng ~arity:5 in
  check int_c "arity" 5 (Pqdb_ast.Apred.arity pred);
  check bool_c "linear (epsilon computable instantly)" true
    (Pqdb.Epsilon.epsilon pred [| 0.5; 0.5; 0.5; 0.5; 0.5 |] >= 0.)

let test_scaled_coin_db_consistency () =
  (* The scaled coin scenario must produce a posterior table whose column P
     sums to 1 (it is a conditional distribution over coin types). *)
  let rng = Rng.create ~seed:7 in
  let udb, u = Scenarios.scaled_coin_db rng ~coin_types:3 ~tosses:2 in
  let rel = Pqdb.Eval_exact.eval_relation udb u in
  let total =
    Relation.fold
      (fun t acc ->
        match Tuple.get t 1 with
        | Value.Rat p -> Q.add acc p
        | _ -> Alcotest.fail "rational expected")
      rel Q.zero
  in
  check q_testable "posteriors sum to 1" Q.one total

let test_dirty_customers_shape () =
  let rng = Rng.create ~seed:8 in
  let r = Scenarios.dirty_customers rng ~customers:10 ~max_dups:3 in
  let ids = Hashtbl.create 16 in
  Relation.iter
    (fun t ->
      match Tuple.get t 0 with
      | Value.Int id -> Hashtbl.replace ids id ()
      | _ -> Alcotest.fail "int id")
    r;
  check int_c "all customers present" 10 (Hashtbl.length ids)

let test_cleaning_marginals_per_customer () =
  (* Within one customer the marginals of its variants sum to 1. *)
  let rng = Rng.create ~seed:9 in
  let udb = Scenarios.cleaning_db rng ~customers:4 ~max_dups:3 in
  let marginals =
    Pqdb.Eval_exact.eval_relation udb
      (Ua.conf (Ua.project [ "Id"; "Name"; "City"; "W" ] Scenarios.cleaned))
  in
  let sums = Hashtbl.create 8 in
  Relation.iter
    (fun t ->
      let id = Value.to_string (Tuple.get t 0) in
      let p =
        match Tuple.get t 4 with
        | Value.Rat p -> p
        | _ -> Alcotest.fail "rational expected"
      in
      Hashtbl.replace sums id
        (Q.add p (Option.value ~default:Q.zero (Hashtbl.find_opt sums id))))
    marginals;
  Hashtbl.iter
    (fun id total -> check q_testable ("customer " ^ id) Q.one total)
    sums

let test_sensor_distribution () =
  let rng = Rng.create ~seed:10 in
  let udb = Scenarios.sensor_db rng ~sensors:3 in
  let marginals =
    Pqdb.Eval_exact.eval_relation udb (Ua.conf Scenarios.sensor_readings)
  in
  (* Each sensor's three level probabilities sum to 1. *)
  let sums = Hashtbl.create 8 in
  Relation.iter
    (fun t ->
      let s = Value.to_string (Tuple.get t 0) in
      let p =
        match Tuple.get t 2 with
        | Value.Rat p -> p
        | _ -> Alcotest.fail "rational expected"
      in
      Hashtbl.replace sums s
        (Q.add p (Option.value ~default:Q.zero (Hashtbl.find_opt sums s))))
    marginals;
  check int_c "three sensors" 3 (Hashtbl.length sums);
  Hashtbl.iter
    (fun s total -> check q_testable ("sensor " ^ s) Q.one total)
    sums

let test_hot_given_not_cold_is_proper () =
  let rng = Rng.create ~seed:11 in
  let udb = Scenarios.sensor_db rng ~sensors:2 in
  let rel =
    Pqdb.Eval_exact.eval_relation udb (Scenarios.hot_given_not_cold ~sensor:0)
  in
  check int_c "single row" 1 (Relation.cardinality rel);
  Relation.iter
    (fun t ->
      match Tuple.get t 0 with
      | Value.Rat p ->
          check bool_c "conditional in [0,1]" true (Q.is_proper_probability p)
      | _ -> Alcotest.fail "rational expected")
    rel

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "random relation" `Quick test_random_relation;
          Alcotest.test_case "weighted relation" `Quick test_weighted_relation;
          Alcotest.test_case "tuple independent" `Quick test_tuple_independent;
          Alcotest.test_case "random dnf" `Quick test_random_dnf;
          Alcotest.test_case "bernoulli dnf" `Quick test_bernoulli_dnf;
          Alcotest.test_case "linear predicate" `Quick
            test_linear_predicate_arity;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "scaled coin posteriors sum to 1" `Quick
            test_scaled_coin_db_consistency;
          Alcotest.test_case "dirty customers" `Quick
            test_dirty_customers_shape;
          Alcotest.test_case "cleaning marginals per customer" `Quick
            test_cleaning_marginals_per_customer;
          Alcotest.test_case "sensor distributions" `Quick
            test_sensor_distribution;
          Alcotest.test_case "conditional is proper" `Quick
            test_hot_given_not_cold_is_proper;
        ] );
    ]
