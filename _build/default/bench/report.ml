(* Table rendering and wall-clock timing for the experiment harness. *)

let section id title =
  Printf.printf "\n=== %s: %s ===\n\n" id title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* Render an aligned ASCII table. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let print_row row =
    Printf.printf "  %s\n"
      (String.concat "  " (List.map2 pad row widths))
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  print_newline ()

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* Wall-clock seconds of one run of [f], returning its result. *)
let timed f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, (t1 -. t0) /. 1e9)

(* Median wall-clock seconds over [repeat] runs (discarding results). *)
let time_median ?(repeat = 3) f =
  let samples =
    Array.init repeat (fun _ ->
        let _, s = timed f in
        s)
  in
  Pqdb_numeric.Stats.median samples

let fmt_seconds s =
  if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let fmt_float f = Printf.sprintf "%.4g" f
let fmt_int = string_of_int
