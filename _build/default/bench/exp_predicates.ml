(* Experiments E5-E8: predicate approximation (Section 5) — the Theorem 5.2
   closed form, the Theorem 5.5 corner search, the Figure-3 algorithm against
   the naive scheme, and the singularity wall. *)

open Pqdb_urel
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Stats = Pqdb_numeric.Stats
module Apred = Pqdb_ast.Apred
module Gen = Pqdb_workload.Gen
module Dnf = Pqdb_montecarlo.Dnf
module Estimator = Pqdb_montecarlo.Estimator

(* ------------------------------------------------------------------ *)
(* E5: Theorem 5.2 — closed-form epsilon for linear predicates          *)
(* ------------------------------------------------------------------ *)

let e5_linear_epsilon ~quick =
  Report.section "E5"
    "Theorem 5.2 / Example 5.4: closed-form epsilon for linear predicates";
  (* The worked example of the paper. *)
  let pred =
    Apred.ge
      (Apred.Sub (Apred.var 0, Apred.Mul (Apred.const 0.5, Apred.var 1)))
      (Apred.const 0.)
  in
  let eps = Pqdb.Epsilon.epsilon pred [| 0.5; 0.5 |] in
  Report.note
    "Example 5.4: eps = %.6f (paper: 1/3); orthotope [%.4f, %.4f]^2 (paper: \
     [3/8, 3/4]^2)"
    eps (0.5 /. (1. +. eps)) (0.5 /. (1. -. eps));
  (* Cost of the closed form vs the 2^k corner search, on linear inputs
     where both are exact. *)
  let ks = if quick then [ 2; 4; 8 ] else [ 2; 4; 8; 12; 14 ] in
  let rows =
    List.map
      (fun k ->
        let rng = Rng.create ~seed:(50 + k) in
        let pred = Gen.linear_predicate rng ~arity:k in
        let point = Array.init k (fun _ -> Rng.float_range rng 0.1 0.9) in
        let closed = ref 0. and searched = ref 0. in
        let t_closed =
          Report.time_median ~repeat:3 (fun () ->
              closed := Pqdb.Epsilon.epsilon pred point)
        in
        let t_search =
          Report.time_median ~repeat:3 (fun () ->
              searched := Pqdb.Orthotope.epsilon_search pred point)
        in
        [
          Report.fmt_int k;
          Report.fmt_float !closed;
          Report.fmt_float !searched;
          Report.fmt_seconds t_closed;
          Report.fmt_seconds t_search;
        ])
      ks
  in
  Report.table
    ~header:
      [ "k"; "closed-form eps"; "corner-search eps"; "closed time"; "search time" ]
    rows;
  Report.note
    "the closed form is linear in k; the corner search pays 2^k corner \
     evaluations per bisection step."

(* ------------------------------------------------------------------ *)
(* E6: Theorem 5.5 — corner search on non-linear predicates             *)
(* ------------------------------------------------------------------ *)

(* A single-occurrence non-linear predicate over k variables:
   x0/x1 + x2*x3 + x4/x5 + ... >= c. *)
let nonlinear_pred k c =
  let rec build i =
    if i + 1 >= k then if i < k then Some (Apred.var i) else None
    else begin
      let pair =
        if i mod 4 = 0 then Apred.Div (Apred.var i, Apred.var (i + 1))
        else Apred.Mul (Apred.var i, Apred.var (i + 1))
      in
      match build (i + 2) with
      | None -> Some pair
      | Some rest -> Some (Apred.Add (pair, rest))
    end
  in
  Apred.ge (Option.get (build 0)) (Apred.const c)

let e6_corner_search ~quick =
  Report.section "E6"
    "Theorem 5.5: corner-point search on single-occurrence algebraic \
     predicates";
  let ks = if quick then [ 2; 4; 8 ] else [ 2; 4; 8; 10; 12 ] in
  let rng = Rng.create ~seed:66 in
  let rows =
    List.map
      (fun k ->
        let pred = nonlinear_pred k 0.5 in
        let point = Array.init k (fun _ -> Rng.float_range rng 0.6 1.4) in
        let eps = ref 0. in
        let t =
          Report.time_median ~repeat:3 (fun () ->
              eps := Pqdb.Epsilon.epsilon pred point)
        in
        (* Sampled homogeneity check (the Theorem 5.5 claim). *)
        let homogeneous =
          !eps <= 0.
          || Pqdb.Orthotope.homogeneous_on_samples rng pred ~point
               ~eps:(!eps *. 0.999) ~samples:200
        in
        [
          Report.fmt_int k;
          Report.fmt_int (1 lsl k);
          Report.fmt_float !eps;
          string_of_bool homogeneous;
          Report.fmt_seconds t;
        ])
      ks
  in
  Report.table
    ~header:[ "k"; "corners"; "eps found"; "homogeneous?"; "time" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: Figure 3 vs the naive scheme                                     *)
(* ------------------------------------------------------------------ *)

let bernoulli_estimator rng w p = ignore rng;
  Estimator.create (Dnf.prepare w (Gen.bernoulli_dnf (Rng.create ~seed:0) w ~p))

let e7_fig3_vs_naive ~quick =
  Report.section "E7"
    "Figure 3 / Theorem 5.8: adaptive predicate decision vs the naive \
     full-budget scheme";
  let threshold = 0.5 and eps0 = 0.02 and delta = 0.1 in
  let phi = Apred.ge (Apred.var 0) (Apred.const threshold) in
  let ps =
    if quick then [ 0.55; 0.6; 0.7; 0.9 ]
    else [ 0.52; 0.55; 0.6; 0.7; 0.8; 0.9 ]
  in
  let trials = if quick then 15 else 40 in
  let rng = Rng.create ~seed:7 in
  let rows =
    List.map
      (fun p ->
        let adaptive = ref 0 and naive = ref 0 in
        let wrong = Stats.tally () in
        for _ = 1 to trials do
          let w = Wtable.create () in
          let est = bernoulli_estimator rng w p in
          let d =
            Pqdb.Predicate_approx.decide ~eps0 ~rng ~delta phi [| est |]
          in
          adaptive := !adaptive + d.Pqdb.Predicate_approx.estimator_calls;
          Stats.record wrong (d.Pqdb.Predicate_approx.value = (p >= threshold));
          let w2 = Wtable.create () in
          let est2 = bernoulli_estimator rng w2 p in
          let d2 =
            Pqdb.Predicate_approx.decide_naive ~eps0 ~rng ~delta phi [| est2 |]
          in
          naive := !naive + d2.Pqdb.Predicate_approx.estimator_calls
        done;
        let mean_adaptive = float_of_int !adaptive /. float_of_int trials in
        let mean_naive = float_of_int !naive /. float_of_int trials in
        (* Predicted saving: close to (eps_phi^2 - eps0^2)/eps_phi^2 of the
           naive cost (end of Section 5), i.e. cost ratio ~ eps0^2/eps_phi^2. *)
        let eps_phi = Pqdb.Epsilon.epsilon phi [| p |] in
        let predicted_ratio = (eps0 /. eps_phi) ** 2. in
        [
          Report.fmt_float p;
          Report.fmt_float eps_phi;
          Report.fmt_float mean_adaptive;
          Report.fmt_float mean_naive;
          Report.fmt_float (mean_adaptive /. mean_naive);
          Report.fmt_float predicted_ratio;
          Report.fmt_float (Stats.error_rate wrong);
        ])
      ps
  in
  Report.table
    ~header:
      [
        "true p";
        "eps_phi";
        "fig3 calls";
        "naive calls";
        "measured ratio";
        "predicted ratio";
        "error rate";
      ]
    rows;
  Report.note
    "far from the boundary the adaptive algorithm needs a vanishing fraction \
     of the naive budget; error rates stay below delta = %.2f." delta

(* ------------------------------------------------------------------ *)
(* E8: singularities (Definition 5.6 / Example 5.7)                     *)
(* ------------------------------------------------------------------ *)

let e8_singularity_wall ~quick =
  Report.section "E8"
    "Definition 5.6 / Example 5.7: the cost wall near singularities";
  let threshold = 0.5 and eps0 = 0.01 and delta = 0.1 in
  let phi = Apred.ge (Apred.var 0) (Apred.const threshold) in
  let gammas =
    if quick then [ 0.2; 0.05; 0.01; 0.0 ]
    else [ 0.2; 0.1; 0.05; 0.02; 0.01; 0.005; 0.0 ]
  in
  let trials = if quick then 5 else 15 in
  let rng = Rng.create ~seed:8 in
  let rows =
    List.map
      (fun gamma ->
        let p = threshold *. (1. +. gamma) in
        let calls = ref 0 and floored = ref 0 in
        for _ = 1 to trials do
          let w = Wtable.create () in
          let est = bernoulli_estimator rng w p in
          let d = Pqdb.Predicate_approx.decide ~eps0 ~rng ~delta phi [| est |] in
          calls := !calls + d.Pqdb.Predicate_approx.estimator_calls;
          if d.Pqdb.Predicate_approx.used_floor then incr floored
        done;
        let singular =
          Pqdb.Singularity.possibly_singular ~eps0 phi [| p |]
        in
        [
          Report.fmt_float gamma;
          Report.fmt_float (float_of_int !calls /. float_of_int trials);
          Printf.sprintf "%d/%d" !floored trials;
          string_of_bool singular;
        ])
      gammas
  in
  Report.table
    ~header:
      [ "rel. distance to boundary"; "mean calls"; "hit eps0 floor"; "eps0-singular?" ]
    rows;
  (* Example 5.7: tuple certainty can never be confirmed. *)
  let w = Wtable.create () in
  let certain_var = Wtable.add_var w [ Q.one ] in
  let est =
    Estimator.create (Dnf.prepare w [ Assignment.singleton certain_var 0 ])
  in
  let cert_phi = Apred.ge (Apred.var 0) (Apred.const 1.) in
  let d =
    Pqdb.Predicate_approx.decide ~eps0 ~rng ~delta cert_phi [| est |]
  in
  Report.note
    "certainty test (conf >= 1 with true p = 1): answered %b relying on the \
     eps0 floor: %b — the answer can never be *certified* (Example 5.7)."
    d.Pqdb.Predicate_approx.value d.Pqdb.Predicate_approx.used_floor
