(* Experiments E1-E4: the representation system, positive-fragment scaling,
   exact-vs-FPRAS confidence, and FPRAS convergence.  See DESIGN.md for the
   experiment index and EXPERIMENTS.md for paper-vs-measured. *)

open Pqdb_relational
open Pqdb_urel
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Stats = Pqdb_numeric.Stats
module Ua = Pqdb_ast.Ua
module Scenarios = Pqdb_workload.Scenarios
module Gen = Pqdb_workload.Gen
module Dnf = Pqdb_montecarlo.Dnf
module Karp_luby = Pqdb_montecarlo.Karp_luby

(* ------------------------------------------------------------------ *)
(* E1: Example 2.2 and its scaled versions                             *)
(* ------------------------------------------------------------------ *)

let e1_coin_example ~quick =
  Report.section "E1" "Example 2.2 / Figure 1: the coin-bag posterior";
  let udb = Scenarios.coin_db () in
  let q = Scenarios.coin_queries in
  let u, secs =
    Report.timed (fun () ->
        Pqdb.Eval_exact.eval_relation udb q.Scenarios.u)
  in
  Report.note "posterior (exact, U-relational path), computed in %s:"
    (Report.fmt_seconds secs);
  Format.printf "%a@." Relation.pp u;
  let pdb =
    Pqdb_worlds.Pdb.of_complete
      [
        ("Coins", Scenarios.coins);
        ("Faces", Scenarios.faces);
        ("Tosses", Scenarios.tosses);
      ]
  in
  let ground =
    Pqdb_worlds.Eval_naive.eval_certain pdb q.Scenarios.u
  in
  Report.note "ground truth (possible-worlds path) agrees: %b"
    (Relation.equal u ground);
  Report.note "W variables created: %d (paper's Figure 1(b): 3)"
    (Wtable.var_count (Udb.wtable udb));
  (* Scaling: more coin types and more tosses. *)
  let cases =
    if quick then [ (2, 2); (4, 3); (6, 4) ]
    else [ (2, 2); (4, 3); (6, 4); (8, 5); (10, 6) ]
  in
  let rows =
    List.map
      (fun (types, tosses) ->
        let rng = Rng.create ~seed:(types + (100 * tosses)) in
        let udb, u = Scenarios.scaled_coin_db rng ~coin_types:types ~tosses in
        let secs =
          Report.time_median ~repeat:3 (fun () ->
              ignore (Pqdb.Eval_exact.eval_relation (Udb.copy udb) u))
        in
        let vars =
          let udb' = Udb.copy udb in
          ignore (Pqdb.Eval_exact.eval udb' u);
          Wtable.var_count (Udb.wtable udb')
        in
        [
          Report.fmt_int types;
          Report.fmt_int tosses;
          Report.fmt_int vars;
          Report.fmt_seconds secs;
        ])
      cases
  in
  Report.table
    ~header:[ "coin types"; "tosses"; "W vars"; "exact posterior time" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: Proposition 3.3 — positive fragment scales polynomially         *)
(* ------------------------------------------------------------------ *)

let e2_positive_ra_scaling ~quick =
  Report.section "E2"
    "Proposition 3.3: positive UA[repair-key] on U-relations is cheap";
  let sizes = if quick then [ 200; 800; 3200 ] else [ 200; 800; 3200; 12800 ] in
  let rows =
    List.map
      (fun n ->
        let rng = Rng.create ~seed:n in
        let w = Wtable.create () in
        let r = Gen.tuple_independent rng w ~attrs:[ "A"; "B" ] ~rows:n ~domain:100 in
        (* The joined relation stays fixed so the sweep isolates |R|. *)
        let s =
          Urelation.of_relation
            (Gen.random_relation rng ~attrs:[ "B"; "C" ] ~rows:100 ~domain:100)
        in
        let secs =
          Report.time_median ~repeat:3 (fun () ->
              ignore
                (Translate.project_attrs [ "A"; "C" ]
                   (Translate.join
                      (Translate.select
                         Predicate.(Expr.attr "A" >= Expr.int 0)
                         r)
                      s)))
        in
        let per_row = secs /. float_of_int n *. 1e6 in
        [
          Report.fmt_int n;
          Report.fmt_seconds secs;
          Printf.sprintf "%.2fus" per_row;
        ])
      sizes
  in
  Report.table ~header:[ "|R| rows"; "select+join+project"; "per input row" ] rows;
  Report.note
    "the per-row cost should stay roughly flat (low-polynomial data complexity)."

(* ------------------------------------------------------------------ *)
(* E3: Theorem 3.4 — exact confidence is exponential, the FPRAS is not *)
(* ------------------------------------------------------------------ *)

let e3_exact_vs_fpras ~quick =
  Report.section "E3"
    "Theorem 3.4 vs Proposition 4.2: exact confidence blows up, Karp-Luby \
     stays flat";
  let sizes = if quick then [ 6; 10; 14 ] else [ 6; 10; 14; 18; 22 ] in
  let rows =
    List.map
      (fun vars ->
        let rng = Rng.create ~seed:(1000 + vars) in
        let w = Wtable.create () in
        let clauses =
          Gen.random_dnf rng w ~vars ~clauses:vars ~clause_len:3
        in
        let dnf = Dnf.prepare w clauses in
        let enum_time =
          if vars <= 14 then
            Some
              (Report.time_median ~repeat:1 (fun () ->
                   ignore (Confidence.by_enumeration w clauses)))
          else None
        in
        let shannon_time =
          Report.time_median ~repeat:1 (fun () ->
              ignore (Confidence.by_shannon w clauses))
        in
        let exact = Q.to_float (Confidence.by_shannon w clauses) in
        let kl = ref 0. in
        let kl_time =
          Report.time_median ~repeat:1 (fun () ->
              kl := Karp_luby.fpras rng dnf ~eps:0.1 ~delta:0.05)
        in
        let rel_err =
          if exact > 0. then Float.abs (!kl -. exact) /. exact else 0.
        in
        [
          Report.fmt_int vars;
          (match enum_time with
          | Some t -> Report.fmt_seconds t
          | None -> "(skipped)");
          Report.fmt_seconds shannon_time;
          Report.fmt_seconds kl_time;
          Report.fmt_float exact;
          Report.fmt_float rel_err;
        ])
      sizes
  in
  Report.table
    ~header:
      [
        "vars";
        "enumeration";
        "shannon";
        "karp-luby(0.1,0.05)";
        "exact p";
        "KL rel.err";
      ]
    rows;
  Report.note
    "enumeration grows exponentially in the variable count; the FPRAS cost \
     tracks |F|*ln(1/delta)/eps^2 only."

(* ------------------------------------------------------------------ *)
(* E4: Proposition 4.2 — FPRAS convergence against the Chernoff bound  *)
(* ------------------------------------------------------------------ *)

let e4_fpras_convergence ~quick =
  Report.section "E4"
    "Proposition 4.2: Karp-Luby convergence vs the Chernoff bound";
  let rng = Rng.create ~seed:4 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:10 ~clauses:10 ~clause_len:3 in
  let dnf = Dnf.prepare w clauses in
  let exact = Q.to_float (Dnf.exact dnf) in
  let eps = 0.1 in
  let trials_list = if quick then [ 100; 1000; 10_000 ] else [ 100; 1000; 10_000; 100_000 ] in
  Report.note "instance: 10 variables, |F| = %d, exact p = %.6f"
    (Dnf.clause_count dnf) exact;
  let rows =
    List.map
      (fun m ->
        let runs = max 20 (200_000 / m) in
        let errors = ref [] in
        let failures = Stats.tally () in
        for _ = 1 to runs do
          let p_hat = Karp_luby.run rng dnf ~trials:m in
          let rel = Float.abs (p_hat -. exact) /. exact in
          errors := rel :: !errors;
          Stats.record failures (rel < eps)
        done;
        let errs = Array.of_list !errors in
        let bound =
          Stats.karp_luby_delta ~trials:m ~clauses:(Dnf.clause_count dnf) ~eps
        in
        [
          Report.fmt_int m;
          Report.fmt_int runs;
          Report.fmt_float (Stats.mean errs);
          Report.fmt_float (Stats.quantile errs 0.95);
          Report.fmt_float (Stats.error_rate failures);
          Report.fmt_float (Float.min 1. bound);
        ])
      trials_list
  in
  Report.table
    ~header:
      [
        "trials m";
        "runs";
        "mean rel.err";
        "p95 rel.err";
        "P(err >= 0.1p) observed";
        "Chernoff bound";
      ]
    rows;
  Report.note
    "the observed failure frequency must stay below the (loose) Chernoff \
     bound, and mean error shrinks like 1/sqrt(m)."
