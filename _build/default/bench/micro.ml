(* Bechamel microbenchmarks: one Test.make per timed kernel, reported as
   ns/run from an OLS fit. *)

open Bechamel
open Toolkit
open Pqdb_urel
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Gen = Pqdb_workload.Gen
module Scenarios = Pqdb_workload.Scenarios
module Apred = Pqdb_ast.Apred
module Dnf = Pqdb_montecarlo.Dnf
module Karp_luby = Pqdb_montecarlo.Karp_luby

let test_shannon_confidence () =
  let rng = Rng.create ~seed:201 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  Test.make ~name:"confidence/shannon-12v"
    (Staged.stage (fun () -> ignore (Confidence.by_shannon w clauses)))

let test_karp_luby () =
  let rng = Rng.create ~seed:202 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  let dnf = Dnf.prepare w clauses in
  Test.make ~name:"confidence/karp-luby-1k-trials"
    (Staged.stage (fun () -> ignore (Karp_luby.run rng dnf ~trials:1000)))

let test_translate_join () =
  let rng = Rng.create ~seed:203 in
  let w = Wtable.create () in
  let r = Gen.tuple_independent rng w ~attrs:[ "A"; "B" ] ~rows:500 ~domain:100 in
  let s =
    Urelation.of_relation
      (Gen.random_relation rng ~attrs:[ "B"; "C" ] ~rows:100 ~domain:100)
  in
  Test.make ~name:"translate/join-500x100"
    (Staged.stage (fun () -> ignore (Translate.join r s)))

let test_thm52 () =
  let rng = Rng.create ~seed:204 in
  let pred = Gen.linear_predicate rng ~arity:8 in
  let point = Array.init 8 (fun _ -> Rng.float_range rng 0.1 0.9) in
  Test.make ~name:"epsilon/closed-form-k8"
    (Staged.stage (fun () -> ignore (Pqdb.Epsilon.epsilon pred point)))

let test_corner_search () =
  let pred =
    Apred.ge (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const 0.5)
  in
  let point = [| 0.5; 0.45 |] in
  Test.make ~name:"epsilon/corner-search-k2"
    (Staged.stage (fun () ->
         ignore (Pqdb.Orthotope.epsilon_search pred point)))

let test_coin_posterior () =
  Test.make ~name:"query/coin-posterior-exact"
    (Staged.stage (fun () ->
         let udb = Scenarios.coin_db () in
         ignore
           (Pqdb.Eval_exact.eval_relation udb
              Scenarios.coin_queries.Scenarios.u)))

let test_repair_key () =
  let rng = Rng.create ~seed:205 in
  let rel =
    Gen.weighted_relation rng ~attrs:[ "A"; "B" ] ~rows:300 ~domain:40
      ~weight:"W"
  in
  let u = Urelation.of_relation rel in
  Test.make ~name:"translate/repair-key-300"
    (Staged.stage (fun () ->
         let w = Wtable.create () in
         ignore (Translate.repair_key w ~key:[ "A" ] ~weight:"W" u)))

let test_decomposition () =
  let rng = Rng.create ~seed:206 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  Test.make ~name:"confidence/decomposition-12v"
    (Staged.stage (fun () -> ignore (Confidence.by_decomposition w clauses)))

let test_optimizer () =
  let q =
    Pqdb_lang.Qparser.parse_query
      "select[A = 0](conf(project[A, B](repairkey[A @ W](R))))"
  in
  let lookup = function
    | "R" -> Some [ "A"; "B"; "W" ]
    | _ -> None
  in
  Test.make ~name:"optimizer/push-below-conf"
    (Staged.stage (fun () -> ignore (Pqdb.Optimizer.optimize ~lookup q)))

let test_topk () =
  Test.make ~name:"topk/coin-top1"
    (Staged.stage (fun () ->
         let rng = Rng.create ~seed:207 in
         let udb = Scenarios.coin_db () in
         ignore
           (Pqdb.Topk.query ~rng ~delta:0.1 ~k:1 udb
              Scenarios.coin_queries.Scenarios.t)))

let run () =
  Report.section "MICRO" "Bechamel kernels (ns per run, OLS fit)";
  let tests =
    Test.make_grouped ~name:"pqdb"
      [
        test_shannon_confidence ();
        test_karp_luby ();
        test_translate_join ();
        test_thm52 ();
        test_corner_search ();
        test_coin_posterior ();
        test_repair_key ();
        test_decomposition ();
        test_optimizer ();
        test_topk ();
      ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> t
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan
      in
      rows :=
        [ name; Report.fmt_seconds (estimate /. 1e9); Printf.sprintf "%.4f" r2 ]
        :: !rows)
    results;
  Report.table
    ~header:[ "kernel"; "time/run"; "r^2" ]
    (List.sort compare !rows)
