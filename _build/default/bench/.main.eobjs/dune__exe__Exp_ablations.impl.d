bench/exp_ablations.ml: Confidence Expr Float List Option Pqdb Pqdb_ast Pqdb_montecarlo Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_workload Predicate Printf Relation Report Udb Value Vertical Wtable
