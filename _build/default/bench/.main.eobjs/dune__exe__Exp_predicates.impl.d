bench/exp_predicates.ml: Array Assignment List Option Pqdb Pqdb_ast Pqdb_montecarlo Pqdb_numeric Pqdb_urel Pqdb_workload Printf Report Wtable
