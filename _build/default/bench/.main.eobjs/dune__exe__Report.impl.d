bench/report.ml: Array Int64 List Monotonic_clock Pqdb_numeric Printf String
