bench/exp_queries.ml: Assignment Enumerate Float List Pqdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_workload Pqdb_worlds Printf Report Schema Tuple Udb Urelation Value Wtable
