bench/main.ml: Array Exp_ablations Exp_predicates Exp_queries Exp_representation List Micro Printf Report String Sys
