bench/main.mli:
