(* Experiments E9-E12: query-level error propagation (Lemma 6.4 /
   Example 6.5), the Theorem 6.7 doubling driver, the Theorem 4.4 egd
   rewriting, and nonsuccinct confidence (Proposition 3.5). *)

open Pqdb_relational
open Pqdb_urel
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Stats = Pqdb_numeric.Stats
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Gen = Pqdb_workload.Gen
module Scenarios = Pqdb_workload.Scenarios
module V = Value

(* ------------------------------------------------------------------ *)
(* E9: provenance fan-in (Lemma 6.4 / Example 6.5)                     *)
(* ------------------------------------------------------------------ *)

(* n independent tuples (a, i) each with true probability p close to the
   sigma-hat threshold, projected onto A: the single output tuple's error
   accumulates over the n decisions, ~ linearly (Example 6.5's mu*n). *)
let fanin_db n p =
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  (* Two independent clauses per tuple: single-clause DNFs make the
     Karp-Luby estimate exact (the estimator always fires), which would hide
     all decision noise.  q solves 1 - (1-q)^2 = p. *)
  let q = 1. -. sqrt (1. -. p) in
  let num = int_of_float (Float.round (q *. 1000.)) in
  let rows =
    List.init n (fun i ->
        let fresh () =
          Wtable.add_var w [ Q.of_ints (1000 - num) 1000; Q.of_ints num 1000 ]
        in
        let x = fresh () and y = fresh () in
        let tuple = Tuple.of_list [ V.Str "a"; V.Int i ] in
        [ (Assignment.singleton x 1, tuple); (Assignment.singleton y 1, tuple) ])
    |> List.concat
  in
  Udb.add_urelation udb "R" (Urelation.make (Schema.of_list [ "A"; "B" ]) rows);
  udb

let e9_provenance_fanin ~quick =
  Report.section "E9"
    "Lemma 6.4 / Example 6.5: error accumulates linearly with provenance \
     fan-in";
  let p = 0.48 and threshold = 0.5 in
  (* Keep tuples that the sigma-hat believes pass the threshold; correct
     behaviour drops all of them (p < threshold), so pi_A should be empty;
     any sampled overshoot puts (a) in the output. *)
  let query =
    Ua.project [ "A" ]
      (Ua.approx_select
         (Apred.ge (Apred.var 0) (Apred.const threshold))
         [ [ "A"; "B" ] ]
         (Ua.table "R"))
  in
  let ns = if quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32 ] in
  let runs = if quick then 60 else 150 in
  let rng = Rng.create ~seed:9 in
  let base_rate = ref 0. in
  let rows =
    List.map
      (fun n ->
        let present = Stats.tally () in
        let reported = ref 0. in
        for _ = 1 to runs do
          let udb = fanin_db n p in
          (* Deliberately weak decisions (tight budget) so errors are
             measurable. *)
          let result, _ =
            Pqdb.Eval_approx.eval ~eps0:0.02 ~max_rounds:2 ~sigma_delta:0.3
              ~rng udb query
          in
          let wrong = not (Urelation.is_empty result.Pqdb.Eval_approx.urel) in
          Stats.record present (not wrong);
          reported :=
            !reported +. Pqdb.Eval_approx.max_error result
        done;
        let rate = Stats.error_rate present in
        if n = List.hd ns then base_rate := rate /. float_of_int (List.hd ns);
        [
          Report.fmt_int n;
          Report.fmt_float rate;
          Report.fmt_float (Float.min 1. (float_of_int n *. !base_rate));
          Report.fmt_float (!reported /. float_of_int runs);
        ])
      ns
  in
  Report.table
    ~header:
      [
        "fan-in n";
        "observed P(pi_A wrong)";
        "linear extrapolation n*e1";
        "mean reported bound";
      ]
    rows;
  Report.note
    "the observed error of the projected tuple grows ~linearly in n (until \
     saturation), as Example 6.5 predicts.  Note the budget here is forcibly \
     truncated (max_rounds = 2) to make errors measurable: the truncated \
     decisions carry the hit_round_limit flag and Figure 3's reported bound \
     caps at 0.5, which a deliberately starved decision can exceed — run to \
     the stopping condition (E10) the bounds hold."

(* ------------------------------------------------------------------ *)
(* E10: the Theorem 6.7 doubling driver                                *)
(* ------------------------------------------------------------------ *)

(* Depth-2 sigma-hat: alarms over hot sensors joined with an uncertain
   link relation, then a second approximate selection on link confidence. *)
let nested_query ~inner_threshold ~outer_threshold =
  let alarms = Scenarios.hot_sensors ~threshold:inner_threshold in
  let linked = Ua.join alarms (Ua.table "Links") in
  Ua.approx_select
    (Apred.ge (Apred.var 0) (Apred.const outer_threshold))
    [ [ "Sensor"; "Zone" ] ]
    linked

let sensors_with_links rng ~sensors =
  let udb = Scenarios.sensor_db rng ~sensors in
  let w = Udb.wtable udb in
  let rows =
    List.concat
      (List.init sensors (fun s ->
           List.filter_map
             (fun zone ->
               if Rng.bool rng then begin
                 let p = 1 + Rng.int rng 8 in
                 let var =
                   Wtable.add_var w [ Q.of_ints (10 - p) 10; Q.of_ints p 10 ]
                 in
                 Some
                   ( Assignment.singleton var 1,
                     Tuple.of_list [ V.Int s; V.Str zone ] )
               end
               else None)
             [ "east"; "west" ]))
  in
  Udb.add_urelation udb "Links"
    (Urelation.make (Schema.of_list [ "Sensor"; "Zone" ]) rows);
  udb

let e10_query_doubling ~quick =
  Report.section "E10"
    "Theorem 6.7: the doubling driver reaches any delta in polynomial time";
  let rng = Rng.create ~seed:10 in
  let deltas = if quick then [ 0.2; 0.05 ] else [ 0.2; 0.1; 0.05; 0.02 ] in
  let run_depth name query =
    let rows =
      List.map
        (fun delta ->
          let udb = sensors_with_links (Rng.create ~seed:11) ~sensors:3 in
          let (result, stats, budget), secs =
            Report.timed (fun () ->
                Pqdb.Eval_approx.eval_with_guarantee ~rng ~delta udb query)
          in
          [
            name;
            Report.fmt_float delta;
            Report.fmt_int budget;
            Report.fmt_int stats.Pqdb.Eval_approx.estimator_calls;
            Report.fmt_float (Pqdb.Eval_approx.max_error result);
            Report.fmt_int (List.length result.Pqdb.Eval_approx.suspects);
            Report.fmt_seconds secs;
          ])
        deltas
    in
    rows
  in
  let depth1 =
    run_depth "d=1" (Scenarios.hot_sensors ~threshold:0.4)
  in
  let depth2 =
    run_depth "d=2" (nested_query ~inner_threshold:0.4 ~outer_threshold:0.3)
  in
  Report.table
    ~header:
      [
        "depth";
        "delta";
        "final l";
        "estimator calls";
        "max error";
        "suspects";
        "time";
      ]
    (depth1 @ depth2);
  Report.note
    "the final round budget grows ~log(1/delta)/eps0^2 and the per-tuple \
     bounds land under the target; suspects mark (near-)singular decisions."

(* ------------------------------------------------------------------ *)
(* E11: Theorem 4.4 — egd rewriting                                    *)
(* ------------------------------------------------------------------ *)

let guess_db rng ~tuples =
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  let rows =
    List.init tuples (fun i ->
        let p = 1 + Rng.int rng 9 in
        let var = Wtable.add_var w [ Q.of_ints (10 - p) 10; Q.of_ints p 10 ] in
        ( Assignment.singleton var 1,
          Tuple.of_list [ V.Int (i / 2); V.Str (Printf.sprintf "n%d" i) ] ))
  in
  Udb.add_urelation udb "R" (Urelation.make (Schema.of_list [ "Id"; "Name" ]) rows);
  udb

let e11_egd_rewriting ~quick =
  Report.section "E11"
    "Theorem 4.4: conf of existential-and-egd formulas via the positive \
     rewriting";
  let sizes = if quick then [ 4; 6 ] else [ 4; 6; 8; 10 ] in
  let rows =
    List.map
      (fun n ->
        let udb = guess_db (Rng.create ~seed:(110 + n)) ~tuples:n in
        let viol =
          Pqdb.Egd.fd_violation ~table:"R" ~attrs:[ "Id"; "Name" ]
            ~key:[ "Id" ] ~determined:[ "Name" ]
        in
        let p = ref Q.zero in
        let t_rewrite =
          Report.time_median ~repeat:1 (fun () ->
              p := Pqdb.Egd.probability udb (Pqdb.Egd.Egd viol))
        in
        (* Ground truth by world enumeration. *)
        let pdb = Enumerate.to_pdb udb in
        let ground = ref Q.zero in
        let t_enum =
          Report.time_median ~repeat:1 (fun () ->
              let confs =
                Pqdb_worlds.Eval_naive.eval_confidence pdb
                  (Ua.project [] viol)
              in
              ground :=
                Q.complement
                  (match confs with [] -> Q.zero | [ (_, q) ] -> q | _ -> Q.zero))
        in
        [
          Report.fmt_int n;
          Q.to_string !p;
          string_of_bool (Q.equal !p !ground);
          Report.fmt_seconds t_rewrite;
          Report.fmt_seconds t_enum;
        ])
      sizes
  in
  Report.table
    ~header:
      [ "|R| tuples"; "P(FD holds)"; "matches enumeration"; "rewriting"; "enumeration" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12: Proposition 3.5 — conf on nonsuccinct databases is cheap        *)
(* ------------------------------------------------------------------ *)

let e12_nonsuccinct_conf ~quick =
  Report.section "E12"
    "Proposition 3.5: confidence on explicit world sets is linear in |W|";
  let sizes = if quick then [ 10; 100; 1000 ] else [ 10; 100; 1000; 10_000 ] in
  let rows =
    List.map
      (fun worlds ->
        let rng = Rng.create ~seed:(120 + worlds) in
        let prel =
          List.init worlds (fun _ ->
              ( Gen.random_relation rng ~attrs:[ "A" ] ~rows:5 ~domain:10,
                Q.of_ints 1 worlds ))
        in
        let secs =
          Report.time_median ~repeat:3 (fun () ->
              ignore (Pqdb_worlds.Pdb.confidence prel))
        in
        [
          Report.fmt_int worlds;
          Report.fmt_seconds secs;
          Printf.sprintf "%.2fus" (secs /. float_of_int worlds *. 1e6);
        ])
      sizes
  in
  Report.table ~header:[ "|W| worlds"; "conf time"; "per world" ] rows
