(* Sensor monitoring: conditional probabilities and threshold alarms over
   uncertain readings.

   Each sensor reports a discrete temperature level with per-level evidence
   weights; repair-key turns the weights into one reading distribution per
   sensor.  We then (a) compute the conditional probability
   P(hot | not cold) for a sensor — the Example 2.2 pattern on sensor data —
   and (b) raise alarms for sensors whose P(hot) clears a threshold, via the
   approximate selection with its per-tuple error bounds.

   Run with: dune exec examples/sensor_monitoring.exe *)

open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua
module Scenarios = Pqdb_workload.Scenarios
module Rng = Pqdb_numeric.Rng

let section title = Format.printf "@.== %s ==@.@." title

let () =
  let rng = Rng.create ~seed:2026 in
  let udb = Scenarios.sensor_db rng ~sensors:5 in

  section "Raw readings (weights per level)";
  Format.printf "%a@." Relation.pp
    (Urelation.to_relation (Udb.find udb "Readings"));

  section "Per-sensor P(hot), exact";
  let hot_marginals =
    Ua.conf
      (Ua.project [ "Sensor" ]
         (Ua.select
            Predicate.(Expr.attr "Level" = Expr.const (Value.Str "hot"))
            Scenarios.sensor_readings))
  in
  Format.printf "%a@." Relation.pp
    (Pqdb.Eval_exact.eval_relation (Udb.copy udb) hot_marginals);

  section "Conditional: P(hot | not cold) for sensor 0";
  let cond = Scenarios.hot_given_not_cold ~sensor:0 in
  Format.printf "%a@." Relation.pp
    (Pqdb.Eval_exact.eval_relation (Udb.copy udb) cond);

  section "Alarms: sensors with P(hot) >= 0.4 (approximate selection)";
  let alarms = Scenarios.hot_sensors ~threshold:0.4 in
  let result, stats, budget =
    Pqdb.Eval_approx.eval_with_guarantee ~rng ~delta:0.05 (Udb.copy udb)
      alarms
  in
  Format.printf "%a@." Relation.pp
    (Urelation.to_relation result.Pqdb.Eval_approx.urel);
  List.iter
    (fun (t, e) ->
      Format.printf "  sensor %a: alarm decided with error <= %.4f@."
        Tuple.pp t e)
    result.Pqdb.Eval_approx.errors;
  Format.printf "(%d decisions, %d estimator calls, budget %d rounds)@."
    stats.Pqdb.Eval_approx.decisions
    stats.Pqdb.Eval_approx.estimator_calls budget;

  section "Exact cross-check";
  Format.printf "%a@." Relation.pp
    (Pqdb.Eval_exact.eval_relation (Udb.copy udb)
       (Ua.desugar_sigma_hat alarms));

  section "A singularity in the wild";
  (* A threshold equal to an achievable exact marginal makes that sensor's
     decision non-approximable (Definition 5.6): the driver caps its budget
     and flags the tuple instead of looping forever. *)
  let exact_hot =
    Pqdb.Eval_exact.eval_relation (Udb.copy udb) hot_marginals
  in
  (match Relation.tuples exact_hot with
  | first :: _ ->
      let p0 =
        match Tuple.get first 1 with
        | Value.Rat r -> Pqdb_numeric.Rational.to_float r
        | v -> (match Value.to_float_opt v with Some f -> f | None -> 0.5)
      in
      Format.printf "Using threshold exactly P(sensor %a) = %.6f@." Value.pp
        (Tuple.get first 0) p0;
      let singular = Scenarios.hot_sensors ~threshold:p0 in
      let result, _, budget =
        Pqdb.Eval_approx.eval_with_guarantee ~rng ~delta:0.05 (Udb.copy udb)
          singular
      in
      Format.printf "budget stopped at %d rounds; suspects: %d@." budget
        (List.length result.Pqdb.Eval_approx.suspects)
  | [] -> Format.printf "(no hot readings possible)@.");
  Format.printf "@.Done.@."
