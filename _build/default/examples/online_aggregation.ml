(* Online aggregation with approximate predicates.

   The end of Section 5 observes that the predicate-approximation framework
   is not tied to Karp-Luby confidence values: any refinable (ε, δ)-estimate
   can feed the Figure-3 algorithm.  This example decides business rules
   over a large orders table by *sampling*, in the style of online
   aggregation [Hellerstein et al., SIGMOD'97], stopping as soon as the
   adaptive ε certifies the decision:

     - "is the average order value at least 45?"
     - "is the EU average at least 70% of the US average?"  (a ratio
       predicate over two independently sampled aggregates)
     - mixing a sampled aggregate with a Karp-Luby tuple confidence in one
       predicate.

   Run with: dune exec examples/online_aggregation.exe *)

open Pqdb_urel
module Apred = Pqdb_ast.Apred
module Approximable = Pqdb.Approximable
module Predicate_approx = Pqdb.Predicate_approx
module Rng = Pqdb_numeric.Rng
module Q = Pqdb_numeric.Rational

let section title = Format.printf "@.== %s ==@.@." title

let describe label (d : Predicate_approx.decision) =
  Format.printf
    "%s: %b  (error <= %.4f, eps = %.4f, %d refinement steps%s)@." label
    d.Predicate_approx.value d.Predicate_approx.error_bound
    d.Predicate_approx.epsilon d.Predicate_approx.estimator_calls
    (if d.Predicate_approx.used_floor then ", relied on eps0 floor" else "")

(* A synthetic orders population: heavy-tailed around a region-dependent
   mean. *)
let orders rng ~count ~base =
  Array.init count (fun _ ->
      let noise = Rng.float_range rng 0. (2. *. base) in
      let spike = if Rng.int rng 20 = 0 then base *. 4. else 0. in
      Float.round ((base /. 2.) +. noise +. spike))

let () =
  let rng = Rng.create ~seed:2008 in
  let us_orders = orders rng ~count:200_000 ~base:50. in
  let eu_orders = orders rng ~count:200_000 ~base:40. in
  let exact_mean a =
    Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)
  in
  Format.printf "population means: US %.2f, EU %.2f@." (exact_mean us_orders)
    (exact_mean eu_orders);

  section "Average order value >= 45 (sampled, adaptive stop)";
  let avg_us () =
    Approximable.of_sampler ~batch:64 ~lower_bound:20. ~values:us_orders ()
  in
  let phi = Apred.ge (Apred.var 0) (Apred.const 45.) in
  let d =
    Predicate_approx.decide_values ~eps0:0.01 ~rng ~delta:0.05 phi
      [| avg_us () |]
  in
  describe "avg(US) >= 45" d;
  Format.printf "(%d of %d orders sampled: %.2f%%)@."
    d.Predicate_approx.estimator_calls (Array.length us_orders)
    (100.
    *. float_of_int d.Predicate_approx.estimator_calls
    /. float_of_int (Array.length us_orders));

  section "Ratio of two sampled aggregates: avg(EU) >= 0.7 * avg(US)";
  let phi =
    Apred.ge (Apred.var 0)
      (Apred.Mul (Apred.const 0.7, Apred.var 1))
  in
  let d =
    Predicate_approx.decide_values ~eps0:0.01 ~rng ~delta:0.05 phi
      [|
        Approximable.of_sampler ~batch:64 ~lower_bound:20. ~values:eu_orders ();
        avg_us ();
      |]
  in
  describe "avg(EU) >= 0.7 * avg(US)" d;

  section "Mixing a tuple confidence with a sampled aggregate";
  (* "The premium customer is probably active (conf >= 0.6) AND the US
     average clears 45" — one Karp-Luby value, one sampled value. *)
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 3 10; Q.of_ints 7 10 ] in
  let y = Wtable.add_var w [ Q.of_ints 2 10; Q.of_ints 8 10 ] in
  let conf_value =
    Approximable.of_karp_luby
      (Pqdb_montecarlo.Estimator.create
         (Pqdb_montecarlo.Dnf.prepare w
            [ Assignment.singleton x 1; Assignment.singleton y 1 ]))
  in
  let phi =
    Apred.conj
      (Apred.ge (Apred.var 0) (Apred.const 0.6))
      (Apred.ge (Apred.var 1) (Apred.const 45.))
  in
  let d =
    Predicate_approx.decide_values ~eps0:0.02 ~rng ~delta:0.05 phi
      [| conf_value; avg_us () |]
  in
  describe "conf >= 0.6 and avg >= 45" d;

  section "A question on the boundary";
  (* Asking whether the mean is >= its own value: the eps0 floor kicks in
     and the decision is flagged as floor-reliant (a singularity in the
     Definition 5.6 sense). *)
  let mu = exact_mean us_orders in
  let phi = Apred.ge (Apred.var 0) (Apred.const mu) in
  let d =
    Predicate_approx.decide_values ~eps0:0.05 ~rng ~delta:0.1 phi
      [| avg_us () |]
  in
  describe (Printf.sprintf "avg >= %.4f (the true mean)" mu) d;
  Format.printf "@.Done.@."
