examples/quickstart.mli:
