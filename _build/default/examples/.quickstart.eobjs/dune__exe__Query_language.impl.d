examples/query_language.ml: Format List Option Pqdb Pqdb_ast Pqdb_lang Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_workload Relation Udb Urelation
