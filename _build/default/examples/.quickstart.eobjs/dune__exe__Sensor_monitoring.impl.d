examples/sensor_monitoring.ml: Expr Format List Pqdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_workload Predicate Relation Tuple Udb Urelation Value
