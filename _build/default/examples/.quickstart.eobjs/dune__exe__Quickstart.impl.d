examples/quickstart.ml: Expr Format List Pqdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_workload Pqdb_worlds Relation Tuple Udb Urelation Wtable
