examples/integrity.mli:
