examples/online_aggregation.ml: Array Assignment Float Format Pqdb Pqdb_ast Pqdb_montecarlo Pqdb_numeric Pqdb_urel Printf Wtable
