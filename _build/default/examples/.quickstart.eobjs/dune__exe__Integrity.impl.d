examples/integrity.ml: Assignment Enumerate Expr Format List Pqdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_worlds Predicate Schema Tuple Udb Urelation Value Wtable
