examples/data_cleaning.ml: Assignment Format List Pqdb Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Pqdb_workload Relation Schema Tuple Udb Urelation Wtable
