(* A tour of the textual UA query language: the whole Example 2.2 pipeline
   written as a program with let-bound views, parsed and evaluated.

   Run with: dune exec examples/query_language.exe *)

open Pqdb_relational
open Pqdb_urel
module Scenarios = Pqdb_workload.Scenarios
module Qparser = Pqdb_lang.Qparser
module Rng = Pqdb_numeric.Rng

let program =
  {|
  -- Example 2.2 as a program.  Views are substituted by reference; the
  -- evaluators memoize shared subexpressions, so S below is one relation.
  let R = project[CoinType](repairkey[@Count](Coins));
  let S = project[FCoinType, Toss, Face](
            repairkey[FCoinType, Toss @ FProb](Faces times Tosses));
  let H1 = rename[FCoinType -> CoinType](
             project[FCoinType](select[Toss = 1 and Face = 'H'](S)));
  let H2 = rename[FCoinType -> CoinType](
             project[FCoinType](select[Toss = 2 and Face = 'H'](S)));
  let T = R join H1 join H2;
  project[CoinType, P1 / P2 -> P](
    rename[P -> P1](conf(T)) join rename[P -> P2](conf(project[](T))))
|}

let sigma_hat_text =
  {| aselect[$1 / $2 <= 0.5 | conf[CoinType], conf[]](
       project[CoinType](repairkey[@Count](Coins))
       join rename[FCoinType -> CoinType](project[FCoinType](
         select[Toss = 1 and Face = 'H'](
           project[FCoinType, Toss, Face](
             repairkey[FCoinType, Toss @ FProb](Faces times Tosses)))))
       join rename[FCoinType -> CoinType](project[FCoinType](
         select[Toss = 2 and Face = 'H'](
           project[FCoinType, Toss, Face](
             repairkey[FCoinType, Toss @ FProb](Faces times Tosses)))))) |}

let lit_text =
  {| conf(project[Name](
       repairkey[Id @ W](lit[Id, Name, W]((1, 'ann', 3), (1, 'anne', 1),
                                          (2, 'bob', 2))))) |}

let () =
  Format.printf "== The program ==@.%s@." program;
  let views, final = Qparser.parse_program program in
  List.iter
    (fun (name, q) ->
      Format.printf "view %s = %a@.@." name Pqdb_ast.Ua.pp q)
    views;
  let query = Option.get final in

  Format.printf "== Parsed query ==@.%a@.@." Pqdb_ast.Ua.pp query;

  Format.printf "== Result (exact) ==@.";
  let udb = Scenarios.coin_db () in
  Format.printf "%a@.@." Relation.pp (Pqdb.Eval_exact.eval_relation udb query);

  Format.printf "== Approximate selection from text ==@.";
  let sigma = Qparser.parse_query sigma_hat_text in
  let rng = Rng.create ~seed:5 in
  let result, _, _ =
    Pqdb.Eval_approx.eval_with_guarantee ~rng ~delta:0.05
      (Scenarios.coin_db ()) sigma
  in
  Format.printf "%a@.@." Relation.pp
    (Urelation.to_relation result.Pqdb.Eval_approx.urel);

  Format.printf "== Literal relations ==@.";
  let q = Qparser.parse_query lit_text in
  Format.printf "%a@.@." Relation.pp
    (Pqdb.Eval_exact.eval_relation (Udb.create ()) q);

  Format.printf "Done.@."
