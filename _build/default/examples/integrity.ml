(* Integrity constraints as probabilities — Theorem 4.4 in action.

   An integration pipeline merges customer records from two sources, each
   tuple kept independently with some confidence.  Instead of a yes/no
   constraint check we ask probabilistic questions:

     - P(the functional dependency Id -> Email holds)?
     - P(some record survives AND the FD holds)?
     - P(FD holds OR the suspect source contributed nothing)?

   All of these mix existential sentences with equality-generating
   dependencies; Theorem 4.4 rewrites them into differences of confidences
   of *positive* queries, which stay efficiently approximable.

   Run with: dune exec examples/integrity.exe *)

open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua
module Egd = Pqdb.Egd
module Q = Pqdb_numeric.Rational

let section title = Format.printf "@.== %s ==@.@." title

let build_db () =
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  let keep p = Wtable.add_var w [ Q.complement p; p ] in
  (* (Id, Email, Source) with per-tuple keep probabilities. *)
  let records =
    [
      (1, "ann@a.org", "crm", Q.of_ints 9 10);
      (1, "ann@b.org", "web", Q.of_ints 3 10);
      (2, "bob@a.org", "crm", Q.of_ints 8 10);
      (2, "bob@a.org", "web", Q.of_ints 5 10);
      (3, "cyn@c.org", "web", Q.of_ints 6 10);
    ]
  in
  let rows =
    List.map
      (fun (id, email, source, p) ->
        ( Assignment.singleton (keep p) 1,
          Tuple.of_list [ Value.Int id; Value.Str email; Value.Str source ] ))
      records
  in
  Udb.add_urelation udb "Customers"
    (Urelation.make (Schema.of_list [ "Id"; "Email"; "Source" ]) rows);
  udb

let () =
  let udb = build_db () in
  section "Merged records (tuple-independent keep probabilities)";
  Format.printf "%a@." Urelation.pp (Udb.find udb "Customers");

  let fd_violation =
    Egd.fd_violation ~table:"Customers"
      ~attrs:[ "Id"; "Email"; "Source" ]
      ~key:[ "Id" ] ~determined:[ "Email" ]
  in

  section "P(FD Id -> Email holds)";
  let p_fd = Egd.probability udb (Egd.Egd fd_violation) in
  Format.printf "= %a ~ %.4f@." Q.pp p_fd (Q.to_float p_fd);
  Format.printf
    "(violated only when both ann@a.org and ann@b.org survive: 1 - 0.9*0.3 = \
     0.73)@.";

  section "P(some record survives AND the FD holds)";
  let some_record = Ua.project [] (Ua.table "Customers") in
  let p_both =
    Egd.probability udb (Egd.And (Egd.Exists some_record, Egd.Egd fd_violation))
  in
  Format.printf "= %a ~ %.4f@." Q.pp p_both (Q.to_float p_both);

  section "P(FD holds OR nothing came from the web source)";
  let web_record =
    Ua.project []
      (Ua.select
         Predicate.(Expr.attr "Source" = Expr.const (Value.Str "web"))
         (Ua.table "Customers"))
  in
  (* "nothing from web" is the egd whose violation query is web_record. *)
  let p_or =
    Egd.probability udb (Egd.Or (Egd.Egd fd_violation, Egd.Egd web_record))
  in
  Format.printf "= %a ~ %.4f@." Q.pp p_or (Q.to_float p_or);

  section "Cross-check by world enumeration";
  let pdb = Enumerate.to_pdb udb in
  let p_viol =
    match
      Pqdb_worlds.Eval_naive.eval_confidence pdb (Ua.project [] fd_violation)
    with
    | [] -> Q.zero
    | [ (_, p) ] -> p
    | _ -> assert false
  in
  Format.printf "1 - conf(violation) = %a  (matches: %b)@." Q.pp
    (Q.complement p_viol)
    (Q.equal (Q.complement p_viol) p_fd);
  Format.printf "@.Done.@."
