(* Data cleaning with key repair and confidence thresholds.

   A customer table arrives with conflicting variants per customer id (typos,
   merged sources), each variant carrying an evidence weight.  repair-key
   turns the dirty relation into a probabilistic database of clean worlds;
   confidence computation recovers per-variant marginals; and an approximate
   selection keeps the variants whose probability clears a threshold — the
   cleaning decision the paper's introduction motivates.

   Run with: dune exec examples/data_cleaning.exe *)

open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua
module Scenarios = Pqdb_workload.Scenarios
module Rng = Pqdb_numeric.Rng
module Q = Pqdb_numeric.Rational

let section title = Format.printf "@.== %s ==@.@." title

let () =
  let rng = Rng.create ~seed:7 in
  let udb = Scenarios.cleaning_db rng ~customers:6 ~max_dups:3 in

  section "Dirty input (key Id violated, W = evidence weight)";
  Format.printf "%a@." Relation.pp
    (Urelation.to_relation (Udb.find udb "Dirty"));

  section "Marginal probability of each (Id, Name) after repair-key";
  let marginals =
    Ua.conf (Ua.project [ "Id"; "Name" ] Scenarios.cleaned)
  in
  let exact = Pqdb.Eval_exact.eval_relation (Udb.copy udb) marginals in
  Format.printf "%a@." Relation.pp exact;

  section "Approximate cleaning: keep pairs with P >= 0.5 (sigma-hat)";
  let query = Scenarios.confident_customers ~threshold:0.5 in
  let result, stats, rounds =
    Pqdb.Eval_approx.eval_with_guarantee ~rng ~delta:0.05 (Udb.copy udb) query
  in
  Format.printf "%a@." Relation.pp
    (Urelation.to_relation result.Pqdb.Eval_approx.urel);
  Format.printf
    "%d decisions, %d estimator calls, final round budget %d@."
    stats.Pqdb.Eval_approx.decisions
    stats.Pqdb.Eval_approx.estimator_calls rounds;
  if result.Pqdb.Eval_approx.suspects <> [] then begin
    Format.printf "Tuples too close to the threshold to decide reliably:@.";
    List.iter
      (fun t -> Format.printf "  %a@." Tuple.pp t)
      result.Pqdb.Eval_approx.suspects
  end;

  section "Cross-check against the exact selection";
  let exact_selection =
    Pqdb.Eval_exact.eval_relation (Udb.copy udb)
      (Ua.desugar_sigma_hat query)
  in
  Format.printf "%a@." Relation.pp exact_selection;

  section "Integrity as a probability: P(key Id -> Name holds)";
  (* On the *dirty* relation lifted to a tuple-independent guess: how likely
     is the FD to hold if each variant is independently kept?  (Theorem 4.4
     machinery.) *)
  let w = Udb.wtable udb in
  let dirty = Urelation.to_relation (Udb.find udb "Dirty") in
  let rows =
    List.map
      (fun t ->
        let x = Wtable.add_var w [ Q.half; Q.half ] in
        (Assignment.singleton x 1, Tuple.project t [ 0; 1 ]))
      (Relation.tuples dirty)
  in
  Udb.add_urelation udb "Guess"
    (Urelation.make (Schema.of_list [ "Id"; "Name" ]) rows);
  let violation =
    Pqdb.Egd.fd_violation ~table:"Guess" ~attrs:[ "Id"; "Name" ]
      ~key:[ "Id" ] ~determined:[ "Name" ]
  in
  let p = Pqdb.Egd.probability udb (Pqdb.Egd.Egd violation) in
  Format.printf "P(FD holds under independent keep/drop) = %a ~ %.4f@."
    Q.pp p (Q.to_float p);
  Format.printf "@.Done.@."
