(* Quickstart: the coin-bag scenario of Example 2.2, end to end.

   A bag holds two fair coins and one double-headed coin.  We draw a coin,
   toss it twice, observe two heads, and ask for the posterior probability of
   each coin type — computed exactly (rational arithmetic over the
   U-relational representation) and approximately (Karp-Luby + the Figure-3
   approximate selection).

   Run with: dune exec examples/quickstart.exe *)

open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Scenarios = Pqdb_workload.Scenarios
module Rng = Pqdb_numeric.Rng

let section title =
  Format.printf "@.== %s ==@.@." title

let print_relation rel = Format.printf "%a@." Relation.pp rel

let () =
  section "Input: a complete database";
  let udb = Scenarios.coin_db () in
  print_relation (Urelation.to_relation (Udb.find udb "Coins"));
  print_relation (Urelation.to_relation (Udb.find udb "Faces"));

  let q = Scenarios.coin_queries in

  section "R: the chosen coin (repair-key over Coins)";
  let r = Pqdb.Eval_exact.eval udb q.Scenarios.r in
  Format.printf "%a@." Urelation.pp r;
  Format.printf "W table so far:@.%a@." Wtable.pp (Udb.wtable udb);

  section "conf(T): the coin type joined with the all-heads evidence";
  let conf_t = Pqdb.Eval_exact.eval_relation udb (Ua.conf q.Scenarios.t) in
  print_relation conf_t;

  section "U: posterior P(coin type | both tosses heads), exact";
  let u = Pqdb.Eval_exact.eval_relation udb q.Scenarios.u in
  print_relation u;
  Format.printf
    "The prior P(fair) was 2/3; two heads push the posterior down to 1/3.@.";

  section "The same posterior, approximated (conf_{eps,delta})";
  let rng = Rng.create ~seed:42 in
  let approx_u =
    Ua.project_cols
      [
        (Expr.attr "CoinType", "CoinType");
        (Expr.(attr "P1" / attr "P2"), "P");
      ]
      (Ua.join
         (Ua.rename [ ("P", "P1") ]
            (Ua.approx_conf ~eps:0.05 ~delta:0.01 q.Scenarios.t))
         (Ua.rename [ ("P", "P2") ]
            (Ua.approx_conf ~eps:0.05 ~delta:0.01
               (Ua.project [] q.Scenarios.t))))
  in
  let result, stats = Pqdb.Eval_approx.eval ~rng (Udb.copy udb) approx_u in
  print_relation (Urelation.to_relation result.Pqdb.Eval_approx.urel);
  Format.printf "(%d Karp-Luby estimator calls)@."
    stats.Pqdb.Eval_approx.estimator_calls;

  section "Approximate selection: coin types with posterior <= 1/2";
  let sigma =
    Ua.approx_select
      (Apred.le (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const 0.5))
      [ [ "CoinType" ]; [] ]
      q.Scenarios.t
  in
  let result, stats =
    Pqdb.Eval_approx.eval_with_guarantee ~rng ~delta:0.05 (Udb.copy udb) sigma
    |> fun (r, s, _) -> (r, s)
  in
  print_relation (Urelation.to_relation result.Pqdb.Eval_approx.urel);
  List.iter
    (fun (t, e) ->
      Format.printf "  tuple %a decided with error bound <= %.4f@." Tuple.pp t e)
    result.Pqdb.Eval_approx.errors;
  Format.printf
    "(%d sigma-hat decisions, %d estimator calls)@."
    stats.Pqdb.Eval_approx.decisions stats.Pqdb.Eval_approx.estimator_calls;

  section "Ground truth (possible-worlds evaluator)";
  let pdb =
    Pqdb_worlds.Pdb.of_complete
      [
        ("Coins", Scenarios.coins);
        ("Faces", Scenarios.faces);
        ("Tosses", Scenarios.tosses);
      ]
  in
  let confs = Pqdb_worlds.Eval_naive.eval_confidence pdb q.Scenarios.t in
  List.iter
    (fun (t, p) ->
      Format.printf "  P(%a in T) = %a@." Tuple.pp t Pqdb_numeric.Rational.pp p)
    confs;
  Format.printf "@.Done.@."
