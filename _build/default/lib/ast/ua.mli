(** The uncertainty algebra UA (Definition 2.1) plus the approximate
    operators of Sections 4 and 6.

    One AST serves three interpreters:
    - the possible-worlds ground-truth evaluator ({!Pqdb_worlds.Eval_naive}),
    - the exact U-relational evaluator ([Pqdb.Eval_exact]),
    - the approximate evaluator with Karp-Luby confidence and Figure-3
      predicate decisions ([Pqdb.Eval_approx]). *)

open Pqdb_relational

type approx_params = { eps : float; delta : float }
(** Parameters of the [conf_{ε,δ}] FPRAS operator (Corollary 4.3). *)

type t =
  | Table of string
      (** Base-relation reference. *)
  | Lit of Relation.t
      (** Literal constant relation (complete by definition), e.g. the
          [{1, 2}] toss relation of Example 2.2. *)
  | Select of Predicate.t * t
      (** σ_φ, applied per world. *)
  | Project of (Expr.t * string) list * t
      (** π with computed columns; plain π_Ā is the identity column list. *)
  | Rename of (string * string) list * t
      (** ρ restricted to attribute renaming; arithmetic "renames" like
          [ρ_{A+B→C}] are expressed through {!Project}. *)
  | Product of t * t  (** × — schemas must be disjoint. *)
  | Join of t * t  (** natural join ⋈ (definable, but pervasive). *)
  | Union of t * t
  | Diff of t * t
      (** General difference (full UA); the U-relational evaluators accept it
          only when both arguments are complete ([−c]). *)
  | Conf of t
      (** [conf]: adds column [P]; result is complete by definition. *)
  | ApproxConf of approx_params * t
      (** [conf_{ε,δ}] (Section 4). Exact evaluators treat it as [Conf]. *)
  | RepairKey of { key : string list; weight : string; query : t }
      (** [repair-key_{Ā@B}]: uncertainty introduction from a complete
          relation with positive weight column [B]. *)
  | Poss of t  (** possible tuples; [π_sch(R)(conf(R))]. *)
  | Cert of t  (** certain tuples; [π_sch(R)(σ_{P=1}(conf(R)))]. *)
  | ApproxSelect of sigma_hat
      (** σ̂ (Section 6): selection on a predicate over per-tuple confidence
          values.  The result schema is the union of the [conf_args]
          attribute lists; the internal [P] columns are projected away so that
          exact and approximate results are set-comparable. *)

and sigma_hat = {
  phi : Apred.t;  (** predicate over variables [0 .. k-1] *)
  conf_args : string list list;
      (** [Āᵢ] attribute lists; variable [i] of [phi] denotes
          [conf(π_{Āᵢ}(input))] of the current tuple *)
  input : t;
}

(** {1 Builders} *)

val table : string -> t
val select : Predicate.t -> t -> t
val project : string list -> t -> t
val project_cols : (Expr.t * string) list -> t -> t
val rename : (string * string) list -> t -> t
val product : t -> t -> t
val join : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val conf : t -> t
val approx_conf : eps:float -> delta:float -> t -> t
val repair_key : key:string list -> weight:string -> t -> t
val poss : t -> t
val cert : t -> t
val approx_select : Apred.t -> string list list -> t -> t

(** {1 Structure} *)

val tables : t -> string list
(** Base tables mentioned, deduplicated. *)

val size : t -> int
(** Number of AST nodes. *)

val nesting_depth : t -> int
(** Maximum number of {!ApproxSelect} nodes on any root-to-leaf path — the
    [d] of Proposition 6.6. *)

val max_conf_width : t -> int
(** Maximum [k] (number of conf arguments) over all σ̂ nodes — part of the
    [k] of Proposition 6.6 (0 when no σ̂ occurs). *)

val is_positive : t -> bool
(** No {!Diff} node — the positive fragment for which the U-relational
    translation and the approximation results apply. *)

val has_sigma_hat_below_repair_key : t -> bool
(** Detects the unsupported pattern of footnote 3: repair-key applied above an
    approximate selection. *)

val desugar_sigma_hat : t -> t
(** Rewrite every σ̂ node into its defining composite
    [π(σ_φ(ρ(conf(π(Q))) ⋈ …))] (Section 6) — the exact semantics used by
    ground-truth evaluators. *)

exception Schema_error of string

val output_attributes : lookup:(string -> string list option) -> t -> string list
(** Output attribute list of the query given the base-table schemas
    ([lookup] returns a table's attributes, [None] when unknown).  Follows
    the operator semantics: products/joins concatenate (joins deduplicate
    shared names), [conf]/[conf_{ε,δ}] append ["P"], [repair-key] keeps its
    input schema, σ̂ returns the union of its conf-argument lists.
    @raise Schema_error on unknown tables, duplicate product attributes,
    unknown projection/rename/selection attributes, or mismatched union
    schemas — a static type check for queries. *)

val pp : Format.formatter -> t -> unit
