open Pqdb_relational

type approx_params = { eps : float; delta : float }

type t =
  | Table of string
  | Lit of Relation.t
  | Select of Predicate.t * t
  | Project of (Expr.t * string) list * t
  | Rename of (string * string) list * t
  | Product of t * t
  | Join of t * t
  | Union of t * t
  | Diff of t * t
  | Conf of t
  | ApproxConf of approx_params * t
  | RepairKey of { key : string list; weight : string; query : t }
  | Poss of t
  | Cert of t
  | ApproxSelect of sigma_hat

and sigma_hat = {
  phi : Apred.t;
  conf_args : string list list;
  input : t;
}

let table name = Table name
let select pred q = Select (pred, q)
let project attrs q = Project (List.map (fun a -> (Expr.attr a, a)) attrs, q)
let project_cols cols q = Project (cols, q)
let rename mapping q = Rename (mapping, q)
let product a b = Product (a, b)
let join a b = Join (a, b)
let union a b = Union (a, b)
let diff a b = Diff (a, b)
let conf q = Conf q
let approx_conf ~eps ~delta q = ApproxConf ({ eps; delta }, q)
let repair_key ~key ~weight query = RepairKey { key; weight; query }
let poss q = Poss q
let cert q = Cert q
let approx_select phi conf_args input = ApproxSelect { phi; conf_args; input }

let rec fold f acc q =
  let acc = f acc q in
  match q with
  | Table _ | Lit _ -> acc
  | Select (_, q)
  | Project (_, q)
  | Rename (_, q)
  | Conf q
  | ApproxConf (_, q)
  | RepairKey { query = q; _ }
  | Poss q
  | Cert q ->
      fold f acc q
  | Product (a, b) | Join (a, b) | Union (a, b) | Diff (a, b) ->
      fold f (fold f acc a) b
  | ApproxSelect { input; _ } -> fold f acc input

let tables q =
  List.rev
    (fold
       (fun acc q ->
         match q with
         | Table n -> if List.mem n acc then acc else n :: acc
         | _ -> acc)
       [] q)

let size q = fold (fun acc _ -> acc + 1) 0 q

let rec nesting_depth = function
  | Table _ | Lit _ -> 0
  | Select (_, q)
  | Project (_, q)
  | Rename (_, q)
  | Conf q
  | ApproxConf (_, q)
  | RepairKey { query = q; _ }
  | Poss q
  | Cert q ->
      nesting_depth q
  | Product (a, b) | Join (a, b) | Union (a, b) | Diff (a, b) ->
      max (nesting_depth a) (nesting_depth b)
  | ApproxSelect { input; _ } -> 1 + nesting_depth input

let max_conf_width q =
  fold
    (fun acc q ->
      match q with
      | ApproxSelect { conf_args; _ } -> max acc (List.length conf_args)
      | _ -> acc)
    0 q

let is_positive q =
  fold (fun acc q -> acc && match q with Diff _ -> false | _ -> true) true q

let has_sigma_hat_below_repair_key q =
  let rec contains_sigma_hat = function
    | ApproxSelect _ -> true
    | Table _ | Lit _ -> false
    | Select (_, q)
    | Project (_, q)
    | Rename (_, q)
    | Conf q
    | ApproxConf (_, q)
    | RepairKey { query = q; _ }
    | Poss q
    | Cert q ->
        contains_sigma_hat q
    | Product (a, b) | Join (a, b) | Union (a, b) | Diff (a, b) ->
        contains_sigma_hat a || contains_sigma_hat b
  in
  fold
    (fun acc q ->
      acc
      ||
      match q with
      | RepairKey { query; _ } -> contains_sigma_hat query
      | _ -> acc)
    false q

let p_column i = "P" ^ string_of_int (i + 1)

(* σ̂_{φ(conf[Ā₁],…,conf[Āₖ])}(Q)
     = π_{∪Āᵢ}(σ_{φ(P₁,…,Pₖ)}(ρ_{P→P₁}(conf(π_{Ā₁}Q)) ⋈ … )). *)
let desugar_one { phi; conf_args; input } =
  let branches =
    List.mapi
      (fun i attrs ->
        Rename ([ ("P", p_column i) ], Conf (project attrs input)))
      conf_args
  in
  let joined =
    match branches with
    | [] -> invalid_arg "Ua.desugar: sigma-hat with no conf arguments"
    | first :: rest -> List.fold_left join first rest
  in
  let out_attrs =
    List.fold_left
      (fun acc attrs ->
        List.fold_left
          (fun acc a -> if List.mem a acc then acc else acc @ [ a ])
          acc attrs)
      [] conf_args
  in
  let pred = Apred.to_predicate p_column phi in
  project out_attrs (Select (pred, joined))

let rec desugar_sigma_hat = function
  | (Table _ | Lit _) as q -> q
  | Select (p, q) -> Select (p, desugar_sigma_hat q)
  | Project (cols, q) -> Project (cols, desugar_sigma_hat q)
  | Rename (m, q) -> Rename (m, desugar_sigma_hat q)
  | Product (a, b) -> Product (desugar_sigma_hat a, desugar_sigma_hat b)
  | Join (a, b) -> Join (desugar_sigma_hat a, desugar_sigma_hat b)
  | Union (a, b) -> Union (desugar_sigma_hat a, desugar_sigma_hat b)
  | Diff (a, b) -> Diff (desugar_sigma_hat a, desugar_sigma_hat b)
  | Conf q -> Conf (desugar_sigma_hat q)
  | ApproxConf (p, q) -> ApproxConf (p, desugar_sigma_hat q)
  | RepairKey { key; weight; query } ->
      RepairKey { key; weight; query = desugar_sigma_hat query }
  | Poss q -> Poss (desugar_sigma_hat q)
  | Cert q -> Cert (desugar_sigma_hat q)
  | ApproxSelect sh ->
      desugar_sigma_hat (desugar_one { sh with input = sh.input })

let pp_strings fmt names =
  Format.fprintf fmt "%a"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Format.pp_print_string)
    names

let rec pp fmt = function
  | Table n -> Format.pp_print_string fmt n
  | Lit r -> Format.fprintf fmt "lit(%d tuples)" (Relation.cardinality r)
  | Select (p, q) -> Format.fprintf fmt "select[%a](%a)" Predicate.pp p pp q
  | Project (cols, q) ->
      let pp_col fmt (e, name) =
        match e with
        | Expr.Attr a when a = name -> Format.pp_print_string fmt a
        | _ -> Format.fprintf fmt "%a -> %s" Expr.pp e name
      in
      Format.fprintf fmt "project[%a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           pp_col)
        cols pp q
  | Rename (m, q) ->
      let pp_one fmt (a, b) = Format.fprintf fmt "%s -> %s" a b in
      Format.fprintf fmt "rename[%a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           pp_one)
        m pp q
  | Product (a, b) -> Format.fprintf fmt "(%a x %a)" pp a pp b
  | Join (a, b) -> Format.fprintf fmt "(%a join %a)" pp a pp b
  | Union (a, b) -> Format.fprintf fmt "(%a union %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf fmt "(%a minus %a)" pp a pp b
  | Conf q -> Format.fprintf fmt "conf(%a)" pp q
  | ApproxConf ({ eps; delta }, q) ->
      Format.fprintf fmt "aconf[%g,%g](%a)" eps delta pp q
  | RepairKey { key; weight; query } ->
      Format.fprintf fmt "repairkey[%a @@ %s](%a)" pp_strings key weight pp
        query
  | Poss q -> Format.fprintf fmt "poss(%a)" pp q
  | Cert q -> Format.fprintf fmt "cert(%a)" pp q
  | ApproxSelect { phi; conf_args; input } ->
      let pp_arg fmt attrs = Format.fprintf fmt "conf[%a]" pp_strings attrs in
      Format.fprintf fmt "aselect[%a | %a](%a)" Apred.pp phi
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           pp_arg)
        conf_args pp input

exception Schema_error of string

let schema_error fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt

let output_attributes ~lookup q =
  let check_no_dup where attrs =
    let sorted = List.sort compare attrs in
    let rec go = function
      | a :: b :: _ when a = b ->
          schema_error "%s: duplicate attribute %s" where a
      | _ :: rest -> go rest
      | [] -> ()
    in
    go sorted
  in
  let check_mem where attrs a =
    if not (List.mem a attrs) then
      schema_error "%s: unknown attribute %s" where a
  in
  let rec go = function
    | Table name -> begin
        match lookup name with
        | Some attrs -> attrs
        | None -> schema_error "unknown table %s" name
      end
    | Lit rel ->
        Pqdb_relational.Schema.attributes (Relation.schema rel)
    | Select (p, q) ->
        let attrs = go q in
        List.iter (check_mem "select" attrs) (Predicate.attributes p);
        attrs
    | Project (cols, q) ->
        let attrs = go q in
        List.iter
          (fun (e, _) ->
            List.iter (check_mem "project" attrs) (Expr.attributes e))
          cols;
        let out = List.map snd cols in
        check_no_dup "project" out;
        out
    | Rename (m, q) ->
        let attrs = go q in
        List.iter (fun (src, _) -> check_mem "rename" attrs src) m;
        let out =
          List.map
            (fun a -> match List.assoc_opt a m with Some b -> b | None -> a)
            attrs
        in
        check_no_dup "rename" out;
        out
    | Product (a, b) ->
        let out = go a @ go b in
        check_no_dup "product" out;
        out
    | Join (a, b) ->
        let la = go a and lb = go b in
        la @ List.filter (fun x -> not (List.mem x la)) lb
    | Union (a, b) | Diff (a, b) ->
        let la = go a and lb = go b in
        if la <> lb then
          schema_error "union/difference: schemas differ (%s) vs (%s)"
            (String.concat "," la) (String.concat "," lb);
        la
    | Conf q | ApproxConf (_, q) ->
        let attrs = go q in
        if List.mem "P" attrs then
          schema_error "conf: input already has a P column";
        attrs @ [ "P" ]
    | RepairKey { key; weight; query } ->
        let attrs = go query in
        List.iter (check_mem "repair-key key" attrs) key;
        check_mem "repair-key weight" attrs weight;
        attrs
    | Poss q | Cert q -> go q
    | ApproxSelect { phi; conf_args; input } ->
        let attrs = go input in
        List.iter
          (fun arg -> List.iter (check_mem "sigma-hat conf arg" attrs) arg)
          conf_args;
        if Apred.arity phi > List.length conf_args then
          schema_error
            "sigma-hat: predicate mentions more variables than conf arguments";
        List.fold_left
          (fun acc arg ->
            List.fold_left
              (fun acc a -> if List.mem a acc then acc else acc @ [ a ])
              acc arg)
          [] conf_args
  in
  go q
