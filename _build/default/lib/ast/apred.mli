(** Predicates over approximable values (Section 5).

    A predicate [φ(x₁, …, xₖ)] is a Boolean combination of comparisons between
    arithmetic expressions in [k] {e approximable} variables — values such as
    tuple confidences that are only available through an (ε, δ)-approximation
    scheme.  The variables are indexed [0 .. k-1]; in an approximate selection
    [σ̂_{φ(conf[Ā₁], …, conf[Āₖ])}] variable [i] denotes the confidence
    [conf[Āᵢ₊₁]] of the current tuple. *)

open Pqdb_numeric

type expr =
  | Var of int              (** approximable value [xᵢ] *)
  | Const of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Cmp of comparison * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t
  | True
  | False

(** {1 Builders} *)

val var : int -> expr
val const : float -> expr
val ge : expr -> expr -> t
val gt : expr -> expr -> t
val le : expr -> expr -> t
val lt : expr -> expr -> t
val eq : expr -> expr -> t
val conj : t -> t -> t
val disj : t -> t -> t
val neg : t -> t

(** {1 Structure} *)

val arity : t -> int
(** [1 + ] the largest variable index mentioned (0 for variable-free
    predicates). *)

val occurrences : t -> int array
(** [occurrences φ].(i) counts syntactic occurrences of [Var i]; Theorem 5.5
    applies only when every entry is [<= 1]. *)

val single_occurrence : t -> bool

val nnf : t -> t
(** Push negations into the atoms (De Morgan + comparison flipping),
    eliminating [Not].  This is the first step of the ε_φ computation
    (Section 5, after Example 5.4). *)

(** {1 Evaluation} *)

val eval_expr : float array -> expr -> float
val eval : float array -> t -> bool
(** @raise Invalid_argument when a variable index is out of range. *)

val eval_rational : Rational.t array -> t -> bool
(** Exact evaluation (floats in the predicate are converted exactly); used by
    the exact σ̂ semantics so that ground truth does not suffer float error. *)

(** {1 Printing} *)

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit

(** {1 Conversion} *)

val to_predicate : (int -> string) -> t -> Pqdb_relational.Predicate.t
(** [to_predicate name φ] maps [Var i] to attribute [name i] — used to desugar
    σ̂ into the conf/join/select composite of Section 6 for exact
    evaluation. *)
