lib/ast/ua.ml: Apred Expr Format List Pqdb_relational Predicate Relation String
