lib/ast/ua.mli: Apred Expr Format Pqdb_relational Predicate Relation
