lib/ast/apred.ml: Array Float Format Pqdb_numeric Pqdb_relational Rational
