lib/ast/apred.mli: Format Pqdb_numeric Pqdb_relational Rational
