open Pqdb_numeric

type expr =
  | Var of int
  | Const of float
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Cmp of comparison * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t
  | True
  | False

let var i = Var i
let const c = Const c
let ge a b = Cmp (Ge, a, b)
let gt a b = Cmp (Gt, a, b)
let le a b = Cmp (Le, a, b)
let lt a b = Cmp (Lt, a, b)
let eq a b = Cmp (Eq, a, b)
let conj a b = And (a, b)
let disj a b = Or (a, b)
let neg p = Not p

let rec max_var_expr = function
  | Var i -> i
  | Const _ -> -1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      max (max_var_expr a) (max_var_expr b)
  | Neg a -> max_var_expr a

let rec max_var = function
  | Cmp (_, a, b) -> max (max_var_expr a) (max_var_expr b)
  | And (p, q) | Or (p, q) -> max (max_var p) (max_var q)
  | Not p -> max_var p
  | True | False -> -1

let arity p = 1 + max_var p

let occurrences p =
  let k = arity p in
  let counts = Array.make k 0 in
  let rec go_expr = function
    | Var i -> counts.(i) <- counts.(i) + 1
    | Const _ -> ()
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        go_expr a;
        go_expr b
    | Neg a -> go_expr a
  in
  let rec go = function
    | Cmp (_, a, b) ->
        go_expr a;
        go_expr b
    | And (p, q) | Or (p, q) ->
        go p;
        go q
    | Not p -> go p
    | True | False -> ()
  in
  go p;
  counts

let single_occurrence p = Array.for_all (fun c -> c <= 1) (occurrences p)

let negate_cmp = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let rec nnf = function
  | Cmp _ as atom -> atom
  | And (p, q) -> And (nnf p, nnf q)
  | Or (p, q) -> Or (nnf p, nnf q)
  | True -> True
  | False -> False
  | Not p -> begin
      match p with
      | Cmp (op, a, b) -> Cmp (negate_cmp op, a, b)
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b))
      | Not q -> nnf q
      | True -> False
      | False -> True
    end

let rec eval_expr point = function
  | Var i ->
      if i < 0 || i >= Array.length point then
        invalid_arg "Apred.eval: variable out of range"
      else point.(i)
  | Const c -> c
  | Add (a, b) -> eval_expr point a +. eval_expr point b
  | Sub (a, b) -> eval_expr point a -. eval_expr point b
  | Mul (a, b) -> eval_expr point a *. eval_expr point b
  | Div (a, b) -> eval_expr point a /. eval_expr point b
  | Neg a -> -.eval_expr point a

let compare_with op c =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval point = function
  | Cmp (op, a, b) ->
      compare_with op (Float.compare (eval_expr point a) (eval_expr point b))
  | And (p, q) -> eval point p && eval point q
  | Or (p, q) -> eval point p || eval point q
  | Not p -> not (eval point p)
  | True -> true
  | False -> false

let rec eval_expr_rational point = function
  | Var i ->
      if i < 0 || i >= Array.length point then
        invalid_arg "Apred.eval_rational: variable out of range"
      else point.(i)
  | Const c -> Rational.of_float c
  | Add (a, b) ->
      Rational.add (eval_expr_rational point a) (eval_expr_rational point b)
  | Sub (a, b) ->
      Rational.sub (eval_expr_rational point a) (eval_expr_rational point b)
  | Mul (a, b) ->
      Rational.mul (eval_expr_rational point a) (eval_expr_rational point b)
  | Div (a, b) ->
      Rational.div (eval_expr_rational point a) (eval_expr_rational point b)
  | Neg a -> Rational.neg (eval_expr_rational point a)

let rec eval_rational point = function
  | Cmp (op, a, b) ->
      compare_with op
        (Rational.compare
           (eval_expr_rational point a)
           (eval_expr_rational point b))
  | And (p, q) -> eval_rational point p && eval_rational point q
  | Or (p, q) -> eval_rational point p || eval_rational point q
  | Not p -> not (eval_rational point p)
  | True -> true
  | False -> false

let rec pp_expr fmt = function
  | Var i -> Format.fprintf fmt "x%d" i
  | Const c -> Format.fprintf fmt "%g" c
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_expr a pp_expr b
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp_expr a pp_expr b
  | Neg a -> Format.fprintf fmt "(-%a)" pp_expr a

let cmp_symbol = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp fmt = function
  | Cmp (op, a, b) ->
      Format.fprintf fmt "%a %s %a" pp_expr a (cmp_symbol op) pp_expr b
  | And (p, q) -> Format.fprintf fmt "(%a and %a)" pp p pp q
  | Or (p, q) -> Format.fprintf fmt "(%a or %a)" pp p pp q
  | Not p -> Format.fprintf fmt "(not %a)" pp p
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"

let to_predicate name p =
  let module P = Pqdb_relational.Predicate in
  let module E = Pqdb_relational.Expr in
  let module V = Pqdb_relational.Value in
  let rec conv_expr = function
    | Var i -> E.Attr (name i)
    (* Exact rational image of the float constant, so the desugared exact σ̂
       keeps comparing rationals with rationals. *)
    | Const c -> E.Const (V.Rat (Rational.of_float c))
    | Add (a, b) -> E.Add (conv_expr a, conv_expr b)
    | Sub (a, b) -> E.Sub (conv_expr a, conv_expr b)
    | Mul (a, b) -> E.Mul (conv_expr a, conv_expr b)
    | Div (a, b) -> E.Div (conv_expr a, conv_expr b)
    | Neg a -> E.Neg (conv_expr a)
  in
  let conv_cmp = function
    | Eq -> P.Eq
    | Neq -> P.Neq
    | Lt -> P.Lt
    | Le -> P.Le
    | Gt -> P.Gt
    | Ge -> P.Ge
  in
  let rec conv = function
    | Cmp (op, a, b) -> P.Cmp (conv_cmp op, conv_expr a, conv_expr b)
    | And (p, q) -> P.And (conv p, conv q)
    | Or (p, q) -> P.Or (conv p, conv q)
    | Not p -> P.Not (conv p)
    | True -> P.True
    | False -> P.False
  in
  conv p
