(** Tokens of the textual UA query language.

    The concrete syntax is algebra-flavoured (MayBMS exposed a similar
    surface): [select], [project], [rename], [join], [times], [union],
    [minus], [conf], [aconf], [repairkey], [poss], [cert], [aselect], plus
    arithmetic and comparison operators.  Keywords are case-insensitive;
    identifiers are case-sensitive. *)

type t =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Dollar of int  (** [$i] — conf-argument variable inside [aselect] *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Arrow  (** [->] *)
  | Pipe
  | At
  | Plus
  | Minus
  | Star
  | Slash
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Kw of string  (** lower-cased keyword *)
  | Eof

val keywords : string list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
