(** Hand-written lexer for the UA query language.

    Comments run from [--] to end of line.  Strings use single or double
    quotes without escapes.  Numbers are integers or decimal floats.
    [$1], [$2], … are the conf-argument variables of [aselect]. *)

exception Error of string * int
(** Message and character offset. *)

val tokenize : string -> (Token.t * int) list
(** Token stream with offsets, ending with [Eof].
    @raise Error on an unrecognized character or malformed literal. *)
