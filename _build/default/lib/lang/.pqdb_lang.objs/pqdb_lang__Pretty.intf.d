lib/lang/pretty.mli: Format Pqdb_ast Pqdb_relational
