lib/lang/qparser.mli: Pqdb_ast
