lib/lang/pretty.ml: Expr Float Format Pqdb_ast Pqdb_numeric Pqdb_relational Predicate Printf Relation Schema String Tuple Value
