lib/lang/qparser.ml: Array Expr Lexer List Pqdb_ast Pqdb_relational Predicate Printf Relation Token Value
