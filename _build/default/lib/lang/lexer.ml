exception Error of string * int

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let rec skip_line i = if i < n && input.[i] <> '\n' then skip_line (i + 1) else i in
  let rec go i =
    if i >= n then emit Token.Eof i
    else begin
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '-' && i + 1 < n && input.[i + 1] = '-' then
        go (skip_line (i + 2))
      else if c = '-' && i + 1 < n && input.[i + 1] = '>' then begin
        emit Token.Arrow i;
        go (i + 2)
      end
      else if is_digit c then number i
      else if is_ident_start c then ident i
      else if c = '\'' || c = '"' then string_lit c (i + 1) i
      else if c = '$' then dollar (i + 1) i
      else begin
        let two tok = emit tok i; go (i + 2) in
        let one tok = emit tok i; go (i + 1) in
        match c with
        | '<' when i + 1 < n && input.[i + 1] = '=' -> two Token.Le
        | '<' when i + 1 < n && input.[i + 1] = '>' -> two Token.Neq
        | '>' when i + 1 < n && input.[i + 1] = '=' -> two Token.Ge
        | '!' when i + 1 < n && input.[i + 1] = '=' -> two Token.Neq
        | '<' -> one Token.Lt
        | '>' -> one Token.Gt
        | '=' -> one Token.Eq
        | '(' -> one Token.Lparen
        | ')' -> one Token.Rparen
        | '[' -> one Token.Lbracket
        | ']' -> one Token.Rbracket
        | ',' -> one Token.Comma
        | ';' -> one Token.Semicolon
        | '|' -> one Token.Pipe
        | '@' -> one Token.At
        | '+' -> one Token.Plus
        | '-' -> one Token.Minus
        | '*' -> one Token.Star
        | '/' -> one Token.Slash
        | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
      end
    end
  and number start =
    let rec digits i = if i < n && is_digit input.[i] then digits (i + 1) else i in
    let int_end = digits start in
    if int_end < n && input.[int_end] = '.' && int_end + 1 < n
       && is_digit input.[int_end + 1]
    then begin
      let frac_end = digits (int_end + 1) in
      let text = String.sub input start (frac_end - start) in
      emit (Token.Float (float_of_string text)) start;
      go frac_end
    end
    else begin
      let text = String.sub input start (int_end - start) in
      emit (Token.Int (int_of_string text)) start;
      go int_end
    end
  and ident start =
    let rec chars i = if i < n && is_ident_char input.[i] then chars (i + 1) else i in
    let stop = chars start in
    let text = String.sub input start (stop - start) in
    let lower = String.lowercase_ascii text in
    if List.mem lower Token.keywords then emit (Token.Kw lower) start
    else emit (Token.Ident text) start;
    go stop
  and string_lit quote i start =
    let rec find j =
      if j >= n then raise (Error ("unterminated string", start))
      else if input.[j] = quote then j
      else find (j + 1)
    in
    let stop = find i in
    emit (Token.String (String.sub input i (stop - i))) start;
    go (stop + 1)
  and dollar i start =
    let rec digits j = if j < n && is_digit input.[j] then digits (j + 1) else j in
    let stop = digits i in
    if stop = i then raise (Error ("expected digits after $", start))
    else begin
      emit (Token.Dollar (int_of_string (String.sub input i (stop - i)))) start;
      go stop
    end
  in
  go 0;
  List.rev !tokens
