(** Classical relational algebra over {!Relation} values.

    These operators implement the per-world semantics of Definition 2.1: in
    the possible-worlds evaluator they are applied inside each world, and in
    the U-relational evaluator they are the target language of the
    parsimonious translation of Section 3. *)

type projection = Expr.t * string
(** An output column: expression and its output attribute name.  Plain
    projection is [(Attr a, a)]; computed columns like [P1/P2 → P] are
    [(Div (Attr "P1", Attr "P2"), "P")]. *)

val select : Predicate.t -> Relation.t -> Relation.t
val project : projection list -> Relation.t -> Relation.t
(** Set semantics (duplicates eliminated).
    @raise Invalid_argument on duplicate output names. *)

val project_attrs : string list -> Relation.t -> Relation.t
(** π onto plain attribute names. *)

val rename : (string * string) list -> Relation.t -> Relation.t
(** Pure attribute renaming (no new columns). *)

val product : Relation.t -> Relation.t -> Relation.t
(** @raise Invalid_argument on attribute-name clashes. *)

val join : Relation.t -> Relation.t -> Relation.t
(** Natural join on common attribute names. *)

val theta_join : Predicate.t -> Relation.t -> Relation.t -> Relation.t
(** Product followed by selection; disjoint schemas required. *)

val union : Relation.t -> Relation.t -> Relation.t
val diff : Relation.t -> Relation.t -> Relation.t
val inter : Relation.t -> Relation.t -> Relation.t

val group_by : string list -> Relation.t -> (Tuple.t * Relation.t) list
(** Partition by the values of the given attributes; keys are the projected
    tuples, groups keep the full schema.  Used by repair-key and conf. *)
