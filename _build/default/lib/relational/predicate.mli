(** Boolean selection conditions: Boolean combinations of atomic comparisons
    between scalar expressions.

    The paper allows negation inside selection conditions even in positive UA
    (Section 2), so the full Boolean structure is available here; positivity
    restrictions apply to the algebra's difference operator, not to σ's
    condition. *)

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Cmp of comparison * Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t
  | True
  | False

val ( = ) : Expr.t -> Expr.t -> t
val ( <> ) : Expr.t -> Expr.t -> t
val ( < ) : Expr.t -> Expr.t -> t
val ( <= ) : Expr.t -> Expr.t -> t
val ( > ) : Expr.t -> Expr.t -> t
val ( >= ) : Expr.t -> Expr.t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t

val eval : Schema.t -> Tuple.t -> t -> bool
val attributes : t -> string list
val check : Schema.t -> t -> unit
val pp : Format.formatter -> t -> unit

val nnf : t -> t
(** Push negations to the atoms (De Morgan) and absorb them into the
    comparison operators, eliminating [Not] entirely. *)
