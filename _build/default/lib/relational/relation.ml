module TS = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = { schema : Schema.t; set : TS.t }

let check_arity schema tuple =
  if Tuple.arity tuple <> Schema.arity schema then
    invalid_arg "Relation: tuple arity does not match schema"

let empty schema = { schema; set = TS.empty }

let of_list schema tuples =
  List.iter (check_arity schema) tuples;
  { schema; set = TS.of_list tuples }

let of_rows names rows =
  of_list (Schema.of_list names) (List.map Tuple.of_list rows)

let schema r = r.schema
let cardinality r = TS.cardinal r.set
let is_empty r = TS.is_empty r.set
let mem r t = TS.mem t r.set
let tuples r = TS.elements r.set
let fold f r init = TS.fold f r.set init
let iter f r = TS.iter f r.set
let filter p r = { r with set = TS.filter p r.set }

let add r t =
  check_arity r.schema t;
  { r with set = TS.add t r.set }

let map schema f r =
  let set =
    TS.fold
      (fun t acc ->
        let t' = f t in
        check_arity schema t';
        TS.add t' acc)
      r.set TS.empty
  in
  { schema; set }

let require_same_schema op a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg ("Relation." ^ op ^ ": schema mismatch")

let union a b =
  require_same_schema "union" a b;
  { a with set = TS.union a.set b.set }

let diff a b =
  require_same_schema "diff" a b;
  { a with set = TS.diff a.set b.set }

let inter a b =
  require_same_schema "inter" a b;
  { a with set = TS.inter a.set b.set }

let equal a b = Schema.equal a.schema b.schema && TS.equal a.set b.set

let compare a b =
  let c =
    Stdlib.compare (Schema.attributes a.schema) (Schema.attributes b.schema)
  in
  if c <> 0 then c else TS.compare a.set b.set

let pp fmt r =
  let attrs = Schema.attributes r.schema in
  let rows = List.map (fun t -> List.map Value.to_string (Tuple.to_list t)) (tuples r) in
  let widths =
    List.mapi
      (fun i a ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length a) rows)
      attrs
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let print_row cells =
    Format.fprintf fmt "| %s |@,"
      (String.concat " | " (List.map2 pad cells widths))
  in
  let rule =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "%s@," rule;
  print_row attrs;
  Format.fprintf fmt "%s@," rule;
  List.iter print_row rows;
  Format.fprintf fmt "%s" rule;
  Format.pp_close_box fmt ()
