type t = { attrs : string array }

let check_distinct attrs =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun a ->
      if Hashtbl.mem seen a then
        invalid_arg ("Schema: duplicate attribute " ^ a)
      else Hashtbl.add seen a ())
    attrs

let of_list names =
  let attrs = Array.of_list names in
  check_distinct attrs;
  { attrs }

let attributes s = Array.to_list s.attrs
let arity s = Array.length s.attrs

let index_opt s name =
  let n = Array.length s.attrs in
  let rec go i =
    if i >= n then None else if s.attrs.(i) = name then Some i else go (i + 1)
  in
  go 0

let index s name =
  match index_opt s name with Some i -> i | None -> raise Not_found

let mem s name = index_opt s name <> None
let equal a b = a.attrs = b.attrs

let pp fmt s =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       Format.pp_print_string)
    (attributes s)

let concat a b =
  let attrs = Array.append a.attrs b.attrs in
  check_distinct attrs;
  { attrs }

let rename s mapping =
  List.iter
    (fun (src, _) -> if not (mem s src) then raise Not_found)
    mapping;
  let attrs =
    Array.map
      (fun a -> match List.assoc_opt a mapping with Some b -> b | None -> a)
      s.attrs
  in
  check_distinct attrs;
  { attrs }

let restrict s names =
  List.iter (fun a -> ignore (index s a)) names;
  of_list names

let common a b = List.filter (mem b) (attributes a)

let minus s names =
  of_list (List.filter (fun a -> not (List.mem a names)) (attributes s))
