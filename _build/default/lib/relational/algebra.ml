type projection = Expr.t * string

let select pred r =
  Predicate.check (Relation.schema r) pred;
  Relation.filter (fun t -> Predicate.eval (Relation.schema r) t pred) r

let project cols r =
  let in_schema = Relation.schema r in
  List.iter (fun (e, _) -> Expr.check in_schema e) cols;
  let out_schema = Schema.of_list (List.map snd cols) in
  let exprs = List.map fst cols in
  Relation.map out_schema
    (fun t -> Tuple.of_list (List.map (Expr.eval in_schema t) exprs))
    r

let project_attrs names r = project (List.map (fun a -> (Expr.attr a, a)) names) r

let rename mapping r =
  let out_schema = Schema.rename (Relation.schema r) mapping in
  (* Positions are unchanged; only the schema header moves. *)
  Relation.map out_schema (fun t -> t) r

let product a b =
  let out_schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  Relation.fold
    (fun ta acc ->
      Relation.fold
        (fun tb acc -> Relation.add acc (Tuple.concat ta tb))
        b acc)
    a (Relation.empty out_schema)

let join a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let shared = Schema.common sa sb in
  let sb_only =
    List.filter (fun x -> not (List.mem x shared)) (Schema.attributes sb)
  in
  let out_schema = Schema.of_list (Schema.attributes sa @ sb_only) in
  let key schema t = List.map (fun x -> Tuple.get_named schema t x) shared in
  let sb_only_positions = List.map (Schema.index sb) sb_only in
  (* Hash b's tuples by their shared-attribute key. *)
  let index = Hashtbl.create (max 16 (Relation.cardinality b)) in
  Relation.iter
    (fun tb ->
      let k = List.map Value.to_string (key sb tb) in
      Hashtbl.add index k tb)
    b;
  Relation.fold
    (fun ta acc ->
      let k = List.map Value.to_string (key sa ta) in
      List.fold_left
        (fun acc tb ->
          (* String keys can collide across types; re-check with Value.equal. *)
          if List.for_all2 Value.equal (key sa ta) (key sb tb) then
            Relation.add acc (Tuple.concat ta (Tuple.project tb sb_only_positions))
          else acc)
        acc
        (Hashtbl.find_all index k))
    a (Relation.empty out_schema)

let theta_join pred a b = select pred (product a b)
let union = Relation.union
let diff = Relation.diff
let inter = Relation.inter

let group_by keys r =
  let schema = Relation.schema r in
  let positions = List.map (Schema.index schema) keys in
  let table = Hashtbl.create 64 in
  let order = ref [] in
  Relation.iter
    (fun t ->
      let k = Tuple.project t positions in
      let ks = Format.asprintf "%a" Tuple.pp k in
      (match Hashtbl.find_opt table ks with
      | Some (key, group) -> Hashtbl.replace table ks (key, Relation.add group t)
      | None ->
          order := ks :: !order;
          Hashtbl.add table ks (k, Relation.add (Relation.empty schema) t)))
    r;
  List.rev_map (fun ks -> Hashtbl.find table ks) !order
