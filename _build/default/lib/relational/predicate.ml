type comparison = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Cmp of comparison * Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t
  | True
  | False

let not_ p = Not p

let eval_cmp op a b =
  let c = Value.compare a b in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval schema tuple = function
  | Cmp (op, x, y) ->
      eval_cmp op (Expr.eval schema tuple x) (Expr.eval schema tuple y)
  | And (p, q) -> eval schema tuple p && eval schema tuple q
  | Or (p, q) -> eval schema tuple p || eval schema tuple q
  | Not p -> not (eval schema tuple p)
  | True -> true
  | False -> false

let attributes p =
  let rec go acc = function
    | Cmp (_, x, y) ->
        List.fold_left
          (fun acc a -> if List.mem a acc then acc else a :: acc)
          acc
          (Expr.attributes x @ Expr.attributes y)
    | And (p, q) | Or (p, q) -> go (go acc p) q
    | Not p -> go acc p
    | True | False -> acc
  in
  List.rev (go [] p)

let check schema p =
  List.iter (fun a -> ignore (Schema.index schema a)) (attributes p)

let cmp_symbol = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp fmt = function
  | Cmp (op, x, y) ->
      Format.fprintf fmt "%a %s %a" Expr.pp x (cmp_symbol op) Expr.pp y
  | And (p, q) -> Format.fprintf fmt "(%a and %a)" pp p pp q
  | Or (p, q) -> Format.fprintf fmt "(%a or %a)" pp p pp q
  | Not p -> Format.fprintf fmt "(not %a)" pp p
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"

let negate_cmp = function
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let rec nnf = function
  | Cmp _ as atom -> atom
  | And (p, q) -> And (nnf p, nnf q)
  | Or (p, q) -> Or (nnf p, nnf q)
  | True -> True
  | False -> False
  | Not p -> begin
      match p with
      | Cmp (op, x, y) -> Cmp (negate_cmp op, x, y)
      | And (a, b) -> Or (nnf (Not a), nnf (Not b))
      | Or (a, b) -> And (nnf (Not a), nnf (Not b))
      | Not q -> nnf q
      | True -> False
      | False -> True
    end

(* Infix constructors last, so the shadowed Stdlib operators stay available
   to the implementations above. *)
let ( = ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Neq, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
