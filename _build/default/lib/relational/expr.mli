(** Scalar expressions over tuple attributes.

    Section 2 allows arithmetic expressions in atomic selection conditions and
    in the argument lists of π and ρ (e.g. [ρ_{A+B→C}(R)], or the
    [P1/P2 → P] projection computing a conditional probability in
    Example 2.2). *)

type t =
  | Attr of string          (** attribute reference *)
  | Const of Value.t        (** literal *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t

val attr : string -> t
val const : Value.t -> t
val int : int -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val eval : Schema.t -> Tuple.t -> t -> Value.t
(** @raise Not_found on an unknown attribute.
    @raise Invalid_argument on non-numeric arithmetic.
    @raise Division_by_zero accordingly. *)

val attributes : t -> string list
(** Attributes mentioned, without duplicates, in first-occurrence order. *)

val check : Schema.t -> t -> unit
(** Validate all attribute references.
    @raise Not_found on the first unknown attribute. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
