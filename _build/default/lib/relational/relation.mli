(** Relations with set semantics: a schema plus a set of tuples.

    The paper's algebra is set-based (duplicate elimination is implicit in π
    and ∪), so relations are backed by a balanced tree set ordered by
    {!Tuple.compare}. *)

type t

val empty : Schema.t -> t
val of_list : Schema.t -> Tuple.t list -> t
(** Duplicates are eliminated.
    @raise Invalid_argument if a tuple's arity differs from the schema's. *)

val of_rows : string list -> Value.t list list -> t
(** Convenience: schema from attribute names, tuples from value lists. *)

val schema : t -> Schema.t
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool
val tuples : t -> Tuple.t list
(** In tuple order. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t
val add : t -> Tuple.t -> t
(** @raise Invalid_argument on arity mismatch. *)

val map : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t
(** Rebuilds the set under a new schema; deduplicates. *)

val union : t -> t -> t
(** @raise Invalid_argument unless schemas are equal. *)

val diff : t -> t -> t
(** @raise Invalid_argument unless schemas are equal. *)

val inter : t -> t -> t
val equal : t -> t -> bool
(** Same schema and same tuple set. *)

val compare : t -> t -> int
(** Total order (schema, then tuple set) so relations can key maps — the
    possible-worlds evaluator deduplicates worlds by comparing all their
    relations. *)

val pp : Format.formatter -> t -> unit
(** ASCII table with a header row. *)
