(** Relation schemas: ordered lists of distinct attribute names.

    Attribute order matters (tuples are positional), but operations such as
    projection and natural join work by name, as in the paper's algebra. *)

type t

val of_list : string list -> t
(** @raise Invalid_argument on duplicate attribute names. *)

val attributes : t -> string list
val arity : t -> int
val mem : t -> string -> bool

val index : t -> string -> int
(** Position of an attribute.
    @raise Not_found when absent. *)

val index_opt : t -> string -> int option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val concat : t -> t -> t
(** Schema of a product; @raise Invalid_argument on name clashes. *)

val rename : t -> (string * string) list -> t
(** [rename s \[(a, b); …\]] renames attribute [a] to [b], keeping order.
    Unmentioned attributes are unchanged.
    @raise Not_found if a source attribute is absent.
    @raise Invalid_argument if the result has duplicates. *)

val restrict : t -> string list -> t
(** Subschema in the {e given} order (projection list order).
    @raise Not_found if an attribute is absent. *)

val common : t -> t -> string list
(** Attributes present in both schemas, in the order of the first. *)

val minus : t -> string list -> t
(** Drop the given attributes (used by repair-key's "all other columns"). *)
