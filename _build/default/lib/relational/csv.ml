(* Hand-rolled CSV: commas, newlines, double-quote quoting. *)

type field = Quoted of string | Bare of string

let split_line line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec bare i =
    if i >= n then finish_bare i
    else begin
      match line.[i] with
      | ',' -> finish_bare i
      | c ->
          Buffer.add_char buf c;
          bare (i + 1)
    end
  and finish_bare i =
    fields := Bare (String.trim (Buffer.contents buf)) :: !fields;
    Buffer.clear buf;
    if i < n then start (i + 1)
  and quoted i =
    if i >= n then invalid_arg "Csv: unterminated quote"
    else begin
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> finish_quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
    end
  and finish_quoted i =
    fields := Quoted (Buffer.contents buf) :: !fields;
    Buffer.clear buf;
    if i < n then
      if line.[i] = ',' then start (i + 1)
      else invalid_arg "Csv: text after closing quote"
  and start i =
    if i >= n then fields := Bare "" :: !fields
    else if line.[i] = '"' then quoted (i + 1)
    else bare i
  in
  start 0;
  List.rev !fields

let field_value = function
  | Quoted s -> Value.Str s
  | Bare s -> Value.parse s

let field_name = function Quoted s | Bare s -> s

let parse_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> invalid_arg "Csv: empty input"
  | header :: rows ->
      let names = List.map field_name (split_line header) in
      let schema = Schema.of_list names in
      let width = List.length names in
      let tuples =
        List.map
          (fun row ->
            let fields = split_line row in
            if List.length fields <> width then
              invalid_arg "Csv: ragged row"
            else Tuple.of_list (List.map field_value fields))
          rows
      in
      Relation.of_list schema tuples

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string (In_channel.input_all ic))

let escape s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if needs_quote then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat "," (Schema.attributes (Relation.schema r)));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun v -> escape (Value.to_string v)) (Tuple.to_list t)));
      Buffer.add_char buf '\n')
    r;
  Buffer.contents buf

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string r))
