(** Minimal CSV import/export for relations.

    The CLI loads base tables from CSV files with a header row.  Values are
    parsed with {!Value.parse} (integers, rationals [n/d], floats, booleans,
    strings).  Quoting: double quotes with doubled-quote escapes; quoted
    fields are always treated as strings. *)

val parse_string : string -> Relation.t
(** @raise Invalid_argument on an empty input, ragged rows or duplicate
    header names. *)

val load : string -> Relation.t
(** Read a file. @raise Sys_error on I/O failure. *)

val to_string : Relation.t -> string
val save : string -> Relation.t -> unit
