type t =
  | Attr of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t

let attr a = Attr a
let const v = Const v
let int n = Const (Value.Int n)
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)

let rec eval schema tuple = function
  | Attr a -> Tuple.get tuple (Schema.index schema a)
  | Const v -> v
  | Add (x, y) -> Value.add (eval schema tuple x) (eval schema tuple y)
  | Sub (x, y) -> Value.sub (eval schema tuple x) (eval schema tuple y)
  | Mul (x, y) -> Value.mul (eval schema tuple x) (eval schema tuple y)
  | Div (x, y) -> Value.div (eval schema tuple x) (eval schema tuple y)
  | Neg x -> Value.neg (eval schema tuple x)

let attributes e =
  let rec go acc = function
    | Attr a -> if List.mem a acc then acc else a :: acc
    | Const _ -> acc
    | Add (x, y) | Sub (x, y) | Mul (x, y) | Div (x, y) -> go (go acc x) y
    | Neg x -> go acc x
  in
  List.rev (go [] e)

let check schema e =
  List.iter (fun a -> ignore (Schema.index schema a)) (attributes e)

let rec pp fmt = function
  | Attr a -> Format.pp_print_string fmt a
  | Const v -> Value.pp fmt v
  | Add (x, y) -> Format.fprintf fmt "(%a + %a)" pp x pp y
  | Sub (x, y) -> Format.fprintf fmt "(%a - %a)" pp x pp y
  | Mul (x, y) -> Format.fprintf fmt "(%a * %a)" pp x pp y
  | Div (x, y) -> Format.fprintf fmt "(%a / %a)" pp x pp y
  | Neg x -> Format.fprintf fmt "(-%a)" pp x

let equal = ( = )
