lib/relational/predicate.ml: Expr Format List Schema Value
