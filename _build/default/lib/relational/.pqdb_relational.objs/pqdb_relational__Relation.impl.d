lib/relational/relation.ml: Format List Schema Set Stdlib String Tuple Value
