lib/relational/value.mli: Format Pqdb_numeric Rational
