lib/relational/algebra.ml: Expr Format Hashtbl List Predicate Relation Schema Tuple Value
