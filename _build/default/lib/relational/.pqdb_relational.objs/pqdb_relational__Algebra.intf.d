lib/relational/algebra.mli: Expr Predicate Relation Tuple
