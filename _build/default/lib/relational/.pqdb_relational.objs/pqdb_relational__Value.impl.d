lib/relational/value.ml: Format Pqdb_numeric Rational Stdlib String
