lib/relational/tuple.ml: Array Format Hashtbl List Schema Stdlib Value
