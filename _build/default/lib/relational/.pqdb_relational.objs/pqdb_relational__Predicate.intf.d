lib/relational/predicate.mli: Expr Format Schema Tuple
