lib/relational/expr.ml: Format List Schema Tuple Value
