lib/relational/csv.ml: Buffer Fun In_channel List Relation Schema String Tuple Value
