(* Sign-magnitude arbitrary-precision integers over base-2^30 limbs.

   Representation invariants:
   - [mag] is little-endian, each limb in [0, 2^30), no trailing zero limb;
   - [sign] is -1, 0 or 1, and [sign = 0] iff [mag] is empty.

   Limb products fit OCaml's 63-bit native ints: 2^30 * 2^30 + carries < 2^62. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  let k = top n in
  if k = 0 then zero
  else if k = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 k }

let of_int n =
  if n = 0 then zero
  else begin
    (* Accumulate on the negative side: [abs min_int] overflows, but every
       native int has a representable negation-free path via [m <= 0]. *)
    let sign = if n < 0 then -1 else 1 in
    let rec limbs acc m =
      if m = 0 then acc else limbs (-(m mod base) :: acc) (m / base)
    in
    let m = if n < 0 then n else -n in
    let mag_list = List.rev (limbs [] m) in
    normalize sign (Array.of_list mag_list)
  end

let one = of_int 1
let minus_one = of_int (-1)
let is_zero x = x.sign = 0
let sign x = x.sign

(* Compare magnitudes only. *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0

let hash x =
  Array.fold_left (fun h limb -> (h * 31) + limb) (x.sign + 7) x.mag
  land max_int

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  r

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> normalize x.sign (sub_mag x.mag y.mag)
    | _ -> normalize y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else begin
    let la = Array.length x.mag and lb = Array.length y.mag in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = x.mag.(i) in
      for j = 0 to lb - 1 do
        let t = (ai * y.mag.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land base_mask;
        carry := t lsr base_bits
      done;
      (* Propagate the final carry, which may itself exceed one limb. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land base_mask;
        carry := t lsr base_bits;
        incr k
      done
    done;
    normalize (x.sign * y.sign) r
  end

let num_bits x =
  let n = Array.length x.mag in
  if n = 0 then 0
  else begin
    let top = x.mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0
  end

let bit_at mag i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length mag then 0 else (mag.(limb) lsr off) land 1

(* Binary long division on magnitudes: O(bits(a) * limbs(b)).  Numbers in
   this codebase stay small (probability numerators of a few hundred bits),
   so the simple algorithm is the right trade-off against Knuth D. *)
let divmod_mag a b =
  let nb = num_bits { sign = 1; mag = a } in
  let q = Array.make (Array.length a) 0 in
  (* Remainder as a mutable little-endian buffer with explicit length. *)
  let r = Array.make (Array.length b + 1) 0 in
  let shift_in_bit bit =
    (* r := r*2 + bit *)
    let carry = ref bit in
    for i = 0 to Array.length r - 1 do
      let t = (r.(i) lsl 1) lor !carry in
      r.(i) <- t land base_mask;
      carry := t lsr base_bits
    done;
    assert (!carry = 0)
  in
  let r_ge_b () =
    let lb = Array.length b in
    let rec go i =
      if i < 0 then true
      else begin
        let ri = if i < Array.length r then r.(i) else 0 in
        let bi = if i < lb then b.(i) else 0 in
        if ri <> bi then ri > bi else go (i - 1)
      end
    in
    go (Array.length r - 1)
  in
  let r_sub_b () =
    let borrow = ref 0 in
    for i = 0 to Array.length r - 1 do
      let bi = if i < Array.length b then b.(i) else 0 in
      let d = r.(i) - bi - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    assert (!borrow = 0)
  in
  for i = nb - 1 downto 0 do
    shift_in_bit (bit_at a i);
    if r_ge_b () then begin
      r_sub_b ();
      q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    end
  done;
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let q, r = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) q in
    let r = normalize a.sign r in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let shift_left x n =
  if n < 0 then invalid_arg "Bigint.shift_left"
  else if n = 0 || is_zero x then x
  else begin
    let limbs = n / base_bits and off = n mod base_bits in
    let la = Array.length x.mag in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let t = x.mag.(i) lsl off in
      r.(i + limbs) <- r.(i + limbs) lor (t land base_mask);
      r.(i + limbs + 1) <- t lsr base_bits
    done;
    normalize x.sign r
  end

let shift_right x n =
  if n < 0 then invalid_arg "Bigint.shift_right"
  else if n = 0 || is_zero x then x
  else begin
    let limbs = n / base_bits and off = n mod base_bits in
    let la = Array.length x.mag in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = x.mag.(i + limbs) lsr off in
        let hi =
          if off = 0 || i + limbs + 1 >= la then 0
          else (x.mag.(i + limbs + 1) lsl (base_bits - off)) land base_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize x.sign r
    end
  end

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow"
  else begin
    let rec go acc b n =
      if n = 0 then acc
      else begin
        let acc = if n land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (n lsr 1)
      end
    in
    go one x n
  end

let to_int_opt x =
  if num_bits x <= 62 then begin
    let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) x.mag 0 in
    Some (if x.sign < 0 then -v else v)
  end
  else None

let to_float x =
  let m =
    Array.fold_right
      (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb)
      x.mag 0.
  in
  if x.sign < 0 then -.m else m

(* Decimal conversion via repeated division by 10^9 (fits one limb pair). *)
let chunk = 1_000_000_000

let to_string x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 32 in
    let chunks = ref [] in
    let cur = ref (abs x) in
    let big_chunk = of_int chunk in
    while not (is_zero !cur) do
      let q, r = divmod !cur big_chunk in
      let r = match to_int_opt r with Some v -> v | None -> assert false in
      chunks := r :: !chunks;
      cur := q
    done;
    if x.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> assert false
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let neg_sign, start =
    match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if neg_sign then neg !acc else !acc

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
