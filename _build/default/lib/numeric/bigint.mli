(** Arbitrary-precision signed integers.

    Implemented from scratch (the sealed build environment has no [zarith])
    as sign-magnitude numbers over base-2{^30} limbs.  The probabilistic
    database needs exact integer arithmetic to represent world probabilities
    such as 1/6 without rounding; see {!Rational}.

    All operations are purely functional. *)

type t

(** {1 Constructors} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
(** [of_int n] is the big integer with value [n].  Total for every native
    [int], including [min_int]. *)

val of_string : string -> t
(** [of_string s] parses an optionally signed decimal numeral.
    @raise Invalid_argument on the empty string or non-digit characters. *)

(** {1 Observers} *)

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits a native [int]. *)

val to_float : t -> float
(** Nearest-float conversion; loses precision beyond 53 bits as usual. *)

val to_string : t -> string
(** Decimal rendering, e.g. ["-1234567890123456789"]. *)

val pp : Format.formatter -> t -> unit

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and [r]
    carrying the sign of [a] (truncated division, like OCaml's [/] and
    [mod]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor of the absolute values; [gcd zero zero = zero]. *)

val shift_left : t -> int -> t
(** [shift_left x n] is [x * 2^n]; [n >= 0]. *)

val shift_right : t -> int -> t
(** [shift_right x n] is [x / 2^n] truncated toward zero; [n >= 0]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0].
    @raise Invalid_argument on negative exponents. *)

val num_bits : t -> int
(** Number of significant bits of the magnitude; [num_bits zero = 0]. *)

(** {1 Infix aliases} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
