(** Closed float intervals and the relative-error orthotopes of Section 5.

    Lemma 5.1 bounds the error of a predicate decision by the probability mass
    outside the axis-parallel orthotope
    [(p̂₁/(1+ε), p̂₁/(1−ε)) × … × (p̂ₖ/(1+ε), p̂ₖ/(1−ε))]; this module provides
    the interval arithmetic used to build, test and enumerate the corners of
    such orthotopes. *)

type t = { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]; @raise Invalid_argument if [lo > hi] or either is NaN. *)

val point : float -> t
val mem : float -> t -> bool
val width : t -> float
val center : t -> float
val intersects : t -> t -> bool
val contains : t -> t -> bool
(** [contains outer inner]. *)

val pp : Format.formatter -> t -> unit

val relative : eps:float -> float -> t
(** [relative ~eps p_hat] is the Lemma 5.1 interval
    [\[p̂/(1+ε), p̂/(1−ε)\]] (for [p_hat >= 0] and [0 <= eps < 1]).
    For negative [p_hat] the endpoints are swapped so the result is a valid
    interval. *)

val absolute_relative : eps:float -> float -> t
(** [absolute_relative ~eps p] is [\[p·(1−ε), p·(1+ε)\]] — the Definition 5.6
    singularity neighbourhood [{x : |p − x| <= ε·p}] around the {e true}
    value. *)

(** {1 Orthotopes} *)

type orthotope = t array

val orthotope_relative : eps:float -> float array -> orthotope
val orthotope_absolute : eps:float -> float array -> orthotope

val corners : orthotope -> float array Seq.t
(** All 2{^k} corner points, lazily. *)

val corner_count : orthotope -> int
val mem_point : float array -> orthotope -> bool
val sample : (float -> float -> float) -> orthotope -> float array
(** [sample draw o] picks a point via [draw lo hi] per axis (used by
    property tests with a RNG-backed [draw]). *)
