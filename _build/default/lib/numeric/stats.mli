(** Descriptive statistics and the Chernoff-bound bookkeeping used throughout
    Sections 4–6 of the paper.

    The naming follows the paper: an [(ε, δ)] scheme guarantees
    [Pr(|p̂ − p| >= ε·p) <= δ]; for the Karp-Luby estimator run for [m] trials
    over a DNF of [s] clauses, [δ(ε) = 2·exp(−m·ε²/(3s))]. *)

(** {1 Descriptive statistics} *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n−1 denominator); 0 for arrays shorter than 2. *)

val stddev : float array -> float
val median : float array -> float
(** Does not mutate its argument. *)

val quantile : float array -> float -> float
(** [quantile xs q] with [0 <= q <= 1], linear interpolation. *)

val min_max : float array -> float * float

(** {1 Chernoff / Karp-Luby bounds} *)

val karp_luby_delta : trials:int -> clauses:int -> eps:float -> float
(** [δ(ε) = 2·exp(−m·ε²/(3·|F|))] — the error-probability bound after
    [trials] estimator calls on a DNF with [clauses] disjuncts (Section 4). *)

val karp_luby_trials : clauses:int -> eps:float -> delta:float -> int
(** [m = ⌈3·|F|·ln(2/δ)/ε²⌉] — trials for an (ε,δ) guarantee (Section 4). *)

val delta' : eps:float -> rounds:int -> float
(** [δ′(ε, l) = 2·exp(−l·ε²/3)] — the balanced per-value bound used by the
    Figure-3 algorithm, where [l] counts outer-loop rounds (each round runs
    [|F_i|] estimator calls per value). *)

val rounds_for : eps:float -> delta:float -> int
(** Least [l] with [δ′(ε, l) <= delta]: [l = ⌈3·ln(2/δ)/ε²⌉]. *)

val theorem_6_7_rounds :
  eps0:float -> delta:float -> k:int -> d:int -> n:int -> int
(** [l₀ >= 3·ln(2·k·d·n^(k·d)/δ)/ε₀²] — the round budget that makes the whole
    query approximation of Theorem 6.7 sound, given maximum arity/selection
    width [k], σ̂ nesting depth [d] and active-domain size [n]. *)

val independent_or_bound : float list -> float
(** [1 − Π(1 − δᵢ)] — the tighter union bound of Lemma 5.1's remark for
    independent approximations (e.g. separate Karp-Luby runs); always at most
    [Σ δᵢ].  Inputs are clamped to [0, 1]. *)

(** {1 Error-rate measurement helpers} *)

type error_tally = { mutable trials : int; mutable errors : int }

val tally : unit -> error_tally
val record : error_tally -> bool -> unit
(** [record t ok] counts a trial, and an error when [ok] is false. *)

val error_rate : error_tally -> float
