lib/numeric/rational.ml: Bigint Float Format Int64 List Stdlib String
