lib/numeric/rng.mli:
