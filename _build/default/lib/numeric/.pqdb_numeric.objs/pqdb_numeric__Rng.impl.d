lib/numeric/rng.ml: Array Random
