lib/numeric/interval.mli: Format Seq
