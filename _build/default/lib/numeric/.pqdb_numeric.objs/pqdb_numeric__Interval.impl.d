lib/numeric/interval.ml: Array Float Format Seq
