lib/numeric/stats.mli:
