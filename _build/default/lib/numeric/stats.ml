let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if q <= 0. then sorted.(0)
  else if q >= 1. then sorted.(n - 1)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    let frac = pos -. float_of_int i in
    if i + 1 >= n then sorted.(n - 1)
    else (sorted.(i) *. (1. -. frac)) +. (sorted.(i + 1) *. frac)
  end

let median xs = quantile xs 0.5

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let karp_luby_delta ~trials ~clauses ~eps =
  2. *. exp (-.(float_of_int trials *. eps *. eps) /. (3. *. float_of_int clauses))

let karp_luby_trials ~clauses ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Stats.karp_luby_trials";
  int_of_float
    (Float.ceil (3. *. float_of_int clauses *. log (2. /. delta) /. (eps *. eps)))

let delta' ~eps ~rounds =
  2. *. exp (-.(float_of_int rounds *. eps *. eps) /. 3.)

let rounds_for ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Stats.rounds_for";
  max 1 (int_of_float (Float.ceil (3. *. log (2. /. delta) /. (eps *. eps))))

let theorem_6_7_rounds ~eps0 ~delta ~k ~d ~n =
  if eps0 <= 0. || delta <= 0. then invalid_arg "Stats.theorem_6_7_rounds";
  let kf = float_of_int k and df = float_of_int d and nf = float_of_int n in
  (* ln(2·k·d·n^(k·d)/δ) computed in log space to avoid overflow. *)
  let log_bound = log 2. +. log kf +. log df +. (kf *. df *. log nf) -. log delta in
  max 1 (int_of_float (Float.ceil (3. *. log_bound /. (eps0 *. eps0))))

let independent_or_bound deltas =
  1.
  -. List.fold_left
       (fun acc d -> acc *. (1. -. Float.max 0. (Float.min 1. d)))
       1. deltas

type error_tally = { mutable trials : int; mutable errors : int }

let tally () = { trials = 0; errors = 0 }

let record t ok =
  t.trials <- t.trials + 1;
  if not ok then t.errors <- t.errors + 1

let error_rate t =
  if t.trials = 0 then 0. else float_of_int t.errors /. float_of_int t.trials
