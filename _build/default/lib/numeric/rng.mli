(** Seeded random number generation for reproducible Monte-Carlo runs.

    A thin layer over [Random.State] adding the discrete distributions the
    Karp-Luby estimator needs: weighted choice over a cumulative table, and
    Bernoulli draws.  Every experiment in the bench harness threads an
    explicit [Rng.t] so that runs are reproducible bit-for-bit. *)

type t

val create : seed:int -> t
val split : t -> t
(** A fresh generator deterministically derived from (and advancing) the
    parent — used to give independent streams to independent estimators. *)

val copy : t -> t
val int : t -> int -> int
(** Uniform on [\[0, bound)]. *)

val float : t -> float -> float
(** Uniform on [\[0, bound)]. *)

val float_range : t -> float -> float -> float
(** Uniform on [\[lo, hi\]]. *)

val bool : t -> bool
val bernoulli : t -> float -> bool
(** [bernoulli rng p] is true with probability [p] (clamped to [0,1]). *)

(** {1 Weighted discrete choice} *)

module Discrete : sig
  type dist
  (** A discrete distribution over indices [0..n-1] prepared for O(log n)
      sampling via a cumulative-sum table. *)

  val of_weights : float array -> dist
  (** @raise Invalid_argument if weights are negative or all zero. *)

  val total : dist -> float
  val sample : t -> dist -> int
  val size : dist -> int
end
