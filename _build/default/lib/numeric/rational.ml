(* Rationals in lowest terms with positive denominator. *)

type t = { n : Bigint.t; d : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero
  else if Bigint.is_zero num then { n = Bigint.zero; d = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    { n = Bigint.div num g; d = Bigint.div den g }
  end

let zero = { n = Bigint.zero; d = Bigint.one }
let one = { n = Bigint.one; d = Bigint.one }
let half = make Bigint.one (Bigint.of_int 2)
let of_int n = { n = Bigint.of_int n; d = Bigint.one }
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)
let num x = x.n
let den x = x.d
let sign x = Bigint.sign x.n
let is_zero x = Bigint.is_zero x.n
let neg x = { x with n = Bigint.neg x.n }
let abs x = { x with n = Bigint.abs x.n }

let inv x =
  if is_zero x then raise Division_by_zero
  else if Bigint.sign x.n < 0 then { n = Bigint.neg x.d; d = Bigint.neg x.n }
  else { n = x.d; d = x.n }

let add a b =
  make
    (Bigint.add (Bigint.mul a.n b.d) (Bigint.mul b.n a.d))
    (Bigint.mul a.d b.d)

let sub a b =
  make
    (Bigint.sub (Bigint.mul a.n b.d) (Bigint.mul b.n a.d))
    (Bigint.mul a.d b.d)

let mul a b = make (Bigint.mul a.n b.n) (Bigint.mul a.d b.d)
let div a b = mul a (inv b)

let pow x k =
  if k >= 0 then { n = Bigint.pow x.n k; d = Bigint.pow x.d k }
  else begin
    let y = inv x in
    { n = Bigint.pow y.n (-k); d = Bigint.pow y.d (-k) }
  end

let compare a b =
  Bigint.compare (Bigint.mul a.n b.d) (Bigint.mul b.n a.d)

let equal a b = Bigint.equal a.n b.n && Bigint.equal a.d b.d
let hash x = (Bigint.hash x.n * 31) + Bigint.hash x.d
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sum = List.fold_left add zero
let product = List.fold_left mul one

let to_float x =
  (* For large operands, divide at bigint level first to preserve the
     leading 53 bits; small operands convert exactly. *)
  if Bigint.num_bits x.n <= 52 && Bigint.num_bits x.d <= 52 then
    Bigint.to_float x.n /. Bigint.to_float x.d
  else begin
    let shift = Stdlib.max 0 (64 + Bigint.num_bits x.d - Bigint.num_bits x.n) in
    let scaled = Bigint.div (Bigint.shift_left x.n shift) x.d in
    Bigint.to_float scaled /. (2. ** float_of_int shift)
  end

let to_string x =
  if Bigint.equal x.d Bigint.one then Bigint.to_string x.n
  else Bigint.to_string x.n ^ "/" ^ Bigint.to_string x.d

let pp fmt x = Format.pp_print_string fmt (to_string x)

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float: not finite"
  else if f = 0. then zero
  else begin
    let m, e = Float.frexp f in
    (* f = m * 2^e with 0.5 <= |m| < 1; scale mantissa to an integer. *)
    let mi = Int64.to_int (Int64.of_float (m *. 9007199254740992.)) in
    (* 2^53 *)
    let e = e - 53 in
    let n = Bigint.of_int mi in
    if e >= 0 then make (Bigint.shift_left n e) Bigint.one
    else make n (Bigint.shift_left Bigint.one (-e))
  end

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let n = Bigint.of_string (String.sub s 0 i) in
      let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make n d
  | None -> begin
      match String.index_opt s '.' with
      | None -> { n = Bigint.of_string s; d = Bigint.one }
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          let digits = String.length frac in
          let whole =
            Bigint.of_string
              (if int_part = "" || int_part = "-" || int_part = "+" then
                 int_part ^ "0"
               else int_part)
          in
          let negative = String.length s > 0 && s.[0] = '-' in
          let scale = Bigint.pow (Bigint.of_int 10) digits in
          let frac_num =
            if digits = 0 then Bigint.zero else Bigint.of_string frac
          in
          let mag =
            Bigint.add (Bigint.mul (Bigint.abs whole) scale) frac_num
          in
          make (if negative then Bigint.neg mag else mag) scale
    end

let is_proper_probability x = sign x >= 0 && compare x one <= 0
let complement x = sub one x
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
