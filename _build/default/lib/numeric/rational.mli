(** Exact rational arithmetic over {!Bigint}.

    Probabilities of possible worlds are products and sums of tuple weights
    such as 2/3 and 1/4; representing them exactly lets the test suite and the
    benchmark harness measure Monte-Carlo approximation error against a true
    value rather than against another float. *)

type t

(** {1 Constructors} *)

val zero : t
val one : t
val half : t

val of_int : int -> t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is [num/den] in lowest terms with positive denominator.
    @raise Division_by_zero when [den] is zero. *)

val of_ints : int -> int -> t
(** [of_ints n d] = [make (of_int n) (of_int d)]. *)

val of_string : string -> t
(** Parses ["n"], ["n/d"] or a decimal literal ["1.25"], ["-0.5"]. *)

val of_float : float -> t
(** Exact conversion of a finite float (binary expansion).
    @raise Invalid_argument on NaN or infinities. *)

(** {1 Observers} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val to_float : t -> float
val to_string : t -> string
(** Lowest-terms rendering ["num/den"], or just ["num"] for integers. *)

val pp : Format.formatter -> t -> unit
val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when the divisor is zero. *)

val pow : t -> int -> t
(** [pow x n]; negative [n] inverts ([x] must be nonzero then). *)

val min : t -> t -> t
val max : t -> t -> t

val sum : t list -> t
val product : t list -> t

(** {1 Probability helpers} *)

val is_proper_probability : t -> bool
(** [0 <= x <= 1]. *)

val complement : t -> t
(** [1 - x]. *)

(** {1 Infix aliases} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
