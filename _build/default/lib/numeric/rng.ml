type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66d |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
let copy = Random.State.copy
let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound
let float_range t lo hi = lo +. Random.State.float t (hi -. lo)
let bool t = Random.State.bool t

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float t 1. < p

module Discrete = struct
  type dist = { cumulative : float array; total : float }

  let of_weights weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Rng.Discrete.of_weights: empty";
    let cumulative = Array.make n 0. in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      if weights.(i) < 0. then
        invalid_arg "Rng.Discrete.of_weights: negative weight";
      acc := !acc +. weights.(i);
      cumulative.(i) <- !acc
    done;
    if !acc <= 0. then invalid_arg "Rng.Discrete.of_weights: zero total";
    { cumulative; total = !acc }

  let total d = d.total
  let size d = Array.length d.cumulative

  let sample t d =
    let x = Random.State.float t d.total in
    (* Smallest index with cumulative.(i) > x. *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if d.cumulative.(mid) > x then search lo mid else search (mid + 1) hi
      end
    in
    search 0 (Array.length d.cumulative - 1)
end
