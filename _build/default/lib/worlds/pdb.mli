(** Probabilistic databases as explicit weighted sets of possible worlds
    (the nonsuccinct representation of Section 2 / Proposition 3.5).

    A database is a finite set of structures
    [{⟨R₁¹, …, Rₖ¹, p⁽¹⁾⟩, …, ⟨R₁ⁿ, …, Rₖⁿ, p⁽ⁿ⁾⟩}] with positive
    probabilities summing to 1, where relations marked {e complete} agree in
    every world.  Exponential-size in general — this module is the ground
    truth against which the succinct U-relational path is tested. *)

open Pqdb_numeric
open Pqdb_relational

type world = (string * Relation.t) list
(** One possible world: relation name → relation, sorted by name. *)

type t

val of_complete : (string * Relation.t) list -> t
(** Single world with probability 1; every relation complete by definition. *)

val of_worlds :
  complete:string list -> (world * Rational.t) list -> t
(** General constructor.
    @raise Invalid_argument when probabilities are non-positive or do not sum
    to 1, when worlds disagree on relation names or schemas, or when a
    relation marked complete differs between worlds. *)

val worlds : t -> (world * Rational.t) list
val complete_names : t -> string list
val relation_names : t -> string list
val world_count : t -> int
val is_complete : t -> string -> bool

val find : world -> string -> Relation.t
(** @raise Not_found on an unknown relation name. *)

val tensor : t -> t -> t
(** [⊗] of Equation (1): the product distribution over the disjoint union of
    the two databases' relations.
    @raise Invalid_argument on relation-name clashes. *)

val normalize : t -> t
(** Merge identical worlds, summing probabilities. *)

(** {1 Weighted query results}

    Evaluating a query against a pdb yields one relation per world; [prel]
    is that weighted set of possible relations, normalized (deduplicated,
    sorted) so results are comparable across evaluators. *)

type prel = (Relation.t * Rational.t) list

val normalize_prel : prel -> prel
val equal_prel : prel -> prel -> bool
val pp_prel : Format.formatter -> prel -> unit

val confidence : prel -> (Tuple.t * Rational.t) list
(** Marginal probability of each possible tuple:
    [Pr(t ∈ R) = Σ_{i : t ∈ Rⁱ} p⁽ⁱ⁾]. *)

val confidence_of : prel -> Tuple.t -> Rational.t
(** Zero for tuples in no world. *)

(** {1 Key repair} *)

val repair_key :
  key:string list -> weight:string -> Relation.t -> prel
(** [repair-key_{Ā@B}(R)] (Section 2): all subset-maximal relations
    satisfying the key [Ā], i.e. one tuple chosen per [Ā]-group, with
    probability proportional to the weight column [B] within each group.
    @raise Invalid_argument when a weight is not a positive number. *)
