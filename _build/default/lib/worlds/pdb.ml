open Pqdb_numeric
open Pqdb_relational

type world = (string * Relation.t) list

type t = {
  complete : string list;
  worlds : (world * Rational.t) list;
}

let sort_world w = List.sort (fun (a, _) (b, _) -> String.compare a b) w

let of_complete rels =
  let w = sort_world rels in
  { complete = List.map fst w; worlds = [ (w, Rational.one) ] }

let validate complete worlds =
  (match worlds with
  | [] -> invalid_arg "Pdb: no possible worlds"
  | _ -> ());
  let total =
    List.fold_left
      (fun acc (_, p) ->
        if Rational.sign p <= 0 then
          invalid_arg "Pdb: world probability must be positive"
        else Rational.add acc p)
      Rational.zero worlds
  in
  if not (Rational.equal total Rational.one) then
    invalid_arg "Pdb: world probabilities must sum to 1";
  let first = fst (List.hd worlds) in
  let names = List.map fst first in
  List.iter
    (fun (w, _) ->
      if List.map fst w <> names then
        invalid_arg "Pdb: worlds disagree on relation names";
      List.iter2
        (fun (_, r0) (_, r) ->
          if not (Schema.equal (Relation.schema r0) (Relation.schema r)) then
            invalid_arg "Pdb: worlds disagree on a relation schema")
        first w)
    worlds;
  List.iter
    (fun c ->
      if not (List.mem c names) then
        invalid_arg ("Pdb: unknown complete relation " ^ c);
      let r0 = List.assoc c first in
      List.iter
        (fun (w, _) ->
          if not (Relation.equal (List.assoc c w) r0) then
            invalid_arg ("Pdb: complete relation " ^ c ^ " differs across worlds"))
        worlds)
    complete

let of_worlds ~complete worlds =
  let worlds = List.map (fun (w, p) -> (sort_world w, p)) worlds in
  validate complete worlds;
  { complete = List.sort String.compare complete; worlds }

let worlds t = t.worlds
let complete_names t = t.complete
let relation_names t = List.map fst (fst (List.hd t.worlds))
let world_count t = List.length t.worlds
let is_complete t name = List.mem name t.complete
let find w name = match List.assoc_opt name w with
  | Some r -> r
  | None -> raise Not_found

let tensor a b =
  let names_a = relation_names a and names_b = relation_names b in
  List.iter
    (fun n ->
      if List.mem n names_a then
        invalid_arg ("Pdb.tensor: relation name clash on " ^ n))
    names_b;
  let worlds =
    List.concat_map
      (fun (wa, pa) ->
        List.map
          (fun (wb, pb) -> (sort_world (wa @ wb), Rational.mul pa pb))
          b.worlds)
      a.worlds
  in
  { complete = List.sort String.compare (a.complete @ b.complete); worlds }

let compare_world (a : world) (b : world) =
  let c = Stdlib.compare (List.map fst a) (List.map fst b) in
  if c <> 0 then c
  else
    List.fold_left2
      (fun acc (_, ra) (_, rb) ->
        if acc <> 0 then acc else Relation.compare ra rb)
      0 a b

let normalize t =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare_world a b) t.worlds
  in
  let rec merge = function
    | [] -> []
    | (w, p) :: rest -> begin
        match merge rest with
        | (w', p') :: tail when compare_world w w' = 0 ->
            (w, Rational.add p p') :: tail
        | tail -> (w, p) :: tail
      end
  in
  { t with worlds = merge sorted }

type prel = (Relation.t * Rational.t) list

let normalize_prel prel =
  let sorted = List.sort (fun (a, _) (b, _) -> Relation.compare a b) prel in
  let rec merge = function
    | [] -> []
    | (r, p) :: (r', p') :: rest when Relation.compare r r' = 0 ->
        merge ((r, Rational.add p p') :: rest)
    | x :: rest -> x :: merge rest
  in
  List.filter (fun (_, p) -> Rational.sign p > 0) (merge sorted)

let equal_prel a b =
  let a = normalize_prel a and b = normalize_prel b in
  List.length a = List.length b
  && List.for_all2
       (fun (ra, pa) (rb, pb) ->
         Relation.compare ra rb = 0 && Rational.equal pa pb)
       a b

let pp_prel fmt prel =
  Format.pp_open_vbox fmt 0;
  List.iteri
    (fun i (r, p) ->
      Format.fprintf fmt "world %d (Pr = %a):@,%a@," i Rational.pp p
        Relation.pp r)
    (normalize_prel prel);
  Format.pp_close_box fmt ()

let confidence prel =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (r, p) ->
      Relation.iter
        (fun t ->
          let key = Format.asprintf "%a" Tuple.pp t in
          match Hashtbl.find_opt table key with
          | Some (t0, acc) -> Hashtbl.replace table key (t0, Rational.add acc p)
          | None ->
              order := key :: !order;
              Hashtbl.add table key (t, p))
        r)
    prel;
  List.rev_map (fun key -> Hashtbl.find table key) !order

let confidence_of prel tuple =
  List.fold_left
    (fun acc (r, p) -> if Relation.mem r tuple then Rational.add acc p else acc)
    Rational.zero prel

let weight_of value =
  match Value.to_rational_opt value with
  | Some r when Rational.sign r > 0 -> r
  | Some _ -> invalid_arg "repair-key: weight must be positive"
  | None -> begin
      match value with
      | Value.Float f when f > 0. -> Rational.of_float f
      | _ -> invalid_arg "repair-key: weight must be a positive number"
    end

let repair_key ~key ~weight rel =
  let schema = Relation.schema rel in
  let weight_idx = Schema.index schema weight in
  let groups = Algebra.group_by key rel in
  let group_choices =
    List.map
      (fun (_, group) ->
        let tuples = Relation.tuples group in
        let total =
          Rational.sum (List.map (fun t -> weight_of (Tuple.get t weight_idx)) tuples)
        in
        List.map
          (fun t ->
            (t, Rational.div (weight_of (Tuple.get t weight_idx)) total))
          tuples)
      groups
  in
  (* Cartesian product: one choice per group. *)
  let empty = Relation.empty schema in
  let init = [ (empty, Rational.one) ] in
  let repairs =
    List.fold_left
      (fun acc choices ->
        List.concat_map
          (fun (r, p) ->
            List.map
              (fun (t, pt) -> (Relation.add r t, Rational.mul p pt))
              choices)
          acc)
      init group_choices
  in
  normalize_prel repairs
