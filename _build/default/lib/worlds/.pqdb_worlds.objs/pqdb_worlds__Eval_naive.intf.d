lib/worlds/eval_naive.mli: Pdb Pqdb_ast Pqdb_numeric Pqdb_relational Rational Relation Tuple
