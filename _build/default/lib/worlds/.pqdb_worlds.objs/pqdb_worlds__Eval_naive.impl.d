lib/worlds/eval_naive.ml: Algebra Expr Format Hashtbl List Pdb Pqdb_ast Pqdb_numeric Pqdb_relational Predicate Rational Relation Schema Tuple Value
