lib/worlds/pdb.ml: Algebra Format Hashtbl List Pqdb_numeric Pqdb_relational Rational Relation Schema Stdlib String Tuple Value
