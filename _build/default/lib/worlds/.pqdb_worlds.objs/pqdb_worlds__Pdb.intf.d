lib/worlds/pdb.mli: Format Pqdb_numeric Pqdb_relational Rational Relation Tuple
