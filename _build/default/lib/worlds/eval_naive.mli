(** Exact UA evaluation over explicit possible worlds — the ground truth.

    Implements the semantics of Definition 2.1 directly: relational operators
    per world, [conf] as an aggregation across the whole weighted world set,
    [repair-key] as world-set expansion by tensoring (⊗) with the repairs of a
    complete relation.  Approximate operators are interpreted by their exact
    counterparts ([conf_{ε,δ}] as [conf]; σ̂ via its defining composite,
    {!Pqdb_ast.Ua.desugar_sigma_hat}).

    Everything here is exponential in the number of uncertainty sources —
    by design (Theorem 3.4 tells us exact evaluation cannot be better in
    general).  Use it on small inputs to validate the scalable paths. *)

open Pqdb_numeric
open Pqdb_relational

exception Not_complete of string
(** Raised when [repair-key] is applied to a relation that is not complete
    (differs across worlds), which Definition 2.1 forbids. *)

val eval : Pdb.t -> Pqdb_ast.Ua.t -> Pdb.prel
(** Weighted set of possible result relations, normalized. *)

val eval_confidence :
  Pdb.t -> Pqdb_ast.Ua.t -> (Tuple.t * Rational.t) list
(** Marginal tuple confidences of the result — [conf] applied on top. *)

val eval_certain : Pdb.t -> Pqdb_ast.Ua.t -> Relation.t
(** The result when it is the same in all worlds.
    @raise Not_complete otherwise. *)
