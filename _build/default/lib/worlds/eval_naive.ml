open Pqdb_numeric
open Pqdb_relational
module Ua = Pqdb_ast.Ua

exception Not_complete of string

(* Annotated query tree.  repair-key nodes are replaced by references into a
   registry of repair distributions (computed bottom-up at annotation time,
   which is sound because repair-key arguments must be complete), and conf
   nodes carry the list of repair ids occurring beneath them — the enumeration
   scope that their aggregation must close over. *)
type aq =
  | ATable of string
  | ALit of Relation.t
  | ASelect of Predicate.t * aq
  | AProject of (Expr.t * string) list * aq
  | ARename of (string * string) list * aq
  | AProduct of aq * aq
  | AJoin of aq * aq
  | AUnion of aq * aq
  | ADiff of aq * aq
  | AConf of conf_node
  | ARepair of int

and conf_node = {
  scope : int list;
  body : aq;
  mode : [ `Conf | `Poss | `Cert ];
  mutable cache : Relation.t option;
}

type repair_dist = (Relation.t * Rational.t) list
(* Per repair id: the weighted list of repaired relations. *)

type env = {
  pdb : Pdb.t;
  repairs : (int, repair_dist) Hashtbl.t;
  annotations : (string, aq * int list) Hashtbl.t;
      (* structurally identical subexpressions denote the same relation, so
         they share one annotation (and hence one set of repair variables) *)
  mutable next_repair : int;
}

let merge_scopes a b = List.sort_uniq compare (a @ b)

(* All combinations of repair choices for the given scope, as a lookup
   function (repair id -> chosen relation) paired with the combination's
   probability. *)
let rec combinations env = function
  | [] -> [ ((fun _ -> raise Not_found), Rational.one) ]
  | id :: rest ->
      let dist =
        match Hashtbl.find_opt env.repairs id with
        | Some d -> d
        | None -> assert false
      in
      let tails = combinations env rest in
      List.concat_map
        (fun (rel, p) ->
          List.map
            (fun (lookup, q) ->
              let lookup' i = if i = id then rel else lookup i in
              (lookup', Rational.mul p q))
            tails)
        dist

let rec eval_in_world env world lookup = function
  | ATable name -> Pdb.find world name
  | ALit r -> r
  | ASelect (p, q) -> Algebra.select p (eval_in_world env world lookup q)
  | AProject (cols, q) -> Algebra.project cols (eval_in_world env world lookup q)
  | ARename (m, q) -> Algebra.rename m (eval_in_world env world lookup q)
  | AProduct (a, b) ->
      Algebra.product (eval_in_world env world lookup a)
        (eval_in_world env world lookup b)
  | AJoin (a, b) ->
      Algebra.join (eval_in_world env world lookup a)
        (eval_in_world env world lookup b)
  | AUnion (a, b) ->
      Algebra.union (eval_in_world env world lookup a)
        (eval_in_world env world lookup b)
  | ADiff (a, b) ->
      Algebra.diff (eval_in_world env world lookup a)
        (eval_in_world env world lookup b)
  | ARepair id -> lookup id
  | AConf node -> conf_value env node

(* conf/poss/cert close the possible-worlds semantics: aggregate over all
   base worlds x all repair choices in the node's scope.  The value is
   world-independent, hence cached. *)
and conf_value env node =
  match node.cache with
  | Some r -> r
  | None ->
      let results =
        List.concat_map
          (fun (world, p) ->
            List.map
              (fun (lookup, q) ->
                (eval_in_world env world lookup node.body, Rational.mul p q))
              (combinations env node.scope))
          (Pdb.worlds env.pdb)
      in
      let prel = Pdb.normalize_prel results in
      let confs = Pdb.confidence prel in
      let body_schema =
        match results with
        | (r, _) :: _ -> Relation.schema r
        | [] -> assert false
      in
      let value =
        match node.mode with
        | `Conf ->
            let out_schema =
              Schema.of_list (Schema.attributes body_schema @ [ "P" ])
            in
            Relation.of_list out_schema
              (List.map
                 (fun (t, p) -> Tuple.concat t (Tuple.of_list [ Value.Rat p ]))
                 confs)
        | `Poss -> Relation.of_list body_schema (List.map fst confs)
        | `Cert ->
            Relation.of_list body_schema
              (List.filter_map
                 (fun (t, p) ->
                   if Rational.equal p Rational.one then Some t else None)
                 confs)
      in
      node.cache <- Some value;
      value

(* Evaluate a scope-free subquery that must be complete: same value in every
   base world. *)
let eval_complete env what aq =
  let values =
    List.map
      (fun (world, _) ->
        eval_in_world env world (fun _ -> raise Not_found) aq)
      (Pdb.worlds env.pdb)
  in
  match values with
  | [] -> assert false
  | first :: rest ->
      if List.for_all (Relation.equal first) rest then first
      else raise (Not_complete what)

let register_repair env ~key ~weight rel =
  let id = env.next_repair in
  env.next_repair <- id + 1;
  Hashtbl.replace env.repairs id (Pdb.repair_key ~key ~weight rel);
  id

(* Bottom-up annotation; returns the annotated tree and the repair ids in the
   subtree that are still "open" (not closed by a conf above them). *)
let rec annotate env (q : Ua.t) : aq * int list =
  let key = Format.asprintf "%a" Ua.pp q in
  match Hashtbl.find_opt env.annotations key with
  | Some result -> result
  | None ->
      let result = annotate_raw env q in
      Hashtbl.replace env.annotations key result;
      result

and annotate_raw env (q : Ua.t) : aq * int list =
  match q with
  | Ua.Table n -> (ATable n, [])
  | Ua.Lit r -> (ALit r, [])
  | Ua.Select (p, q) ->
      let aq, scope = annotate env q in
      (ASelect (p, aq), scope)
  | Ua.Project (cols, q) ->
      let aq, scope = annotate env q in
      (AProject (cols, aq), scope)
  | Ua.Rename (m, q) ->
      let aq, scope = annotate env q in
      (ARename (m, aq), scope)
  | Ua.Product (a, b) ->
      let aa, sa = annotate env a and ab, sb = annotate env b in
      (AProduct (aa, ab), merge_scopes sa sb)
  | Ua.Join (a, b) ->
      let aa, sa = annotate env a and ab, sb = annotate env b in
      (AJoin (aa, ab), merge_scopes sa sb)
  | Ua.Union (a, b) ->
      let aa, sa = annotate env a and ab, sb = annotate env b in
      (AUnion (aa, ab), merge_scopes sa sb)
  | Ua.Diff (a, b) ->
      let aa, sa = annotate env a and ab, sb = annotate env b in
      (ADiff (aa, ab), merge_scopes sa sb)
  | Ua.Conf q | Ua.ApproxConf (_, q) ->
      let body, scope = annotate env q in
      (AConf { scope; body; mode = `Conf; cache = None }, [])
  | Ua.Poss q ->
      let body, scope = annotate env q in
      (AConf { scope; body; mode = `Poss; cache = None }, [])
  | Ua.Cert q ->
      let body, scope = annotate env q in
      (AConf { scope; body; mode = `Cert; cache = None }, [])
  | Ua.RepairKey { key; weight; query } ->
      let body, scope = annotate env query in
      if scope <> [] then
        raise (Not_complete "repair-key argument contains open uncertainty");
      let arg = eval_complete env "repair-key argument" body in
      let id = register_repair env ~key ~weight arg in
      (ARepair id, [ id ])
  | Ua.ApproxSelect _ -> assert false (* desugared before annotation *)

let prepare pdb query =
  let env =
    {
      pdb;
      repairs = Hashtbl.create 16;
      annotations = Hashtbl.create 64;
      next_repair = 0;
    }
  in
  let query = Ua.desugar_sigma_hat query in
  let aq, scope = annotate env query in
  (env, aq, scope)

let eval pdb query =
  let env, aq, scope = prepare pdb query in
  let results =
    List.concat_map
      (fun (world, p) ->
        List.map
          (fun (lookup, q) ->
            (eval_in_world env world lookup aq, Rational.mul p q))
          (combinations env scope))
      (Pdb.worlds pdb)
  in
  Pdb.normalize_prel results

let eval_confidence pdb query = Pdb.confidence (eval pdb query)

let eval_certain pdb query =
  match eval pdb query with
  | [ (r, _) ] -> r
  | _ -> raise (Not_complete "query result is uncertain")
