lib/montecarlo/estimator.ml: Dnf Pqdb_numeric Stats
