lib/montecarlo/dnf.ml: Array Assignment Confidence Hashtbl List Pqdb_numeric Pqdb_urel Rng Wtable
