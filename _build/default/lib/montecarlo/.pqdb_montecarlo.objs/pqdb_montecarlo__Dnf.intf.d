lib/montecarlo/dnf.mli: Assignment Pqdb_numeric Pqdb_urel Rational Rng Wtable
