lib/montecarlo/karp_luby.mli: Assignment Dnf Pqdb_numeric Pqdb_urel Rng Wtable
