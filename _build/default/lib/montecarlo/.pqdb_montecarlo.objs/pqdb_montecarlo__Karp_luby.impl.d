lib/montecarlo/karp_luby.ml: Dnf Pqdb_numeric Stats
