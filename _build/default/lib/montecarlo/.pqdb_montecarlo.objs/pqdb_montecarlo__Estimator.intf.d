lib/montecarlo/estimator.mli: Dnf Pqdb_numeric Rng
