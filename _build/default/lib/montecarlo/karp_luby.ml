open Pqdb_numeric

let run rng dnf ~trials =
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else begin
    if trials <= 0 then invalid_arg "Karp_luby.run: trials must be positive";
    let x = ref 0 in
    for _ = 1 to trials do
      x := !x + Dnf.sample_estimator rng dnf
    done;
    float_of_int !x *. Dnf.total_weight dnf /. float_of_int trials
  end

let trials_for dnf ~eps ~delta =
  if Dnf.is_trivially_false dnf || Dnf.is_trivially_true dnf then 0
  else
    Stats.karp_luby_trials ~clauses:(Dnf.clause_count dnf) ~eps ~delta

let fpras rng dnf ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Karp_luby.fpras";
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else run rng dnf ~trials:(trials_for dnf ~eps ~delta)

let confidence rng w clauses ~eps ~delta =
  fpras rng (Dnf.prepare w clauses) ~eps ~delta
