(** The Karp-Luby FPRAS for confidence computation (Section 4,
    Proposition 4.2).

    Running the estimator [m] times and averaging gives
    [p̂ = X·M/m] with [Pr(|p̂ − p| ≥ ε·p) ≤ 2·exp(−m·ε²/(3·|F|))]; choosing
    [m = ⌈3·|F|·ln(2/δ)/ε²⌉] yields an (ε, δ) guarantee. *)

open Pqdb_numeric
open Pqdb_urel

val run : Rng.t -> Dnf.t -> trials:int -> float
(** [p̂] after exactly [trials] estimator calls.  Degenerate DNFs (no clauses
    / empty clause) return 0 or 1 without sampling. *)

val fpras : Rng.t -> Dnf.t -> eps:float -> delta:float -> float
(** The (ε, δ) approximation scheme: picks the Chernoff-derived trial count.
    @raise Invalid_argument when [eps <= 0] or [delta <= 0]. *)

val trials_for : Dnf.t -> eps:float -> delta:float -> int
(** The [m] used by {!fpras} (0 for degenerate DNFs). *)

val confidence : Rng.t -> Wtable.t -> Assignment.t list ->
  eps:float -> delta:float -> float
(** Convenience: prepare + fpras. *)
