open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module V = Value
module Q = Rational

(* ------------------------------------------------------------------ *)
(* The coin bag of Example 2.2                                         *)
(* ------------------------------------------------------------------ *)

let coins =
  Relation.of_rows [ "CoinType"; "Count" ]
    [ [ V.Str "fair"; V.Int 2 ]; [ V.Str "2headed"; V.Int 1 ] ]

let faces =
  Relation.of_rows
    [ "FCoinType"; "Face"; "FProb" ]
    [
      [ V.Str "fair"; V.Str "H"; V.of_ints 1 2 ];
      [ V.Str "fair"; V.Str "T"; V.of_ints 1 2 ];
      [ V.Str "2headed"; V.Str "H"; V.Int 1 ];
    ]

let tosses = Relation.of_rows [ "Toss" ] [ [ V.Int 1 ]; [ V.Int 2 ] ]

let coin_db () =
  let udb = Udb.create () in
  Udb.add_complete udb "Coins" coins;
  Udb.add_complete udb "Faces" faces;
  Udb.add_complete udb "Tosses" tosses;
  udb

type coin_queries = {
  r : Ua.t;
  s : Ua.t;
  t : Ua.t;
  u : Ua.t;
  evidence : Ua.t;
}

let posterior_query ~r ~s ~tosses =
  let heads_at i =
    Ua.rename
      [ ("FCoinType", "CoinType") ]
      (Ua.project [ "FCoinType" ]
         (Ua.select
            Predicate.(
              Expr.(attr "Toss" = int i)
              && Expr.(attr "Face" = const (V.Str "H")))
            s))
  in
  let t =
    List.fold_left
      (fun acc i -> Ua.join acc (heads_at i))
      r
      (List.init tosses (fun i -> i + 1))
  in
  let u =
    Ua.project_cols
      [
        (Expr.attr "CoinType", "CoinType");
        (Expr.(attr "P1" / attr "P2"), "P");
      ]
      (Ua.join
         (Ua.rename [ ("P", "P1") ] (Ua.conf t))
         (Ua.rename [ ("P", "P2") ] (Ua.conf (Ua.project [] t))))
  in
  (t, u)

let coin_queries =
  let r =
    Ua.project [ "CoinType" ]
      (Ua.repair_key ~key:[] ~weight:"Count" (Ua.table "Coins"))
  in
  let s =
    Ua.project
      [ "FCoinType"; "Toss"; "Face" ]
      (Ua.repair_key
         ~key:[ "FCoinType"; "Toss" ]
         ~weight:"FProb"
         (Ua.product (Ua.table "Faces") (Ua.table "Tosses")))
  in
  let t, u = posterior_query ~r ~s ~tosses:2 in
  { r; s; t; u; evidence = Ua.project [] t }

let scaled_coin_db rng ~coin_types ~tosses =
  let coin_name i = "coin" ^ string_of_int i in
  let coins =
    Relation.of_rows [ "CoinType"; "Count" ]
      (List.init coin_types (fun i ->
           [ V.Str (coin_name i); V.Int (1 + Rng.int rng 5) ]))
  in
  let faces =
    Relation.of_rows
      [ "FCoinType"; "Face"; "FProb" ]
      (List.concat
         (List.init coin_types (fun i ->
              let heads = 1 + Rng.int rng 9 in
              [
                [ V.Str (coin_name i); V.Str "H"; V.of_ints heads 10 ];
                [ V.Str (coin_name i); V.Str "T"; V.of_ints (10 - heads) 10 ];
              ])))
  in
  let toss_rel =
    Relation.of_rows [ "Toss" ]
      (List.init tosses (fun i -> [ V.Int (i + 1) ]))
  in
  let udb = Udb.create () in
  Udb.add_complete udb "Coins" coins;
  Udb.add_complete udb "Faces" faces;
  Udb.add_complete udb "Tosses" toss_rel;
  let r =
    Ua.project [ "CoinType" ]
      (Ua.repair_key ~key:[] ~weight:"Count" (Ua.table "Coins"))
  in
  let s =
    Ua.project
      [ "FCoinType"; "Toss"; "Face" ]
      (Ua.repair_key
         ~key:[ "FCoinType"; "Toss" ]
         ~weight:"FProb"
         (Ua.product (Ua.table "Faces") (Ua.table "Tosses")))
  in
  let _, u = posterior_query ~r ~s ~tosses in
  (udb, u)

(* ------------------------------------------------------------------ *)
(* Data cleaning                                                       *)
(* ------------------------------------------------------------------ *)

let first_names =
  [| "ann"; "anne"; "bob"; "rob"; "carol"; "caroline"; "dave"; "david" |]

let cities = [| "vienna"; "ithaca"; "vancouver"; "saarbruecken" |]

let dirty_customers rng ~customers ~max_dups =
  let rows = ref [] in
  for id = customers - 1 downto 0 do
    let dups = 1 + Rng.int rng (max 1 max_dups) in
    for _ = 1 to dups do
      rows :=
        [
          V.Int id;
          V.Str first_names.(Rng.int rng (Array.length first_names));
          V.Str cities.(Rng.int rng (Array.length cities));
          V.Int (1 + Rng.int rng 5);
        ]
        :: !rows
    done
  done;
  Relation.of_rows [ "Id"; "Name"; "City"; "W" ] !rows

let cleaning_db rng ~customers ~max_dups =
  let udb = Udb.create () in
  Udb.add_complete udb "Dirty" (dirty_customers rng ~customers ~max_dups);
  udb

let cleaned = Ua.repair_key ~key:[ "Id" ] ~weight:"W" (Ua.table "Dirty")

let confident_customers ~threshold =
  Ua.approx_select
    (Apred.ge (Apred.var 0) (Apred.const threshold))
    [ [ "Id"; "Name" ] ]
    (Ua.project [ "Id"; "Name" ] cleaned)

(* ------------------------------------------------------------------ *)
(* Sensor monitoring                                                   *)
(* ------------------------------------------------------------------ *)

let levels = [| "cold"; "warm"; "hot" |]

let sensor_db rng ~sensors =
  let rows = ref [] in
  for s = sensors - 1 downto 0 do
    Array.iter
      (fun level ->
        rows := [ V.Int s; V.Str level; V.Int (1 + Rng.int rng 8) ] :: !rows)
      levels
  done;
  let udb = Udb.create () in
  Udb.add_complete udb "Readings"
    (Relation.of_rows [ "Sensor"; "Level"; "W" ] !rows);
  udb

let sensor_readings =
  Ua.project [ "Sensor"; "Level" ]
    (Ua.repair_key ~key:[ "Sensor" ] ~weight:"W" (Ua.table "Readings"))

let hot_sensors ~threshold =
  Ua.approx_select
    (Apred.ge (Apred.var 0) (Apred.const threshold))
    [ [ "Sensor" ] ]
    (Ua.select
       Predicate.(Expr.attr "Level" = Expr.const (V.Str "hot"))
       sensor_readings)

let hot_given_not_cold ~sensor =
  let mine =
    Ua.select Predicate.(Expr.attr "Sensor" = Expr.int sensor) sensor_readings
  in
  let hot =
    Ua.project []
      (Ua.select Predicate.(Expr.attr "Level" = Expr.const (V.Str "hot")) mine)
  in
  let not_cold =
    Ua.project []
      (Ua.select
         Predicate.(Expr.attr "Level" <> Expr.const (V.Str "cold"))
         mine)
  in
  Ua.project_cols
    [ (Expr.(attr "P1" / attr "P2"), "P") ]
    (Ua.join
       (Ua.rename [ ("P", "P1") ] (Ua.conf hot))
       (Ua.rename [ ("P", "P2") ] (Ua.conf not_cold)))
