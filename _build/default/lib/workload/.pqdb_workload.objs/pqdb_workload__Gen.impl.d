lib/workload/gen.ml: Array Assignment Float Fun List Option Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Rational Relation Rng Schema Tuple Urelation Value Wtable
