lib/workload/scenarios.mli: Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Relation Rng Udb
