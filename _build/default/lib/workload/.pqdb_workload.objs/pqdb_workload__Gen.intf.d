lib/workload/gen.mli: Assignment Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Relation Rng Urelation Wtable
