lib/workload/scenarios.ml: Array Expr List Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Predicate Rational Relation Rng Udb Value
