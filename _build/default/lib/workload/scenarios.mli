(** Named workload scenarios: the paper's running example plus the two
    application domains its introduction motivates (data cleaning and sensor
    data).

    Each scenario builds a U-relational database and the UA queries the
    examples and benchmarks run against it. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
module Ua := Pqdb_ast.Ua

(** {1 The coin bag (Example 2.2)} *)

type coin_queries = {
  r : Ua.t;  (** chosen coin type (uncertain) *)
  s : Ua.t;  (** toss outcomes (uncertain) *)
  t : Ua.t;  (** coin type joined with the all-heads evidence *)
  u : Ua.t;  (** posterior table: conditional probabilities *)
  evidence : Ua.t;  (** Boolean query: both tosses heads *)
}

val coins : Relation.t
val faces : Relation.t
val tosses : Relation.t
(** The three complete base relations of Example 2.2. *)

val coin_db : unit -> Udb.t
(** Fresh database with Coins, Faces, Tosses as in Example 2.2. *)

val coin_queries : coin_queries
(** The R, S, T, U of Example 2.2 (S's coin-type column is [FCoinType] in
    Faces and renamed into place for the joins). *)

val scaled_coin_db : Rng.t -> coin_types:int -> tosses:int -> Udb.t * Ua.t
(** A bag with [coin_types] biased coins observed for [tosses] tosses, and
    the posterior query given the all-heads evidence — Example 2.2 scaled
    until exact evaluation hurts (experiment E1/E3). *)

(** {1 Data cleaning (key repair + confidence thresholds)} *)

val dirty_customers : Rng.t -> customers:int -> max_dups:int -> Relation.t
(** A customer table with key [Id] violated by up to [max_dups] conflicting
    variants per customer, each carrying an evidence weight [W]. *)

val cleaning_db : Rng.t -> customers:int -> max_dups:int -> Udb.t
(** Database with the dirty relation as [Dirty]. *)

val cleaned : Ua.t
(** [repair-key Id@W (Dirty)]: one variant per customer, weighted. *)

val confident_customers : threshold:float -> Ua.t
(** σ̂-based cleaning: keep (Id, Name) pairs whose marginal probability after
    repair is at least [threshold] — an approximate-predicate selection. *)

(** {1 Sensor monitoring (conditional probabilities over readings)} *)

val sensor_db : Rng.t -> sensors:int -> Udb.t
(** Sensors report a discrete temperature level with per-level evidence
    weights; each sensor's reading is repaired into a distribution.
    Relations: [Readings(Sensor, Level, W)]. *)

val sensor_readings : Ua.t
(** The repaired (uncertain) readings. *)

val hot_sensors : threshold:float -> Ua.t
(** σ̂ query: sensors whose probability of reading the highest level exceeds
    [threshold]. *)

val hot_given_not_cold : sensor:int -> Ua.t
(** Conditional probability: P(level = hot | level ≠ cold) for one sensor,
    as a conf/conf ratio — the Example 2.2 conditional-probability pattern on
    sensor data. *)
