open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
module Q = Rational

let random_tuple rng ~width ~domain =
  Tuple.of_list (List.init width (fun _ -> Value.Int (Rng.int rng domain)))

let random_relation rng ~attrs ~rows ~domain =
  let width = List.length attrs in
  Relation.of_list (Schema.of_list attrs)
    (List.init rows (fun _ -> random_tuple rng ~width ~domain))

let weighted_relation rng ~attrs ~rows ~domain ~weight =
  let width = List.length attrs in
  let schema = Schema.of_list (attrs @ [ weight ]) in
  Relation.of_list schema
    (List.init rows (fun _ ->
         Tuple.concat
           (random_tuple rng ~width ~domain)
           (Tuple.of_list [ Value.Int (1 + Rng.int rng 10) ])))

(* Probability in tenths, in (0, 1) exclusive, as an exact rational. *)
let random_proper_prob rng =
  let num = 1 + Rng.int rng 9 in
  (Q.of_ints num 10, Q.of_ints (10 - num) 10)

let tuple_independent rng w ~attrs ~rows ~domain =
  let width = List.length attrs in
  let schema = Schema.of_list attrs in
  let rows =
    List.init rows (fun _ ->
        let p, q = random_proper_prob rng in
        let var = Wtable.add_var w [ q; p ] in
        (Assignment.singleton var 1, random_tuple rng ~width ~domain))
  in
  Urelation.make schema rows

let random_dnf rng w ~vars ~clauses ~clause_len =
  let ids =
    Array.init vars (fun _ ->
        let p, q = random_proper_prob rng in
        Wtable.add_var w [ q; p ])
  in
  let clause () =
    let len = max 1 (min clause_len vars) in
    let chosen = ref [] in
    for _ = 1 to len do
      let v = ids.(Rng.int rng vars) in
      if not (List.mem_assoc v !chosen) then
        chosen := (v, Rng.int rng 2) :: !chosen
    done;
    Assignment.of_list !chosen
  in
  List.init clauses (fun _ -> clause ())

let bernoulli_dnf _rng w ~p =
  let num = int_of_float (Float.round (p *. 1000.)) in
  let num = max 1 (min 999 num) in
  let var = Wtable.add_var w [ Q.of_ints (1000 - num) 1000; Q.of_ints num 1000 ] in
  [ Assignment.singleton var 1 ]

let linear_predicate rng ~arity =
  let k = arity in
  let open Pqdb_ast.Apred in
  let coef () = Rng.float_range rng (-2.) 2. in
  let sum =
    List.fold_left
      (fun acc i ->
        let term = Mul (Const (coef ()), Var i) in
        match acc with None -> Some term | Some e -> Some (Add (e, term)))
      None
      (List.init k Fun.id)
  in
  let lhs = Option.value ~default:(Const 0.) sum in
  ge lhs (Const (Rng.float_range rng (-1.) 1.))
