open Pqdb_relational
module Ua = Pqdb_ast.Ua

(* Attributes of a subquery, or None when inference fails (unknown table,
   malformed query) — in which case the rewrite is skipped. *)
let attrs_of ~lookup q =
  match Ua.output_attributes ~lookup q with
  | attrs -> Some attrs
  | exception Ua.Schema_error _ -> None

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Substitute projection columns into a predicate: Attr a becomes the
   expression bound to output column a. *)
let substitute_pred cols pred =
  let rec sub_expr = function
    | Expr.Attr a -> begin
        match List.find_opt (fun (_, name) -> name = a) cols with
        | Some (e, _) -> e
        | None -> Expr.Attr a
      end
    | Expr.Const _ as e -> e
    | Expr.Add (x, y) -> Expr.Add (sub_expr x, sub_expr y)
    | Expr.Sub (x, y) -> Expr.Sub (sub_expr x, sub_expr y)
    | Expr.Mul (x, y) -> Expr.Mul (sub_expr x, sub_expr y)
    | Expr.Div (x, y) -> Expr.Div (sub_expr x, sub_expr y)
    | Expr.Neg x -> Expr.Neg (sub_expr x)
  in
  let rec sub = function
    | Predicate.Cmp (op, x, y) -> Predicate.Cmp (op, sub_expr x, sub_expr y)
    | Predicate.And (p, q) -> Predicate.And (sub p, sub q)
    | Predicate.Or (p, q) -> Predicate.Or (sub p, sub q)
    | Predicate.Not p -> Predicate.Not (sub p)
    | (Predicate.True | Predicate.False) as p -> p
  in
  sub pred

(* Rename predicate attributes through the *inverse* of a rename mapping
   (the rename maps src -> dst; below the rename the attribute is src). *)
let unrename_pred mapping pred =
  let inverse = List.map (fun (src, dst) -> (dst, src)) mapping in
  let rec sub_expr = function
    | Expr.Attr a ->
        Expr.Attr
          (match List.assoc_opt a inverse with Some src -> src | None -> a)
    | Expr.Const _ as e -> e
    | Expr.Add (x, y) -> Expr.Add (sub_expr x, sub_expr y)
    | Expr.Sub (x, y) -> Expr.Sub (sub_expr x, sub_expr y)
    | Expr.Mul (x, y) -> Expr.Mul (sub_expr x, sub_expr y)
    | Expr.Div (x, y) -> Expr.Div (sub_expr x, sub_expr y)
    | Expr.Neg x -> Expr.Neg (sub_expr x)
  in
  let rec sub = function
    | Predicate.Cmp (op, x, y) -> Predicate.Cmp (op, sub_expr x, sub_expr y)
    | Predicate.And (p, q) -> Predicate.And (sub p, sub q)
    | Predicate.Or (p, q) -> Predicate.Or (sub p, sub q)
    | Predicate.Not p -> Predicate.Not (sub p)
    | (Predicate.True | Predicate.False) as p -> p
  in
  sub pred

(* Substitute inner projection columns into the outer projection's
   expressions (projection fusion). *)
let fuse_projections outer inner =
  let rec sub_expr = function
    | Expr.Attr a -> begin
        match List.find_opt (fun (_, name) -> name = a) inner with
        | Some (e, _) -> e
        | None -> Expr.Attr a
      end
    | Expr.Const _ as e -> e
    | Expr.Add (x, y) -> Expr.Add (sub_expr x, sub_expr y)
    | Expr.Sub (x, y) -> Expr.Sub (sub_expr x, sub_expr y)
    | Expr.Mul (x, y) -> Expr.Mul (sub_expr x, sub_expr y)
    | Expr.Div (x, y) -> Expr.Div (sub_expr x, sub_expr y)
    | Expr.Neg x -> Expr.Neg (sub_expr x)
  in
  List.map (fun (e, name) -> (sub_expr e, name)) outer

let conjuncts pred =
  let rec go acc = function
    | Predicate.And (p, q) -> go (go acc p) q
    | Predicate.True -> acc
    | p -> p :: acc
  in
  List.rev (go [] pred)

let conjoin = function
  | [] -> Predicate.True
  | first :: rest ->
      List.fold_left (fun acc p -> Predicate.And (acc, p)) first rest

let is_identity_project ~lookup cols q =
  match attrs_of ~lookup q with
  | Some attrs ->
      List.length cols = List.length attrs
      && List.for_all2
           (fun (e, name) a ->
             name = a && match e with Expr.Attr x -> x = a | _ -> false)
           cols attrs
  | None -> false

let is_identity_rename mapping =
  List.for_all (fun (src, dst) -> src = dst) mapping

(* One top-down rewrite pass; returns the rewritten query. *)
let rec pass ~lookup q =
  let recur = pass ~lookup in
  match q with
  | Ua.Table _ | Ua.Lit _ -> q
  | Ua.Select (Predicate.True, q) -> recur q
  | Ua.Select (pred, inner) -> begin
      let inner = recur inner in
      match inner with
      | Ua.Select (pred', deeper) ->
          Ua.Select (Predicate.And (pred, pred'), deeper)
      | Ua.Union (a, b) ->
          Ua.Union (Ua.Select (pred, a), Ua.Select (pred, b))
      | Ua.Project (cols, deeper) ->
          (* Pull the condition below the projection by substitution. *)
          Ua.Project (cols, Ua.Select (substitute_pred cols pred, deeper))
      | Ua.Rename (m, deeper) ->
          Ua.Rename (m, Ua.Select (unrename_pred m pred, deeper))
      | (Ua.Conf deeper | Ua.ApproxConf (_, deeper))
        when not (List.mem "P" (Predicate.attributes pred)) -> begin
          match inner with
          | Ua.Conf _ -> Ua.Conf (Ua.Select (pred, deeper))
          | Ua.ApproxConf (p, _) -> Ua.ApproxConf (p, Ua.Select (pred, deeper))
          | _ -> assert false
        end
      | Ua.Product (a, b) | Ua.Join (a, b) -> begin
          let rebuild x y =
            match inner with
            | Ua.Product _ -> Ua.Product (x, y)
            | _ -> Ua.Join (x, y)
          in
          match (attrs_of ~lookup a, attrs_of ~lookup b) with
          | Some la, Some lb ->
              (* Route each conjunct to the side(s) that cover it. *)
              let here, left, right =
                List.fold_left
                  (fun (here, left, right) c ->
                    let needs = Predicate.attributes c in
                    if subset needs la then (here, c :: left, right)
                    else if subset needs lb then (here, left, c :: right)
                    else (c :: here, left, right))
                  ([], [], []) (conjuncts pred)
              in
              let wrap side = function
                | [] -> side
                | cs -> Ua.Select (conjoin (List.rev cs), side)
              in
              let pushed = rebuild (wrap a left) (wrap b right) in
              if here = [] then pushed
              else Ua.Select (conjoin (List.rev here), pushed)
          | _ -> Ua.Select (pred, inner)
        end
      | _ -> Ua.Select (pred, inner)
    end
  | Ua.Project (cols, inner) -> begin
      let inner = recur inner in
      if is_identity_project ~lookup cols inner then inner
      else begin
        match inner with
        | Ua.Project (cols', deeper) ->
            Ua.Project (fuse_projections cols cols', deeper)
        | _ -> Ua.Project (cols, inner)
      end
    end
  | Ua.Rename (m, inner) ->
      let inner = recur inner in
      if is_identity_rename m then inner else Ua.Rename (m, inner)
  | Ua.Product (a, b) -> Ua.Product (recur a, recur b)
  | Ua.Join (a, b) -> Ua.Join (recur a, recur b)
  | Ua.Union (a, b) -> Ua.Union (recur a, recur b)
  | Ua.Diff (a, b) -> Ua.Diff (recur a, recur b)
  | Ua.Conf q -> Ua.Conf (recur q)
  | Ua.ApproxConf (p, q) -> Ua.ApproxConf (p, recur q)
  | Ua.RepairKey { key; weight; query } ->
      Ua.RepairKey { key; weight; query = recur query }
  | Ua.Poss q -> Ua.Poss (recur q)
  | Ua.Cert q -> Ua.Cert (recur q)
  | Ua.ApproxSelect sh ->
      Ua.ApproxSelect { sh with input = recur sh.input }

let optimize ~lookup q =
  let rec fixpoint i q =
    if i >= 10 then q
    else begin
      let q' = pass ~lookup q in
      if q' = q then q else fixpoint (i + 1) q'
    end
  in
  fixpoint 0 q

let optimize_for udb q =
  let lookup name =
    match Pqdb_urel.Udb.find udb name with
    | u ->
        Some (Schema.attributes (Pqdb_urel.Urelation.schema u))
    | exception Not_found -> None
  in
  optimize ~lookup q
