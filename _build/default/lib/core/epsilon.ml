module Apred = Pqdb_ast.Apred

exception Unsupported of string

let atom_occurrences_ok lhs rhs arity =
  let counts = Array.make (max 1 arity) 0 in
  let rec go = function
    | Apred.Var i -> counts.(i) <- counts.(i) + 1
    | Apred.Const _ -> ()
    | Apred.Add (a, b) | Apred.Sub (a, b) | Apred.Mul (a, b) | Apred.Div (a, b)
      ->
        go a;
        go b
    | Apred.Neg a -> go a
  in
  go lhs;
  go rhs;
  Array.for_all (fun c -> c <= 1) counts

let atom_eps ~search_iterations cmp lhs rhs point =
  match Linear_eps.atom_epsilon cmp lhs rhs point with
  | Some eps -> eps
  | None ->
      let arity = Array.length point in
      if not (atom_occurrences_ok lhs rhs arity) then
        raise
          (Unsupported
             "non-linear atom with a repeated variable; use split_duplicates")
      else
        Orthotope.epsilon_search ~iterations:search_iterations
          (Apred.Cmp (cmp, lhs, rhs))
          point

let rec epsilon ?(search_iterations = 40) phi point =
  let eps p = epsilon ~search_iterations p point in
  match phi with
  | Apred.True | Apred.False -> Linear_eps.eps_max
  | Apred.Not p -> eps p
  | Apred.Cmp (cmp, lhs, rhs) ->
      atom_eps ~search_iterations cmp lhs rhs point
  | Apred.And (p, q) ->
      let vp = Apred.eval point p and vq = Apred.eval point q in
      if vp && vq then Float.min (eps p) (eps q)
      else begin
        (* False conjunction: it stays false while some currently-false
           conjunct stays false. *)
        let candidates =
          (if vp then [] else [ eps p ]) @ if vq then [] else [ eps q ]
        in
        List.fold_left Float.max 0. candidates
      end
  | Apred.Or (p, q) ->
      let vp = Apred.eval point p and vq = Apred.eval point q in
      if (not vp) && not vq then Float.min (eps p) (eps q)
      else begin
        let candidates =
          (if vp then [ eps p ] else []) @ if vq then [ eps q ] else []
        in
        List.fold_left Float.max 0. candidates
      end

let epsilon_for_decision ?search_iterations phi point =
  epsilon ?search_iterations phi point

let split_duplicates phi =
  let arity = Apred.arity phi in
  let seen = Array.make (max 1 arity) false in
  let origin = ref (List.init arity Fun.id) in
  let next = ref arity in
  let fresh v =
    let j = !next in
    incr next;
    origin := !origin @ [ v ];
    j
  in
  let rec go_expr = function
    | Apred.Var v ->
        if seen.(v) then Apred.Var (fresh v)
        else begin
          seen.(v) <- true;
          Apred.Var v
        end
    | Apred.Const c -> Apred.Const c
    | Apred.Add (a, b) ->
        let a = go_expr a in
        Apred.Add (a, go_expr b)
    | Apred.Sub (a, b) ->
        let a = go_expr a in
        Apred.Sub (a, go_expr b)
    | Apred.Mul (a, b) ->
        let a = go_expr a in
        Apred.Mul (a, go_expr b)
    | Apred.Div (a, b) ->
        let a = go_expr a in
        Apred.Div (a, go_expr b)
    | Apred.Neg a -> Apred.Neg (go_expr a)
  in
  let rec go = function
    | Apred.Cmp (cmp, lhs, rhs) ->
        let lhs = go_expr lhs in
        Apred.Cmp (cmp, lhs, go_expr rhs)
    | Apred.And (p, q) ->
        let p = go p in
        Apred.And (p, go q)
    | Apred.Or (p, q) ->
        let p = go p in
        Apred.Or (p, go q)
    | Apred.Not p -> Apred.Not (go p)
    | (Apred.True | Apred.False) as c -> c
  in
  let phi' = go phi in
  (phi', Array.of_list !origin)
