open Pqdb_numeric
module Estimator = Pqdb_montecarlo.Estimator

type kind =
  | Karp_luby of Estimator.t
  | Exact of float
  | Sampler of sampler

and sampler = {
  values : float array;
  range : float;  (* max - min of the population *)
  lower_bound : float;
  batch : int;
  mutable sum : float;
  mutable draws : int;
}

type t = kind

let of_karp_luby est =
  if Estimator.is_degenerate est then Exact (Estimator.estimate est)
  else Karp_luby est

let constant v = Exact v

let of_sampler ?(batch = 16) ~lower_bound ~values () =
  if Array.length values = 0 then
    invalid_arg "Approximable.of_sampler: empty population";
  if lower_bound <= 0. then
    invalid_arg "Approximable.of_sampler: lower bound must be positive";
  let lo = Array.fold_left Float.min values.(0) values in
  let hi = Array.fold_left Float.max values.(0) values in
  if hi -. lo <= 0. then Exact lo
  else
    Sampler
      { values; range = hi -. lo; lower_bound; batch; sum = 0.; draws = 0 }

let refine_by rng t n =
  match t with
  | Exact _ -> ()
  | Karp_luby est -> Estimator.batch rng est n
  | Sampler s ->
      for _ = 1 to n do
        s.sum <- s.sum +. s.values.(Rng.int rng (Array.length s.values));
        s.draws <- s.draws + 1
      done

let refine rng t =
  match t with
  | Exact _ -> ()
  | Karp_luby est -> Estimator.step_round rng est
  | Sampler s -> refine_by rng t s.batch

let estimate = function
  | Exact v -> v
  | Karp_luby est -> Estimator.estimate est
  | Sampler s -> if s.draws = 0 then 0. else s.sum /. float_of_int s.draws

let steps = function
  | Exact _ -> 0
  | Karp_luby est -> Estimator.trials est
  | Sampler s -> s.draws

let delta_bound t ~eps =
  match t with
  | Exact _ -> 0.
  | Karp_luby est -> Estimator.delta_bound est ~eps
  | Sampler s ->
      if s.draws = 0 then 1.
      else begin
        (* Hoeffding on the absolute error t = eps * lower_bound:
           P(|mean_hat - mean| >= t) <= 2 exp(-2 n t^2 / range^2). *)
        let t_abs = eps *. s.lower_bound in
        Float.min 1.
          (2.
          *. exp
               (-2. *. float_of_int s.draws *. t_abs *. t_abs
               /. (s.range *. s.range)))
      end

let is_exact = function Exact _ -> true | _ -> false
