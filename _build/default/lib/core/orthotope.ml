open Pqdb_numeric
module Apred = Pqdb_ast.Apred

let safe_eval phi point =
  match Apred.eval point phi with
  | v -> Some v
  | exception _ -> None

let corners_agree phi ~point ~eps =
  match safe_eval phi point with
  | None -> false
  | Some center ->
      let orthotope = Interval.orthotope_relative ~eps point in
      Seq.for_all
        (fun corner ->
          Array.for_all Float.is_finite corner
          &&
          match safe_eval phi corner with
          | Some v -> v = center
          | None -> false)
        (Interval.corners orthotope)

let epsilon_search ?(iterations = 40) ?(eps_max = Linear_eps.eps_max) phi point
    =
  if corners_agree phi ~point ~eps:eps_max then eps_max
  else begin
    (* Invariant: corners agree at [lo], disagree at [hi]. *)
    let lo = ref 0. and hi = ref eps_max in
    for _ = 1 to iterations do
      let mid = (!lo +. !hi) /. 2. in
      if corners_agree phi ~point ~eps:mid then lo := mid else hi := mid
    done;
    !lo
  end

let homogeneous_on_samples rng phi ~point ~eps ~samples =
  match safe_eval phi point with
  | None -> false
  | Some center ->
      let orthotope = Interval.orthotope_relative ~eps point in
      let draw lo hi = Rng.float_range rng lo hi in
      let rec go n =
        if n = 0 then true
        else begin
          let x = Interval.sample draw orthotope in
          match safe_eval phi x with
          | Some v when v = center -> go (n - 1)
          | _ -> false
        end
      in
      go samples
