open Pqdb_numeric
module Apred = Pqdb_ast.Apred

let safe_eval phi point =
  match Apred.eval point phi with v -> Some v | exception _ -> None

let absolute_corners_agree phi ~point ~eps0 =
  match safe_eval phi point with
  | None -> false
  | Some center ->
      let box = Interval.orthotope_absolute ~eps:eps0 point in
      Seq.for_all
        (fun corner ->
          match safe_eval phi corner with
          | Some v -> v = center
          | None -> false)
        (Interval.corners box)

let definitely_singular ?(samples = 256) ~rng ~eps0 phi point =
  match safe_eval phi point with
  | None -> true
  | Some center ->
      if not (absolute_corners_agree phi ~point ~eps0) then true
      else begin
        let box = Interval.orthotope_absolute ~eps:eps0 point in
        let draw lo hi = Rng.float_range rng lo hi in
        let rec go n =
          if n = 0 then false
          else begin
            let x = Interval.sample draw box in
            match safe_eval phi x with
            | Some v when v = center -> go (n - 1)
            | _ -> true
          end
        in
        go samples
      end

let atom_boundary_in_box ~eps0 (l : Linear_eps.linear) point =
  let value = Linear_eps.eval l point in
  let beta = ref 0. in
  Array.iteri
    (fun i a -> beta := !beta +. Float.abs (a *. point.(i)))
    l.Linear_eps.coeffs;
  Float.abs value <= eps0 *. !beta

let rec possibly_singular ~eps0 phi point =
  let arity = Array.length point in
  match phi with
  | Apred.True | Apred.False -> false
  | Apred.Not p -> possibly_singular ~eps0 p point
  | Apred.And (p, q) | Apred.Or (p, q) ->
      possibly_singular ~eps0 p point || possibly_singular ~eps0 q point
  | Apred.Cmp (_, lhs, rhs) -> begin
      match (Linear_eps.of_expr ~arity lhs, Linear_eps.of_expr ~arity rhs) with
      | Some ll, Some lr ->
          let l =
            {
              Linear_eps.coeffs =
                Array.init arity (fun i ->
                    ll.Linear_eps.coeffs.(i) -. lr.Linear_eps.coeffs.(i));
              constant = ll.Linear_eps.constant -. lr.Linear_eps.constant;
            }
          in
          atom_boundary_in_box ~eps0 l point
      | _ -> not (absolute_corners_agree phi ~point ~eps0)
    end
