(** The ε_φ computation of Section 5: the homogeneity radius of a predicate's
    truth value at an approximated point.

    Atoms that are linear inequalities get the exact closed form of
    Theorem 5.2; other atoms fall back to the Theorem 5.5 corner-point binary
    search (requiring each variable to occur at most once {e in that atom}).
    Boolean structure composes truth-directed:

    - a true conjunction is homogeneous while {e both} conjuncts stay true
      (min); a false one while {e some} false conjunct stays false (max over
      the false conjuncts);
    - dually for disjunction.

    This coincides with the paper's min/max rules on NNF inputs whose
    subformulas share the root's truth value, and extends them soundly to
    mixed-truth subformulas. *)

exception Unsupported of string
(** Raised for non-linear atoms in which some variable occurs more than once
    — rewrite with {!split_duplicates} first (Section 5's independent-copies
    trick). *)

val epsilon :
  ?search_iterations:int -> Pqdb_ast.Apred.t -> float array -> float
(** [epsilon φ p̂]: homogeneity radius of [φ]'s truth value at [p̂], in
    [\[0, {!Linear_eps.eps_max}\]].  0 means the point sits on a decision
    boundary (a singularity if the true point does too). *)

val epsilon_for_decision :
  ?search_iterations:int -> Pqdb_ast.Apred.t -> float array -> float
(** The ε used by the Figure-3 algorithm: [ε_φ(p̂)] when [φ(p̂)] holds and
    [ε_{¬φ}(p̂)] otherwise — identical to {!epsilon} under the truth-directed
    semantics above, provided for readability at call sites. *)

val split_duplicates : Pqdb_ast.Apred.t -> Pqdb_ast.Apred.t * int array
(** [split_duplicates φ = (φ', origin)]: every occurrence of a variable
    beyond its first gets a fresh variable index; [origin.(j)] is the original
    variable behind (possibly fresh) variable [j].  Approximating each copy
    independently restores the single-occurrence precondition at a small cost
    in efficiency, as the paper prescribes. *)
