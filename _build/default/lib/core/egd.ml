open Pqdb_numeric
open Pqdb_relational
module Ua = Pqdb_ast.Ua

type formula =
  | Exists of Ua.t
  | Egd of Ua.t
  | And of formula * formula
  | Or of formula * formula

let always =
  Ua.Lit (Relation.of_list (Schema.of_list []) [ Tuple.of_list [] ])

let prime a = a ^ "'"

let fd_violation ~table ~attrs ~key ~determined =
  let renamed = Ua.rename (List.map (fun a -> (a, prime a)) attrs) (Ua.table table) in
  let key_equal =
    List.fold_left
      (fun acc a ->
        Predicate.And (acc, Predicate.(Expr.attr a = Expr.attr (prime a))))
      Predicate.True key
  in
  let some_differs =
    List.fold_left
      (fun acc a ->
        Predicate.Or (acc, Predicate.(Expr.attr a <> Expr.attr (prime a))))
      Predicate.False determined
  in
  Ua.project []
    (Ua.select
       (Predicate.And (key_equal, some_differs))
       (Ua.product (Ua.table table) renamed))

(* DNF of the formula: a list of conjunctions, each a pair
   (existential queries, violation queries). *)
let rec dnf = function
  | Exists q -> [ ([ q ], []) ]
  | Egd v -> [ ([], [ v ]) ]
  | And (a, b) ->
      List.concat_map
        (fun (ea, va) ->
          List.map (fun (eb, vb) -> (ea @ eb, va @ vb)) (dnf b))
        (dnf a)
  | Or (a, b) -> dnf a @ dnf b

let conj_of (exists, violations) =
  let e =
    match exists with
    | [] -> always
    | first :: rest -> List.fold_left Ua.product first rest
  in
  let v =
    match violations with
    | [] -> None
    | first :: rest -> Some (List.fold_left Ua.union first rest)
  in
  (e, v)

let conjunct_queries f =
  let rec or_free = function
    | Exists _ | Egd _ -> true
    | And (a, b) -> or_free a && or_free b
    | Or _ -> false
  in
  if or_free f then
    match dnf f with [ c ] -> Some (conj_of c) | _ -> None
  else None

(* Probability that a Boolean (nullary) query is nonempty. *)
let bool_prob udb q =
  match Eval_exact.confidences udb (Ua.project [] q) with
  | [] -> Rational.zero
  | [ (_, p) ] -> p
  | _ -> assert false

let conjunction_probability udb conj =
  let e, v = conj_of conj in
  match v with
  | None -> bool_prob udb e
  | Some violations ->
      (* Theorem 4.4: Pr(φ ∧ ψ) = Pr(φ) − Pr(φ ∧ ¬ψ). *)
      Rational.sub (bool_prob udb e)
        (bool_prob udb (Ua.product e violations))

let probability udb f =
  let disjuncts = Array.of_list (dnf f) in
  let n = Array.length disjuncts in
  (* Inclusion–exclusion over the disjuncts; conjunctions of conjunctions
     merge componentwise. *)
  let total = ref Rational.zero in
  for mask = 1 to (1 lsl n) - 1 do
    let merged = ref ([], []) in
    let bits = ref 0 in
    for i = 0 to n - 1 do
      if (mask lsr i) land 1 = 1 then begin
        incr bits;
        let ea, va = !merged and eb, vb = disjuncts.(i) in
        merged := (ea @ eb, va @ vb)
      end
    done;
    let p = conjunction_probability udb !merged in
    if !bits mod 2 = 1 then total := Rational.add !total p
    else total := Rational.sub !total p
  done;
  !total
