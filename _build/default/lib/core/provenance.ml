open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua

type leaf =
  | Base of string * Tuple.t
  | Sigma_hat of int * Tuple.t

let leaf_compare a b =
  match (a, b) with
  | Base (na, ta), Base (nb, tb) ->
      let c = String.compare na nb in
      if c <> 0 then c else Tuple.compare ta tb
  | Sigma_hat (ia, ta), Sigma_hat (ib, tb) ->
      let c = compare ia ib in
      if c <> 0 then c else Tuple.compare ta tb
  | Base _, Sigma_hat _ -> -1
  | Sigma_hat _, Base _ -> 1

let pp_leaf fmt = function
  | Base (name, t) -> Format.fprintf fmt "%s%a" name Tuple.pp t
  | Sigma_hat (i, t) -> Format.fprintf fmt "sigma-hat#%d%a" i Tuple.pp t

module LS = Set.Make (struct
  type t = leaf

  let compare = leaf_compare
end)

module TM = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type node = { urel : Urelation.t; prov : LS.t TM.t }

type t = { root : node; sigma_hats : int }

let prov_of node tuple =
  Option.value ~default:LS.empty (TM.find_opt tuple node.prov)

let add_prov map tuple set =
  TM.update tuple
    (function None -> Some set | Some old -> Some (LS.union old set))
    map

(* Provenance of a binary combination recomputed from possible tuples. *)
let combine_binary kind a b urel =
  let sa = Urelation.schema a.urel and sb = Urelation.schema b.urel in
  let shared = Schema.common sa sb in
  let sa_shared = List.map (Schema.index sa) shared in
  let sb_shared = List.map (Schema.index sb) shared in
  let sb_only =
    List.filter (fun x -> not (List.mem x shared)) (Schema.attributes sb)
  in
  let sb_only_pos = List.map (Schema.index sb) sb_only in
  let prov = ref TM.empty in
  List.iter
    (fun ta ->
      List.iter
        (fun tb ->
          let matches =
            match kind with
            | `Product -> true
            | `Join ->
                Tuple.equal (Tuple.project ta sa_shared)
                  (Tuple.project tb sb_shared)
          in
          if matches then begin
            let out =
              match kind with
              | `Product -> Tuple.concat ta tb
              | `Join -> Tuple.concat ta (Tuple.project tb sb_only_pos)
            in
            prov :=
              add_prov !prov out (LS.union (prov_of a ta) (prov_of b tb))
          end)
        (Urelation.possible_tuples b.urel))
    (Urelation.possible_tuples a.urel);
  { urel; prov = !prov }

let compute udb query =
  let counter = ref 0 in
  let cache : (string, node) Hashtbl.t = Hashtbl.create 64 in
  let rec go q =
    let key = Format.asprintf "%a" Ua.pp q in
    match Hashtbl.find_opt cache key with
    | Some node -> node
    | None ->
        let node = go_raw q in
        Hashtbl.replace cache key node;
        node
  and go_raw q =
    match q with
    | Ua.Table name ->
        let urel = Eval_exact.eval udb q in
        let prov =
          List.fold_left
            (fun acc t -> add_prov acc t (LS.singleton (Base (name, t))))
            TM.empty
            (Urelation.possible_tuples urel)
        in
        { urel; prov }
    | Ua.Lit _ -> { urel = Eval_exact.eval udb q; prov = TM.empty }
    | Ua.Select (p, inner) ->
        let a = go inner in
        { a with urel = Translate.select p a.urel }
    | Ua.Rename (m, inner) ->
        let a = go inner in
        { a with urel = Translate.rename m a.urel }
    | Ua.Project (cols, inner) ->
        let a = go inner in
        let in_schema = Urelation.schema a.urel in
        let exprs = List.map fst cols in
        let urel = Translate.project cols a.urel in
        let prov =
          List.fold_left
            (fun acc t ->
              let out =
                Tuple.of_list (List.map (Expr.eval in_schema t) exprs)
              in
              add_prov acc out (prov_of a t))
            TM.empty
            (Urelation.possible_tuples a.urel)
        in
        { urel; prov }
    | Ua.Product (l, r) ->
        let a = go l and b = go r in
        combine_binary `Product a b (Translate.product a.urel b.urel)
    | Ua.Join (l, r) ->
        let a = go l and b = go r in
        combine_binary `Join a b (Translate.join a.urel b.urel)
    | Ua.Union (l, r) ->
        let a = go l and b = go r in
        let urel = Translate.union a.urel b.urel in
        let prov =
          TM.fold (fun t s acc -> add_prov acc t s) b.prov a.prov
        in
        { urel; prov }
    | Ua.Diff (l, r) ->
        let a = go l and b = go r in
        let urel =
          match Translate.diff_complete a.urel b.urel with
          | u -> u
          | exception Invalid_argument _ ->
              raise
                (Eval_exact.Unsupported
                   "difference is only supported on complete relations")
        in
        let prov =
          TM.fold (fun t s acc -> add_prov acc t s) b.prov a.prov
        in
        { urel; prov }
    | Ua.Conf _ | Ua.ApproxConf _ | Ua.Poss _ | Ua.Cert _ ->
        let inner =
          match q with
          | Ua.Conf i | Ua.ApproxConf (_, i) | Ua.Poss i | Ua.Cert i -> i
          | _ -> assert false
        in
        let a = go inner in
        let urel = Eval_exact.eval udb q in
        let in_arity = Schema.arity (Urelation.schema a.urel) in
        let prov =
          List.fold_left
            (fun acc out ->
              (* The data part of the output row (drops the P column when
                 present). *)
              let data =
                Tuple.project out (List.init in_arity Fun.id)
              in
              add_prov acc out (prov_of a data))
            TM.empty
            (Urelation.possible_tuples urel)
        in
        { urel; prov }
    | Ua.RepairKey _ ->
        let urel = Eval_exact.eval udb q in
        (* repair-key requires a complete input whose tuples pass through
           unchanged; provenance maps by tuple identity. *)
        let inner =
          match q with Ua.RepairKey { query; _ } -> query | _ -> assert false
        in
        let a = go inner in
        let prov =
          List.fold_left
            (fun acc t -> add_prov acc t (prov_of a t))
            TM.empty
            (Urelation.possible_tuples urel)
        in
        { urel; prov }
    | Ua.ApproxSelect _ ->
        (* Maximal sigma-hat subexpressions are provenance leaves. *)
        let id = !counter in
        incr counter;
        let urel = Eval_exact.eval udb q in
        let prov =
          List.fold_left
            (fun acc t ->
              add_prov acc t (LS.singleton (Sigma_hat (id, t))))
            TM.empty
            (Urelation.possible_tuples urel)
        in
        { urel; prov }
  in
  let root = go query in
  { root; sigma_hats = !counter }

let result t = t.root.urel

let leaves t tuple = LS.elements (prov_of t.root tuple)

let sigma_hat_leaves t tuple =
  List.filter_map
    (function Sigma_hat (i, s) -> Some (i, s) | Base _ -> None)
    (leaves t tuple)

let sigma_hat_count t = t.sigma_hats
