(** Confidence of Boolean combinations of existential queries and
    equality-generating dependencies — Theorem 4.4.

    A (generalized) egd [∀x̄ φ(x̄) ⇒ ψ(x̄)] has an existential {e violation}
    query (the negation of the implication body); for a conjunction
    [φ ∧ ψ] with [φ] existential, [Pr(φ ∧ ψ) = Pr(φ) − Pr(φ ∧ ¬ψ)], which is
    a difference of confidences of {e positive} queries.  This module
    normalizes an and/or formula over existential queries and egds to DNF and
    evaluates it by inclusion–exclusion over the disjuncts, each handled by
    the rewriting above.

    Queries are Boolean: nullary UA queries ([π_∅(…)]), true in a world iff
    nonempty. *)

open Pqdb_numeric
open Pqdb_urel

type formula =
  | Exists of Pqdb_ast.Ua.t
      (** existential sentence, as a Boolean (nullary) positive query *)
  | Egd of Pqdb_ast.Ua.t
      (** an egd given by its {e violation} query (Boolean, positive):
          the egd holds iff the violation query is empty *)
  | And of formula * formula
  | Or of formula * formula

val always : Pqdb_ast.Ua.t
(** The Boolean query that is true in every world (a nullary literal with one
    tuple) — the unit of conjunction. *)

val fd_violation :
  table:string ->
  attrs:string list ->
  key:string list ->
  determined:string list ->
  Pqdb_ast.Ua.t
(** Violation query of the functional dependency [key → determined] on
    [table] (whose full attribute list is [attrs]): a Boolean query that is
    nonempty exactly when two possible tuples agree on [key] and differ on
    some attribute of [determined]. *)

val conjunct_queries : formula -> (Pqdb_ast.Ua.t * Pqdb_ast.Ua.t option) option
(** For an [Or]-free formula: the pair (existential part [E], union of
    violation queries if any egd is present), such that
    [Pr = conf(E) − conf(E × violations)].  [None] when the formula contains
    [Or] (handled by inclusion–exclusion in {!probability}). *)

val probability : Udb.t -> formula -> Rational.t
(** Exact [Pr(formula)] via the Theorem 4.4 rewriting (inclusion–exclusion
    over the DNF of the formula), evaluating only positive UA[conf]
    queries. *)
