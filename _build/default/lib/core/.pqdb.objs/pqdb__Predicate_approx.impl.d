lib/core/predicate_approx.ml: Approximable Array Epsilon Estimator Float Linear_eps Pqdb_ast Pqdb_montecarlo Pqdb_numeric
