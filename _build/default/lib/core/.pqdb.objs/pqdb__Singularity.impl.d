lib/core/singularity.ml: Array Float Interval Linear_eps Pqdb_ast Pqdb_numeric Rng Seq
