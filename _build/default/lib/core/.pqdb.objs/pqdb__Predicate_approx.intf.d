lib/core/predicate_approx.mli: Approximable Estimator Pqdb_ast Pqdb_montecarlo Pqdb_numeric Rng
