lib/core/eval_approx.mli: Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Rng Tuple Udb Urelation
