lib/core/epsilon.mli: Pqdb_ast
