lib/core/provenance.mli: Format Pqdb_ast Pqdb_relational Pqdb_urel Tuple Udb Urelation
