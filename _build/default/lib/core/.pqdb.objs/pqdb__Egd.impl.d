lib/core/egd.ml: Array Eval_exact Expr List Pqdb_ast Pqdb_numeric Pqdb_relational Predicate Rational Relation Schema Tuple
