lib/core/topk.ml: Array Eval_exact Float List Pqdb_montecarlo Pqdb_relational Pqdb_urel Tuple Udb Urelation
