lib/core/linear_eps.mli: Pqdb_ast
