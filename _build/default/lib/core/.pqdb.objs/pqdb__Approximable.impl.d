lib/core/approximable.ml: Array Float Pqdb_montecarlo Pqdb_numeric Rng
