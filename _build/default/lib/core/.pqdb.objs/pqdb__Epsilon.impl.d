lib/core/epsilon.ml: Array Float Fun Linear_eps List Orthotope Pqdb_ast
