lib/core/egd.mli: Pqdb_ast Pqdb_numeric Pqdb_urel Rational Udb
