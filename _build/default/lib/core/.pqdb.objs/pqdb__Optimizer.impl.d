lib/core/optimizer.ml: Expr List Pqdb_ast Pqdb_relational Pqdb_urel Predicate Schema
