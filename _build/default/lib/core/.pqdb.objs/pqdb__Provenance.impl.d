lib/core/provenance.ml: Eval_exact Expr Format Fun Hashtbl List Map Option Pqdb_ast Pqdb_relational Pqdb_urel Schema Set String Translate Tuple Urelation
