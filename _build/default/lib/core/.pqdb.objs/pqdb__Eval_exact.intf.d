lib/core/eval_exact.mli: Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Rational Relation Tuple Udb Urelation
