lib/core/eval_exact.ml: Assignment Confidence Format Hashtbl List Pqdb_ast Pqdb_numeric Pqdb_relational Pqdb_urel Rational Relation Schema Translate Tuple Udb Urelation Value
