lib/core/linear_eps.ml: Array Float List Option Pqdb_ast
