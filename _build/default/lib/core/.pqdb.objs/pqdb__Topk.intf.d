lib/core/topk.mli: Pqdb_ast Pqdb_montecarlo Pqdb_numeric Pqdb_relational Pqdb_urel Rng Tuple Udb
