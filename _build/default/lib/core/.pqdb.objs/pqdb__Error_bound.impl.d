lib/core/error_bound.ml: Float Pqdb_numeric Stats
