lib/core/error_bound.mli:
