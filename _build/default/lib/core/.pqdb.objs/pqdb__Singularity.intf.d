lib/core/singularity.mli: Linear_eps Pqdb_ast Pqdb_numeric
