lib/core/approximable.mli: Pqdb_montecarlo Pqdb_numeric Rng
