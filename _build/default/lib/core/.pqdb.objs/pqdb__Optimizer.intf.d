lib/core/optimizer.mli: Pqdb_ast Pqdb_urel
