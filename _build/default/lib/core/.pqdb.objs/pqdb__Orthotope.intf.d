lib/core/orthotope.mli: Pqdb_ast Pqdb_numeric
