(** Abstract approximable values — the generalization Section 5 claims.

    The predicate-approximation machinery only needs, per value, a way to
    {e refine} the estimate and an error bound [δᵢ(ε)] as a function of the
    relative width ε ("the applicability of the results of this section is
    not restricted to approximate values obtained by the Karp-Luby algorithm
    … but may conceivably extend to areas such as online aggregation").
    This module packages that interface and provides three instances:

    - {!of_karp_luby}: tuple-confidence values backed by the incremental
      Karp-Luby estimator (the paper's instance);
    - {!of_sampler}: the mean of a finite population estimated by sampling
      with replacement, with a Hoeffding bound — the online-aggregation
      instance.  Hoeffding bounds absolute error, so a positive lower bound
      on the true mean converts it to the relative regime Figure 3 needs:
      [δ(ε) = 2·exp(−2·n·(ε·lb)²/range²)];
    - {!constant}: an exactly-known value (zero error). *)

open Pqdb_numeric

type t

val refine : Rng.t -> t -> unit
(** One refinement round (the instance picks its natural batch: [|F|]
    estimator calls for Karp-Luby, one batch of draws for the sampler). *)

val refine_by : Rng.t -> t -> int -> unit
(** Exactly [n] elementary refinement steps. *)

val estimate : t -> float
val steps : t -> int
(** Elementary refinement steps performed so far. *)

val delta_bound : t -> eps:float -> float
(** [δᵢ(ε)] given the refinement so far; 1 before any step, 0 for exactly
    known values. *)

val is_exact : t -> bool

val of_karp_luby : Pqdb_montecarlo.Estimator.t -> t
val constant : float -> t

val of_sampler :
  ?batch:int -> lower_bound:float -> values:float array -> unit -> t
(** Mean of [values] by uniform sampling with replacement.  [lower_bound]
    must be a positive lower bound on the true mean (it calibrates the
    relative-error bound); [batch] is the draws per round (default 16).
    @raise Invalid_argument on an empty population, a non-positive lower
    bound, or a zero-width range (use {!constant}). *)
