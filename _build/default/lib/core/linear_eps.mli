(** The closed-form maximal ε for linear inequalities — Theorem 5.2.

    Given a predicate [Σ aᵢxᵢ ≥ b] satisfied at the approximated point
    [(p̂₁, …, p̂ₖ)], the largest ε such that the whole relative orthotope
    [Π\[p̂ᵢ/(1+ε), p̂ᵢ/(1−ε)\]] satisfies the predicate is

    - [ε = α/β] when [b = 0], and
    - otherwise the root of [(β ± √(β² − 4b(α−b)))/(2b)] lying in [\[0, 1)]
      (the paper says "the larger root", which is an erratum: when every
      [aᵢp̂ᵢ] shares one sign the larger root is the spurious [ε = 1] — the
      feasibility of the orthotope is monotone in ε, so the unique root below
      1, or unboundedness, is the right answer),

    where [α = Σ aᵢp̂ᵢ] and [β = Σ |aᵢp̂ᵢ|].  A result of 0 signals that the
    point lies on the separating hyperplane (Remark 5.3); results ≥ 1 are
    clamped just below 1 since Lemma 5.1 requires [ε < 1]. *)

type linear = { coeffs : float array; constant : float }
(** The affine form [Σ coeffs.(i)·xᵢ + constant]. *)

val eps_max : float
(** The clamp value just below 1 (Remark 5.3). *)

val of_expr : arity:int -> Pqdb_ast.Apred.expr -> linear option
(** Extract an affine form from an expression, if it is affine: variables,
    constants, +, -, unary negation, multiplication/division where one side
    is variable-free.  [None] for genuinely non-linear expressions. *)

val eval : linear -> float array -> float

val theorem_5_2 : linear -> float array -> float
(** [theorem_5_2 l p̂] is the maximal ε for the inequality [l(x) ≥ 0],
    {e assuming} [l(p̂) ≥ 0] (callers orient the inequality first).  Returns
    0 on the hyperplane, {!eps_max} when the inequality is invariant on every
    relative orthotope around [p̂] (all effective coefficients [aᵢp̂ᵢ]
    vanish). *)

val atom_epsilon :
  Pqdb_ast.Apred.comparison ->
  Pqdb_ast.Apred.expr ->
  Pqdb_ast.Apred.expr ->
  float array ->
  float option
(** Maximal homogeneity ε for one comparison atom {e at its current truth
    value} at the point: a true atom's ε bounds the region where it stays
    true; a false atom's where it stays false.  Equality atoms at points that
    satisfy them yield 0 (they cannot be approximated, Example 5.7).
    [None] when either side fails linear extraction. *)
