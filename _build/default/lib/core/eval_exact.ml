open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua

exception Unsupported of string

let conf_urelation w u =
  if Schema.mem (Urelation.schema u) "P" then
    raise
      (Unsupported "conf: the input already has a P column; rename it first");
  let confs = Confidence.all_confidences w u in
  let out_schema =
    Schema.of_list (Schema.attributes (Urelation.schema u) @ [ "P" ])
  in
  Urelation.make out_schema
    (List.map
       (fun (t, p) ->
         (Assignment.empty, Tuple.concat t (Tuple.of_list [ Value.Rat p ])))
       confs)

(* Structurally identical subexpressions denote the *same* relation (the
   paper's examples bind intermediate results by name and reuse them), so
   evaluation memoizes on the printed form of the subquery.  This is what
   makes repair-key idempotent across shared subtrees: both occurrences of S
   in Example 2.2's T see the same random variables. *)
let rec eval_memo cache udb (q : Ua.t) =
  let key = Format.asprintf "%a" Ua.pp q in
  match Hashtbl.find_opt cache key with
  | Some u -> u
  | None ->
      let u = eval_raw cache udb q in
      Hashtbl.replace cache key u;
      u

and eval_raw cache udb (q : Ua.t) =
  let eval = eval_memo cache in
  let w = Udb.wtable udb in
  match q with
  | Ua.Table name -> begin
      match Udb.find udb name with
      | u -> u
      | exception Not_found -> raise (Unsupported ("unknown table " ^ name))
    end
  | Ua.Lit rel -> Urelation.of_relation rel
  | Ua.Select (p, q) -> Translate.select p (eval udb q)
  | Ua.Project (cols, q) -> Translate.project cols (eval udb q)
  | Ua.Rename (m, q) -> Translate.rename m (eval udb q)
  | Ua.Product (a, b) -> Translate.product (eval udb a) (eval udb b)
  | Ua.Join (a, b) -> Translate.join (eval udb a) (eval udb b)
  | Ua.Union (a, b) -> Translate.union (eval udb a) (eval udb b)
  | Ua.Diff (a, b) -> begin
      let ua = eval udb a and ub = eval udb b in
      match Translate.diff_complete ua ub with
      | u -> u
      | exception Invalid_argument _ ->
          raise
            (Unsupported
               "difference is only supported on complete relations (use -c)")
    end
  | Ua.Conf q | Ua.ApproxConf (_, q) -> conf_urelation w (eval udb q)
  | Ua.RepairKey { key; weight; query } -> begin
      let u = eval udb query in
      match Translate.repair_key w ~key ~weight u with
      | u -> u
      | exception Invalid_argument msg -> raise (Unsupported msg)
    end
  | Ua.Poss q -> Urelation.of_relation (Translate.poss (eval udb q))
  | Ua.Cert q ->
      let u = eval udb q in
      let certain =
        List.filter_map
          (fun (t, p) -> if Rational.equal p Rational.one then Some t else None)
          (Confidence.all_confidences w u)
      in
      Urelation.of_relation (Relation.of_list (Urelation.schema u) certain)
  | Ua.ApproxSelect _ -> eval udb (Ua.desugar_sigma_hat q)

let eval udb q = eval_memo (Hashtbl.create 64) udb q

let eval_relation udb q =
  let u = eval udb q in
  if Urelation.is_complete_rep u then Urelation.to_relation u
  else raise (Unsupported "result is uncertain; use eval or confidences")

let confidences udb q =
  Confidence.all_confidences (Udb.wtable udb) (eval udb q)
