(** Top-k tuples by confidence via multisimulation.

    The paper's introduction cites Ré, Dalvi and Suciu's top-k evaluation on
    probabilistic data [16] as one of the approximation lines it
    generalizes.  This module implements the interval-pruning idea on our
    Karp-Luby estimators: every candidate keeps a confidence interval
    [p̂/(1+ε), p̂/(1−ε)] from the Chernoff bound at its current trial count;
    only candidates whose intervals straddle the k-th boundary are refined
    further, so clearly-in and clearly-out tuples stop sampling early.

    Like predicate approximation, ranking has singularities: ties at the
    boundary cannot be separated, so refinement stops at the relative floor
    [eps0] and the result is flagged uncertified. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

type result = {
  ranked : (Tuple.t * float) list;
      (** the top-k tuples with their final estimates, best first *)
  certified : bool;
      (** true when every selected tuple's lower bound clears every rejected
          tuple's upper bound (each bound valid with probability
          [1 − delta/n]) *)
  estimator_calls : int;
  rounds : int;
}

val run :
  ?eps0:float ->
  ?max_rounds:int ->
  rng:Rng.t ->
  delta:float ->
  k:int ->
  (Tuple.t * Pqdb_montecarlo.Estimator.t) list ->
  result
(** Rank the candidates and return the [k] most probable.  [delta] is split
    evenly across candidates for the per-tuple interval bounds.
    @raise Invalid_argument when [k <= 0] or there are no candidates. *)

val query :
  ?eps0:float ->
  ?max_rounds:int ->
  rng:Rng.t ->
  delta:float ->
  k:int ->
  Udb.t ->
  Pqdb_ast.Ua.t ->
  result
(** Convenience: evaluate the (positive) query exactly on the representation
    level, then rank its possible tuples by confidence.  Mutates the W table
    like {!Eval_exact.eval}. *)
