(** Exact UA evaluation over U-relational databases.

    Positive operations use the parsimonious translation
    ({!Pqdb_urel.Translate}, Proposition 3.3); [conf] uses exact Shannon
    expansion ({!Pqdb_urel.Confidence} — the #P part of Theorem 3.4);
    [repair-key] extends the shared W table; σ̂ and [conf_{ε,δ}] are
    interpreted exactly (σ̂ via its defining composite).  The result is a
    U-relation over the database's W table. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

exception Unsupported of string
(** Raised on general difference over uncertain arguments (only [−c] is in
    the fragment) and on repair-key over non-complete inputs. *)

val eval : Udb.t -> Pqdb_ast.Ua.t -> Urelation.t
(** Note: mutates the database's W table when the query contains
    [repair-key]. *)

val eval_relation : Udb.t -> Pqdb_ast.Ua.t -> Relation.t
(** Evaluate and forget conditions; meant for queries whose result is
    complete (e.g. ending in [conf]).
    @raise Unsupported when the result still carries conditions. *)

val confidences : Udb.t -> Pqdb_ast.Ua.t -> (Tuple.t * Rational.t) list
(** Exact confidence of every possible result tuple ([conf] applied on
    top). *)
