(** Closed-form error bounds for whole-query approximation
    (Proposition 6.6 / Theorem 6.7).

    With σ̂ nesting depth [d], maximum conf-argument width / arity [k],
    active-domain size [n], round budget [l] and floor [ε₀], a tuple without
    singularities in its provenance errs with probability at most
    [k·d·n^(k·d)·δ′(ε₀, l)], where [δ′(ε, l) = 2·exp(−l·ε²/3)]. *)

val proposition_6_6 :
  k:int -> d:int -> n:int -> eps0:float -> rounds:int -> float
(** The bound above (capped at 1). *)

val recurrence : k:int -> n:int -> d:int -> per_level:float -> float
(** The solved recurrence [μ_d = k·x + n^k·μ_{d-1}] with [μ_0 = 0] and
    [x = per_level]: [k·x·Σ_{i<d} n^(k·i)] (capped at 1).  Exposed so tests
    can confirm {!proposition_6_6} dominates it. *)

val rounds_for_guarantee :
  k:int -> d:int -> n:int -> eps0:float -> delta:float -> int
(** Least [l] making {!proposition_6_6} at most [delta] — the [l₀] of
    Theorem 6.7 (alias of {!Pqdb_numeric.Stats.theorem_6_7_rounds}). *)
