module Apred = Pqdb_ast.Apred

type linear = { coeffs : float array; constant : float }

let eps_max = 1. -. 1e-9

let zero_linear arity = { coeffs = Array.make arity 0.; constant = 0. }

let is_constant l = Array.for_all (fun a -> a = 0.) l.coeffs

let map2_linear f a b =
  {
    coeffs = Array.init (Array.length a.coeffs) (fun i -> f a.coeffs.(i) b.coeffs.(i));
    constant = f a.constant b.constant;
  }

let scale s l =
  { coeffs = Array.map (fun a -> s *. a) l.coeffs; constant = s *. l.constant }

let rec of_expr ~arity (e : Apred.expr) =
  match e with
  | Apred.Var i ->
      let l = zero_linear arity in
      l.coeffs.(i) <- 1.;
      Some l
  | Apred.Const c -> Some { (zero_linear arity) with constant = c }
  | Apred.Add (a, b) -> begin
      match (of_expr ~arity a, of_expr ~arity b) with
      | Some la, Some lb -> Some (map2_linear ( +. ) la lb)
      | _ -> None
    end
  | Apred.Sub (a, b) -> begin
      match (of_expr ~arity a, of_expr ~arity b) with
      | Some la, Some lb -> Some (map2_linear ( -. ) la lb)
      | _ -> None
    end
  | Apred.Neg a ->
      Option.map (scale (-1.)) (of_expr ~arity a)
  | Apred.Mul (a, b) -> begin
      match (of_expr ~arity a, of_expr ~arity b) with
      | Some la, Some lb when is_constant la -> Some (scale la.constant lb)
      | Some la, Some lb when is_constant lb -> Some (scale lb.constant la)
      | _ -> None
    end
  | Apred.Div (a, b) -> begin
      match (of_expr ~arity a, of_expr ~arity b) with
      | Some la, Some lb when is_constant lb && lb.constant <> 0. ->
          Some (scale (1. /. lb.constant) la)
      | _ -> None
    end

let eval l point =
  let acc = ref l.constant in
  Array.iteri (fun i a -> acc := !acc +. (a *. point.(i))) l.coeffs;
  !acc

let clamp eps =
  if Float.is_nan eps then 0.
  else if eps < 0. then 0.
  else if eps > eps_max then eps_max
  else eps

(* l(x) >= 0, i.e. Σ aᵢxᵢ >= b with b = -constant.

   The minimum of Σ aᵢxᵢ over the relative orthotope
   Π[p̂ᵢ/(1+ε), p̂ᵢ/(1−ε)] is Σ₊ tᵢ/(1+ε) + Σ₋ tᵢ/(1−ε) with tᵢ = aᵢp̂ᵢ,
   which is strictly decreasing in ε, so feasibility (min ≥ b) is monotone
   and the maximal ε is the unique root in [0, 1) of the touching equation
   α − βε = b(1 − ε²) — the quadratic of Theorem 5.2 — or unbounded (clamped
   to eps_max) when that equation has no root below 1.

   Note an erratum in the paper here: it prescribes the *larger* quadratic
   root, but when all tᵢ share one sign (α = β) the larger root is the
   spurious ε = 1 while the true touching point is the smaller root
   (e.g. x ≥ 0.4 at p̂ = 0.5: roots {0.25, 1}, and ε must be 0.25). *)
let theorem_5_2 l point =
  let b = -.l.constant in
  let alpha = ref 0. and beta = ref 0. in
  Array.iteri
    (fun i a ->
      let t = a *. point.(i) in
      alpha := !alpha +. t;
      beta := !beta +. Float.abs t)
    l.coeffs;
  let alpha = !alpha and beta = !beta in
  if beta = 0. then
    (* No effective coefficient: the predicate value cannot change inside any
       relative orthotope around the point. *)
    if 0. >= b then eps_max else 0.
  else if alpha < b then 0. (* the inequality does not even hold at p̂ *)
  else if b = 0. then clamp (alpha /. beta)
  else begin
    let disc = Float.max 0. ((beta *. beta) -. (4. *. b *. (alpha -. b))) in
    let root = sqrt disc in
    let candidates =
      List.filter
        (fun e -> e >= 0. && e < 1.)
        [ (beta -. root) /. (2. *. b); (beta +. root) /. (2. *. b) ]
    in
    match candidates with
    | [] -> eps_max (* feasible on every admissible orthotope *)
    | roots -> clamp (List.fold_left Float.min 1. roots)
  end

(* Orient the comparison so that we always hand Theorem 5.2 an inequality
   that is true at the point, measuring how far the atom's current truth
   value extends. *)
let atom_epsilon cmp lhs rhs point =
  let arity = Array.length point in
  match (of_expr ~arity lhs, of_expr ~arity rhs) with
  | Some ll, Some lr ->
      let l = map2_linear ( -. ) ll lr in
      (* l(x) = lhs - rhs *)
      let v = eval l point in
      let ge () = theorem_5_2 l point in
      let le () = theorem_5_2 (scale (-1.) l) point in
      let eps =
        match (cmp, v >= 0.) with
        | (Apred.Ge | Apred.Gt), true -> ge ()
        | (Apred.Ge | Apred.Gt), false -> le ()
        | (Apred.Le | Apred.Lt), true -> le ()
        | (Apred.Le | Apred.Lt), false -> ge ()
        | Apred.Eq, _ ->
            if v = 0. then Float.min (ge ()) (le ())
            else if v > 0. then ge ()
            else le ()
        | Apred.Neq, _ ->
            if v = 0. then 0. (* equality holds: a singularity for Neq *)
            else if v > 0. then ge ()
            else le ()
      in
      (* For Eq at a point off the hyperplane the atom is false and stays
         false while the sign of l is preserved — which is what ge/le
         measure.  For Eq on the hyperplane both half-space radii are 0. *)
      Some eps
  | _ -> None
