(** ε₀-singularities — Definition 5.6.

    A true point [(p₁, …, pₖ)] is an ε₀-singularity of [φ] when some point
    [x] with [|pᵢ − xᵢ| ≤ ε₀·pᵢ] for all [i] disagrees with it on [φ]; at
    such points no amount of sampling can decide the predicate with bounded
    error (Example 5.7: tuple certainty [conf = 1] can never be confirmed).

    Detecting singularity exactly is easy for linear predicates (distance to
    each atom's hyperplane in the weighted ∞-norm) and undecidable-ish in
    general, so the API exposes a sound certificate and a conservative
    test. *)

val definitely_singular :
  ?samples:int ->
  rng:Pqdb_numeric.Rng.t ->
  eps0:float ->
  Pqdb_ast.Apred.t ->
  float array ->
  bool
(** Sound "yes": some corner or sampled interior point of the absolute box
    [Π\[pᵢ(1−ε₀), pᵢ(1+ε₀)\]] disagrees with the center.  A [false] answer
    is inconclusive for predicates outside the Theorem 5.5 fragment. *)

val atom_boundary_in_box :
  eps0:float -> Linear_eps.linear -> float array -> bool
(** Does the hyperplane [l(x) = 0] meet the absolute ε₀-box around the point?
    Exactly: [|l(p)| ≤ ε₀·Σ|aᵢpᵢ|]. *)

val possibly_singular : eps0:float -> Pqdb_ast.Apred.t -> float array -> bool
(** Conservative "maybe": true when any linear atom's boundary crosses the
    box (or when an atom is non-linear and its corner points disagree).
    [false] guarantees the point is not an ε₀-singularity for predicates all
    of whose atoms are linear. *)
