(** Corner-point reasoning on relative orthotopes — Theorem 5.5.

    For a predicate [f(x₁, …, xₖ) ≥ 0] built from constants, the four
    arithmetic operations and {e at most one occurrence of each variable},
    fixing all variables but one makes the atom monotone in the remaining
    variable; hence if all [2ᵏ] corner points of the orthotope agree with the
    center on the predicate, every point of the orthotope does.  The maximal
    ε is then found by binary search (feasibility is monotone in ε because
    the orthotopes are nested). *)

val corners_agree : Pqdb_ast.Apred.t -> point:float array -> eps:float -> bool
(** Do all corners of [Π\[p̂ᵢ/(1+ε), p̂ᵢ/(1−ε)\]] evaluate like the center?
    Corners whose evaluation is not finite enough to decide (NaN from a
    division) count as disagreement. *)

val epsilon_search :
  ?iterations:int -> ?eps_max:float -> Pqdb_ast.Apred.t -> float array -> float
(** Largest ε (within [iterations] bisection steps, default 40) whose corner
    points all agree with the center.  Sound as a homogeneity radius only for
    single-occurrence predicates (Theorem 5.5) — callers check
    {!Pqdb_ast.Apred.single_occurrence} or split duplicates first. *)

val homogeneous_on_samples :
  Pqdb_numeric.Rng.t ->
  Pqdb_ast.Apred.t ->
  point:float array ->
  eps:float ->
  samples:int ->
  bool
(** Monte-Carlo check that random interior points agree with the center —
    the property-test oracle for Theorem 5.5. *)
