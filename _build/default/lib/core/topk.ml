open Pqdb_relational
open Pqdb_urel
module Estimator = Pqdb_montecarlo.Estimator
module Dnf = Pqdb_montecarlo.Dnf

type result = {
  ranked : (Tuple.t * float) list;
  certified : bool;
  estimator_calls : int;
  rounds : int;
}

type candidate = {
  tuple : Tuple.t;
  est : Estimator.t;
  mutable lo : float;
  mutable hi : float;
}

(* Estimators over single-clause DNFs are exact (p = M); they need no
   sampling and must not be refined (their intervals are points). *)
let is_exact_candidate c =
  Estimator.is_degenerate c.est
  || Dnf.clause_count (Estimator.dnf c.est) = 1

let current_value c =
  if Estimator.is_degenerate c.est then Estimator.estimate c.est
  else if Dnf.clause_count (Estimator.dnf c.est) = 1 then
    Dnf.total_weight (Estimator.dnf c.est)
  else Estimator.estimate c.est

(* Relative half-width from the Chernoff bound at the current trial count:
   the smallest eps with delta_bound(eps) <= delta_t, i.e.
   eps = sqrt(3 |F| ln(2/delta_t) / m). *)
let eps_at est ~delta_t =
  let m = Estimator.trials est in
  if m = 0 then 1.
  else begin
    let clauses = Dnf.clause_count (Estimator.dnf est) in
    Float.min 1.
      (sqrt (3. *. float_of_int clauses *. log (2. /. delta_t) /. float_of_int m))
  end

let update_interval ~delta_t c =
  if Estimator.is_degenerate c.est then begin
    let v = Estimator.estimate c.est in
    c.lo <- v;
    c.hi <- v
  end
  else if Dnf.clause_count (Estimator.dnf c.est) = 1 then begin
    (* A single-clause DNF is exact: the estimator always fires, so
       p = M = p_f with no sampling error. *)
    let v = Dnf.total_weight (Estimator.dnf c.est) in
    c.lo <- v;
    c.hi <- v
  end
  else begin
    let p = Estimator.estimate c.est in
    let eps = eps_at c.est ~delta_t in
    if eps >= 1. then begin
      c.lo <- 0.;
      c.hi <- 1.
    end
    else begin
      c.lo <- Float.max 0. (p /. (1. +. eps));
      c.hi <- Float.min 1. (p /. (1. -. eps))
    end
  end

let run ?(eps0 = 0.01) ?max_rounds ~rng ~delta ~k candidates =
  if k <= 0 then invalid_arg "Topk.run: k must be positive";
  if candidates = [] then invalid_arg "Topk.run: no candidates";
  let cands =
    Array.of_list
      (List.map (fun (tuple, est) -> { tuple; est; lo = 0.; hi = 1. }) candidates)
  in
  let n = Array.length cands in
  let delta_t = delta /. float_of_int n in
  let k = min k n in
  let rounds = ref 0 in
  let rec loop () =
    Array.iter (update_interval ~delta_t) cands;
    (* Order by estimate; the k-th and (k+1)-th define the boundary. *)
    let order = Array.copy cands in
    Array.sort (fun a b -> compare (current_value b) (current_value a)) order;
    if k >= n then (order, true)
    else begin
      let selected = Array.sub order 0 k in
      let rejected = Array.sub order k (n - k) in
      let min_selected_lo =
        Array.fold_left (fun acc c -> Float.min acc c.lo) 1. selected
      in
      let max_rejected_hi =
        Array.fold_left (fun acc c -> Float.max acc c.hi) 0. rejected
      in
      if min_selected_lo >= max_rejected_hi then (order, true)
      else begin
        (* Refine only the candidates whose interval crosses the contested
           band. *)
        let contested c = c.hi >= min_selected_lo && c.lo <= max_rejected_hi in
        let refinable =
          Array.to_list cands
          |> List.filter (fun c ->
                 contested c
                 && (not (is_exact_candidate c))
                 && eps_at c.est ~delta_t > eps0)
        in
        match refinable with
        | [] -> (order, false) (* ties at the eps0 floor: uncertified *)
        | _ ->
            List.iter (fun c -> Estimator.step_round rng c.est) refinable;
            incr rounds;
            (match max_rounds with
            | Some limit when !rounds >= limit -> (order, false)
            | _ -> loop ())
      end
    end
  in
  let order, certified = loop () in
  let calls =
    Array.fold_left (fun acc c -> acc + Estimator.trials c.est) 0 cands
  in
  {
    ranked =
      List.map
        (fun c -> (c.tuple, current_value c))
        (Array.to_list (Array.sub order 0 k));
    certified;
    estimator_calls = calls;
    rounds = !rounds;
  }

let query ?eps0 ?max_rounds ~rng ~delta ~k udb q =
  let u = Eval_exact.eval udb q in
  let w = Udb.wtable udb in
  let candidates =
    List.map
      (fun t ->
        (t, Estimator.create (Dnf.prepare w (Urelation.clauses_for u t))))
      (Urelation.possible_tuples u)
  in
  run ?eps0 ?max_rounds ~rng ~delta ~k candidates
