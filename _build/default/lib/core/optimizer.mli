(** A logical optimizer for the positive fragment.

    Classical equivalences applied to fixpoint:
    - selection splitting ([σ_{p∧q} = σ_p ∘ σ_q]) and merging of trivial
      conditions;
    - selection push-down through projection (substituting computed
      columns), renaming (renaming the condition), union (distributing),
      product and natural join (into whichever side covers the condition's
      attributes);
    - selection push-down through [conf]/[conf_{ε,δ}] when the condition
      does not touch the probability column — this commutes because a
      tuple's confidence does not depend on the other tuples, and it is the
      big win: it shrinks the #P-hard part of the query;
    - projection fusion and elimination of identity projections/renamings.

    Selections are {e not} pushed through [repair-key] or σ̂: under the
    shared-subexpression semantics (structurally identical subqueries denote
    the same relation) such a rewrite would split a shared repair into
    independent ones and change the distribution.

    All rewrites preserve the exact semantics; the integration tests verify
    this on random queries against both evaluators, and experiment E13
    measures the effect. *)

val optimize :
  lookup:(string -> string list option) -> Pqdb_ast.Ua.t -> Pqdb_ast.Ua.t
(** Rewrite to fixpoint (bounded).  [lookup] provides base-table schemas for
    attribute-coverage decisions; subqueries whose schema cannot be inferred
    are left untouched. *)

val optimize_for : Pqdb_urel.Udb.t -> Pqdb_ast.Ua.t -> Pqdb_ast.Ua.t
(** {!optimize} with the lookup taken from a database. *)
