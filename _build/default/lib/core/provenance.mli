(** Data provenance — the ≺ relation of Section 6, computed as data.

    [(t, Q) ≺ (r, R)] holds when changing the membership of [r] in [R] can
    change the membership of [t] in the result of [Q]; Lemma 6.4 bounds a
    result tuple's error by summing over the tuples of {e maximal
    σ̂-subexpressions} in its provenance.  This module evaluates a query
    exactly and records, for every result tuple, the set of {e leaves} it
    transitively depends on, where a leaf is either a base-table tuple or an
    output tuple of a maximal σ̂ subexpression (σ̂ is opaque to ≺, exactly as
    in the paper).

    The per-operator rules follow the paper: σ and ρ preserve, π maps along
    the projection, ∪ unions both occurrences, × (and ⋈) unions the two
    components.  [conf]/[poss]/[cert] map an output row to the input rows
    with the same data part (membership in their results is membership in
    poss of the input). *)

open Pqdb_relational
open Pqdb_urel

type leaf =
  | Base of string * Tuple.t  (** base table name, tuple *)
  | Sigma_hat of int * Tuple.t
      (** pre-order index of the (maximal) σ̂ node, output tuple *)

val pp_leaf : Format.formatter -> leaf -> unit
val leaf_compare : leaf -> leaf -> int

type t

val compute : Udb.t -> Pqdb_ast.Ua.t -> t
(** Exact evaluation with provenance recording.  Mutates the W table like
    {!Eval_exact.eval}.
    @raise Eval_exact.Unsupported as the exact evaluator. *)

val result : t -> Urelation.t
(** The query result (identical to {!Eval_exact.eval}). *)

val leaves : t -> Tuple.t -> leaf list
(** Sorted leaf dependencies of a result data tuple (empty for unknown
    tuples). *)

val sigma_hat_leaves : t -> Tuple.t -> (int * Tuple.t) list
(** Just the σ̂ leaves — the summation domain of Lemma 6.4(1). *)

val sigma_hat_count : t -> int
(** Number of maximal σ̂ subexpressions encountered. *)
