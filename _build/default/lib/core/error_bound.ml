open Pqdb_numeric

let proposition_6_6 ~k ~d ~n ~eps0 ~rounds =
  let kf = float_of_int k and df = float_of_int d and nf = float_of_int n in
  let log_bound =
    log kf +. log df
    +. (kf *. df *. log nf)
    +. log (Stats.delta' ~eps:eps0 ~rounds)
  in
  Float.min 1. (exp log_bound)

let recurrence ~k ~n ~d ~per_level =
  let nk = float_of_int n ** float_of_int k in
  let rec go acc power i =
    if i >= d then acc else go (acc +. power) (power *. nk) (i + 1)
  in
  Float.min 1. (float_of_int k *. per_level *. go 0. 1. 0)

let rounds_for_guarantee ~k ~d ~n ~eps0 ~delta =
  Stats.theorem_6_7_rounds ~eps0 ~delta ~k ~d ~n
