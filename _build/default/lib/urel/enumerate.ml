open Pqdb_numeric
open Pqdb_relational
open Pqdb_worlds

let total_assignments w vars =
  let rec go bound prob = function
    | [] ->
        let table = bound in
        let lookup v =
          match List.assoc_opt v table with
          | Some x -> x
          | None -> invalid_arg "Enumerate: variable not in scope"
        in
        [ (lookup, prob) ]
    | v :: rest ->
        let n = Wtable.domain_size w v in
        List.concat
          (List.init n (fun x ->
               go ((v, x) :: bound) (Rational.mul prob (Wtable.prob w v x)) rest))
  in
  go [] Rational.one vars

let world_of_assignment lookup u =
  let rows =
    List.filter (fun (f, _) -> Assignment.extended_by lookup f) (Urelation.rows u)
  in
  Relation.of_list (Urelation.schema u) (List.map snd rows)

let decode w u =
  let vars = Urelation.variables u in
  let assignments = total_assignments w vars in
  Pdb.normalize_prel
    (List.map
       (fun (lookup, p) -> (world_of_assignment lookup u, p))
       assignments)

let to_pdb udb =
  let w = Udb.wtable udb in
  let vars = Wtable.vars w in
  let assignments = total_assignments w vars in
  let worlds =
    List.map
      (fun (lookup, p) ->
        let rels =
          List.map
            (fun name -> (name, world_of_assignment lookup (Udb.find udb name)))
            (Udb.names udb)
        in
        (rels, p))
      assignments
  in
  let complete = List.filter (Udb.is_complete udb) (Udb.names udb) in
  Pdb.of_worlds ~complete worlds

let of_pdb pdb =
  let udb = Udb.create () in
  let worlds = Pdb.worlds pdb in
  match worlds with
  | [] -> udb
  | (first, _) :: _ ->
      let names = List.map fst first in
      let uncertain =
        List.filter (fun n -> not (Pdb.is_complete pdb n)) names
      in
      let selector =
        if uncertain = [] then None
        else
          Some
            (Wtable.add_var ~name:"world" (Udb.wtable udb)
               (List.map snd worlds))
      in
      List.iter
        (fun name ->
          if Pdb.is_complete pdb name then
            Udb.add_complete udb name (Pdb.find first name)
          else begin
            let var =
              match selector with Some v -> v | None -> assert false
            in
            let rows =
              List.concat
                (List.mapi
                   (fun i (world, _) ->
                     List.map
                       (fun t -> (Assignment.singleton var i, t))
                       (Relation.tuples (Pdb.find world name)))
                   worlds)
            in
            let schema = Relation.schema (Pdb.find first name) in
            Udb.add_urelation udb name (Urelation.make schema rows)
          end)
        names;
      udb
