(** World enumeration and conversions between the succinct (U-relational) and
    nonsuccinct (explicit worlds) representations.

    [decode] realizes the semantics of Section 3: each total assignment
    [f* : Var → Dom] identifies a possible world; a tuple is in the world
    when some of its representation rows is consistent with [f*].
    [of_pdb] witnesses Theorem 3.1 (completeness): any finite weighted world
    set is representable, using one fresh variable whose domain indexes the
    worlds.  Both directions are exponential-size in general — test/diagnostic
    machinery, not the query path. *)

open Pqdb_numeric
open Pqdb_worlds

val total_assignments :
  Wtable.t -> Wtable.var list -> ((Wtable.var -> int) * Rational.t) list
(** All total assignments of the listed variables with their weights. *)

val decode : Wtable.t -> Urelation.t -> Pdb.prel
(** The weighted set of possible relations represented by a U-relation
    (worlds merged by relation value). *)

val to_pdb : Udb.t -> Pdb.t
(** Explicit possible-worlds database equivalent to the U-relational
    database. *)

val of_pdb : Pdb.t -> Udb.t
(** Succinct-side image of an explicit database (Theorem 3.1).  Complete
    relations stay condition-free; uncertain relations are conditioned on a
    single world-selector variable. *)
