lib/urel/enumerate.ml: Assignment List Pdb Pqdb_numeric Pqdb_relational Pqdb_worlds Rational Relation Udb Urelation Wtable
