lib/urel/urelation.ml: Assignment Format List Pqdb_relational Relation Schema Set Tuple
