lib/urel/wtable.ml: Array Fun List Pqdb_numeric Pqdb_relational Rational Relation Value
