lib/urel/urelation.mli: Assignment Format Pqdb_relational Relation Schema Tuple Wtable
