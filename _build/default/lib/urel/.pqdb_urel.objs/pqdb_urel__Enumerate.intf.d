lib/urel/enumerate.mli: Pdb Pqdb_numeric Pqdb_worlds Rational Udb Urelation Wtable
