lib/urel/confidence.ml: Array Assignment Fun Hashtbl List Option Pqdb_numeric Rational String Urelation Wtable
