lib/urel/udb_io.mli: Udb
