lib/urel/assignment.ml: Array Format Hashtbl List Pqdb_numeric Printf Rational Stdlib String Wtable
