lib/urel/vertical.mli: Pqdb_numeric Pqdb_relational Rational Urelation Value Wtable
