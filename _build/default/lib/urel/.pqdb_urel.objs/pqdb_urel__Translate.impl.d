lib/urel/translate.ml: Algebra Assignment Expr Format Hashtbl List Pqdb_numeric Pqdb_relational Predicate Rational Relation Schema Tuple Urelation Value Wtable
