lib/urel/wtable.mli: Format Pqdb_numeric Pqdb_relational Rational Relation
