lib/urel/vertical.ml: Array Assignment List Pqdb_numeric Pqdb_relational Printf Rational Schema Tuple Urelation Value Wtable
