lib/urel/udb.mli: Format Pqdb_relational Relation Urelation Wtable
