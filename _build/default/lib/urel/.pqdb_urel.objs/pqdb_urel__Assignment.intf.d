lib/urel/assignment.mli: Format Pqdb_numeric Rational Wtable
