lib/urel/udb.ml: Format List Urelation Wtable
