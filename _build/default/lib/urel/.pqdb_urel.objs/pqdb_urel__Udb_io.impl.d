lib/urel/udb_io.ml: Assignment Csv Filename Hashtbl List Pqdb_numeric Pqdb_relational Printf Rational Relation Schema String Sys Tuple Udb Urelation Value Wtable
