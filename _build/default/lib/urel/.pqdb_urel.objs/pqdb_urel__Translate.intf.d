lib/urel/translate.mli: Expr Pqdb_relational Predicate Relation Urelation Wtable
