lib/urel/confidence.mli: Assignment Pqdb_numeric Pqdb_relational Rational Urelation Wtable
