(** The parsimonious translation of positive UA operations to operations on
    U-relational representations (Section 3, after Theorem 3.1).

    Every function here is polynomial-time in the size of the representation
    (Proposition 3.3); only confidence computation (in {!Confidence}) is
    hard.  [repair-key] extends the W table with fresh variables, one per
    key group — except that single-alternative groups are elided (their tuple
    is certain, mirroring the 2headed rows of Figure 1(b) whose [D] columns
    are empty). *)

open Pqdb_relational

val select : Predicate.t -> Urelation.t -> Urelation.t
(** [σ_φ(U_R)]: filter rows by the data tuple. *)

val project : (Expr.t * string) list -> Urelation.t -> Urelation.t
(** [π(U_R)]: project the data columns, keep conditions, deduplicate. *)

val project_attrs : string list -> Urelation.t -> Urelation.t

val rename : (string * string) list -> Urelation.t -> Urelation.t

val product : Urelation.t -> Urelation.t -> Urelation.t
(** [U_R ⋈_{D consistent} U_S] with condition union — pairs with inconsistent
    conditions are dropped. *)

val join : Urelation.t -> Urelation.t -> Urelation.t
(** Natural join on shared data attributes, with condition union. *)

val union : Urelation.t -> Urelation.t -> Urelation.t

val diff_complete : Urelation.t -> Urelation.t -> Urelation.t
(** [−c]: difference of two complete-by-construction representations.
    @raise Invalid_argument when either argument has nonempty conditions —
    general difference is outside the positive fragment (Theorem 3.4 bounds
    would not apply). *)

val poss : Urelation.t -> Relation.t
(** Possible tuples, as a complete relation. *)

val repair_key :
  Wtable.t -> key:string list -> weight:string -> Urelation.t -> Urelation.t
(** [repair-key_{Ā@B}]: requires a complete representation (Definition 2.1
    applies repair-key to complete relations).  Introduces one fresh W
    variable per [Ā]-group with more than one alternative; probabilities are
    the normalized weights.  The result keeps the input schema.
    @raise Invalid_argument on a non-complete input or non-positive
    weights. *)
