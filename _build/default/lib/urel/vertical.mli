(** Attribute-level uncertainty via vertical decomposition.

    Section 3 notes (citing the ICDE'08 paper) that attribute-level
    uncertainty can be realized succinctly by vertical decompositioning
    without additional cost: instead of one U-relation whose rows enumerate
    the cross product of all attribute alternatives (exponential in the
    number of independently-uncertain attribute groups), store one component
    U-relation per group, joined on a shared tuple identifier, with each
    component carrying its own condition column.

    This module builds such decompositions from attribute-alternative
    specifications, reports the representation-size gap, and recombines the
    components into a flat U-relation (the recombination is the potentially
    exponential step — queries should push work into the components). *)

open Pqdb_numeric
open Pqdb_relational

type row_spec = (Value.t * Rational.t) list list
(** One alternatives list per attribute of the row, each a weighted choice
    (probabilities must sum to 1 per attribute; a singleton list means the
    attribute is certain). *)

type t

val build :
  Wtable.t -> tid:string -> attrs:string list -> rows:row_spec list -> t
(** Construct the decomposition, creating one W variable per uncertain
    attribute per row.  [tid] is the name of the synthetic tuple-id column
    (must not clash with [attrs]).
    @raise Invalid_argument on arity mismatches or invalid distributions. *)

val components : t -> (string * Urelation.t) list
(** One component per attribute, named after it; schema [(tid, attr)]. *)

val component_size : t -> int
(** Total representation rows across components — linear in
    rows × attrs × alternatives. *)

val expanded : t -> Urelation.t
(** The equivalent flat U-relation over [attrs] (tuple ids dropped):
    the cross product of alternatives per row — exponential in the number of
    uncertain attributes per row. *)

val expanded_size : t -> int
(** Representation rows of {!expanded} (computed without materializing). *)

val tuple_count : t -> int
