(** Exact confidence computation — the #P-hard operation of Theorem 3.4.

    The confidence of tuple [t̄] is the weight of the DNF
    [F = {f | ⟨f, t̄⟩ ∈ U_R}]:
    [p = Σ_{f* : ∃f ∈ F, f* ∈ ω(f)} p_{f*}] (Section 4).

    Two exact algorithms are provided:
    - {!by_enumeration}: sum over all total assignments of the variables
      mentioned by [F] — Θ(Π |Dom Xᵢ|), the brute-force baseline;
    - {!by_shannon}: Shannon expansion (variable elimination) with
      memoisation on the residual clause set — the classical exact technique
      (still exponential in the worst case, as it must be), usually far
      faster on structured inputs.

    Both return exact rationals; {!exact} dispatches to Shannon. *)

open Pqdb_numeric

val by_enumeration : Wtable.t -> Assignment.t list -> Rational.t
val by_shannon : Wtable.t -> Assignment.t list -> Rational.t
val exact : Wtable.t -> Assignment.t list -> Rational.t

val by_decomposition : Wtable.t -> Assignment.t list -> Rational.t
(** Shannon expansion enhanced with {e independence partitioning} (the
    d-tree/ws-tree trick of the MayBMS lineage): when the clause set splits
    into components sharing no variables, their weights combine as
    [1 − Π(1 − pᵢ)] instead of branching — often exponentially faster on
    sparse DNFs, still exact. *)

val by_shannon_float : Wtable.t -> Assignment.t list -> float
(** Shannon expansion over machine floats: the fast-but-inexact variant
    ablated in experiment E15.  Not used by the exact query path. *)

val tuple_confidence :
  Wtable.t -> Urelation.t -> Pqdb_relational.Tuple.t -> Rational.t
(** Confidence of one possible tuple of a U-relation. *)

val all_confidences :
  Wtable.t -> Urelation.t ->
  (Pqdb_relational.Tuple.t * Rational.t) list
(** [conf(R)] as data: each possible tuple with its exact confidence. *)
