open Pqdb_numeric
open Pqdb_relational

type row_spec = (Value.t * Rational.t) list list

type row = {
  tid : int;
  (* Per attribute: the weighted alternatives and the W variable backing
     them (None when the attribute is certain). *)
  cells : ((Value.t * Rational.t) list * Wtable.var option) array;
}

type t = { tid_name : string; attrs : string list; rows : row list }

let build w ~tid ~attrs ~rows =
  if List.mem tid attrs then
    invalid_arg "Vertical.build: tid clashes with an attribute";
  let width = List.length attrs in
  let make_row i spec =
    if List.length spec <> width then
      invalid_arg "Vertical.build: row arity mismatch";
    let cells =
      Array.of_list
        (List.mapi
           (fun j alternatives ->
             match alternatives with
             | [] -> invalid_arg "Vertical.build: empty alternatives"
             | [ (_, p) ] ->
                 if not (Rational.equal p Rational.one) then
                   invalid_arg
                     "Vertical.build: single alternative must have weight 1";
                 (alternatives, None)
             | _ ->
                 let dist = List.map snd alternatives in
                 let name = Printf.sprintf "t%d.%s" i (List.nth attrs j) in
                 let var = Wtable.add_var ~name w dist in
                 (alternatives, Some var))
           spec)
    in
    { tid = i; cells }
  in
  { tid_name = tid; attrs; rows = List.mapi make_row rows }

let tuple_count t = List.length t.rows

let components t =
  List.mapi
    (fun j attr ->
      let schema = Schema.of_list [ t.tid_name; attr ] in
      let rows =
        List.concat_map
          (fun row ->
            let alternatives, var = row.cells.(j) in
            match var with
            | None ->
                let v = fst (List.hd alternatives) in
                [ (Assignment.empty, Tuple.of_list [ Value.Int row.tid; v ]) ]
            | Some x ->
                List.mapi
                  (fun k (v, _) ->
                    ( Assignment.singleton x k,
                      Tuple.of_list [ Value.Int row.tid; v ] ))
                  alternatives)
          t.rows
      in
      (attr, Urelation.make schema rows))
    t.attrs

let component_size t =
  List.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc (alternatives, _) -> acc + List.length alternatives)
        acc row.cells)
    0 t.rows

let expanded_size t =
  List.fold_left
    (fun acc row ->
      acc
      + Array.fold_left
          (fun prod (alternatives, _) -> prod * List.length alternatives)
          1 row.cells)
    0 t.rows

let expanded t =
  let schema = Schema.of_list t.attrs in
  let rows =
    List.concat_map
      (fun row ->
        (* Cross product of the alternatives of every attribute. *)
        Array.fold_left
          (fun acc (alternatives, var) ->
            List.concat_map
              (fun (cond, values) ->
                match var with
                | None -> [ (cond, fst (List.hd alternatives) :: values) ]
                | Some x ->
                    List.mapi
                      (fun k (v, _) ->
                        match
                          Assignment.union cond (Assignment.singleton x k)
                        with
                        | Some merged -> (merged, v :: values)
                        | None -> assert false)
                      alternatives)
              acc)
          [ (Assignment.empty, []) ]
          row.cells
        |> List.map (fun (cond, rev_values) ->
               (cond, Tuple.of_list (List.rev rev_values))))
      t.rows
  in
  Urelation.make schema rows
