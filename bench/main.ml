(* pqdb benchmark harness.

   Reproduces, as executable experiments, every theorem/algorithm/figure of
   Koch, "Approximating Predicates and Expressive Queries on Probabilistic
   Databases" (PODS 2008).  The paper has no empirical tables of its own —
   the experiments validate the *claimed shapes*: who wins, by what factor,
   where the walls are.  See DESIGN.md for the index and EXPERIMENTS.md for
   paper-vs-measured.

   Usage: dune exec bench/main.exe            (quick mode, ~1 minute)
          dune exec bench/main.exe -- --full  (larger sweeps)
          dune exec bench/main.exe -- E7 E8   (selected experiments only) *)

let experiments =
  [
    ("E1", Exp_representation.e1_coin_example);
    ("E2", Exp_representation.e2_positive_ra_scaling);
    ("E3", Exp_representation.e3_exact_vs_fpras);
    ("E4", Exp_representation.e4_fpras_convergence);
    ("E5", Exp_predicates.e5_linear_epsilon);
    ("E6", Exp_predicates.e6_corner_search);
    ("E7", Exp_predicates.e7_fig3_vs_naive);
    ("E8", Exp_predicates.e8_singularity_wall);
    ("E9", Exp_queries.e9_provenance_fanin);
    ("E10", Exp_queries.e10_query_doubling);
    ("E11", Exp_queries.e11_egd_rewriting);
    ("E12", Exp_queries.e12_nonsuccinct_conf);
    ("E13", Exp_ablations.e13_optimizer);
    ("E14", Exp_ablations.e14_batch_size);
    ("E15", Exp_ablations.e15_rational_vs_float);
    ("E16", Exp_ablations.e16_vertical);
    ("E17", Exp_ablations.e17_topk);
    ("E18", Exp_conditioning.run);
    ("E3c", fun ~quick:_ -> Micro.confidence_engine ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let skip_micro = List.mem "--no-micro" args in
  let selected =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  let quick = not full in
  let chosen =
    if selected = [] then experiments
    else
      List.filter (fun (id, _) -> List.mem id selected) experiments
  in
  if chosen = [] then begin
    prerr_endline "no matching experiments; known ids:";
    List.iter (fun (id, _) -> prerr_endline ("  " ^ id)) experiments;
    exit 1
  end;
  Printf.printf
    "pqdb experiment harness (%s mode; seed-deterministic)\n"
    (if quick then "quick" else "full");
  let t0 = Report.now_ns () in
  List.iter (fun (_, f) -> f ~quick) chosen;
  if selected = [] && not skip_micro then begin
    Micro.run ();
    Micro.confidence_engine ()
  end;
  Printf.printf "\ntotal wall time: %s\n"
    (Report.fmt_seconds ((Report.now_ns () -. t0) /. 1e9))
