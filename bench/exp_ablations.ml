(* Experiments E13-E15: ablations of the design choices DESIGN.md calls out —
   the logical optimizer, the Figure-3 batch size, and rational vs float
   Shannon expansion. *)

open Pqdb_relational
open Pqdb_urel
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Gen = Pqdb_workload.Gen
module Dnf = Pqdb_montecarlo.Dnf
module Estimator = Pqdb_montecarlo.Estimator

(* ------------------------------------------------------------------ *)
(* E13: the logical optimizer                                          *)
(* ------------------------------------------------------------------ *)

let e13_optimizer ~quick =
  Report.section "E13"
    "Ablation: selection push-down (esp. below conf) vs naive plans";
  let sizes = if quick then [ 40; 80; 160 ] else [ 40; 80; 160; 320 ] in
  let rows =
    List.map
      (fun n ->
        let rng = Rng.create ~seed:(130 + n) in
        let dirty =
          Gen.weighted_relation rng ~attrs:[ "A"; "B" ] ~rows:n ~domain:(n / 2)
            ~weight:"W"
        in
        let make_udb () =
          let udb = Udb.create () in
          Udb.add_complete udb "R" dirty;
          udb
        in
        (* Selective condition over the confidence of a repaired relation:
           the naive plan computes exact confidence for every tuple, the
           optimized one only for the selected slice. *)
        let q =
          Ua.select
            Predicate.(Expr.attr "A" = Expr.int 0)
            (Ua.conf
               (Ua.project [ "A"; "B" ]
                  (Ua.repair_key ~key:[ "A" ] ~weight:"W" (Ua.table "R"))))
        in
        let t_naive =
          Report.time_median ~repeat:3 (fun () ->
              ignore (Pqdb.Eval_exact.eval_relation (make_udb ()) q))
        in
        let t_opt =
          Report.time_median ~repeat:3 (fun () ->
              let udb = make_udb () in
              let q' = Pqdb.Optimizer.optimize_for udb q in
              ignore (Pqdb.Eval_exact.eval_relation udb q'))
        in
        (* Both produce the same relation. *)
        let same =
          Relation.equal
            (Pqdb.Eval_exact.eval_relation (make_udb ()) q)
            (let udb = make_udb () in
             Pqdb.Eval_exact.eval_relation udb
               (Pqdb.Optimizer.optimize_for udb q))
        in
        [
          Report.fmt_int n;
          Report.fmt_seconds t_naive;
          Report.fmt_seconds t_opt;
          Report.fmt_float (t_naive /. t_opt);
          string_of_bool same;
        ])
      sizes
  in
  Report.table
    ~header:[ "|R|"; "naive plan"; "optimized plan"; "speedup"; "same result" ]
    rows;
  Report.note
    "pushing the selection below conf shrinks the #P-hard part of the plan \
     to the selected slice."

(* ------------------------------------------------------------------ *)
(* E14: Figure-3 batch size                                            *)
(* ------------------------------------------------------------------ *)

let e14_batch_size ~quick =
  Report.section "E14"
    "Ablation: estimator calls per Figure-3 round (the paper uses |F|)";
  let rng = Rng.create ~seed:14 in
  let trials = if quick then 20 else 60 in
  let phi = Apred.ge (Apred.var 0) (Apred.const 0.5) in
  (* A 6-clause DNF so |F| > 1 makes batching meaningful. *)
  let make_estimator () =
    let w = Wtable.create () in
    let clauses = Gen.random_dnf rng w ~vars:6 ~clauses:6 ~clause_len:2 in
    Estimator.create (Dnf.prepare w clauses)
  in
  let batches = [ (Some 1, "1"); (None, "|F| (paper)"); (Some 24, "4|F|") ] in
  let rows =
    List.map
      (fun (batch, label) ->
        let calls = ref 0 and eps_calls = ref 0 in
        for _ = 1 to trials do
          let est = make_estimator () in
          let d =
            Pqdb.Predicate_approx.decide ?batch ~eps0:0.05 ~rng ~delta:0.1 phi
              [| est |]
          in
          calls := !calls + d.Pqdb.Predicate_approx.estimator_calls;
          eps_calls := !eps_calls + d.Pqdb.Predicate_approx.rounds
        done;
        [
          label;
          Report.fmt_float (float_of_int !calls /. float_of_int trials);
          Report.fmt_float (float_of_int !eps_calls /. float_of_int trials);
        ])
      batches
  in
  Report.table
    ~header:
      [ "batch size"; "mean estimator calls"; "mean rounds (eps recomputations)" ]
    rows;
  Report.note
    "batch = 1 is hurt by very noisy early estimates (eps_phi is recomputed \
     at garbage points and stays pessimistic), large batches overshoot the \
     stopping point; the paper's |F| batching wins on both counts."

(* ------------------------------------------------------------------ *)
(* E15: rational vs float Shannon expansion                            *)
(* ------------------------------------------------------------------ *)

let e15_rational_vs_float ~quick =
  Report.section "E15"
    "Ablation: exact rational Shannon expansion vs machine floats";
  let sizes = if quick then [ 8; 12; 16 ] else [ 8; 12; 16; 20 ] in
  let rows =
    List.map
      (fun vars ->
        let rng = Rng.create ~seed:(150 + vars) in
        let w = Wtable.create () in
        let clauses = Gen.random_dnf rng w ~vars ~clauses:vars ~clause_len:3 in
        let exact = ref Q.zero and fl = ref 0. in
        let t_rat =
          Report.time_median ~repeat:3 (fun () ->
              exact := Confidence.by_shannon w clauses)
        in
        let t_decomp =
          Report.time_median ~repeat:3 (fun () ->
              ignore (Confidence.by_decomposition w clauses))
        in
        let t_float =
          Report.time_median ~repeat:3 (fun () ->
              fl := Confidence.by_shannon_float w clauses)
        in
        let err = Float.abs (!fl -. Q.to_float !exact) in
        [
          Report.fmt_int vars;
          Report.fmt_seconds t_rat;
          Report.fmt_seconds t_decomp;
          Report.fmt_seconds t_float;
          Report.fmt_float (t_rat /. t_float);
          Printf.sprintf "%.2e" err;
        ])
      sizes
  in
  Report.table
    ~header:
      [
        "vars";
        "shannon (rational)";
        "decomposition (rational)";
        "float";
        "rat/float";
        "abs. error of float";
      ]
    rows;
  Report.note
    "exact rationals pay a small constant factor and buy exact ground truth \
     for the error measurements — the library default."

(* ------------------------------------------------------------------ *)
(* E16: attribute-level uncertainty via vertical decomposition          *)
(* ------------------------------------------------------------------ *)

let e16_vertical ~quick =
  Report.section "E16"
    "Attribute-level uncertainty: vertical decomposition vs flat expansion \
     (Section 3's succinctness remark)";
  let ks = if quick then [ 2; 4; 8; 12 ] else [ 2; 4; 8; 12; 16; 20 ] in
  let rows_list =
    List.map
      (fun k ->
        let w = Wtable.create () in
        let alts = [ (Value.Int 0, Q.half); (Value.Int 1, Q.half) ] in
        let attrs = List.init k (fun i -> "A" ^ string_of_int i) in
        let spec = [ List.init k (fun _ -> alts) ] in
        let v = ref None in
        let t_build =
          Report.time_median ~repeat:3 (fun () ->
              let w' = Wtable.create () in
              v := Some (Vertical.build w' ~tid:"#id" ~attrs ~rows:spec))
        in
        ignore w;
        let v = Option.get !v in
        let comp = Vertical.component_size v in
        let exp_size = Vertical.expanded_size v in
        let t_expand =
          if k <= 16 then
            Report.fmt_seconds
              (Report.time_median ~repeat:1 (fun () ->
                   ignore (Vertical.expanded v)))
          else "(skipped)"
        in
        [
          Report.fmt_int k;
          Report.fmt_int comp;
          Report.fmt_int exp_size;
          Report.fmt_seconds t_build;
          t_expand;
        ])
      ks
  in
  Report.table
    ~header:
      [
        "uncertain attrs k";
        "vertical rows (2k)";
        "flat rows (2^k)";
        "build time";
        "expansion time";
      ]
    rows_list;
  Report.note
    "the vertical representation stays linear while the flat U-relation \
     doubles per attribute — the succinctness Section 3 attributes to \
     vertical decompositioning."


(* ------------------------------------------------------------------ *)
(* E17: top-k by confidence (multisimulation pruning)                   *)
(* ------------------------------------------------------------------ *)

let e17_topk ~quick =
  Report.section "E17"
    "Top-k by confidence: interval pruning vs refining every candidate";
  let rng = Rng.create ~seed:17 in
  let ns = if quick then [ 8; 16; 32 ] else [ 8; 16; 32; 64 ] in
  let rows =
    List.map
      (fun n ->
        let make_candidates () =
          let w = Wtable.create () in
          List.init n (fun i ->
              (* Spread the true confidences so only a few candidates are
                 contested around the k-th boundary. *)
              let p = 0.05 +. (0.9 *. float_of_int i /. float_of_int n) in
              let q = 1. -. sqrt (1. -. p) in
              let num = max 1 (int_of_float (Float.round (q *. 1000.))) in
              let fresh () =
                Wtable.add_var w
                  [ Q.of_ints (1000 - num) 1000; Q.of_ints num 1000 ]
              in
              ( Pqdb_relational.Tuple.of_list
                  [ Pqdb_relational.Value.Int i ],
                Pqdb_montecarlo.Dnf.prepare w
                  [
                    Pqdb_urel.Assignment.singleton (fresh ()) 1;
                    Pqdb_urel.Assignment.singleton (fresh ()) 1;
                  ] ))
        in
        let k = n / 4 in
        (* [compile_fuel:0] keeps every candidate on the sampling path: this
           experiment ablates interval pruning, not lineage compilation. *)
        let r =
          Pqdb.Topk.run ~eps0:0.01 ~compile_fuel:0 ~rng ~delta:0.1 ~k
            (make_candidates ())
        in
        (* Baseline: refine every candidate to the budget the most-refined
           contested candidate needed (what a non-pruning loop would do). *)
        let per_candidate_max =
          r.Pqdb.Topk.rounds * 2 (* |F| = 2 calls per round *)
        in
        let baseline = n * per_candidate_max in
        [
          Report.fmt_int n;
          Report.fmt_int k;
          Report.fmt_int r.Pqdb.Topk.estimator_calls;
          Report.fmt_int baseline;
          Report.fmt_float
            (float_of_int r.Pqdb.Topk.estimator_calls
            /. float_of_int (max 1 baseline));
          string_of_bool r.Pqdb.Topk.certified;
        ])
      ns
  in
  Report.table
    ~header:
      [
        "candidates";
        "k";
        "pruned calls";
        "refine-everything calls";
        "ratio";
        "certified";
      ]
    rows;
  Report.note
    "only the candidates straddling the k-th boundary keep sampling; the \
     ratio shrinks as the field grows."
