(* Bechamel microbenchmarks: one Test.make per timed kernel, reported as
   ns/run from an OLS fit. *)

open Bechamel
open Toolkit
open Pqdb_urel
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Gen = Pqdb_workload.Gen
module Scenarios = Pqdb_workload.Scenarios
module Apred = Pqdb_ast.Apred
module Dnf = Pqdb_montecarlo.Dnf
module Karp_luby = Pqdb_montecarlo.Karp_luby
module Mc_confidence = Pqdb_montecarlo.Confidence
module Distrib = Pqdb_distrib
module Budget = Pqdb_montecarlo.Budget
module Memo = Pqdb_montecarlo.Memo
module Compile = Pqdb_montecarlo.Compile
module Schema = Pqdb_relational.Schema
module Tuple = Pqdb_relational.Tuple

let test_shannon_confidence () =
  let rng = Rng.create ~seed:201 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  Test.make ~name:"confidence/shannon-12v"
    (Staged.stage (fun () -> ignore (Confidence.by_shannon w clauses)))

let test_karp_luby () =
  let rng = Rng.create ~seed:202 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  let dnf = Dnf.prepare w clauses in
  Test.make ~name:"confidence/karp-luby-1k-trials"
    (Staged.stage (fun () -> ignore (Karp_luby.run rng dnf ~trials:1000)))

let join_inputs () =
  let rng = Rng.create ~seed:203 in
  let w = Wtable.create () in
  let r = Gen.tuple_independent rng w ~attrs:[ "A"; "B" ] ~rows:500 ~domain:100 in
  let s =
    Urelation.of_relation
      (Gen.random_relation rng ~attrs:[ "B"; "C" ] ~rows:100 ~domain:100)
  in
  (r, s)

let test_translate_join () =
  let r, s = join_inputs () in
  Test.make ~name:"translate/hashjoin-500x100"
    (Staged.stage (fun () -> ignore (Translate.join r s)))

let kl_dnf () =
  let rng = Rng.create ~seed:202 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  Dnf.prepare w clauses

let test_karp_luby_parallel nworkers =
  let dnf = kl_dnf () in
  let rng = Rng.create ~seed:202 in
  Test.make
    ~name:(Printf.sprintf "confidence/karp-luby-parallel-%ddom" nworkers)
    (Staged.stage (fun () ->
         ignore (Karp_luby.run_parallel ~nworkers rng dnf ~trials:1000)))

let batch_inputs () =
  let rng = Rng.create ~seed:208 in
  let w = Wtable.create () in
  let u =
    Gen.tuple_independent rng w ~attrs:[ "A"; "B" ] ~rows:500 ~domain:50
  in
  let clause_sets =
    Array.of_list (List.map snd (Urelation.clauses_by_tuple u))
  in
  (w, clause_sets)

let test_batch_confidence () =
  let w, clause_sets = batch_inputs () in
  let batch = Mc_confidence.prepare w clause_sets in
  let rng = Rng.create ~seed:208 in
  Test.make ~name:"confidence/batch-500-tuples"
    (Staged.stage (fun () ->
         ignore (Mc_confidence.run ~nworkers:2 rng batch ~eps:0.3 ~delta:0.2)))

let test_thm52 () =
  let rng = Rng.create ~seed:204 in
  let pred = Gen.linear_predicate rng ~arity:8 in
  let point = Array.init 8 (fun _ -> Rng.float_range rng 0.1 0.9) in
  Test.make ~name:"epsilon/closed-form-k8"
    (Staged.stage (fun () -> ignore (Pqdb.Epsilon.epsilon pred point)))

let test_corner_search () =
  let pred =
    Apred.ge (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const 0.5)
  in
  let point = [| 0.5; 0.45 |] in
  Test.make ~name:"epsilon/corner-search-k2"
    (Staged.stage (fun () ->
         ignore (Pqdb.Orthotope.epsilon_search pred point)))

let test_coin_posterior () =
  Test.make ~name:"query/coin-posterior-exact"
    (Staged.stage (fun () ->
         let udb = Scenarios.coin_db () in
         ignore
           (Pqdb.Eval_exact.eval_relation udb
              Scenarios.coin_queries.Scenarios.u)))

let test_repair_key () =
  let rng = Rng.create ~seed:205 in
  let rel =
    Gen.weighted_relation rng ~attrs:[ "A"; "B" ] ~rows:300 ~domain:40
      ~weight:"W"
  in
  let u = Urelation.of_relation rel in
  Test.make ~name:"translate/repair-key-300"
    (Staged.stage (fun () ->
         let w = Wtable.create () in
         ignore (Translate.repair_key w ~key:[ "A" ] ~weight:"W" u)))

let test_decomposition () =
  let rng = Rng.create ~seed:206 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  Test.make ~name:"confidence/decomposition-12v"
    (Staged.stage (fun () -> ignore (Confidence.by_decomposition w clauses)))

let test_optimizer () =
  let q =
    Pqdb_lang.Qparser.parse_query
      "select[A = 0](conf(project[A, B](repairkey[A @ W](R))))"
  in
  let lookup = function
    | "R" -> Some [ "A"; "B"; "W" ]
    | _ -> None
  in
  Test.make ~name:"optimizer/push-below-conf"
    (Staged.stage (fun () -> ignore (Pqdb.Optimizer.optimize ~lookup q)))

let test_topk () =
  Test.make ~name:"topk/coin-top1"
    (Staged.stage (fun () ->
         let rng = Rng.create ~seed:207 in
         let udb = Scenarios.coin_db () in
         ignore
           (Pqdb.Topk.query ~rng ~delta:0.1 ~k:1 udb
              Scenarios.coin_queries.Scenarios.t)))

let run () =
  Report.section "MICRO" "Bechamel kernels (ns per run, OLS fit)";
  let tests =
    Test.make_grouped ~name:"pqdb"
      [
        test_shannon_confidence ();
        test_karp_luby ();
        test_karp_luby_parallel 1;
        test_karp_luby_parallel 2;
        test_karp_luby_parallel 4;
        test_batch_confidence ();
        test_translate_join ();
        test_thm52 ();
        test_corner_search ();
        test_coin_posterior ();
        test_repair_key ();
        test_decomposition ();
        test_optimizer ();
        test_topk ();
      ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> t
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan
      in
      rows :=
        [ name; Report.fmt_seconds (estimate /. 1e9); Printf.sprintf "%.4f" r2 ]
        :: !rows)
    results;
  Report.table
    ~header:[ "kernel"; "time/run"; "r^2" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Confidence-engine wall-clock comparisons + BENCH_confidence.json    *)
(* ------------------------------------------------------------------ *)

(* The textbook O(|a|·|b|) join, kept here only as the baseline the hash
   join in Translate.join is measured against. *)
let nested_loop_join a b =
  let sa = Urelation.schema a and sb = Urelation.schema b in
  let shared = Schema.common sa sb in
  let sb_only =
    List.filter (fun x -> not (List.mem x shared)) (Schema.attributes sb)
  in
  let out_schema = Schema.of_list (Schema.attributes sa @ sb_only) in
  let sa_shared = List.map (Schema.index sa) shared in
  let sb_shared = List.map (Schema.index sb) shared in
  let sb_only_pos = List.map (Schema.index sb) sb_only in
  let rows_b = Urelation.rows b in
  let rows =
    List.concat_map
      (fun (fa, ta) ->
        List.filter_map
          (fun (fb, tb) ->
            if
              Tuple.equal (Tuple.project ta sa_shared)
                (Tuple.project tb sb_shared)
            then
              match Assignment.union fa fb with
              | Some f ->
                  Some (f, Tuple.concat ta (Tuple.project tb sb_only_pos))
              | None -> None
            else None)
          rows_b)
      (Urelation.rows a)
  in
  Urelation.make out_schema rows

(* A workload where compilation has to earn its keep: mostly easy lineage
   (singleton clauses, solved in closed form) plus a hard minority of dense
   random DNFs that exhaust the compilation fuel and fall back to adaptive
   sampling. *)
let mixed_inputs () =
  let rng = Rng.create ~seed:209 in
  let w = Wtable.create () in
  let easy =
    List.init 450 (fun _ ->
        let num = 1 + Rng.int rng 9 in
        let v = Wtable.add_var w [ Q.of_ints (10 - num) 10; Q.of_ints num 10 ] in
        [ Assignment.singleton v 1 ])
  in
  let hard =
    List.init 50 (fun _ ->
        Gen.random_dnf rng w ~vars:40 ~clauses:40 ~clause_len:3)
  in
  (w, Array.of_list (easy @ hard))

(* Many light clauses, each unlikely: the mean mu = p/M of the Karp-Luby
   estimator is close to 1, which is exactly where the DKLR stopping rule
   beats the worst-case Chernoff budget (sized for mu = 1/|F|). *)
let stopping_inputs () =
  let w = Wtable.create () in
  let sets =
    Array.init 500 (fun _ ->
        List.init 6 (fun _ ->
            let v = Wtable.add_var w [ Q.of_ints 19 20; Q.of_ints 1 20 ] in
            Assignment.singleton v 1))
  in
  (w, sets)

(* A 2k-tuple batch of small DNFs: each compiles to a closed form, so the
   engine's resident state is dominated by the compiled trees and sampling
   tables — exactly the footprint streaming is supposed to bound. *)
let stream_inputs () =
  let rng = Rng.create ~seed:211 in
  let w = Wtable.create () in
  let sets =
    Array.init 2000 (fun _ ->
        Gen.random_dnf rng w ~vars:8 ~clauses:6 ~clause_len:3)
  in
  (w, sets)

type bench_entry = {
  be_name : string;
  be_seconds : float;
  be_speedup : float;
  be_trials : int option;
  be_exact_fraction : float option;
  be_width : float option;
      (* mean certified interval width over the batch, for the anytime
         (deadline-governed) entries *)
  be_peak_words : int option;
      (* peak live major-heap words above the fixture baseline, for the
         streaming-vs-materialized entries *)
  be_cores : int option;
      (* physical cores actually available to the entry's "parallel" run —
         honesty marker for speedup numbers collected on small containers
         (1 here means the domain/worker scaling is time-sliced) *)
  be_shed : int option;
      (* connections refused with a typed busy reply during the entry's
         overload burst, for the serve-under-faults entry *)
}

let confidence_engine () =
  Report.section "CONF-ENGINE"
    "Confidence-engine wall clock: compiled lineage, adaptive stopping, \
     parallel Karp-Luby, hash join";
  let entries = ref [] in
  let record ?trials ?exact_fraction ?width ?peak_words ?cores ?shed name
      seconds baseline =
    entries :=
      {
        be_name = name;
        be_seconds = seconds;
        be_speedup = baseline /. seconds;
        be_trials = trials;
        be_exact_fraction = exact_fraction;
        be_width = width;
        be_peak_words = peak_words;
        be_cores = cores;
        be_shed = shed;
      }
      :: !entries
  in
  let cores = Domain.recommended_domain_count () in
  (* 1. Domain-parallel Karp-Luby on one large trial budget. *)
  let dnf = kl_dnf () in
  let trials = 200_000 in
  let serial =
    Report.time_median (fun () ->
        ignore (Karp_luby.run (Rng.create ~seed:1) dnf ~trials))
  in
  record "karp-luby-serial-200k" serial serial;
  let kl_rows =
    List.map
      (fun n ->
        let s =
          Report.time_median (fun () ->
              ignore
                (Karp_luby.run_parallel ~nworkers:n (Rng.create ~seed:1) dnf
                   ~trials))
        in
        record ~cores (Printf.sprintf "karp-luby-parallel-%ddom-200k" n) s
          serial;
        [
          Printf.sprintf "%d domains" n;
          Report.fmt_seconds s;
          Printf.sprintf "%.2fx" (serial /. s);
        ])
      [ 1; 2; 4 ]
  in
  Report.table
    ~header:[ "karp-luby, 200k trials"; "median"; "speedup vs serial" ]
    ([ "serial"; Report.fmt_seconds serial; "1.00x" ] :: kl_rows);
  (* 2. Batched compiled confidence vs a per-tuple prepare+fpras loop. *)
  let w, clause_sets = batch_inputs () in
  let eps = 0.3 and delta = 0.2 in
  let per_tuple =
    Report.time_median (fun () ->
        let rng = Rng.create ~seed:2 in
        Array.iter
          (fun clauses ->
            ignore (Karp_luby.confidence rng w clauses ~eps ~delta))
          clause_sets)
  in
  let fixed_trials =
    Array.fold_left
      (fun acc clauses ->
        acc + Karp_luby.trials_for (Dnf.prepare w clauses) ~eps ~delta)
      0 clause_sets
  in
  record ~trials:fixed_trials "per-tuple-fpras-500" per_tuple per_tuple;
  let batch = Mc_confidence.prepare w clause_sets in
  let _, batch_stats =
    Mc_confidence.run_with_stats (Rng.create ~seed:2) batch ~eps ~delta
  in
  let batched =
    Report.time_median (fun () ->
        ignore (Mc_confidence.run (Rng.create ~seed:2) batch ~eps ~delta))
  in
  record
    ~trials:
      (Array.fold_left ( + ) 0 batch_stats.Mc_confidence.trials_used)
    ~exact_fraction:batch_stats.Mc_confidence.exact_fraction
    "batch-fpras-500" batched per_tuple;
  Report.table
    ~header:[ "500-tuple confidence"; "median"; "speedup" ]
    [
      [ "per-tuple fpras loop"; Report.fmt_seconds per_tuple; "1.00x" ];
      [
        "batch (compiled, pooled)";
        Report.fmt_seconds batched;
        Printf.sprintf "%.2fx" (per_tuple /. batched);
      ];
    ];
  (* 2b. Mixed workload: does compilation pay only for the hard cases?
     Equal (eps, delta) on both sides; the baseline samples every tuple at
     the fixed Chernoff budget, the compiled path solves the easy 90% in
     closed form and adaptively samples the hard residues. *)
  let wm, mixed_sets = mixed_inputs () in
  let mixed_fpras =
    Report.time_median (fun () ->
        let rng = Rng.create ~seed:3 in
        Array.iter
          (fun clauses ->
            ignore (Karp_luby.confidence rng wm clauses ~eps ~delta))
          mixed_sets)
  in
  let mixed_fixed_trials =
    Array.fold_left
      (fun acc clauses ->
        acc + Karp_luby.trials_for (Dnf.prepare wm clauses) ~eps ~delta)
      0 mixed_sets
  in
  record ~trials:mixed_fixed_trials "fpras-mixed-500" mixed_fpras mixed_fpras;
  let mixed_batch = Mc_confidence.prepare wm mixed_sets in
  let _, mixed_stats =
    Mc_confidence.run_with_stats (Rng.create ~seed:3) mixed_batch ~eps ~delta
  in
  let mixed_compiled =
    Report.time_median (fun () ->
        ignore (Mc_confidence.run (Rng.create ~seed:3) mixed_batch ~eps ~delta))
  in
  let mixed_trials =
    Array.fold_left ( + ) 0 mixed_stats.Mc_confidence.trials_used
  in
  record ~trials:mixed_trials
    ~exact_fraction:mixed_stats.Mc_confidence.exact_fraction
    "compile-vs-fpras-500" mixed_compiled mixed_fpras;
  Report.table
    ~header:
      [ "mixed 500 (450 easy + 50 hard)"; "median"; "trials"; "speedup" ]
    [
      [
        "pure FPRAS";
        Report.fmt_seconds mixed_fpras;
        Report.fmt_int mixed_fixed_trials;
        "1.00x";
      ];
      [
        Printf.sprintf "compiled (exact frac %.3f)"
          mixed_stats.Mc_confidence.exact_fraction;
        Report.fmt_seconds mixed_compiled;
        Report.fmt_int mixed_trials;
        Printf.sprintf "%.2fx" (mixed_fpras /. mixed_compiled);
      ];
    ];
  (* 2c. Adaptive stopping alone (compilation off): the DKLR schedule vs the
     fixed worst-case Chernoff budget on DNFs whose estimator mean is far
     from the 1/|F| the fixed budget provisions for. *)
  let ws, stop_sets = stopping_inputs () in
  let stop_dnfs = Array.map (Dnf.prepare ws) stop_sets in
  let seps = 0.1 and sdelta = 0.05 in
  let fixed_stop_trials =
    Array.fold_left
      (fun acc dnf -> acc + Karp_luby.trials_for dnf ~eps:seps ~delta:sdelta)
      0 stop_dnfs
  in
  let fixed_stop =
    Report.time_median (fun () ->
        let rng = Rng.create ~seed:4 in
        Array.iter
          (fun dnf -> ignore (Karp_luby.fpras rng dnf ~eps:seps ~delta:sdelta))
          stop_dnfs)
  in
  record ~trials:fixed_stop_trials "fixed-budget-500" fixed_stop fixed_stop;
  let adaptive_trials = ref 0 in
  let adaptive_stop =
    Report.time_median (fun () ->
        let rng = Rng.create ~seed:4 in
        adaptive_trials := 0;
        Array.iter
          (fun dnf ->
            let _, n = Karp_luby.adaptive rng dnf ~eps:seps ~delta:sdelta in
            adaptive_trials := !adaptive_trials + n)
          stop_dnfs)
  in
  record ~trials:!adaptive_trials "stopping-rule-500" adaptive_stop fixed_stop;
  Report.table
    ~header:[ "500 DNFs, eps 0.1 delta 0.05"; "median"; "trials"; "speedup" ]
    [
      [
        "fixed Chernoff budget";
        Report.fmt_seconds fixed_stop;
        Report.fmt_int fixed_stop_trials;
        "1.00x";
      ];
      [
        "DKLR stopping rule";
        Report.fmt_seconds adaptive_stop;
        Report.fmt_int !adaptive_trials;
        Printf.sprintf "%.2fx" (fixed_stop /. adaptive_stop);
      ];
    ];
  (* 2d. Anytime governor (E6b).  Two claims: a generous budget costs about
     the same as no budget (the governor is one atomic poll per estimator
     trial), and shrinking deadlines trade certified interval width for
     wall clock — the brackets widen but stay sound. *)
  let mean_width (st : Mc_confidence.stats) =
    let n = Array.length st.Mc_confidence.intervals in
    if n = 0 then 0.
    else
      Array.fold_left
        (fun acc (lo, hi) -> acc +. (hi -. lo))
        0. st.Mc_confidence.intervals
      /. float_of_int n
  in
  record ~trials:mixed_trials ~width:(mean_width mixed_stats)
    "anytime-no-budget" mixed_compiled mixed_compiled;
  let generous () = Budget.create ~max_trials:max_int () in
  let governed =
    Report.time_median (fun () ->
        ignore
          (Mc_confidence.run ~budget:(generous ()) (Rng.create ~seed:3)
             mixed_batch ~eps ~delta))
  in
  let _, gov_stats =
    Mc_confidence.run_with_stats ~budget:(generous ()) (Rng.create ~seed:3)
      mixed_batch ~eps ~delta
  in
  let gov_trials =
    Array.fold_left ( + ) 0 gov_stats.Mc_confidence.trials_used
  in
  record ~trials:gov_trials ~width:(mean_width gov_stats)
    "anytime-generous-budget" governed mixed_compiled;
  let deadline_row d =
    let seconds =
      Report.time_median (fun () ->
          ignore
            (Mc_confidence.run
               ~budget:(Budget.create ~deadline_s:d ())
               (Rng.create ~seed:3) mixed_batch ~eps ~delta))
    in
    let _, st =
      Mc_confidence.run_with_stats
        ~budget:(Budget.create ~deadline_s:d ())
        (Rng.create ~seed:3) mixed_batch ~eps ~delta
    in
    let trials = Array.fold_left ( + ) 0 st.Mc_confidence.trials_used in
    record ~trials ~width:(mean_width st)
      (Printf.sprintf "anytime-deadline-%.0fms" (d *. 1000.))
      seconds mixed_compiled;
    [
      Printf.sprintf "deadline %.0fms" (d *. 1000.);
      Report.fmt_seconds seconds;
      Report.fmt_int trials;
      Printf.sprintf "%.4f" (mean_width st);
      (if st.Mc_confidence.complete then "yes" else "no");
    ]
  in
  let deadline_rows = List.map deadline_row [ 0.05; 0.01; 0.002 ] in
  Report.table
    ~header:
      [ "anytime, mixed 500"; "median"; "trials"; "mean width"; "complete" ]
    ([
       [
         "no budget";
         Report.fmt_seconds mixed_compiled;
         Report.fmt_int mixed_trials;
         Printf.sprintf "%.4f" (mean_width mixed_stats);
         (if mixed_stats.Mc_confidence.complete then "yes" else "no");
       ];
       [
         "generous budget";
         Report.fmt_seconds governed;
         Report.fmt_int gov_trials;
         Printf.sprintf "%.4f" (mean_width gov_stats);
         (if gov_stats.Mc_confidence.complete then "yes" else "no");
       ];
     ]
    @ deadline_rows);
  (* 2e. Streaming shard engine (E6c).  Two claims: resident memory is
     bounded by the shard ceiling rather than the batch (the materialized
     path keeps all 2000 compiled trees and sampling tables live at once,
     the stream one shard's worth), and resuming a checkpointed run that
     lost its final shard replays the journal instead of recomputing. *)
  let ws2, stream_sets = stream_inputs () in
  let seps2 = 0.25 and sdelta2 = 0.1 in
  let live_now () =
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  let base_live = live_now () in
  let mat_batch = ref (Some (Mc_confidence.prepare ws2 stream_sets)) in
  let mat_peak = live_now () - base_live in
  let mat_time =
    Report.time_median (fun () ->
        ignore
          (Mc_confidence.run (Rng.create ~seed:5) (Option.get !mat_batch)
             ~eps:seps2 ~delta:sdelta2))
  in
  mat_batch := None;
  record ~peak_words:mat_peak "batch-materialized-2k" mat_time mat_time;
  (* One shard per tuple (the singleton rule): the per-shard ceiling is a
     single compiled tree, the strictest possible memory bound. *)
  let stream_opts =
    { Mc_confidence.default_stream_options with shard_cost = 1 }
  in
  let stream_base = live_now () in
  let stream_peak = ref 0 in
  let emitted = ref 0 in
  ignore
    (Mc_confidence.run_stream ~options:stream_opts (Rng.create ~seed:5) ws2
       stream_sets ~eps:seps2 ~delta:sdelta2 ~emit:(fun _ ->
         incr emitted;
         if !emitted land 127 = 0 then
           stream_peak := max !stream_peak (live_now () - stream_base)));
  let stream_time =
    Report.time_median (fun () ->
        ignore
          (Mc_confidence.run_stream_with_stats ~options:stream_opts
             (Rng.create ~seed:5) ws2 stream_sets ~eps:seps2 ~delta:sdelta2))
  in
  record ~peak_words:!stream_peak "stream-2k-shards" stream_time mat_time;
  (* Resume: journal a full streaming run, drop its final shard record (the
     most a SIGKILL can lose), resume — completed shards replay from the
     journal, only the lost one is recomputed. *)
  let journal = Filename.temp_file "pqdb_bench" ".ckpt" in
  let resume_opts =
    {
      Mc_confidence.default_stream_options with
      shard_cost = 10_000;
      checkpoint = Some journal;
    }
  in
  (* compile_fuel 0 = pure FPRAS on every tuple: the cold run pays real
     sampling, so replay-vs-recompute is measured, not just parsing. *)
  let cold_once () =
    Sys.remove journal;
    ignore
      (Mc_confidence.run_stream_with_stats ~compile_fuel:0
         ~options:resume_opts (Rng.create ~seed:6) ws2
         (Array.sub stream_sets 0 200)
         ~eps:seps2 ~delta:sdelta2)
  in
  let cold_time = Report.time_median cold_once in
  cold_once ();
  let lines =
    String.split_on_char '\n'
      (In_channel.with_open_bin journal In_channel.input_all)
  in
  let lines = List.filter (fun l -> l <> "") lines in
  let kept = List.filteri (fun i _ -> i < List.length lines - 1) lines in
  Out_channel.with_open_bin journal (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) kept);
  let truncated = In_channel.with_open_bin journal In_channel.input_all in
  let resume_time =
    Report.time_median (fun () ->
        (* Re-truncate each round: a resumed run re-journals the recomputed
           shard, which would make later rounds pure replay. *)
        Out_channel.with_open_bin journal (fun oc ->
            Out_channel.output_string oc truncated);
        ignore
          (Mc_confidence.run_stream_with_stats ~compile_fuel:0
             ~options:{ resume_opts with resume = true }
             (Rng.create ~seed:6) ws2
             (Array.sub stream_sets 0 200)
             ~eps:seps2 ~delta:sdelta2))
  in
  Sys.remove journal;
  record "resume-after-kill" resume_time cold_time;
  Report.table
    ~header:[ "streaming (2k tuples)"; "median"; "peak live words"; "vs" ]
    [
      [
        "materialized run";
        Report.fmt_seconds mat_time;
        Report.fmt_int mat_peak;
        "1.00x";
      ];
      [
        "stream, 1-tuple shards";
        Report.fmt_seconds stream_time;
        Report.fmt_int !stream_peak;
        Printf.sprintf "%.2fx time, %.1fx less memory"
          (mat_time /. stream_time)
          (float_of_int mat_peak /. float_of_int (max 1 !stream_peak));
      ];
      [
        "cold run, 200 FPRAS tuples";
        Report.fmt_seconds cold_time;
        "-";
        "1.00x";
      ];
      [
        "resume (1 shard lost)";
        Report.fmt_seconds resume_time;
        "-";
        Printf.sprintf "%.2fx" (cold_time /. resume_time);
      ];
    ];
  (* 2f. Distributed shard execution (E6d).  Workers are in-process thread
     transports — the bench keeps resident pool domains alive, so forking
     real processes is off the table — which makes this an honest one-core
     protocol-overhead measurement, not a scaling claim: the coordinator
     pays framing, CRC and reconciliation per shard while the workers
     time-slice the same CPU.  The claim is bit-identity at bounded
     overhead for any worker count. *)
  let dsets = Array.sub stream_sets 0 200 in
  let dopts =
    { Mc_confidence.default_stream_options with shard_cost = 10_000 }
  in
  let outcome_digest run =
    let buf = Buffer.create 4096 in
    run (fun o -> Buffer.add_string buf (Pqdb_montecarlo.Shard.to_payload o));
    Buffer.contents buf
  in
  let single_digest =
    outcome_digest (fun emit ->
        ignore
          (Mc_confidence.run_stream ~compile_fuel:0 ~options:dopts
             (Rng.create ~seed:6) ws2 dsets ~eps:seps2 ~delta:sdelta2 ~emit))
  in
  let single_time =
    Report.time_median (fun () ->
        ignore
          (Mc_confidence.run_stream ~compile_fuel:0 ~options:dopts
             (Rng.create ~seed:6) ws2 dsets ~eps:seps2 ~delta:sdelta2
             ~emit:(fun _ -> ())))
  in
  record ~cores "distrib-single-process" single_time single_time;
  let distrib_run nw emit =
    Distrib.Coordinator.run ~compile_fuel:0 ~options:dopts ~workers:nw
      ~spawn:(fun _ ->
        Distrib.Coordinator.thread_transport (fun ~input ~output ->
            Distrib.Worker.serve ~compile_fuel:0 ~shard_cost:dopts.shard_cost
              (Rng.create ~seed:6) ws2 dsets ~eps:seps2 ~delta:sdelta2 ~input
              ~output))
      (Rng.create ~seed:6) ws2 dsets ~eps:seps2 ~delta:sdelta2 ~emit
  in
  let distrib_rows =
    List.map
      (fun nw ->
        let digest = outcome_digest (fun emit -> ignore (distrib_run nw emit)) in
        let identical = String.equal digest single_digest in
        let seconds =
          Report.time_median (fun () ->
              ignore (distrib_run nw (fun _ -> ())))
        in
        record ~cores (Printf.sprintf "distrib-workers-%d" nw) seconds
          single_time;
        [
          Printf.sprintf "%d workers" nw;
          Report.fmt_seconds seconds;
          Printf.sprintf "%.2fx" (single_time /. seconds);
          (if identical then "yes" else "NO");
        ])
      [ 1; 2; 4 ]
  in
  Report.table
    ~header:
      [ "distrib, 200 FPRAS tuples"; "median"; "vs single"; "bit-identical" ]
    ([ [ "single process"; Report.fmt_seconds single_time; "1.00x"; "-" ] ]
    @ distrib_rows);
  (* Compiled-lineage cache (the pqdb serve hot path): the same batch of
     hard DNFs solved cold (normalize + compile + solve per tuple) and warm
     (cache hit, straight to solve).  Identical per-pass RNG seeding, so
     the rendered "%h" outputs must be byte-identical — the serve CI job
     cmp's the same property over a socket. *)
  let cache_w = Wtable.create () in
  let cache_sets =
    let rng = Rng.create ~seed:313 in
    Array.init 48 (fun _ ->
        Gen.random_dnf rng cache_w ~vars:12 ~clauses:12 ~clause_len:3)
  in
  let cache_pass memo =
    let buf = Buffer.create 4096 in
    let rngs = Rng.split_n (Rng.create ~seed:17) (Array.length cache_sets) in
    Array.iteri
      (fun i set ->
        let tree = Memo.find_or_compile memo cache_w set in
        let o = Compile.solve rngs.(i) tree ~eps:0.3 ~delta:0.2 in
        Printf.bprintf buf "%d %h %h %h %d\n" i o.Compile.value o.Compile.lo
          o.Compile.hi o.Compile.trials)
      cache_sets;
    Buffer.contents buf
  in
  let cold_time =
    Report.time_median (fun () ->
        (* a fresh cache every run: every lookup misses *)
        ignore (cache_pass (Memo.create ~entries:64 ())))
  in
  let warm_memo = Memo.create ~entries:64 () in
  let cold_digest = cache_pass warm_memo in
  let warm_digest = cache_pass warm_memo in
  let identical = String.equal cold_digest warm_digest in
  if not identical then
    failwith "cache-cold-vs-warm: warm output is not byte-identical to cold";
  let warm_time = Report.time_median (fun () -> ignore (cache_pass warm_memo)) in
  let memo_stats = Memo.stats warm_memo in
  record "cache-cold-vs-warm" warm_time cold_time;
  Report.table
    ~header:
      [ "compiled-lineage cache, 48 DNFs"; "median"; "speedup"; "bit-identical" ]
    [
      [ "cold (compile every tuple)"; Report.fmt_seconds cold_time; "1.00x"; "-" ];
      [
        "warm (cache hit)";
        Report.fmt_seconds warm_time;
        Printf.sprintf "%.2fx" (cold_time /. warm_time);
        (if identical then "yes" else "NO");
      ];
    ];
  Report.note "cache counters: %d hits, %d misses, %d evictions"
    memo_stats.Memo.hits memo_stats.Memo.misses memo_stats.Memo.evictions;
  (* Journal compaction: a journal that survived one full re-append
     generation (every shard record bloated by an identical duplicate — the
     worst case the latest-per-shard policy reclaims), compacted in place.
     The "speedup" recorded is the on-disk size ratio. *)
  let cjournal = Filename.temp_file "pqdb_bench" ".ckpt" in
  Sys.remove cjournal;
  ignore
    (Mc_confidence.run_stream ~compile_fuel:0
       ~options:{ dopts with checkpoint = Some cjournal }
       (Rng.create ~seed:6) ws2 dsets ~eps:seps2 ~delta:sdelta2
       ~emit:(fun _ -> ()));
  let bloat () =
    let lines =
      In_channel.with_open_bin cjournal In_channel.input_all
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "")
    in
    match lines with
    | magic :: meta :: records ->
        Out_channel.with_open_bin cjournal (fun oc ->
            List.iter
              (fun l -> Out_channel.output_string oc (l ^ "\n"))
              ((magic :: meta :: records) @ records))
    | _ -> failwith "journal too short to bloat"
  in
  bloat ();
  let before_bytes = (Unix.stat cjournal).Unix.st_size in
  let compact_time =
    Report.time_median ~repeat:1 (fun () ->
        ignore (Pqdb_montecarlo.Shard.compact_journal cjournal))
  in
  let after_bytes = (Unix.stat cjournal).Unix.st_size in
  Sys.remove cjournal;
  let size_ratio = float_of_int before_bytes /. float_of_int after_bytes in
  record "journal-compaction" compact_time (compact_time *. size_ratio);
  Report.table
    ~header:[ "journal compaction"; "bytes"; "" ]
    [
      [ "bloated (1 duplicate generation)"; Report.fmt_int before_bytes; "" ];
      [
        "compacted";
        Report.fmt_int after_bytes;
        Printf.sprintf "%.2fx smaller, %s" size_ratio
          (Report.fmt_seconds compact_time);
      ];
    ];
  (* 2g. Storage cold start (E6e): the binary columnar .udbb format vs the
     text directory format on the same 2k-tuple database.  A binary load
     maps the file and decodes only the header, manifest and W table —
     relations stay as column segments until first use — while a text load
     parses every CSV row up front.  "full decode" forces every relation
     out of the mapping, the honest upper bound.  workers-shared-mapping
     models an N-worker fleet over one stored db: N text loads each
     re-parse the whole directory, N binary loads re-map the same
     page-cache-resident file and decode only the relation they serve.
     (In-process proxy, one core; the CI storage job measures the real
     multi-process VmHWM.) *)
  let sdir = Filename.temp_file "pqdb_bench" ".db" in
  Sys.remove sdir;
  let sbin = sdir ^ Udb_binary.extension in
  let sdb = Gen.uncertain_db (Rng.create ~seed:77) ~tuples:2000 ~clauses:3 in
  Udb_io.save sdir sdb;
  Udb_io.save sbin sdb;
  let text_load_time =
    Report.time_median (fun () -> ignore (Udb_io.load sdir))
  in
  let held_words load =
    let base = live_now () in
    let v = Sys.opaque_identity (load ()) in
    let words = live_now () - base in
    ignore (Sys.opaque_identity v);
    words
  in
  let text_words = held_words (fun () -> Udb_io.load sdir) in
  record ~peak_words:text_words "cold-start-text-2k" text_load_time
    text_load_time;
  let bin_load_time =
    Report.time_median (fun () -> ignore (Udb_io.load sbin))
  in
  let bin_words = held_words (fun () -> Udb_io.load sbin) in
  record ~peak_words:bin_words "cold-start-text-vs-binary" bin_load_time
    text_load_time;
  let bin_full_time =
    Report.time_median (fun () ->
        let u = Udb_io.load sbin in
        List.iter (fun n -> ignore (Udb.find u n)) (Udb.names u))
  in
  let bin_full_words =
    held_words (fun () ->
        let u = Udb_io.load sbin in
        List.iter (fun n -> ignore (Udb.find u n)) (Udb.names u);
        u)
  in
  record ~peak_words:bin_full_words "cold-start-binary-full-decode"
    bin_full_time text_load_time;
  let fleet = 4 in
  let text_fleet_time =
    Report.time_median (fun () ->
        for _ = 1 to fleet do
          ignore (Udb_io.load sdir)
        done)
  in
  let text_fleet_words =
    held_words (fun () -> List.init fleet (fun _ -> Udb_io.load sdir))
  in
  let bin_fleet () =
    List.init fleet (fun _ ->
        let u = Udb_io.load sbin in
        ignore (Udb.find u "events");
        u)
  in
  let bin_fleet_time =
    Report.time_median (fun () -> ignore (bin_fleet ()))
  in
  let bin_fleet_words = held_words bin_fleet in
  record ~peak_words:bin_fleet_words "workers-shared-mapping" bin_fleet_time
    text_fleet_time;
  record ~peak_words:text_fleet_words "workers-text-reparse" text_fleet_time
    text_fleet_time;
  Report.table
    ~header:[ "storage, 2k-tuple db"; "median"; "live words"; "vs text" ]
    [
      [
        "text load";
        Report.fmt_seconds text_load_time;
        Report.fmt_int text_words;
        "1.00x";
      ];
      [
        "binary load (lazy)";
        Report.fmt_seconds bin_load_time;
        Report.fmt_int bin_words;
        Printf.sprintf "%.1fx" (text_load_time /. bin_load_time);
      ];
      [
        "binary load + full decode";
        Report.fmt_seconds bin_full_time;
        Report.fmt_int bin_full_words;
        Printf.sprintf "%.1fx" (text_load_time /. bin_full_time);
      ];
      [
        Printf.sprintf "%d-worker fleet, text" fleet;
        Report.fmt_seconds text_fleet_time;
        Report.fmt_int text_fleet_words;
        "1.00x";
      ];
      [
        Printf.sprintf "%d-worker fleet, shared mapping" fleet;
        Report.fmt_seconds bin_fleet_time;
        Report.fmt_int bin_fleet_words;
        Printf.sprintf "%.1fx" (text_fleet_time /. bin_fleet_time);
      ];
    ];
  Array.iter
    (fun f -> Sys.remove (Filename.concat sdir f))
    (Sys.readdir sdir);
  Sys.rmdir sdir;
  Sys.remove sbin;
  (* 3. Hash join vs the nested-loop baseline it replaced. *)
  let r, s = join_inputs () in
  let nested =
    Report.time_median (fun () -> ignore (nested_loop_join r s))
  in
  record "join-nested-loop-500x100" nested nested;
  let hashed = Report.time_median (fun () -> ignore (Translate.join r s)) in
  record "join-hash-500x100" hashed nested;
  Report.table
    ~header:[ "join 500x100"; "median"; "speedup" ]
    [
      [ "nested loop"; Report.fmt_seconds nested; "1.00x" ];
      [
        "hash join";
        Report.fmt_seconds hashed;
        Printf.sprintf "%.2fx" (nested /. hashed);
      ];
    ];
  (* 4. Serve under faults: warm-query latency over a live daemon socket,
     clean vs the same traffic with a 50 ms delay injected into every 10th
     request's session handling, plus an overload burst against the single
     session slot.  Degraded service may be slower, never wrong: every
     reply not hit by an armed fault must stay byte-identical to the
     fault-free reference, and excess connections must be shed with a
     typed busy instead of queueing or hanging. *)
  let module FP = Pqdb_runtime.Faultpoint in
  let module E = Pqdb_runtime.Pqdb_error in
  let module Server = Pqdb_serve.Server in
  let module Sclient = Pqdb_serve.Client in
  List.iter FP.disarm (FP.armed ());
  let serve_db = Filename.temp_file "pqdb_bench_serve" ".udbb" in
  Udb_io.save serve_db
    (Gen.uncertain_db (Rng.create ~seed:77) ~tuples:20 ~clauses:3);
  let sock_path = Filename.temp_file "pqdb_bench_serve" ".sock" in
  Sys.remove sock_path;
  let listen = Server.Unix_socket sock_path in
  let scfg =
    {
      Server.db_path = serve_db;
      listen;
      cache_entries = 64;
      session_trials = None;
      session_deadline_s = None;
      io_timeout_s = Some 10.0;
      idle_timeout_s = Some 60.0;
      max_sessions = Some 1;
      watchdog_s = None;
    }
  in
  let srv = Server.create scfg in
  let daemon = Thread.create (fun () -> ignore (Server.run srv)) () in
  let client =
    Sclient.connect ~retries:40 ~retry_delay_s:0.05 ~io_timeout_s:10.0 listen
  in
  let spec = "conf events eps=0.3 delta=0.2" in
  let serve_queries = 20 in
  let fault_stride = 10 in
  (* warm the compiled-lineage cache, then pin the reference body *)
  ignore (Sclient.query client spec);
  let reference =
    match Sclient.query client spec with
    | true, body -> body
    | false, err -> failwith ("serve-under-faults: reference query: " ^ err)
  in
  let serve_pass ~faulted () =
    for i = 1 to serve_queries do
      let armed = faulted && i mod fault_stride = 0 in
      if armed then FP.arm ~count:1 ~mode:(FP.Delay 0.05) "serve.session";
      match Sclient.query client spec with
      | true, body ->
          if (not armed) && not (String.equal body reference) then
            failwith
              "serve-under-faults: unaffected reply is not byte-identical"
      | false, err -> failwith ("serve-under-faults: err reply: " ^ err)
    done
  in
  let clean_total = Report.time_median (fun () -> serve_pass ~faulted:false ()) in
  let faulted_total =
    Report.time_median (fun () -> serve_pass ~faulted:true ())
  in
  List.iter FP.disarm (FP.armed ());
  let clean_q = clean_total /. float_of_int serve_queries in
  let faulted_q = faulted_total /. float_of_int serve_queries in
  (* overload burst: the persistent client holds the only slot, so every
     extra connection must come back as an immediate typed Busy *)
  let burst = 8 in
  let shed_seen = ref 0 in
  for _ = 1 to burst do
    match Sclient.connect ~io_timeout_s:5.0 listen with
    | c ->
        Sclient.close c;
        failwith "serve-under-faults: connection admitted past the cap"
    | exception E.Error (E.Busy _) -> incr shed_seen
  done;
  let shed_counted =
    match Sclient.query client "stats" with
    | true, body ->
        let words =
          String.split_on_char '\n' body
          |> List.concat_map (String.split_on_char ' ')
          |> List.filter (fun w -> w <> "")
        in
        let rec go = function
          | k :: v :: rest ->
              if String.equal k "shed" then int_of_string_opt v
              else go (v :: rest)
          | _ -> None
        in
        (match go words with
        | Some n -> n
        | None -> failwith "serve-under-faults: no shed counter in stats")
    | false, err -> failwith ("serve-under-faults: stats query: " ^ err)
  in
  if shed_counted < !shed_seen then
    failwith "serve-under-faults: stats shed counter below observed sheds";
  record "serve-warm-query" clean_q clean_q;
  record ~shed:shed_counted "serve-under-faults" faulted_q clean_q;
  (try ignore (Sclient.query client "shutdown") with _ -> ());
  (try Sclient.close client with _ -> ());
  Thread.join daemon;
  if Sys.file_exists serve_db then Sys.remove serve_db;
  if Sys.file_exists sock_path then Sys.remove sock_path;
  Report.table
    ~header:
      [
        Printf.sprintf "serve, %d warm queries" serve_queries;
        "per query";
        "slowdown";
        "bit-identical";
      ]
    [
      [ "fault-free"; Report.fmt_seconds clean_q; "1.00x"; "yes" ];
      [
        "10% of requests +50ms";
        Report.fmt_seconds faulted_q;
        Printf.sprintf "%.2fx" (faulted_q /. clean_q);
        "yes (unaffected)";
      ];
    ];
  Report.note "overload burst: %d/%d connections shed with typed Busy"
    shed_counted burst;
  (* Machine-readable record for EXPERIMENTS.md and regression tracking.
     Schema v4: entries optionally carry the estimator-trial spend, the
     closed-form probability-mass fraction of the compiled path, and the
     overload-shed count of the serve-under-faults entry. *)
  let path = "BENCH_confidence.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"pqdb-bench-confidence/v4\",\n\
    \  \"recommended_domains\": %d,\n\
    \  \"resident_pool_workers\": %d,\n\
    \  \"results\": [\n"
    (Domain.recommended_domain_count ())
    (Pqdb_montecarlo.Pool.resident_workers ());
  let items = List.rev !entries in
  List.iteri
    (fun i e ->
      let opt_int = function
        | Some n -> Printf.sprintf ", \"trials_used\": %d" n
        | None -> ""
      in
      let opt_float key = function
        | Some f -> Printf.sprintf ", \"%s\": %.4f" key f
        | None -> ""
      in
      let opt_words = function
        | Some n -> Printf.sprintf ", \"peak_live_words\": %d" n
        | None -> ""
      in
      let opt_cores = function
        | Some n -> Printf.sprintf ", \"cores\": %d" n
        | None -> ""
      in
      let opt_shed = function
        | Some n -> Printf.sprintf ", \"shed\": %d" n
        | None -> ""
      in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"median_seconds\": %.6e, \"speedup\": %.3f%s%s%s%s%s%s}%s\n"
        e.be_name e.be_seconds e.be_speedup
        (opt_int e.be_trials)
        (opt_float "exact_fraction" e.be_exact_fraction)
        (opt_float "mean_width" e.be_width)
        (opt_words e.be_peak_words)
        (opt_cores e.be_cores)
        (opt_shed e.be_shed)
        (if i = List.length items - 1 then "" else ","))
    items;
  output_string oc "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path
