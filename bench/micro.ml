(* Bechamel microbenchmarks: one Test.make per timed kernel, reported as
   ns/run from an OLS fit. *)

open Bechamel
open Toolkit
open Pqdb_urel
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Gen = Pqdb_workload.Gen
module Scenarios = Pqdb_workload.Scenarios
module Apred = Pqdb_ast.Apred
module Dnf = Pqdb_montecarlo.Dnf
module Karp_luby = Pqdb_montecarlo.Karp_luby
module Mc_confidence = Pqdb_montecarlo.Confidence
module Schema = Pqdb_relational.Schema
module Tuple = Pqdb_relational.Tuple

let test_shannon_confidence () =
  let rng = Rng.create ~seed:201 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  Test.make ~name:"confidence/shannon-12v"
    (Staged.stage (fun () -> ignore (Confidence.by_shannon w clauses)))

let test_karp_luby () =
  let rng = Rng.create ~seed:202 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  let dnf = Dnf.prepare w clauses in
  Test.make ~name:"confidence/karp-luby-1k-trials"
    (Staged.stage (fun () -> ignore (Karp_luby.run rng dnf ~trials:1000)))

let join_inputs () =
  let rng = Rng.create ~seed:203 in
  let w = Wtable.create () in
  let r = Gen.tuple_independent rng w ~attrs:[ "A"; "B" ] ~rows:500 ~domain:100 in
  let s =
    Urelation.of_relation
      (Gen.random_relation rng ~attrs:[ "B"; "C" ] ~rows:100 ~domain:100)
  in
  (r, s)

let test_translate_join () =
  let r, s = join_inputs () in
  Test.make ~name:"translate/hashjoin-500x100"
    (Staged.stage (fun () -> ignore (Translate.join r s)))

let kl_dnf () =
  let rng = Rng.create ~seed:202 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  Dnf.prepare w clauses

let test_karp_luby_parallel nworkers =
  let dnf = kl_dnf () in
  let rng = Rng.create ~seed:202 in
  Test.make
    ~name:(Printf.sprintf "confidence/karp-luby-parallel-%ddom" nworkers)
    (Staged.stage (fun () ->
         ignore (Karp_luby.run_parallel ~nworkers rng dnf ~trials:1000)))

let batch_inputs () =
  let rng = Rng.create ~seed:208 in
  let w = Wtable.create () in
  let u =
    Gen.tuple_independent rng w ~attrs:[ "A"; "B" ] ~rows:500 ~domain:50
  in
  let clause_sets =
    Array.of_list (List.map snd (Urelation.clauses_by_tuple u))
  in
  (w, clause_sets)

let test_batch_confidence () =
  let w, clause_sets = batch_inputs () in
  let batch = Mc_confidence.prepare w clause_sets in
  let rng = Rng.create ~seed:208 in
  Test.make ~name:"confidence/batch-500-tuples"
    (Staged.stage (fun () ->
         ignore (Mc_confidence.run ~nworkers:2 rng batch ~eps:0.3 ~delta:0.2)))

let test_thm52 () =
  let rng = Rng.create ~seed:204 in
  let pred = Gen.linear_predicate rng ~arity:8 in
  let point = Array.init 8 (fun _ -> Rng.float_range rng 0.1 0.9) in
  Test.make ~name:"epsilon/closed-form-k8"
    (Staged.stage (fun () -> ignore (Pqdb.Epsilon.epsilon pred point)))

let test_corner_search () =
  let pred =
    Apred.ge (Apred.Div (Apred.var 0, Apred.var 1)) (Apred.const 0.5)
  in
  let point = [| 0.5; 0.45 |] in
  Test.make ~name:"epsilon/corner-search-k2"
    (Staged.stage (fun () ->
         ignore (Pqdb.Orthotope.epsilon_search pred point)))

let test_coin_posterior () =
  Test.make ~name:"query/coin-posterior-exact"
    (Staged.stage (fun () ->
         let udb = Scenarios.coin_db () in
         ignore
           (Pqdb.Eval_exact.eval_relation udb
              Scenarios.coin_queries.Scenarios.u)))

let test_repair_key () =
  let rng = Rng.create ~seed:205 in
  let rel =
    Gen.weighted_relation rng ~attrs:[ "A"; "B" ] ~rows:300 ~domain:40
      ~weight:"W"
  in
  let u = Urelation.of_relation rel in
  Test.make ~name:"translate/repair-key-300"
    (Staged.stage (fun () ->
         let w = Wtable.create () in
         ignore (Translate.repair_key w ~key:[ "A" ] ~weight:"W" u)))

let test_decomposition () =
  let rng = Rng.create ~seed:206 in
  let w = Wtable.create () in
  let clauses = Gen.random_dnf rng w ~vars:12 ~clauses:12 ~clause_len:3 in
  Test.make ~name:"confidence/decomposition-12v"
    (Staged.stage (fun () -> ignore (Confidence.by_decomposition w clauses)))

let test_optimizer () =
  let q =
    Pqdb_lang.Qparser.parse_query
      "select[A = 0](conf(project[A, B](repairkey[A @ W](R))))"
  in
  let lookup = function
    | "R" -> Some [ "A"; "B"; "W" ]
    | _ -> None
  in
  Test.make ~name:"optimizer/push-below-conf"
    (Staged.stage (fun () -> ignore (Pqdb.Optimizer.optimize ~lookup q)))

let test_topk () =
  Test.make ~name:"topk/coin-top1"
    (Staged.stage (fun () ->
         let rng = Rng.create ~seed:207 in
         let udb = Scenarios.coin_db () in
         ignore
           (Pqdb.Topk.query ~rng ~delta:0.1 ~k:1 udb
              Scenarios.coin_queries.Scenarios.t)))

let run () =
  Report.section "MICRO" "Bechamel kernels (ns per run, OLS fit)";
  let tests =
    Test.make_grouped ~name:"pqdb"
      [
        test_shannon_confidence ();
        test_karp_luby ();
        test_karp_luby_parallel 1;
        test_karp_luby_parallel 2;
        test_karp_luby_parallel 4;
        test_batch_confidence ();
        test_translate_join ();
        test_thm52 ();
        test_corner_search ();
        test_coin_posterior ();
        test_repair_key ();
        test_decomposition ();
        test_optimizer ();
        test_topk ();
      ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> t
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan
      in
      rows :=
        [ name; Report.fmt_seconds (estimate /. 1e9); Printf.sprintf "%.4f" r2 ]
        :: !rows)
    results;
  Report.table
    ~header:[ "kernel"; "time/run"; "r^2" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Confidence-engine wall-clock comparisons + BENCH_confidence.json    *)
(* ------------------------------------------------------------------ *)

(* The textbook O(|a|·|b|) join, kept here only as the baseline the hash
   join in Translate.join is measured against. *)
let nested_loop_join a b =
  let sa = Urelation.schema a and sb = Urelation.schema b in
  let shared = Schema.common sa sb in
  let sb_only =
    List.filter (fun x -> not (List.mem x shared)) (Schema.attributes sb)
  in
  let out_schema = Schema.of_list (Schema.attributes sa @ sb_only) in
  let sa_shared = List.map (Schema.index sa) shared in
  let sb_shared = List.map (Schema.index sb) shared in
  let sb_only_pos = List.map (Schema.index sb) sb_only in
  let rows_b = Urelation.rows b in
  let rows =
    List.concat_map
      (fun (fa, ta) ->
        List.filter_map
          (fun (fb, tb) ->
            if
              Tuple.equal (Tuple.project ta sa_shared)
                (Tuple.project tb sb_shared)
            then
              match Assignment.union fa fb with
              | Some f ->
                  Some (f, Tuple.concat ta (Tuple.project tb sb_only_pos))
              | None -> None
            else None)
          rows_b)
      (Urelation.rows a)
  in
  Urelation.make out_schema rows

let confidence_engine () =
  Report.section "CONF-ENGINE"
    "Confidence-engine wall clock: parallel Karp-Luby, batch FPRAS, hash join";
  let entries = ref [] in
  let record name seconds baseline =
    entries := (name, seconds, baseline /. seconds) :: !entries
  in
  (* 1. Domain-parallel Karp-Luby on one large trial budget. *)
  let dnf = kl_dnf () in
  let trials = 200_000 in
  let serial =
    Report.time_median (fun () ->
        ignore (Karp_luby.run (Rng.create ~seed:1) dnf ~trials))
  in
  record "karp-luby-serial-200k" serial serial;
  let kl_rows =
    List.map
      (fun n ->
        let s =
          Report.time_median (fun () ->
              ignore
                (Karp_luby.run_parallel ~nworkers:n (Rng.create ~seed:1) dnf
                   ~trials))
        in
        record (Printf.sprintf "karp-luby-parallel-%ddom-200k" n) s serial;
        [
          Printf.sprintf "%d domains" n;
          Report.fmt_seconds s;
          Printf.sprintf "%.2fx" (serial /. s);
        ])
      [ 1; 2; 4 ]
  in
  Report.table
    ~header:[ "karp-luby, 200k trials"; "median"; "speedup vs serial" ]
    ([ "serial"; Report.fmt_seconds serial; "1.00x" ] :: kl_rows);
  (* 2. Batched whole-relation FPRAS vs a per-tuple prepare+fpras loop. *)
  let w, clause_sets = batch_inputs () in
  let eps = 0.3 and delta = 0.2 in
  let per_tuple =
    Report.time_median (fun () ->
        let rng = Rng.create ~seed:2 in
        Array.iter
          (fun clauses ->
            ignore (Karp_luby.confidence rng w clauses ~eps ~delta))
          clause_sets)
  in
  record "per-tuple-fpras-500" per_tuple per_tuple;
  let batch = Mc_confidence.prepare w clause_sets in
  let batched =
    Report.time_median (fun () ->
        ignore (Mc_confidence.run (Rng.create ~seed:2) batch ~eps ~delta))
  in
  record "batch-fpras-500" batched per_tuple;
  Report.table
    ~header:[ "500-tuple confidence"; "median"; "speedup" ]
    [
      [ "per-tuple fpras loop"; Report.fmt_seconds per_tuple; "1.00x" ];
      [
        "batch (prepared, pooled)";
        Report.fmt_seconds batched;
        Printf.sprintf "%.2fx" (per_tuple /. batched);
      ];
    ];
  (* 3. Hash join vs the nested-loop baseline it replaced. *)
  let r, s = join_inputs () in
  let nested =
    Report.time_median (fun () -> ignore (nested_loop_join r s))
  in
  record "join-nested-loop-500x100" nested nested;
  let hashed = Report.time_median (fun () -> ignore (Translate.join r s)) in
  record "join-hash-500x100" hashed nested;
  Report.table
    ~header:[ "join 500x100"; "median"; "speedup" ]
    [
      [ "nested loop"; Report.fmt_seconds nested; "1.00x" ];
      [
        "hash join";
        Report.fmt_seconds hashed;
        Printf.sprintf "%.2fx" (nested /. hashed);
      ];
    ];
  (* Machine-readable record for EXPERIMENTS.md and regression tracking. *)
  let path = "BENCH_confidence.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"schema\": \"pqdb-bench-confidence/v1\",\n  \"recommended_domains\": %d,\n  \"results\": [\n"
    (Domain.recommended_domain_count ());
  let items = List.rev !entries in
  List.iteri
    (fun i (name, seconds, speedup) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"median_seconds\": %.6e, \"speedup\": %.3f}%s\n"
        name seconds speedup
        (if i = List.length items - 1 then "" else ","))
    items;
  output_string oc "  ]\n}\n";
  close_out oc;
  Report.note "wrote %s" path
