(* E18: conditioning on the dedup fixture — what renormalizing by
   Pr(constraints) costs on top of plain confidence, and how much of the
   conditioned work the compiled (exact) path still absorbs.

   The instance is Gen.add_dirty_people's duplicate-heavy people(id, name):
   conditioning on fd[id -> name](people) is the Example 2.2 cleaning
   scenario.  Every conditioned answer is four positive-DNF solves behind a
   difference and a ratio, so the honest expectation is a constant-factor
   slowdown — not an asymptotic one — as long as the conjoined lineages
   still compile.  Results land in BENCH_conditioning.json. *)

open Pqdb_urel
module Rng = Pqdb_numeric.Rng
module Gen = Pqdb_workload.Gen
module Memo = Pqdb_montecarlo.Memo
module Compile = Pqdb_montecarlo.Compile
module Cset = Pqdb_conditioning.Constraint_set
module Condition = Pqdb_conditioning.Condition
module Uconstraint = Pqdb_ast.Uconstraint
module Ua = Pqdb_ast.Ua

let eps = 0.05
let delta = 0.01

(* Plain per-tuple confidence through the same Memo + Compile.solve path the
   serve daemon and batch use — the fair baseline for the conditioned loop. *)
let unconditioned_pass w sets cache seed =
  let n = Array.length sets in
  let rngs = Rng.split_n (Rng.create ~seed) n in
  for i = 0 to n - 1 do
    let tree = Memo.find_or_compile cache w sets.(i) in
    ignore (Compile.solve rngs.(i) tree ~eps ~delta)
  done

let conditioned_pass w sets compiled cache seed =
  let n = Array.length sets in
  let rngs = Rng.split_n (Rng.create ~seed) (n + 1) in
  let den =
    Condition.solve_denominator ~cache rngs.(n) w compiled ~eps ~delta
  in
  Array.iteri
    (fun i clauses ->
      ignore
        (Condition.solve_clauses ~cache rngs.(i) w compiled den clauses ~eps
           ~delta))
    sets

let run ~quick =
  Report.section "E18"
    "conditioning: renormalized confidence on the dedup fixture \
     (fd[id -> name], Theorem 4.4 differences + interval ratio)";
  let entities = if quick then 24 else 120 in
  let max_dups = 3 in
  let udb = Gen.dirty_db (Rng.create ~seed:4242) ~entities ~max_dups in
  let w = Udb.wtable udb in
  let u = Udb.find udb "people" in
  let sets = Array.of_list (List.map snd (Urelation.clauses_by_tuple u)) in
  let n = Array.length sets in
  let compiled =
    Condition.compile udb
      (Cset.of_list
         [
           Uconstraint.Fd
             { table = "people"; key = [ "id" ]; determined = [ "name" ] };
         ])
  in
  (* Cold: cache pays compilation.  Warm: every entry present, the loop is
     pure Compile.solve — the serve daemon's steady state. *)
  let cold f =
    let cache = Memo.create ~entries:1024 () in
    Report.timed (fun () -> f cache) |> snd
  in
  let warm f =
    let cache = Memo.create ~entries:1024 () in
    f cache;
    Report.time_median (fun () -> f cache)
  in
  let plain_cold = cold (fun c -> unconditioned_pass w sets c 42) in
  let plain_warm = warm (fun c -> unconditioned_pass w sets c 42) in
  let cond_cold = cold (fun c -> conditioned_pass w sets compiled c 42) in
  let cond_warm = warm (fun c -> conditioned_pass w sets compiled c 42) in
  (* Exactness and spend, via the user-facing entry point. *)
  let estimates =
    Condition.approx_confidences ~seed:42 ~eps ~delta udb compiled
      (Ua.table "people")
  in
  let exact_count =
    List.length (List.filter (fun (_, e) -> e.Condition.exact) estimates)
  in
  let trials =
    List.fold_left (fun acc (_, e) -> acc + e.Condition.trials) 0 estimates
  in
  let exact_fraction = float_of_int exact_count /. float_of_int n in
  Report.table
    ~header:
      [
        Printf.sprintf "people: %d tuples, %d entities" n entities;
        "cold";
        "warm";
        "warm overhead";
      ]
    [
      [
        "unconditioned conf";
        Report.fmt_seconds plain_cold;
        Report.fmt_seconds plain_warm;
        "1.00x";
      ];
      [
        "conditioned on fd[id -> name]";
        Report.fmt_seconds cond_cold;
        Report.fmt_seconds cond_warm;
        Printf.sprintf "%.2fx" (cond_warm /. plain_warm);
      ];
    ];
  Report.note
    "exact on %d/%d conditioned tuples (%.0f%%), %d sampling trials total"
    exact_count n (100. *. exact_fraction) trials;
  let oc = open_out "BENCH_conditioning.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"pqdb-bench-conditioning/v1\",\n\
    \  \"fixture\": { \"relation\": \"people\", \"entities\": %d, \
     \"max_dups\": %d, \"tuples\": %d,\n\
    \                \"constraint\": \"fd[id -> name](people)\" },\n\
    \  \"eps\": %g, \"delta\": %g,\n\
    \  \"unconditioned_s\": { \"cold\": %.6e, \"warm\": %.6e },\n\
    \  \"conditioned_s\": { \"cold\": %.6e, \"warm\": %.6e },\n\
    \  \"warm_overhead_x\": %.4f,\n\
    \  \"exact_fraction\": %.4f,\n\
    \  \"sampling_trials\": %d\n\
     }\n"
    entities max_dups n eps delta plain_cold plain_warm cond_cold cond_warm
    (cond_warm /. plain_warm) exact_fraction trials;
  close_out oc;
  Report.note "wrote BENCH_conditioning.json"
