(* Tests for the anytime execution layer: the Budget governor, graceful
   degradation under deadlines / trial caps / cancellation, and the
   soundness of the partial-trial intervals every layer falls back to. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
open Pqdb_montecarlo
module Q = Rational
module FP = Pqdb_runtime.Faultpoint

(* Exercise the parallel path even on single-core machines. *)
let () = Unix.putenv "PQDB_POOL_WORKERS" "3"

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* The batch from test_montecarlo: a 3-clause DNF (p = 0.88), a single
   Bernoulli clause (p = 0.5), a certain and an impossible tuple. *)
let batch_fixture () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 3 10; Q.of_ints 7 10 ] in
  let y = Wtable.add_var w [ Q.of_ints 1 2; Q.of_ints 1 2 ] in
  let z = Wtable.add_var w [ Q.of_ints 4 5; Q.of_ints 1 5 ] in
  let clause_sets =
    [|
      [
        Assignment.singleton x 1;
        Assignment.of_list [ (y, 1); (z, 0) ];
        Assignment.of_list [ (x, 0); (z, 1) ];
      ];
      [ Assignment.singleton y 1 ];
      [ Assignment.empty ];
      [];
    |]
  in
  (w, clause_sets)

let exact_probs w clause_sets =
  Array.map
    (fun clauses -> Q.to_float (Pqdb_urel.Confidence.exact w clauses))
    clause_sets

let assert_sound_intervals name exact (stats : Confidence.stats) =
  Array.iteri
    (fun i p ->
      let lo, hi = stats.Confidence.intervals.(i) in
      check bool_c
        (Printf.sprintf "%s: tuple %d interval [%g, %g] ordered" name i lo hi)
        true (lo <= hi +. 1e-12);
      check bool_c
        (Printf.sprintf "%s: tuple %d exact %.4f inside [%g, %g]" name i p lo
           hi)
        true
        (lo -. 1e-9 <= p && p <= hi +. 1e-9))
    exact

(* ------------------------------------------------------------------ *)
(* Budget basics                                                       *)
(* ------------------------------------------------------------------ *)

let test_budget_validation () =
  Alcotest.check_raises "deadline <= 0"
    (Invalid_argument "Budget.create: deadline_s must be positive") (fun () ->
      ignore (Budget.create ~deadline_s:0. ()));
  Alcotest.check_raises "max_trials <= 0"
    (Invalid_argument "Budget.create: max_trials must be positive") (fun () ->
      ignore (Budget.create ~max_trials:0 ()))

let test_budget_accounting () =
  let b = Budget.create ~max_trials:10 () in
  check bool_c "fresh budget not exhausted" false (Budget.exhausted b);
  check int_c "nothing spent" 0 (Budget.spent b);
  check int_c "all remaining" 10 (Budget.remaining_trials b);
  Budget.spend b 4;
  check int_c "4 spent" 4 (Budget.spent b);
  check int_c "6 remaining" 6 (Budget.remaining_trials b);
  check bool_c "still live" false (Budget.exhausted b);
  Budget.spend b 7;
  check bool_c "over the cap" true (Budget.exhausted b);
  check int_c "remaining never negative" 0 (Budget.remaining_trials b);
  (* A limitless budget only exhausts via cancel. *)
  let b = Budget.create () in
  check bool_c "limitless" false (Budget.exhausted b);
  Budget.spend b 1_000_000;
  check bool_c "still limitless" false (Budget.exhausted b);
  check bool_c "not cancelled" false (Budget.cancelled b);
  Budget.cancel b;
  check bool_c "cancelled" true (Budget.cancelled b);
  check bool_c "cancel exhausts" true (Budget.exhausted b)

let test_budget_deadline_sticky () =
  let b = Budget.create ~deadline_s:0.02 () in
  let rec spin () = if not (Budget.exhausted b) then spin () in
  spin ();
  (* Once observed expired it stays expired. *)
  check bool_c "sticky" true (Budget.exhausted b)

(* ------------------------------------------------------------------ *)
(* Karp-Luby partials                                                  *)
(* ------------------------------------------------------------------ *)

let test_adaptive_partial_no_budget_bit_identical () =
  let w, clause_sets = batch_fixture () in
  let dnf = Dnf.prepare w clause_sets.(0) in
  let reference, trials =
    Karp_luby.adaptive (Rng.create ~seed:7) dnf ~eps:0.1 ~delta:0.1
  in
  let p =
    Karp_luby.adaptive_partial (Rng.create ~seed:7) dnf ~eps:0.1 ~delta:0.1
  in
  check (Alcotest.float 0.) "same estimate" reference p.Karp_luby.p_estimate;
  check int_c "same trial count" trials p.Karp_luby.p_trials;
  check bool_c "complete" true p.Karp_luby.p_complete;
  check bool_c "estimate inside own interval" true
    (p.Karp_luby.p_lo <= p.Karp_luby.p_estimate
    && p.Karp_luby.p_estimate <= p.Karp_luby.p_hi)

let test_adaptive_partial_exhausted_budget_vacuous () =
  let w, clause_sets = batch_fixture () in
  let dnf = Dnf.prepare w clause_sets.(0) in
  let b = Budget.create () in
  Budget.cancel b;
  let p =
    Karp_luby.adaptive_partial ~budget:b (Rng.create ~seed:7) dnf ~eps:0.1
      ~delta:0.1
  in
  check int_c "no trials ran" 0 p.Karp_luby.p_trials;
  check bool_c "incomplete" false p.Karp_luby.p_complete;
  check (Alcotest.float 0.) "vacuous lower bound" 0. p.Karp_luby.p_lo;
  check (Alcotest.float 1e-9) "vacuous upper bound = min(1, M)"
    (Float.min 1. (Dnf.total_weight dnf))
    p.Karp_luby.p_hi;
  check bool_c "achieved eps infinite" true
    (p.Karp_luby.p_eps = Float.infinity)

let test_adaptive_partial_interval_soundness () =
  (* With a hard trial cap, the partial-trial Chernoff inversion must still
     bracket the truth (at confidence 1 - delta; the seeds below stay
     within it). *)
  let w, clause_sets = batch_fixture () in
  let dnf = Dnf.prepare w clause_sets.(0) in
  let exact = Q.to_float (Dnf.exact dnf) in
  List.iter
    (fun seed ->
      List.iter
        (fun cap ->
          let b = Budget.create ~max_trials:cap () in
          let p =
            Karp_luby.adaptive_partial ~budget:b (Rng.create ~seed) dnf
              ~eps:0.05 ~delta:0.05
          in
          check bool_c
            (Printf.sprintf "seed %d cap %d: %.4f in [%g, %g]" seed cap exact
               p.Karp_luby.p_lo p.Karp_luby.p_hi)
            true
            (p.Karp_luby.p_lo -. 1e-9 <= exact
            && exact <= p.Karp_luby.p_hi +. 1e-9);
          check bool_c
            (Printf.sprintf "seed %d cap %d: spend within cap" seed cap)
            true
            (p.Karp_luby.p_trials <= cap))
        [ 1; 10; 100; 1000 ])
    [ 3; 17; 42; 99; 123 ]

(* ------------------------------------------------------------------ *)
(* Batched confidence under budgets                                    *)
(* ------------------------------------------------------------------ *)

let test_batch_no_budget_complete () =
  let w, clause_sets = batch_fixture () in
  let exact = exact_probs w clause_sets in
  let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
  let _, stats =
    Confidence.run_with_stats (Rng.create ~seed:5) batch ~eps:0.1 ~delta:0.05
  in
  check bool_c "no budget: complete" true stats.Confidence.complete;
  assert_sound_intervals "no budget" exact stats;
  Array.iter
    (fun e -> check bool_c "achieved eps within request" true (e <= 0.1))
    stats.Confidence.achieved_eps

let test_batch_trial_cap_sound () =
  let w, clause_sets = batch_fixture () in
  let exact = exact_probs w clause_sets in
  List.iter
    (fun seed ->
      List.iter
        (fun cap ->
          let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
          let b = Budget.create ~max_trials:cap () in
          let estimates, stats =
            Confidence.run_with_stats ~budget:b (Rng.create ~seed) batch
              ~eps:0.05 ~delta:0.05
          in
          assert_sound_intervals
            (Printf.sprintf "cap %d seed %d" cap seed)
            exact stats;
          Array.iteri
            (fun i v ->
              let lo, hi = stats.Confidence.intervals.(i) in
              check bool_c
                (Printf.sprintf "cap %d seed %d: estimate %d in own interval"
                   cap seed i)
                true
                (lo -. 1e-9 <= v && v <= hi +. 1e-9))
            estimates;
          (* The shared governor may overshoot by at most one in-flight
             trial per worker. *)
          check bool_c
            (Printf.sprintf "cap %d seed %d: spend %d bounded" cap seed
               (Budget.spent b))
            true
            (Budget.spent b <= cap + 8))
        [ 1; 20; 500 ])
    [ 2; 31; 77 ]

let test_batch_cancelled_budget_degrades () =
  let w, clause_sets = batch_fixture () in
  let exact = exact_probs w clause_sets in
  let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
  let b = Budget.create () in
  Budget.cancel b;
  let _, stats =
    Confidence.run_with_stats ~budget:b (Rng.create ~seed:11) batch ~eps:0.05
      ~delta:0.05
  in
  check bool_c "cancelled: incomplete" false stats.Confidence.complete;
  assert_sound_intervals "cancelled" exact stats;
  (* The exact tuples still come out as points. *)
  let lo2, hi2 = stats.Confidence.intervals.(2) in
  check (Alcotest.float 0.) "certain tuple lo" 1. lo2;
  check (Alcotest.float 0.) "certain tuple hi" 1. hi2;
  let lo3, hi3 = stats.Confidence.intervals.(3) in
  check (Alcotest.float 0.) "impossible tuple lo" 0. lo3;
  check (Alcotest.float 0.) "impossible tuple hi" 0. hi3

let test_deadline_bounds_wallclock () =
  (* A sampling job that would take far longer than the deadline: 24
     independent clauses, compilation disabled, tiny eps.  The run must
     come back within twice the requested wall-clock budget (the ISSUE's
     acceptance criterion), with sound degraded intervals. *)
  let w = Wtable.create () in
  let clauses =
    List.init 24 (fun _ ->
        let v = Wtable.add_var w [ Q.half; Q.half ] in
        Assignment.singleton v 1)
  in
  let clause_sets = [| clauses |] in
  let exact = exact_probs w clause_sets in
  let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
  let deadline = 0.2 in
  let b = Budget.create ~deadline_s:deadline () in
  let t0 = Unix.gettimeofday () in
  let _, stats =
    Confidence.run_with_stats ~budget:b (Rng.create ~seed:13) batch
      ~eps:0.001 ~delta:0.01
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check bool_c
    (Printf.sprintf "returned in %.3fs (deadline %.3fs)" elapsed deadline)
    true
    (elapsed <= 2. *. deadline);
  check bool_c "deadline run incomplete" false stats.Confidence.complete;
  check bool_c "spent some trials before the deadline" true
    (Budget.spent b > 0);
  assert_sound_intervals "deadline" exact stats

let test_generous_budget_stays_complete () =
  (* A budget large enough to finish must not change completeness. *)
  let w, clause_sets = batch_fixture () in
  let exact = exact_probs w clause_sets in
  let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
  let b = Budget.create ~max_trials:10_000_000 () in
  let _, stats =
    Confidence.run_with_stats ~budget:b (Rng.create ~seed:17) batch ~eps:0.1
      ~delta:0.1
  in
  check bool_c "generous budget: complete" true stats.Confidence.complete;
  assert_sound_intervals "generous" exact stats

(* ------------------------------------------------------------------ *)
(* Empty / all-exact batches never touch the pool (regression)         *)
(* ------------------------------------------------------------------ *)

let test_exact_batches_skip_pool () =
  (* Arm the pool's per-task fault point: if the batch engine touched the
     pool at all, the injected failure would mark the run incomplete. *)
  FP.arm "pool.task";
  Fun.protect ~finally:FP.reset (fun () ->
      let w = Wtable.create () in
      (* Empty batch. *)
      let batch = Confidence.prepare w [||] in
      let estimates, stats =
        Confidence.run_with_stats (Rng.create ~seed:1) batch ~eps:0.1
          ~delta:0.1
      in
      check int_c "empty batch: no estimates" 0 (Array.length estimates);
      check (Alcotest.float 0.) "empty batch: exact fraction" 1.
        stats.Confidence.exact_fraction;
      check bool_c "empty batch: complete" true stats.Confidence.complete;
      (* All-false and certain lineages: fully exact, no sampling tasks. *)
      let batch = Confidence.prepare w [| []; [ Assignment.empty ] |] in
      let estimates, stats =
        Confidence.run_with_stats (Rng.create ~seed:1) batch ~eps:0.1
          ~delta:0.1
      in
      check (Alcotest.float 0.) "impossible tuple" 0. estimates.(0);
      check (Alcotest.float 0.) "certain tuple" 1. estimates.(1);
      check (Alcotest.float 0.) "all-exact batch: exact fraction" 1.
        stats.Confidence.exact_fraction;
      check bool_c "all-exact batch: complete despite armed pool" true
        stats.Confidence.complete)

(* ------------------------------------------------------------------ *)
(* Top-k under budgets                                                 *)
(* ------------------------------------------------------------------ *)

let test_topk_anytime_exit () =
  let w, clause_sets = batch_fixture () in
  let candidates =
    List.mapi
      (fun i clauses -> (Tuple.of_list [ Value.Int i ], Dnf.prepare w clauses))
      (Array.to_list clause_sets)
  in
  let b = Budget.create () in
  Budget.cancel b;
  let r =
    Pqdb.Topk.run ~budget:b ~compile_fuel:0 ~rng:(Rng.create ~seed:3)
      ~delta:0.1 ~k:2 candidates
  in
  check bool_c "cancelled top-k uncertified" false r.Pqdb.Topk.certified;
  check int_c "still returns k tuples" 2 (List.length r.Pqdb.Topk.ranked);
  (* With a generous budget the ranking certifies and agrees with the exact
     order: the certain tuple wins. *)
  let r =
    Pqdb.Topk.run
      ~budget:(Budget.create ~max_trials:10_000_000 ())
      ~compile_fuel:0 ~rng:(Rng.create ~seed:3) ~delta:0.1 ~k:1 candidates
  in
  check bool_c "generous top-k certified" true r.Pqdb.Topk.certified;
  match r.Pqdb.Topk.ranked with
  | [ (t, p) ] ->
      check int_c "certain tuple wins" 2
        (match Tuple.get t 0 with Value.Int i -> i | _ -> -1);
      check (Alcotest.float 1e-9) "with probability 1" 1. p
  | _ -> Alcotest.fail "expected exactly one ranked tuple"

(* ------------------------------------------------------------------ *)
(* Approximate evaluation under budgets                                *)
(* ------------------------------------------------------------------ *)

let test_eval_approx_budget_suspects () =
  (* A cancelled budget forces every sigma-hat decision to stop at its
     current estimate: the pass must come back (no exception) with the
     affected tuples flagged as suspects, exactly like paper-style
     singularities. *)
  let module Ua = Pqdb_ast.Ua in
  let module Apred = Pqdb_ast.Apred in
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  let u =
    Pqdb_workload.Gen.tuple_independent (Rng.create ~seed:44) w
      ~attrs:[ "A"; "B" ] ~rows:4 ~domain:3
  in
  Udb.add_urelation udb "U" u;
  let query =
    Ua.approx_select
      (Apred.ge (Apred.var 0) (Apred.const 0.44))
      [ [ "A"; "B" ] ]
      (Ua.table "U")
  in
  let b = Budget.create () in
  Budget.cancel b;
  let result, stats =
    Pqdb.Eval_approx.eval ~budget:b ~rng:(Rng.create ~seed:9) udb query
  in
  check bool_c "unreliable" true result.Pqdb.Eval_approx.unreliable;
  check bool_c "round-limit hits recorded" true
    (stats.Pqdb.Eval_approx.round_limit_hits > 0);
  check bool_c "decisions still made" true
    (stats.Pqdb.Eval_approx.decisions > 0);
  (* The same query with no budget runs Figure 3 to its stopping rule. *)
  let _, stats =
    Pqdb.Eval_approx.eval ~rng:(Rng.create ~seed:9) udb query
  in
  check int_c "no budget: no round-limit hits" 0
    stats.Pqdb.Eval_approx.round_limit_hits

let () =
  Alcotest.run "robustness"
    [
      ( "budget",
        [
          Alcotest.test_case "validation" `Quick test_budget_validation;
          Alcotest.test_case "accounting" `Quick test_budget_accounting;
          Alcotest.test_case "deadline sticky" `Quick
            test_budget_deadline_sticky;
        ] );
      ( "karp-luby partials",
        [
          Alcotest.test_case "no budget bit-identical" `Quick
            test_adaptive_partial_no_budget_bit_identical;
          Alcotest.test_case "exhausted budget vacuous" `Quick
            test_adaptive_partial_exhausted_budget_vacuous;
          Alcotest.test_case "partial intervals sound" `Quick
            test_adaptive_partial_interval_soundness;
        ] );
      ( "anytime batch",
        [
          Alcotest.test_case "no budget complete" `Quick
            test_batch_no_budget_complete;
          Alcotest.test_case "trial cap sound" `Quick
            test_batch_trial_cap_sound;
          Alcotest.test_case "cancelled budget degrades" `Quick
            test_batch_cancelled_budget_degrades;
          Alcotest.test_case "deadline bounds wall-clock" `Quick
            test_deadline_bounds_wallclock;
          Alcotest.test_case "generous budget complete" `Quick
            test_generous_budget_stays_complete;
          Alcotest.test_case "exact batches skip the pool" `Quick
            test_exact_batches_skip_pool;
        ] );
      ( "anytime top-k",
        [ Alcotest.test_case "anytime exit" `Quick test_topk_anytime_exit ] );
      ( "anytime sigma-hat",
        [
          Alcotest.test_case "budget flags suspects" `Quick
            test_eval_approx_budget_suspects;
        ] );
    ]
