(* Tests for the relational substrate: values, schemas, tuples, relations,
   expressions, predicates, algebra operators and CSV. *)

open Pqdb_relational
module V = Value
module Q = Pqdb_numeric.Rational

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string
let rel_testable = Alcotest.testable Relation.pp Relation.equal
let value_testable = Alcotest.testable Value.pp Value.equal

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_numeric_tower () =
  check value_testable "int + int" (V.Int 3) (V.add (V.Int 1) (V.Int 2));
  check value_testable "int / int is exact rational" (V.of_ints 1 3)
    (V.div (V.Int 1) (V.Int 3));
  check value_testable "rat * int" (V.of_ints 2 3)
    (V.mul (V.of_ints 1 3) (V.Int 2));
  (match V.add (V.Int 1) (V.Float 0.5) with
  | V.Float f -> check (Alcotest.float 1e-12) "int + float" 1.5 f
  | _ -> Alcotest.fail "expected float");
  check value_testable "neg" (V.Int (-3)) (V.neg (V.Int 3))

let test_value_cross_type_compare () =
  check bool_c "Int 1 = Rat 1" true (V.equal (V.Int 1) (V.of_ints 2 2));
  check bool_c "Int 1 = Float 1." true (V.equal (V.Int 1) (V.Float 1.));
  check bool_c "1/3 < 1/2" true (V.compare (V.of_ints 1 3) (V.of_ints 1 2) < 0);
  check bool_c "string != int family" false (V.equal (V.Str "1") (V.Int 1))

let test_value_parse () =
  check value_testable "int" (V.Int 42) (V.parse "42");
  check value_testable "rational" (V.of_ints 1 3) (V.parse "1/3");
  check value_testable "float" (V.Float 2.5) (V.parse "2.5");
  check value_testable "bool" (V.Bool true) (V.parse "true");
  check value_testable "string" (V.Str "fair") (V.parse "fair")

let test_value_div_by_zero () =
  Alcotest.check_raises "int div by zero" Division_by_zero (fun () ->
      ignore (V.div (V.Int 1) (V.Int 0)))

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema_basics () =
  let s = Schema.of_list [ "A"; "B"; "C" ] in
  check int_c "arity" 3 (Schema.arity s);
  check int_c "index" 1 (Schema.index s "B");
  check bool_c "mem" true (Schema.mem s "C");
  check bool_c "not mem" false (Schema.mem s "D");
  Alcotest.check_raises "duplicate attrs rejected"
    (Invalid_argument "Schema: duplicate attribute A") (fun () ->
      ignore (Schema.of_list [ "A"; "A" ]))

let test_schema_ops () =
  let s = Schema.of_list [ "A"; "B" ] in
  let t = Schema.of_list [ "C" ] in
  check (Alcotest.list string_c) "concat" [ "A"; "B"; "C" ]
    (Schema.attributes (Schema.concat s t));
  check (Alcotest.list string_c) "rename" [ "A"; "B2" ]
    (Schema.attributes (Schema.rename s [ ("B", "B2") ]));
  check (Alcotest.list string_c) "restrict order" [ "B"; "A" ]
    (Schema.attributes (Schema.restrict s [ "B"; "A" ]));
  check (Alcotest.list string_c) "common" [ "A" ]
    (Schema.common s (Schema.of_list [ "X"; "A" ]));
  check (Alcotest.list string_c) "minus" [ "A" ]
    (Schema.attributes (Schema.minus s [ "B" ]))

(* ------------------------------------------------------------------ *)
(* Relations and algebra                                               *)
(* ------------------------------------------------------------------ *)

let r_ab rows = Relation.of_rows [ "A"; "B" ] rows

let sample =
  r_ab
    [
      [ V.Int 1; V.Str "x" ];
      [ V.Int 2; V.Str "y" ];
      [ V.Int 3; V.Str "x" ];
    ]

let test_relation_set_semantics () =
  let dup =
    r_ab [ [ V.Int 1; V.Str "x" ]; [ V.Int 1; V.Str "x" ] ]
  in
  check int_c "duplicates eliminated" 1 (Relation.cardinality dup);
  check bool_c "mem" true
    (Relation.mem sample (Tuple.of_list [ V.Int 2; V.Str "y" ]))

let test_select () =
  let r = Algebra.select Predicate.(Expr.(attr "A") >= Expr.int 2) sample in
  check int_c "selected" 2 (Relation.cardinality r);
  let r2 =
    Algebra.select
      Predicate.(Expr.(attr "B" = const (V.Str "x")) && Expr.(attr "A" < int 3))
      sample
  in
  check int_c "conjunction" 1 (Relation.cardinality r2)

let test_project () =
  let r = Algebra.project_attrs [ "B" ] sample in
  check int_c "dedup after projection" 2 (Relation.cardinality r);
  (* Computed column: A+A -> D *)
  let r2 = Algebra.project [ (Expr.(attr "A" + attr "A"), "D") ] sample in
  check bool_c "computed column" true
    (Relation.mem r2 (Tuple.of_list [ V.Int 6 ]))

let test_project_empty_attrs () =
  (* π_∅ of a nonempty relation is the single empty tuple (used as a Boolean
     query in Example 2.2's conf(π_∅(T))). *)
  let r = Algebra.project_attrs [] sample in
  check int_c "nullary relation" 1 (Relation.cardinality r);
  let empty = Relation.empty (Relation.schema sample) in
  check int_c "π_∅ of empty is empty" 0
    (Relation.cardinality (Algebra.project_attrs [] empty))

let test_rename () =
  let r = Algebra.rename [ ("A", "Z") ] sample in
  check (Alcotest.list string_c) "renamed schema" [ "Z"; "B" ]
    (Schema.attributes (Relation.schema r));
  check int_c "same tuples" 3 (Relation.cardinality r)

let test_product_join () =
  let s = Relation.of_rows [ "C" ] [ [ V.Int 10 ]; [ V.Int 20 ] ] in
  let p = Algebra.product sample s in
  check int_c "product size" 6 (Relation.cardinality p);
  let t =
    Relation.of_rows [ "B"; "C" ]
      [ [ V.Str "x"; V.Int 10 ]; [ V.Str "z"; V.Int 20 ] ]
  in
  let j = Algebra.join sample t in
  check int_c "join size" 2 (Relation.cardinality j);
  check (Alcotest.list string_c) "join schema" [ "A"; "B"; "C" ]
    (Schema.attributes (Relation.schema j));
  check bool_c "join content" true
    (Relation.mem j (Tuple.of_list [ V.Int 1; V.Str "x"; V.Int 10 ]))

let test_join_is_product_when_disjoint () =
  let s = Relation.of_rows [ "C" ] [ [ V.Int 10 ] ] in
  check rel_testable "join = product on disjoint schemas"
    (Algebra.product sample s) (Algebra.join sample s)

let test_union_diff () =
  let extra = r_ab [ [ V.Int 9; V.Str "w" ] ] in
  let u = Algebra.union sample extra in
  check int_c "union" 4 (Relation.cardinality u);
  let d = Algebra.diff u extra in
  check rel_testable "diff recovers" sample d;
  Alcotest.check_raises "schema mismatch"
    (Invalid_argument "Relation.union: schema mismatch") (fun () ->
      ignore
        (Algebra.union sample (Relation.of_rows [ "X" ] [ [ V.Int 1 ] ])))

let test_join_cross_type_keys () =
  (* Rat 1/2 and Float 0.5 are Value.equal but print differently; the join
     index must key on values, not on their string rendering. *)
  let r =
    Relation.of_rows [ "K"; "A" ]
      [ [ V.of_ints 1 2; V.Int 1 ]; [ V.Int 3; V.Int 2 ] ]
  in
  let s =
    Relation.of_rows [ "K"; "B" ]
      [ [ V.Float 0.5; V.Int 10 ]; [ V.Float 3.; V.Int 20 ] ]
  in
  let j = Algebra.join r s in
  check int_c "both cross-type keys match" 2 (Relation.cardinality j);
  check bool_c "1/2 joined 0.5" true
    (Relation.mem j (Tuple.of_list [ V.of_ints 1 2; V.Int 1; V.Int 10 ]))

let test_value_hash_respects_equal () =
  List.iter
    (fun (a, b) ->
      check bool_c
        (Printf.sprintf "hash %s = hash %s" (V.to_string a) (V.to_string b))
        true
        (V.equal a b && V.hash a = V.hash b))
    [
      (V.Int 1, V.Float 1.);
      (V.Int 1, V.of_ints 2 2);
      (V.Float 0.5, V.of_ints 1 2);
      (V.of_ints 4 6, V.of_ints 2 3);
    ];
  let t1 = Tuple.of_list [ V.Int 1; V.of_ints 1 2 ] in
  let t2 = Tuple.of_list [ V.Float 1.; V.Float 0.5 ] in
  check bool_c "tuple hash respects tuple equality" true
    (Tuple.equal t1 t2 && Tuple.hash t1 = Tuple.hash t2)

let test_group_by_cross_type_keys () =
  let r =
    Relation.of_rows [ "K"; "A" ]
      [
        [ V.of_ints 1 2; V.Str "a" ];
        [ V.Float 0.5; V.Str "b" ];
        [ V.Int 2; V.Str "c" ];
      ]
  in
  let groups = Algebra.group_by [ "K" ] r in
  check int_c "equal numeric keys share a group" 2 (List.length groups)

let test_group_by () =
  let groups = Algebra.group_by [ "B" ] sample in
  check int_c "two groups" 2 (List.length groups);
  let sizes =
    List.sort compare (List.map (fun (_, g) -> Relation.cardinality g) groups)
  in
  check (Alcotest.list int_c) "group sizes" [ 1; 2 ] sizes

let test_expr_eval () =
  let schema = Schema.of_list [ "A"; "B" ] in
  let tuple = Tuple.of_list [ V.Int 6; V.Int 4 ] in
  let e = Expr.((attr "A" - attr "B") / int 2) in
  check value_testable "(6-4)/2 = 1" (V.Int 1)
    ( match Expr.eval schema tuple e with
    | V.Rat r -> if Q.equal r Q.one then V.Int 1 else V.Rat r
    | v -> v );
  check (Alcotest.list string_c) "attributes" [ "A"; "B" ]
    (Expr.attributes e)

let test_predicate_nnf () =
  let p =
    Predicate.(
      Not (And (Cmp (Lt, Expr.attr "A", Expr.int 2), Not True)))
  in
  let n = Predicate.nnf p in
  let rec no_not = function
    | Predicate.Not _ -> false
    | Predicate.And (a, b) | Predicate.Or (a, b) -> no_not a && no_not b
    | Predicate.Cmp _ | Predicate.True | Predicate.False -> true
  in
  check bool_c "nnf has no Not" true (no_not n);
  (* Semantics preserved on all sample tuples. *)
  let schema = Relation.schema sample in
  Relation.iter
    (fun t ->
      check bool_c "nnf equivalent" (Predicate.eval schema t p)
        (Predicate.eval schema t n))
    sample

(* Property: nnf preserves predicate semantics on random atoms. *)
let prop_nnf_preserves =
  let pred_gen =
    let open QCheck.Gen in
    let atom =
      map2
        (fun op c ->
          let ops = [| Predicate.Eq; Neq; Lt; Le; Gt; Ge |] in
          Predicate.Cmp (ops.(op), Expr.attr "A", Expr.int c))
        (int_range 0 5) (int_range 0 4)
    in
    let rec go depth =
      if depth = 0 then atom
      else
        frequency
          [
            (2, atom);
            ( 1,
              map2 (fun a b -> Predicate.And (a, b)) (go (depth - 1))
                (go (depth - 1)) );
            ( 1,
              map2 (fun a b -> Predicate.Or (a, b)) (go (depth - 1))
                (go (depth - 1)) );
            (2, map (fun a -> Predicate.Not a) (go (depth - 1)));
          ]
    in
    go 3
  in
  QCheck.Test.make ~name:"predicate nnf preserves semantics" ~count:300
    (QCheck.make pred_gen) (fun p ->
      let schema = Schema.of_list [ "A" ] in
      List.for_all
        (fun a ->
          let t = Tuple.of_list [ V.Int a ] in
          Predicate.eval schema t p = Predicate.eval schema t (Predicate.nnf p))
        [ 0; 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Algebra laws (property-based)                                       *)
(* ------------------------------------------------------------------ *)

let relation_gen attrs domain =
  QCheck.map
    (fun rows ->
      Relation.of_list
        (Schema.of_list attrs)
        (List.map
           (fun vs -> Tuple.of_list (List.map (fun v -> V.Int v) vs))
           rows))
    (QCheck.small_list
       (QCheck.make
          QCheck.Gen.(flatten_l (List.map (fun _ -> int_range 0 (domain - 1)) attrs))))

let rel_ab = relation_gen [ "A"; "B" ] 3
let rel_bc = relation_gen [ "B"; "C" ] 3

(* Compare relations up to column order by projecting to a canonical
   attribute ordering. *)
let same_up_to_columns r1 r2 =
  let canon r =
    Algebra.project_attrs
      (List.sort compare (Schema.attributes (Relation.schema r)))
      r
  in
  Relation.equal (canon r1) (canon r2)

let prop_join_commutes =
  QCheck.Test.make ~name:"natural join commutes (up to columns)" ~count:200
    (QCheck.pair rel_ab rel_bc) (fun (r, s) ->
      same_up_to_columns (Algebra.join r s) (Algebra.join s r))

let prop_join_associates =
  QCheck.Test.make ~name:"natural join associates" ~count:100
    (QCheck.triple rel_ab rel_bc (relation_gen [ "C"; "D" ] 3))
    (fun (r, s, t) ->
      same_up_to_columns
        (Algebra.join (Algebra.join r s) t)
        (Algebra.join r (Algebra.join s t)))

let prop_select_fuses =
  QCheck.Test.make ~name:"selection fuses and commutes" ~count:200
    (QCheck.pair rel_ab (QCheck.pair (QCheck.int_range 0 2) (QCheck.int_range 0 2)))
    (fun (r, (a, b)) ->
      let p = Predicate.(Expr.attr "A" >= Expr.int a) in
      let q = Predicate.(Expr.attr "B" <= Expr.int b) in
      let lhs = Algebra.select p (Algebra.select q r) in
      let rhs = Algebra.select q (Algebra.select p r) in
      let fused = Algebra.select (Predicate.And (p, q)) r in
      Relation.equal lhs rhs && Relation.equal lhs fused)

let prop_project_idempotent =
  QCheck.Test.make ~name:"projection is idempotent" ~count:200 rel_ab
    (fun r ->
      let once = Algebra.project_attrs [ "A" ] r in
      Relation.equal once (Algebra.project_attrs [ "A" ] once))

let prop_union_laws =
  QCheck.Test.make ~name:"union is ACI" ~count:200 (QCheck.pair rel_ab rel_ab)
    (fun (r, s) ->
      Relation.equal (Algebra.union r s) (Algebra.union s r)
      && Relation.equal (Algebra.union r r) r)

let prop_diff_laws =
  QCheck.Test.make ~name:"difference laws" ~count:200
    (QCheck.pair rel_ab rel_ab) (fun (r, s) ->
      Relation.is_empty (Algebra.diff r r)
      && Relation.equal
           (Algebra.union (Algebra.diff r s) (Algebra.inter r s))
           r)

let prop_select_distributes_over_union =
  QCheck.Test.make ~name:"selection distributes over union" ~count:200
    (QCheck.pair rel_ab rel_ab) (fun (r, s) ->
      let p = Predicate.(Expr.attr "A" = Expr.int 1) in
      Relation.equal
        (Algebra.select p (Algebra.union r s))
        (Algebra.union (Algebra.select p r) (Algebra.select p s)))

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  let r =
    Relation.of_rows [ "CoinType"; "Count" ]
      [ [ V.Str "fair"; V.Int 2 ]; [ V.Str "2headed"; V.Int 1 ] ]
  in
  check rel_testable "roundtrip" r (Csv.parse_string (Csv.to_string r))

let test_csv_quoting () =
  let r = Csv.parse_string "A,B\n\"hello, world\",2\n\"say \"\"hi\"\"\",3\n" in
  check int_c "rows" 2 (Relation.cardinality r);
  check bool_c "comma preserved" true
    (Relation.mem r (Tuple.of_list [ V.Str "hello, world"; V.Int 2 ]));
  check bool_c "escaped quote" true
    (Relation.mem r (Tuple.of_list [ V.Str "say \"hi\""; V.Int 3 ]))

let test_csv_quoted_number_is_string () =
  let r = Csv.parse_string "A\n\"42\"\n" in
  check bool_c "quoted 42 is a string" true
    (Relation.mem r (Tuple.of_list [ V.Str "42" ]))

let test_csv_ragged () =
  Alcotest.check_raises "ragged row" (Invalid_argument "Csv: ragged row")
    (fun () -> ignore (Csv.parse_string "A,B\n1\n"))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "relational"
    [
      ( "value",
        [
          Alcotest.test_case "numeric tower" `Quick test_value_numeric_tower;
          Alcotest.test_case "cross-type compare" `Quick
            test_value_cross_type_compare;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "division by zero" `Quick test_value_div_by_zero;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "operations" `Quick test_schema_ops;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "set semantics" `Quick test_relation_set_semantics;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "project to empty attrs" `Quick
            test_project_empty_attrs;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "product/join" `Quick test_product_join;
          Alcotest.test_case "join on disjoint schemas" `Quick
            test_join_is_product_when_disjoint;
          Alcotest.test_case "union/diff" `Quick test_union_diff;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "cross-type join keys" `Quick
            test_join_cross_type_keys;
          Alcotest.test_case "value hash respects equal" `Quick
            test_value_hash_respects_equal;
          Alcotest.test_case "cross-type group keys" `Quick
            test_group_by_cross_type_keys;
          Alcotest.test_case "expressions" `Quick test_expr_eval;
          Alcotest.test_case "predicate nnf" `Quick test_predicate_nnf;
          qcheck prop_nnf_preserves;
        ] );
      ( "algebra laws",
        [
          qcheck prop_join_commutes;
          qcheck prop_join_associates;
          qcheck prop_select_fuses;
          qcheck prop_project_idempotent;
          qcheck prop_union_laws;
          qcheck prop_diff_laws;
          qcheck prop_select_distributes_over_union;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "quoted numbers stay strings" `Quick
            test_csv_quoted_number_is_string;
          Alcotest.test_case "ragged rejected" `Quick test_csv_ragged;
        ] );
    ]
