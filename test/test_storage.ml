(* Tests for the binary columnar .udbb storage format: exact round trips
   between the text and binary formats, deterministic encoding, lazy
   per-relation decoding out of the mapping, atomic replacement, and the
   typed rejection of every corruption class a torn or damaged file can
   present. *)

open Pqdb_relational
open Pqdb_urel
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module E = Pqdb_runtime.Pqdb_error

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string
let q_testable = Alcotest.testable Q.pp Q.equal
let qcheck = QCheck_alcotest.to_alcotest

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqdb_storage_%d_%d" (Unix.getpid ())
         (Hashtbl.hash (Sys.time ())))
  in
  Sys.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let fixture ?(tuples = 60) seed =
  Pqdb_workload.Gen.uncertain_db (Rng.create ~seed) ~tuples ~clauses:3

let read_bytes path = In_channel.with_open_bin path In_channel.input_all

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Structural equality of two databases, exact on every layer: names and
   completeness, schemas, representation rows, and the W table's rational
   probabilities. *)
let assert_same_db name a b =
  check (Alcotest.list string_c) (name ^ ": names") (Udb.names a)
    (Udb.names b);
  let wa = Udb.wtable a and wb = Udb.wtable b in
  check int_c (name ^ ": var count") (Wtable.var_count wa)
    (Wtable.var_count wb);
  List.iter
    (fun v ->
      check string_c (name ^ ": var name") (Wtable.name wa v)
        (Wtable.name wb v);
      check int_c (name ^ ": domain") (Wtable.domain_size wa v)
        (Wtable.domain_size wb v);
      for j = 0 to Wtable.domain_size wa v - 1 do
        check q_testable (name ^ ": prob") (Wtable.prob wa v j)
          (Wtable.prob wb v j)
      done)
    (Wtable.vars wa);
  List.iter
    (fun rel ->
      check bool_c
        (name ^ ": complete flag of " ^ rel)
        (Udb.is_complete a rel) (Udb.is_complete b rel);
      let ua = Udb.find a rel and ub = Udb.find b rel in
      check (Alcotest.list string_c)
        (name ^ ": attrs of " ^ rel)
        (Schema.attributes (Urelation.schema ua))
        (Schema.attributes (Urelation.schema ub));
      let row_eq (c1, t1) (c2, t2) =
        Assignment.equal c1 c2 && Tuple.equal t1 t2
      in
      check bool_c
        (name ^ ": rows of " ^ rel)
        true
        (List.equal row_eq (Urelation.rows ua) (Urelation.rows ub)))
    (Udb.names a)

(* ------------------------------------------------------------------ *)
(* Round trips                                                         *)
(* ------------------------------------------------------------------ *)

(* text save -> text load -> binary save -> binary load -> text save:
   every hop preserves the database exactly, and exact confidences (the
   quantity the whole engine exists to compute) are rational-identical. *)
let roundtrip_prop =
  QCheck.Test.make ~name:"text<->binary round trips are exact" ~count:25
    (QCheck.int_range 0 100_000) (fun seed ->
      with_temp_dir (fun dir ->
          let udb = fixture seed in
          let text1 = Filename.concat dir "t1" in
          let bin1 = Filename.concat dir "b1.udbb" in
          let text2 = Filename.concat dir "t2" in
          let bin2 = Filename.concat dir "b2.udbb" in
          Udb_io.save text1 udb;
          let from_text = Udb_io.load text1 in
          Udb_io.save bin1 from_text;
          let from_bin = Udb_io.load bin1 in
          Udb_io.save text2 from_bin;
          Udb_io.save bin2 (Udb_io.load text2) ;
          assert_same_db "text hop" udb from_text;
          assert_same_db "binary hop" udb from_bin;
          (* Canonical determinism: the same database encodes to the same
             bytes no matter which format it passed through. *)
          check bool_c "canonical binary images identical" true
            (String.equal (read_bytes bin1) (read_bytes bin2));
          let conf u =
            Confidence.all_confidences (Udb.wtable u) (Udb.find u "events")
          in
          List.for_all2
            (fun (t, p) (t', p') -> Tuple.equal t t' && Q.equal p p')
            (conf udb) (conf from_bin)))

(* Floats cannot ride the text format (%g rendering), but the binary format
   stores IEEE bits verbatim — including negative zero and values needing
   all 17 digits. *)
let test_binary_float_bits () =
  with_temp_dir (fun dir ->
      let udb = Udb.create () in
      let floats = [ 0.1; -0.0; 1e300; Float.min_float; 4._521_972e-5 ] in
      Udb.add_complete udb "F"
        (Relation.of_list
           (Schema.of_list [ "x" ])
           (List.map (fun f -> Tuple.of_list [ Value.Float f ]) floats));
      let path = Filename.concat dir "f.udbb" in
      Udb_io.save path udb;
      let back = Udb_io.load path in
      let bits u =
        List.concat_map
          (fun (_, t) ->
            List.filter_map
              (function
                | Value.Float f -> Some (Int64.bits_of_float f) | _ -> None)
              (Tuple.to_list t))
          (Urelation.rows (Udb.find u "F"))
      in
      check
        (Alcotest.list Alcotest.int64)
        "float bits preserved" (bits udb) (bits back))

(* ------------------------------------------------------------------ *)
(* Lazy decoding and atomic replacement                                *)
(* ------------------------------------------------------------------ *)

let test_lazy_decode () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.udbb" in
      Udb_io.save path (fixture 5);
      let udb = Udb_io.load path in
      check bool_c "events undecoded after load" false
        (Udb.is_decoded udb "events");
      check bool_c "tags undecoded after load" false
        (Udb.is_decoded udb "tags");
      (* Metadata (names, flags) never forces a decode. *)
      check bool_c "tags is complete" true (Udb.is_complete udb "tags");
      check bool_c "still undecoded" false (Udb.is_decoded udb "tags");
      ignore (Udb.find udb "events");
      check bool_c "events decoded on find" true
        (Udb.is_decoded udb "events");
      check bool_c "tags still undecoded" false (Udb.is_decoded udb "tags"))

let test_atomic_overwrite () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "db.udbb" in
      let a = fixture ~tuples:40 1 and b = fixture ~tuples:7 2 in
      Udb_io.save path a;
      (* A reader holding the old mapping keeps reading the old bytes:
         rename replaces the name, not the inode. *)
      let old = Udb_io.load path in
      Udb_io.save path b;
      assert_same_db "old mapping intact" a old;
      assert_same_db "new load sees replacement" b (Udb_io.load path);
      (* No temp droppings either way. *)
      check (Alcotest.list string_c) "no stray files" [ "db.udbb" ]
        (List.sort compare (Array.to_list (Sys.readdir dir))))

let test_text_save_atomic () =
  with_temp_dir (fun dir ->
      let text = Filename.concat dir "t" in
      Udb_io.save text (fixture 3);
      Udb_io.save text (fixture ~tuples:9 4);
      assert_same_db "text overwrite" (fixture ~tuples:9 4)
        (Udb_io.load text);
      Array.iter
        (fun f ->
          check bool_c ("no temp file " ^ f) false
            (String.length f > 4 && String.sub f 0 4 = ".tmp"))
        (Sys.readdir text))

(* ------------------------------------------------------------------ *)
(* Corruption corpus                                                   *)
(* ------------------------------------------------------------------ *)

let flip s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
  Bytes.to_string b

let expect_malformed name ~path thunk =
  match thunk () with
  | _ -> Alcotest.failf "%s: corrupt input accepted" name
  | exception E.Error (E.Malformed_input { source; _ }) ->
      check bool_c (name ^ ": error names the file") true
        (String.length source >= String.length path
        && String.sub source 0 (String.length path) = path)
  | exception e ->
      Alcotest.failf "%s: expected Malformed_input, got %s" name
        (Printexc.to_string e)

let test_corrupt_corpus () =
  with_temp_dir (fun dir ->
      let good_path = Filename.concat dir "good.udbb" in
      Udb_io.save good_path (fixture 11);
      let good = read_bytes good_path in
      let case name bytes check_load =
        let path = Filename.concat dir (name ^ ".udbb") in
        write_bytes path bytes;
        check_load path
      in
      (* Truncated header: shorter than the magic. *)
      case "truncated-header" (String.sub good 0 8) (fun p ->
          expect_malformed "truncated header" ~path:p (fun () ->
              Udb_io.load p));
      (* Wrong version: a flipped byte inside the magic string. *)
      case "bad-version" (flip good 10) (fun p ->
          expect_malformed "bad version" ~path:p (fun () -> Udb_io.load p));
      (* Flipped byte in the W-table segment (decoded eagerly): the segment
         CRC fails at load. *)
      case "flipped-wtable" (flip good 18) (fun p ->
          expect_malformed "flipped wtable byte" ~path:p (fun () ->
              Udb_io.load p));
      (* Torn tail: the trailer is gone, as after a crash mid-write of a
         non-atomic copy. *)
      case "torn-tail"
        (String.sub good 0 (String.length good - 5))
        (fun p ->
          expect_malformed "torn tail" ~path:p (fun () -> Udb_io.load p));
      (* Flipped byte in the last column segment: load succeeds (lazy), the
         damaged relation fails typed at first decode, and the undamaged
         relation still reads. *)
      let manifest_off =
        Int64.to_int
          (String.get_int64_le good (String.length good - 24))
      in
      case "flipped-column" (flip good (manifest_off - 2)) (fun p ->
          let udb = Udb_io.load p in
          ignore (Udb.find udb "events");
          expect_malformed "flipped column byte" ~path:p (fun () ->
              Udb.find udb "tags")))

let test_load_faultpoint () =
  with_temp_dir (fun dir ->
      let module FP = Pqdb_runtime.Faultpoint in
      let path = Filename.concat dir "db.udbb" in
      Udb_io.save path (fixture 6);
      FP.reset ();
      FP.arm ~count:1 "udb_binary.load";
      check bool_c "injected load failure" true
        (try
           ignore (Udb_io.load path);
           false
         with E.Error (E.Injected site) -> site = "udb_binary.load");
      ignore (Udb.find (Udb_io.load path) "events");
      FP.reset ())

let () =
  Alcotest.run "storage"
    [
      ( "roundtrip",
        [
          qcheck roundtrip_prop;
          Alcotest.test_case "float bits (binary only)" `Quick
            test_binary_float_bits;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "lazy decode" `Quick test_lazy_decode;
          Alcotest.test_case "atomic overwrite" `Quick test_atomic_overwrite;
          Alcotest.test_case "text save atomic" `Quick test_text_save_atomic;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "corrupt corpus" `Quick test_corrupt_corpus;
          Alcotest.test_case "load fault point" `Quick test_load_faultpoint;
        ] );
    ]
