(* Fault-injection tests: every Faultpoint site must degrade gracefully —
   a typed error at a boundary, containment inside the engine, never a
   whole-batch crash.  The suite is written to also pass under an
   environment-armed fault (the CI matrix runs it with
   PQDB_FAULTPOINTS=<site> for every site): the smoke test below runs
   first, against whatever the environment armed, and each later test
   clears the registry before arming its own site. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
open Pqdb_montecarlo
module Q = Rational
module FP = Pqdb_runtime.Faultpoint
module E = Pqdb_runtime.Pqdb_error

(* Exercise the parallel path even on single-core machines. *)
let () = Unix.putenv "PQDB_POOL_WORKERS" "3"

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* Clear every arm — programmatic and environment — so a test controls
   exactly which site fires.  (FP.reset would re-apply PQDB_FAULTPOINTS.) *)
let clear_all () = List.iter FP.disarm (FP.armed ())

let batch_fixture () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 3 10; Q.of_ints 7 10 ] in
  let y = Wtable.add_var w [ Q.of_ints 1 2; Q.of_ints 1 2 ] in
  let z = Wtable.add_var w [ Q.of_ints 4 5; Q.of_ints 1 5 ] in
  let clause_sets =
    [|
      [
        Assignment.singleton x 1;
        Assignment.of_list [ (y, 1); (z, 0) ];
        Assignment.of_list [ (x, 0); (z, 1) ];
      ];
      [ Assignment.singleton y 1 ];
      [ Assignment.empty ];
      [];
    |]
  in
  (w, clause_sets)

let exact_probs w clause_sets =
  Array.map
    (fun clauses -> Q.to_float (Pqdb_urel.Confidence.exact w clauses))
    clause_sets

let assert_sound name w clause_sets (stats : Confidence.stats) =
  Array.iteri
    (fun i p ->
      let lo, hi = stats.Confidence.intervals.(i) in
      check bool_c
        (Printf.sprintf "%s: tuple %d exact %.4f inside [%g, %g]" name i p lo
           hi)
        true
        (lo -. 1e-9 <= p && p <= hi +. 1e-9))
    (exact_probs w clause_sets)

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqdb_faults_%d_%d" (Unix.getpid ()) !temp_counter)
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let write_file dir name body =
  let oc = open_out (Filename.concat dir name) in
  output_string oc body;
  close_out oc

let small_udb () =
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  let x = Wtable.add_var ~name:"x" w [ Q.half; Q.half ] in
  let u =
    Urelation.make
      (Schema.of_list [ "A" ])
      [
        (Assignment.singleton x 0, Tuple.of_list [ Value.Int 1 ]);
        (Assignment.singleton x 1, Tuple.of_list [ Value.Int 2 ]);
      ]
  in
  Udb.add_urelation udb "R" u;
  udb

(* ------------------------------------------------------------------ *)
(* Smoke: survive whatever PQDB_FAULTPOINTS armed                      *)
(* ------------------------------------------------------------------ *)

let test_env_smoke () =
  (* Runs FIRST, with the environment's arming (if any) intact.  Whatever
     site fires, a batched confidence run must come back with sound
     intervals, and a load must either succeed or fail with the typed
     error — never a crash or a stuck pool. *)
  let w, clause_sets = batch_fixture () in
  let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
  let _, stats =
    Confidence.run_with_stats (Rng.create ~seed:23) batch ~eps:0.1 ~delta:0.1
  in
  assert_sound "env smoke" w clause_sets stats;
  with_temp_dir (fun dir ->
      let udb = small_udb () in
      Udb_io.save dir udb;
      match Udb_io.load dir with
      | back -> check int_c "load ok" 1 (Wtable.var_count (Udb.wtable back))
      | exception E.Error (E.Injected _) -> ())

(* ------------------------------------------------------------------ *)
(* Registry semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  clear_all ();
  check bool_c "clean registry" true (FP.armed () = []);
  check bool_c "unarmed site never fires" false (FP.should_fail "test.site");
  FP.arm ~count:2 "test.site";
  check bool_c "armed listed" true (List.mem "test.site" (FP.armed ()));
  check bool_c "first shot" true (FP.should_fail "test.site");
  check bool_c "second shot" true (FP.should_fail "test.site");
  check bool_c "shots exhausted" false (FP.should_fail "test.site");
  FP.arm "test.site";
  check bool_c "fire raises typed error" true
    (try
       FP.fire "test.site";
       false
     with E.Error (E.Injected "test.site") -> true);
  FP.disarm "test.site";
  check bool_c "disarmed" false (FP.should_fail "test.site")

let test_env_parsing () =
  let original = Sys.getenv_opt "PQDB_FAULTPOINTS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PQDB_FAULTPOINTS"
        (match original with Some s -> s | None -> "");
      FP.reset ();
      clear_all ())
    (fun () ->
      Unix.putenv "PQDB_FAULTPOINTS" "alpha, beta:2 ,gamma:bogus";
      FP.reset ();
      check bool_c "alpha fires repeatedly" true
        (FP.should_fail "alpha" && FP.should_fail "alpha"
        && FP.should_fail "alpha");
      check bool_c "beta fires twice" true
        (FP.should_fail "beta" && FP.should_fail "beta");
      check bool_c "beta exhausted" false (FP.should_fail "beta");
      (* A malformed count falls back to unlimited rather than dropping
         the entry. *)
      check bool_c "bogus count still armed" true (FP.should_fail "gamma"))

let test_env_mode_parsing () =
  let original = Sys.getenv_opt "PQDB_FAULTPOINTS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PQDB_FAULTPOINTS"
        (match original with Some s -> s | None -> "");
      FP.reset ();
      clear_all ())
    (fun () ->
      Unix.putenv "PQDB_FAULTPOINTS"
        "a@raise, b:2@delay:15 ,c@stall,d@torn,e@nonsense";
      FP.reset ();
      check bool_c "explicit raise" true (FP.check "a" = Some FP.Raise);
      check bool_c "delay mode, ms to s" true
        (FP.check "b" = Some (FP.Delay 0.015));
      check bool_c "delay count honored" true
        (FP.check "b" = Some (FP.Delay 0.015));
      check bool_c "delay exhausted" true (FP.check "b" = None);
      check bool_c "stall mode" true (FP.check "c" = Some FP.Stall);
      check bool_c "torn mode" true (FP.check "d" = Some FP.Torn);
      (* A bad mode warns and falls back to raise rather than dropping the
         entry. *)
      check bool_c "bad mode degrades to raise" true
        (FP.check "e" = Some FP.Raise))

let test_mode_of_string () =
  check bool_c "raise" true (FP.mode_of_string "raise" = Ok FP.Raise);
  check bool_c "stall" true (FP.mode_of_string "stall" = Ok FP.Stall);
  check bool_c "torn" true (FP.mode_of_string "torn" = Ok FP.Torn);
  check bool_c "delay ms" true
    (FP.mode_of_string "delay:250" = Ok (FP.Delay 0.25));
  check bool_c "delay rejects negatives" true
    (match FP.mode_of_string "delay:-3" with Error _ -> true | Ok _ -> false);
  check bool_c "unknown rejected" true
    (match FP.mode_of_string "explode" with Error _ -> true | Ok _ -> false)

let test_behavioral_fire () =
  clear_all ();
  (* Delay: fire sleeps, returns normally, and consumes the shot. *)
  FP.arm ~count:1 ~mode:(FP.Delay 0.05) "test.behave";
  let t0 = Unix.gettimeofday () in
  FP.fire "test.behave";
  let dt = Unix.gettimeofday () -. t0 in
  check bool_c "delay slept" true (dt >= 0.045);
  check bool_c "delay shot consumed" false (FP.should_fail "test.behave");
  (* Stall: blocks until another thread disarms the registry. *)
  FP.arm ~mode:FP.Stall "test.behave";
  FP.set_stall_cap_s 10.;
  let released = ref false in
  let th =
    Thread.create
      (fun () ->
        FP.fire "test.behave";
        released := true)
      ()
  in
  Thread.delay 0.05;
  check bool_c "stall still blocking" false !released;
  clear_all ();
  Thread.join th;
  check bool_c "disarm released the stall" true !released;
  (* Stall cap: nobody disarms, the cap bounds the block. *)
  FP.set_stall_cap_s 0.1;
  FP.arm ~count:1 ~mode:FP.Stall "test.behave";
  let t0 = Unix.gettimeofday () in
  FP.fire "test.behave";
  let dt = Unix.gettimeofday () -. t0 in
  check bool_c "stall capped" true (dt >= 0.08 && dt < 2.0);
  FP.set_stall_cap_s 2.0;
  clear_all ()

let test_torn_checkpoint_write () =
  clear_all ();
  let module CK = Pqdb_runtime.Checkpoint in
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let path = Filename.concat dir "journal" in
      let w, prior = CK.open_writer path in
      check int_c "fresh journal" 0 (List.length prior);
      CK.append w "alpha 1";
      FP.arm ~count:1 ~mode:FP.Torn "checkpoint.write";
      check bool_c "torn append raises injected" true
        (try
           CK.append w "beta 2";
           false
         with E.Error (E.Injected "checkpoint.write") -> true);
      CK.close w;
      (* The torn tail is exactly what a crash leaves: resume tolerates and
         truncates it, keeping every record before it. *)
      let recovered = CK.read path in
      check bool_c "torn tail dropped, prior record kept" true
        (recovered = [ "alpha 1" ]);
      let w2, prior2 = CK.open_writer ~resume:true path in
      check bool_c "resume sees the intact prefix" true (prior2 = [ "alpha 1" ]);
      CK.append w2 "beta 2";
      CK.close w2;
      check bool_c "journal heals after the torn write" true
        (CK.read path = [ "alpha 1"; "beta 2" ]))

(* ------------------------------------------------------------------ *)
(* Site: karp_luby.estimator                                           *)
(* ------------------------------------------------------------------ *)

let test_estimator_fault_contained () =
  clear_all ();
  FP.arm "karp_luby.estimator";
  Fun.protect ~finally:clear_all (fun () ->
      let w, clause_sets = batch_fixture () in
      let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
      let estimates, stats =
        Confidence.run_with_stats (Rng.create ~seed:29) batch ~eps:0.1
          ~delta:0.1
      in
      (* Sampling tuples degrade to their a-priori brackets; the batch
         itself survives. *)
      check bool_c "degraded, not crashed" false stats.Confidence.complete;
      assert_sound "estimator fault" w clause_sets stats;
      check (Alcotest.float 0.) "certain tuple still exact" 1. estimates.(2);
      check (Alcotest.float 0.) "impossible tuple still exact" 0.
        estimates.(3));
  (* Disarmed: same batch completes again. *)
  let w, clause_sets = batch_fixture () in
  let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
  let _, stats =
    Confidence.run_with_stats (Rng.create ~seed:29) batch ~eps:0.1 ~delta:0.1
  in
  check bool_c "recovers once disarmed" true stats.Confidence.complete

let test_estimator_fault_under_budget () =
  clear_all ();
  FP.arm "karp_luby.estimator";
  Fun.protect ~finally:clear_all (fun () ->
      let w, clause_sets = batch_fixture () in
      let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
      let b = Budget.create ~max_trials:1000 () in
      let _, stats =
        Confidence.run_with_stats ~budget:b (Rng.create ~seed:31) batch
          ~eps:0.1 ~delta:0.1
      in
      check bool_c "budget path degrades too" false stats.Confidence.complete;
      assert_sound "estimator fault + budget" w clause_sets stats)

(* ------------------------------------------------------------------ *)
(* Site: pool.task                                                     *)
(* ------------------------------------------------------------------ *)

let test_pool_task_fault () =
  clear_all ();
  (* Direct pool use: the injected failure surfaces as the typed
     Task_failure with the injected error inside. *)
  FP.arm ~count:1 "pool.task";
  let pool = Pool.create 4 in
  check bool_c "typed task failure" true
    (try
       Pool.run pool ~ntasks:8 ignore;
       false
     with
    | E.Error (E.Task_failure { inner = E.Error (E.Injected site); _ }) ->
        site = "pool.task");
  (* The shot is consumed: the pool keeps working. *)
  let ok = Array.make 8 false in
  Pool.run pool ~ntasks:8 (fun i -> ok.(i) <- true);
  check bool_c "pool alive after injected failure" true
    (Array.for_all Fun.id ok);
  (* Batch engine: an unlimited pool.task fault degrades every sampling
     tuple, crashes nothing. *)
  FP.arm "pool.task";
  Fun.protect ~finally:clear_all (fun () ->
      let w, clause_sets = batch_fixture () in
      let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
      let _, stats =
        Confidence.run_with_stats (Rng.create ~seed:37) batch ~eps:0.1
          ~delta:0.1
      in
      check bool_c "batch degraded" false stats.Confidence.complete;
      assert_sound "pool.task fault" w clause_sets stats)

(* ------------------------------------------------------------------ *)
(* Site: pool.spawn                                                    *)
(* ------------------------------------------------------------------ *)

let test_pool_spawn_fault_degrades_inline () =
  clear_all ();
  Pool.reset ();
  FP.arm "pool.spawn";
  Fun.protect
    ~finally:(fun () ->
      clear_all ();
      Pool.reset ())
    (fun () ->
      check int_c "no resident workers under spawn fault" 0
        (Pool.resident_workers ());
      (* Work still completes — inline. *)
      let pool = Pool.create 4 in
      let ok = Array.make 16 false in
      Pool.run pool ~ntasks:16 (fun i -> ok.(i) <- true);
      check bool_c "tasks ran inline" true (Array.for_all Fun.id ok);
      (* And a whole batch still computes correct estimates. *)
      let w, clause_sets = batch_fixture () in
      let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
      let _, stats =
        Confidence.run_with_stats (Rng.create ~seed:41) batch ~eps:0.1
          ~delta:0.1
      in
      check bool_c "batch completes inline" true stats.Confidence.complete;
      assert_sound "pool.spawn fault" w clause_sets stats);
  (* After reset without the fault, workers come back. *)
  check bool_c "workers respawn once disarmed" true
    (Pool.resident_workers () > 0)

(* ------------------------------------------------------------------ *)
(* Site: udb_io.wtable                                                 *)
(* ------------------------------------------------------------------ *)

let test_udb_io_fault () =
  clear_all ();
  with_temp_dir (fun dir ->
      let udb = small_udb () in
      Udb_io.save dir udb;
      FP.arm ~count:1 "udb_io.wtable";
      check bool_c "load fails with the injected error" true
        (try
           ignore (Udb_io.load dir);
           false
         with E.Error (E.Injected site) -> site = "udb_io.wtable");
      (* Shot consumed: the very next load succeeds. *)
      let back = Udb_io.load dir in
      check int_c "load recovers" 1 (Wtable.var_count (Udb.wtable back)))

(* ------------------------------------------------------------------ *)
(* Malformed inputs reach the loader as typed errors                   *)
(* ------------------------------------------------------------------ *)

let load_error dir =
  match Udb_io.load dir with
  | _ -> Alcotest.fail "expected the load to be rejected"
  | exception E.Error e -> e

let write_db dir ~wtable =
  Sys.mkdir dir 0o755;
  write_file dir "wtable.csv" wtable;
  write_file dir "manifest.csv" "Ord,Name,Complete\n0,R,false\n";
  write_file dir "rel_R.csv" "D,A\nx0=0,1\n"

let test_malformed_wtable_inputs () =
  clear_all ();
  let is_malformed = function E.Malformed_input _ -> true | _ -> false in
  let is_invalid_prob = function
    | E.Invalid_probability _ -> true
    | _ -> false
  in
  let cases =
    [
      ("negative probability", "Var,Name,Dom,P\n0,x,0,3/2\n0,x,1,-1/2\n",
       is_invalid_prob);
      ("mass over 1", "Var,Name,Dom,P\n0,x,0,2/3\n0,x,1,2/3\n",
       is_invalid_prob);
      ("unparseable probability", "Var,Name,Dom,P\n0,x,0,zebra\n0,x,1,1/2\n",
       is_malformed);
      (* Relations are sets, so the conflicting duplicate must differ in
         probability to survive CSV loading. *)
      ( "duplicate (var, value) row",
        "Var,Name,Dom,P\n0,x,0,1/2\n0,x,0,1/3\n0,x,1,1/2\n",
        is_malformed );
      ("truncated row", "Var,Name,Dom,P\n0,x,0\n", is_malformed);
      ("sparse variable ids", "Var,Name,Dom,P\n1,x,0,1/2\n1,x,1,1/2\n",
       is_malformed);
      ("sparse domain values", "Var,Name,Dom,P\n0,x,0,1/2\n0,x,2,1/2\n",
       is_malformed);
    ]
  in
  List.iter
    (fun (name, wtable, classify) ->
      with_temp_dir (fun dir ->
          write_db dir ~wtable;
          let e = load_error dir in
          check bool_c
            (Printf.sprintf "%s: %s" name (E.to_string e))
            true (classify e)))
    cases

let test_malformed_relation_inputs () =
  clear_all ();
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      write_file dir "wtable.csv" "Var,Name,Dom,P\n0,x,0,1/2\n0,x,1,1/2\n";
      write_file dir "manifest.csv" "Ord,Name,Complete\n0,R,false\n";
      (* Condition referencing nothing parseable. *)
      write_file dir "rel_R.csv" "D,A\nnot-a-condition,1\n";
      check bool_c "bad condition is malformed input" true
        (match load_error dir with
        | E.Malformed_input { source; _ } ->
            Filename.basename source = "rel_R.csv"
        | _ -> false));
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      write_file dir "wtable.csv" "Var,Name,Dom,P\n0,x,0,1/2\n0,x,1,1/2\n";
      (* Manifest names a relation with no file. *)
      write_file dir "manifest.csv" "Ord,Name,Complete\n0,Ghost,true\n";
      check bool_c "missing relation file is malformed input" true
        (match load_error dir with E.Malformed_input _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Round-trip property                                                 *)
(* ------------------------------------------------------------------ *)

let prop_save_load_roundtrip =
  QCheck.Test.make ~name:"save/load round-trips confidences" ~count:30
    (QCheck.int_range 0 100_000) (fun seed ->
      clear_all ();
      let rng = Rng.create ~seed in
      let udb = Udb.create () in
      let w = Udb.wtable udb in
      let u =
        Pqdb_workload.Gen.tuple_independent rng w ~attrs:[ "A"; "B" ]
          ~rows:(1 + Rng.int rng 5) ~domain:3
      in
      Udb.add_urelation udb "U" u;
      with_temp_dir (fun dir ->
          Udb_io.save dir udb;
          let back = Udb_io.load dir in
          let conf db =
            Pqdb_urel.Confidence.all_confidences (Udb.wtable db)
              (Udb.find db "U")
          in
          List.for_all2
            (fun (t, p) (t', p') -> Tuple.equal t t' && Q.equal p p')
            (conf udb) (conf back)
          && Wtable.var_count (Udb.wtable udb)
             = Wtable.var_count (Udb.wtable back)))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "faults"
    [
      ( "smoke",
        [ Alcotest.test_case "survive env faults" `Quick test_env_smoke ] );
      ( "registry",
        [
          Alcotest.test_case "arm/disarm/count" `Quick test_registry;
          Alcotest.test_case "env parsing" `Quick test_env_parsing;
          Alcotest.test_case "env mode parsing" `Quick test_env_mode_parsing;
          Alcotest.test_case "mode_of_string" `Quick test_mode_of_string;
          Alcotest.test_case "behavioral fire" `Quick test_behavioral_fire;
          Alcotest.test_case "torn checkpoint write" `Quick
            test_torn_checkpoint_write;
        ] );
      ( "sites",
        [
          Alcotest.test_case "karp_luby.estimator contained" `Quick
            test_estimator_fault_contained;
          Alcotest.test_case "karp_luby.estimator under budget" `Quick
            test_estimator_fault_under_budget;
          Alcotest.test_case "pool.task" `Quick test_pool_task_fault;
          Alcotest.test_case "pool.spawn degrades inline" `Quick
            test_pool_spawn_fault_degrades_inline;
          Alcotest.test_case "udb_io.wtable" `Quick test_udb_io_fault;
        ] );
      ( "malformed inputs",
        [
          Alcotest.test_case "wtable corruption" `Quick
            test_malformed_wtable_inputs;
          Alcotest.test_case "relation corruption" `Quick
            test_malformed_relation_inputs;
        ] );
      ("round-trip", [ qcheck prop_save_load_roundtrip ]);
    ]
