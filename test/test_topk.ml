(* Tests for top-k-by-confidence multisimulation and the
   independence-decomposition exact solver. *)

open Pqdb_relational
open Pqdb_urel
module V = Value
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Ua = Pqdb_ast.Ua
module Topk = Pqdb.Topk
module Dnf = Pqdb_montecarlo.Dnf
module Gen = Pqdb_workload.Gen

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let q_testable = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Independence decomposition                                           *)
(* ------------------------------------------------------------------ *)

let prop_decomposition_equals_shannon =
  QCheck.Test.make ~name:"decomposition = shannon" ~count:150
    (QCheck.int_range 0 50_000) (fun seed ->
      let rng = Rng.create ~seed in
      let w = Wtable.create () in
      let clauses = Gen.random_dnf rng w ~vars:6 ~clauses:5 ~clause_len:2 in
      Q.equal (Confidence.by_decomposition w clauses)
        (Confidence.by_shannon w clauses))

let test_decomposition_independent_or () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let y = Wtable.add_var w [ Q.of_ints 1 4; Q.of_ints 3 4 ] in
  (* Disjoint vars: P = 1 - (1 - 1/2)(1 - 3/4) = 7/8 via the product rule. *)
  check q_testable "7/8" (Q.of_ints 7 8)
    (Confidence.by_decomposition w
       [ Assignment.singleton x 1; Assignment.singleton y 1 ]);
  check q_testable "edge: empty" Q.zero (Confidence.by_decomposition w []);
  check q_testable "edge: certain" Q.one
    (Confidence.by_decomposition w [ Assignment.empty ])

let test_decomposition_speedup_shape () =
  (* Many independent single-literal clauses: decomposition is linear,
     Shannon branches; both must agree. *)
  let w = Wtable.create () in
  let clauses =
    List.init 14 (fun _ ->
        let v = Wtable.add_var w [ Q.of_ints 9 10; Q.of_ints 1 10 ] in
        Assignment.singleton v 1)
  in
  let a = Confidence.by_decomposition w clauses in
  let b = Confidence.by_shannon w clauses in
  check q_testable "agree on 14 independent clauses" a b;
  (* 1 - 0.9^14 *)
  check q_testable "closed form" (Q.complement (Q.pow (Q.of_ints 9 10) 14)) a

(* ------------------------------------------------------------------ *)
(* Top-k                                                                *)
(* ------------------------------------------------------------------ *)

let bernoulli_candidate w name p =
  let num = int_of_float (Float.round (p *. 1000.)) in
  let var = Wtable.add_var w [ Q.of_ints (1000 - num) 1000; Q.of_ints num 1000 ] in
  (Tuple.of_list [ V.Str name ], Dnf.prepare w [ Assignment.singleton var 1 ])

(* Two-clause candidate so the estimate is genuinely noisy when compilation
   is disabled ([compile_fuel:0]); with compilation on it resolves exactly
   (two independent clauses). *)
let noisy_candidate w name p =
  let q = 1. -. sqrt (1. -. p) in
  let num = max 1 (int_of_float (Float.round (q *. 1000.))) in
  let fresh () =
    Wtable.add_var w [ Q.of_ints (1000 - num) 1000; Q.of_ints num 1000 ]
  in
  ( Tuple.of_list [ V.Str name ],
    Dnf.prepare w
      [
        Assignment.singleton (fresh ()) 1;
        Assignment.singleton (fresh ()) 1;
      ] )

let test_topk_ranks_correctly () =
  let rng = Rng.create ~seed:1 in
  let w = Wtable.create () in
  let candidates =
    [
      noisy_candidate w "low" 0.2;
      noisy_candidate w "mid" 0.5;
      noisy_candidate w "high" 0.8;
      noisy_candidate w "top" 0.95;
    ]
  in
  let r = Topk.run ~rng ~delta:0.05 ~k:2 candidates in
  let names =
    List.map (fun (t, _) -> V.to_string (Tuple.get t 0)) r.Topk.ranked
  in
  check (Alcotest.list Alcotest.string) "top 2" [ "top"; "high" ] names;
  check bool_c "certified" true r.Topk.certified;
  (* Two independent clauses per candidate: the compiler solves all of them
     in closed form, so the ranking costs zero estimator calls. *)
  check int_c "all candidates compiled exact" 4 r.Topk.exact_candidates;
  check int_c "no sampling needed" 0 r.Topk.estimator_calls

let test_topk_prunes_clear_losers () =
  (* A clear loser should stop refining long before the contested pair. *)
  let rng = Rng.create ~seed:2 in
  let w = Wtable.create () in
  let loser = noisy_candidate w "loser" 0.05 in
  let a = noisy_candidate w "a" 0.6 in
  let b = noisy_candidate w "b" 0.52 in
  (* [compile_fuel:0] forces every candidate onto the sampling path — this
     test is about interval pruning, not compilation. *)
  let r = Topk.run ~compile_fuel:0 ~rng ~delta:0.05 ~k:1 [ loser; a; b ] in
  check bool_c "ranked a first" true
    (match r.Topk.ranked with
    | [ (t, _) ] -> V.to_string (Tuple.get t 0) = "a"
    | _ -> false);
  let trials_of (t, _) =
    match List.assoc_opt t r.Topk.sampled with Some n -> n | None -> 0
  in
  check bool_c
    (Printf.sprintf "loser (%d) sampled less than contested (%d)"
       (trials_of loser) (trials_of a))
    true
    (trials_of loser < trials_of a)

let test_topk_tie_uncertified () =
  (* Exact ties cannot be separated: the run must terminate uncertified. *)
  let rng = Rng.create ~seed:3 in
  let w = Wtable.create () in
  let candidates =
    [ noisy_candidate w "t1" 0.5; noisy_candidate w "t2" 0.5 ]
  in
  let r = Topk.run ~eps0:0.05 ~compile_fuel:0 ~rng ~delta:0.1 ~k:1 candidates in
  check bool_c "terminates" true (List.length r.Topk.ranked = 1);
  check bool_c "uncertified on a tie" false r.Topk.certified

let test_topk_compiled_tie_certifies () =
  (* With compilation on, the same tie is two point intervals at exactly
     0.5: the boundary test holds with equality and the run certifies with
     zero sampling — compilation removes the singularity. *)
  let rng = Rng.create ~seed:3 in
  let w = Wtable.create () in
  let candidates =
    [ noisy_candidate w "t1" 0.5; noisy_candidate w "t2" 0.5 ]
  in
  let r = Topk.run ~eps0:0.05 ~rng ~delta:0.1 ~k:1 candidates in
  check bool_c "certified exactly" true r.Topk.certified;
  check int_c "no sampling" 0 r.Topk.estimator_calls

let test_topk_k_covers_all () =
  let rng = Rng.create ~seed:4 in
  let w = Wtable.create () in
  let candidates = [ bernoulli_candidate w "a" 0.3; bernoulli_candidate w "b" 0.7 ] in
  let r = Topk.run ~rng ~delta:0.1 ~k:5 candidates in
  check int_c "k clamped to n" 2 (List.length r.Topk.ranked);
  check bool_c "trivially certified" true r.Topk.certified

let test_topk_validation () =
  let rng = Rng.create ~seed:5 in
  check bool_c "k = 0 rejected" true
    (try
       ignore (Topk.run ~rng ~delta:0.1 ~k:0 []);
       false
     with Invalid_argument _ -> true);
  check bool_c "empty candidates rejected" true
    (try
       ignore (Topk.run ~rng ~delta:0.1 ~k:1 []);
       false
     with Invalid_argument _ -> true)

let test_topk_query_on_coins () =
  (* Top-1 tuple of T (the all-heads evidence): 2headed at 1/3 beats fair at
     1/6. *)
  let rng = Rng.create ~seed:6 in
  let udb = Pqdb_workload.Scenarios.coin_db () in
  let q = Pqdb_workload.Scenarios.coin_queries in
  let r =
    Topk.query ~rng ~delta:0.05 ~k:1 udb q.Pqdb_workload.Scenarios.t
  in
  (match r.Topk.ranked with
  | [ (t, p) ] ->
      check Alcotest.string "winner" "2headed" (V.to_string (Tuple.get t 0));
      check bool_c "estimate near 1/3" true (Float.abs (p -. (1. /. 3.)) < 0.1)
  | _ -> Alcotest.fail "expected one tuple");
  check bool_c "certified" true r.Topk.certified

let () =
  Alcotest.run "topk"
    [
      ( "decomposition",
        [
          QCheck_alcotest.to_alcotest prop_decomposition_equals_shannon;
          Alcotest.test_case "independent or" `Quick
            test_decomposition_independent_or;
          Alcotest.test_case "independent clauses" `Quick
            test_decomposition_speedup_shape;
        ] );
      ( "top-k",
        [
          Alcotest.test_case "ranks correctly" `Quick test_topk_ranks_correctly;
          Alcotest.test_case "prunes clear losers" `Quick
            test_topk_prunes_clear_losers;
          Alcotest.test_case "ties are uncertified" `Quick
            test_topk_tie_uncertified;
          Alcotest.test_case "compiled ties certify" `Quick
            test_topk_compiled_tie_certifies;
          Alcotest.test_case "k >= n" `Quick test_topk_k_covers_all;
          Alcotest.test_case "validation" `Quick test_topk_validation;
          Alcotest.test_case "query on the coin bag" `Quick
            test_topk_query_on_coins;
        ] );
    ]
