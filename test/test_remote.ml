(* Remote TCP workers: loopback listeners, bit-identity across fleet
   sizes, redial after a SIGKILLed listener, lease-based liveness with
   late-duplicate dedup, duplicated frames, and a network chaos soak.

   Like test_distrib, the suite passes under an environment-armed fault
   (the CI matrix runs every suite with PQDB_FAULTPOINTS=<site>): the
   smoke test runs first against whatever the environment armed — forked
   listeners inherit the registry state, TCP fleets may die wholesale —
   and the coordinator must still emit every shard soundly via redials or
   its in-process fallback.  Later tests clear the registry before
   forking, so their listeners run fault-free.

   Fork safety: listeners are forked children, so the pool is pinned to
   inline execution before anything else runs (OCaml 5 forbids fork with
   live domains). *)

let () = Unix.putenv "PQDB_POOL_WORKERS" "1"

open Pqdb_numeric
open Pqdb_urel
open Pqdb_montecarlo
open Pqdb_distrib
module Q = Rational
module FP = Pqdb_runtime.Faultpoint
module Gen = Pqdb_workload.Gen

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let clear_all () = List.iter FP.disarm (FP.armed ())

(* ------------------------------------------------------------------ *)
(* Fixture: mixed batch planning into several shards (as test_distrib). *)

let eps = 0.35
let delta = 0.2
let seed = 9091

let fixture () =
  let rng = Rng.create ~seed:4242 in
  let w = Wtable.create () in
  let sets =
    List.init 18 (fun i ->
        match i mod 6 with
        | 0 -> Gen.random_dnf rng w ~vars:8 ~clauses:5 ~clause_len:3
        | 1 ->
            let num = 1 + Rng.int rng 9 in
            let v =
              Wtable.add_var w [ Q.of_ints (10 - num) 10; Q.of_ints num 10 ]
            in
            [ Assignment.singleton v 1 ]
        | 2 -> Gen.random_dnf rng w ~vars:6 ~clauses:4 ~clause_len:2
        | 3 -> [ Assignment.empty ]
        | 4 -> []
        | _ -> Gen.random_dnf rng w ~vars:10 ~clauses:6 ~clause_len:3)
  in
  (w, Array.of_list sets)

let shard_cost_for ~eps ~delta clause_sets ~target =
  let total =
    Array.fold_left
      (fun acc cs -> acc + Shard.tuple_cost ~eps ~delta cs)
      0 clause_sets
  in
  max 1 (total / target)

let options ?(retries = 2) shard_cost =
  { Confidence.shard_cost; retries; checkpoint = None; resume = false }

let bits = Int64.bits_of_float

let collector n =
  let est = Array.make n nan in
  let lo = Array.make n nan in
  let hi = Array.make n nan in
  let tr = Array.make n (-1) in
  let order = ref [] in
  let emit (o : Shard.outcome) =
    order := o.Shard.shard.Shard.index :: !order;
    Array.iteri
      (fun j e ->
        let i = o.Shard.shard.Shard.first + j in
        est.(i) <- e;
        tr.(i) <- o.Shard.trials.(j);
        let l, h = o.Shard.intervals.(j) in
        lo.(i) <- l;
        hi.(i) <- h)
      o.Shard.estimates
  in
  (emit, est, lo, hi, tr, order)

let check_same name (est, lo, hi, tr) (est', lo', hi', tr') =
  let fcmp what a b =
    Array.iteri
      (fun i x ->
        check Alcotest.int64
          (Printf.sprintf "%s: %s slot %d" name what i)
          (bits x) (bits b.(i)))
      a
  in
  fcmp "estimate" est est';
  fcmp "lo" lo lo';
  fcmp "hi" hi hi';
  check (Alcotest.array int_c) (name ^ ": trials") tr tr'

let assert_sound name w clause_sets lo hi =
  Array.iteri
    (fun i p ->
      check bool_c
        (Printf.sprintf "%s: tuple %d exact %.4f inside [%g, %g]" name i p
           lo.(i) hi.(i))
        true
        (lo.(i) -. 1e-9 <= p && p <= hi.(i) +. 1e-9))
    (Array.map
       (fun clauses -> Q.to_float (Pqdb_urel.Confidence.exact w clauses))
       clause_sets)

let reference ~opts w sets =
  let n = Array.length sets in
  let emit, est, lo, hi, tr, order = collector n in
  let summary =
    Confidence.run_stream ~options:opts (Rng.create ~seed) w sets ~eps ~delta
      ~emit
  in
  ((est, lo, hi, tr), List.rev !order, summary)

(* ------------------------------------------------------------------ *)
(* Listener harness: fork a Worker.listen child on an ephemeral port;   *)
(* the child reports the bound port over a pipe before accepting.       *)

let spawn_listener ?(eps = eps) ?(delta = delta) ?(seed = seed) ~shard_cost w
    sets () =
  let pr, pw = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close pr;
      (try
         Worker.listen ~shard_cost ~heartbeat_s:0.05 ~frame_timeout_s:5.
           ~ready:(fun port ->
             let line = Bytes.of_string (Printf.sprintf "%d\n" port) in
             ignore (Unix.write pw line 0 (Bytes.length line));
             Unix.close pw)
           ~make_rng:(fun () -> Rng.create ~seed)
           ~resolve:(fun _ -> (w, sets))
           ~host:"127.0.0.1" ~port:0 ~eps ~delta ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close pw;
      let buf = Buffer.create 8 in
      let b = Bytes.create 1 in
      let rec go () =
        match Unix.read pr b 0 1 with
        | 0 -> ()
        | _ ->
            let c = Bytes.get b 0 in
            if c <> '\n' then begin
              Buffer.add_char buf c;
              go ()
            end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ();
      Unix.close pr;
      (* A listener that died before binding (possible under env-armed
         faults) yields no port: dial a port nothing listens on, so the
         coordinator's spawn fails fast and the run degrades soundly. *)
      let port =
        match int_of_string_opt (Buffer.contents buf) with
        | Some p -> p
        | None -> 1
      in
      (pid, port)

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let dial ports id =
  Coordinator.tcp_transport ~io_timeout_s:10. ~retries:20 ~retry_delay_s:0.05
    ~max_delay_s:0.5 ~host:"127.0.0.1"
    ~port:ports.(id mod Array.length ports)
    ()

(* ------------------------------------------------------------------ *)
(* Smoke: whatever the environment armed, every shard is emitted with   *)
(* sound brackets over a real loopback socket.                          *)

let test_env_smoke () =
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:5 in
  let pid, port = spawn_listener ~shard_cost w sets () in
  Fun.protect
    ~finally:(fun () -> reap pid)
    (fun () ->
      let emit, _est, lo, hi, _tr, order = collector n in
      let summary =
        Coordinator.run ~options:(options shard_cost) ~workers:1
          ~lease_ttl_s:2.0 ~max_reconnects:1 ~reconnect_delay_s:0.05
          ~spawn:(dial [| port |])
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check int_c "every shard emitted"
        summary.Coordinator.stream.Confidence.shards (List.length !order);
      check bool_c "emitted in plan order" true
        (List.rev !order = List.init (List.length !order) Fun.id);
      assert_sound "tcp env smoke" w sets lo hi)

(* ------------------------------------------------------------------ *)
(* Bit-identity across fleet sizes over loopback TCP.                   *)

let test_tcp_identity () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:6 in
  let opts = options shard_cost in
  let ref_arrays, ref_order, ref_summary = reference ~opts w sets in
  check bool_c "reference plans several shards" true
    (ref_summary.Confidence.shards >= 4);
  List.iter
    (fun workers ->
      let listeners =
        List.init workers (fun _ -> spawn_listener ~shard_cost w sets ())
      in
      Fun.protect
        ~finally:(fun () -> List.iter (fun (pid, _) -> reap pid) listeners)
        (fun () ->
          let ports = Array.of_list (List.map snd listeners) in
          let emit, est, lo, hi, tr, order = collector n in
          let summary =
            Coordinator.run ~options:opts ~workers ~spawn:(dial ports)
              (Rng.create ~seed) w sets ~eps ~delta ~emit
          in
          let name = Printf.sprintf "%d tcp workers" workers in
          check int_c (name ^ ": spawned") workers
            summary.Coordinator.workers_spawned;
          check int_c (name ^ ": none lost") 0
            summary.Coordinator.workers_lost;
          check bool_c (name ^ ": same emission order") true
            (List.rev !order = ref_order);
          check bool_c (name ^ ": complete") true
            summary.Coordinator.stream.Confidence.stream_complete;
          check_same name (est, lo, hi, tr) ref_arrays))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* A listener SIGKILLed mid-shard is replaced by a freshly dialed one:  *)
(* the lost slot redials, re-handshakes, and the bytes never change.    *)

let test_kill_listener_redial () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:6 in
  let opts = options shard_cost in
  let ref_arrays, _, _ = reference ~opts w sets in
  (* The spare is forked up front (forking mid-run, with reader threads
     live, risks inheriting a held lock) and sits idle in accept until the
     coordinator's redial finds it; it is forked BEFORE the victim so it
     does not inherit the victim's armed solve delay. *)
  let spare = spawn_listener ~shard_cost w sets () in
  (* Victim: every solve it runs is held for 0.5s ("shard.run" armed with
     a Delay just across its fork, then disarmed here), so a kill 0.2s in
     lands deterministically mid-shard.  Delay never changes bits. *)
  FP.arm ~mode:(FP.Delay 0.5) "shard.run";
  let victim = spawn_listener ~shard_cost w sets () in
  clear_all ();
  let ports = [| snd victim |] in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (pid, _) -> reap pid) [ victim; spare ])
    (fun () ->
      (* With a single worker slot, the redial is the only road to
         completion: in-process fallback stays gated while a redial is
         pending, so the run finishing at all proves reconnect-resume. *)
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.2;
            reap (fst victim);
            ports.(0) <- snd spare)
          ()
      in
      let emit, est, lo, hi, tr, _ = collector n in
      let summary =
        Coordinator.run ~options:opts ~workers:1 ~lease_ttl_s:5.0
          ~max_reconnects:2 ~reconnect_delay_s:0.05
          ~spawn:(fun _ ->
            Coordinator.tcp_transport ~io_timeout_s:10. ~retries:40
              ~retry_delay_s:0.05 ~max_delay_s:0.5 ~host:"127.0.0.1"
              ~port:ports.(0) ())
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      Thread.join killer;
      check int_c "the victim's connection was lost" 1
        summary.Coordinator.workers_lost;
      check int_c "the lost slot redialed the spare" 1
        summary.Coordinator.reconnects;
      check bool_c "the in-flight shard was reassigned" true
        (summary.Coordinator.reassigned >= 1);
      check int_c "the redialed worker resumed the work (no fallback)" 0
        summary.Coordinator.fallback_shards;
      check bool_c "run complete" true
        summary.Coordinator.stream.Confidence.stream_complete;
      (* Bit-identity includes per-tuple trials: a double-ingested outcome
         would double-count trials before it changed any estimate bits. *)
      check_same "after kill+redial" (est, lo, hi, tr) ref_arrays)

(* ------------------------------------------------------------------ *)
(* Lease expiry, reassignment, late duplicate: a scripted fleet where   *)
(* worker A stops heartbeating mid-shard, B absorbs the reassignment,   *)
(* A's stale outcome (superseded epoch) is drained and deduped, and C   *)
(* holds a shard hostage so the run is still open to observe it all.    *)

module Chan = struct
  type 'a t = { m : Mutex.t; c : Condition.t; q : 'a Queue.t }

  let create () =
    { m = Mutex.create (); c = Condition.create (); q = Queue.create () }

  let push t v =
    Mutex.protect t.m (fun () ->
        Queue.add v t.q;
        Condition.signal t.c)

  let pop t =
    Mutex.protect t.m (fun () ->
        while Queue.is_empty t.q do
          Condition.wait t.c t.m
        done;
        Queue.pop t.q)
end

let test_lease_expiry_late_duplicate () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:6 in
  let opts = options shard_cost in
  let ref_arrays, _, ref_summary = reference ~opts w sets in
  check bool_c "enough shards for three workers" true
    (ref_summary.Confidence.shards >= 3);
  (* Mirror the coordinator's handshake and solve exactly, like a real
     worker would: probe from a copy, then the lane split. *)
  let mirror = Rng.create ~seed in
  let probe = Worker.probe_of mirror in
  let lanes = Rng.split_n mirror n in
  let plan = Shard.plan ~eps ~delta ~max_cost:shard_cost sets in
  let meta = Shard.meta_payload ~n ~eps ~delta ~fuel:None ~shard_cost in
  let solve_payload i =
    let sh = plan.(i) in
    let fp = Shard.fingerprint sets sh in
    Shard.to_payload
      (Confidence.solve_shard ~lanes w sets sh ~fp ~eps ~delta)
  in
  let hello = Protocol.Hello { meta; probe; source = None } in
  (* Worker A: handshakes, takes one order, then goes silent (no
     heartbeats) so its lease expires; when B has answered the reassigned
     shard, A delivers its own (correct, but superseded-epoch) outcome —
     whichever of the two the drain meets second is the late duplicate. *)
  let a_out : Protocol.msg option Chan.t = Chan.create () in
  let a_order = ref None in
  let a_fired = ref false in
  let a_send = function
    | Protocol.Order { index; epoch; _ } when !a_order = None ->
        a_order := Some (index, epoch)
    | _ -> ()
  in
  Chan.push a_out (Some hello);
  let a_tr =
    {
      Coordinator.send = a_send;
      recv = (fun () -> Chan.pop a_out);
      pid = None;
      remote = true;
      close = (fun () -> Chan.push a_out None);
    }
  in
  (* Worker C: handshakes, takes one order, heartbeats forever without
     answering — keeping the run open — until released. *)
  let c_order = ref None in
  let c_released = ref false in
  let c_closed = ref false in
  let c_state = ref 0 in
  let c_send = function
    | Protocol.Order { index; epoch; _ } when !c_order = None ->
        c_order := Some (index, epoch)
    | _ -> ()
  in
  let c_recv () =
    if !c_closed then None
    else
      match !c_state with
      | 0 ->
          c_state := 1;
          Some hello
      | 1 ->
          Thread.delay 0.04;
          if !c_released && !c_order <> None then begin
            c_state := 2;
            let i, e = Option.get !c_order in
            Some (Protocol.Outcome { index = i; epoch = e; payload = solve_payload i })
          end
          else Some Protocol.Heartbeat
      | _ ->
          Thread.delay 0.04;
          Some Protocol.Heartbeat
  in
  let c_tr =
    {
      Coordinator.send = c_send;
      recv = c_recv;
      pid = None;
      remote = true;
      close = (fun () -> c_closed := true);
    }
  in
  (* Worker B: a real serving worker; its coordinator-side recv is tapped
     to notice the moment B answers A's reassigned shard (same index,
     fresh epoch) — that instant triggers A's stale delivery, and shortly
     after, C's release. *)
  let make_b () =
    let base =
      Coordinator.thread_transport (fun ~input ~output ->
          Worker.serve ~shard_cost ~heartbeat_s:0.05 (Rng.create ~seed) w sets
            ~eps ~delta ~input ~output)
    in
    {
      base with
      Coordinator.recv =
        (fun () ->
          let m = base.Coordinator.recv () in
          (match (m, !a_order) with
          | Some (Protocol.Outcome { index; epoch; _ }), Some (ai, ae)
            when index = ai && epoch <> ae && not !a_fired ->
              a_fired := true;
              Chan.push a_out
                (Some (Protocol.Outcome { index = ai; epoch = ae; payload = solve_payload ai }));
              Chan.push a_out (Some Protocol.Shutdown);
              (* Hold C a beat longer so both outcomes for A's shard are
                 drained while the run is still open. *)
              ignore
                (Thread.create
                   (fun () ->
                     Thread.delay 0.25;
                     c_released := true)
                   ())
          | _ -> ());
          m)
    }
  in
  let transports = [| (fun () -> a_tr); (fun () -> make_b ()); (fun () -> c_tr) |] in
  let emit, est, lo, hi, tr, _ = collector n in
  let summary =
    Coordinator.run ~options:opts ~workers:3 ~lease_ttl_s:0.3
      ~spawn:(fun id -> transports.(id) ())
      (Rng.create ~seed) w sets ~eps ~delta ~emit
  in
  check bool_c "a lease expired" true (summary.Coordinator.leases_expired >= 1);
  check bool_c "the expired lease's shard was reassigned" true
    (summary.Coordinator.reassigned >= 1);
  check bool_c "the late duplicate was dropped" true
    (summary.Coordinator.late_drops >= 1);
  check bool_c "run complete" true
    summary.Coordinator.stream.Confidence.stream_complete;
  check int_c "no double-counted trials"
    ref_summary.Confidence.stream_trials
    summary.Coordinator.stream.Confidence.stream_trials;
  check_same "lease expiry bits" (est, lo, hi, tr) ref_arrays

(* ------------------------------------------------------------------ *)
(* Duplicated frames on the wire: the worker resends its cached reply,  *)
(* first-wins ingestion drops the copy, the bytes never change.         *)

let test_duplicate_frames () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:6 in
  let opts = options shard_cost in
  let ref_arrays, _, _ = reference ~opts w sets in
  let pid, port = spawn_listener ~shard_cost w sets () in
  Fun.protect
    ~finally:(fun () ->
      clear_all ();
      reap pid)
    (fun () ->
      (* Every coordinator-side TCP write is doubled for the first six
         frames: greeting, lease grant, and the first few orders.  A
         duplicated order makes the worker resend its cached outcome; the
         copy must be counted and dropped, not double-ingested. *)
      FP.arm ~count:6 "distrib.tcp.dup";
      let emit, est, lo, hi, tr, _ = collector n in
      let summary =
        Coordinator.run ~options:opts ~workers:1 ~spawn:(dial [| port |])
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check bool_c "duplicates were dropped" true
        (summary.Coordinator.late_drops >= 1);
      check int_c "no worker lost to duplication" 0
        summary.Coordinator.workers_lost;
      check bool_c "run complete" true
        summary.Coordinator.stream.Confidence.stream_complete;
      check_same "duplicated frames" (est, lo, hi, tr) ref_arrays)

(* ------------------------------------------------------------------ *)
(* Network chaos soak: connection drops and a half-open stall, bounded  *)
(* termination with sound brackets, then a fault-free rerun that is     *)
(* bit-identical to the single-process reference.                       *)

let test_tcp_chaos_soak () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:6 in
  let opts = options shard_cost in
  let ref_arrays, _, _ = reference ~opts w sets in
  let l0 = spawn_listener ~shard_cost w sets () in
  let l1 = spawn_listener ~shard_cost w sets () in
  Fun.protect
    ~finally:(fun () ->
      clear_all ();
      reap (fst l0);
      reap (fst l1))
    (fun () ->
      let ports = [| snd l0; snd l1 |] in
      (* Two dropped connections plus one half-open stall (blocks an I/O
         up to the 2s registry cap — long past the lease) on the
         coordinator side of the sockets.  The listeners survive their
         torn sessions and accept the redials. *)
      FP.arm ~count:2 "distrib.tcp.drop";
      FP.arm ~count:1 ~mode:FP.Stall "distrib.tcp.stall";
      let t0 = Unix.gettimeofday () in
      let emit, _est, lo, hi, _tr, order = collector n in
      let summary =
        Coordinator.run ~options:opts ~workers:2 ~lease_ttl_s:0.6
          ~max_reconnects:4 ~reconnect_delay_s:0.05 ~spawn:(dial ports)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check bool_c "terminates in bounded time" true
        (Unix.gettimeofday () -. t0 < 60.);
      check int_c "every shard emitted"
        summary.Coordinator.stream.Confidence.shards (List.length !order);
      check bool_c "emitted in plan order" true
        (List.rev !order = List.init (List.length !order) Fun.id);
      assert_sound "chaos soak" w sets lo hi;
      (* Fault-free rerun: same inputs, fresh sessions on the surviving
         listeners, byte-identical to the reference stream. *)
      clear_all ();
      let emit, est, lo, hi, tr, _ = collector n in
      let healed =
        Coordinator.run ~options:opts ~workers:2 ~spawn:(dial ports)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check bool_c "fault-free rerun complete" true
        healed.Coordinator.stream.Confidence.stream_complete;
      check_same "fault-free rerun" (est, lo, hi, tr) ref_arrays)

let () =
  Alcotest.run "remote"
    [
      ( "smoke",
        [
          Alcotest.test_case "env-armed TCP coordinator stays sound" `Quick
            test_env_smoke;
        ] );
      ( "identity",
        [
          Alcotest.test_case "bit-identical for 1/2/4 TCP workers" `Quick
            test_tcp_identity;
        ] );
      ( "faults",
        [
          Alcotest.test_case
            "SIGKILLed listener replaced by a fresh dial, bits unchanged"
            `Quick test_kill_listener_redial;
          Alcotest.test_case
            "lease expiry reassigns; the late duplicate is dropped" `Quick
            test_lease_expiry_late_duplicate;
          Alcotest.test_case "duplicated frames are deduped" `Quick
            test_duplicate_frames;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "drop/stall soak, then bit-identical rerun"
            `Quick test_tcp_chaos_soak;
        ] );
    ]
