(* Tests for the Karp-Luby FPRAS (Section 4): estimator unbiasedness, the
   (ε, δ) guarantee, degenerate cases and incremental estimator state. *)

open Pqdb_numeric
open Pqdb_urel
open Pqdb_montecarlo
module Q = Rational
module Gen = Pqdb_workload.Gen

(* Force a few resident pool workers so the parallel path is exercised even
   on single-core CI machines (where the pool would otherwise stay inline).
   Must run before the first [Pool.run]. *)
let () = Unix.putenv "PQDB_POOL_WORKERS" "3"

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* A fixed mid-size DNF with known structure: three Bernoulli variables,
   clauses {x=1}, {y=1, z=0}, {x=0, z=1}. *)
let fixture () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 3 10; Q.of_ints 7 10 ] in
  let y = Wtable.add_var w [ Q.of_ints 1 2; Q.of_ints 1 2 ] in
  let z = Wtable.add_var w [ Q.of_ints 4 5; Q.of_ints 1 5 ] in
  let clauses =
    [
      Assignment.singleton x 1;
      Assignment.of_list [ (y, 1); (z, 0) ];
      Assignment.of_list [ (x, 0); (z, 1) ];
    ]
  in
  (w, clauses)

let test_dnf_structure () =
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  check int_c "|F| = 3" 3 (Dnf.clause_count dnf);
  check bool_c "not trivial" false
    (Dnf.is_trivially_false dnf || Dnf.is_trivially_true dnf);
  (* M = 0.7 + 0.5*0.8 + 0.3*0.2 = 1.16 *)
  check (Alcotest.float 1e-9) "M" 1.16 (Dnf.total_weight dnf);
  check int_c "3 variables" 3 (List.length (Dnf.variables dnf))

let test_estimator_unbiased () =
  (* Mean of many estimator evaluations times M approximates p. *)
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let p = Q.to_float (Dnf.exact dnf) in
  let rng = Rng.create ~seed:99 in
  let trials = 60_000 in
  let sum = ref 0 in
  for _ = 1 to trials do
    sum := !sum + Dnf.sample_estimator rng dnf
  done;
  let estimate =
    float_of_int !sum *. Dnf.total_weight dnf /. float_of_int trials
  in
  check bool_c
    (Printf.sprintf "estimate %.4f near exact %.4f" estimate p)
    true
    (Float.abs (estimate -. p) < 0.01)

let test_exact_value () =
  (* P(x=1 or (y=1 and z=0) or (x=0 and z=1))
     = 1 - P(none): complementary via enumeration is checked in test_urel;
     here pin the known value.
     Worlds where none holds: x=0 and not(y=1,z=0) and not(z=1)
       => x=0, z=0, y=0 : 0.3*0.5*0.8 = 0.12
     p = 1 - 0.12 = 0.88. *)
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  check (Alcotest.float 1e-9) "exact p" 0.88 (Q.to_float (Dnf.exact dnf))

let test_fpras_guarantee () =
  (* Empirical failure frequency of the (ε, δ) scheme stays ≤ δ (with slack
     for randomness: binomial with 400 runs). *)
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let p = Q.to_float (Dnf.exact dnf) in
  let eps = 0.08 and delta = 0.1 in
  let rng = Rng.create ~seed:7 in
  let runs = 400 in
  let tally = Stats.tally () in
  for _ = 1 to runs do
    let p_hat = Karp_luby.fpras rng dnf ~eps ~delta in
    Stats.record tally (Float.abs (p_hat -. p) < eps *. p)
  done;
  let rate = Stats.error_rate tally in
  check bool_c
    (Printf.sprintf "failure rate %.3f <= delta %.3f (+slack)" rate delta)
    true
    (rate <= delta +. 0.05)

let test_trials_formula () =
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let m = Karp_luby.trials_for dnf ~eps:0.1 ~delta:0.05 in
  (* m = ceil(3 * 3 * ln(40) / 0.01) = ceil(900 * 3.68888) = 3320 *)
  check int_c "m formula" 3320 m

let test_degenerate_dnfs () =
  let w = Wtable.create () in
  let rng = Rng.create ~seed:1 in
  let empty = Dnf.prepare w [] in
  check bool_c "empty is false" true (Dnf.is_trivially_false empty);
  check (Alcotest.float 0.) "p = 0" 0. (Karp_luby.fpras rng empty ~eps:0.1 ~delta:0.1);
  let certain = Dnf.prepare w [ Assignment.empty ] in
  check bool_c "empty clause is true" true (Dnf.is_trivially_true certain);
  check (Alcotest.float 0.) "p = 1" 1.
    (Karp_luby.fpras rng certain ~eps:0.1 ~delta:0.1);
  check int_c "no trials needed" 0 (Karp_luby.trials_for certain ~eps:0.1 ~delta:0.1)

let test_estimator_state () =
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let est = Estimator.create dnf in
  let rng = Rng.create ~seed:5 in
  check int_c "starts empty" 0 (Estimator.trials est);
  check (Alcotest.float 0.) "delta bound 1 before trials" 1.
    (Estimator.delta_bound est ~eps:0.2);
  Estimator.step_round rng est;
  check int_c "one round = |F| trials" 3 (Estimator.trials est);
  let d1 = Estimator.delta_bound est ~eps:0.2 in
  Estimator.batch rng est 300;
  let d2 = Estimator.delta_bound est ~eps:0.2 in
  check bool_c "bound decreases with trials" true (d2 < d1);
  let missing = Estimator.trials_to_reach est ~eps:0.2 ~delta:0.05 in
  Estimator.batch rng est missing;
  check bool_c "target met after top-up" true
    (Estimator.delta_bound est ~eps:0.2 <= 0.05 +. 1e-12)

let test_estimator_convergence () =
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let p = Q.to_float (Dnf.exact dnf) in
  let est = Estimator.create dnf in
  let rng = Rng.create ~seed:11 in
  Estimator.batch rng est 50_000;
  check bool_c "estimate near p" true
    (Float.abs (Estimator.estimate est -. p) < 0.02)

(* Property: on random DNFs the FPRAS lands within 3ε of exact at least 90%
   of the time with δ = 0.05 (loose statistical smoke test). *)
let prop_fpras_tracks_exact =
  QCheck.Test.make ~name:"fpras tracks exact confidence" ~count:25
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create ~seed in
      let w = Wtable.create () in
      let vars =
        Array.init 4 (fun _ ->
            let num = 1 + Rng.int rng 9 in
            Wtable.add_var w [ Q.of_ints num 10; Q.of_ints (10 - num) 10 ])
      in
      let clause () =
        let v = vars.(Rng.int rng 4) in
        Assignment.singleton v (Rng.int rng 2)
      in
      let clauses = List.init (1 + Rng.int rng 3) (fun _ -> clause ()) in
      let dnf = Dnf.prepare w clauses in
      let p = Q.to_float (Dnf.exact dnf) in
      let p_hat = Karp_luby.fpras rng dnf ~eps:0.1 ~delta:0.05 in
      Float.abs (p_hat -. p) <= 0.3 *. p +. 1e-9)

(* ------------------------------------------------------------------ *)
(* More estimator / DNF behaviours                                     *)
(* ------------------------------------------------------------------ *)

let test_run_invalid_trials () =
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let rng = Rng.create ~seed:2 in
  Alcotest.check_raises "zero trials"
    (Invalid_argument "Karp_luby.run: trials must be positive") (fun () ->
      ignore (Karp_luby.run rng dnf ~trials:0))

let test_sample_empty_dnf_raises () =
  let w = Wtable.create () in
  let dnf = Dnf.prepare w [] in
  let rng = Rng.create ~seed:2 in
  Alcotest.check_raises "empty DNF"
    (Invalid_argument "Dnf.sample_estimator: empty DNF") (fun () ->
      ignore (Dnf.sample_estimator rng dnf))

let test_dnf_variable_dedup () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let dnf =
    Dnf.prepare w [ Assignment.singleton x 0; Assignment.singleton x 1 ]
  in
  check int_c "one variable across clauses" 1 (List.length (Dnf.variables dnf))

let test_single_clause_estimator_is_exact () =
  (* With one clause, the estimator always fires, so p-hat = M = p_f
     exactly after any number of trials. *)
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 3 10; Q.of_ints 7 10 ] in
  let dnf = Dnf.prepare w [ Assignment.singleton x 1 ] in
  let rng = Rng.create ~seed:3 in
  check (Alcotest.float 1e-12) "exact after 5 trials" 0.7
    (Karp_luby.run rng dnf ~trials:5)

let test_disjoint_clauses_value () =
  (* Disjoint-variable clauses: p = 1 - (1-p1)(1-p2). *)
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 4 5; Q.of_ints 1 5 ] in
  let y = Wtable.add_var w [ Q.of_ints 2 5; Q.of_ints 3 5 ] in
  let dnf =
    Dnf.prepare w [ Assignment.singleton x 1; Assignment.singleton y 1 ]
  in
  check (Alcotest.float 1e-12) "exact" (1. -. (0.8 *. 0.4))
    (Q.to_float (Dnf.exact dnf));
  let rng = Rng.create ~seed:4 in
  let est = Estimator.create dnf in
  Estimator.batch rng est 40_000;
  check bool_c "estimator converges" true
    (Float.abs (Estimator.estimate est -. 0.68) < 0.02)

let test_estimator_degenerate_values () =
  let w = Wtable.create () in
  let certain = Estimator.create (Dnf.prepare w [ Assignment.empty ]) in
  let impossible = Estimator.create (Dnf.prepare w []) in
  check bool_c "both degenerate" true
    (Estimator.is_degenerate certain && Estimator.is_degenerate impossible);
  check (Alcotest.float 0.) "certain = 1" 1. (Estimator.estimate certain);
  check (Alcotest.float 0.) "impossible = 0" 0. (Estimator.estimate impossible);
  check int_c "no trials needed" 0
    (Estimator.trials_to_reach certain ~eps:0.1 ~delta:0.1);
  let rng = Rng.create ~seed:5 in
  Estimator.batch rng certain 100;
  check int_c "batches are no-ops" 0 (Estimator.trials certain)

let prop_estimate_within_bound_often =
  (* The Chernoff bound at the achieved trial count holds empirically. *)
  QCheck.Test.make ~name:"delta_bound is a valid failure bound" ~count:20
    (QCheck.int_range 0 1000) (fun seed ->
      let rng = Rng.create ~seed in
      let w, clauses = fixture () in
      let dnf = Dnf.prepare w clauses in
      let p = Q.to_float (Dnf.exact dnf) in
      let eps = 0.15 in
      let failures = ref 0 and runs = 30 in
      for _ = 1 to runs do
        let est = Estimator.create dnf in
        Estimator.batch rng est 2000;
        if Float.abs (Estimator.estimate est -. p) >= eps *. p then
          incr failures
      done;
      let bound =
        Stats.karp_luby_delta ~trials:2000 ~clauses:(Dnf.clause_count dnf)
          ~eps
      in
      float_of_int !failures /. float_of_int runs <= bound +. 0.15)

(* ------------------------------------------------------------------ *)
(* Parallel Karp-Luby and the batched confidence engine                 *)
(* ------------------------------------------------------------------ *)

let test_run_parallel_deterministic () =
  (* The acceptance contract: identical (seed, nworkers, trials) gives a
     bit-identical estimate, run after run. *)
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let estimate () =
    Karp_luby.run_parallel ~nworkers:4 (Rng.create ~seed:31) dnf ~trials:2_000
  in
  let first = estimate () in
  for _ = 1 to 3 do
    check (Alcotest.float 0.) "bit-identical across runs" first (estimate ())
  done

let test_run_parallel_agrees_with_serial () =
  (* Parallel sharding keeps the estimator unbiased: both serial and
     parallel land near exact p = 0.88 with a generous trial budget. *)
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let p = Q.to_float (Dnf.exact dnf) in
  let trials = 60_000 in
  let serial = Karp_luby.run (Rng.create ~seed:51) dnf ~trials in
  let par = Karp_luby.run_parallel ~nworkers:4 (Rng.create ~seed:52) dnf ~trials in
  check bool_c
    (Printf.sprintf "serial %.4f near p %.4f" serial p)
    true
    (Float.abs (serial -. p) < 0.02);
  check bool_c
    (Printf.sprintf "parallel %.4f near p %.4f" par p)
    true
    (Float.abs (par -. p) < 0.02);
  (* Worker count changes the shard streams but not the distribution. *)
  let par1 = Karp_luby.run_parallel ~nworkers:1 (Rng.create ~seed:53) dnf ~trials in
  let par3 = Karp_luby.run_parallel ~nworkers:3 (Rng.create ~seed:53) dnf ~trials in
  check bool_c
    (Printf.sprintf "1 vs 3 workers: %.4f vs %.4f" par1 par3)
    true
    (Float.abs (par1 -. par3) < 0.03)

let test_run_parallel_degenerate_and_invalid () =
  let w = Wtable.create () in
  let rng = Rng.create ~seed:1 in
  check (Alcotest.float 0.) "empty DNF = 0" 0.
    (Karp_luby.run_parallel ~nworkers:4 rng (Dnf.prepare w []) ~trials:100);
  check (Alcotest.float 0.) "certain DNF = 1" 1.
    (Karp_luby.run_parallel ~nworkers:4 rng
       (Dnf.prepare w [ Assignment.empty ])
       ~trials:100);
  let w2, clauses2 = fixture () in
  let dnf = Dnf.prepare w2 clauses2 in
  Alcotest.check_raises "zero trials"
    (Invalid_argument "Karp_luby.run_parallel: trials must be positive")
    (fun () -> ignore (Karp_luby.run_parallel ~nworkers:2 rng dnf ~trials:0));
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Karp_luby.run_parallel: nworkers must be positive")
    (fun () -> ignore (Karp_luby.run_parallel ~nworkers:0 rng dnf ~trials:10));
  (* More workers than trials collapses to one shard per trial. *)
  let p = Karp_luby.run_parallel ~nworkers:8 rng dnf ~trials:3 in
  check bool_c "oversubscribed pool still estimates" true (p >= 0. && p <= Dnf.total_weight dnf)

let test_fpras_parallel_guarantee () =
  (* The sharded scheme keeps the (ε, δ) guarantee (statistical check). *)
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let p = Q.to_float (Dnf.exact dnf) in
  let eps = 0.08 and delta = 0.1 in
  let rng = Rng.create ~seed:8 in
  let runs = 200 in
  let tally = Stats.tally () in
  for _ = 1 to runs do
    let p_hat = Karp_luby.fpras_parallel ~nworkers:3 rng dnf ~eps ~delta in
    Stats.record tally (Float.abs (p_hat -. p) < eps *. p)
  done;
  let rate = Stats.error_rate tally in
  check bool_c
    (Printf.sprintf "failure rate %.3f <= delta %.3f (+slack)" rate delta)
    true
    (rate <= delta +. 0.05)

(* A small batch: the fixture DNF, a single-clause DNF, a certain and an
   impossible one. *)
let batch_fixture () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 3 10; Q.of_ints 7 10 ] in
  let y = Wtable.add_var w [ Q.of_ints 1 2; Q.of_ints 1 2 ] in
  let z = Wtable.add_var w [ Q.of_ints 4 5; Q.of_ints 1 5 ] in
  let clause_sets =
    [|
      [
        Assignment.singleton x 1;
        Assignment.of_list [ (y, 1); (z, 0) ];
        Assignment.of_list [ (x, 0); (z, 1) ];
      ];
      [ Assignment.singleton y 1 ];
      [ Assignment.empty ];
      [];
    |]
  in
  (w, clause_sets)

let test_batch_deterministic_across_pool_sizes () =
  (* The batch engine's stronger contract: estimates depend on the parent
     RNG state only — not on the pool size, not on scheduling. *)
  let w, clause_sets = batch_fixture () in
  let batch = Confidence.prepare w clause_sets in
  let run nworkers =
    Confidence.run ~nworkers (Rng.create ~seed:61) batch ~eps:0.1 ~delta:0.1
  in
  let reference = run 1 in
  List.iter
    (fun nworkers ->
      let got = run nworkers in
      Array.iteri
        (fun i v ->
          check (Alcotest.float 0.)
            (Printf.sprintf "tuple %d identical with %d workers" i nworkers)
            reference.(i) v)
        got)
    [ 1; 2; 4 ]

let test_batch_matches_exact () =
  let w, clause_sets = batch_fixture () in
  let exact =
    Array.map
      (fun clauses -> Q.to_float (Pqdb_urel.Confidence.exact w clauses))
      clause_sets
  in
  let estimates =
    Confidence.batch_fpras ~nworkers:2 (Rng.create ~seed:71) w clause_sets
      ~eps:0.05 ~delta:0.05
  in
  check int_c "one estimate per clause set" (Array.length clause_sets)
    (Array.length estimates);
  check (Alcotest.float 0.) "certain tuple exact" 1. estimates.(2);
  check (Alcotest.float 0.) "impossible tuple exact" 0. estimates.(3);
  Array.iteri
    (fun i p ->
      check bool_c
        (Printf.sprintf "tuple %d: %.4f near %.4f" i estimates.(i) p)
        true
        (Float.abs (estimates.(i) -. p) <= 0.05 *. p +. 1e-9))
    exact

let test_batch_trials_accounting () =
  let w, clause_sets = batch_fixture () in
  let batch = Confidence.prepare w clause_sets in
  check int_c "batch size" 4 (Confidence.size batch);
  let expected =
    Array.fold_left
      (fun acc clauses ->
        acc
        + Karp_luby.trials_for (Dnf.prepare w clauses) ~eps:0.1 ~delta:0.1)
      0 clause_sets
  in
  check int_c "total_trials sums per-tuple budgets" expected
    (Confidence.total_trials batch ~eps:0.1 ~delta:0.1);
  Alcotest.check_raises "bad eps" (Invalid_argument "Confidence.run")
    (fun () ->
      ignore (Confidence.run (Rng.create ~seed:1) batch ~eps:0. ~delta:0.1));
  check int_c "empty batch"
    0
    (Array.length
       (Confidence.run (Rng.create ~seed:1)
          (Confidence.prepare w [||])
          ~eps:0.1 ~delta:0.1))

(* ------------------------------------------------------------------ *)
(* Lineage compilation                                                  *)
(* ------------------------------------------------------------------ *)

let test_compile_fixture_exact () =
  (* The three-clause fixture decomposes completely: Shannon on x, then
     trivial branches.  No residuals, exact value 0.88. *)
  let w, clauses = fixture () in
  let c = Compile.compile w clauses in
  check bool_c "exact" true (Compile.is_exact c);
  check int_c "no residuals" 0 (Compile.residual_count c);
  (match Compile.exact_value c with
  | Some p -> check (Alcotest.float 1e-9) "p = 0.88" 0.88 p
  | None -> Alcotest.fail "expected exact value");
  (* solve on an exact tree spends nothing. *)
  let o = Compile.solve (Rng.create ~seed:5) c ~eps:0.1 ~delta:0.1 in
  check int_c "0 trials" 0 o.Compile.trials;
  check (Alcotest.float 1e-9) "solve = exact" 0.88 o.Compile.value;
  check (Alcotest.float 0.) "no residual mass" 0. o.Compile.residual_mass

let test_compile_trivial_and_normalization () =
  let w, _ = fixture () in
  check (Alcotest.option (Alcotest.float 0.)) "empty DNF = 0" (Some 0.)
    (Compile.exact_value (Compile.compile w []));
  check (Alcotest.option (Alcotest.float 0.)) "empty clause = 1" (Some 1.)
    (Compile.exact_value (Compile.compile w [ Assignment.empty ]));
  (* Subsumption: {x=1} absorbs {x=1, y=1}; dedup absorbs the copy. *)
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let y = Wtable.add_var w [ Q.half; Q.half ] in
  let c =
    Compile.compile w
      [
        Assignment.singleton x 1;
        Assignment.of_list [ (x, 1); (y, 1) ];
        Assignment.singleton x 1;
      ]
  in
  check (Alcotest.option (Alcotest.float 1e-12)) "normalized to {x=1}"
    (Some 0.5) (Compile.exact_value c)

let test_compile_independent_components () =
  (* Disjoint singletons combine by the product rule, no sampling. *)
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let y = Wtable.add_var w [ Q.of_ints 1 4; Q.of_ints 3 4 ] in
  let c =
    Compile.compile w [ Assignment.singleton x 1; Assignment.singleton y 1 ]
  in
  check bool_c "exact" true (Compile.is_exact c);
  check (Alcotest.option (Alcotest.float 1e-12)) "1 - (1/2)(1/4) = 7/8"
    (Some 0.875) (Compile.exact_value c)

let test_compile_fuel_zero_is_residual () =
  (* fuel = 0 turns any multi-clause set into one residual leaf: the
     pure-FPRAS baseline. *)
  let w, clauses = fixture () in
  let c = Compile.compile ~fuel:0 w clauses in
  check bool_c "not exact" false (Compile.is_exact c);
  check int_c "one residual" 1 (Compile.residual_count c);
  check int_c "residual keeps all clauses" 3
    (Dnf.clause_count (Compile.residuals c).(0));
  check (Alcotest.float 1e-9) "residual weight 1" 1.
    (Compile.residual_weights c).(0);
  (* Single clauses stay exact even without fuel. *)
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  check bool_c "single clause exact at fuel 0" true
    (Compile.is_exact (Compile.compile ~fuel:0 w [ Assignment.singleton x 1 ]))

let test_compile_solve_accuracy () =
  (* The compiled+residual path still lands inside the (eps, delta) band on
     the fixture when compilation is disabled. *)
  let w, clauses = fixture () in
  let c = Compile.compile ~fuel:0 w clauses in
  let o = Compile.solve (Rng.create ~seed:11) c ~eps:0.05 ~delta:0.01 in
  check bool_c
    (Printf.sprintf "estimate %.4f near 0.88" o.Compile.value)
    true
    (Float.abs (o.Compile.value -. 0.88) <= 0.05 *. 0.88);
  check bool_c "spent trials" true (o.Compile.trials > 0);
  check bool_c "residual mass covers the estimate" true
    (Float.abs (o.Compile.residual_mass -. o.Compile.value) <= 1e-9)

let prop_compile_matches_exact =
  QCheck.Test.make ~name:"compiled confidence = exact solver" ~count:120
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Rng.create ~seed in
      let w = Wtable.create () in
      let clauses =
        Gen.random_dnf rng w ~vars:8 ~clauses:6 ~clause_len:3
      in
      let c = Compile.compile ~fuel:1_000_000 w clauses in
      if not (Compile.is_exact c) then false
      else
        let got = Option.get (Compile.exact_value c) in
        let expect = Q.to_float (Pqdb_urel.Confidence.exact w clauses) in
        Float.abs (got -. expect) <= 1e-6)

let prop_compile_residual_path_tracks_exact =
  (* Even at tiny fuel the solve must stay within the requested relative
     band (generously slacked: one qcheck failure would need the sampler to
     leave a 3-sigma-equivalent bound). *)
  QCheck.Test.make ~name:"residual path tracks exact" ~count:40
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Rng.create ~seed in
      let w = Wtable.create () in
      let clauses =
        Gen.random_dnf rng w ~vars:10 ~clauses:8 ~clause_len:3
      in
      let expect = Q.to_float (Pqdb_urel.Confidence.exact w clauses) in
      let c = Compile.compile ~fuel:8 w clauses in
      let o =
        Compile.solve (Rng.create ~seed:(seed + 1)) c ~eps:0.1 ~delta:0.01
      in
      Float.abs (o.Compile.value -. expect) <= (0.2 *. expect) +. 1e-9)

let prop_weight_aware_budgets_sound =
  (* The weight-aware residual targets (εᵢ ∝ (Kᵢ/aᵢ)^⅓ under
     Σ aᵢεᵢ ≤ ε·T_lo) must never cost soundness: across random DNFs and
     fuels — including fuel levels that leave several residuals with very
     different path weights — the certified interval brackets the exact
     probability and a complete outcome keeps the relative-ε contract.
     Fixed seeds keep the run deterministic; per-case failure probability
     is δ = 0.01, so a failure here is a 3-sigma-equivalent event. *)
  QCheck.Test.make ~name:"weight-aware residual budgets stay sound" ~count:60
    (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Rng.create ~seed:(seed + 17) in
      let w = Wtable.create () in
      let clauses =
        Gen.random_dnf rng w ~vars:10 ~clauses:8 ~clause_len:3
      in
      let expect = Q.to_float (Pqdb_urel.Confidence.exact w clauses) in
      let fuel = [| 0; 4; 8; 16; 64 |].(seed mod 5) in
      let eps = [| 0.3; 0.1; 0.05 |].(seed mod 3) in
      let c = Compile.compile ~fuel w clauses in
      let o =
        Compile.solve (Rng.create ~seed:(seed + 1)) c ~eps ~delta:0.01
      in
      let bracketed = o.Compile.lo -. 1e-9 <= expect && expect <= o.Compile.hi +. 1e-9 in
      let relative_ok =
        (not o.Compile.complete)
        || Float.abs (o.Compile.value -. expect) <= (eps *. expect) +. 1e-9
      in
      (* [lo, hi] brackets the true probability, not the point estimate:
         the certified interval intersected with the relative-ε band can
         exclude [value] by a hair while both still contain the truth. *)
      let interval_sane = o.Compile.lo <= o.Compile.hi +. 1e-9 in
      bracketed && relative_ok && interval_sane)

(* ------------------------------------------------------------------ *)
(* Adaptive stopping rule                                               *)
(* ------------------------------------------------------------------ *)

let test_adaptive_degenerate () =
  let w, _ = fixture () in
  let rng = Rng.create ~seed:3 in
  check (Alcotest.pair (Alcotest.float 0.) int_c) "false -> (0, 0)" (0., 0)
    (Karp_luby.adaptive rng (Dnf.prepare w []) ~eps:0.1 ~delta:0.1);
  check (Alcotest.pair (Alcotest.float 0.) int_c) "true -> (1, 0)" (1., 0)
    (Karp_luby.adaptive rng
       (Dnf.prepare w [ Assignment.empty ])
       ~eps:0.1 ~delta:0.1);
  let x = Wtable.add_var w [ Q.of_ints 3 10; Q.of_ints 7 10 ] in
  let p, n =
    Karp_luby.adaptive rng
      (Dnf.prepare w [ Assignment.singleton x 1 ])
      ~eps:0.1 ~delta:0.1
  in
  check (Alcotest.float 1e-9) "single clause exact" 0.7 p;
  check int_c "single clause free" 0 n;
  check bool_c "invalid eps rejected" true
    (try
       ignore
         (Karp_luby.adaptive rng (Dnf.prepare w [ Assignment.singleton x 1 ])
            ~eps:0. ~delta:0.1);
       false
     with Invalid_argument _ -> true)

let test_adaptive_guarantee_and_savings () =
  (* Statistical check of the DKLR schedule on the fixture (p = 0.88,
     M = 1.16): over many runs the empirical failure rate must stay near
     delta, and the mean trial count must undercut the fixed Chernoff
     budget. *)
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let eps = 0.1 and delta = 0.05 in
  let fixed = Karp_luby.trials_for dnf ~eps ~delta in
  let runs = 200 in
  let failures = ref 0 and total_trials = ref 0 in
  for seed = 1 to runs do
    let p, n = Karp_luby.adaptive (Rng.create ~seed) dnf ~eps ~delta in
    total_trials := !total_trials + n;
    if Float.abs (p -. 0.88) > eps *. 0.88 then incr failures
  done;
  let mean_trials = float_of_int !total_trials /. float_of_int runs in
  check bool_c
    (Printf.sprintf "failure rate %d/%d within delta + slack" !failures runs)
    true
    (float_of_int !failures /. float_of_int runs <= delta +. 0.05);
  check bool_c
    (Printf.sprintf "mean trials %.0f < fixed budget %d" mean_trials fixed)
    true
    (mean_trials < float_of_int fixed)

let test_adaptive_deterministic () =
  let w, clauses = fixture () in
  let dnf = Dnf.prepare w clauses in
  let a = Karp_luby.adaptive (Rng.create ~seed:77) dnf ~eps:0.2 ~delta:0.1 in
  let b = Karp_luby.adaptive (Rng.create ~seed:77) dnf ~eps:0.2 ~delta:0.1 in
  check (Alcotest.pair (Alcotest.float 0.) int_c) "same seed, same outcome" a b

(* ------------------------------------------------------------------ *)
(* Resident pool                                                        *)
(* ------------------------------------------------------------------ *)

let test_pool_reuse_and_results () =
  (* The resident pool survives across calls and every task runs exactly
     once, whatever the pool size. *)
  let pool = Pool.create 4 in
  for round = 1 to 3 do
    let n = 97 in
    let hits = Array.make n 0 in
    Pool.run pool ~ntasks:n (fun i -> hits.(i) <- hits.(i) + 1);
    check bool_c
      (Printf.sprintf "round %d: each task ran once" round)
      true
      (Array.for_all (fun h -> h = 1) hits)
  done;
  Pool.run pool ~ntasks:0 (fun _ -> Alcotest.fail "no tasks to run");
  check bool_c "negative ntasks rejected" true
    (try
       Pool.run pool ~ntasks:(-1) ignore;
       false
     with Invalid_argument _ -> true)

let test_pool_exception_propagates () =
  let pool = Pool.create 4 in
  check bool_c "task failure reraised with index" true
    (try
       Pool.run pool ~ntasks:10 (fun i -> if i = 7 then failwith "boom");
       false
     with
    | Pqdb_runtime.Pqdb_error.Error (Task_failure { index = 7; inner }) ->
        (match inner with Failure msg -> msg = "boom" | _ -> false));
  (* The pool must still be usable after a failed job. *)
  let ok = Array.make 8 false in
  Pool.run pool ~ntasks:8 (fun i -> ok.(i) <- true);
  check bool_c "pool alive after failure" true (Array.for_all Fun.id ok)

let test_batch_compiled_deterministic_across_pool_sizes () =
  (* The compiled+residual path keeps the batch determinism contract: with
     compilation disabled every tuple samples, and the estimates still
     depend only on the parent RNG state — not on the pool size. *)
  let w, clause_sets = batch_fixture () in
  let batch = Confidence.prepare ~compile_fuel:0 w clause_sets in
  let run nworkers =
    fst
      (Confidence.run_with_stats ~nworkers (Rng.create ~seed:83) batch
         ~eps:0.1 ~delta:0.1)
  in
  let reference = run 1 in
  List.iter
    (fun nworkers ->
      let got = run nworkers in
      Array.iteri
        (fun i v ->
          check (Alcotest.float 0.)
            (Printf.sprintf "tuple %d identical with %d workers" i nworkers)
            reference.(i) v)
        got)
    [ 1; 2; 4 ]

let test_batch_stats () =
  let w, clause_sets = batch_fixture () in
  (* Default fuel: everything in the fixture compiles exactly. *)
  let batch = Confidence.prepare w clause_sets in
  let estimates, stats =
    Confidence.run_with_stats (Rng.create ~seed:29) batch ~eps:0.1 ~delta:0.1
  in
  check (Alcotest.float 1e-9) "fully exact" 1.
    stats.Confidence.exact_fraction;
  check bool_c "no trials spent" true
    (Array.for_all (fun n -> n = 0) stats.Confidence.trials_used);
  check (Alcotest.float 1e-9) "tuple 0 exact" 0.88 estimates.(0);
  (* fuel 0: the multi-clause tuple samples, the trivial ones stay free. *)
  let batch0 = Confidence.prepare ~compile_fuel:0 w clause_sets in
  let _, stats0 =
    Confidence.run_with_stats (Rng.create ~seed:29) batch0 ~eps:0.1 ~delta:0.1
  in
  check bool_c "multi-clause tuple sampled" true
    (stats0.Confidence.trials_used.(0) > 0);
  check int_c "certain tuple free" 0 stats0.Confidence.trials_used.(2);
  check int_c "impossible tuple free" 0 stats0.Confidence.trials_used.(3);
  check bool_c "exact fraction strictly between 0 and 1" true
    (stats0.Confidence.exact_fraction > 0.
    && stats0.Confidence.exact_fraction < 1.)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "montecarlo"
    [
      ( "dnf",
        [
          Alcotest.test_case "structure" `Quick test_dnf_structure;
          Alcotest.test_case "exact value" `Quick test_exact_value;
          Alcotest.test_case "degenerate cases" `Quick test_degenerate_dnfs;
        ] );
      ( "karp-luby",
        [
          Alcotest.test_case "estimator unbiased" `Slow
            test_estimator_unbiased;
          Alcotest.test_case "(eps,delta) guarantee" `Slow
            test_fpras_guarantee;
          Alcotest.test_case "trial-count formula" `Quick test_trials_formula;
          qcheck prop_fpras_tracks_exact;
        ] );
      ( "more behaviours",
        [
          Alcotest.test_case "invalid trial count" `Quick
            test_run_invalid_trials;
          Alcotest.test_case "sampling empty DNF" `Quick
            test_sample_empty_dnf_raises;
          Alcotest.test_case "variable dedup" `Quick test_dnf_variable_dedup;
          Alcotest.test_case "single clause is exact" `Quick
            test_single_clause_estimator_is_exact;
          Alcotest.test_case "disjoint clauses" `Quick
            test_disjoint_clauses_value;
          Alcotest.test_case "degenerate estimators" `Quick
            test_estimator_degenerate_values;
          qcheck prop_estimate_within_bound_often;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "incremental state" `Quick test_estimator_state;
          Alcotest.test_case "convergence" `Slow test_estimator_convergence;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "fixed-seed determinism" `Quick
            test_run_parallel_deterministic;
          Alcotest.test_case "serial/parallel agreement" `Slow
            test_run_parallel_agrees_with_serial;
          Alcotest.test_case "degenerate and invalid" `Quick
            test_run_parallel_degenerate_and_invalid;
          Alcotest.test_case "fpras_parallel (eps,delta)" `Slow
            test_fpras_parallel_guarantee;
        ] );
      ( "batch confidence",
        [
          Alcotest.test_case "deterministic across pool sizes" `Quick
            test_batch_deterministic_across_pool_sizes;
          Alcotest.test_case "matches exact" `Slow test_batch_matches_exact;
          Alcotest.test_case "trials accounting" `Quick
            test_batch_trials_accounting;
          Alcotest.test_case "compiled path deterministic" `Quick
            test_batch_compiled_deterministic_across_pool_sizes;
          Alcotest.test_case "trial and exactness stats" `Quick
            test_batch_stats;
        ] );
      ( "compile",
        [
          Alcotest.test_case "fixture compiles exactly" `Quick
            test_compile_fixture_exact;
          Alcotest.test_case "normalization" `Quick
            test_compile_trivial_and_normalization;
          Alcotest.test_case "independent components" `Quick
            test_compile_independent_components;
          Alcotest.test_case "fuel 0 = pure FPRAS" `Quick
            test_compile_fuel_zero_is_residual;
          Alcotest.test_case "residual solve accuracy" `Slow
            test_compile_solve_accuracy;
          qcheck prop_compile_matches_exact;
          qcheck prop_compile_residual_path_tracks_exact;
          qcheck prop_weight_aware_budgets_sound;
        ] );
      ( "adaptive stopping",
        [
          Alcotest.test_case "degenerate cases" `Quick test_adaptive_degenerate;
          Alcotest.test_case "(eps,delta) guarantee and savings" `Slow
            test_adaptive_guarantee_and_savings;
          Alcotest.test_case "deterministic" `Quick test_adaptive_deterministic;
        ] );
      ( "pool",
        [
          Alcotest.test_case "resident reuse" `Quick test_pool_reuse_and_results;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
        ] );
    ]
