(* The pqdb serve daemon and its compiled-lineage cache: canonical
   fingerprints (permutation / duplication / subsumption invariance,
   W-table-edit sensitivity), LRU bounds and counters, warm-vs-cold
   bit-identity of conf replies, budget admission, the socket round trip,
   and serve.accept fault containment.

   Fork safety is irrelevant here (sessions are threads, not forks), but
   the pool is pinned inline anyway so an environment-armed pool.spawn
   cannot take the whole suite down. *)

let () = Unix.putenv "PQDB_POOL_WORKERS" "1"

open Pqdb_numeric
open Pqdb_urel
open Pqdb_montecarlo
open Pqdb_serve
module FP = Pqdb_runtime.Faultpoint
module E = Pqdb_runtime.Pqdb_error
module Gen = Pqdb_workload.Gen
module Q = Rational

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string
let clear_all () = List.iter FP.disarm (FP.armed ())

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

(* Pull a named counter out of a stats body ("... hits 125 misses 55 ..."):
   the word after the first occurrence of [name]. *)
let counter body name =
  let words =
    String.split_on_char '\n' body
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun w -> w <> "")
  in
  let rec go = function
    | k :: v :: rest ->
        if String.equal k name then int_of_string_opt v else go (v :: rest)
    | _ -> None
  in
  go words

let temp_counter = ref 0

let temp_path suffix =
  incr temp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pqdb_serve_%d_%d%s" (Unix.getpid ()) !temp_counter
       suffix)

(* Deterministic Fisher-Yates on a list. *)
let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let fixture ~seed =
  let rng = Rng.create ~seed in
  let w = Wtable.create () in
  let sets =
    Array.init 12 (fun _ -> Gen.random_dnf rng w ~vars:8 ~clauses:6 ~clause_len:3)
  in
  (rng, w, sets)

(* ------------------------------------------------------------------ *)
(* Fingerprint canonicalization.                                       *)

let fingerprint_permutation_invariant =
  QCheck.Test.make ~name:"fingerprint: permutation + duplication invariant"
    ~count:100
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      clear_all ();
      let rng, w, sets = fixture ~seed in
      Array.for_all
        (fun set ->
          let reference = Memo.fingerprint w set in
          let permuted = shuffle rng set in
          let duplicated =
            match set with [] -> [] | c :: _ -> shuffle rng (c :: set)
          in
          String.equal (Memo.fingerprint w permuted) reference
          && String.equal (Memo.fingerprint w duplicated) reference)
        sets)

let fingerprint_subsumption_invariant =
  QCheck.Test.make ~name:"fingerprint: subsumption-equivalent sets agree"
    ~count:100
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      clear_all ();
      let _rng, w, sets = fixture ~seed in
      let vars = Wtable.vars w in
      Array.for_all
        (fun set ->
          match set with
          | [] -> true
          | c :: _ -> (
              (* A clause strictly more specific than [c] is subsumed by it
                 and must vanish under normalization. *)
              match
                List.find_opt (fun v -> Assignment.value c v = None) vars
              with
              | None -> true (* c binds every variable; nothing to extend *)
              | Some free -> (
                  match Assignment.union c (Assignment.singleton free 0) with
                  | None -> true
                  | Some subsumed ->
                      String.equal
                        (Memo.fingerprint w (subsumed :: set))
                        (Memo.fingerprint w set))))
        sets)

let test_fingerprint_sensitivity () =
  clear_all ();
  let _rng, w, sets = fixture ~seed:42 in
  let set = sets.(0) in
  let before = Memo.fingerprint w set in
  (* fuel is part of the key *)
  check bool_c "different fuel, different key" false
    (String.equal before (Memo.fingerprint ~fuel:0 w set));
  (* distinct sets get distinct keys *)
  check bool_c "different clauses, different key" false
    (String.equal before (Memo.fingerprint w sets.(1)));
  (* any W-table edit invalidates every key *)
  let _v = Wtable.add_var w [ Q.of_ints 1 2; Q.of_ints 1 2 ] in
  check bool_c "W-table edit changes the key" false
    (String.equal before (Memo.fingerprint w set));
  (* two tables never share keys, even with identical contents *)
  let w2 = Wtable.create () in
  let _ = Wtable.add_var w2 [ Q.of_ints 1 2; Q.of_ints 1 2 ] in
  let w3 = Wtable.create () in
  let _ = Wtable.add_var w3 [ Q.of_ints 1 2; Q.of_ints 1 2 ] in
  let clause = [ Assignment.singleton 0 1 ] in
  check bool_c "distinct tables, distinct keys" false
    (String.equal (Memo.fingerprint w2 clause) (Memo.fingerprint w3 clause))

(* ------------------------------------------------------------------ *)
(* Cache behavior: hits, equivalence classes, LRU bound.               *)

let equivalent_variants_hit_same_entry =
  QCheck.Test.make ~name:"cache: permuted/duplicated/subsumed variants hit"
    ~count:60
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      clear_all ();
      let rng, w, sets = fixture ~seed in
      let memo = Memo.create ~entries:64 () in
      Array.iter (fun set -> ignore (Memo.find_or_compile memo w set)) sets;
      let cold = Memo.stats memo in
      (* every variant of every set must be answered from cache *)
      Array.iter
        (fun set ->
          ignore (Memo.find_or_compile memo w (shuffle rng set));
          match set with
          | [] -> ()
          | c :: _ -> ignore (Memo.find_or_compile memo w (c :: set)))
        sets;
      let warm = Memo.stats memo in
      warm.Memo.misses = cold.Memo.misses
      && warm.Memo.hits = cold.Memo.hits + (2 * Array.length sets)
      && warm.Memo.entries <= Memo.capacity memo)

let test_cache_identical_tree () =
  clear_all ();
  let rng, w, sets = fixture ~seed:7 in
  let memo = Memo.create () in
  let set = sets.(0) in
  let t1 = Memo.find_or_compile memo w set in
  let t2 = Memo.find_or_compile memo w (shuffle rng set) in
  check bool_c "warm hit returns the same tree" true (t1 == t2);
  (* and the cached tree is what a cold compile builds *)
  let cold = Compile.compile w (shuffle rng set) in
  let solve tree = (Compile.solve (Rng.create ~seed:5) tree ~eps:0.2 ~delta:0.1).Compile.value in
  check (Alcotest.float 0.0) "same solve value as a cold compile" (solve cold)
    (solve t1)

let test_lru_bound_and_counters () =
  clear_all ();
  let _rng, w, sets = fixture ~seed:11 in
  let memo = Memo.create ~entries:4 () in
  check int_c "capacity" 4 (Memo.capacity memo);
  Array.iter (fun set -> ignore (Memo.find_or_compile memo w set)) sets;
  let s = Memo.stats memo in
  check int_c "bounded entries" 4 s.Memo.entries;
  check int_c "all distinct sets missed" (Array.length sets) s.Memo.misses;
  check int_c "evictions = misses - capacity" (Array.length sets - 4)
    s.Memo.evictions;
  (* most recent entries are resident; refetching them adds no miss *)
  ignore (Memo.find_or_compile memo w sets.(Array.length sets - 1));
  ignore (Memo.find_or_compile memo w sets.(Array.length sets - 2));
  let s2 = Memo.stats memo in
  check int_c "recent entries hit" (s.Memo.hits + 2) s2.Memo.hits;
  check int_c "no new misses" s.Memo.misses s2.Memo.misses;
  (* the evicted oldest entry recompiles: miss, eviction *)
  ignore (Memo.find_or_compile memo w sets.(0));
  let s3 = Memo.stats memo in
  check int_c "evicted entry misses again" (s.Memo.misses + 1) s3.Memo.misses;
  Memo.clear memo;
  check int_c "clear empties the cache" 0 (Memo.stats memo).Memo.entries

(* ------------------------------------------------------------------ *)
(* The server proper, in-process (no socket): dispatch + fixture db.   *)

let with_fixture_db f =
  let path = temp_path ".udbb" in
  let rng = Rng.create ~seed:99 in
  let udb = Gen.uncertain_db rng ~tuples:40 ~clauses:3 in
  Udb_io.save path udb;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let config ?(cache_entries = 64) ?io_timeout_s ?idle_timeout_s ?max_sessions
    ?watchdog_s ~db_path listen =
  {
    Server.db_path;
    listen;
    cache_entries;
    session_trials = None;
    session_deadline_s = None;
    io_timeout_s;
    idle_timeout_s;
    max_sessions;
    watchdog_s;
  }

let test_dispatch_conf_warm_equals_cold () =
  clear_all ();
  with_fixture_db (fun db ->
      let srv = Server.create (config ~db_path:db (Server.Tcp 1)) in
      let cold = Server.dispatch srv "conf events" in
      let warm = Server.dispatch srv "conf events" in
      check string_c "warm body is byte-identical to cold" cold warm;
      let s = Server.stats srv in
      check bool_c "second run hit the cache" true (s.Server.cache.Memo.hits > 0);
      check int_c "no evictions under capacity" 0 s.Server.cache.Memo.evictions;
      (* every tuple present, batch line format *)
      let lines = String.split_on_char '\n' (String.trim cold) in
      check int_c "one line per tuple" 40 (List.length lines);
      List.iteri
        (fun i line ->
          match String.split_on_char ' ' line with
          | [ idx; _est; _lo; _hi; _trials ] ->
              check string_c "index" (string_of_int i) idx
          | _ -> Alcotest.failf "malformed conf line %S" line)
        lines;
      (* a different seed is a different answer stream, same cache *)
      let other = Server.dispatch srv "conf events seed=7" in
      check bool_c "seed can change sampled output" true
        (String.length other > 0))

let test_dispatch_stats_and_errors () =
  clear_all ();
  with_fixture_db (fun db ->
      let srv = Server.create (config ~db_path:db (Server.Tcp 1)) in
      ignore (Server.dispatch srv "conf events");
      let stats_body = Server.dispatch srv "stats" in
      check bool_c "stats names the cache counters" true
        (List.for_all (contains stats_body)
           [ "hits"; "misses"; "evictions"; "capacity" ]);
      check bool_c "stats reports the hits" true
        (match counter stats_body "hits" with Some n -> n >= 0 | None -> false);
      let fails spec expected_fragment =
        match Server.dispatch srv spec with
        | body -> Alcotest.failf "%S succeeded: %s" spec body
        | exception Failure msg ->
            check bool_c
              (Printf.sprintf "%S mentions %S" spec expected_fragment)
              true (contains msg expected_fragment)
      in
      fails "conf nosuch" "unknown relation";
      fails "conf events eps=2" "eps";
      fails "conf events eps=abc" "eps";
      fails "conf events bogus" "key=value";
      fails "conf" "relation";
      fails "frobnicate" "unknown request";
      fails "stats now" "no arguments")

let test_budget_admission () =
  clear_all ();
  with_fixture_db (fun db ->
      let srv = Server.create (config ~db_path:db (Server.Tcp 1)) in
      let budget = Budget.create ~max_trials:1 () in
      (* an un-exhausted budget admits the query *)
      ignore (Server.dispatch srv ~budget "conf events");
      Budget.spend budget 2;
      match Server.dispatch srv ~budget "conf events" with
      | _ -> Alcotest.fail "exhausted session was admitted"
      | exception Failure msg ->
          check bool_c "refusal names the budget" true (contains msg "budget"))

(* ------------------------------------------------------------------ *)
(* Socket round trip: daemon thread, client queries, clean shutdown.   *)

let test_socket_round_trip () =
  clear_all ();
  with_fixture_db (fun db ->
      let sock = temp_path ".sock" in
      let listen = Server.Unix_socket sock in
      let srv = Server.create (config ~db_path:db listen) in
      let stats = ref None in
      let daemon = Thread.create (fun () -> stats := Some (Server.run srv)) () in
      let c = Client.connect ~retries:50 listen in
      check bool_c "greeting names the db" true
        (contains (Client.greeting c) db);
      let ok1, cold = Client.query c "conf events" in
      let ok2, warm = Client.query c "conf events" in
      check bool_c "cold ok" true ok1;
      check bool_c "warm ok" true ok2;
      check string_c "socket replies byte-identical warm vs cold" cold warm;
      (* errors come back on the same session, which survives *)
      let ok3, err = Client.query c "conf nosuch" in
      check bool_c "bad relation refused" false ok3;
      check bool_c "error mentions the relation" true (contains err "nosuch");
      let ok4, body = Client.query c "stats" in
      check bool_c "stats ok" true ok4;
      check bool_c "cache hits visible over the wire" true
        (match counter body "hits" with Some n -> n > 0 | None -> false);
      let ok5, _ = Client.query c "shutdown" in
      check bool_c "shutdown acknowledged" true ok5;
      Client.close c;
      Thread.join daemon;
      (match !stats with
      | None -> Alcotest.fail "server did not return stats"
      | Some s ->
          check bool_c "served at least one session" true (s.Server.sessions >= 1);
          check bool_c "counted the queries" true (s.Server.queries >= 5);
          check bool_c "cache hits in the final report" true
            (s.Server.cache.Memo.hits > 0));
      check bool_c "socket path cleaned up" false (Sys.file_exists sock))

let test_accept_fault_containment () =
  clear_all ();
  with_fixture_db (fun db ->
      let sock = temp_path ".sock" in
      let listen = Server.Unix_socket sock in
      let srv = Server.create (config ~db_path:db listen) in
      let daemon = Thread.create (fun () -> ignore (Server.run srv)) () in
      (* wait for the bind, then arm: the next connection is dropped at
         accept, and the daemon must carry on serving *)
      let probe = Client.connect ~retries:50 listen in
      FP.arm ~count:1 "serve.accept";
      (match Client.connect ~retries:0 listen with
      | c ->
          (* accept raced ahead of the arm consuming a shot is impossible
             (count=1, single accept loop): the greeting must have failed *)
          Client.close c;
          Alcotest.fail "dropped connection still greeted"
      | exception E.Error (E.Malformed_input _) -> ()
      | exception Unix.Unix_error _ -> ());
      clear_all ();
      (* the daemon survived: a fresh session works end to end *)
      let c = Client.connect ~retries:10 listen in
      let ok, _ = Client.query c "conf events" in
      check bool_c "daemon survives an accept fault" true ok;
      let ok_stats, body = Client.query c "stats" in
      check bool_c "stats after fault" true ok_stats;
      check bool_c "dropped connection counted" true
        (match counter body "dropped" with Some n -> n > 0 | None -> false);
      ignore (Client.query c "shutdown");
      Client.close c;
      Client.close probe;
      Thread.join daemon)

(* ------------------------------------------------------------------ *)
(* Stale-socket takeover: a SIGKILL'd daemon leaves its socket path     *)
(* behind; the bind-time connect-probe lets the next daemon reclaim it, *)
(* while a live daemon's socket is refused with a friendly error.       *)

let test_stale_socket_rebind () =
  clear_all ();
  with_fixture_db (fun db ->
      let sock = temp_path ".sock" in
      (* Fake a crashed daemon: bind + listen, then close the listener
         without unlinking — exactly the wreckage SIGKILL leaves. *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX sock);
      Unix.listen fd 1;
      Unix.close fd;
      check bool_c "the corpse's socket path survives" true
        (Sys.file_exists sock);
      let listen = Server.Unix_socket sock in
      let srv = Server.create (config ~db_path:db listen) in
      let daemon = Thread.create (fun () -> ignore (Server.run srv)) () in
      let c = Client.connect ~retries:50 listen in
      let ok, _ = Client.query c "conf events" in
      check bool_c "daemon reclaimed the stale socket and serves" true ok;
      ignore (Client.query c "shutdown");
      Client.close c;
      Thread.join daemon)

let test_live_socket_refused () =
  clear_all ();
  with_fixture_db (fun db ->
      let sock = temp_path ".sock" in
      let listen = Server.Unix_socket sock in
      let srv = Server.create (config ~db_path:db listen) in
      let daemon = Thread.create (fun () -> ignore (Server.run srv)) () in
      let c = Client.connect ~retries:50 listen in
      (* With the first daemon alive behind the path, a second bind must
         refuse rather than steal the socket out from under it. *)
      let rival = Server.create (config ~db_path:db listen) in
      (match Server.run rival with
      | _ -> Alcotest.fail "second daemon stole a live socket"
      | exception Failure msg ->
          check bool_c "refusal names the running daemon" true
            (contains msg "running daemon"));
      let ok, _ = Client.query c "conf events" in
      check bool_c "original daemon unharmed" true ok;
      ignore (Client.query c "shutdown");
      Client.close c;
      Thread.join daemon)

let test_backoff_salt_spreads () =
  (* Same salt → identical schedule (determinism survives the salting);
     distinct salts → distinct schedules (a fleet retrying together fans
     out); every delay stays inside [capped/2, capped]. *)
  let delays salt =
    List.init 8 (fun k ->
        Client.backoff_delay_s ~salt ~retry_delay_s:0.1 ~max_delay_s:2.0 k)
  in
  check (Alcotest.list (Alcotest.float 0.)) "same salt, same schedule"
    (delays 7) (delays 7);
  check bool_c "distinct salts, distinct schedules" true (delays 7 <> delays 8);
  List.iter
    (fun salt ->
      List.iteri
        (fun k d ->
          let capped = Float.min (0.1 *. (2. ** float_of_int k)) 2.0 in
          check bool_c
            (Printf.sprintf "salt %d attempt %d within [cap/2, cap]" salt k)
            true
            (d >= (capped /. 2.) -. 1e-12 && d <= capped +. 1e-12))
        (delays salt))
    [ 0; 1; 42; 9999 ]

let () =
  Alcotest.run "serve"
    [
      ( "fingerprint",
        [
          QCheck_alcotest.to_alcotest fingerprint_permutation_invariant;
          QCheck_alcotest.to_alcotest fingerprint_subsumption_invariant;
          Alcotest.test_case "sensitivity" `Quick test_fingerprint_sensitivity;
        ] );
      ( "cache",
        [
          QCheck_alcotest.to_alcotest equivalent_variants_hit_same_entry;
          Alcotest.test_case "identical tree" `Quick test_cache_identical_tree;
          Alcotest.test_case "lru bound + counters" `Quick
            test_lru_bound_and_counters;
        ] );
      ( "server",
        [
          Alcotest.test_case "warm equals cold" `Quick
            test_dispatch_conf_warm_equals_cold;
          Alcotest.test_case "stats + friendly errors" `Quick
            test_dispatch_stats_and_errors;
          Alcotest.test_case "budget admission" `Quick test_budget_admission;
        ] );
      ( "socket",
        [
          Alcotest.test_case "round trip" `Quick test_socket_round_trip;
          Alcotest.test_case "accept fault containment" `Quick
            test_accept_fault_containment;
          Alcotest.test_case "stale socket reclaimed" `Quick
            test_stale_socket_rebind;
          Alcotest.test_case "live socket refused" `Quick
            test_live_socket_refused;
          Alcotest.test_case "backoff salt spreads the fleet" `Quick
            test_backoff_salt_spreads;
        ] );
    ]
