(* Streaming, checkpointed batch execution: journal framing, crash/resume
   bit-identity, shard quarantine containment, and budget-aware scheduling.

   Like test_faults, this suite is written to pass under an
   environment-armed fault (the CI matrix runs every suite with
   PQDB_FAULTPOINTS=<site>): the smoke test below runs first against
   whatever the environment armed, and every later test clears the registry
   before arming its own site — the bit-identity assertions only make sense
   on a fault-free engine. *)

open Pqdb_numeric
open Pqdb_urel
open Pqdb_montecarlo
module Q = Rational
module FP = Pqdb_runtime.Faultpoint
module E = Pqdb_runtime.Pqdb_error
module Checkpoint = Pqdb_runtime.Checkpoint
module Gen = Pqdb_workload.Gen

(* Exercise the parallel path even on single-core machines. *)
let () = Unix.putenv "PQDB_POOL_WORKERS" "3"

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let clear_all () = List.iter FP.disarm (FP.armed ())

let find_sub ~sub s =
  let nl = String.length sub and hl = String.length s in
  let rec go i =
    if i + nl > hl then None
    else if String.sub s i nl = sub then Some i
    else go (i + 1)
  in
  go 0

let contains ~needle hay = find_sub ~sub:needle hay <> None

(* Literal first-occurrence replacement (no Str dependency). *)
let replace_once ~sub ~by s =
  match find_sub ~sub s with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ by
      ^ String.sub s
          (i + String.length sub)
          (String.length s - i - String.length sub)

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqdb_ckpt_%d_%d" (Unix.getpid ()) !temp_counter)
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_raw path body =
  let oc = open_out_bin path in
  output_string oc body;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Fixture: a mixed batch big enough to plan into several shards.      *)

let eps = 0.35
let delta = 0.2

let fixture () =
  let rng = Rng.create ~seed:4242 in
  let w = Wtable.create () in
  let sets =
    List.init 18 (fun i ->
        match i mod 6 with
        | 0 -> Gen.random_dnf rng w ~vars:8 ~clauses:5 ~clause_len:3
        | 1 ->
            let num = 1 + Rng.int rng 9 in
            let v =
              Wtable.add_var w [ Q.of_ints (10 - num) 10; Q.of_ints num 10 ]
            in
            [ Assignment.singleton v 1 ]
        | 2 -> Gen.random_dnf rng w ~vars:6 ~clauses:4 ~clause_len:2
        | 3 -> [ Assignment.empty ] (* certain *)
        | 4 -> [] (* impossible *)
        | _ -> Gen.random_dnf rng w ~vars:10 ~clauses:6 ~clause_len:3)
  in
  (w, Array.of_list sets)

(* A shard ceiling that cuts the fixture into several shards. *)
let shard_cost_for clause_sets ~target =
  let total =
    Array.fold_left
      (fun acc cs -> acc + Shard.tuple_cost ~eps ~delta cs)
      0 clause_sets
  in
  max 1 (total / target)

let exact_probs w clause_sets =
  Array.map
    (fun clauses -> Q.to_float (Pqdb_urel.Confidence.exact w clauses))
    clause_sets

let assert_sound name w clause_sets (intervals : (float * float) array) =
  Array.iteri
    (fun i p ->
      let lo, hi = intervals.(i) in
      check bool_c
        (Printf.sprintf "%s: tuple %d exact %.4f inside [%g, %g]" name i p lo
           hi)
        true
        (lo -. 1e-9 <= p && p <= hi +. 1e-9))
    (exact_probs w clause_sets)

let bits = Int64.bits_of_float

let check_floats_bitwise name a b =
  check int_c (name ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      check Alcotest.int64
        (Printf.sprintf "%s: slot %d" name i)
        (bits x) (bits b.(i)))
    a

let check_intervals_bitwise name a b =
  check int_c (name ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (lo, hi) ->
      let lo', hi' = b.(i) in
      check Alcotest.int64
        (Printf.sprintf "%s: lo %d" name i)
        (bits lo) (bits lo');
      check Alcotest.int64
        (Printf.sprintf "%s: hi %d" name i)
        (bits hi) (bits hi'))
    a

let check_same_result name (out, (stats : Confidence.stats))
    (out', (stats' : Confidence.stats)) =
  check_floats_bitwise (name ^ ": estimates") out out';
  check_intervals_bitwise (name ^ ": intervals") stats.Confidence.intervals
    stats'.Confidence.intervals;
  check_floats_bitwise (name ^ ": achieved") stats.Confidence.achieved_eps
    stats'.Confidence.achieved_eps;
  check
    Alcotest.(array int_c)
    (name ^ ": trials") stats.Confidence.trials_used
    stats'.Confidence.trials_used

let stream_opts ?checkpoint ?(resume = false) ?(retries = 2) ~shard_cost () =
  { Confidence.shard_cost; retries; checkpoint; resume }

let run_stream ?budget ?compile_fuel ~options w clause_sets =
  let rng = Rng.create ~seed:99 in
  let out, stats, summary =
    Confidence.run_stream_with_stats ?budget ?compile_fuel ~options rng w
      clause_sets ~eps ~delta
  in
  ((out, stats), summary)

let run_materialized ?budget ?compile_fuel w clause_sets =
  let rng = Rng.create ~seed:99 in
  let batch = Confidence.prepare ?compile_fuel w clause_sets in
  Confidence.run_with_stats ?budget rng batch ~eps ~delta

(* ------------------------------------------------------------------ *)
(* 0. Environment smoke: whatever site CI armed, a checkpointed stream
      must stay sound — typed quarantine or degraded journal, never a
      crash or an unsound bracket. *)

let test_env_smoke () =
  with_temp_dir (fun dir ->
      let w, clause_sets = fixture () in
      let shard_cost = shard_cost_for clause_sets ~target:6 in
      let path = Filename.concat dir "smoke.ckpt" in
      let options = stream_opts ~checkpoint:path ~retries:1 ~shard_cost () in
      let (_, stats), summary = run_stream ~options w clause_sets in
      assert_sound "env smoke" w clause_sets stats.Confidence.intervals;
      List.iter
        (fun (_, err) ->
          check bool_c "quarantine error is typed" true
            (String.length (E.to_string err) > 0))
        summary.Confidence.quarantined)

(* ------------------------------------------------------------------ *)
(* 1. Checkpoint journal plumbing. *)

let test_journal_framing () =
  clear_all ();
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "j.ckpt" in
      check
        Alcotest.(list string)
        "missing file reads empty" [] (Checkpoint.read path);
      let wtr, prior = Checkpoint.open_writer path in
      check Alcotest.(list string) "fresh journal" [] prior;
      Checkpoint.append wtr "alpha one";
      Checkpoint.append wtr "beta two";
      Alcotest.check_raises "newline payload rejected"
        (Invalid_argument "Checkpoint.append: payload must be newline-free")
        (fun () -> Checkpoint.append wtr "bad\npayload");
      Checkpoint.close wtr;
      check
        Alcotest.(list string)
        "round trip"
        [ "alpha one"; "beta two" ]
        (Checkpoint.read path);
      let wtr, prior = Checkpoint.open_writer ~resume:true path in
      check
        Alcotest.(list string)
        "resume sees prior records"
        [ "alpha one"; "beta two" ]
        prior;
      Checkpoint.append wtr "gamma";
      Checkpoint.close wtr;
      check int_c "append after resume" 3 (List.length (Checkpoint.read path));
      (* resume:false truncates. *)
      let wtr, prior = Checkpoint.open_writer path in
      check Alcotest.(list string) "truncated on fresh open" [] prior;
      Checkpoint.close wtr)

let test_torn_tail () =
  clear_all ();
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "torn.ckpt" in
      let wtr, _ = Checkpoint.open_writer path in
      Checkpoint.append wtr "first";
      Checkpoint.append wtr "second";
      Checkpoint.close wtr;
      let body = read_file path in
      (* Chop bytes off the tail: every truncation must still read the
         surviving whole records, silently dropping the torn line. *)
      for cut = 1 to 8 do
        write_raw path (String.sub body 0 (String.length body - cut));
        let records = Checkpoint.read path in
        check bool_c
          (Printf.sprintf "cut %d keeps a valid prefix" cut)
          true
          (records = [ "first" ] || records = [ "first"; "second" ])
      done;
      (* A torn tail is also writable: resume truncates it away. *)
      write_raw path (String.sub body 0 (String.length body - 3));
      let wtr, prior = Checkpoint.open_writer ~resume:true path in
      check Alcotest.(list string) "torn record dropped" [ "first" ] prior;
      Checkpoint.append wtr "third";
      Checkpoint.close wtr;
      check
        Alcotest.(list string)
        "journal healed" [ "first"; "third" ] (Checkpoint.read path))

let test_mid_corruption () =
  clear_all ();
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "flip.ckpt" in
      let wtr, _ = Checkpoint.open_writer path in
      Checkpoint.append wtr "first";
      Checkpoint.append wtr "second";
      Checkpoint.append wtr "third";
      Checkpoint.close wtr;
      let body = read_file path in
      (* Flip a byte inside record 1 (not the final line): typed
         Malformed_input naming the path and the record index. *)
      let idx =
        let rec find i = if body.[i] = 'f' then i else find (i + 1) in
        find (String.length Checkpoint.magic)
      in
      let corrupt = Bytes.of_string body in
      Bytes.set corrupt idx 'F';
      write_raw path (Bytes.to_string corrupt);
      (match Checkpoint.read path with
      | _ -> Alcotest.fail "corrupt mid-file record must raise"
      | exception E.Error (E.Malformed_input { source; detail }) ->
          check Alcotest.string "names the journal" path source;
          check bool_c "names the record" true
            (contains ~needle:"record 1" detail));
      (* The same flip in the FINAL record is indistinguishable from a torn
         tail and is dropped, not fatal. *)
      let last_t = String.rindex body 't' in
      let corrupt = Bytes.of_string body in
      Bytes.set corrupt last_t 'T';
      write_raw path (Bytes.to_string corrupt);
      check
        Alcotest.(list string)
        "flipped final record dropped"
        [ "first"; "second" ]
        (Checkpoint.read path);
      (* A corrupt header is always fatal. *)
      write_raw path "not-a-journal\nr 00000000 x\n";
      match Checkpoint.read path with
      | _ -> Alcotest.fail "bad header must raise"
      | exception E.Error (E.Malformed_input { detail; _ }) ->
          check bool_c "header named" true (contains ~needle:"header" detail))

(* ------------------------------------------------------------------ *)
(* 2. Stream = materialized run, bit for bit. *)

let test_stream_matches_run () =
  clear_all ();
  let w, clause_sets = fixture () in
  let reference = run_materialized w clause_sets in
  let shard_cost = shard_cost_for clause_sets ~target:6 in
  let streamed, summary =
    run_stream ~options:(stream_opts ~shard_cost ()) w clause_sets
  in
  check bool_c "plan has several shards" true (summary.Confidence.shards >= 4);
  check bool_c "stream complete" true summary.Confidence.stream_complete;
  check_same_result "stream vs run" reference streamed;
  (* One-shard-per-tuple is the degenerate extreme and must still agree. *)
  let streamed, summary =
    run_stream ~options:(stream_opts ~shard_cost:1 ()) w clause_sets
  in
  check int_c "singleton shards"
    (Array.length clause_sets)
    summary.Confidence.shards;
  check_same_result "singleton stream vs run" reference streamed

(* ------------------------------------------------------------------ *)
(* 3. Crash mid-stream, resume, bit-identical. *)

let crash_after ?budget ~k ~options w clause_sets =
  (* Simulate a crash: the consumer dies after [k] shards were computed,
     journaled and emitted.  The journal then holds exactly [k] records. *)
  let rng = Rng.create ~seed:99 in
  let seen = ref 0 in
  match
    Confidence.run_stream ?budget ~options rng w clause_sets ~eps ~delta
      ~emit:(fun _ ->
        incr seen;
        if !seen >= k then raise Exit)
  with
  | _ -> Alcotest.fail "crash simulation must escape run_stream"
  | exception Exit -> ()

let test_crash_resume () =
  clear_all ();
  with_temp_dir (fun dir ->
      let w, clause_sets = fixture () in
      let shard_cost = shard_cost_for clause_sets ~target:6 in
      let reference =
        run_stream ~options:(stream_opts ~shard_cost ()) w clause_sets
      in
      let path = Filename.concat dir "crash.ckpt" in
      crash_after ~k:2
        ~options:(stream_opts ~checkpoint:path ~shard_cost ())
        w clause_sets;
      check int_c "journal holds meta + crashed prefix" 3
        (List.length (Checkpoint.read path));
      let resumed, summary =
        run_stream
          ~options:(stream_opts ~checkpoint:path ~resume:true ~shard_cost ())
          w clause_sets
      in
      check int_c "two shards replayed" 2 summary.Confidence.resumed_shards;
      check bool_c "resume complete" true summary.Confidence.stream_complete;
      check bool_c "journal intact" true summary.Confidence.journal_ok;
      check_same_result "resumed vs cold" (fst reference) resumed;
      check int_c "journal now covers every shard"
        (summary.Confidence.shards + 1)
        (List.length (Checkpoint.read path));
      (* Resuming a COMPLETE journal recomputes nothing at all. *)
      let replayed, summary =
        run_stream
          ~options:(stream_opts ~checkpoint:path ~resume:true ~shard_cost ())
          w clause_sets
      in
      check int_c "everything replayed" summary.Confidence.shards
        summary.Confidence.resumed_shards;
      check_same_result "pure replay vs cold" (fst reference) replayed)

let test_crash_resume_under_budget () =
  clear_all ();
  with_temp_dir (fun dir ->
      let w, clause_sets = fixture () in
      let shard_cost = shard_cost_for clause_sets ~target:6 in
      (* Size the allowance off the ACTUAL fault-free spend (the compiled
         run spends far less than the a-priori worst case), so the governor
         genuinely runs dry mid-batch. *)
      let _, (free : Confidence.stats) = run_materialized w clause_sets in
      let actual =
        Array.fold_left ( + ) 0 free.Confidence.trials_used
      in
      let allowance = max 1 (actual * 3 / 10) in
      let fresh_budget () = Budget.create ~max_trials:allowance () in
      let reference =
        run_stream ~budget:(fresh_budget ())
          ~options:(stream_opts ~shard_cost ())
          w clause_sets
      in
      let path = Filename.concat dir "budget.ckpt" in
      crash_after ~budget:(fresh_budget ()) ~k:2
        ~options:(stream_opts ~checkpoint:path ~shard_cost ())
        w clause_sets;
      (* Trial-only budgets make the split schedule deterministic, and
         resumed shards charge the governor with their journaled spend — so
         the resumed run's tail sees exactly the cold run's allowance. *)
      let resumed, summary =
        run_stream ~budget:(fresh_budget ())
          ~options:(stream_opts ~checkpoint:path ~resume:true ~shard_cost ())
          w clause_sets
      in
      check int_c "budget resume replayed the prefix" 2
        summary.Confidence.resumed_shards;
      check_same_result "budget resumed vs cold" (fst reference) resumed;
      assert_sound "budget resume" w clause_sets
        (snd resumed).Confidence.intervals)

(* ------------------------------------------------------------------ *)
(* 4. Quarantine containment and self-healing resume. *)

let test_quarantine_containment () =
  clear_all ();
  with_temp_dir (fun dir ->
      let w, clause_sets = fixture () in
      let shard_cost = shard_cost_for clause_sets ~target:6 in
      let reference, ref_summary =
        run_stream ~options:(stream_opts ~shard_cost ()) w clause_sets
      in
      let nshards = ref_summary.Confidence.shards in
      check bool_c "fixture plans >= 4 shards" true (nshards >= 4);
      let retries = 1 in
      (* Each poisoned shard consumes (retries + 1) shots before it is
         quarantined, so count = 2 * (retries + 1) poisons exactly the
         first two shards and leaves every other shard untouched. *)
      FP.arm ~count:(2 * (retries + 1)) "shard.run";
      let path = Filename.concat dir "poison.ckpt" in
      let options = stream_opts ~checkpoint:path ~retries ~shard_cost () in
      let (out, stats), summary = run_stream ~options w clause_sets in
      clear_all ();
      check int_c "exactly two shards quarantined" 2
        (List.length summary.Confidence.quarantined);
      check
        Alcotest.(list int_c)
        "the first two shards" [ 0; 1 ]
        (List.map fst summary.Confidence.quarantined);
      List.iter
        (fun (_, err) ->
          match err with
          | E.Injected _ -> ()
          | e ->
              Alcotest.failf "expected typed Injected, got %s" (E.to_string e))
        summary.Confidence.quarantined;
      check bool_c "stream not complete" false
        summary.Confidence.stream_complete;
      (* Every bracket stays sound, quarantined tuples included. *)
      assert_sound "quarantine" w clause_sets stats.Confidence.intervals;
      (* Tuples outside the poisoned shards are bit-identical to the
         fault-free run; poisoned tuples spent nothing. *)
      let plan = Shard.plan ~eps ~delta ~max_cost:shard_cost clause_sets in
      let poisoned_tuples = plan.(0).Shard.count + plan.(1).Shard.count in
      let ref_out, _ = reference in
      Array.iteri
        (fun i x ->
          if i >= poisoned_tuples then
            check Alcotest.int64
              (Printf.sprintf "clean tuple %d bit-identical" i)
              (bits ref_out.(i)) (bits x)
          else
            check int_c
              (Printf.sprintf "poisoned tuple %d spent nothing" i)
              0
              stats.Confidence.trials_used.(i))
        out;
      (* Quarantined shards are NOT journaled, so a resume with the fault
         gone retries exactly them and heals to the fault-free result. *)
      let healed, summary =
        run_stream
          ~options:(stream_opts ~checkpoint:path ~resume:true ~shard_cost ())
          w clause_sets
      in
      check int_c "healed resume replays the clean shards" (nshards - 2)
        summary.Confidence.resumed_shards;
      check bool_c "healed stream complete" true
        summary.Confidence.stream_complete;
      check_same_result "healed vs fault-free" reference healed)

let test_retry_recovers () =
  clear_all ();
  let w, clause_sets = fixture () in
  let shard_cost = shard_cost_for clause_sets ~target:6 in
  let reference, _ =
    run_stream ~options:(stream_opts ~shard_cost ()) w clause_sets
  in
  (* One transient fault, one retry allowed: the shard must recover on the
     second attempt and — because every attempt runs on fresh copies of the
     tuples' RNG lanes — produce exactly the fault-free stream. *)
  FP.arm ~count:1 "shard.run";
  let streamed, summary =
    run_stream ~options:(stream_opts ~retries:1 ~shard_cost ()) w clause_sets
  in
  clear_all ();
  check int_c "nothing quarantined" 0
    (List.length summary.Confidence.quarantined);
  check bool_c "complete" true summary.Confidence.stream_complete;
  check_same_result "retried vs fault-free" reference streamed

let test_journal_abandoned () =
  clear_all ();
  with_temp_dir (fun dir ->
      let w, clause_sets = fixture () in
      let shard_cost = shard_cost_for clause_sets ~target:6 in
      let reference, _ =
        run_stream ~options:(stream_opts ~shard_cost ()) w clause_sets
      in
      (* A persistently failing journal append must degrade journal_ok and
         nothing else: the computation is unaffected. *)
      FP.arm "checkpoint.write";
      let path = Filename.concat dir "dead.ckpt" in
      let streamed, summary =
        run_stream
          ~options:(stream_opts ~checkpoint:path ~retries:1 ~shard_cost ())
          w clause_sets
      in
      clear_all ();
      check bool_c "journal reported broken" false
        summary.Confidence.journal_ok;
      check bool_c "stream still complete" true
        summary.Confidence.stream_complete;
      check_same_result "abandoned journal vs fault-free" reference streamed)

(* ------------------------------------------------------------------ *)
(* 5. Journal corruption corpus against a REAL stream journal. *)

let resume_from ~w ~clause_sets ~shard_cost ~path =
  run_stream
    ~options:(stream_opts ~checkpoint:path ~resume:true ~shard_cost ())
    w clause_sets

let reframe payload = "r " ^ Checkpoint.crc32_hex payload ^ " " ^ payload
let payload_of_line line = String.sub line 11 (String.length line - 11)

let expect_malformed name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Malformed_input" name
  | exception E.Error (E.Malformed_input { source; detail }) -> (source, detail)

let test_corrupt_corpus () =
  clear_all ();
  with_temp_dir (fun dir ->
      let w, clause_sets = fixture () in
      let shard_cost = shard_cost_for clause_sets ~target:6 in
      let path = Filename.concat dir "real.ckpt" in
      let reference, real_summary =
        run_stream
          ~options:(stream_opts ~checkpoint:path ~shard_cost ())
          w clause_sets
      in
      check bool_c "corpus journal complete" true
        real_summary.Confidence.journal_ok;
      let body = read_file path in
      let lines = String.split_on_char '\n' body in
      let meta_line = List.nth lines 1 in
      (* first shard record: header and meta are lines 0 and 1 *)
      let first_record = List.nth lines 2 in
      let payload = payload_of_line first_record in
      (* (a) Truncation anywhere: always resumes cleanly and lands on the
         cold result — truncation only ever hits the tail. *)
      List.iter
        (fun cut ->
          write_raw path (String.sub body 0 (String.length body - cut));
          let resumed, summary = resume_from ~w ~clause_sets ~shard_cost ~path in
          check bool_c
            (Printf.sprintf "truncate %d resumes complete" cut)
            true summary.Confidence.stream_complete;
          check_same_result
            (Printf.sprintf "truncate %d vs cold" cut)
            reference resumed)
        [ 1; 7; String.length body / 2 ];
      (* (b) An identical duplicate record is legitimate (a crash between
         fsync and bookkeeping can replay a shard) and resolves
         first-wins. *)
      write_raw path (body ^ first_record ^ "\n");
      let resumed, _ = resume_from ~w ~clause_sets ~shard_cost ~path in
      check_same_result "identical duplicate vs cold" reference resumed;
      (* (c) A CONFLICTING duplicate — valid frame, different numbers — is
         corruption and must fail typed. *)
      let conflicting =
        if contains ~needle:"complete=1" payload then
          replace_once ~sub:"complete=1" ~by:"complete=0" payload
        else replace_once ~sub:"complete=0" ~by:"complete=1" payload
      in
      write_raw path (body ^ reframe conflicting ^ "\n");
      let _, detail =
        expect_malformed "conflicting duplicate" (fun () ->
            resume_from ~w ~clause_sets ~shard_cost ~path)
      in
      check bool_c "conflict named" true
        (contains ~needle:"conflicting duplicate" detail);
      (* (d) A record claiming a shard outside the plan. *)
      let alien = replace_once ~sub:"shard=0 " ~by:"shard=99 " payload in
      write_raw path (body ^ reframe alien ^ "\n");
      let _, detail =
        expect_malformed "unknown shard" (fun () ->
            resume_from ~w ~clause_sets ~shard_cost ~path)
      in
      check bool_c "unknown shard named" true
        (contains ~needle:"unknown shard" detail);
      (* (e) Geometry drift: same shard index, different first tuple.  The
         journal is rebuilt as header + meta + the doctored record twice,
         so the bad record is never a droppable torn tail. *)
      let drifted = replace_once ~sub:"first=0 " ~by:"first=7 " payload in
      write_raw path
        (Checkpoint.magic ^ "\n" ^ meta_line ^ "\n" ^ reframe drifted ^ "\n"
       ^ reframe drifted ^ "\n");
      let _, detail =
        expect_malformed "geometry drift" (fun () ->
            resume_from ~w ~clause_sets ~shard_cost ~path)
      in
      check bool_c "geometry named" true (contains ~needle:"geometry" detail);
      (* (f) Fingerprint drift: same geometry, foreign data. *)
      let fp_idx =
        match find_sub ~sub:"fp=" payload with
        | Some i -> i + 3
        | None -> Alcotest.fail "payload has no fingerprint"
      in
      let real_fp = String.sub payload fp_idx 8 in
      let fake_fp = if real_fp = "deadbeef" then "deadbee0" else "deadbeef" in
      let refp =
        replace_once ~sub:("fp=" ^ real_fp) ~by:("fp=" ^ fake_fp) payload
      in
      write_raw path
        (Checkpoint.magic ^ "\n" ^ meta_line ^ "\n" ^ reframe refp ^ "\n"
       ^ reframe refp ^ "\n");
      let _, detail =
        expect_malformed "fingerprint drift" (fun () ->
            resume_from ~w ~clause_sets ~shard_cost ~path)
      in
      check bool_c "fingerprint named" true
        (contains ~needle:"fingerprint" detail))

let test_meta_mismatch () =
  clear_all ();
  with_temp_dir (fun dir ->
      let w, clause_sets = fixture () in
      let shard_cost = shard_cost_for clause_sets ~target:6 in
      let path = Filename.concat dir "meta.ckpt" in
      let _ =
        run_stream
          ~options:(stream_opts ~checkpoint:path ~shard_cost ())
          w clause_sets
      in
      (* Same journal, different ε: the shard plan and every stored number
         are meaningless for the new run — typed failure, not a resume. *)
      let rng = Rng.create ~seed:99 in
      match
        Confidence.run_stream_with_stats
          ~options:(stream_opts ~checkpoint:path ~resume:true ~shard_cost ())
          rng w clause_sets ~eps:(eps /. 2.) ~delta
      with
      | _ -> Alcotest.fail "meta mismatch must raise"
      | exception E.Error (E.Malformed_input { source; detail }) ->
          check Alcotest.string "names the journal" path source;
          check bool_c "names the parameters" true
            (contains ~needle:"parameters" detail))

(* ------------------------------------------------------------------ *)
(* 6. Budget-aware scheduling: the tail degrades evenly. *)

let hard_fixture () =
  let rng = Rng.create ~seed:777 in
  let w = Wtable.create () in
  let sets =
    (* Three hogs and seven small tuples: the materialized engine farms
       work longest-first, so a binding governor is drained by the hogs
       before the small tuples ever run. *)
    List.init 10 (fun i ->
        if i < 3 then Gen.random_dnf rng w ~vars:10 ~clauses:40 ~clause_len:3
        else Gen.random_dnf rng w ~vars:10 ~clauses:4 ~clause_len:3)
  in
  (w, Array.of_list sets)

let test_budget_split_spreads_tail () =
  clear_all ();
  let w, clause_sets = hard_fixture () in
  let n = Array.length clause_sets in
  (* compile_fuel:0 recovers the pure FPRAS: the compiler resolves these
     small formulas exactly otherwise, and the test needs sampling work. *)
  let _, (free : Confidence.stats) =
    run_materialized ~compile_fuel:0 w clause_sets
  in
  let needs_sampling = Array.map (fun t -> t > 0) free.Confidence.trials_used in
  let sampled_count =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 needs_sampling
  in
  check bool_c "fixture has sampling work" true (sampled_count >= 5);
  let actual = Array.fold_left ( + ) 0 free.Confidence.trials_used in
  let allowance = max 1 (actual / 10) in
  (* FCFS: the materialized run drains the governor longest-first and
     starves whole tuples outright. *)
  let _, (fcfs : Confidence.stats) =
    run_materialized ~compile_fuel:0
      ~budget:(Budget.create ~max_trials:allowance ())
      w clause_sets
  in
  let starved =
    let c = ref 0 in
    Array.iteri
      (fun i t -> if needs_sampling.(i) && t = 0 then incr c)
      fcfs.Confidence.trials_used;
    !c
  in
  check bool_c "FCFS starves sampled tuples" true (starved >= 1);
  (* Proportional split, one shard per tuple: every sampling tuple gets its
     share of the remaining allowance and makes progress. *)
  let (_, (stats : Confidence.stats)), summary =
    run_stream ~compile_fuel:0
      ~budget:(Budget.create ~max_trials:allowance ())
      ~options:(stream_opts ~shard_cost:1 ())
      w clause_sets
  in
  check int_c "one shard per tuple" n summary.Confidence.shards;
  Array.iteri
    (fun i t ->
      if needs_sampling.(i) then
        check bool_c (Printf.sprintf "tuple %d made progress" i) true (t > 0))
    stats.Confidence.trials_used;
  (* Both degraded, both sound. *)
  check bool_c "stream degraded" false summary.Confidence.stream_complete;
  assert_sound "budget split" w clause_sets stats.Confidence.intervals;
  (* The streamed spend respects the governor: at most the per-shard ceil
     rounding plus in-flight overshoot on top of the allowance. *)
  check bool_c "stream within allowance" true
    (Array.fold_left ( + ) 0 stats.Confidence.trials_used
    <= allowance + (9 * n))

(* Exact apportionment: adversarial cost vectors where naive proportional
   rounding loses or invents trials. *)
let alloc_exact =
  QCheck.Test.make ~name:"allocate sums exactly to the allowance" ~count:500
    QCheck.(pair (int_range 0 100_000) (int_range 1 2_000_000))
    (fun (gen, trials) ->
      let rng = Rng.create ~seed:(31_000 + gen) in
      let n = 1 + Rng.int rng 40 in
      let costs =
        Array.init n (fun _ ->
            match Rng.int rng 5 with
            | 0 -> 0
            | 1 -> 1
            | 2 -> Rng.int rng 7
            | 3 -> 1_000_000 + Rng.int rng 1_000_000
            | _ -> Rng.int rng 100_000)
      in
      let shares = Budget.allocate ~trials ~costs in
      Array.length shares = n
      && Array.fold_left ( + ) 0 shares = trials
      && Array.for_all (fun s -> s >= 0) shares
      && (trials < n || Array.for_all (fun s -> s >= 1) shares))

let test_allocate_adversarial () =
  clear_all ();
  let sums trials costs =
    Array.fold_left ( + ) 0 (Budget.allocate ~trials ~costs)
  in
  (* Thirds: floors alone would hand out 0. *)
  check int_c "1 over three equal costs" 1 (sums 1 [| 7; 7; 7 |]);
  (* One giant cost next to dust: dust still gets its minimum. *)
  let shares = Budget.allocate ~trials:10 ~costs:[| 1_000_000; 1; 1 |] in
  check int_c "dominant + dust sums" 10 (Array.fold_left ( + ) 0 shares);
  check bool_c "dust not starved" true (shares.(1) >= 1 && shares.(2) >= 1);
  (* All-zero costs spread evenly. *)
  check (Alcotest.array int_c) "zeros spread" [| 4; 3; 3 |]
    (Budget.allocate ~trials:10 ~costs:[| 0; 0; 0 |]);
  check (Alcotest.array int_c) "empty costs" [||]
    (Budget.allocate ~trials:5 ~costs:[||]);
  (* Ties break to the lowest index, deterministically. *)
  check (Alcotest.array int_c) "tie to low index" [| 1; 1; 0; 0 |]
    (Budget.allocate ~trials:2 ~costs:[| 5; 5; 5; 5 |]);
  Alcotest.check_raises "negative trials rejected"
    (Invalid_argument "Budget.allocate: trials must be >= 0")
    (fun () -> ignore (Budget.allocate ~trials:(-1) ~costs:[| 1 |]))

(* Walking a full sequential schedule through [split] hands out exactly the
   parent's remaining allowance, whatever the cost vector. *)
let split_walk_exact =
  QCheck.Test.make ~name:"sequential split walk conserves trials" ~count:300
    QCheck.(pair (int_range 0 100_000) (int_range 1 500_000))
    (fun (gen, allowance) ->
      let rng = Rng.create ~seed:(57_000 + gen) in
      let n = 1 + Rng.int rng 25 in
      let costs =
        Array.init n (fun _ ->
            match Rng.int rng 4 with
            | 0 -> 1
            | 1 -> 1_000_000 + Rng.int rng 500_000
            | _ -> 1 + Rng.int rng 50_000)
      in
      let parent = Budget.create ~max_trials:allowance () in
      let total = Array.fold_left ( + ) 0 costs in
      let live = n <= allowance in
      let remaining = ref total and handed = ref 0 in
      Array.iter
        (fun cost ->
          let child =
            Budget.split parent ~cost ~remaining_cost:(max 1 !remaining)
          in
          let share = Budget.remaining_trials child in
          handed := !handed + share;
          (* charge the parent with the full share, as a scheduler that
             spends every granted trial would *)
          Budget.spend parent share;
          remaining := !remaining - cost)
        costs;
      (* Exact when no min-1 top-up fires; otherwise each live share may
         oversubscribe by at most one. *)
      !handed >= min allowance (if live then allowance else 0)
      && !handed <= allowance + n)

let test_split_adversarial () =
  clear_all ();
  (* The closing share takes the whole remainder even when rounding down
     would drop trials. *)
  let parent = Budget.create ~max_trials:10 () in
  let c1 = Budget.split parent ~cost:1 ~remaining_cost:3 in
  check int_c "first share rounds" 3 (Budget.remaining_trials c1);
  Budget.spend parent (Budget.remaining_trials c1);
  let c2 = Budget.split parent ~cost:2 ~remaining_cost:2 in
  check int_c "closing share takes remainder" 7 (Budget.remaining_trials c2);
  (* A tiny live share still gets one trial. *)
  let parent = Budget.create ~max_trials:5 () in
  let tiny = Budget.split parent ~cost:1 ~remaining_cost:1_000_000 in
  check int_c "live share floors at one" 1 (Budget.remaining_trials tiny);
  (* An exhausted parent yields a cancelled child. *)
  let parent = Budget.create ~max_trials:2 () in
  Budget.spend parent 2;
  let dead = Budget.split parent ~cost:1 ~remaining_cost:2 in
  check bool_c "dead parent, dead child" true (Budget.exhausted dead);
  Alcotest.check_raises "remaining_cost must be positive"
    (Invalid_argument "Budget.split: remaining_cost must be >= 1")
    (fun () ->
      ignore (Budget.split (Budget.create ()) ~cost:1 ~remaining_cost:0))

(* ------------------------------------------------------------------ *)
(* 7. Shard planning and record round-trips. *)

let test_shard_plan () =
  clear_all ();
  let _, clause_sets = fixture () in
  let costs = Array.map (Shard.tuple_cost ~eps ~delta) clause_sets in
  let max_cost = shard_cost_for clause_sets ~target:6 in
  let plan = Shard.plan ~eps ~delta ~max_cost clause_sets in
  (* Covers every tuple exactly once, contiguously and in order. *)
  let next = ref 0 in
  Array.iteri
    (fun i (sh : Shard.t) ->
      check int_c (Printf.sprintf "shard %d index" i) i sh.Shard.index;
      check int_c (Printf.sprintf "shard %d first" i) !next sh.Shard.first;
      check bool_c (Printf.sprintf "shard %d nonempty" i) true
        (sh.Shard.count >= 1);
      let cost = ref 0 in
      for j = sh.Shard.first to sh.Shard.first + sh.Shard.count - 1 do
        cost := !cost + costs.(j)
      done;
      check int_c (Printf.sprintf "shard %d cost" i) !cost sh.Shard.cost;
      check bool_c
        (Printf.sprintf "shard %d under ceiling (or oversize singleton)" i)
        true
        (sh.Shard.cost <= max_cost || sh.Shard.count = 1);
      next := sh.Shard.first + sh.Shard.count)
    plan;
  check int_c "plan covers the batch" (Array.length clause_sets) !next;
  check int_c "empty batch plans empty" 0
    (Array.length (Shard.plan ~eps ~delta ~max_cost [||]));
  Alcotest.check_raises "max_cost must be positive"
    (Invalid_argument "Shard.plan: max_cost must be >= 1") (fun () ->
      ignore (Shard.plan ~eps ~delta ~max_cost:0 clause_sets))

let outcome_of_seed seed =
  let rng = Rng.create ~seed in
  let count = 1 + Rng.int rng 5 in
  let fl () =
    match Rng.int rng 6 with
    | 0 -> 0.
    | 1 -> 1.
    | 2 -> Float.infinity
    | 3 -> Rng.float rng 1. /. 3.
    | 4 -> ldexp (Rng.float rng 1.) (-Rng.int rng 1000)
    | _ -> Rng.float rng 1.
  in
  {
    Shard.shard =
      {
        Shard.index = Rng.int rng 100;
        first = Rng.int rng 1000;
        count;
        cost = 1 + Rng.int rng 100_000;
      };
    fp = Checkpoint.crc32_hex (string_of_int seed);
    estimates = Array.init count (fun _ -> fl ());
    intervals = Array.init count (fun _ -> (fl (), fl ()));
    trials = Array.init count (fun _ -> Rng.int rng 1_000_000);
    achieved = Array.init count (fun _ -> fl ());
    masses = Array.init count (fun _ -> fl ());
    complete = Rng.int rng 2 = 0;
    resumed = false;
    quarantined = None;
  }

let outcome_roundtrip =
  QCheck.Test.make ~name:"journal record round-trips bit-exactly" ~count:200
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let o = outcome_of_seed seed in
      let payload = Shard.to_payload o in
      let o' = Shard.of_payload ~source:"qcheck" ~record:1 payload in
      let fa a b =
        Array.length a = Array.length b
        && Array.for_all2 (fun x y -> bits x = bits y) a b
      in
      o'.Shard.shard = o.Shard.shard
      && String.equal o'.Shard.fp o.Shard.fp
      && fa o'.Shard.estimates o.Shard.estimates
      && fa o'.Shard.achieved o.Shard.achieved
      && fa o'.Shard.masses o.Shard.masses
      && o'.Shard.trials = o.Shard.trials
      && Array.for_all2
           (fun (a, b) (c, d) -> bits a = bits c && bits b = bits d)
           o'.Shard.intervals o.Shard.intervals
      && o'.Shard.complete = o.Shard.complete
      && o'.Shard.resumed (* parsed records are marked replayed *)
      && o'.Shard.quarantined = None)

let test_quarantined_not_serializable () =
  clear_all ();
  let o = outcome_of_seed 1 in
  let o = { o with Shard.quarantined = Some (E.Injected "shard.run") } in
  Alcotest.check_raises "quarantined outcomes must not be journaled"
    (Invalid_argument "Shard.to_payload: quarantined outcomes are never journaled")
    (fun () ->
      ignore (Shard.to_payload o))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "checkpoint"
    [
      ( "smoke",
        [
          Alcotest.test_case "env-armed stream stays sound" `Quick
            test_env_smoke;
        ] );
      ( "journal",
        [
          Alcotest.test_case "framing round-trip" `Quick test_journal_framing;
          Alcotest.test_case "torn tail tolerated" `Quick test_torn_tail;
          Alcotest.test_case "mid-file corruption typed" `Quick
            test_mid_corruption;
        ] );
      ( "stream",
        [
          Alcotest.test_case "bit-identical to materialized run" `Quick
            test_stream_matches_run;
          Alcotest.test_case "shard plan geometry" `Quick test_shard_plan;
        ] );
      ( "resume",
        [
          Alcotest.test_case "crash and resume bit-identical" `Quick
            test_crash_resume;
          Alcotest.test_case "crash and resume under trial budget" `Quick
            test_crash_resume_under_budget;
          Alcotest.test_case "corrupt journal corpus" `Quick
            test_corrupt_corpus;
          Alcotest.test_case "parameter mismatch fails typed" `Quick
            test_meta_mismatch;
        ] );
      ( "containment",
        [
          Alcotest.test_case "poison shards quarantined exactly" `Quick
            test_quarantine_containment;
          Alcotest.test_case "transient fault retried to recovery" `Quick
            test_retry_recovers;
          Alcotest.test_case "dead journal abandoned, results unaffected"
            `Quick test_journal_abandoned;
        ] );
      ( "records",
        [
          qcheck outcome_roundtrip;
          Alcotest.test_case "quarantined records rejected" `Quick
            test_quarantined_not_serializable;
        ] );
      ( "budget",
        [
          Alcotest.test_case "proportional split feeds the tail" `Quick
            test_budget_split_spreads_tail;
          qcheck alloc_exact;
          Alcotest.test_case "allocate: adversarial cost vectors" `Quick
            test_allocate_adversarial;
          qcheck split_walk_exact;
          Alcotest.test_case "split: rounding edge cases" `Quick
            test_split_adversarial;
        ] );
    ]
