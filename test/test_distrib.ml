(* Distributed shard execution: protocol framing, coordinator/worker
   bit-identity across worker counts, crash reassignment, cross-worker-count
   resume, quarantine, and static budget slices.

   Like test_checkpoint, the suite passes under an environment-armed fault
   (the CI matrix runs every suite with PQDB_FAULTPOINTS=<site>): the smoke
   test runs first against whatever the environment armed — worker fleets
   may die wholesale there, and the coordinator must still emit every shard
   soundly via its in-process fallback.  Later tests clear the registry.

   Fork safety: this process must never spawn pool domains before forking
   test workers (OCaml 5 forbids fork with live domains), so the pool is
   pinned to inline execution before anything else runs. *)

let () = Unix.putenv "PQDB_POOL_WORKERS" "1"

open Pqdb_numeric
open Pqdb_urel
open Pqdb_montecarlo
open Pqdb_distrib
module Q = Rational
module FP = Pqdb_runtime.Faultpoint
module E = Pqdb_runtime.Pqdb_error
module Gen = Pqdb_workload.Gen

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let clear_all () = List.iter FP.disarm (FP.armed ())

let temp_counter = ref 0

let temp_path () =
  incr temp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pqdb_distrib_%d_%d" (Unix.getpid ()) !temp_counter)

let with_temp f =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let write_lines path lines =
  let oc = open_out_bin path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Fixture: mixed batch planning into several shards.                  *)

let eps = 0.35
let delta = 0.2
let seed = 9091

let fixture () =
  let rng = Rng.create ~seed:4242 in
  let w = Wtable.create () in
  let sets =
    List.init 18 (fun i ->
        match i mod 6 with
        | 0 -> Gen.random_dnf rng w ~vars:8 ~clauses:5 ~clause_len:3
        | 1 ->
            let num = 1 + Rng.int rng 9 in
            let v =
              Wtable.add_var w [ Q.of_ints (10 - num) 10; Q.of_ints num 10 ]
            in
            [ Assignment.singleton v 1 ]
        | 2 -> Gen.random_dnf rng w ~vars:6 ~clauses:4 ~clause_len:2
        | 3 -> [ Assignment.empty ]
        | 4 -> []
        | _ -> Gen.random_dnf rng w ~vars:10 ~clauses:6 ~clause_len:3)
  in
  (w, Array.of_list sets)

let shard_cost_for ~eps ~delta clause_sets ~target =
  let total =
    Array.fold_left
      (fun acc cs -> acc + Shard.tuple_cost ~eps ~delta cs)
      0 clause_sets
  in
  max 1 (total / target)

let options ?checkpoint ?(resume = false) ?(retries = 2) shard_cost =
  {
    Confidence.shard_cost;
    retries;
    checkpoint;
    resume;
  }

let bits = Int64.bits_of_float

(* Materialize an emit stream into per-tuple arrays plus the emission
   order, so runs can be compared bitwise. *)
let collector n =
  let est = Array.make n nan in
  let lo = Array.make n nan in
  let hi = Array.make n nan in
  let tr = Array.make n (-1) in
  let order = ref [] in
  let emit (o : Shard.outcome) =
    order := o.Shard.shard.Shard.index :: !order;
    Array.iteri
      (fun j e ->
        let i = o.Shard.shard.Shard.first + j in
        est.(i) <- e;
        tr.(i) <- o.Shard.trials.(j);
        let l, h = o.Shard.intervals.(j) in
        lo.(i) <- l;
        hi.(i) <- h)
      o.Shard.estimates
  in
  (emit, est, lo, hi, tr, order)

let check_same name (est, lo, hi, tr) (est', lo', hi', tr') =
  let fcmp what a b =
    Array.iteri
      (fun i x ->
        check Alcotest.int64
          (Printf.sprintf "%s: %s slot %d" name what i)
          (bits x) (bits b.(i)))
      a
  in
  fcmp "estimate" est est';
  fcmp "lo" lo lo';
  fcmp "hi" hi hi';
  check (Alcotest.array int_c) (name ^ ": trials") tr tr'

let exact_probs w clause_sets =
  Array.map
    (fun clauses -> Q.to_float (Pqdb_urel.Confidence.exact w clauses))
    clause_sets

let assert_sound name w clause_sets lo hi =
  Array.iteri
    (fun i p ->
      check bool_c
        (Printf.sprintf "%s: tuple %d exact %.4f inside [%g, %g]" name i p
           lo.(i) hi.(i))
        true
        (lo.(i) -. 1e-9 <= p && p <= hi.(i) +. 1e-9))
    (exact_probs w clause_sets)

let reference ?budget ~opts w sets =
  let n = Array.length sets in
  let emit, est, lo, hi, tr, order = collector n in
  let summary =
    Confidence.run_stream ?budget ~options:opts (Rng.create ~seed) w sets
      ~eps ~delta ~emit
  in
  ((est, lo, hi, tr), List.rev !order, summary)

(* ------------------------------------------------------------------ *)
(* Transports.                                                         *)

let thread_spawn ~shard_cost w sets _id =
  (* Short frame deadline so a torn coordinator frame (env-armed matrix)
     kills the worker in ~2s instead of the 30s default. *)
  Coordinator.thread_transport (fun ~input ~output ->
      Worker.serve ~shard_cost ~heartbeat_s:0.05 ~frame_timeout_s:2.0
        (Rng.create ~seed) w sets ~eps ~delta ~input ~output)

(* A real child process without exec: fork, run the worker loop, _exit.
   Requires the inline pool (set at module load) so no domains are live. *)
let fork_spawn ?(worker_seed = seed) ~shard_cost w sets pids _id =
  let to_w_r, to_w_w = Unix.pipe () in
  let from_w_r, from_w_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close to_w_w;
      Unix.close from_w_r;
      let input = Unix.in_channel_of_descr to_w_r in
      let output = Unix.out_channel_of_descr from_w_w in
      (try
         Worker.serve ~shard_cost ~heartbeat_s:0.05
           (Rng.create ~seed:worker_seed) w sets ~eps ~delta ~input ~output
       with _ -> ());
      (try flush output with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close to_w_r;
      Unix.close from_w_w;
      let input = Unix.in_channel_of_descr from_w_r in
      let output = Unix.out_channel_of_descr to_w_w in
      pids := pid :: !pids;
      Coordinator.channel_transport ~pid
        ~close:(fun () ->
          (try close_out output with _ -> ());
          try close_in input with _ -> ())
        input output

(* ------------------------------------------------------------------ *)
(* Smoke: whatever the environment armed, every shard is emitted with   *)
(* sound brackets — fleets may die, the fallback must not.              *)

let test_env_smoke () =
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:5 in
  let emit, _est, lo, hi, _tr, order = collector n in
  let summary =
    Coordinator.run ~options:(options shard_cost) ~workers:2
      ~spawn:(fun _ -> thread_spawn ~shard_cost w sets 0)
      (Rng.create ~seed) w sets ~eps ~delta ~emit
  in
  check int_c "every shard emitted" summary.Coordinator.stream.Confidence.shards
    (List.length !order);
  check bool_c "emitted in plan order" true
    (List.rev !order = List.init (List.length !order) Fun.id);
  assert_sound "env smoke" w sets lo hi

(* ------------------------------------------------------------------ *)
(* Protocol framing.                                                   *)

let msg_of_seed seed =
  let rng = Rng.create ~seed:(7_000_000 + seed) in
  let str n =
    String.init (Rng.int rng n) (fun _ ->
        Char.chr (32 + Rng.int rng 95) (* printable ASCII incl. space *))
  in
  match Rng.int rng 9 with
  | 0 ->
      (* Sources exercise the percent-encoding: paths with spaces, percents,
         dashes and empty relation names must survive the space-separated
         hello payload. *)
      let source =
        match Rng.int rng 4 with
        | 0 -> None
        | 1 -> Some ("/tmp/db dir/my%db.udbb", str 10)
        | 2 -> Some ("-", "")
        | _ -> Some (str 30, str 10)
      in
      Protocol.Hello
        { meta = str 60; probe = Printf.sprintf "%h" (Rng.float rng 1.); source }
  | 1 ->
      Protocol.Order
        {
          index = Rng.int rng 1000;
          epoch = Rng.int rng 10_000;
          fp = Printf.sprintf "%08x" (Rng.int rng 0xFFFFFF);
          trials = (if Rng.bool rng then Some (Rng.int rng 100_000) else None);
          deadline_s = (if Rng.bool rng then Some (Rng.float rng 10.) else None);
        }
  | 2 ->
      Protocol.Outcome
        { index = Rng.int rng 1000; epoch = Rng.int rng 10_000; payload = str 200 }
  | 3 ->
      Protocol.Failed
        { index = Rng.int rng 1000; epoch = Rng.int rng 10_000; detail = str 80 }
  | 4 -> Protocol.Heartbeat
  | 5 ->
      (* Specs carry arbitrary printable text (spaces, percents, dashes). *)
      Protocol.Query { id = Rng.int rng 1000; spec = str (1 + Rng.int rng 60) }
  | 6 ->
      (* Bodies are multi-line batch output; embed newlines explicitly since
         [str] only draws printable ASCII. *)
      let body =
        match Rng.int rng 3 with
        | 0 -> str (1 + Rng.int rng 200)
        | 1 -> str 40 ^ "\n" ^ str 40 ^ "\n"
        | _ -> "-"
      in
      Protocol.Reply { id = Rng.int rng 1000; ok = Rng.bool rng; body }
  | 7 ->
      (* Lease TTLs travel as %h hex floats: bit-exact round-trip. *)
      Protocol.Lease { ttl_s = 0.001 +. Rng.float rng 100. }
  | _ -> Protocol.Shutdown

let decode_all bytes =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match Protocol.read ic with
            | Some m -> go (m :: acc)
            | None -> List.rev acc
          in
          go []))

let protocol_roundtrip =
  QCheck.Test.make ~name:"frames round-trip bit-exactly" ~count:300
    (QCheck.int_range 0 1_000_000) (fun seed ->
      clear_all ();
      let msgs = List.init (1 + (seed mod 4)) (fun k -> msg_of_seed (seed + k)) in
      let bytes = String.concat "" (List.map Protocol.encode msgs) in
      decode_all bytes = msgs)

let test_protocol_corruption () =
  clear_all ();
  let frame =
    Protocol.encode
      (Protocol.Outcome { index = 3; epoch = 1; payload = "0 0 3 12 abc" })
  in
  let typed f =
    match f () with
    | _ -> Alcotest.fail "corrupt frame decoded"
    | exception E.Error (E.Malformed_input _) -> ()
  in
  (* clean EOF at a boundary *)
  check bool_c "clean EOF" true (decode_all "" = []);
  check int_c "whole frame" 1 (List.length (decode_all frame));
  (* torn header *)
  typed (fun () -> decode_all (String.sub frame 0 7));
  (* torn payload *)
  typed (fun () -> decode_all (String.sub frame 0 (String.length frame - 4)));
  (* missing terminator *)
  typed (fun () -> decode_all (String.sub frame 0 (String.length frame - 1)));
  (* flipped payload byte: CRC catches it *)
  let broken = Bytes.of_string frame in
  Bytes.set broken 22 (if Bytes.get broken 22 = 'x' then 'y' else 'x');
  typed (fun () -> decode_all (Bytes.to_string broken));
  (* unknown tag, valid CRC *)
  typed (fun () -> decode_all (Protocol.encode Protocol.Heartbeat ^ "f 00000003 " ^ Pqdb_runtime.Checkpoint.crc32_hex "zzz" ^ " zzz\n"))

(* The percent-encoding corners: free text that collides with the payload
   syntax itself — bare '%', literal "%25", the "-" absent-field marker,
   embedded newlines, empty values — must survive Query.spec and Reply.body
   byte-exactly. *)
let test_pct_encoding_edges () =
  clear_all ();
  let corpus =
    [ "%"; "%%"; "%25"; "%00"; "-"; ""; "a b"; "a\nb"; "\n"; " ";
      "100% done\n"; "%2"; "% -"; "conf events eps=0.1" ]
  in
  List.iter
    (fun s ->
      let q = Protocol.Query { id = 3; spec = s } in
      let r = Protocol.Reply { id = 4; ok = false; body = s } in
      check bool_c
        (Printf.sprintf "query spec %S round-trips" s)
        true
        (decode_all (Protocol.encode q) = [ q ]);
      check bool_c
        (Printf.sprintf "reply body %S round-trips" s)
        true
        (decode_all (Protocol.encode r) = [ r ]))
    corpus;
  (* the hello source fields share the encoder *)
  let h =
    Protocol.Hello
      { meta = "m"; probe = "0x1p-1"; source = Some ("/tmp/a b/c%d.udbb", "-") }
  in
  check bool_c "hello source round-trips" true
    (decode_all (Protocol.encode h) = [ h ])

(* Each behavioral send mode, observed on the wire through a real pipe:
   torn leaves a typed-malformed half frame, delay leaves a whole (late)
   frame, stall blocks until the registry releases it.  The reader side of
   each armed shot is what the chaos soak relies on. *)
let test_behavioral_send_modes () =
  clear_all ();
  let msg = Protocol.Reply { id = 7; ok = true; body = "100% done\n" } in
  let with_pipe f =
    let r, w = Unix.pipe () in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close r with _ -> ());
        try Unix.close w with _ -> ())
      (fun () -> f r w)
  in
  (* torn: the writer dies Injected, the reader gets typed Malformed *)
  with_pipe (fun r w ->
      FP.arm ~count:1 ~mode:FP.Torn "distrib.send";
      (match Protocol.write_fd w msg with
      | () -> Alcotest.fail "torn write returned"
      | exception E.Error (E.Injected _) -> ());
      Unix.close w;
      match Protocol.read_fd r with
      | _ -> Alcotest.fail "torn frame decoded"
      | exception E.Error (E.Malformed_input _) -> ());
  clear_all ();
  (* delay: the frame arrives whole, just late *)
  with_pipe (fun r w ->
      FP.arm ~count:1 ~mode:(FP.Delay 0.02) "distrib.send";
      let t0 = Unix.gettimeofday () in
      Protocol.write_fd w msg;
      check bool_c "delay applied" true (Unix.gettimeofday () -. t0 >= 0.015);
      check bool_c "delayed frame decodes" true
        (Protocol.read_fd ~timeout_s:1.0 r = Some msg));
  clear_all ();
  (* stall: the write blocks until a disarm releases it, then completes *)
  with_pipe (fun r w ->
      FP.arm ~count:1 ~mode:FP.Stall "distrib.send";
      let releaser =
        Thread.create
          (fun () ->
            Unix.sleepf 0.05;
            clear_all ())
          ()
      in
      let t0 = Unix.gettimeofday () in
      Protocol.write_fd w msg;
      check bool_c "stall held the write" true
        (Unix.gettimeofday () -. t0 >= 0.04);
      check bool_c "released frame decodes" true
        (Protocol.read_fd ~timeout_s:1.0 r = Some msg);
      Thread.join releaser)

(* ------------------------------------------------------------------ *)
(* Bit-identity across worker counts (real forked processes).          *)

let test_identity_across_worker_counts () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:6 in
  let opts = options shard_cost in
  let ref_arrays, ref_order, ref_summary = reference ~opts w sets in
  check bool_c "reference plans several shards" true
    (ref_summary.Confidence.shards >= 4);
  List.iter
    (fun workers ->
      let pids = ref [] in
      let emit, est, lo, hi, tr, order = collector n in
      let summary =
        Coordinator.run ~options:opts ~workers
          ~spawn:(fork_spawn ~shard_cost w sets pids)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      let name = Printf.sprintf "%d workers" workers in
      check int_c (name ^ ": spawned") workers
        summary.Coordinator.workers_spawned;
      check int_c (name ^ ": none lost") 0 summary.Coordinator.workers_lost;
      check bool_c (name ^ ": same emission order") true
        (List.rev !order = ref_order);
      check bool_c (name ^ ": complete") true
        summary.Coordinator.stream.Confidence.stream_complete;
      check_same name (est, lo, hi, tr) ref_arrays)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Worker death mid-run: reassignment, still bit-identical.            *)

let test_kill_worker_mid_run () =
  clear_all ();
  (* Heavier work per shard so the victim is mid-shard when killed. *)
  let eps = 0.05 in
  let rng = Rng.create ~seed:555 in
  let w = Wtable.create () in
  let sets =
    Array.init 24 (fun _ -> Gen.random_dnf rng w ~vars:10 ~clauses:6 ~clause_len:3)
  in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:8 in
  let opts = options shard_cost in
  let emit_ref, est, lo, hi, tr, _ = collector n in
  let _ =
    Confidence.run_stream ~options:opts (Rng.create ~seed) w sets ~eps ~delta
      ~emit:emit_ref
  in
  let pids = ref [] in
  let killed = ref false in
  let emit2, est', lo', hi', tr', _ = collector n in
  let summary =
    Coordinator.run ~options:opts ~workers:2
      ~spawn:(fun id ->
        let tr =
          let to_w_r, to_w_w = Unix.pipe () in
          let from_w_r, from_w_w = Unix.pipe () in
          match Unix.fork () with
          | 0 ->
              Unix.close to_w_w;
              Unix.close from_w_r;
              let input = Unix.in_channel_of_descr to_w_r in
              let output = Unix.out_channel_of_descr from_w_w in
              (try
                 Worker.serve ~shard_cost ~heartbeat_s:0.05
                   (Rng.create ~seed) w sets ~eps ~delta ~input ~output
               with _ -> ());
              (try flush output with _ -> ());
              Unix._exit 0
          | pid ->
              Unix.close to_w_r;
              Unix.close from_w_w;
              pids := pid :: !pids;
              Coordinator.channel_transport ~pid
                ~close:(fun () -> ())
                (Unix.in_channel_of_descr from_w_r)
                (Unix.out_channel_of_descr to_w_w)
        in
        ignore id;
        tr)
      (Rng.create ~seed) w sets ~eps ~delta
      ~emit:(fun o ->
        (* First emission: both workers are busy on later shards — SIGKILL
           one mid-shard and let the coordinator reassign. *)
        if not !killed then begin
          killed := true;
          Unix.kill (List.hd !pids) Sys.sigkill
        end;
        emit2 o)
  in
  check int_c "one worker lost" 1 summary.Coordinator.workers_lost;
  check bool_c "its shard was reassigned" true
    (summary.Coordinator.reassigned >= 1);
  check bool_c "run complete" true
    summary.Coordinator.stream.Confidence.stream_complete;
  check_same "after kill" (est', lo', hi', tr') (est, lo, hi, tr)

(* ------------------------------------------------------------------ *)
(* Resume across worker counts, both directions.                       *)

let drop_last_record path =
  match List.rev (read_lines path) with
  | last :: rest when String.length last > 0 ->
      write_lines path (List.rev rest);
      last
  | _ -> Alcotest.fail "journal unexpectedly empty"

let test_resume_across_worker_counts () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:6 in
  let ref_arrays, _, _ = reference ~opts:(options shard_cost) w sets in
  (* distributed writes, sequential resumes *)
  with_temp (fun path ->
      let emit, _, _, _, _, _ = collector n in
      let s1 =
        Coordinator.run
          ~options:(options ~checkpoint:path shard_cost)
          ~workers:2
          ~spawn:(fun _ -> thread_spawn ~shard_cost w sets 0)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check bool_c "clean completion compacts" true
        (s1.Coordinator.compacted <> None);
      ignore (drop_last_record path);
      let emit, est, lo, hi, tr, _ = collector n in
      let s2 =
        Confidence.run_stream
          ~options:(options ~checkpoint:path ~resume:true shard_cost)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check bool_c "stream resumed most shards" true
        (s2.Confidence.resumed_shards >= 1);
      check_same "distrib journal -> stream resume" (est, lo, hi, tr)
        ref_arrays);
  (* sequential writes, distributed resumes *)
  with_temp (fun path ->
      let emit, _, _, _, _, _ = collector n in
      let _ =
        Confidence.run_stream
          ~options:(options ~checkpoint:path shard_cost)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      ignore (drop_last_record path);
      let emit, est, lo, hi, tr, _ = collector n in
      let s2 =
        Coordinator.run
          ~options:(options ~checkpoint:path ~resume:true shard_cost)
          ~workers:2
          ~spawn:(fun _ -> thread_spawn ~shard_cost w sets 0)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check bool_c "coordinator resumed most shards" true
        (s2.Coordinator.stream.Confidence.resumed_shards >= 1);
      check_same "stream journal -> distrib resume" (est, lo, hi, tr)
        ref_arrays)

(* ------------------------------------------------------------------ *)
(* Quarantine and self-healing.                                        *)

let test_quarantine_and_self_heal () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:5 in
  with_temp (fun path ->
      FP.arm "shard.run";
      let emit, _, lo, hi, _, order = collector n in
      let summary =
        Fun.protect ~finally:clear_all (fun () ->
            Coordinator.run
              ~options:(options ~checkpoint:path ~retries:1 shard_cost)
              ~workers:1
              ~spawn:(fun _ -> thread_spawn ~shard_cost w sets 0)
              (Rng.create ~seed) w sets ~eps ~delta ~emit)
      in
      let st = summary.Coordinator.stream in
      check int_c "every shard quarantined" st.Confidence.shards
        (List.length st.Confidence.quarantined);
      check int_c "every shard still emitted" st.Confidence.shards
        (List.length !order);
      check bool_c "incomplete" false st.Confidence.stream_complete;
      check bool_c "no auto-compaction on a dirty run" true
        (summary.Coordinator.compacted = None);
      assert_sound "quarantined brackets" w sets lo hi;
      (* Quarantined shards were never journaled: a resume with the fault
         gone recomputes them all and lands on the clean run's bits. *)
      let ref_arrays, _, _ = reference ~opts:(options shard_cost) w sets in
      let emit, est, lo, hi, tr, _ = collector n in
      let healed =
        Coordinator.run
          ~options:(options ~checkpoint:path ~resume:true shard_cost)
          ~workers:2
          ~spawn:(fun _ -> thread_spawn ~shard_cost w sets 0)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check int_c "nothing to resume" 0
        healed.Coordinator.stream.Confidence.resumed_shards;
      check bool_c "healed run complete" true
        healed.Coordinator.stream.Confidence.stream_complete;
      check_same "self-healed" (est, lo, hi, tr) ref_arrays)

(* A worker whose seed drifted is refused at handshake; the run falls back
   in-process and still produces the reference bits. *)
let test_drifted_worker_refused () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:5 in
  let opts = options shard_cost in
  let ref_arrays, _, _ = reference ~opts w sets in
  let emit, est, lo, hi, tr, _ = collector n in
  let summary =
    Coordinator.run ~options:opts ~workers:1
      ~spawn:(fun _ ->
        Coordinator.thread_transport (fun ~input ~output ->
            Worker.serve ~shard_cost ~heartbeat_s:0.05
              (Rng.create ~seed:(seed + 1))
              w sets ~eps ~delta ~input ~output))
      (Rng.create ~seed) w sets ~eps ~delta ~emit
  in
  check int_c "drifted worker counted lost" 1 summary.Coordinator.workers_lost;
  check bool_c "all shards fell back in-process" true
    (summary.Coordinator.fallback_shards
     = summary.Coordinator.stream.Confidence.shards);
  check_same "fallback bits" (est, lo, hi, tr) ref_arrays

(* ------------------------------------------------------------------ *)
(* Static budget slices: deterministic across worker counts.           *)

let test_budget_slices_deterministic () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:5 in
  let opts = options shard_cost in
  let run workers =
    let budget = Budget.create ~max_trials:400 () in
    let emit, est, lo, hi, tr, _ = collector n in
    let summary =
      Coordinator.run ~budget ~options:opts ~workers
        ~spawn:(fun _ -> thread_spawn ~shard_cost w sets 0)
        (Rng.create ~seed) w sets ~eps ~delta ~emit
    in
    ((est, lo, hi, tr), summary)
  in
  let a1, s1 = run 1 in
  let a2, s2 = run 2 in
  check_same "slices independent of worker count" a2 a1;
  check int_c "same trial spend" s1.Coordinator.stream.Confidence.stream_trials
    s2.Coordinator.stream.Confidence.stream_trials;
  let _, _, lo, hi, _, _ = collector n in
  ignore lo;
  ignore hi;
  let (_, lo1, hi1, _) = a1 in
  assert_sound "budgeted brackets" w sets lo1 hi1

(* ------------------------------------------------------------------ *)
(* Journal compaction drops stale duplicates.                          *)

let test_compaction_drops_duplicates () =
  clear_all ();
  let w, sets = fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:5 in
  with_temp (fun path ->
      let emit, _, _, _, _, _ = collector n in
      let s =
        Confidence.run_stream
          ~options:(options ~checkpoint:path shard_cost)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      (* Duplicate the last record (identical bytes): compaction collapses
         it, resume still validates first-wins. *)
      let lines = read_lines path in
      let last = List.nth lines (List.length lines - 1) in
      write_lines path (lines @ [ last ]);
      let kept, dropped = Shard.compact_journal path in
      check int_c "latest-per-shard kept (plus meta)" (s.Confidence.shards + 1)
        kept;
      check int_c "duplicate dropped" 1 dropped;
      let ref_arrays, _, _ = reference ~opts:(options shard_cost) w sets in
      let emit, est, lo, hi, tr, _ = collector n in
      let s2 =
        Confidence.run_stream
          ~options:(options ~checkpoint:path ~resume:true shard_cost)
          (Rng.create ~seed) w sets ~eps ~delta ~emit
      in
      check int_c "everything resumes from the compacted journal"
        s.Confidence.shards s2.Confidence.resumed_shards;
      check_same "compacted resume" (est, lo, hi, tr) ref_arrays)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "distrib"
    [
      ( "smoke",
        [
          Alcotest.test_case "env-armed coordinator stays sound" `Quick
            test_env_smoke;
        ] );
      ( "protocol",
        [
          qcheck protocol_roundtrip;
          Alcotest.test_case "corrupt frames fail typed" `Quick
            test_protocol_corruption;
          Alcotest.test_case "percent-encoding edge cases" `Quick
            test_pct_encoding_edges;
          Alcotest.test_case "behavioral send modes on the wire" `Quick
            test_behavioral_send_modes;
        ] );
      ( "identity",
        [
          Alcotest.test_case "bit-identical for 1/2/4 forked workers" `Quick
            test_identity_across_worker_counts;
        ] );
      ( "faults",
        [
          Alcotest.test_case "SIGKILLed worker reassigned, bits unchanged"
            `Quick test_kill_worker_mid_run;
          Alcotest.test_case "poison shards quarantined then self-heal" `Quick
            test_quarantine_and_self_heal;
          Alcotest.test_case "drifted worker refused at handshake" `Quick
            test_drifted_worker_refused;
        ] );
      ( "resume",
        [
          Alcotest.test_case "journals interchange across worker counts"
            `Quick test_resume_across_worker_counts;
          Alcotest.test_case "compaction drops stale duplicates" `Quick
            test_compaction_drops_duplicates;
        ] );
      ( "budget",
        [
          Alcotest.test_case "static slices independent of worker count"
            `Quick test_budget_slices_deterministic;
        ] );
    ]
