(* Unit and property tests for the numeric substrate: bigints, rationals,
   intervals, RNG and the Chernoff-bound helpers. *)

open Pqdb_numeric
module B = Bigint
module Q = Rational

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Bigint units                                                        *)
(* ------------------------------------------------------------------ *)

let test_bigint_of_int_roundtrip () =
  List.iter
    (fun n ->
      check (Alcotest.option int_c) (string_of_int n) (Some n)
        (B.to_int_opt (B.of_int n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) + 17; max_int; min_int + 1 ]

let test_bigint_min_int () =
  (* min_int has no positive counterpart; make sure we neither crash nor
     corrupt the magnitude. *)
  let x = B.of_int min_int in
  check string_c "to_string" "-4611686018427387904" (B.to_string x);
  check bool_c "neg roundtrip" true
    (B.equal (B.neg (B.neg x)) x)

let test_bigint_string_roundtrip () =
  List.iter
    (fun s -> check string_c s s (B.to_string (B.of_string s)))
    [
      "0";
      "1";
      "-1";
      "123456789012345678901234567890";
      "-999999999999999999999999999999999999";
      "1000000000000000000000000000000000000000000";
    ]

let test_bigint_add_sub () =
  let a = B.of_string "123456789123456789123456789" in
  let b = B.of_string "987654321987654321" in
  check string_c "add" "123456790111111111111111110"
    (B.to_string (B.add a b));
  check string_c "sub" "123456788135802467135802468"
    (B.to_string (B.sub a b));
  check bool_c "a - a = 0" true (B.is_zero (B.sub a a))

let test_bigint_mul () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  check string_c "mul" "121932631356500531347203169112635269"
    (B.to_string (B.mul a b))

let test_bigint_divmod () =
  let a = B.of_string "1000000000000000000000000000007" in
  let b = B.of_string "123456789" in
  let q, r = B.divmod a b in
  check bool_c "q*b + r = a" true B.(equal (add (mul q b) r) a);
  check bool_c "0 <= r < b" true
    (B.sign r >= 0 && B.compare r b < 0);
  (* Negative dividend: truncated division, remainder keeps sign of a. *)
  let q', r' = B.divmod (B.neg a) b in
  check bool_c "neg dividend" true
    B.(equal (add (mul q' b) r') (neg a));
  check bool_c "remainder sign" true (B.sign r' <= 0)

let test_bigint_gcd () =
  let g =
    B.gcd (B.of_string "12345678901234567890") (B.of_string "9876543210")
  in
  check string_c "gcd" "90" (B.to_string g);
  check string_c "gcd with zero" "17" (B.to_string (B.gcd (B.of_int 17) B.zero))

let test_bigint_pow_shift () =
  check string_c "2^100" "1267650600228229401496703205376"
    (B.to_string (B.pow (B.of_int 2) 100));
  check string_c "shift_left" "1267650600228229401496703205376"
    (B.to_string (B.shift_left B.one 100));
  check string_c "shift_right" "1"
    (B.to_string (B.shift_right (B.shift_left B.one 100) 100))

let test_bigint_num_bits () =
  check int_c "bits of 0" 0 (B.num_bits B.zero);
  check int_c "bits of 1" 1 (B.num_bits B.one);
  check int_c "bits of 2^100" 101 (B.num_bits (B.shift_left B.one 100))

(* Property tests: agreement with native int arithmetic on safe ranges. *)
let small_int = QCheck.int_range (-1000000) 1000000

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_opt (B.add (B.of_int a) (B.of_int b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_opt (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"bigint divmod matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int_opt q = Some (a / b) && B.to_int_opt r = Some (a mod b))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint decimal roundtrip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 40)
       (QCheck.int_range 0 9)) (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      let canonical =
        let rec strip i =
          if i < String.length s - 1 && s.[i] = '0' then strip (i + 1) else i
        in
        let i = strip 0 in
        String.sub s i (String.length s - i)
      in
      B.to_string (B.of_string s) = canonical)

let prop_mul_distributes =
  QCheck.Test.make ~name:"bigint a*(b+c) = a*b + a*c" ~count:300
    (QCheck.triple small_int small_int small_int) (fun (a, b, c) ->
      let a = B.of_int a and b = B.of_int b and c = B.of_int c in
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

(* ------------------------------------------------------------------ *)
(* Rational units                                                      *)
(* ------------------------------------------------------------------ *)

let q_testable =
  Alcotest.testable Q.pp Q.equal

let test_rational_normalization () =
  check q_testable "6/8 = 3/4" (Q.of_ints 3 4) (Q.of_ints 6 8);
  check q_testable "-6/-8 = 3/4" (Q.of_ints 3 4) (Q.of_ints (-6) (-8));
  check q_testable "6/-8 = -3/4" (Q.of_ints (-3) 4) (Q.of_ints 6 (-8));
  check string_c "print" "-3/4" (Q.to_string (Q.of_ints 6 (-8)));
  check string_c "integer prints bare" "5" (Q.to_string (Q.of_ints 10 2))

let test_rational_arith () =
  let third = Q.of_ints 1 3 and quarter = Q.of_ints 1 4 in
  check q_testable "1/3 + 1/4" (Q.of_ints 7 12) (Q.add third quarter);
  check q_testable "1/3 - 1/4" (Q.of_ints 1 12) (Q.sub third quarter);
  check q_testable "1/3 * 1/4" (Q.of_ints 1 12) (Q.mul third quarter);
  check q_testable "(1/3) / (1/4)" (Q.of_ints 4 3) (Q.div third quarter);
  check q_testable "pow" (Q.of_ints 1 27) (Q.pow third 3);
  check q_testable "pow neg" (Q.of_int 27) (Q.pow third (-3))

let test_rational_coin_example () =
  (* The probabilities of Example 2.2: 2/3 * 1/4 = 1/6 and the conditional
     (1/6) / (1/2) = 1/3. *)
  let p = Q.mul (Q.of_ints 2 3) (Q.of_ints 1 4) in
  check q_testable "world prob" (Q.of_ints 1 6) p;
  check q_testable "conditional" (Q.of_ints 1 3) (Q.div p Q.half)

let test_rational_of_float () =
  check q_testable "0.5" Q.half (Q.of_float 0.5);
  check q_testable "0.25" (Q.of_ints 1 4) (Q.of_float 0.25);
  check q_testable "-1.75" (Q.of_ints (-7) 4) (Q.of_float (-1.75));
  check q_testable "0" Q.zero (Q.of_float 0.);
  check bool_c "0.1 roundtrips through float" true
    (Q.to_float (Q.of_float 0.1) = 0.1)

let test_rational_of_string () =
  check q_testable "n/d" (Q.of_ints 22 7) (Q.of_string "22/7");
  check q_testable "decimal" (Q.of_ints 5 4) (Q.of_string "1.25");
  check q_testable "neg decimal" (Q.of_ints (-1) 2) (Q.of_string "-0.5");
  check q_testable "int" (Q.of_int 42) (Q.of_string "42")

let test_rational_compare () =
  check bool_c "1/3 < 1/2" true Q.(of_ints 1 3 < half);
  check bool_c "probability check" true
    (Q.is_proper_probability (Q.of_ints 1 6));
  check bool_c "3/2 not probability" false
    (Q.is_proper_probability (Q.of_ints 3 2));
  check q_testable "complement" (Q.of_ints 5 6)
    (Q.complement (Q.of_ints 1 6))

let rational_gen =
  QCheck.map
    (fun (n, d) -> Q.of_ints n d)
    (QCheck.pair (QCheck.int_range (-500) 500) (QCheck.int_range 1 500))

let prop_rational_add_comm =
  QCheck.Test.make ~name:"rational addition commutes" ~count:300
    (QCheck.pair rational_gen rational_gen) (fun (a, b) ->
      Q.equal (Q.add a b) (Q.add b a))

let prop_rational_mul_inverse =
  QCheck.Test.make ~name:"rational x * (1/x) = 1" ~count:300 rational_gen
    (fun x ->
      QCheck.assume (not (Q.is_zero x));
      Q.equal (Q.mul x (Q.inv x)) Q.one)

let prop_rational_add_assoc =
  QCheck.Test.make ~name:"rational addition associates" ~count:300
    (QCheck.triple rational_gen rational_gen rational_gen) (fun (a, b, c) ->
      Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c))

let prop_rational_float_of_float_exact =
  QCheck.Test.make ~name:"of_float is exact" ~count:300
    (QCheck.float_range (-1000.) 1000.) (fun f ->
      Q.to_float (Q.of_float f) = f)

(* ------------------------------------------------------------------ *)
(* Interval / orthotope units                                          *)
(* ------------------------------------------------------------------ *)

let test_interval_relative () =
  (* Example 5.4: p̂ = 1/2, ε = 1/3 gives [3/8, 3/4]. *)
  let iv = Interval.relative ~eps:(1. /. 3.) 0.5 in
  check (Alcotest.float 1e-12) "lo" 0.375 iv.Interval.lo;
  check (Alcotest.float 1e-12) "hi" 0.75 iv.Interval.hi

let test_orthotope_corners () =
  let o = Interval.orthotope_relative ~eps:(1. /. 3.) [| 0.5; 0.5 |] in
  let corners = List.of_seq (Interval.corners o) in
  check int_c "corner count" 4 (List.length corners);
  check int_c "corner_count fn" 4 (Interval.corner_count o);
  List.iter
    (fun c -> check bool_c "corner in orthotope" true (Interval.mem_point c o))
    corners

let test_interval_membership () =
  let iv = Interval.make 1. 2. in
  check bool_c "mem" true (Interval.mem 1.5 iv);
  check bool_c "not mem" false (Interval.mem 2.5 iv);
  check bool_c "intersects" true
    (Interval.intersects iv (Interval.make 1.9 3.));
  check bool_c "contains" true
    (Interval.contains iv (Interval.make 1.2 1.8))

(* ------------------------------------------------------------------ *)
(* RNG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check (Alcotest.list int_c) "same seed, same stream" xs ys

let test_rng_discrete () =
  let rng = Rng.create ~seed:42 in
  let dist = Rng.Discrete.of_weights [| 1.; 0.; 3. |] in
  check (Alcotest.float 1e-9) "total" 4. (Rng.Discrete.total dist);
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Rng.Discrete.sample rng dist in
    counts.(i) <- counts.(i) + 1
  done;
  check int_c "zero-weight index never drawn" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  check bool_c "ratio near 3" true (ratio > 2.5 && ratio < 3.5)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:1 in
  check bool_c "p=0" false (Rng.bernoulli rng 0.);
  check bool_c "p=1" true (Rng.bernoulli rng 1.)

let test_rng_alias_frequencies () =
  (* Alias sampling reproduces the weights: chi-square-ish tolerance over
     50k draws on an uneven 4-point distribution. *)
  let rng = Rng.create ~seed:42 in
  let weights = [| 1.; 0.; 3.; 4. |] in
  let dist = Rng.Alias.of_weights weights in
  check (Alcotest.float 1e-9) "total" 8. (Rng.Alias.total dist);
  check int_c "size" 4 (Rng.Alias.size dist);
  let draws = 50_000 in
  let counts = Array.make 4 0 in
  for _ = 1 to draws do
    let i = Rng.Alias.sample rng dist in
    counts.(i) <- counts.(i) + 1
  done;
  check int_c "zero-weight index never drawn" 0 counts.(1);
  Array.iteri
    (fun i w ->
      let expected = w /. 8. in
      let observed = float_of_int counts.(i) /. float_of_int draws in
      check bool_c
        (Printf.sprintf "index %d: observed %.4f near %.4f" i observed
           expected)
        true
        (Float.abs (observed -. expected) < 0.01))
    weights

let test_rng_alias_matches_discrete_stats () =
  (* Alias and cumulative-scan sampling draw from the same distribution. *)
  let weights = [| 0.2; 0.5; 0.1; 0.15; 0.05 |] in
  let alias = Rng.Alias.of_weights weights in
  let discrete = Rng.Discrete.of_weights weights in
  let freq sample =
    let rng = Rng.create ~seed:77 in
    let counts = Array.make 5 0 in
    for _ = 1 to 30_000 do
      let i = sample rng in
      counts.(i) <- counts.(i) + 1
    done;
    Array.map (fun c -> float_of_int c /. 30_000.) counts
  in
  let fa = freq (fun rng -> Rng.Alias.sample rng alias) in
  let fd = freq (fun rng -> Rng.Discrete.sample rng discrete) in
  Array.iteri
    (fun i a ->
      check bool_c
        (Printf.sprintf "index %d: alias %.4f vs discrete %.4f" i a fd.(i))
        true
        (Float.abs (a -. fd.(i)) < 0.015))
    fa

let test_rng_alias_singleton () =
  let rng = Rng.create ~seed:9 in
  let dist = Rng.Alias.of_weights [| 2.5 |] in
  for _ = 1 to 100 do
    check int_c "only index" 0 (Rng.Alias.sample rng dist)
  done

let test_rng_alias_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Rng.Alias.of_weights: empty") (fun () ->
      ignore (Rng.Alias.of_weights [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Rng.Alias.of_weights: negative weight") (fun () ->
      ignore (Rng.Alias.of_weights [| 1.; -1. |]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Rng.Alias.of_weights: zero total") (fun () ->
      ignore (Rng.Alias.of_weights [| 0.; 0. |]))

let test_rng_split_n_deterministic () =
  (* Children are a pure function of the parent state: two identically
     seeded parents produce identical child streams. *)
  let draw rng = List.init 10 (fun _ -> Rng.int rng 1_000_000) in
  let c1 = Rng.split_n (Rng.create ~seed:13) 4 in
  let c2 = Rng.split_n (Rng.create ~seed:13) 4 in
  Array.iteri
    (fun i a ->
      check (Alcotest.list int_c)
        (Printf.sprintf "child %d reproducible" i)
        (draw a) (draw c2.(i)))
    c1;
  (* Distinct children diverge. *)
  let c3 = Rng.split_n (Rng.create ~seed:13) 2 in
  check bool_c "children differ" true (draw c3.(0) <> draw c3.(1));
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Rng.split_n: n must be positive") (fun () ->
      ignore (Rng.split_n (Rng.create ~seed:1) 0))

(* ------------------------------------------------------------------ *)
(* Stats / Chernoff bounds                                             *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean xs);
  check (Alcotest.float 1e-9) "median" 2.5 (Stats.median xs);
  check (Alcotest.float 1e-9) "variance" (5. /. 3.) (Stats.variance xs);
  let lo, hi = Stats.min_max xs in
  check (Alcotest.float 1e-9) "min" 1. lo;
  check (Alcotest.float 1e-9) "max" 4. hi;
  check (Alcotest.float 1e-9) "q0" 1. (Stats.quantile xs 0.);
  check (Alcotest.float 1e-9) "q1" 4. (Stats.quantile xs 1.)

let test_chernoff_consistency () =
  (* m = 3|F| log(2/δ)/ε² trials should give back a bound of at most δ. *)
  let clauses = 10 and eps = 0.1 and delta = 0.05 in
  let m = Stats.karp_luby_trials ~clauses ~eps ~delta in
  let d = Stats.karp_luby_delta ~trials:m ~clauses ~eps in
  check bool_c "delta bound achieved" true (d <= delta +. 1e-12);
  (* One fewer round of |F| samples should not be enough (ceiling tightness
     within one batch). *)
  let d' = Stats.karp_luby_delta ~trials:(m - clauses) ~clauses ~eps in
  check bool_c "near-tight" true (d' >= delta *. 0.9)

let test_delta'_rounds () =
  let eps = 0.2 and delta = 0.01 in
  let l = Stats.rounds_for ~eps ~delta in
  check bool_c "rounds_for achieves delta" true
    (Stats.delta' ~eps ~rounds:l <= delta);
  check bool_c "rounds_for minimal" true
    (Stats.delta' ~eps ~rounds:(l - 1) > delta)

let test_theorem_6_7_rounds () =
  let l = Stats.theorem_6_7_rounds ~eps0:0.1 ~delta:0.05 ~k:2 ~d:2 ~n:10 in
  (* l0 >= 3 ln(2*k*d*n^(kd)/δ)/ε0²; sanity: positive and monotone in n. *)
  check bool_c "positive" true (l > 0);
  let l' = Stats.theorem_6_7_rounds ~eps0:0.1 ~delta:0.05 ~k:2 ~d:2 ~n:100 in
  check bool_c "monotone in n" true (l' > l)

let test_error_tally () =
  let t = Stats.tally () in
  Stats.record t true;
  Stats.record t false;
  Stats.record t false;
  Stats.record t true;
  check (Alcotest.float 1e-9) "error rate" 0.5 (Stats.error_rate t)

(* ------------------------------------------------------------------ *)
(* Additional edge cases and order/algebra properties                  *)
(* ------------------------------------------------------------------ *)

let test_bigint_of_string_invalid () =
  List.iter
    (fun s ->
      check bool_c s true
        (try
           ignore (B.of_string s);
           false
         with Invalid_argument _ -> true))
    [ ""; "-"; "+"; "12a"; "1 2" ]

let test_bigint_shift_errors () =
  Alcotest.check_raises "negative left shift"
    (Invalid_argument "Bigint.shift_left") (fun () ->
      ignore (B.shift_left B.one (-1)));
  Alcotest.check_raises "negative right shift"
    (Invalid_argument "Bigint.shift_right") (fun () ->
      ignore (B.shift_right B.one (-1)));
  Alcotest.check_raises "negative exponent" (Invalid_argument "Bigint.pow")
    (fun () -> ignore (B.pow B.one (-1)))

let test_bigint_division_by_zero () =
  Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let prop_compare_matches_int =
  QCheck.Test.make ~name:"bigint compare matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      compare a b = B.compare (B.of_int a) (B.of_int b))

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"shift left then right is identity" ~count:200
    (QCheck.pair small_int (QCheck.int_range 0 100)) (fun (a, n) ->
      let x = B.of_int a in
      (* Truncated right shift of negatives rounds toward zero, so only the
         magnitude survives exactly; test on absolute values. *)
      B.equal (B.shift_right (B.shift_left (B.abs x) n) n) (B.abs x))

let prop_pow_is_repeated_mul =
  QCheck.Test.make ~name:"pow = repeated multiplication" ~count:100
    (QCheck.pair (QCheck.int_range (-9) 9) (QCheck.int_range 0 12))
    (fun (a, n) ->
      let x = B.of_int a in
      let rec repeat acc i = if i = 0 then acc else repeat (B.mul acc x) (i - 1) in
      B.equal (B.pow x n) (repeat B.one n))

let prop_hash_respects_equal =
  QCheck.Test.make ~name:"equal bigints hash equally" ~count:200 small_int
    (fun a ->
      let via_string = B.of_string (string_of_int a) in
      B.hash (B.of_int a) = B.hash via_string)

let test_rational_min_max_sum_product () =
  let a = Q.of_ints 1 3 and b = Q.of_ints 1 4 in
  check q_testable "min" b (Q.min a b);
  check q_testable "max" a (Q.max a b);
  check q_testable "sum" (Q.of_ints 7 12) (Q.sum [ a; b ]);
  check q_testable "product" (Q.of_ints 1 12) (Q.product [ a; b ]);
  check q_testable "empty sum" Q.zero (Q.sum []);
  check q_testable "empty product" Q.one (Q.product [])

let test_rational_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Q.inv Q.zero));
  Alcotest.check_raises "make with zero denominator" Division_by_zero
    (fun () -> ignore (Q.make B.one B.zero))

let test_rational_pow_zero () =
  check q_testable "x^0 = 1" Q.one (Q.pow (Q.of_ints 7 3) 0);
  check q_testable "0^5 = 0" Q.zero (Q.pow Q.zero 5)

let prop_rational_order_antisymmetric =
  QCheck.Test.make ~name:"rational order is antisymmetric" ~count:300
    (QCheck.pair rational_gen rational_gen) (fun (a, b) ->
      let c = Q.compare a b and c' = Q.compare b a in
      (c = 0 && c' = 0) || c * c' < 0)

let prop_rational_mul_distributes =
  QCheck.Test.make ~name:"rational multiplication distributes" ~count:300
    (QCheck.triple rational_gen rational_gen rational_gen) (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let test_interval_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make")
    (fun () -> ignore (Interval.make 2. 1.))

let test_interval_absolute_relative () =
  let iv = Interval.absolute_relative ~eps:0.1 0.5 in
  check (Alcotest.float 1e-12) "lo" 0.45 iv.Interval.lo;
  check (Alcotest.float 1e-12) "hi" 0.55 iv.Interval.hi;
  (* Negative center still yields a valid interval. *)
  let iv = Interval.absolute_relative ~eps:0.1 (-0.5) in
  check bool_c "ordered" true (iv.Interval.lo <= iv.Interval.hi)

let prop_orthotope_sample_within =
  QCheck.Test.make ~name:"orthotope samples stay inside" ~count:200
    (QCheck.pair (QCheck.float_range 0.05 0.5) (QCheck.float_range 0.1 0.9))
    (fun (eps, p) ->
      let rng = Rng.create ~seed:9 in
      let o = Interval.orthotope_relative ~eps [| p; p |] in
      let draw lo hi = Rng.float_range rng lo hi in
      let x = Interval.sample draw o in
      Interval.mem_point x o)

let test_rng_split_diverges () =
  let parent = Rng.create ~seed:3 in
  let a = Rng.split parent in
  let b = Rng.split parent in
  let xs = List.init 10 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1_000_000) in
  check bool_c "streams differ" true (xs <> ys)

let test_rng_float_range_bounds () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let x = Rng.float_range rng 2. 3. in
    check bool_c "in range" true (x >= 2. && x <= 3.)
  done

let test_rng_discrete_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Rng.Discrete.of_weights: empty") (fun () ->
      ignore (Rng.Discrete.of_weights [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Rng.Discrete.of_weights: negative weight") (fun () ->
      ignore (Rng.Discrete.of_weights [| 1.; -1. |]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Rng.Discrete.of_weights: zero total") (fun () ->
      ignore (Rng.Discrete.of_weights [| 0.; 0. |]))

let test_stats_quantile_interpolation () =
  let xs = [| 10.; 20.; 30. |] in
  check (Alcotest.float 1e-9) "q(0.25)" 15. (Stats.quantile xs 0.25);
  check (Alcotest.float 1e-9) "q(0.75)" 25. (Stats.quantile xs 0.75)

let test_stats_invalid_args () =
  Alcotest.check_raises "bad eps" (Invalid_argument "Stats.karp_luby_trials")
    (fun () -> ignore (Stats.karp_luby_trials ~clauses:1 ~eps:0. ~delta:0.1));
  Alcotest.check_raises "bad delta" (Invalid_argument "Stats.rounds_for")
    (fun () -> ignore (Stats.rounds_for ~eps:0.1 ~delta:0.))

let test_independent_or_bound () =
  let deltas = [ 0.1; 0.2 ] in
  check (Alcotest.float 1e-12) "1 - 0.9*0.8" 0.28
    (Stats.independent_or_bound deltas);
  check bool_c "tighter than the sum" true
    (Stats.independent_or_bound deltas <= List.fold_left ( +. ) 0. deltas);
  check (Alcotest.float 0.) "empty product" 0.
    (Stats.independent_or_bound []);
  check (Alcotest.float 1e-12) "clamps" 1.
    (Stats.independent_or_bound [ 2.0 ])

let test_theorem_6_7_monotonicity () =
  let base = Stats.theorem_6_7_rounds ~eps0:0.1 ~delta:0.05 ~k:2 ~d:2 ~n:10 in
  check bool_c "monotone in k" true
    (Stats.theorem_6_7_rounds ~eps0:0.1 ~delta:0.05 ~k:3 ~d:2 ~n:10 > base);
  check bool_c "monotone in d" true
    (Stats.theorem_6_7_rounds ~eps0:0.1 ~delta:0.05 ~k:2 ~d:3 ~n:10 > base);
  check bool_c "anti-monotone in eps0" true
    (Stats.theorem_6_7_rounds ~eps0:0.2 ~delta:0.05 ~k:2 ~d:2 ~n:10 < base)

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "numeric"
    [
      ( "bigint",
        [
          Alcotest.test_case "of_int roundtrip" `Quick
            test_bigint_of_int_roundtrip;
          Alcotest.test_case "min_int" `Quick test_bigint_min_int;
          Alcotest.test_case "string roundtrip" `Quick
            test_bigint_string_roundtrip;
          Alcotest.test_case "add/sub" `Quick test_bigint_add_sub;
          Alcotest.test_case "mul" `Quick test_bigint_mul;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "gcd" `Quick test_bigint_gcd;
          Alcotest.test_case "pow/shift" `Quick test_bigint_pow_shift;
          Alcotest.test_case "num_bits" `Quick test_bigint_num_bits;
          qcheck prop_add_matches_int;
          qcheck prop_mul_matches_int;
          qcheck prop_divmod_matches_int;
          qcheck prop_string_roundtrip;
          qcheck prop_mul_distributes;
        ] );
      ( "rational",
        [
          Alcotest.test_case "normalization" `Quick
            test_rational_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rational_arith;
          Alcotest.test_case "coin probabilities" `Quick
            test_rational_coin_example;
          Alcotest.test_case "of_float" `Quick test_rational_of_float;
          Alcotest.test_case "of_string" `Quick test_rational_of_string;
          Alcotest.test_case "compare/probability" `Quick
            test_rational_compare;
          qcheck prop_rational_add_comm;
          qcheck prop_rational_mul_inverse;
          qcheck prop_rational_add_assoc;
          qcheck prop_rational_float_of_float_exact;
        ] );
      ( "interval",
        [
          Alcotest.test_case "relative interval (Example 5.4)" `Quick
            test_interval_relative;
          Alcotest.test_case "orthotope corners" `Quick test_orthotope_corners;
          Alcotest.test_case "membership" `Quick test_interval_membership;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "discrete distribution" `Quick test_rng_discrete;
          Alcotest.test_case "bernoulli extremes" `Quick
            test_rng_bernoulli_extremes;
          Alcotest.test_case "alias frequencies" `Quick
            test_rng_alias_frequencies;
          Alcotest.test_case "alias matches discrete" `Quick
            test_rng_alias_matches_discrete_stats;
          Alcotest.test_case "alias singleton" `Quick test_rng_alias_singleton;
          Alcotest.test_case "split_n deterministic" `Quick
            test_rng_split_n_deterministic;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "bigint of_string invalid" `Quick
            test_bigint_of_string_invalid;
          Alcotest.test_case "bigint shift/pow errors" `Quick
            test_bigint_shift_errors;
          Alcotest.test_case "bigint division by zero" `Quick
            test_bigint_division_by_zero;
          qcheck prop_compare_matches_int;
          qcheck prop_shift_roundtrip;
          qcheck prop_pow_is_repeated_mul;
          qcheck prop_hash_respects_equal;
          Alcotest.test_case "rational min/max/sum/product" `Quick
            test_rational_min_max_sum_product;
          Alcotest.test_case "rational division by zero" `Quick
            test_rational_division_by_zero;
          Alcotest.test_case "rational pow edge" `Quick test_rational_pow_zero;
          qcheck prop_rational_order_antisymmetric;
          qcheck prop_rational_mul_distributes;
          Alcotest.test_case "interval invalid" `Quick test_interval_invalid;
          Alcotest.test_case "absolute-relative interval" `Quick
            test_interval_absolute_relative;
          qcheck prop_orthotope_sample_within;
          Alcotest.test_case "rng split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "rng float_range bounds" `Quick
            test_rng_float_range_bounds;
          Alcotest.test_case "rng discrete invalid" `Quick
            test_rng_discrete_invalid;
          Alcotest.test_case "rng alias invalid" `Quick test_rng_alias_invalid;
          Alcotest.test_case "quantile interpolation" `Quick
            test_stats_quantile_interpolation;
          Alcotest.test_case "stats invalid args" `Quick
            test_stats_invalid_args;
          Alcotest.test_case "independence bound" `Quick
            test_independent_or_bound;
          Alcotest.test_case "theorem 6.7 monotonicity" `Quick
            test_theorem_6_7_monotonicity;
        ] );
      ( "stats",
        [
          Alcotest.test_case "descriptive" `Quick test_stats_basic;
          Alcotest.test_case "chernoff consistency" `Quick
            test_chernoff_consistency;
          Alcotest.test_case "delta'/rounds_for" `Quick test_delta'_rounds;
          Alcotest.test_case "theorem 6.7 rounds" `Quick
            test_theorem_6_7_rounds;
          Alcotest.test_case "error tally" `Quick test_error_tally;
        ] );
    ]
