(* Chaos soak: behavioral fault modes (raise / delay / stall / torn) armed
   one site at a time across every instrumented serve and distrib I/O site,
   with deadlines everywhere.  The contract under test is the robustness
   tentpole's acceptance bar:

   - every call terminates well inside its deadline — either with a correct
     result or a typed [Pqdb_error] (never a hang, never an untyped crash);
   - the daemon survives every injected fault and keeps serving;
   - fault-free traffic before, between and after armed trials stays
     byte-identical to the reference answer;
   - overload sheds with a typed [Busy], idle and wedged sessions are
     reaped, and both show up in [stats].

   Stall shots are capped short ([Faultpoint.set_stall_cap_s]) so the soak
   stays fast; the cap is restored on every exit path.  Like the other
   suites, every test clears the registry first so the CI fault matrix
   (which arms one site for the whole process) cannot poison the product
   of trials below. *)

let () = Unix.putenv "PQDB_POOL_WORKERS" "1"

open Pqdb_numeric
open Pqdb_urel
open Pqdb_montecarlo
open Pqdb_distrib
open Pqdb_serve
module FP = Pqdb_runtime.Faultpoint
module E = Pqdb_runtime.Pqdb_error
module Gen = Pqdb_workload.Gen
module Q = Rational

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string
let clear_all () = List.iter FP.disarm (FP.armed ())

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Pull a named counter out of a stats body: the word after [name]. *)
let counter body name =
  let words =
    String.split_on_char '\n' body
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun w -> w <> "")
  in
  let rec go = function
    | k :: v :: rest ->
        if String.equal k name then int_of_string_opt v else go (v :: rest)
    | _ -> None
  in
  go words

let counter_at_least label body name n =
  check bool_c
    (Printf.sprintf "%s: stats %s >= %d" label name n)
    true
    (match counter body name with Some v -> v >= n | None -> false)

let temp_counter = ref 0

let temp_path suffix =
  incr temp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pqdb_chaos_%d_%d%s" (Unix.getpid ()) !temp_counter suffix)

(* Deterministic Fisher-Yates so the trial order is "random" but
   reproducible run to run. *)
let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let modes = [ FP.Raise; FP.Delay 0.03; FP.Stall; FP.Torn ]

(* ------------------------------------------------------------------ *)
(* Serve-side soak.                                                    *)

let with_fixture_db f =
  let path = temp_path ".udbb" in
  let rng = Rng.create ~seed:77 in
  let udb = Gen.uncertain_db rng ~tuples:20 ~clauses:3 in
  Udb_io.save path udb;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let config ?io_timeout_s ?idle_timeout_s ?max_sessions ?watchdog_s ~db_path
    listen =
  {
    Server.db_path;
    listen;
    cache_entries = 64;
    session_trials = None;
    session_deadline_s = None;
    io_timeout_s;
    idle_timeout_s;
    max_sessions;
    watchdog_s;
  }

let with_daemon cfg f =
  let srv = Server.create cfg in
  let daemon = Thread.create (fun () -> ignore (Server.run srv)) () in
  Fun.protect
    ~finally:(fun () ->
      (* Whatever the test left behind, stop the daemon and release any
         stall still holding a session thread. *)
      clear_all ();
      (match Client.connect ~retries:10 ~retry_delay_s:0.05 cfg.Server.listen with
      | c ->
          (try ignore (Client.query ~timeout_s:2.0 c "shutdown") with _ -> ());
          (try Client.close c with _ -> ())
      | exception _ -> ());
      Thread.join daemon)
    (fun () -> f cfg.Server.listen)

(* One armed round trip: connect + query with tight deadlines.  The only
   acceptable outcomes are a clean reference-identical reply, an err reply
   (the daemon rendered the injected fault), or a typed exception. *)
let armed_trial ~label ~reference listen =
  let outcome =
    match
      Client.connect ~retries:3 ~retry_delay_s:0.05 ~io_timeout_s:1.0 listen
    with
    | c ->
        let r =
          match Client.query ~timeout_s:1.5 c "conf events" with
          | true, body -> `Ok body
          | false, _ -> `Typed
          | exception E.Error _ -> `Typed
        in
        (try Client.close c with _ -> ());
        r
    | exception E.Error _ -> `Typed
    | exception Unix.Unix_error _ -> `Typed
  in
  match outcome with
  | `Ok body ->
      check string_c (label ^ ": clean reply is byte-identical") reference body
  | `Typed -> ()

let serve_sites = [ "serve.accept"; "serve.session"; "distrib.send"; "distrib.recv" ]

let test_serve_soak () =
  clear_all ();
  with_fixture_db (fun db ->
      let listen = Server.Unix_socket (temp_path ".sock") in
      let cfg =
        config ~io_timeout_s:2.0 ~max_sessions:16 ~watchdog_s:1.0 ~db_path:db
          listen
      in
      with_daemon cfg (fun listen ->
          Fun.protect
            ~finally:(fun () -> FP.set_stall_cap_s 2.0)
            (fun () ->
              FP.set_stall_cap_s 0.4;
              let reference =
                let c = Client.connect ~retries:50 ~io_timeout_s:2.0 listen in
                let ok, body = Client.query c "conf events" in
                check bool_c "reference query ok" true ok;
                Client.close c;
                body
              in
              let trials =
                List.concat_map
                  (fun site -> List.map (fun m -> (site, m)) modes)
                  serve_sites
                |> shuffle (Rng.create ~seed:2026)
              in
              List.iter
                (fun (site, mode) ->
                  clear_all ();
                  let label =
                    Printf.sprintf "%s@%s" site (FP.mode_to_string mode)
                  in
                  FP.arm ~count:1 ~mode site;
                  let (), elapsed =
                    timed (fun () -> armed_trial ~label ~reference listen)
                  in
                  check bool_c (label ^ ": trial bounded") true (elapsed < 8.0);
                  clear_all ();
                  (* fault-free traffic right after the fault: served, and
                     byte-identical to the reference *)
                  let c =
                    Client.connect ~retries:10 ~retry_delay_s:0.05
                      ~io_timeout_s:2.0 listen
                  in
                  let ok, body = Client.query c "conf events" in
                  check bool_c (label ^ ": daemon survives") true ok;
                  check string_c
                    (label ^ ": fault-free reply byte-identical")
                    reference body;
                  Client.close c)
                trials)))

let test_shed_at_cap () =
  clear_all ();
  with_fixture_db (fun db ->
      let listen = Server.Unix_socket (temp_path ".sock") in
      let cfg = config ~io_timeout_s:2.0 ~max_sessions:1 ~db_path:db listen in
      with_daemon cfg (fun listen ->
          let c1 = Client.connect ~retries:50 ~io_timeout_s:2.0 listen in
          (* the single slot is held: the next connection is shed with a
             typed Busy instead of a hang or a silent close *)
          (match Client.connect ~io_timeout_s:2.0 listen with
          | c2 ->
              Client.close c2;
              Alcotest.fail "second session admitted past the cap"
          | exception E.Error (E.Busy _) -> ());
          let ok, body = Client.query c1 "stats" in
          check bool_c "held session still serves" true ok;
          counter_at_least "shed" body "shed" 1;
          (* freeing the slot lets a backed-off retry in *)
          Client.close c1;
          let c3 =
            Client.connect ~retries:20 ~retry_delay_s:0.05 ~io_timeout_s:2.0
              listen
          in
          let ok, _ = Client.query c3 "conf events" in
          check bool_c "slot freed, retry admitted" true ok;
          Client.close c3))

let test_idle_reap () =
  clear_all ();
  with_fixture_db (fun db ->
      let listen = Server.Unix_socket (temp_path ".sock") in
      let cfg = config ~idle_timeout_s:0.2 ~db_path:db listen in
      with_daemon cfg (fun listen ->
          let c = Client.connect ~retries:50 ~io_timeout_s:2.0 listen in
          let ok, _ = Client.query c "conf events" in
          check bool_c "query before idling" true ok;
          Unix.sleepf 0.6;
          (match Client.query ~timeout_s:1.0 c "conf events" with
          | _ -> Alcotest.fail "reaped session still replied"
          | exception E.Error _ -> ());
          (try Client.close c with _ -> ());
          let c2 = Client.connect ~retries:20 ~retry_delay_s:0.05 listen in
          let ok, body = Client.query c2 "stats" in
          check bool_c "stats after reap" true ok;
          counter_at_least "idle" body "reaped" 1;
          Client.close c2))

let test_watchdog_reaps_wedged () =
  clear_all ();
  with_fixture_db (fun db ->
      let listen = Server.Unix_socket (temp_path ".sock") in
      let cfg = config ~watchdog_s:0.4 ~db_path:db listen in
      with_daemon cfg (fun listen ->
          Fun.protect
            ~finally:(fun () ->
              FP.set_stall_cap_s 2.0;
              clear_all ())
            (fun () ->
              (* a stall far beyond the watchdog: without the watchdog the
                 query would sit for the full cap *)
              FP.set_stall_cap_s 10.0;
              let c = Client.connect ~retries:50 listen in
              FP.arm ~count:1 ~mode:FP.Stall "serve.session";
              let outcome, elapsed =
                timed (fun () ->
                    match Client.query ~timeout_s:3.0 c "conf events" with
                    | r -> `Replied r
                    | exception E.Error _ -> `Typed)
              in
              (match outcome with
              | `Replied _ -> Alcotest.fail "wedged session still replied"
              | `Typed -> ());
              check bool_c "watchdog cut the session well before the stall cap"
                true (elapsed < 3.5);
              (* release the stalled session thread before shutdown *)
              clear_all ();
              (try Client.close c with _ -> ());
              let c2 = Client.connect ~retries:20 ~retry_delay_s:0.05 listen in
              let ok, body = Client.query c2 "stats" in
              check bool_c "stats after watchdog" true ok;
              counter_at_least "watchdog" body "reaped" 1;
              Client.close c2)))

(* ------------------------------------------------------------------ *)
(* Distrib-side soak: coordinator/worker round trips under armed        *)
(* transport faults.  Every shard must still be emitted with sound      *)
(* brackets (reassignment or in-process fallback), and a fault-free     *)
(* distributed run must reproduce the sequential stream bit-exactly.    *)

let eps = 0.35
let delta = 0.2
let dseed = 9091

let dist_fixture () =
  let rng = Rng.create ~seed:4243 in
  let w = Wtable.create () in
  let sets =
    Array.init 12 (fun i ->
        match i mod 4 with
        | 0 -> Gen.random_dnf rng w ~vars:8 ~clauses:5 ~clause_len:3
        | 1 -> Gen.random_dnf rng w ~vars:6 ~clauses:4 ~clause_len:2
        | 2 -> [ Assignment.empty ]
        | _ -> Gen.random_dnf rng w ~vars:7 ~clauses:4 ~clause_len:3)
  in
  (w, sets)

let shard_cost_for ~eps ~delta clause_sets ~target =
  let total =
    Array.fold_left
      (fun acc cs -> acc + Shard.tuple_cost ~eps ~delta cs)
      0 clause_sets
  in
  max 1 (total / target)

let collector n =
  let est = Array.make n nan in
  let lo = Array.make n nan in
  let hi = Array.make n nan in
  let tr = Array.make n (-1) in
  let order = ref [] in
  let emit (o : Shard.outcome) =
    order := o.Shard.shard.Shard.index :: !order;
    Array.iteri
      (fun j e ->
        let i = o.Shard.shard.Shard.first + j in
        est.(i) <- e;
        tr.(i) <- o.Shard.trials.(j);
        let l, h = o.Shard.intervals.(j) in
        lo.(i) <- l;
        hi.(i) <- h)
      o.Shard.estimates
  in
  (emit, est, lo, hi, tr, order)

let bits = Int64.bits_of_float

let check_same name (est, lo, hi, tr) (est', lo', hi', tr') =
  let fcmp what a b =
    Array.iteri
      (fun i x ->
        check Alcotest.int64
          (Printf.sprintf "%s: %s slot %d" name what i)
          (bits x) (bits b.(i)))
      a
  in
  fcmp "estimate" est est';
  fcmp "lo" lo lo';
  fcmp "hi" hi hi';
  check (Alcotest.array int_c) (name ^ ": trials") tr tr'

let assert_sound name w clause_sets lo hi =
  Array.iteri
    (fun i clauses ->
      let p = Q.to_float (Pqdb_urel.Confidence.exact w clauses) in
      check bool_c
        (Printf.sprintf "%s: tuple %d exact %.4f inside [%g, %g]" name i p
           lo.(i) hi.(i))
        true
        (lo.(i) -. 1e-9 <= p && p <= hi.(i) +. 1e-9))
    clause_sets

let test_distrib_soak () =
  clear_all ();
  let w, sets = dist_fixture () in
  let n = Array.length sets in
  let shard_cost = shard_cost_for ~eps ~delta sets ~target:4 in
  let opts =
    { Confidence.shard_cost; retries = 3; checkpoint = None; resume = false }
  in
  let reference =
    let emit, est, lo, hi, tr, _ = collector n in
    let _ =
      Confidence.run_stream ~options:opts (Rng.create ~seed:dseed) w sets ~eps
        ~delta ~emit
    in
    (est, lo, hi, tr)
  in
  let spawn _ =
    (* Tight worker-side frame deadline: a torn coordinator frame must kill
       the worker within ~1s, not leave it wedged-but-heartbeating. *)
    Coordinator.thread_transport ~io_timeout_s:1.0 (fun ~input ~output ->
        Worker.serve ~shard_cost ~heartbeat_s:0.05 ~frame_timeout_s:1.0
          (Rng.create ~seed:dseed) w sets ~eps ~delta ~input ~output)
  in
  Fun.protect
    ~finally:(fun () ->
      FP.set_stall_cap_s 2.0;
      clear_all ())
    (fun () ->
      FP.set_stall_cap_s 0.4;
      List.iter
        (fun (site, mode) ->
          clear_all ();
          let label = Printf.sprintf "%s@%s" site (FP.mode_to_string mode) in
          Printf.eprintf "chaos distrib trial: %s\n%!" label;
          FP.arm ~count:2 ~mode site;
          let (summary, lo, hi, order), elapsed =
            timed (fun () ->
                let emit, _est, lo, hi, _tr, order = collector n in
                let s =
                  Coordinator.run ~options:opts ~workers:2 ~spawn
                    (Rng.create ~seed:dseed) w sets ~eps ~delta ~emit
                in
                (s, lo, hi, order))
          in
          check bool_c (label ^ ": run bounded") true (elapsed < 30.0);
          check int_c
            (label ^ ": every shard emitted")
            summary.Coordinator.stream.Confidence.shards
            (List.length !order);
          check bool_c (label ^ ": emitted in plan order") true
            (List.rev !order = List.init (List.length !order) Fun.id);
          assert_sound label w sets lo hi)
        (List.concat_map
           (fun site -> List.map (fun m -> (site, m)) modes)
           [ "distrib.send"; "distrib.recv" ]
        |> shuffle (Rng.create ~seed:2027));
      clear_all ();
      (* disarmed, the distributed run reproduces the sequential bits *)
      let emit, est, lo, hi, tr, _ = collector n in
      let s =
        Coordinator.run ~options:opts ~workers:2 ~spawn (Rng.create ~seed:dseed)
          w sets ~eps ~delta ~emit
      in
      check bool_c "fault-free run complete" true
        s.Coordinator.stream.Confidence.stream_complete;
      check_same "fault-free distributed bits" (est, lo, hi, tr) reference)

let () =
  Alcotest.run "chaos"
    [
      ( "serve",
        [
          Alcotest.test_case "soak: sites x modes, daemon survives" `Quick
            test_serve_soak;
          Alcotest.test_case "overload sheds typed Busy" `Quick
            test_shed_at_cap;
          Alcotest.test_case "idle sessions reaped" `Quick test_idle_reap;
          Alcotest.test_case "watchdog reaps wedged sessions" `Quick
            test_watchdog_reaps_wedged;
        ] );
      ( "distrib",
        [
          Alcotest.test_case "soak: transport modes, shards always emitted"
            `Quick test_distrib_soak;
        ] );
    ]
