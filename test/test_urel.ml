(* Tests for the U-relational representation system (Section 3): W tables,
   partial assignments, the parsimonious translation, exact confidence and
   the completeness theorem (3.1). *)

open Pqdb_relational
open Pqdb_urel
module V = Value
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Pdb = Pqdb_worlds.Pdb

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let q_testable = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* W table                                                             *)
(* ------------------------------------------------------------------ *)

let test_wtable_basics () =
  let w = Wtable.create () in
  let x = Wtable.add_var ~name:"c" w [ Q.of_ints 2 3; Q.of_ints 1 3 ] in
  let y = Wtable.add_var w [ Q.half; Q.half ] in
  check int_c "two vars" 2 (Wtable.var_count w);
  check int_c "domain" 2 (Wtable.domain_size w x);
  check q_testable "prob" (Q.of_ints 2 3) (Wtable.prob w x 0);
  check (Alcotest.float 1e-12) "prob_float" 0.5 (Wtable.prob_float w y 1);
  check int_c "world count" 4 (Wtable.world_count w);
  check Alcotest.string "name" "c" (Wtable.name w x)

let test_wtable_validation () =
  let module E = Pqdb_runtime.Pqdb_error in
  let w = Wtable.create () in
  let expect_invalid name detail thunk =
    Alcotest.check_raises name
      (E.Error (Invalid_probability { context = "Wtable.add_var"; detail }))
      (fun () -> ignore (thunk ()))
  in
  expect_invalid "must sum to 1" "probabilities must sum to 1" (fun () ->
      Wtable.add_var w [ Q.half; Q.of_ints 1 3 ]);
  expect_invalid "positive" "probabilities must be positive" (fun () ->
      Wtable.add_var w [ Q.one; Q.zero ]);
  expect_invalid "at most 1" "probabilities must be at most 1" (fun () ->
      Wtable.add_var w [ Q.of_ints 3 2; Q.of_ints (-1) 2 ]);
  expect_invalid "non-empty" "empty distribution" (fun () ->
      Wtable.add_var w [])

(* ------------------------------------------------------------------ *)
(* Assignments                                                         *)
(* ------------------------------------------------------------------ *)

let test_assignment_union () =
  let a = Assignment.of_list [ (0, 1); (2, 0) ] in
  let b = Assignment.of_list [ (1, 1); (2, 0) ] in
  (match Assignment.union a b with
  | Some u ->
      check int_c "merged size" 3 (Assignment.cardinal u);
      check bool_c "consistent" true (Assignment.consistent a b)
  | None -> Alcotest.fail "expected consistent union");
  let c = Assignment.of_list [ (2, 1) ] in
  check bool_c "conflict detected" false (Assignment.consistent a c);
  check bool_c "union None on conflict" true (Assignment.union a c = None)

let test_assignment_weight () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 2 3; Q.of_ints 1 3 ] in
  let y = Wtable.add_var w [ Q.half; Q.half ] in
  let a = Assignment.of_list [ (x, 0); (y, 1) ] in
  check q_testable "weight 2/3 * 1/2" (Q.of_ints 1 3) (Assignment.weight w a);
  check (Alcotest.float 1e-12) "float weight" (1. /. 3.)
    (Assignment.weight_float w a);
  check q_testable "empty weight is 1" Q.one
    (Assignment.weight w Assignment.empty)

let assignment_gen =
  QCheck.map
    (fun pairs ->
      (* Deduplicate variables to respect the invariant. *)
      let seen = Hashtbl.create 8 in
      let pairs =
        List.filter
          (fun (v, _) ->
            if Hashtbl.mem seen v then false
            else begin
              Hashtbl.add seen v ();
              true
            end)
          pairs
      in
      Assignment.of_list pairs)
    (QCheck.small_list
       (QCheck.pair (QCheck.int_range 0 5) (QCheck.int_range 0 1)))

let prop_union_commutes =
  QCheck.Test.make ~name:"assignment union commutes" ~count:300
    (QCheck.pair assignment_gen assignment_gen) (fun (a, b) ->
      match (Assignment.union a b, Assignment.union b a) with
      | Some u, Some v -> Assignment.equal u v
      | None, None -> true
      | _ -> false)

let prop_union_extends =
  QCheck.Test.make ~name:"total extension of union extends both" ~count:300
    (QCheck.pair assignment_gen assignment_gen) (fun (a, b) ->
      match Assignment.union a b with
      | None -> QCheck.assume_fail ()
      | Some u ->
          let lookup v = Option.value ~default:0 (Assignment.value u v) in
          Assignment.extended_by lookup a && Assignment.extended_by lookup b)

(* ------------------------------------------------------------------ *)
(* The coin database as a U-relational database                        *)
(* ------------------------------------------------------------------ *)

let coins = Pqdb_workload.Scenarios.coins
let coin_udb = Pqdb_workload.Scenarios.coin_db

let test_repair_key_variable_elision () =
  (* Figure 1(b): repairing (CoinType, Toss) over Faces x Tosses creates
     variables only for the fair groups; the 2headed rows stay
     unconditional. *)
  let udb = coin_udb () in
  let w = Udb.wtable udb in
  let product =
    Translate.product (Udb.find udb "Faces") (Udb.find udb "Tosses")
  in
  let repaired =
    Translate.repair_key w ~key:[ "FCoinType"; "Toss" ] ~weight:"FProb" product
  in
  check int_c "two fresh variables" 2 (Wtable.var_count w);
  let unconditional =
    List.filter
      (fun (a, _) -> Assignment.is_empty a)
      (Urelation.rows repaired)
  in
  check int_c "2headed rows unconditional" 2 (List.length unconditional);
  check int_c "six representation rows" 6 (Urelation.size repaired)

let test_repair_key_decodes_to_ground_truth () =
  let udb = coin_udb () in
  let w = Udb.wtable udb in
  let repaired = Translate.repair_key w ~key:[] ~weight:"Count" (Udb.find udb "Coins") in
  let prel = Enumerate.decode w repaired in
  let expected = Pdb.repair_key ~key:[] ~weight:"Count" coins in
  check bool_c "decode matches Pdb.repair_key" true
    (Pdb.equal_prel prel expected)

(* ------------------------------------------------------------------ *)
(* Confidence: enumeration vs Shannon                                  *)
(* ------------------------------------------------------------------ *)

let random_wtable_and_clauses rng ~vars ~clauses ~max_len =
  let w = Wtable.create () in
  let ids =
    List.init vars (fun _ ->
        (* Random Bernoulli-ish distribution with rational weights. *)
        let num = 1 + Rng.int rng 9 in
        Wtable.add_var w [ Q.of_ints num 10; Q.of_ints (10 - num) 10 ])
  in
  let ids = Array.of_list ids in
  let clause () =
    let len = 1 + Rng.int rng max_len in
    let chosen = ref [] in
    for _ = 1 to len do
      let v = ids.(Rng.int rng (Array.length ids)) in
      if not (List.mem_assoc v !chosen) then
        chosen := (v, Rng.int rng 2) :: !chosen
    done;
    Assignment.of_list !chosen
  in
  (w, List.init clauses (fun _ -> clause ()))

let test_confidence_agreement () =
  let rng = Rng.create ~seed:2024 in
  for _ = 1 to 50 do
    let w, clauses = random_wtable_and_clauses rng ~vars:5 ~clauses:4 ~max_len:3 in
    let a = Confidence.by_enumeration w clauses in
    let b = Confidence.by_shannon w clauses in
    check q_testable "enumeration = shannon" a b
  done

let test_confidence_edge_cases () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  check q_testable "empty DNF" Q.zero (Confidence.exact w []);
  check q_testable "empty clause" Q.one
    (Confidence.exact w [ Assignment.empty ]);
  check q_testable "single literal" Q.half
    (Confidence.exact w [ Assignment.singleton x 0 ]);
  (* x=0 or x=1 covers everything *)
  check q_testable "exhaustive clauses" Q.one
    (Confidence.exact w
       [ Assignment.singleton x 0; Assignment.singleton x 1 ])

let test_confidence_independent_or () =
  (* Two independent coin flips: P(x=1 or y=1) = 3/4. *)
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let y = Wtable.add_var w [ Q.half; Q.half ] in
  check q_testable "3/4" (Q.of_ints 3 4)
    (Confidence.exact w
       [ Assignment.singleton x 1; Assignment.singleton y 1 ])

(* ------------------------------------------------------------------ *)
(* Theorem 3.1: completeness of the representation                     *)
(* ------------------------------------------------------------------ *)

let test_of_pdb_roundtrip () =
  let r1 = Relation.of_rows [ "A" ] [ [ V.Int 1 ] ] in
  let r2 = Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Int 2 ] ] in
  let r3 = Relation.of_rows [ "A" ] [] in
  let s = Relation.of_rows [ "B" ] [ [ V.Str "k" ] ] in
  let pdb =
    Pdb.of_worlds ~complete:[ "S" ]
      [
        ([ ("R", r1); ("S", s) ], Q.of_ints 1 2);
        ([ ("R", r2); ("S", s) ], Q.of_ints 1 3);
        ([ ("R", r3); ("S", s) ], Q.of_ints 1 6);
      ]
  in
  let udb = Enumerate.of_pdb pdb in
  let back = Enumerate.to_pdb udb in
  (* The roundtrip must preserve tuple confidences and world structure. *)
  let q_r = Pqdb_ast.Ua.table "R" in
  let confs_orig = Pqdb_worlds.Eval_naive.eval_confidence pdb q_r in
  let confs_back = Pqdb_worlds.Eval_naive.eval_confidence back q_r in
  check int_c "same tuple count" (List.length confs_orig)
    (List.length confs_back);
  List.iter
    (fun (t, p) ->
      let p' =
        List.fold_left
          (fun acc (t', p') -> if Tuple.equal t t' then p' else acc)
          Q.zero confs_back
      in
      check q_testable "confidence preserved" p p')
    confs_orig

(* ------------------------------------------------------------------ *)
(* Translation agreement with possible-worlds semantics                *)
(* ------------------------------------------------------------------ *)

let decode_confidences udb u =
  Pdb.confidence (Enumerate.decode (Udb.wtable udb) u)

let test_translation_product_join_agree () =
  let udb = coin_udb () in
  let w = Udb.wtable udb in
  let r =
    Translate.project_attrs [ "CoinType" ]
      (Translate.repair_key w ~key:[] ~weight:"Count" (Udb.find udb "Coins"))
  in
  (* Join R with itself: same variable, consistent conditions only. *)
  let j = Translate.join r r in
  check int_c "self-join keeps two rows" 2 (Urelation.size j);
  (* Product with a renamed copy keeps only consistent pairs (again 2). *)
  let j2 = Translate.product r (Translate.rename [ ("CoinType", "C2") ] r) in
  check int_c "self-product consistent pairs" 2 (Urelation.size j2);
  let confs = decode_confidences udb j in
  List.iter
    (fun (t, p) ->
      match Tuple.get t 0 with
      | V.Str "fair" -> check q_testable "fair" (Q.of_ints 2 3) p
      | V.Str "2headed" -> check q_testable "2headed" (Q.of_ints 1 3) p
      | _ -> Alcotest.fail "unexpected")
    confs

let test_translation_union_select () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let schema = Schema.of_list [ "A" ] in
  let u1 =
    Urelation.make schema
      [ (Assignment.singleton x 0, Tuple.of_list [ V.Int 1 ]) ]
  in
  let u2 =
    Urelation.make schema
      [ (Assignment.singleton x 1, Tuple.of_list [ V.Int 1 ]) ]
  in
  let union = Translate.union u1 u2 in
  check q_testable "P(1 in union) = 1" Q.one
    (Confidence.exact w (Urelation.clauses_for union (Tuple.of_list [ V.Int 1 ])));
  let sel = Translate.select Predicate.(Expr.attr "A" = Expr.int 2) union in
  check bool_c "selection removes all" true (Urelation.is_empty sel)

let test_diff_complete () =
  let a = Urelation.of_relation (Relation.of_rows [ "A" ] [ [ V.Int 1 ]; [ V.Int 2 ] ]) in
  let b = Urelation.of_relation (Relation.of_rows [ "A" ] [ [ V.Int 2 ] ]) in
  let d = Translate.diff_complete a b in
  check int_c "one row" 1 (Urelation.size d);
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let uncertain =
    Urelation.make (Schema.of_list [ "A" ])
      [ (Assignment.singleton x 0, Tuple.of_list [ V.Int 1 ]) ]
  in
  Alcotest.check_raises "uncertain diff rejected"
    (Invalid_argument "Translate.diff_complete: arguments must be complete")
    (fun () -> ignore (Translate.diff_complete uncertain b))

(* ------------------------------------------------------------------ *)
(* Additional assignment / wtable / urelation behaviours               *)
(* ------------------------------------------------------------------ *)

let test_assignment_restrict_remove () =
  let a = Assignment.of_list [ (0, 1); (1, 0); (3, 1) ] in
  check int_c "restrict keeps listed vars" 2
    (Assignment.cardinal (Assignment.restrict a [ 0; 3 ]));
  check int_c "remove drops one var" 2
    (Assignment.cardinal (Assignment.remove a 1));
  check bool_c "remove absent var is identity" true
    (Assignment.equal a (Assignment.remove a 9));
  check bool_c "empty extended by anything" true
    (Assignment.extended_by (fun _ -> 0) Assignment.empty)

let test_assignment_duplicate_rejected () =
  Alcotest.check_raises "duplicate var"
    (Invalid_argument "Assignment.of_list: duplicate variable") (fun () ->
      ignore (Assignment.of_list [ (1, 0); (1, 1) ]))

let test_assignment_to_string_names () =
  let w = Wtable.create () in
  let x = Wtable.add_var ~name:"coin" w [ Q.half; Q.half ] in
  check Alcotest.string "named rendering" "{coin=1}"
    (Assignment.to_string w (Assignment.singleton x 1));
  check Alcotest.string "empty" "{}" (Assignment.to_string w Assignment.empty)

let test_wtable_to_relation () =
  let w = Wtable.create () in
  let _ = Wtable.add_var ~name:"c" w [ Q.of_ints 2 3; Q.of_ints 1 3 ] in
  let rel = Wtable.to_relation w in
  check int_c "two rows" 2 (Relation.cardinality rel);
  check bool_c "row content" true
    (Relation.mem rel
       (Tuple.of_list [ V.Str "c"; V.Int 0; V.rat (Q.of_ints 2 3) ]))

let test_urelation_filter_and_variables () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let y = Wtable.add_var w [ Q.half; Q.half ] in
  let u =
    Urelation.make (Schema.of_list [ "A" ])
      [
        (Assignment.singleton y 0, Tuple.of_list [ V.Int 1 ]);
        (Assignment.singleton x 1, Tuple.of_list [ V.Int 2 ]);
      ]
  in
  check (Alcotest.list int_c) "variables sorted" [ x; y ]
    (Urelation.variables u);
  let f = Urelation.filter (fun (_, t) -> Tuple.get t 0 = V.Int 1) u in
  check int_c "filtered" 1 (Urelation.size f);
  check bool_c "complete rep detection" false (Urelation.is_complete_rep u)

let test_urelation_arity_mismatch () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Urelation: tuple arity does not match schema")
    (fun () ->
      ignore
        (Urelation.make (Schema.of_list [ "A"; "B" ])
           [ (Assignment.empty, Tuple.of_list [ V.Int 1 ]) ]))

(* ------------------------------------------------------------------ *)
(* Confidence properties                                               *)
(* ------------------------------------------------------------------ *)

let dnf_case_gen =
  (* (seed) -> random small wtable + clause list, built deterministically *)
  QCheck.int_range 0 100_000

let build_case seed =
  let rng = Rng.create ~seed in
  random_wtable_and_clauses rng ~vars:4 ~clauses:3 ~max_len:2

let prop_confidence_is_probability =
  QCheck.Test.make ~name:"confidence lies in [0, 1]" ~count:200 dnf_case_gen
    (fun seed ->
      let w, clauses = build_case seed in
      Q.is_proper_probability (Confidence.exact w clauses))

let prop_confidence_monotone_in_clauses =
  QCheck.Test.make ~name:"adding a clause never lowers confidence" ~count:200
    dnf_case_gen (fun seed ->
      let w, clauses = build_case seed in
      match clauses with
      | [] -> true
      | _ :: rest ->
          Q.compare (Confidence.exact w rest) (Confidence.exact w clauses)
          <= 0)

let prop_enumeration_equals_shannon =
  QCheck.Test.make ~name:"enumeration = shannon (qcheck)" ~count:150
    dnf_case_gen (fun seed ->
      let w, clauses = build_case seed in
      Q.equal (Confidence.by_enumeration w clauses)
        (Confidence.by_shannon w clauses))

let prop_float_shannon_close =
  QCheck.Test.make ~name:"float shannon within 1e-9 of exact" ~count:150
    dnf_case_gen (fun seed ->
      let w, clauses = build_case seed in
      let exact = Q.to_float (Confidence.by_shannon w clauses) in
      Float.abs (Confidence.by_shannon_float w clauses -. exact) < 1e-9)

let test_total_assignments_weights () =
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.of_ints 1 3; Q.of_ints 2 3 ] in
  let y = Wtable.add_var w [ Q.half; Q.half ] in
  let assignments = Enumerate.total_assignments w [ x; y ] in
  check int_c "four worlds" 4 (List.length assignments);
  check q_testable "weights sum to 1" Q.one
    (Q.sum (List.map snd assignments))

(* decode (select_p u) = per-world select_p (decode u): the parsimonious
   translation commutes with the semantics. *)
let prop_select_commutes_with_decode =
  QCheck.Test.make ~name:"select commutes with decode" ~count:100
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create ~seed in
      let w = Wtable.create () in
      let u =
        Pqdb_workload.Gen.tuple_independent rng w ~attrs:[ "A" ] ~rows:4
          ~domain:3
      in
      let pred = Predicate.(Expr.attr "A" >= Expr.int 1) in
      let lhs = Enumerate.decode w (Translate.select pred u) in
      let rhs =
        Pdb.normalize_prel
          (List.map
             (fun (rel, p) -> (Algebra.select pred rel, p))
             (Enumerate.decode w u))
      in
      Pdb.equal_prel lhs rhs)

let prop_project_commutes_with_decode =
  QCheck.Test.make ~name:"project commutes with decode" ~count:100
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Rng.create ~seed in
      let w = Wtable.create () in
      let u =
        Pqdb_workload.Gen.tuple_independent rng w ~attrs:[ "A"; "B" ] ~rows:4
          ~domain:3
      in
      let lhs = Enumerate.decode w (Translate.project_attrs [ "A" ] u) in
      let rhs =
        Pdb.normalize_prel
          (List.map
             (fun (rel, p) -> (Algebra.project_attrs [ "A" ] rel, p))
             (Enumerate.decode w u))
      in
      Pdb.equal_prel lhs rhs)

(* ------------------------------------------------------------------ *)
(* Hash join vs nested-loop reference                                  *)
(* ------------------------------------------------------------------ *)

(* The textbook O(|a|·|b|) join, kept as the semantic reference for
   Translate.join's hash implementation. *)
let nested_loop_join a b =
  let sa = Urelation.schema a and sb = Urelation.schema b in
  let shared = Schema.common sa sb in
  let sb_only =
    List.filter (fun x -> not (List.mem x shared)) (Schema.attributes sb)
  in
  let out_schema = Schema.of_list (Schema.attributes sa @ sb_only) in
  let sa_shared = List.map (Schema.index sa) shared in
  let sb_shared = List.map (Schema.index sb) shared in
  let sb_only_pos = List.map (Schema.index sb) sb_only in
  let rows =
    List.concat_map
      (fun (fa, ta) ->
        List.filter_map
          (fun (fb, tb) ->
            if
              Tuple.equal (Tuple.project ta sa_shared)
                (Tuple.project tb sb_shared)
            then
              match Assignment.union fa fb with
              | Some f ->
                  Some (f, Tuple.concat ta (Tuple.project tb sb_only_pos))
              | None -> None
            else None)
          (Urelation.rows b))
      (Urelation.rows a)
  in
  Urelation.make out_schema rows

let same_urelation got expected =
  Schema.attributes (Urelation.schema got)
  = Schema.attributes (Urelation.schema expected)
  && Urelation.size got = Urelation.size expected
  && List.for_all2
       (fun (f1, t1) (f2, t2) -> Assignment.equal f1 f2 && Tuple.equal t1 t2)
       (Urelation.rows got) (Urelation.rows expected)

let prop_hash_join_equals_nested_loop =
  QCheck.Test.make ~name:"hash join = nested-loop join (random U-relations)"
    ~count:60 (QCheck.int_range 0 100_000) (fun seed ->
      let rng = Rng.create ~seed in
      let w = Wtable.create () in
      let a =
        Pqdb_workload.Gen.tuple_independent rng w ~attrs:[ "A"; "B" ]
          ~rows:(3 + Rng.int rng 6) ~domain:3
      in
      let b =
        Pqdb_workload.Gen.tuple_independent rng w ~attrs:[ "B"; "C" ]
          ~rows:(3 + Rng.int rng 6) ~domain:3
      in
      same_urelation (Translate.join a b) (nested_loop_join a b)
      (* Self-joins exercise the same-variable consistency path. *)
      && same_urelation (Translate.join a a) (nested_loop_join a a))

let test_join_cross_type_keys () =
  (* Value.equal is numeric across representations (Rat 1/2 = Float 0.5),
     so a join keyed on those values must match them even though they print
     differently — the regression that broke the old string-keyed index. *)
  let w = Wtable.create () in
  let x = Wtable.add_var w [ Q.half; Q.half ] in
  let a =
    Urelation.make
      (Schema.of_list [ "K"; "A" ])
      [
        (Assignment.singleton x 0, Tuple.of_list [ V.Float 0.5; V.Int 1 ]);
        (Assignment.empty, Tuple.of_list [ V.Int 2; V.Int 7 ]);
      ]
  in
  let b =
    Urelation.make
      (Schema.of_list [ "K"; "B" ])
      [
        (Assignment.singleton x 1, Tuple.of_list [ V.rat Q.half; V.Int 3 ]);
        (Assignment.empty, Tuple.of_list [ V.rat Q.half; V.Int 4 ]);
        (Assignment.empty, Tuple.of_list [ V.Float 2.; V.Int 8 ]);
      ]
  in
  let j = Translate.join a b in
  check bool_c "matches nested-loop reference" true
    (same_urelation j (nested_loop_join a b));
  (* Float 0.5 must meet Rat 1/2: one pair is condition-inconsistent
     (x=0 vs x=1), one survives; Int 2 meets Float 2. *)
  check int_c "cross-type keys matched" 2 (Urelation.size j)

(* ------------------------------------------------------------------ *)
(* Persistence                                                          *)
(* ------------------------------------------------------------------ *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqdb_test_%d" (Hashtbl.hash (Sys.time ())))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_udb_io_roundtrip () =
  with_temp_dir (fun dir ->
      (* A database mixing complete and uncertain relations, with tricky
         values (strings that look like numbers, rationals). *)
      let udb = coin_udb () in
      let u =
        Pqdb.Eval_exact.eval udb
          (Pqdb_ast.Ua.project [ "CoinType" ]
             (Pqdb_ast.Ua.repair_key ~key:[] ~weight:"Count"
                (Pqdb_ast.Ua.table "Coins")))
      in
      Udb.add_urelation udb "R" u;
      Udb_io.save dir udb;
      let back = Udb_io.load dir in
      check (Alcotest.list Alcotest.string) "names preserved"
        (Udb.names udb) (Udb.names back);
      List.iter
        (fun name ->
          check bool_c
            ("complete flag for " ^ name)
            (Udb.is_complete udb name)
            (Udb.is_complete back name);
          let a = Udb.find udb name and b = Udb.find back name in
          check int_c ("size of " ^ name) (Urelation.size a)
            (Urelation.size b))
        (Udb.names udb);
      (* Confidences survive: the W table and conditions are intact. *)
      let conf_orig =
        Confidence.all_confidences (Udb.wtable udb) (Udb.find udb "R")
      in
      let conf_back =
        Confidence.all_confidences (Udb.wtable back) (Udb.find back "R")
      in
      List.iter2
        (fun (t, p) (t', p') ->
          check bool_c "tuple" true (Tuple.equal t t');
          check q_testable "confidence" p p')
        conf_orig conf_back)

let test_udb_io_queryable_after_load () =
  with_temp_dir (fun dir ->
      let udb = coin_udb () in
      Udb_io.save dir udb;
      let back = Udb_io.load dir in
      (* Run the whole Example 2.2 pipeline on the reloaded database. *)
      let q = Pqdb_workload.Scenarios.coin_queries in
      let u =
        Pqdb.Eval_exact.eval_relation back q.Pqdb_workload.Scenarios.u
      in
      check int_c "posterior rows" 2 (Relation.cardinality u))

let test_udb_io_failure_injection () =
  with_temp_dir (fun dir ->
      let udb = coin_udb () in
      Udb_io.save dir udb;
      (* Corrupt a condition atom. *)
      let rel_path = Filename.concat dir "rel_Coins.csv" in
      let oc = open_out rel_path in
      output_string oc "D,CoinType,Count\nnot-a-condition,fair,2\n";
      close_out oc;
      check bool_c "bad condition rejected" true
        (try
           ignore (Udb_io.load dir);
           false
         with
        | Pqdb_runtime.Pqdb_error.Error (Malformed_input { source; _ }) ->
            source = rel_path);
      (* Missing relation file referenced by the manifest. *)
      Sys.remove rel_path;
      check bool_c "missing relation file" true
        (try
           ignore (Udb_io.load dir);
           false
         with Pqdb_runtime.Pqdb_error.Error (Malformed_input _) -> true))

let test_udb_io_sparse_var_ids_rejected () =
  with_temp_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let write name body =
        let oc = open_out (Filename.concat dir name) in
        output_string oc body;
        close_out oc
      in
      (* Variable id 1 with no id 0: not dense. *)
      write "wtable.csv" "Var,Name,Dom,P\n1,x,0,1/2\n1,x,1,1/2\n";
      write "manifest.csv" "Ord,Name,Complete\n0,R,false\n";
      write "rel_R.csv" "D,A\nx1=0,1\n";
      check bool_c "sparse ids rejected" true
        (try
           ignore (Udb_io.load dir);
           false
         with Pqdb_runtime.Pqdb_error.Error (Malformed_input _) -> true))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "urel"
    [
      ( "wtable",
        [
          Alcotest.test_case "basics" `Quick test_wtable_basics;
          Alcotest.test_case "validation" `Quick test_wtable_validation;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "union/consistency" `Quick test_assignment_union;
          Alcotest.test_case "weights" `Quick test_assignment_weight;
          qcheck prop_union_commutes;
          qcheck prop_union_extends;
        ] );
      ( "repair-key",
        [
          Alcotest.test_case "variable elision (Fig 1b)" `Quick
            test_repair_key_variable_elision;
          Alcotest.test_case "decodes to ground truth" `Quick
            test_repair_key_decodes_to_ground_truth;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "enumeration = shannon (random)" `Quick
            test_confidence_agreement;
          Alcotest.test_case "edge cases" `Quick test_confidence_edge_cases;
          Alcotest.test_case "independent or" `Quick
            test_confidence_independent_or;
        ] );
      ( "theorem 3.1",
        [ Alcotest.test_case "of_pdb roundtrip" `Quick test_of_pdb_roundtrip ]
      );
      ( "more behaviours",
        [
          Alcotest.test_case "assignment restrict/remove" `Quick
            test_assignment_restrict_remove;
          Alcotest.test_case "assignment duplicates" `Quick
            test_assignment_duplicate_rejected;
          Alcotest.test_case "assignment names" `Quick
            test_assignment_to_string_names;
          Alcotest.test_case "wtable rendering" `Quick test_wtable_to_relation;
          Alcotest.test_case "urelation filter/variables" `Quick
            test_urelation_filter_and_variables;
          Alcotest.test_case "urelation arity check" `Quick
            test_urelation_arity_mismatch;
          Alcotest.test_case "total assignment weights" `Quick
            test_total_assignments_weights;
          qcheck prop_confidence_is_probability;
          qcheck prop_confidence_monotone_in_clauses;
          qcheck prop_enumeration_equals_shannon;
          qcheck prop_float_shannon_close;
          qcheck prop_select_commutes_with_decode;
          qcheck prop_project_commutes_with_decode;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load roundtrip" `Quick
            test_udb_io_roundtrip;
          Alcotest.test_case "queryable after load" `Quick
            test_udb_io_queryable_after_load;
          Alcotest.test_case "failure injection" `Quick
            test_udb_io_failure_injection;
          Alcotest.test_case "sparse variable ids" `Quick
            test_udb_io_sparse_var_ids_rejected;
        ] );
      ( "translation",
        [
          Alcotest.test_case "product/join consistency" `Quick
            test_translation_product_join_agree;
          Alcotest.test_case "union/select" `Quick
            test_translation_union_select;
          Alcotest.test_case "difference on complete" `Quick
            test_diff_complete;
          Alcotest.test_case "cross-type join keys" `Quick
            test_join_cross_type_keys;
          qcheck prop_hash_join_equals_nested_loop;
        ] );
    ]
