(* Conditioning subsystem tests: conditioned confidences cross-checked
   against brute-force world enumeration, the Pr(c)=0 typed error, the
   constraint-equivalent-to-true edge case, ratio/difference error
   propagation, ASSERT parser round-trips, and the constraint-salted Memo
   keys (a stale unconditioned cache hit must never answer a conditioned
   query). *)

open Pqdb_relational
open Pqdb_urel
module V = Value
module Q = Pqdb_numeric.Rational
module Rng = Pqdb_numeric.Rng
module Interval = Pqdb_numeric.Interval
module Ua = Pqdb_ast.Ua
module Uconstraint = Pqdb_ast.Uconstraint
module Pdb = Pqdb_worlds.Pdb
module Naive = Pqdb_worlds.Eval_naive
module Memo = Pqdb_montecarlo.Memo
module Compile = Pqdb_montecarlo.Compile
module Cset = Pqdb_conditioning.Constraint_set
module Condition = Pqdb_conditioning.Condition
module Pqdb_error = Pqdb_runtime.Pqdb_error
module Qparser = Pqdb_lang.Qparser
module Pretty = Pqdb_lang.Pretty

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string
let q_testable = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Fixtures.                                                           *)

(* Dirty person table: three independently-present tuples, two of which
   collide on the key Id — the Example 2.2-style dedup scenario. *)
let dirty_db ?(p_ann = Q.half) ?(p_anne = Q.half) ?(p_bob = Q.half) () =
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  let schema = Schema.of_list [ "Id"; "Name" ] in
  let tuple_var p = Wtable.add_var w [ Q.sub Q.one p; p ] in
  let rows =
    List.map
      (fun (p, vals) ->
        (Assignment.singleton (tuple_var p) 1, Tuple.of_list vals))
      [
        (p_ann, [ V.Int 1; V.Str "ann" ]);
        (p_anne, [ V.Int 1; V.Str "anne" ]);
        (p_bob, [ V.Int 2; V.Str "bob" ]);
      ]
  in
  Udb.add_urelation udb "R" (Urelation.make schema rows);
  udb

let fd_id_name = Uconstraint.Fd { table = "R"; key = [ "Id" ]; determined = [ "Name" ] }

(* ------------------------------------------------------------------ *)
(* Brute-force ground truth: enumerate every world of the U-relational
   database, keep those satisfying the constraint set, renormalize.      *)

let world_eval world q =
  match Naive.eval (Pdb.of_complete world) q with
  | [ (rel, _) ] -> rel
  | _ -> assert false

let world_satisfies world c =
  match c with
  | Uconstraint.Holds q -> not (Relation.is_empty (world_eval world q))
  | Uconstraint.Denial q -> Relation.is_empty (world_eval world q)
  | Uconstraint.Fd { table; key; determined } ->
      let attrs = Schema.attributes (Relation.schema (Pdb.find world table)) in
      Relation.is_empty
        (world_eval world
           (Pqdb.Egd.fd_violation ~table ~attrs ~key ~determined))

let naive_conditioned udb constraints q =
  let pdb = Enumerate.to_pdb udb in
  let num : (Tuple.t, Q.t) Hashtbl.t = Hashtbl.create 16 in
  let den = ref Q.zero in
  List.iter
    (fun (world, p) ->
      if List.for_all (world_satisfies world) constraints then begin
        den := Q.add !den p;
        Relation.iter
          (fun t ->
            let prev =
              Option.value (Hashtbl.find_opt num t) ~default:Q.zero
            in
            Hashtbl.replace num t (Q.add prev p))
          (world_eval world q)
      end)
    (Pdb.worlds pdb);
  (!den, fun t -> Q.div (Option.value (Hashtbl.find_opt num t) ~default:Q.zero) !den)

(* ------------------------------------------------------------------ *)
(* Exact conditioned confidences = naive enumeration.                   *)

let check_exact_matches_naive udb constraints q =
  let set = Cset.of_list constraints in
  let compiled = Condition.compile udb set in
  let got = Condition.exact_confidences udb compiled q in
  let den, truth = naive_conditioned udb constraints q in
  check bool_c "fixture has Pr(c) > 0" true (not (Q.is_zero den));
  check q_testable "Pr(c) matches enumeration" den
    (Condition.probability (Udb.wtable udb) compiled);
  check bool_c "some possible tuple" true (got <> []);
  List.iter
    (fun (t, p) -> check q_testable "conditioned confidence" (truth t) p)
    got

let test_exact_fd_dedup () =
  let udb = dirty_db () in
  check_exact_matches_naive udb [ fd_id_name ] (Ua.table "R");
  (* Hand numbers: P(ann | no Id-collision) = (1/4)/(3/4) = 1/3, bob 1/2. *)
  let compiled = Condition.compile udb (Cset.of_list [ fd_id_name ]) in
  let confs = Condition.exact_confidences udb compiled (Ua.table "R") in
  let find name =
    let t =
      Tuple.of_list [ V.Int (if name = "bob" then 2 else 1); V.Str name ]
    in
    snd (List.find (fun (t', _) -> Tuple.equal t t') confs)
  in
  check q_testable "ann renormalized" (Q.of_ints 1 3) (find "ann");
  check q_testable "anne renormalized" (Q.of_ints 1 3) (find "anne");
  check q_testable "bob renormalized" Q.half (find "bob")

let test_exact_holds_and_denial () =
  let udb = dirty_db ~p_ann:(Q.of_ints 3 10) ~p_anne:(Q.of_ints 1 5)
      ~p_bob:(Q.of_ints 2 5) () in
  let nonempty = Uconstraint.Holds (Ua.table "R") in
  let no_bob =
    Uconstraint.Denial
      (Ua.select Predicate.(Expr.attr "Name" = Expr.const (V.Str "bob"))
         (Ua.table "R"))
  in
  check_exact_matches_naive udb [ nonempty ] (Ua.table "R");
  check_exact_matches_naive udb [ no_bob ] (Ua.table "R");
  check_exact_matches_naive udb [ nonempty; no_bob; fd_id_name ]
    (Ua.table "R")

let test_exact_constraint_equivalent_to_true () =
  let udb = dirty_db () in
  (* empty(select[false](R)) never has answers: conditioning on it is the
     identity, and the compiled form recognizes triviality of V. *)
  let trivially_true =
    Uconstraint.Denial (Ua.select Predicate.False (Ua.table "R"))
  in
  let compiled = Condition.compile udb (Cset.of_list [ trivially_true ]) in
  check q_testable "Pr(c) = 1" Q.one
    (Condition.probability (Udb.wtable udb) compiled);
  let unconditioned = Pqdb.Eval_exact.confidences udb (Ua.table "R") in
  let conditioned = Condition.exact_confidences udb compiled (Ua.table "R") in
  List.iter2
    (fun (t, p) (t', p') ->
      check bool_c "same tuple" true (Tuple.equal t t');
      check q_testable "conditioning on truth is the identity" p p')
    unconditioned conditioned

let test_pr_zero_is_typed () =
  let udb = dirty_db () in
  let impossible = Uconstraint.Holds (Ua.select Predicate.False (Ua.table "R")) in
  let compiled = Condition.compile udb (Cset.of_list [ impossible ]) in
  check q_testable "Pr(c) = 0" Q.zero
    (Condition.probability (Udb.wtable udb) compiled);
  let expect_unsat f =
    match f () with
    | _ -> Alcotest.fail "expected Unsatisfiable_condition"
    | exception Pqdb_error.Error (Pqdb_error.Unsatisfiable_condition _) -> ()
  in
  expect_unsat (fun () -> Condition.exact_confidences udb compiled (Ua.table "R"));
  expect_unsat (fun () ->
      Condition.approx_confidences udb compiled (Ua.table "R"));
  (* A contradictory pair: R must be nonempty and empty. *)
  let contradiction =
    Cset.of_list
      [ Uconstraint.Holds (Ua.table "R"); Uconstraint.Denial (Ua.table "R") ]
  in
  let compiled = Condition.compile udb contradiction in
  expect_unsat (fun () ->
      Condition.exact_confidences udb compiled (Ua.table "R"))

(* ------------------------------------------------------------------ *)
(* Anytime path: naive truth inside the reported interval.              *)

let test_approx_within_interval () =
  let udb = dirty_db ~p_ann:(Q.of_ints 1 2) ~p_anne:(Q.of_ints 1 2)
      ~p_bob:(Q.of_ints 2 5) () in
  let constraints = [ fd_id_name; Uconstraint.Holds (Ua.table "R") ] in
  let compiled = Condition.compile udb (Cset.of_list constraints) in
  let estimates =
    Condition.approx_confidences ~seed:7 ~eps:0.05 ~delta:0.01 udb compiled
      (Ua.table "R")
  in
  let _den, truth = naive_conditioned udb constraints (Ua.table "R") in
  check bool_c "three possible tuples" true (List.length estimates = 3);
  List.iter
    (fun (t, e) ->
      let p = Q.to_float (truth t) in
      check bool_c "lo <= hi" true (e.Condition.lo <= e.Condition.hi);
      check bool_c "truth inside the reported interval" true
        (e.Condition.lo -. 1e-9 <= p && p <= e.Condition.hi +. 1e-9);
      check bool_c "value inside its own interval" true
        (e.Condition.lo <= e.Condition.value
        && e.Condition.value <= e.Condition.hi))
    estimates;
  (* This fixture's lineage is small enough to compile exactly: the bracket
     must be (numerically) a point and flagged exact. *)
  List.iter
    (fun (_, e) ->
      check bool_c "exact where possible" true e.Condition.exact;
      check int_c "no sampling spent" 0 e.Condition.trials)
    estimates

let test_approx_deterministic_per_seed () =
  let udb = dirty_db () in
  let compiled = Condition.compile udb (Cset.of_list [ fd_id_name ]) in
  let run () =
    List.map
      (fun (_, e) -> (e.Condition.value, e.Condition.lo, e.Condition.hi))
      (Condition.approx_confidences ~seed:13 udb compiled (Ua.table "R"))
  in
  check bool_c "same seed, same answer" true (run () = run ())

let test_topk_ranks_by_conditioned_probability () =
  (* Unconditioned, ann (0.5) outranks bob (0.4); under the FD the Id-1
     collision drags ann to 1/3 and bob must surface as top-1. *)
  let udb = dirty_db ~p_ann:Q.half ~p_anne:Q.half ~p_bob:(Q.of_ints 2 5) () in
  let compiled = Condition.compile udb (Cset.of_list [ fd_id_name ]) in
  match Condition.topk ~k:1 udb compiled (Ua.table "R") with
  | [ (t, _) ] ->
      check bool_c "bob is the conditioned top-1" true
        (Tuple.equal t (Tuple.of_list [ V.Int 2; V.Str "bob" ]))
  | other -> Alcotest.failf "expected 1 tuple, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Interval / Error_bound propagation rules.                            *)

let test_interval_difference_and_ratio () =
  let mk = Interval.make in
  let d = Interval.difference (mk 0.5 0.7) (mk 0.1 0.2) in
  check (Alcotest.float 1e-12) "difference lo" 0.3 d.Interval.lo;
  check (Alcotest.float 1e-12) "difference hi" 0.6 d.Interval.hi;
  let r = Interval.ratio ~num:(mk 0.2 0.3) ~den:(mk 0.4 0.5) in
  check (Alcotest.float 1e-12) "ratio lo" 0.4 r.Interval.lo;
  check (Alcotest.float 1e-12) "ratio hi" 0.75 r.Interval.hi;
  (* Negative numerator ends clamp at 0 (a probability difference). *)
  let r0 = Interval.ratio ~num:(mk (-0.1) 0.2) ~den:(mk 0.5 0.5) in
  check (Alcotest.float 1e-12) "clamped ratio lo" 0. r0.Interval.lo;
  (match Interval.ratio ~num:(mk 0.1 0.2) ~den:(mk 0. 0.5) with
  | _ -> Alcotest.fail "ratio must reject a denominator touching 0"
  | exception Invalid_argument _ -> ());
  let c = Interval.clamp ~lo:0. ~hi:1. (mk (-0.5) 1.5) in
  check (Alcotest.float 1e-12) "clamp lo" 0. c.Interval.lo;
  check (Alcotest.float 1e-12) "clamp hi" 1. c.Interval.hi

let test_error_bound_widens () =
  let module Eb = Pqdb.Error_bound in
  (* The egd difference Pr(φ) − Pr(φ ∧ ¬ψ): copying ε would be unsound. *)
  let eps = Eb.difference_eps ~p:0.6 ~eps_p:0.1 ~q:0.5 ~eps_q:0.1 in
  check (Alcotest.float 1e-9) "difference eps is the honest widening" 1.1 eps;
  check bool_c "wider than the inputs" true (eps > 0.1);
  check bool_c "vacuous when p <= q" true
    (Eb.difference_eps ~p:0.5 ~eps_p:0.1 ~q:0.5 ~eps_q:0.1 = Float.infinity);
  let r = Eb.ratio_eps ~eps_num:0.1 ~eps_den:0.1 in
  check (Alcotest.float 1e-9) "ratio eps" (0.2 /. 0.9) r;
  check bool_c "ratio eps exceeds both inputs" true (r > 0.1);
  check bool_c "vacuous denominator" true
    (Eb.ratio_eps ~eps_num:0.1 ~eps_den:1.0 = Float.infinity);
  (* Degenerate-safe: exact inputs propagate exactly. *)
  check (Alcotest.float 1e-12) "exact difference stays exact" 0.
    (Eb.difference_eps ~p:0.6 ~eps_p:0. ~q:0.5 ~eps_q:0.);
  check (Alcotest.float 1e-12) "exact ratio stays exact" 0.
    (Eb.ratio_eps ~eps_num:0. ~eps_den:0.)

(* ------------------------------------------------------------------ *)
(* Memo: the constraint-set salt must partition the cache.              *)

let test_memo_salt_partitions_cache () =
  let udb = dirty_db () in
  let w = Udb.wtable udb in
  let u = Udb.find udb "R" in
  let clauses =
    Urelation.clauses_for u (Tuple.of_list [ V.Int 1; V.Str "ann" ])
  in
  let compiled = Condition.compile udb (Cset.of_list [ fd_id_name ]) in
  let salt = Cset.fingerprint (Condition.constraints compiled) in
  check bool_c "nonempty fingerprint" true (salt <> "");
  check bool_c "salted fingerprint differs" true
    (Memo.fingerprint w clauses <> Memo.fingerprint ~salt w clauses);
  check string_c "empty salt is the unsalted key"
    (Memo.fingerprint w clauses)
    (Memo.fingerprint ~salt:"" w clauses);
  let memo = Memo.create ~entries:8 () in
  (* Warm the cache with the unconditioned tree for the same clauses. *)
  let plain = Memo.find_or_compile memo w clauses in
  let s1 = Memo.stats memo in
  check int_c "one cold compile" 1 s1.Memo.misses;
  (* The conditioned lookup must NOT be answered by the unconditioned
     entry: same clauses, different salt => a miss that builds the
     conjoined tree. *)
  check bool_c "conjoin with the trivial DNF is the identity" true
    (Condition.conjoin clauses [ Assignment.empty ] = clauses);
  let built = ref false in
  let conditioned =
    Memo.find_or_compile memo ~salt
      ~build:(fun () ->
        built := true;
        Compile.compile w clauses)
      w clauses
  in
  let s2 = Memo.stats memo in
  check bool_c "conditioned lookup was a miss" true
    (s2.Memo.misses = s1.Memo.misses + 1 && s2.Memo.hits = s1.Memo.hits);
  check bool_c "build ran" true !built;
  (* Warm conditioned lookup hits its own entry (and does not rebuild). *)
  built := false;
  let conditioned2 =
    Memo.find_or_compile memo ~salt ~build:(fun () -> built := true; plain)
      w clauses
  in
  check bool_c "warm conditioned lookup hits" true
    ((Memo.stats memo).Memo.hits = s2.Memo.hits + 1);
  check bool_c "hit did not rebuild" true (not !built);
  check bool_c "same tree on the warm path" true (conditioned == conditioned2)

(* End-to-end flavor of the same regression: a conditioned answer computed
   against a cache warmed by the unconditioned query must equal the
   cold-cache conditioned answer. *)
let test_memo_stale_hit_regression_end_to_end () =
  let udb = dirty_db () in
  let w = Udb.wtable udb in
  let compiled = Condition.compile udb (Cset.of_list [ fd_id_name ]) in
  let q = Ua.table "R" in
  let conditioned_with cache =
    List.map
      (fun (_, e) -> (e.Condition.value, e.Condition.lo, e.Condition.hi))
      (Condition.approx_confidences ?cache ~seed:5 udb compiled q)
  in
  let cold = conditioned_with None in
  let warmed = Memo.create () in
  (* Pollute with unconditioned entries for every tuple of R. *)
  List.iter
    (fun (_, clauses) -> ignore (Memo.find_or_compile warmed w clauses))
    (Urelation.clauses_by_tuple (Udb.find udb "R"));
  let via_warm = conditioned_with (Some warmed) in
  check bool_c "unconditioned warm entries cannot leak into a conditioned answer"
    true (cold = via_warm)

(* ------------------------------------------------------------------ *)
(* Parser / Pretty round trips for ASSERT.                              *)

let constraint_testable =
  Alcotest.testable Uconstraint.pp Uconstraint.equal

let test_constraint_round_trips () =
  let samples =
    [
      "fd[Id -> Name](R)";
      "fd[Id, City -> Name, Age](People)";
      "empty(select[Name = 'bob'](R))";
      "(project[Id](R) join S)";
      "(R)";
    ]
  in
  List.iter
    (fun text ->
      let c = Qparser.parse_constraint text in
      let printed = Pretty.constraint_to_string c in
      check constraint_testable
        (Printf.sprintf "round trip %S via %S" text printed)
        c
        (Qparser.parse_constraint printed))
    samples

let test_parse_program_full () =
  let p =
    Qparser.parse_program_full
      "let Clean = select[Id > 0](R);\n\
       assert fd[Id -> Name](R);\n\
       condition (Clean);\n\
       conf(Clean)"
  in
  check int_c "two constraints" 2 (List.length p.Qparser.constraints);
  (match p.Qparser.constraints with
  | [ Uconstraint.Fd { table = "R"; key = [ "Id" ]; determined = [ "Name" ] };
      Uconstraint.Holds _ ] ->
      ()
  | _ -> Alcotest.fail "unexpected constraint parse");
  check bool_c "final query present" true (p.Qparser.query <> None);
  check int_c "one view" 1 (List.length p.Qparser.views)

let test_parse_program_rejects_assert () =
  match Qparser.parse_program "assert fd[Id -> Name](R); conf(R)" with
  | _ -> Alcotest.fail "parse_program must not silently accept assert"
  | exception Qparser.Error _ -> ()

let test_parse_constraint_rejects_conf () =
  match Qparser.parse_constraint "(conf(R))" with
  | _ -> Alcotest.fail "constraints must be confidence-free"
  | exception Qparser.Error (msg, _) ->
      check bool_c "names the fragment" true
        (let lower = String.lowercase_ascii msg in
         String.length lower > 0)

let test_fingerprint_order_insensitive () =
  let a = Cset.of_list [ fd_id_name; Uconstraint.Holds (Ua.table "R") ] in
  let b = Cset.of_list [ Uconstraint.Holds (Ua.table "R"); fd_id_name ] in
  check string_c "order-insensitive fingerprint" (Cset.fingerprint a)
    (Cset.fingerprint b);
  check bool_c "sets equal" true (Cset.equal a b);
  check string_c "empty set fingerprints empty" "" (Cset.fingerprint Cset.empty);
  let dup = Cset.add a fd_id_name in
  check int_c "duplicates collapse" (Cset.cardinal a) (Cset.cardinal dup)

(* ------------------------------------------------------------------ *)
(* Serve: session-scoped assert/retract, conditioned conf, byte-identity. *)

module Server = Pqdb_serve.Server

let temp_counter = ref 0

let with_server f =
  incr temp_counter;
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pqdb_conditioning_%d_%d.udbb" (Unix.getpid ())
         !temp_counter)
  in
  Udb_io.save path (dirty_db ());
  let config =
    {
      Server.db_path = path;
      listen = Server.Tcp 1;
      cache_entries = 64;
      session_trials = None;
      session_deadline_s = None;
      io_timeout_s = None;
      idle_timeout_s = None;
      max_sessions = None;
      watchdog_s = None;
    }
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Server.create config))

let test_serve_conditioned_warm_cold () =
  with_server (fun srv ->
      let sess = Server.new_session () in
      let ack = Server.dispatch srv ~session:sess "assert fd[Id -> Name](R)" in
      check string_c "assert acked" "asserted; 1 active\n" ack;
      let cold = Server.dispatch srv ~session:sess "conf R" in
      let warm = Server.dispatch srv ~session:sess "conf R" in
      check string_c "warm conditioned reply is byte-identical" cold warm;
      check bool_c "three tuples in the reply" true
        (List.length
           (String.split_on_char '\n' cold |> List.filter (fun l -> l <> ""))
        = 3);
      (* A second session on the same daemon, asserting the same set, sees
         the same bytes (shared salted cache, per-session state). *)
      let sess2 = Server.new_session () in
      ignore (Server.dispatch srv ~session:sess2 "assert fd[Id -> Name](R)");
      check string_c "same constraint set, same bytes"
        cold
        (Server.dispatch srv ~session:sess2 "conf R"))

let test_serve_retract_restores_unconditioned () =
  with_server (fun srv ->
      let plain = Server.dispatch srv "conf R" in
      let sess = Server.new_session () in
      check string_c "fresh session is unconditioned" plain
        (Server.dispatch srv ~session:sess "conf R");
      ignore (Server.dispatch srv ~session:sess "assert fd[Id -> Name](R)");
      let conditioned = Server.dispatch srv ~session:sess "conf R" in
      check bool_c "conditioning changes the reply" true (conditioned <> plain);
      check string_c "retract acked" "retracted; 0 active\n"
        (Server.dispatch srv ~session:sess "retract");
      check string_c "retract restores the unconditioned bytes" plain
        (Server.dispatch srv ~session:sess "conf R"))

let test_serve_assert_errors () =
  with_server (fun srv ->
      let expect_failure ?session spec =
        match Server.dispatch srv ?session spec with
        | body -> Alcotest.failf "expected a failure for %S, got %S" spec body
        | exception Failure _ -> ()
      in
      expect_failure "assert fd[Id -> Name](R)";
      expect_failure "retract";
      let sess = Server.new_session () in
      expect_failure ~session:sess "assert";
      expect_failure ~session:sess "assert fd[Id -> ](R)";
      expect_failure ~session:sess "assert (conf(R))";
      (* Errors leave the session untouched: still unconditioned. *)
      check string_c "session survives bad asserts"
        (Server.dispatch srv "conf R")
        (Server.dispatch srv ~session:sess "conf R"))

let test_serve_unsatisfiable_is_typed () =
  with_server (fun srv ->
      let sess = Server.new_session () in
      ignore (Server.dispatch srv ~session:sess "assert (R)");
      ignore (Server.dispatch srv ~session:sess "assert empty(R)");
      match Server.dispatch srv ~session:sess "conf R" with
      | body -> Alcotest.failf "expected unsatisfiable, got %S" body
      | exception Pqdb_error.Error (Pqdb_error.Unsatisfiable_condition _) ->
          ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "conditioning"
    [
      ( "exact-vs-naive",
        [
          Alcotest.test_case "fd dedup" `Quick test_exact_fd_dedup;
          Alcotest.test_case "holds and denial" `Quick
            test_exact_holds_and_denial;
          Alcotest.test_case "constraint equivalent to true" `Quick
            test_exact_constraint_equivalent_to_true;
          Alcotest.test_case "Pr(c)=0 is typed" `Quick test_pr_zero_is_typed;
        ] );
      ( "anytime",
        [
          Alcotest.test_case "truth within reported interval" `Quick
            test_approx_within_interval;
          Alcotest.test_case "deterministic per seed" `Quick
            test_approx_deterministic_per_seed;
          Alcotest.test_case "topk ranks by conditioned probability" `Quick
            test_topk_ranks_by_conditioned_probability;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "interval difference and ratio" `Quick
            test_interval_difference_and_ratio;
          Alcotest.test_case "error bound widens" `Quick
            test_error_bound_widens;
        ] );
      ( "memo",
        [
          Alcotest.test_case "salt partitions cache" `Quick
            test_memo_salt_partitions_cache;
          Alcotest.test_case "stale-hit regression end to end" `Quick
            test_memo_stale_hit_regression_end_to_end;
        ] );
      ( "language",
        [
          Alcotest.test_case "constraint round trips" `Quick
            test_constraint_round_trips;
          Alcotest.test_case "parse_program_full" `Quick
            test_parse_program_full;
          Alcotest.test_case "parse_program rejects assert" `Quick
            test_parse_program_rejects_assert;
          Alcotest.test_case "constraints are confidence-free" `Quick
            test_parse_constraint_rejects_conf;
          Alcotest.test_case "fingerprint order-insensitive" `Quick
            test_fingerprint_order_insensitive;
        ] );
      ( "serve",
        [
          Alcotest.test_case "conditioned warm = cold" `Quick
            test_serve_conditioned_warm_cold;
          Alcotest.test_case "retract restores unconditioned bytes" `Quick
            test_serve_retract_restores_unconditioned;
          Alcotest.test_case "assert errors are contained" `Quick
            test_serve_assert_errors;
          Alcotest.test_case "unsatisfiable set is typed" `Quick
            test_serve_unsatisfiable_is_typed;
        ] );
    ]
