(* pqdb — command-line front end.

   Subcommands:
     run    evaluate a UA query/program over CSV-loaded base tables
     demo   run a built-in scenario (coin | cleaning | sensors)
     parse  parse a query and print the algebra tree

   Examples:
     pqdb run --table Coins=coins.csv \
       "conf(project[CoinType](repairkey[@Count](Coins)))"
     pqdb run --approx --delta 0.05 --query-file pipeline.ua \
       --table Dirty=dirty.csv
     pqdb demo coin *)

open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua
module Qparser = Pqdb_lang.Qparser
module Rng = Pqdb_numeric.Rng
module Cset = Pqdb_conditioning.Constraint_set
module Condition = Pqdb_conditioning.Condition

let load_tables ?db specs =
  let udb =
    match db with None -> Udb.create () | Some dir -> Udb_io.load dir
  in
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | None ->
          failwith
            (Printf.sprintf "--table expects NAME=FILE.csv, got %S" spec)
      | Some i ->
          let name = String.sub spec 0 i in
          let path = String.sub spec (i + 1) (String.length spec - i - 1) in
          Udb.add_complete udb name (Csv.load path))
    specs;
  udb

let read_query query query_file =
  match (query, query_file) with
  | Some q, None -> q
  | None, Some path ->
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> In_channel.input_all ic)
  | Some _, Some _ -> failwith "give either a query or --query-file, not both"
  | None, None -> failwith "no query given (positional argument or --query-file)"

(* A command's conditioning context: repeatable --assert flags (each one
   constraint in the ASSERT grammar) plus any assert/condition statements in
   the program text, validated into one set — the conjunction. *)
let constraint_set_of ~asserts ~stmts =
  List.fold_left Cset.add Cset.empty
    (stmts @ List.map Qparser.parse_constraint asserts)

(* Boundary validation: turn bad parameters into friendly messages before
   they reach the engine as cryptic Invalid_argument/assert failures. *)
let check_unit_interval name v =
  if not (v > 0. && v < 1.) then
    failwith (Printf.sprintf "--%s must be strictly between 0 and 1, got %g" name v)

let check_positive_float name = function
  | None -> ()
  | Some v ->
      if not (v > 0. && Float.is_finite v) then
        failwith
          (Printf.sprintf "--%s must be a positive number of seconds, got %g"
             name v)

let check_positive_int name = function
  | None -> ()
  | Some v ->
      if v <= 0 then
        failwith (Printf.sprintf "--%s must be a positive integer, got %d" name v)

let check_nonneg_int name = function
  | None -> ()
  | Some v ->
      if v < 0 then
        failwith (Printf.sprintf "--%s must be non-negative, got %d" name v)

let check_pool_workers_env () =
  match Sys.getenv_opt "PQDB_POOL_WORKERS" with
  | None -> ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> ()
      | _ ->
          failwith
            (Printf.sprintf
               "PQDB_POOL_WORKERS must be a positive integer, got %S" s))

(* --faultpoints mirrors PQDB_FAULTPOINTS: comma-separated
   name[:count][@mode] entries, validated against the registry so a typo'd
   site or a bad mode fails loudly instead of silently never firing. *)
let apply_faultpoints specs =
  let module FP = Pqdb_runtime.Faultpoint in
  List.iter
    (fun spec ->
      List.iter
        (fun entry ->
          let entry = String.trim entry in
          if entry <> "" then begin
            let base, mode =
              match String.index_opt entry '@' with
              | None -> (entry, None)
              | Some i -> (
                  let m =
                    String.sub entry (i + 1) (String.length entry - i - 1)
                  in
                  match FP.mode_of_string (String.trim m) with
                  | Ok mode -> (String.sub entry 0 i, Some mode)
                  | Error msg ->
                      failwith
                        (Printf.sprintf "--faultpoints: in %S: %s" entry msg))
            in
            let name, count =
              match String.index_opt base ':' with
              | None -> (base, None)
              | Some i -> (
                  let name = String.sub base 0 i in
                  let c =
                    String.sub base (i + 1) (String.length base - i - 1)
                  in
                  match int_of_string_opt c with
                  | Some n when n > 0 -> (name, Some n)
                  | _ ->
                      failwith
                        (Printf.sprintf
                           "--faultpoints: count in %S must be a positive \
                            integer"
                           entry))
            in
            if not (List.mem name FP.known) then
              failwith
                (Printf.sprintf
                   "--faultpoints: unknown fault point %S (known: %s)" name
                   (String.concat ", " FP.known));
            FP.arm ?count ?mode name
          end)
        (String.split_on_char ',' spec))
    specs

(* Streaming options for the shard engine, shared by run and batch.  The
   resume journal doubles as the checkpoint path; naming both only works
   when they agree. *)
let make_stream ~shard_size ~checkpoint ~resume ~retries =
  check_positive_int "shard-size" shard_size;
  check_nonneg_int "retries" retries;
  match (shard_size, checkpoint, resume, retries) with
  | None, None, None, None -> None
  | _ ->
      let checkpoint =
        match (checkpoint, resume) with
        | Some c, Some r when c <> r ->
            failwith "--checkpoint and --resume must name the same journal"
        | Some c, _ -> Some c
        | None, Some r -> Some r
        | None, None -> None
      in
      let d = Pqdb_montecarlo.Confidence.default_stream_options in
      Some
        {
          Pqdb_montecarlo.Confidence.shard_cost =
            Option.value shard_size
              ~default:d.Pqdb_montecarlo.Confidence.shard_cost;
          retries =
            Option.value retries ~default:d.Pqdb_montecarlo.Confidence.retries;
          checkpoint;
          resume = resume <> None;
        }

(* Peak resident set from the kernel, when the platform exposes it. *)
let report_rss () =
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | contents ->
      List.iter
        (fun line ->
          if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then
            Format.eprintf "-- peak rss %s@." (String.trim (String.sub line 6 (String.length line - 6))))
        (String.split_on_char '\n' contents)
  | exception _ -> ()

let make_budget ~deadline ~max_trials =
  check_positive_float "deadline" deadline;
  check_positive_int "max-trials" max_trials;
  match (deadline, max_trials) with
  | None, None -> None
  | _ ->
      Some
        (Pqdb_montecarlo.Budget.create ?deadline_s:deadline ?max_trials ())

let report_budget ?(ppf = Format.std_formatter) = function
  | None -> ()
  | Some b ->
      Format.fprintf ppf "-- budget: %d trials spent%s@."
        (Pqdb_montecarlo.Budget.spent b)
        (if Pqdb_montecarlo.Budget.exhausted b then
           ", exhausted (result degraded but sound)"
         else "")

let print_result_urel u =
  if Urelation.is_complete_rep u then
    Format.printf "%a@." Relation.pp (Urelation.to_relation u)
  else Format.printf "%a@." Urelation.pp u

let run_cmd db tables query_file approx optimize delta eps0 deadline
    max_trials seed shard_size checkpoint resume retries faultpoints asserts
    query =
  try
    check_unit_interval "delta" delta;
    check_unit_interval "eps0" eps0;
    check_pool_workers_env ();
    apply_faultpoints faultpoints;
    let stream = make_stream ~shard_size ~checkpoint ~resume ~retries in
    if stream <> None && not approx then
      failwith
        "--shard-size/--checkpoint/--resume/--retries only apply to \
         --approx runs";
    let budget = make_budget ~deadline ~max_trials in
    let udb = load_tables ?db tables in
    let text = read_query query query_file in
    let prog = Qparser.parse_program_full text in
    let q =
      match prog.Qparser.query with
      | Some q -> q
      | None -> failwith "the program has no final query expression"
    in
    let cset =
      constraint_set_of ~asserts ~stmts:prog.Qparser.constraints
    in
    let q = if optimize then Pqdb.Optimizer.optimize_for udb q else q in
    if not (Cset.is_empty cset) then begin
      (* Conditioned mode: the answer is Pr(t ∈ q | constraints) per
         possible tuple — exact where the lineage admits it, else anytime
         brackets sound for the ratio (Condition).  Sharded streaming does
         not compose with the shared renormalizing denominator. *)
      if stream <> None then
        failwith
          "--assert conditioning does not compose with \
           --shard-size/--checkpoint/--resume/--retries";
      let compiled = Condition.compile udb cset in
      Format.printf "-- conditioned on: %a@." Cset.pp cset;
      if approx then begin
        let estimates =
          Condition.approx_confidences ?budget ~seed ~eps:eps0 ~delta udb
            compiled q
        in
        List.iter
          (fun (t, e) ->
            Format.printf "%a  ~%.6f in [%.6f, %.6f]%s@." Tuple.pp t
              e.Condition.value e.Condition.lo e.Condition.hi
              (if e.Condition.exact then " (exact)"
               else Printf.sprintf " (%d trials)" e.Condition.trials))
          estimates;
        report_budget budget
      end
      else
        List.iter
          (fun (t, p) ->
            Format.printf "%a  %a@." Tuple.pp t Pqdb_numeric.Rational.pp p)
          (Condition.exact_confidences udb compiled q)
    end
    else if approx then begin
      let rng = Rng.create ~seed in
      let result, stats, rounds =
        Pqdb.Eval_approx.eval_with_guarantee ?budget ?stream ~eps0 ~rng ~delta
          udb q
      in
      print_result_urel result.Pqdb.Eval_approx.urel;
      Format.printf "-- per-tuple error bounds (target %.4g):@." delta;
      List.iter
        (fun (t, e) -> Format.printf "--   %a: <= %.6f@." Tuple.pp t e)
        result.Pqdb.Eval_approx.errors;
      if result.Pqdb.Eval_approx.suspects <> [] then begin
        Format.printf "-- singularity suspects:@.";
        List.iter
          (fun t -> Format.printf "--   %a@." Tuple.pp t)
          result.Pqdb.Eval_approx.suspects
      end;
      Format.printf
        "-- %d sigma-hat decisions, %d estimator calls, round budget %d@."
        stats.Pqdb.Eval_approx.decisions
        stats.Pqdb.Eval_approx.estimator_calls rounds;
      report_budget budget
    end
    else print_result_urel (Pqdb.Eval_exact.eval udb q);
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1
  | Qparser.Error (msg, off) ->
      Format.eprintf "parse error at offset %d: %s@." off msg;
      1
  | Pqdb_lang.Lexer.Error (msg, off) ->
      Format.eprintf "lex error at offset %d: %s@." off msg;
      1
  | Pqdb.Eval_exact.Unsupported msg ->
      Format.eprintf "unsupported: %s@." msg;
      1

let parse_cmd query =
  try
    let q = Qparser.parse_query query in
    Format.printf "%a@." Ua.pp q;
    Format.printf "positive: %b, sigma-hat depth: %d, size: %d@."
      (Ua.is_positive q) (Ua.nesting_depth q) (Ua.size q);
    0
  with
  | Qparser.Error (msg, off) ->
      Format.eprintf "parse error at offset %d: %s@." off msg;
      1
  | Pqdb_lang.Lexer.Error (msg, off) ->
      Format.eprintf "lex error at offset %d: %s@." off msg;
      1

let demo_cmd which seed =
  let rng = Rng.create ~seed in
  match which with
  | "coin" ->
      let udb = Pqdb_workload.Scenarios.coin_db () in
      let q = Pqdb_workload.Scenarios.coin_queries in
      Format.printf "posterior given two heads:@.%a@." Relation.pp
        (Pqdb.Eval_exact.eval_relation udb q.Pqdb_workload.Scenarios.u);
      0
  | "cleaning" ->
      let udb = Pqdb_workload.Scenarios.cleaning_db rng ~customers:5 ~max_dups:3 in
      Format.printf "marginals after key repair:@.%a@." Relation.pp
        (Pqdb.Eval_exact.eval_relation udb
           (Ua.conf
              (Ua.project [ "Id"; "Name" ] Pqdb_workload.Scenarios.cleaned)));
      0
  | "sensors" ->
      let udb = Pqdb_workload.Scenarios.sensor_db rng ~sensors:4 in
      Format.printf "P(hot) per sensor:@.%a@." Relation.pp
        (Pqdb.Eval_exact.eval_relation udb
           (Ua.conf
              (Ua.project [ "Sensor" ]
                 (Ua.select
                    Predicate.(
                      Expr.attr "Level" = Expr.const (Value.Str "hot"))
                    Pqdb_workload.Scenarios.sensor_readings))));
      0
  | other ->
      Format.eprintf "unknown demo %S (coin | cleaning | sensors)@." other;
      1

let explain_cmd db tables query_file query =
  try
    let udb = load_tables ?db tables in
    let text = read_query query query_file in
    let _views, final = Qparser.parse_program text in
    let q =
      match final with
      | Some q -> q
      | None -> failwith "the program has no final query expression"
    in
    let prov = Pqdb.Provenance.compute udb q in
    let result = Pqdb.Provenance.result prov in
    print_result_urel result;
    Format.printf "-- provenance (leaves each result tuple depends on):@.";
    List.iter
      (fun t ->
        Format.printf "--   %a <- %a@." Tuple.pp t
          (Format.pp_print_list
             ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
             Pqdb.Provenance.pp_leaf)
          (Pqdb.Provenance.leaves prov t))
      (Pqdb_urel.Urelation.possible_tuples result);
    if Pqdb.Provenance.sigma_hat_count prov > 0 then
      Format.printf "-- %d maximal sigma-hat subexpression(s)@."
        (Pqdb.Provenance.sigma_hat_count prov);
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1
  | Qparser.Error (msg, off) ->
      Format.eprintf "parse error at offset %d: %s@." off msg;
      1
  | Pqdb.Eval_exact.Unsupported msg ->
      Format.eprintf "unsupported: %s@." msg;
      1

let topk_cmd db tables query_file k delta compile_fuel deadline max_trials
    seed faultpoints asserts query =
  try
    check_unit_interval "delta" delta;
    if k <= 0 then
      failwith (Printf.sprintf "--k must be a positive integer, got %d" k);
    check_nonneg_int "compile-fuel" compile_fuel;
    check_pool_workers_env ();
    apply_faultpoints faultpoints;
    let budget = make_budget ~deadline ~max_trials in
    let udb = load_tables ?db tables in
    let text = read_query query query_file in
    let prog = Qparser.parse_program_full text in
    let q =
      match prog.Qparser.query with
      | Some q -> q
      | None -> failwith "the program has no final query expression"
    in
    let cset =
      constraint_set_of ~asserts ~stmts:prog.Qparser.constraints
    in
    if not (Cset.is_empty cset) then begin
      (* Ranking by conditioned probability: the FD that deduplicates a
         dirty table can reorder the top-k (a tuple sharing its key loses
         mass to the renormalization). *)
      let compiled = Condition.compile udb cset in
      Format.printf "-- conditioned on: %a@." Cset.pp cset;
      let ranked =
        Condition.topk ?budget ?fuel:compile_fuel ~seed ~delta ~k udb
          compiled q
      in
      List.iteri
        (fun i (t, e) ->
          Format.printf "%d. %a  (~%.4f in [%.4f, %.4f])@." (i + 1) Tuple.pp
            t e.Condition.value e.Condition.lo e.Condition.hi)
        ranked
    end
    else begin
      let rng = Rng.create ~seed in
      let r = Pqdb.Topk.query ?budget ?compile_fuel ~rng ~delta ~k udb q in
      List.iteri
        (fun i (t, p) ->
          Format.printf "%d. %a  (~%.4f)@." (i + 1) Tuple.pp t p)
        r.Pqdb.Topk.ranked;
      Format.printf "-- certified: %b, %d estimator calls, %d rounds@."
        r.Pqdb.Topk.certified r.Pqdb.Topk.estimator_calls r.Pqdb.Topk.rounds
    end;
    report_budget budget;
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1
  | Qparser.Error (msg, off) ->
      Format.eprintf "parse error at offset %d: %s@." off msg;
      1
  | Pqdb.Eval_exact.Unsupported msg ->
      Format.eprintf "unsupported: %s@." msg;
      1

(* --- batch ------------------------------------------------------------ *)

(* Streaming batch confidence over raw lineage, without a query in front.
   stdout carries exactly one line per tuple ("index est lo hi trials",
   floats in %h so runs can be compared bit-for-bit with cmp); everything
   diagnostic goes to stderr.  This is the surface the crash-recovery CI
   job drives: kill a checkpointed run, resume it, cmp the outputs. *)
let batch_inputs ~db ~relation ~gen ~gen_seed =
  match (gen, db, relation) with
  | Some n, None, None ->
      check_positive_int "gen" gen;
      let module Q = Pqdb_numeric.Rational in
      let rng = Rng.create ~seed:gen_seed in
      let w = Wtable.create () in
      (* Mostly easy singleton lineage with a hard DNF minority, the same
         shape as the confidence microbenchmarks: planning sees wildly
         uneven shard costs, which is the interesting case. *)
      let sets =
        Array.init n (fun i ->
            if i mod 10 = 9 then
              Pqdb_workload.Gen.random_dnf rng w ~vars:12 ~clauses:12
                ~clause_len:3
            else
              let num = 1 + Rng.int rng 9 in
              let v =
                Wtable.add_var w [ Q.of_ints (10 - num) 10; Q.of_ints num 10 ]
              in
              [ Assignment.singleton v 1 ])
      in
      (w, sets)
  | None, Some path, Some name ->
      let udb = Udb_io.load path in
      let u = Udb.find udb name in
      let sets =
        Array.of_list (List.map snd (Urelation.clauses_by_tuple u))
      in
      (Udb.wtable udb, sets)
  | _ ->
      failwith
        "give either --gen N (synthetic lineage) or --db PATH --relation NAME"

(* The batch output contract: one line per tuple, "%h" floats, one flush
   per shard — a kill leaves whole-shard prefixes on stdout, matching what
   the journal holds.  Shared verbatim by the in-process and distributed
   paths; byte-identical output is the distributed mode's acceptance
   test. *)
let emit_batch_outcome (o : Pqdb_montecarlo.Shard.outcome) =
  let module S = Pqdb_montecarlo.Shard in
  Array.iteri
    (fun j est ->
      let lo, hi = o.S.intervals.(j) in
      Printf.printf "%d %h %h %h %d\n" (o.S.shard.S.first + j) est lo hi
        o.S.trials.(j))
    o.S.estimates;
  flush stdout

let report_stream_summary ~tuples (summary : Pqdb_montecarlo.Confidence.stream_summary) =
  let module C = Pqdb_montecarlo.Confidence in
  Format.eprintf
    "-- %d tuples, %d shards (%d resumed), %d quarantined, %d trials@."
    tuples summary.C.shards summary.C.resumed_shards
    (List.length summary.C.quarantined)
    summary.C.stream_trials;
  if not summary.C.stream_complete then
    Format.eprintf
      "-- incomplete: some tuples report a-priori brackets (sound, wider \
       than the (eps, delta) contract)@.";
  if not summary.C.journal_ok then
    Format.eprintf
      "-- journaling abandoned mid-run; results unaffected, resume will \
       recompute the missing shards@.";
  List.iter
    (fun (i, e) ->
      Format.eprintf "-- quarantined shard %d: %s@." i
        (Pqdb_runtime.Pqdb_error.to_string e))
    summary.C.quarantined

(* Worker argv for --workers: re-spawn this executable's [worker]
   subcommand with every parameter that feeds the shard plan, the RNG lanes
   or the sampling — the handshake (meta payload + RNG probe) re-checks
   that nothing drifted in flight.  Floats go through "%.17g" so they
   re-parse to the same bits. *)
let worker_argv ~gen ~gen_seed ~eps ~delta ~seed ~compile_fuel
    ~shard_cost ~heartbeat_interval ~faultpoints =
  Array.of_list
    (List.concat
       [
         [ Sys.executable_name; "worker" ];
         (* A stored --db source is deliberately absent: it travels in the
            coordinator's greeting Hello instead, so every worker loads the
            same path the coordinator used (and a .udbb db is one shared
            read-only mapping across the fleet). *)
         (match gen with
         | Some n -> [ "--gen"; string_of_int n; "--gen-seed"; string_of_int gen_seed ]
         | None -> []);
         [ "--eps"; Printf.sprintf "%.17g" eps ];
         [ "--delta"; Printf.sprintf "%.17g" delta ];
         [ "--seed"; string_of_int seed ];
         (match compile_fuel with
         | Some f -> [ "--compile-fuel"; string_of_int f ]
         | None -> []);
         [ "--shard-size"; string_of_int shard_cost ];
         [ "--heartbeat-interval"; Printf.sprintf "%.17g" heartbeat_interval ];
         List.concat_map (fun s -> [ "--faultpoints"; s ]) faultpoints;
       ])

(* Remote endpoints: "HOST:PORT", or a bare "PORT" meaning loopback.  The
   rightmost colon splits, so a purely numeric argument is a port. *)
let parse_endpoint ~flag s =
  let host, port_s =
    match String.rindex_opt s ':' with
    | None -> ("127.0.0.1", s)
    | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let host = if host = "" then "127.0.0.1" else host in
  match int_of_string_opt port_s with
  | Some p when p >= 0 && p <= 65535 -> (host, p)
  | _ ->
      failwith
        (Printf.sprintf "--%s %s: expected HOST:PORT or PORT (0-65535)" flag
           s)

(* interval < ttl < io-timeout, or the machinery fights itself: a
   heartbeat that cannot land several times per lease window makes every
   healthy worker look partitioned, and an I/O deadline shorter than the
   lease declares workers dead before the lease logic gets a say. *)
let check_liveness_cadence ~heartbeat_interval ~lease_ttl ~io_timeout_s =
  check_positive_float "heartbeat-interval" (Some heartbeat_interval);
  check_positive_float "lease-ttl" (Some lease_ttl);
  if heartbeat_interval >= lease_ttl then
    failwith
      (Printf.sprintf
         "--heartbeat-interval (%gs) must be smaller than --lease-ttl \
          (%gs): a lease has to survive a few missed ticks, or every \
          healthy worker looks partitioned"
         heartbeat_interval lease_ttl);
  match io_timeout_s with
  | Some t when lease_ttl >= t ->
      failwith
        (Printf.sprintf
           "--lease-ttl (%gs) must be smaller than --io-timeout (%gs): \
            the lease must expire (and suspend the worker) before the I/O \
            deadline declares it dead"
           lease_ttl t)
  | _ -> ()

let batch_cmd db relation gen gen_seed eps delta seed compile_fuel shard_size
    checkpoint resume retries deadline max_trials workers connect lease_ttl
    heartbeat_interval reconnects io_timeout_s asserts faultpoints =
  try
    check_unit_interval "eps" eps;
    check_unit_interval "delta" delta;
    check_nonneg_int "compile-fuel" compile_fuel;
    check_nonneg_int "workers" (Some workers);
    check_nonneg_int "reconnects" reconnects;
    check_positive_float "io-timeout" io_timeout_s;
    check_liveness_cadence ~heartbeat_interval ~lease_ttl ~io_timeout_s;
    check_pool_workers_env ();
    apply_faultpoints faultpoints;
    let endpoints = List.map (parse_endpoint ~flag:"connect") connect in
    let workers =
      match endpoints with
      | [] -> workers
      | eps ->
          let n = List.length eps in
          if workers <> 0 && workers <> n then
            failwith
              (Printf.sprintf
                 "--workers %d disagrees with %d --connect endpoints; the \
                  fleet size is the endpoint count, drop --workers"
                 workers n);
          n
    in
    let options = make_stream ~shard_size ~checkpoint ~resume ~retries in
    let budget = make_budget ~deadline ~max_trials in
    if asserts <> [] then begin
      (* Conditioned batch: same one-line-per-tuple "%h" output contract,
         with every confidence renormalized by the shared Pr(constraints)
         denominator.  The denominator couples all tuples, so the sharded /
         checkpointed / distributed machinery (whose unit is an independent
         shard) does not compose — refuse loudly rather than emit bytes
         that silently mean something else. *)
      if workers <> 0 || endpoints <> [] then
        failwith "--assert does not compose with --workers/--connect";
      if options <> None then
        failwith
          "--assert does not compose with \
           --shard-size/--checkpoint/--resume/--retries";
      let db_path, name =
        match (gen, db, relation) with
        | None, Some p, Some r -> (p, r)
        | Some _, _, _ ->
            failwith
              "--assert needs stored tables (--db/--relation); constraints \
               cannot reference --gen synthetic lineage"
        | _ -> failwith "give --db PATH --relation NAME with --assert"
      in
      let udb = Udb_io.load db_path in
      let u =
        match Udb.find udb name with
        | u -> u
        | exception Not_found ->
            failwith
              (Printf.sprintf "unknown relation %S (database has: %s)" name
                 (String.concat ", " (Udb.names udb)))
      in
      let cset = constraint_set_of ~asserts ~stmts:[] in
      let compiled = Condition.compile udb cset in
      let w = Udb.wtable udb in
      let sets =
        Array.of_list (List.map snd (Urelation.clauses_by_tuple u))
      in
      let n = Array.length sets in
      let rngs = Rng.split_n (Rng.create ~seed) (n + 1) in
      let den =
        Condition.solve_denominator ?budget ?fuel:compile_fuel rngs.(n) w
          compiled ~eps ~delta
      in
      for i = 0 to n - 1 do
        let e =
          Condition.solve_clauses ?budget ?fuel:compile_fuel rngs.(i) w
            compiled den sets.(i) ~eps ~delta
        in
        Printf.printf "%d %h %h %h %d\n" i e.Condition.value e.Condition.lo
          e.Condition.hi e.Condition.trials
      done;
      flush stdout;
      let iv = Condition.denominator_interval den in
      Format.eprintf
        "-- %d tuples conditioned on %a: Pr(c) in [%h, %h], %d denominator \
         trials@."
        n Cset.pp cset iv.Pqdb_numeric.Interval.lo
        iv.Pqdb_numeric.Interval.hi
        (Condition.denominator_trials den)
    end
    else begin
    let w, sets = batch_inputs ~db ~relation ~gen ~gen_seed in
    let rng = Rng.create ~seed in
    let module C = Pqdb_montecarlo.Confidence in
    if workers = 0 then begin
      let summary =
        C.run_stream ?budget ?compile_fuel ?options rng w sets ~eps ~delta
          ~emit:emit_batch_outcome
      in
      report_stream_summary ~tuples:(Array.length sets) summary
    end
    else begin
      let module D = Pqdb_distrib.Coordinator in
      let opts = Option.value options ~default:C.default_stream_options in
      let argv =
        worker_argv ~gen ~gen_seed ~eps ~delta ~seed
          ~compile_fuel ~shard_cost:opts.C.shard_cost ~heartbeat_interval
          ~faultpoints
      in
      let source =
        match (db, relation) with
        | Some d, Some r -> Some (d, r)
        | _ -> None
      in
      let endpoint = Array.of_list endpoints in
      let spawn =
        if endpoint = [||] then fun _ ->
          D.process_transport ?io_timeout_s argv
        else fun id ->
          (* Listeners may still be starting (or restarting after a kill):
             dial patiently, the backoff is jittered per connection. *)
          let host, port = endpoint.(id mod Array.length endpoint) in
          D.tcp_transport ?io_timeout_s ~retries:40 ~retry_delay_s:0.1 ~host
            ~port ()
      in
      let max_reconnects =
        match reconnects with
        | Some n -> n
        | None -> if endpoint <> [||] then 3 else 0
      in
      let summary =
        D.run ?budget ?compile_fuel ~options:opts ~lease_ttl_s:lease_ttl
          ~max_reconnects ?source ~workers ~spawn rng w sets ~eps ~delta
          ~emit:emit_batch_outcome
      in
      report_stream_summary ~tuples:(Array.length sets) summary.D.stream;
      Format.eprintf
        "-- distrib: %d workers (%d lost, %d reconnected), %d shards \
         reassigned (%d leases expired, %d late deliveries dropped), %d \
         solved in-process%s@."
        summary.D.workers_spawned summary.D.workers_lost summary.D.reconnects
        summary.D.reassigned summary.D.leases_expired summary.D.late_drops
        summary.D.fallback_shards
        (match summary.D.compacted with
        | Some (kept, dropped) ->
            Printf.sprintf ", journal compacted (%d kept, %d dropped)" kept
              dropped
        | None -> "")
    end
    end;
    report_budget ~ppf:Format.err_formatter budget;
    report_rss ();
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1
  | Qparser.Error (msg, off) ->
      Format.eprintf "parse error at offset %d: %s@." off msg;
      1
  | Pqdb_lang.Lexer.Error (msg, off) ->
      Format.eprintf "lex error at offset %d: %s@." off msg;
      1

(* --- worker ----------------------------------------------------------- *)

let worker_cmd db relation gen gen_seed eps delta seed compile_fuel
    shard_size listen heartbeat_interval sessions faultpoints =
  try
    check_unit_interval "eps" eps;
    check_unit_interval "delta" delta;
    check_nonneg_int "compile-fuel" compile_fuel;
    check_positive_int "shard-size" shard_size;
    check_positive_float "heartbeat-interval" (Some heartbeat_interval);
    check_positive_int "sessions" sessions;
    check_pool_workers_env ();
    apply_faultpoints faultpoints;
    match listen with
    | Some endpoint ->
        (* Remote listener: serve coordinator dials on a TCP socket.  The
           data source is resolved lazily from each session's greeting
           Hello (and cached), unless local data arguments pin it; run
           parameters stay operator-provided — the handshake refuses a
           coordinator they drifted from. *)
        let host, port = parse_endpoint ~flag:"listen" endpoint in
        let resolve src =
          match (gen, db, relation, src) with
          | None, None, None, Some (d, r) ->
              batch_inputs ~db:(Some d) ~relation:(Some r) ~gen:None ~gen_seed
          | None, None, None, None ->
              failwith
                "coordinator greeting names no data source; give --gen N or \
                 --db/--relation"
          | _ -> batch_inputs ~db ~relation ~gen ~gen_seed
        in
        Pqdb_distrib.Worker.listen ?compile_fuel ?shard_cost:shard_size
          ~heartbeat_s:heartbeat_interval ?max_sessions:sessions
          ~ready:(fun p ->
            Printf.printf "pqdb-worker listening on tcp:%s:%d\n%!" host p)
          ~make_rng:(fun () -> Rng.create ~seed)
          ~resolve ~host ~port ~eps ~delta ();
        0
    | None ->
        let w, sets =
          match (gen, db, relation) with
          | None, None, None -> (
              (* Bare worker: the coordinator's greeting Hello (the first
                 frame on stdin) names the stored data source, so the path
                 is stated once — on the coordinator's command line —
                 instead of being duplicated into every worker's argv or
                 regenerated from a seed.  Worker.serve ignores any later
                 greeting replays.  Read off the fd, not the channel:
                 Worker.serve reads orders with fd-level deadlines and
                 channel read-ahead would steal bytes from it. *)
              match
                Pqdb_distrib.Protocol.read_fd_frame ~timeout_s:30. Unix.stdin
              with
              | Some (Pqdb_distrib.Protocol.Hello { source = Some (d, r); _ })
                ->
                  batch_inputs ~db:(Some d) ~relation:(Some r) ~gen:None
                    ~gen_seed
              | Some (Pqdb_distrib.Protocol.Hello { source = None; _ }) ->
                  failwith
                    "coordinator greeting names no data source; give --gen N \
                     or --db/--relation"
              | Some _ | None ->
                  failwith "expected a coordinator greeting on stdin")
          | _ -> batch_inputs ~db ~relation ~gen ~gen_seed
        in
        let rng = Rng.create ~seed in
        (* stdout belongs to the protocol: everything human goes to
           stderr. *)
        Pqdb_distrib.Worker.serve ?compile_fuel ?shard_cost:shard_size
          ~heartbeat_s:heartbeat_interval rng w sets ~eps ~delta ~input:stdin
          ~output:stdout;
        0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "worker error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "worker error: %s@."
        (Pqdb_runtime.Pqdb_error.to_string e);
      1

(* --- convert / gen ---------------------------------------------------- *)

(* Format conversion dispatches on extension: a path ending in .udbb is the
   binary columnar format, anything else the text directory format.
   --verify re-loads both sides and compares their canonical binary images
   byte for byte — the binary encoder is deterministic (sorted row sets,
   var-id order), so equality means the conversion lost nothing. *)
let canonical_image udb =
  let tmp =
    Filename.temp_file "pqdb-verify" Pqdb_urel.Udb_binary.extension
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Pqdb_urel.Udb_binary.save tmp udb;
      In_channel.with_open_bin tmp In_channel.input_all)

let convert_cmd verify src dst =
  try
    let udb = Udb_io.load src in
    Udb_io.save dst udb;
    if verify then begin
      let a = canonical_image (Udb_io.load src) in
      let b = canonical_image (Udb_io.load dst) in
      if not (String.equal a b) then
        failwith
          (Printf.sprintf
             "round-trip verification failed: %s and %s decode to different \
              databases"
             src dst);
      Format.eprintf "-- verified: %s and %s are canonically identical@." src
        dst
    end;
    Format.printf "converted %s -> %s@." src dst;
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1

let gen_db_cmd tuples clauses gen_seed dirty max_dups dest =
  try
    check_positive_int "tuples" (Some tuples);
    check_positive_int "clauses" (Some clauses);
    check_nonneg_int "gen-seed" (Some gen_seed);
    check_nonneg_int "dirty" (Some dirty);
    check_positive_int "max-dups" (Some max_dups);
    let dir = Filename.dirname dest in
    if not (Sys.file_exists dir) then
      failwith
        (Printf.sprintf
           "destination directory %S does not exist (create it first)" dir);
    let rng = Rng.create ~seed:gen_seed in
    let udb = Pqdb_workload.Gen.uncertain_db rng ~tuples ~clauses in
    if dirty > 0 then
      Pqdb_workload.Gen.add_dirty_people rng udb ~entities:dirty ~max_dups;
    Udb_io.save dest udb;
    Format.printf "wrote %s: %d tuples in relation events%s@." dest tuples
      (if dirty > 0 then
         Printf.sprintf
           ", plus %d entities (up to %d duplicates each) in relation people"
           dirty max_dups
       else "");
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1

(* --- serve / query ---------------------------------------------------- *)

(* Endpoint validation shared by the daemon and the client: exactly one of
   --socket/--port, a port in range, a socket path that a bind (or connect)
   could actually use — caught here as friendly messages instead of
   surfacing as EINVAL/ENAMETOOLONG from deep inside the socket layer. *)
let listen_of ~socket ~port =
  let module Server = Pqdb_serve.Server in
  match (socket, port) with
  | None, None ->
      failwith "give --socket PATH or --port N to name the endpoint"
  | Some _, Some _ ->
      failwith "give exactly one of --socket and --port, not both"
  | Some path, None ->
      if String.trim path = "" then failwith "--socket path must not be empty";
      if String.length path > 100 then
        failwith
          (Printf.sprintf
             "--socket path is %d bytes; Unix socket paths are limited to \
              about 100"
             (String.length path));
      let dir = Filename.dirname path in
      if not (Sys.file_exists dir && Sys.is_directory dir) then
        failwith
          (Printf.sprintf "--socket: directory %S does not exist" dir);
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> ()
      | _ ->
          failwith
            (Printf.sprintf
               "--socket: %S exists and is not a socket; refusing to \
                replace it"
               path)
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      Server.Unix_socket path
  | None, Some p ->
      if p < 1 || p > 65535 then
        failwith (Printf.sprintf "--port must be in 1..65535, got %d" p);
      Server.Tcp p

let serve_cmd db socket port cache_entries session_trials session_deadline_s
    io_timeout_s idle_timeout_s max_sessions watchdog_s faultpoints =
  let module Server = Pqdb_serve.Server in
  try
    apply_faultpoints faultpoints;
    check_positive_int "cache-entries" (Some cache_entries);
    check_positive_int "session-trials" session_trials;
    check_positive_float "session-deadline" session_deadline_s;
    check_positive_float "io-timeout" io_timeout_s;
    check_positive_float "idle-timeout" idle_timeout_s;
    check_positive_int "max-sessions" max_sessions;
    check_positive_float "watchdog" watchdog_s;
    if not (Sys.file_exists db) then
      failwith (Printf.sprintf "database %S does not exist" db);
    let listen = listen_of ~socket ~port in
    let config =
      {
        Server.db_path = db;
        listen;
        cache_entries;
        session_trials;
        session_deadline_s;
        io_timeout_s;
        idle_timeout_s;
        max_sessions;
        watchdog_s;
      }
    in
    let server = Server.create config in
    let stats =
      Server.run server ~ready:(fun () ->
          (* The readiness line scripts wait for before connecting. *)
          Format.printf "pqdb-serve listening on %s@." (Server.pp_listen listen))
    in
    let c = stats.Server.cache in
    Format.eprintf
      "-- served %d sessions, %d queries (%d errors, %d dropped, %d shed, \
       %d reaped)@."
      stats.Server.sessions stats.Server.queries stats.Server.errors
      stats.Server.dropped stats.Server.shed stats.Server.reaped;
    Format.eprintf "-- cache: %d hits, %d misses, %d evictions, %d entries \
                    resident (cap %d)@."
      c.Pqdb_montecarlo.Memo.hits c.Pqdb_montecarlo.Memo.misses
      c.Pqdb_montecarlo.Memo.evictions c.Pqdb_montecarlo.Memo.entries
      cache_entries;
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1
  | Unix.Unix_error (err, fn, arg) ->
      Format.eprintf "error: %s: %s %s@." fn (Unix.error_message err) arg;
      1

let query_cmd socket port retries retry_delay_s timeout_s asserts spec_words =
  let module Client = Pqdb_serve.Client in
  try
    check_nonneg_int "retries" (Some retries);
    check_positive_float "retry-delay" retry_delay_s;
    check_positive_float "timeout" timeout_s;
    let listen = listen_of ~socket ~port in
    let spec = String.concat " " spec_words in
    if String.trim spec = "" then
      failwith
        "no request given; try e.g.: pqdb query --socket S conf events";
    (* Constraint state is per serve session: each --assert is sent as its
       own request on the same connection, before the query, so a conf
       reply is conditioned on their conjunction.  Parsed locally first —
       a typo fails here, without a round trip. *)
    List.iter (fun a -> ignore (Qparser.parse_constraint a)) asserts;
    (* --timeout T budgets the query end to end: conf requests carry
       [deadline=T] to the server, whose anytime engine answers by the
       cutoff with the sound brackets reached so far (the degraded answer),
       while the client arms a slightly larger socket deadline that turns a
       genuinely wedged daemon into a typed Timeout instead of a hang. *)
    let spec, io_timeout_s =
      match timeout_s with
      | None -> (spec, None)
      | Some t ->
          let spec =
            let has_deadline =
              List.exists
                (fun w -> String.length w >= 9 && String.sub w 0 9 = "deadline=")
                (String.split_on_char ' ' spec)
            in
            if
              String.length spec >= 5
              && String.sub spec 0 5 = "conf "
              && not has_deadline
            then Printf.sprintf "%s deadline=%g" spec t
            else spec
          in
          (spec, Some ((t *. 1.5) +. 1.0))
    in
    let c =
      Client.connect ~retries
        ?retry_delay_s
        ?io_timeout_s listen
    in
    let ok, body =
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let rec with_asserts = function
            | [] -> Client.query c spec
            | a :: rest -> (
                match Client.query c ("assert " ^ a) with
                | true, _ -> with_asserts rest
                | (false, _) as err -> err)
          in
          with_asserts asserts)
    in
    if ok then begin
      print_string body;
      flush stdout;
      0
    end
    else begin
      Format.eprintf "error: %s@." body;
      1
    end
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1
  | Unix.Unix_error (err, fn, arg) ->
      Format.eprintf "error: %s: %s %s@." fn (Unix.error_message err) arg;
      1
  | Qparser.Error (msg, off) ->
      Format.eprintf "parse error at offset %d: %s@." off msg;
      1
  | Pqdb_lang.Lexer.Error (msg, off) ->
      Format.eprintf "lex error at offset %d: %s@." off msg;
      1

(* --- checkpoint ------------------------------------------------------- *)

let compact_cmd path =
  try
    let kept, dropped = Pqdb_montecarlo.Shard.compact_journal path in
    Format.printf "compacted %s: %d records kept, %d dropped@." path kept
      dropped;
    0
  with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | Pqdb_runtime.Pqdb_error.Error e ->
      Format.eprintf "error: %s@." (Pqdb_runtime.Pqdb_error.to_string e);
      1

(* --- repl ------------------------------------------------------------- *)

let repl_help =
  {|commands:
  \load NAME FILE.csv   load a complete base table from CSV
  \save DIR             persist the session database (tables only)
  \open DIR             import complete relations from a saved database
  \tables               list tables and views
  \approx on|off        toggle approximate evaluation (default off)
  \delta X              target error bound for approximate runs (default 0.05)
  \plan QUERY;          show the (optimized) algebra instead of evaluating
  \explain QUERY;       evaluate exactly and print tuple provenance
  \help                 this message
  \quit                 leave
statements (terminated by ';'):
  let NAME = QUERY;     define a view
  QUERY;                evaluate and print|}

let repl_cmd seed =
  let udb = Udb.create () in
  let views = ref [] in
  let approx = ref false in
  let delta = ref 0.05 in
  let rng = Rng.create ~seed in
  let buffer = Buffer.create 256 in
  Format.printf "pqdb repl — \\help for help@.";
  let substitute text =
    (* Prepend accumulated view definitions so references resolve. *)
    let defs =
      String.concat ""
        (List.rev_map
           (fun (name, src) -> Printf.sprintf "let %s = %s;\n" name src)
           !views)
    in
    defs ^ text
  in
  let evaluate text =
    match Qparser.parse_program (substitute text) with
    | _, None -> ()
    | _, Some q ->
        if !approx then begin
          let result, stats, budget =
            Pqdb.Eval_approx.eval_with_guarantee ~rng ~delta:!delta
              (Udb.copy udb) q
          in
          print_result_urel result.Pqdb.Eval_approx.urel;
          List.iter
            (fun (t, e) ->
              Format.printf "--   %a: error <= %.6f@." Tuple.pp t e)
            result.Pqdb.Eval_approx.errors;
          Format.printf "-- %d decisions, %d estimator calls, budget %d@."
            stats.Pqdb.Eval_approx.decisions
            stats.Pqdb.Eval_approx.estimator_calls budget
        end
        else print_result_urel (Pqdb.Eval_exact.eval (Udb.copy udb) q)
  in
  let handle_statement text =
    let trimmed = String.trim text in
    if trimmed = "" then ()
    else begin
      (* A let-statement defines a view; remember its source. *)
      match Qparser.parse_program (substitute text) with
      | new_views, None ->
          (* Record only the textual definition of the *new* statement. *)
          let prefix = "let " in
          let t = String.trim text in
          if String.length t > 4 && String.lowercase_ascii (String.sub t 0 4) = prefix
          then begin
            match String.index_opt t '=' with
            | Some i ->
                let name = String.trim (String.sub t 4 (i - 4)) in
                let body =
                  String.trim (String.sub t (i + 1) (String.length t - i - 1))
                in
                let body =
                  if String.length body > 0 && body.[String.length body - 1] = ';'
                  then String.sub body 0 (String.length body - 1)
                  else body
                in
                views := (name, body) :: List.remove_assoc name !views;
                Format.printf "view %s defined@." name
            | None -> ignore new_views
          end
      | _, Some _ -> evaluate text
    end
  in
  let handle_command line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "\\quit" ] | [ "\\q" ] -> raise Exit
    | [ "\\help" ] -> Format.printf "%s@." repl_help
    | [ "\\tables" ] ->
        List.iter (fun n -> Format.printf "table %s@." n) (Udb.names udb);
        List.iter (fun (n, _) -> Format.printf "view %s@." n) (List.rev !views)
    | [ "\\approx"; "on" ] ->
        approx := true;
        Format.printf "approximate evaluation on (delta = %g)@." !delta
    | [ "\\approx"; "off" ] ->
        approx := false;
        Format.printf "approximate evaluation off@."
    | [ "\\delta"; x ] -> begin
        match float_of_string_opt x with
        | Some d when d > 0. && d < 1. ->
            delta := d;
            Format.printf "delta = %g@." d
        | _ -> Format.printf "expected a delta in (0, 1)@."
      end
    | [ "\\open"; dir ] -> begin
        match Udb_io.load dir with
        | fresh ->
            List.iter
              (fun name ->
                if not (Udb.mem udb name) then begin
                  let u = Udb.find fresh name in
                  (* Conditions refer to the fresh W table; only complete
                     relations can be imported into the session database. *)
                  if Urelation.is_complete_rep u then
                    Udb.add_complete udb name (Urelation.to_relation u)
                  else
                    Format.printf
                      "skipping uncertain %s (use --db on the run command)@."
                      name
                end)
              (Udb.names fresh);
            Format.printf "opened %s@." dir
        | exception Sys_error msg -> Format.printf "cannot open: %s@." msg
        | exception Invalid_argument msg -> Format.printf "bad db: %s@." msg
        | exception Pqdb_runtime.Pqdb_error.Error e ->
            Format.printf "bad db: %s@." (Pqdb_runtime.Pqdb_error.to_string e)
      end
    | [ "\\save"; dir ] -> begin
        match Udb_io.save dir udb with
        | () -> Format.printf "saved to %s@." dir
        | exception Sys_error msg -> Format.printf "cannot save: %s@." msg
      end
    | "\\load" :: name :: path :: [] -> begin
        match Csv.load path with
        | rel ->
            Udb.add_complete udb name rel;
            Format.printf "loaded %s (%d tuples)@." name
              (Relation.cardinality rel)
        | exception Sys_error msg -> Format.printf "cannot load: %s@." msg
        | exception Invalid_argument msg -> Format.printf "bad csv: %s@." msg
      end
    | [ "\\explain" ] -> Format.printf "usage: \\explain QUERY;@."
    | "\\explain" :: rest -> begin
        let text = String.concat " " rest in
        let text =
          if String.length text > 0 && text.[String.length text - 1] = ';'
          then String.sub text 0 (String.length text - 1)
          else text
        in
        match Qparser.parse_program (substitute text) with
        | _, Some q -> begin
            match Pqdb.Provenance.compute (Udb.copy udb) q with
            | prov ->
                let result = Pqdb.Provenance.result prov in
                print_result_urel result;
                List.iter
                  (fun t ->
                    Format.printf "--   %a <- %a@." Tuple.pp t
                      (Format.pp_print_list
                         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
                         Pqdb.Provenance.pp_leaf)
                      (Pqdb.Provenance.leaves prov t))
                  (Pqdb_urel.Urelation.possible_tuples result)
            | exception Pqdb.Eval_exact.Unsupported msg ->
                Format.printf "unsupported: %s@." msg
          end
        | _, None -> Format.printf "no query@."
        | exception Qparser.Error (msg, off) ->
            Format.printf "parse error at %d: %s@." off msg
      end
    | [ "\\plan" ] -> Format.printf "usage: \\plan QUERY;@."
    | "\\plan" :: rest -> begin
        let text = String.concat " " rest in
        let text =
          if String.length text > 0 && text.[String.length text - 1] = ';'
          then String.sub text 0 (String.length text - 1)
          else text
        in
        match Qparser.parse_program (substitute text) with
        | _, Some q ->
            let optimized = Pqdb.Optimizer.optimize_for udb q in
            Format.printf "%s@." (Pqdb_lang.Pretty.query_to_string optimized)
        | _, None -> Format.printf "no query@."
        | exception Qparser.Error (msg, off) ->
            Format.printf "parse error at %d: %s@." off msg
      end
    | _ -> Format.printf "unknown command; \\help for help@."
  in
  (try
     while true do
       if Buffer.length buffer = 0 then Format.printf "pqdb> @?"
       else Format.printf "  ... @?";
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line ->
           if Buffer.length buffer = 0 && String.length (String.trim line) > 0
              && (String.trim line).[0] = '\\'
           then handle_command line
           else begin
             Buffer.add_string buffer line;
             Buffer.add_char buffer '\n';
             if String.contains line ';' then begin
               let text = Buffer.contents buffer in
               Buffer.clear buffer;
               try handle_statement text with
               | Qparser.Error (msg, off) ->
                   Format.printf "parse error at %d: %s@." off msg
               | Pqdb_lang.Lexer.Error (msg, off) ->
                   Format.printf "lex error at %d: %s@." off msg
               | Pqdb.Eval_exact.Unsupported msg ->
                   Format.printf "unsupported: %s@." msg
               | Invalid_argument msg | Failure msg ->
                   Format.printf "error: %s@." msg
               | Pqdb_runtime.Pqdb_error.Error e ->
                   Format.printf "error: %s@."
                     (Pqdb_runtime.Pqdb_error.to_string e)
             end
           end
     done
   with Exit -> Format.printf "bye@.");
  0

(* --- cmdliner wiring -------------------------------------------------- *)

open Cmdliner

let db_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"PATH"
        ~doc:
          "Load a saved U-relational database: a text directory, or a \
           binary columnar $(b,.udbb) file (memory-mapped, relations \
           decoded lazily).")

let tables_arg =
  Arg.(
    value & opt_all string []
    & info [ "table"; "t" ] ~docv:"NAME=FILE"
        ~doc:"Load a complete base table from a CSV file (repeatable).")

let query_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "query-file"; "f" ] ~docv:"FILE"
        ~doc:"Read the query program from a file.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "optimize"; "O" ]
        ~doc:"Run the logical optimizer (selection push-down etc.) first.")

let approx_arg =
  Arg.(
    value & flag
    & info [ "approx"; "a" ]
        ~doc:
          "Evaluate approximately: Karp-Luby confidence and Figure-3 \
           approximate selection with the Theorem 6.7 doubling driver.")

let delta_arg =
  Arg.(
    value & opt float 0.05
    & info [ "delta" ] ~docv:"DELTA"
        ~doc:"Target error bound for approximate evaluation.")

let eps0_arg =
  Arg.(
    value & opt float 0.05
    & info [ "eps0" ] ~docv:"EPS0"
        ~doc:"Relative-width floor of the predicate approximation.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Anytime mode: wall-clock budget in seconds for the sampling \
           layers.  On expiry the engine stops sampling and reports what \
           the trials so far certify (wider intervals, degraded but sound).")

let max_trials_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-trials" ] ~docv:"N"
        ~doc:
          "Anytime mode: cap the total number of Monte Carlo estimator \
           trials across the whole run.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (runs are reproducible).")

let query_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"QUERY" ~doc:"The UA query (or program with let views).")

let faultpoints_arg =
  Arg.(
    value & opt_all string []
    & info [ "faultpoints" ] ~docv:"SITE[:N][@MODE][,...]"
        ~doc:
          "Arm fault-injection sites for robustness drills (comma-separated, \
           repeatable), like the PQDB_FAULTPOINTS environment variable.  \
           Each entry names a known site, optionally with a shot count and \
           a behavior: $(b,\\@raise) (default), $(b,\\@delay:MS), \
           $(b,\\@stall) (block until disarmed, capped), or $(b,\\@torn) \
           (truncated write).")

let shard_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shard-size" ] ~docv:"COST"
        ~doc:
          "Streaming: worst-case-trial cost ceiling per shard.  Bounds \
           resident memory and the work a crash can lose.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Streaming: append every completed shard to this crash-safe \
           journal (CRC-framed, fsync'd before the shard is reported).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume from the journal of an interrupted run (implies \
           $(b,--checkpoint) $(docv)): completed shards are replayed \
           bit-identically, computation restarts at the first gap.")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Streaming: attempts after a shard's first failure before it is \
           quarantined (reported with sound a-priori brackets and the typed \
           error).")

let asserts_arg =
  Arg.(
    value & opt_all string []
    & info [ "assert" ] ~docv:"CONSTRAINT"
        ~doc:
          "Condition answers on an integrity constraint (repeatable; the \
           active set is the conjunction): $(b,fd[K -> D](table)) — a \
           functional dependency, $(b,empty(q)) — a denial (q has no \
           answer), or $(b,(q)) — q has some answer.  Confidences become \
           Pr(tuple | constraints), renormalized by Pr(constraints); an \
           unsatisfiable constraint set is a typed error, never a division \
           by zero.")

let run_term =
  Term.(
    const run_cmd $ db_arg $ tables_arg $ query_file_arg $ approx_arg
    $ optimize_arg $ delta_arg $ eps0_arg $ deadline_arg $ max_trials_arg
    $ seed_arg $ shard_size_arg $ checkpoint_arg $ resume_arg $ retries_arg
    $ faultpoints_arg $ asserts_arg $ query_arg)

let run_cmd_info =
  Cmd.info "run" ~doc:"Evaluate a UA query over CSV base tables."

let parse_term =
  Term.(
    const parse_cmd
    $ Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"QUERY" ~doc:"The query to parse."))

let parse_cmd_info = Cmd.info "parse" ~doc:"Parse a query, print the algebra."

let demo_term =
  Term.(
    const demo_cmd
    $ Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"NAME" ~doc:"coin | cleaning | sensors")
    $ seed_arg)

let demo_cmd_info = Cmd.info "demo" ~doc:"Run a built-in scenario."

let k_arg =
  Arg.(
    value & opt int 3
    & info [ "k" ] ~docv:"K" ~doc:"How many tuples to return (default 3).")

let compile_fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "compile-fuel" ] ~docv:"FUEL"
        ~doc:
          "Lineage-compilation fuel per candidate (0 disables compilation \
           and recovers pure-sampling multisimulation).")

let topk_term =
  Term.(
    const topk_cmd $ db_arg $ tables_arg $ query_file_arg $ k_arg $ delta_arg
    $ compile_fuel_arg $ deadline_arg $ max_trials_arg $ seed_arg
    $ faultpoints_arg $ asserts_arg $ query_arg)

let topk_cmd_info =
  Cmd.info "topk"
    ~doc:
      "Rank the query's possible tuples by confidence (interval-pruning \
       multisimulation) and return the k most probable."

let explain_term =
  Term.(const explain_cmd $ db_arg $ tables_arg $ query_file_arg $ query_arg)

let explain_cmd_info =
  Cmd.info "explain"
    ~doc:
      "Evaluate exactly and print each result tuple's provenance (the \
       precedes-relation of Section 6)."

let gen_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "gen" ] ~docv:"N"
        ~doc:
          "Generate N synthetic lineage sets (mostly Bernoulli singletons \
           with a hard random-DNF minority) instead of loading a database.")

let gen_seed_arg =
  Arg.(
    value & opt int 209
    & info [ "gen-seed" ] ~docv:"SEED"
        ~doc:"Seed for the synthetic $(b,--gen) workload.")

let relation_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "relation" ] ~docv:"NAME"
        ~doc:
          "With $(b,--db): compute confidence for every possible tuple of \
           this stored relation.")

let eps_arg =
  Arg.(
    value & opt float 0.1
    & info [ "eps" ] ~docv:"EPS"
        ~doc:"Additive error target of each confidence interval.")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Distributed mode: deal shards to N worker processes (spawned \
           from this executable's $(b,worker) subcommand) and reconcile \
           their answers, surviving worker crashes by reassignment.  0 \
           (default) runs in-process.  stdout is byte-identical either \
           way.")

let connect_arg =
  Arg.(
    value & opt_all string []
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:
          "Remote mode: instead of forking local workers, dial a \
           $(b,pqdb worker --listen) endpoint (repeatable; a bare PORT \
           means 127.0.0.1).  One worker per occurrence unless \
           $(b,--workers) asks for more, in which case endpoints are dealt \
           round-robin.  Remote links are partition-tolerant: an expired \
           lease suspends the worker and requeues its shard; lost \
           connections are redialed ($(b,--reconnects)); stdout stays \
           byte-identical throughout.")

let lease_ttl_arg =
  Arg.(
    value & opt float 30.
    & info [ "lease-ttl" ] ~docv:"SECONDS"
        ~doc:
          "Lease granted to each admitted worker, renewed by its \
           heartbeats: a worker silent past the TTL has its in-flight \
           shard reassigned even if the socket still looks alive.  Must \
           exceed $(b,--heartbeat-interval) and sit below \
           $(b,--io-timeout) when one is set.")

let heartbeat_interval_arg =
  Arg.(
    value & opt float 0.25
    & info [ "heartbeat-interval" ] ~docv:"SECONDS"
        ~doc:
          "Worker heartbeat cadence, i.e. the bound on inter-frame silence \
           from a healthy worker.  Must be below $(b,--lease-ttl); workers \
           clamp their own cadence if a coordinator's lease would outpace \
           it.")

let reconnects_arg =
  Arg.(
    value & opt (some int) None
    & info [ "reconnects" ] ~docv:"N"
        ~doc:
          "Redial a lost remote connection up to N times per worker slot, \
           with capped jittered backoff; the fresh connection \
           re-handshakes before rejoining.  Default: 3 when \
           $(b,--connect) is given, else 0.")

let batch_term =
  Term.(
    const batch_cmd $ db_arg $ relation_arg $ gen_arg $ gen_seed_arg $ eps_arg
    $ delta_arg $ seed_arg $ compile_fuel_arg $ shard_size_arg
    $ checkpoint_arg $ resume_arg $ retries_arg $ deadline_arg
    $ max_trials_arg $ workers_arg $ connect_arg $ lease_ttl_arg
    $ heartbeat_interval_arg $ reconnects_arg
    $ Arg.(
        value
        & opt (some float) None
        & info [ "io-timeout" ] ~docv:"SECONDS"
            ~doc:
              "Deadline on every coordinator-side worker send/recv \
               (select-guarded): a worker wedged mid-frame is treated as \
               lost and its shard reassigned, instead of hanging the run.  \
               Pick it above the worker heartbeat interval and the lease \
               TTL.  Default: block.")
    $ asserts_arg $ faultpoints_arg)

let batch_cmd_info =
  Cmd.info "batch"
    ~doc:
      "Streaming sharded batch confidence: per-tuple (eps, delta) intervals \
       over raw lineage, with optional crash-safe checkpointing, resume, \
       retry/quarantine containment, budget-aware shard scheduling and \
       multi-process execution ($(b,--workers)).  stdout is one \
       bit-reproducible line per tuple; diagnostics go to stderr."

let worker_term =
  Term.(
    const worker_cmd $ db_arg $ relation_arg $ gen_arg $ gen_seed_arg
    $ eps_arg $ delta_arg $ seed_arg $ compile_fuel_arg $ shard_size_arg
    $ Arg.(
        value
        & opt (some string) None
        & info [ "listen" ] ~docv:"HOST:PORT"
            ~doc:
              "Serve coordinator connections on a TCP socket instead of \
               stdin/stdout (a bare PORT binds 127.0.0.1; port 0 picks an \
               ephemeral port, reported on stdout).  Sessions are served \
               one at a time; compiled lineage is cached across sessions \
               per data source.  Survives coordinator restarts: each \
               session re-handshakes with the same drift-refusal probe.")
    $ heartbeat_interval_arg
    $ Arg.(
        value
        & opt (some int) None
        & info [ "sessions" ] ~docv:"N"
            ~doc:
              "With $(b,--listen): exit after serving N coordinator \
               sessions.  Default: serve forever.")
    $ faultpoints_arg)

let worker_cmd_info =
  Cmd.info "worker"
    ~doc:
      "Shard worker for $(b,batch --workers): speaks the coordinator \
       protocol on stdin/stdout (orders in, bit-exact shard outcomes out), \
       or on a TCP socket with $(b,--listen) for $(b,batch --connect).  \
       Takes the same input parameters as $(b,batch); the handshake refuses \
       a coordinator whose parameters or seed drifted.  Not intended for \
       interactive use."

let convert_term =
  Term.(
    const convert_cmd
    $ Arg.(
        value & flag
        & info [ "verify" ]
            ~doc:
              "After converting, re-load both sides and compare their \
               canonical binary images byte for byte.")
    $ Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"SRC"
            ~doc:"Source database (text directory or $(b,.udbb) file).")
    $ Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"DST"
            ~doc:
              "Destination; a $(b,.udbb) suffix selects the binary columnar \
               format, anything else the text directory format."))

let convert_cmd_info =
  Cmd.info "convert"
    ~doc:
      "Convert a stored database between the text directory format and the \
       binary columnar $(b,.udbb) format (either direction, dispatched on \
       the destination's extension).  Binary databases memory-map on load: \
       cold start touches only the pages it needs, and concurrent \
       $(b,batch --workers) processes share one read-only mapping through \
       the page cache."

let gen_db_term =
  Term.(
    const gen_db_cmd
    $ Arg.(
        value & opt int 1000
        & info [ "tuples" ] ~docv:"N"
            ~doc:"Uncertain tuples in the generated $(b,events) relation.")
    $ Arg.(
        value & opt int 3
        & info [ "clauses" ] ~docv:"K"
            ~doc:"Maximum clause rows per tuple (capped at 3).")
    $ gen_seed_arg
    $ Arg.(
        value & opt int 0
        & info [ "dirty" ] ~docv:"N"
            ~doc:
              "Also generate a duplicate-heavy $(b,people) relation: N \
               entities, each with up to $(b,--max-dups) independent \
               candidate tuples sharing the key $(b,id) — the \
               deduplication fixture for conditioning on \
               $(b,fd[id -> name](people)).  Default: 0 (omit it).")
    $ Arg.(
        value & opt int 3
        & info [ "max-dups" ] ~docv:"K"
            ~doc:"Duplicate candidates per $(b,--dirty) entity (1 to K).")
    $ Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"DEST"
            ~doc:
              "Where to write the database ($(b,.udbb) for binary, \
               otherwise a text directory)."))

let gen_db_cmd_info =
  Cmd.info "gen"
    ~doc:
      "Generate a synthetic uncertain database (relation $(b,events) with \
       exact-rational Bernoulli lineage, plus a complete $(b,tags) \
       relation) and store it — the fixture behind the storage CI job and \
       the $(b,convert --verify) round-trip."

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket endpoint (exclusive with $(b,--port)).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:
          "TCP endpoint on 127.0.0.1 (exclusive with $(b,--socket)).")

let serve_term =
  Term.(
    const serve_cmd
    $ Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"DB"
            ~doc:
              "The database to serve ($(b,.udbb) file or text directory); \
               a binary database stays resident as one shared read-only \
               mapping.")
    $ socket_arg $ port_arg
    $ Arg.(
        value
        & opt int Pqdb_montecarlo.Memo.default_entries
        & info [ "cache-entries" ] ~docv:"N"
            ~doc:
              "Compiled-lineage cache capacity in entries (LRU beyond it).")
    $ Arg.(
        value
        & opt (some int) None
        & info [ "session-trials" ] ~docv:"N"
            ~doc:
              "Admission control: estimator-trial allowance per session; \
               queries degrade anytime-style as it drains and are refused \
               once it is spent.  Default: unlimited (bit-identical \
               replies).")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "session-deadline" ] ~docv:"SECONDS"
            ~doc:
              "Admission control: wall-clock allowance per session.  \
               Default: unlimited.")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "io-timeout" ] ~docv:"SECONDS"
            ~doc:
              "Deadline on every session frame write (select-guarded); a \
               peer that stops reading gets its session closed instead of \
               wedging a thread.  Default: block.")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "idle-timeout" ] ~docv:"SECONDS"
            ~doc:
              "Reap sessions idle (no request) longer than this.  \
               Default: $(b,--io-timeout), else never.")
    $ Arg.(
        value
        & opt (some int) None
        & info [ "max-sessions" ] ~docv:"N"
            ~doc:
              "In-flight session cap: beyond it new connections are shed \
               with an immediate typed busy reply instead of queueing \
               (counted in $(b,stats)).  Default: unbounded.")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "watchdog" ] ~docv:"SECONDS"
            ~doc:
              "Wedged-session watchdog: a single request executing longer \
               than this gets its socket shut down, unblocking the peer.  \
               Default: off.")
    $ faultpoints_arg)

let serve_cmd_info =
  Cmd.info "serve"
    ~doc:
      "Resident daemon: load the database once, serve $(b,conf) queries \
       over a socket, and answer repeated or equivalent queries from a \
       shared compiled-lineage cache (normalization and compilation \
       skipped; replies byte-identical to cold runs).  Stop it with \
       $(b,pqdb query ... shutdown)."

let query_term =
  Term.(
    const query_cmd $ socket_arg $ port_arg
    $ Arg.(
        value & opt int 25
        & info [ "retries" ] ~docv:"N"
            ~doc:
              "Connection attempts before giving up — lets scripts query a \
               daemon they just forked, and waits out a daemon shedding \
               load.  Attempt $(i,k) backs off exponentially from \
               $(b,--retry-delay) (capped at 2s, deterministic jitter).  \
               Default 25.")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "retry-delay" ] ~docv:"SECONDS"
            ~doc:
              "Base delay between connection attempts (doubles per \
               attempt, capped).  Default 0.2.")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "timeout" ] ~docv:"SECONDS"
            ~doc:
              "End-to-end budget for the query: $(b,conf) requests carry \
               $(b,deadline=)$(docv) so the server answers by the cutoff \
               with the sound anytime brackets reached so far (a degraded \
               but correct answer), and the client turns a wedged daemon \
               into a typed timeout error slightly after.  Default: wait \
               forever.")
    $ asserts_arg
    $ Arg.(
        value & pos_all string []
        & info [] ~docv:"REQUEST"
            ~doc:
              "The request, e.g.: $(b,conf events eps=0.05 seed=7), \
               $(b,stats), $(b,shutdown).  Words are joined with spaces."))

let query_cmd_info =
  Cmd.info "query"
    ~doc:
      "Submit one request to a running $(b,pqdb serve) daemon and print \
       the reply body ($(b,conf) output is the batch per-tuple line format, \
       bit-exact)."

let compact_term =
  Term.(
    const compact_cmd
    $ Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"The checkpoint journal to compact."))

let checkpoint_group =
  Cmd.group
    (Cmd.info "checkpoint"
       ~doc:"Maintain crash-recovery journals written by $(b,--checkpoint).")
    [
      Cmd.v
        (Cmd.info "compact"
           ~doc:
             "Rewrite a journal keeping only the latest record per shard \
              (atomic, crash-safe): a journal grown across many partial \
              runs resumes in O(live shards).  Conflicting duplicates fail \
              typed, exactly as resume would.")
        compact_term;
    ]

let repl_term = Term.(const repl_cmd $ seed_arg)

let repl_cmd_info =
  Cmd.info "repl" ~doc:"Interactive session: load CSVs, define views, query."

let main =
  Cmd.group
    (Cmd.info "pqdb" ~version:"1.0.0"
       ~doc:
         "Probabilistic database with approximate predicates and expressive \
          queries (Koch, PODS 2008).")
    [
      Cmd.v run_cmd_info run_term;
      Cmd.v parse_cmd_info parse_term;
      Cmd.v demo_cmd_info demo_term;
      Cmd.v repl_cmd_info repl_term;
      Cmd.v explain_cmd_info explain_term;
      Cmd.v topk_cmd_info topk_term;
      Cmd.v batch_cmd_info batch_term;
      Cmd.v worker_cmd_info worker_term;
      Cmd.v convert_cmd_info convert_term;
      Cmd.v gen_db_cmd_info gen_db_term;
      Cmd.v serve_cmd_info serve_term;
      Cmd.v query_cmd_info query_term;
      checkpoint_group;
    ]

let () = exit (Cmd.eval' main)
