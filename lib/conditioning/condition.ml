module Pqdb_error = Pqdb_runtime.Pqdb_error
module Ua = Pqdb_ast.Ua
module Uconstraint = Pqdb_ast.Uconstraint
module Exact = Pqdb_urel.Confidence
open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
open Pqdb_montecarlo

type compiled = {
  set : Constraint_set.t;
  positive : Assignment.t list;
  violation : Assignment.t list;
}

let constraints c = c.set
let is_trivial c = Constraint_set.is_empty c.set

(* DNF conjunction: the clause-set product, dropping inconsistent pairs.
   [Assignment.union] is exactly "both clauses hold in the same world".
   The trivially-true DNF [{∅}] short-circuits so that conditioning on an
   empty constraint set leaves a tuple's lineage (and hence its cache keys)
   untouched. *)
let conjoin a b =
  match (a, b) with
  | [ x ], other when Assignment.is_empty x -> other
  | other, [ x ] when Assignment.is_empty x -> other
  | _ ->
      Lineage.normalize
        (List.concat_map
           (fun ca -> List.filter_map (fun cb -> Assignment.union ca cb) b)
           a)

(* Lineage of a Boolean query: the DNF of the nullary projection — nonempty
   exactly in the worlds where the query has answers. *)
let boolean_clauses udb q =
  let u = Pqdb.Eval_exact.eval udb (Ua.project [] q) in
  Urelation.clauses_for u (Tuple.of_list [])

let fd_lineage udb ~table ~key ~determined =
  let u =
    match Udb.find udb table with
    | u -> u
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "fd constraint on unknown table %S (database has: %s)"
             table
             (String.concat ", " (Udb.names udb)))
  in
  let attrs = Schema.attributes (Urelation.schema u) in
  List.iter
    (fun a ->
      if not (List.mem a attrs) then
        invalid_arg
          (Printf.sprintf "fd constraint: %S is not an attribute of %S" a
             table))
    (key @ determined);
  boolean_clauses udb (Pqdb.Egd.fd_violation ~table ~attrs ~key ~determined)

let compile udb set =
  let positive = ref [ Assignment.empty ] in
  let violation = ref [] in
  List.iter
    (fun item ->
      match item with
      | Uconstraint.Holds q -> positive := conjoin !positive (boolean_clauses udb q)
      | Uconstraint.Denial q -> violation := !violation @ boolean_clauses udb q
      | Uconstraint.Fd { table; key; determined } ->
          violation := !violation @ fd_lineage udb ~table ~key ~determined)
    (Constraint_set.items set);
  let violation = if !violation = [] then [] else Lineage.normalize !violation in
  { set; positive = !positive; violation }

(* ------------------------------------------------------------------ *)
(* Exact path (rationals).                                             *)

let exact_dnf w = function
  | [] -> Rational.zero
  | clauses -> Exact.by_decomposition w clauses

(* Theorem 4.4 on the constraint event c = E ∧ ¬V:
   Pr(φ ∧ c) = Pr(φ ∧ E) − Pr(φ ∧ E ∧ V), all positive DNFs. *)
let exact_joint w c phi =
  let pe = conjoin phi c.positive in
  let with_e = exact_dnf w pe in
  match c.violation with
  | [] -> with_e
  | v -> Rational.sub with_e (exact_dnf w (conjoin pe v))

let probability w c = exact_joint w c [ Assignment.empty ]

let exact_conditioned w c phi =
  let den = probability w c in
  if Rational.is_zero den then
    Pqdb_error.unsatisfiable ~context:"Condition.exact_conditioned"
      (Printf.sprintf "Pr(c) = 0 for constraint set {%s}"
         (Constraint_set.to_string c.set))
  else Rational.div (exact_joint w c phi) den

let exact_confidences udb c q =
  let u = Pqdb.Eval_exact.eval udb q in
  let w = Udb.wtable udb in
  List.map
    (fun (t, clauses) -> (t, exact_conditioned w c clauses))
    (Urelation.clauses_by_tuple u)

(* ------------------------------------------------------------------ *)
(* Anytime path (compiled lineage + Karp-Luby on the residual).        *)

type estimate = {
  value : float;
  lo : float;
  hi : float;
  trials : int;
  exact : bool;
}

type part = { p_value : float; p_lo : float; p_hi : float; p_trials : int }

let zero_part = { p_value = 0.; p_lo = 0.; p_hi = 0.; p_trials = 0 }

let part_salt base suffix = if base = "" then "" else base ^ suffix

(* One anytime estimate of a positive DNF.  [key] (default [clauses]) is
   what the cache entry is keyed on; together with [salt] it must determine
   [clauses] — the conditioned paths key on the tuple's own lineage and
   salt with the constraint-set fingerprint plus a conjunct tag, so the
   cached tree is the conjoined compile while lookups stay as cheap as the
   unconditioned ones. *)
let solve_part ?budget ?fuel ?cache ?(salt = "") ?key rng w clauses ~eps
    ~delta =
  match clauses with
  | [] -> zero_part
  | _ ->
      let tree =
        match cache with
        | Some memo ->
            Memo.find_or_compile memo ?fuel ~salt
              ~build:(fun () -> Compile.compile ?fuel w clauses)
              w
              (Option.value key ~default:clauses)
        | None -> Compile.compile ?fuel w clauses
      in
      let o = Compile.solve ?budget rng tree ~eps ~delta in
      {
        p_value = o.Compile.value;
        p_lo = o.Compile.lo;
        p_hi = o.Compile.hi;
        p_trials = o.Compile.trials;
      }

let part_interval p = Interval.make p.p_lo p.p_hi

(* Pr(ψ ∧ c) as a sound bracket: the difference of the two conjunct
   brackets, clamped to [0, 1] (the true difference is a probability).
   Each conjunct gets δ/4 so the four solves behind one conditioned answer
   (two numerator, two denominator) union-bound to the requested δ. *)
let solve_joint ?budget ?fuel ?cache ~salt ~key rng w c clauses ~eps ~delta =
  let rngs = Rng.split_n rng 2 in
  let pe = conjoin clauses c.positive in
  let with_e =
    solve_part ?budget ?fuel ?cache ~salt:(part_salt salt "#e") ?key
      rngs.(0) w pe ~eps ~delta:(delta /. 4.)
  in
  let with_ev =
    match c.violation with
    | [] -> zero_part
    | v ->
        solve_part ?budget ?fuel ?cache ~salt:(part_salt salt "#ev") ?key
          rngs.(1) w (conjoin pe v) ~eps ~delta:(delta /. 4.)
  in
  let iv =
    Interval.clamp ~lo:0. ~hi:1.
      (Interval.difference (part_interval with_e) (part_interval with_ev))
  in
  let value =
    Float.max iv.Interval.lo
      (Float.min iv.Interval.hi (with_e.p_value -. with_ev.p_value))
  in
  (value, iv, with_e.p_trials + with_ev.p_trials)

type denominator = {
  d_value : float;
  d_lo : float;
  d_hi : float;
  d_trials : int;
  d_exact : bool;
}

let denominator_interval d = Interval.make d.d_lo d.d_hi
let denominator_trials d = d.d_trials

let solve_denominator ?budget ?fuel ?cache rng w c ~eps ~delta =
  let salt = Constraint_set.fingerprint c.set in
  let value, iv, trials =
    solve_joint ?budget ?fuel ?cache ~salt:(part_salt salt "#c")
      ~key:(Some [ Assignment.empty ]) rng w c [ Assignment.empty ] ~eps
      ~delta
  in
  let detail reason =
    Printf.sprintf "%s for constraint set {%s}: Pr(c) ∈ [%g, %g]" reason
      (Constraint_set.to_string c.set)
      iv.Interval.lo iv.Interval.hi
  in
  if iv.Interval.hi <= 0. then
    Pqdb_error.unsatisfiable ~context:"Condition.solve_denominator"
      (detail "Pr(c) = 0 (certified)")
  else if iv.Interval.lo <= 0. then
    Pqdb_error.unsatisfiable ~context:"Condition.solve_denominator"
      (detail "interval straddles zero (cannot certify Pr(c) > 0)")
  else
    {
      d_value = Float.max iv.Interval.lo (Float.min iv.Interval.hi value);
      d_lo = iv.Interval.lo;
      d_hi = iv.Interval.hi;
      d_trials = trials;
      d_exact = trials = 0;
    }

let solve_clauses ?budget ?fuel ?cache rng w c den clauses ~eps ~delta =
  let salt = Constraint_set.fingerprint c.set in
  let value, num, trials =
    solve_joint ?budget ?fuel ?cache ~salt:(part_salt salt "#q")
      ~key:(Some clauses) rng w c clauses ~eps ~delta
  in
  let iv =
    Interval.clamp ~lo:0. ~hi:1.
      (Interval.ratio ~num ~den:(denominator_interval den))
  in
  let raw = value /. den.d_value in
  {
    value = Float.max iv.Interval.lo (Float.min iv.Interval.hi raw);
    lo = iv.Interval.lo;
    hi = iv.Interval.hi;
    trials;
    exact = den.d_exact && trials = 0;
  }

let approx_confidences ?budget ?fuel ?cache ?(seed = 42) ?(eps = 0.05)
    ?(delta = 0.01) udb c q =
  let u = Pqdb.Eval_exact.eval udb q in
  let w = Udb.wtable udb in
  let pairs = Urelation.clauses_by_tuple u in
  let n = List.length pairs in
  (* Lane n is the denominator's; lanes 0..n-1 are per-tuple.  Splitting
     from one seed keeps the whole conditioned answer a pure function of
     (db, query, constraint set, seed, eps, delta, fuel). *)
  let rngs = Rng.split_n (Rng.create ~seed) (n + 1) in
  let den = solve_denominator ?budget ?fuel ?cache rngs.(n) w c ~eps ~delta in
  List.mapi
    (fun i (t, clauses) ->
      ( t,
        solve_clauses ?budget ?fuel ?cache rngs.(i) w c den clauses ~eps
          ~delta ))
    pairs

let topk ?budget ?fuel ?cache ?seed ?eps ?delta ~k udb c q =
  if k < 0 then invalid_arg "Condition.topk: k must be >= 0";
  let ranked =
    List.stable_sort
      (fun (_, a) (_, b) -> compare b.value a.value)
      (approx_confidences ?budget ?fuel ?cache ?seed ?eps ?delta udb c q)
  in
  List.filteri (fun i _ -> i < k) ranked
