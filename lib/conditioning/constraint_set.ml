module Uconstraint = Pqdb_ast.Uconstraint

(* Insertion order is kept for display; semantics (and the fingerprint) are
   order- and duplicate-insensitive. *)
type t = Uconstraint.t list

let empty = []
let is_empty t = t = []

let add t c =
  Uconstraint.validate c;
  if List.exists (Uconstraint.equal c) t then t else t @ [ c ]

let of_list cs = List.fold_left add empty cs
let items t = t
let cardinal = List.length
let fingerprint t = Uconstraint.set_fingerprint t
let equal a b = fingerprint a = fingerprint b

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
    Uconstraint.pp fmt t

let to_string t = Format.asprintf "%a" pp t
