(** Conditioning: renormalized confidence under a constraint set (Koch &
    Olteanu, "Conditioning Probabilistic Databases", on top of the source
    paper's approximation machinery).

    A constraint set [c] denotes the event
    [E ∧ ¬V] — every [Holds] query nonempty ([E], a conjunction) and every
    [Denial]/[Fd] violation query empty ([¬V], [V] the union of violation
    lineages).  Both [E] and [V] are positive-DNF events over the W table,
    so Theorem 4.4 turns every conditioned quantity into differences of
    positive-DNF probabilities:

    {v Pr(φ | c) = Pr(φ ∧ c) / Pr(c)
                 = (Pr(φ∧E) − Pr(φ∧E∧V)) / (Pr(E) − Pr(E∧V)) v}

    Each of the four terms is answered exactly where the lineage compiles
    ({!Pqdb_montecarlo.Compile}) and by Karp–Luby on the residual, yielding
    sound anytime brackets; the difference and ratio are propagated through
    interval arithmetic ({!Pqdb_numeric.Interval.difference} /
    {!Pqdb_numeric.Interval.ratio}), so the reported [lo, hi] holds with
    probability ≥ 1 − δ (δ/4 per solve, union bound over the ≤ 4 solves
    behind one answer).  A denominator certified zero — or not certifiable
    above zero — raises the typed
    {!Pqdb_runtime.Pqdb_error.Unsatisfiable_condition}; no NaN or division
    by zero can escape. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
open Pqdb_montecarlo

type compiled
(** A constraint set translated against a database: the [E] and [V] lineage
    DNFs.  Valid while the W table's generation is unchanged. *)

val compile : Udb.t -> Constraint_set.t -> compiled
(** Evaluate each member constraint to its lineage ([Fd] via
    {!Pqdb.Egd.fd_violation} with the table's schema looked up in the
    database).  @raise Invalid_argument on an unknown table or attribute in
    an [Fd] constraint. *)

val constraints : compiled -> Constraint_set.t
val is_trivial : compiled -> bool
(** The empty constraint set: conditioning is the identity. *)

val conjoin : Assignment.t list -> Assignment.t list -> Assignment.t list
(** DNF conjunction: clause-set product via {!Assignment.union}, dropping
    inconsistent pairs, normalized.  Exposed for tests. *)

(** {1 Exact (rational) path} *)

val probability : Wtable.t -> compiled -> Rational.t
(** Exact [Pr(c)]. *)

val exact_conditioned :
  Wtable.t -> compiled -> Assignment.t list -> Rational.t
(** Exact [Pr(φ | c)] for a tuple lineage [φ].
    @raise Pqdb_runtime.Pqdb_error.Error ([Unsatisfiable_condition]) when
    [Pr(c) = 0]. *)

val exact_confidences :
  Udb.t -> compiled -> Pqdb_ast.Ua.t -> (Tuple.t * Rational.t) list
(** Exact conditioned confidence of every possible answer tuple.  Like
    {!Pqdb.Eval_exact.eval}, mutates the W table if the query contains
    [repair-key] (constraints themselves cannot). *)

(** {1 Anytime path} *)

type estimate = {
  value : float;  (** point estimate, clamped into [\[lo, hi\]] *)
  lo : float;
  hi : float;
      (** sound bracket for the conditioned confidence, holding with
          probability ≥ 1 − δ *)
  trials : int;  (** sampling spent on this tuple's numerator (the shared
                     denominator's spend is reported once, on it) *)
  exact : bool;  (** no sampling anywhere: numerator and denominator both
                     compiled exactly *)
}

type denominator
(** A solved [Pr(c)] bracket, certified positive — computed once and shared
    by every tuple of a batch. *)

val solve_denominator :
  ?budget:Budget.t ->
  ?fuel:int ->
  ?cache:Memo.t ->
  Rng.t ->
  Wtable.t ->
  compiled ->
  eps:float ->
  delta:float ->
  denominator
(** @raise Pqdb_runtime.Pqdb_error.Error ([Unsatisfiable_condition]) when
    the [Pr(c)] bracket is certified zero or cannot be bounded away from
    zero. *)

val denominator_interval : denominator -> Interval.t
val denominator_trials : denominator -> int

val solve_clauses :
  ?budget:Budget.t ->
  ?fuel:int ->
  ?cache:Memo.t ->
  Rng.t ->
  Wtable.t ->
  compiled ->
  denominator ->
  Assignment.t list ->
  eps:float ->
  delta:float ->
  estimate
(** Conditioned confidence of one tuple lineage.  With a [cache], entries
    are keyed on the tuple's own clauses salted with the constraint-set
    fingerprint (plus a conjunct tag), so conditioned and unconditioned
    entries never alias and a warm conditioned reply is byte-identical to
    its cold run. *)

val approx_confidences :
  ?budget:Budget.t ->
  ?fuel:int ->
  ?cache:Memo.t ->
  ?seed:int ->
  ?eps:float ->
  ?delta:float ->
  Udb.t ->
  compiled ->
  Pqdb_ast.Ua.t ->
  (Tuple.t * estimate) list
(** Evaluate the (positive) query and estimate every answer tuple's
    conditioned confidence.  Deterministic per [seed] (defaults: [seed=42],
    [eps=0.05], [delta=0.01]). *)

val topk :
  ?budget:Budget.t ->
  ?fuel:int ->
  ?cache:Memo.t ->
  ?seed:int ->
  ?eps:float ->
  ?delta:float ->
  k:int ->
  Udb.t ->
  compiled ->
  Pqdb_ast.Ua.t ->
  (Tuple.t * estimate) list
(** The [k] answer tuples ranked by conditioned confidence (descending,
    stable on ties). *)
