(** A conjunction of integrity constraints ({!Pqdb_ast.Uconstraint}),
    validated on construction, attached to a database or a serve session.

    The set is semantically a conjunction: order-insensitive, duplicates
    collapse.  {!fingerprint} is the canonical rendering used to salt
    compiled-lineage cache keys ({!Pqdb_montecarlo.Memo}); two sets are
    {!equal} iff their fingerprints are. *)

type t

val empty : t
val is_empty : t -> bool

val add : t -> Pqdb_ast.Uconstraint.t -> t
(** Validates ({!Pqdb_ast.Uconstraint.validate}) and appends; adding a
    constraint already present returns the set unchanged.
    @raise Invalid_argument on a constraint outside the positive
    confidence-free fragment. *)

val of_list : Pqdb_ast.Uconstraint.t list -> t
val items : t -> Pqdb_ast.Uconstraint.t list
(** In insertion order. *)

val cardinal : t -> int

val fingerprint : t -> string
(** Canonical, order- and duplicate-insensitive; [""] iff empty. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
