
(* Relations are stored as thunks so a storage backend can defer decoding
   a relation's segments until a query first touches it (the mmap'd binary
   format relies on this: cold start pays only for the pages actually
   read).  Eager registration wraps in [Lazy.from_val], so the common path
   allocates nothing extra. *)
type t = {
  mutable w : Wtable.t;
  mutable rels : (string * Urelation.t Lazy.t) list;
  mutable complete : string list;
}

let create () = { w = Wtable.create (); rels = []; complete = [] }
let wtable t = t.w

let check_fresh t name =
  if List.mem_assoc name t.rels then
    invalid_arg ("Udb: relation already defined: " ^ name)

let add_complete t name rel =
  check_fresh t name;
  t.rels <- t.rels @ [ (name, Lazy.from_val (Urelation.of_relation rel)) ];
  t.complete <- name :: t.complete

let add_urelation ?(complete = false) t name u =
  check_fresh t name;
  t.rels <- t.rels @ [ (name, Lazy.from_val u) ];
  if complete then t.complete <- name :: t.complete

let add_lazy ?(complete = false) t name thunk =
  check_fresh t name;
  t.rels <- t.rels @ [ (name, thunk) ];
  if complete then t.complete <- name :: t.complete

let find t name =
  match List.assoc_opt name t.rels with
  | Some u -> Lazy.force u
  | None -> raise Not_found

let mem t name = List.mem_assoc name t.rels
let names t = List.map fst t.rels
let is_complete t name = List.mem name t.complete
let is_decoded t name =
  match List.assoc_opt name t.rels with
  | Some u -> Lazy.is_val u
  | None -> raise Not_found

let copy t =
  (* The W table is rebuilt variable by variable; U-relations are
     immutable, and undecoded thunks are shared (forcing is idempotent). *)
  let w = Wtable.create () in
  List.iter
    (fun v ->
      let dist =
        List.init (Wtable.domain_size t.w v) (fun x -> Wtable.prob t.w v x)
      in
      ignore (Wtable.add_var ~name:(Wtable.name t.w v) w dist))
    (Wtable.vars t.w);
  { w; rels = t.rels; complete = t.complete }

let pp fmt t =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "W table:@,%a@," Wtable.pp t.w;
  List.iter
    (fun (name, u) ->
      Format.fprintf fmt "%s%s:@,%a@," name
        (if is_complete t name then " (complete)" else "")
        Urelation.pp (Lazy.force u))
    t.rels;
  Format.pp_close_box fmt ()
