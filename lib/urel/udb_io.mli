(** Persistence for U-relational databases.

    Two formats, dispatched on the path: a name ending in [".udbb"] uses
    the binary columnar single-file format of {!Udb_binary} (mmap'd
    zero-copy load, lazy per-relation decode); anything else uses the
    text format below.  Both round-trip exactly — confidences computed
    from a reloaded database are bit-identical either way.

    In the text format, a database is stored as a directory of CSV files:
    - [manifest.csv] — one row per relation: name, complete flag;
    - [wtable.csv] — one row per (variable, value): id, name, value,
      probability (exact rational syntax, e.g. [1/3]);
    - [rel_<name>.csv] — the U-relation: a [D] column holding the condition
      as [x<id>=<val>] atoms joined by [';'] (empty for unconditional rows),
      followed by the data columns.

    Values round-trip through {!Pqdb_relational.Value.parse}; string values
    that look like numbers are quoted by the CSV writer and therefore
    survive.  Variable ids are dense and preserved exactly, so conditions
    remain valid across save/load. *)

val condition_to_string : Assignment.t -> string
(** The [D]-column syntax: [x<id>=<val>] atoms joined by [';'] ([""] for the
    empty condition).  Canonical — bindings print in sorted variable order —
    so it doubles as a stable fingerprint key for checkpoint journals. *)

val condition_of_string : source:string -> string -> Assignment.t
(** Inverse of {!condition_to_string}.  [source] names the input in errors.
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input]) on bad atom
    syntax. *)

val save : string -> Udb.t -> unit
(** [save path udb]: for a [".udbb"] path, one atomically-replaced binary
    file ({!Udb_binary.save}); otherwise [path] is a directory, created if
    needed, whose CSVs are each written atomically (temp file + fsync +
    rename) so a crash mid-save cannot leave a torn database behind.
    @raise Sys_error on I/O failure. *)

val load : string -> Udb.t
(** Dispatches on the extension like {!save}.  Binary loads are mmap'd
    and decode relations lazily; text loads parse everything eagerly.
    @raise Pqdb_runtime.Pqdb_error.Error
    ([Malformed_input {source; _}] naming the offending file) on malformed
    input: truncated or ragged CSVs, unreadable probabilities, duplicate or
    non-dense variable ids, bad condition syntax, manifest problems, missing
    files — or, for the binary format, a bad header/trailer or a segment
    whose CRC mismatches (possibly raised later, at first access to the
    affected relation).  Probability-law violations surface as the typed
    [Invalid_probability] from {!Wtable.add_var}. *)
