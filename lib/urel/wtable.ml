open Pqdb_numeric
open Pqdb_relational

type var = int

type entry = {
  var_name : string;
  dist : Rational.t array;
  dist_float : float array;
  mutable alias : Rng.Alias.dist option;  (* lazily built O(1) sampler *)
}

type t = {
  mutable entries : entry array;
  mutable count : int;
  uid : int;  (* distinct per instance, for cache keys *)
  mutable gen : int;  (* bumped on every mutation, for cache invalidation *)
}

(* Process-unique instance ids: two W tables never share a uid, so a cache
   key built from (uid, gen) can never confuse tables — even a copy gets a
   fresh identity (its variables are re-created, so sharing compiled trees
   across the copy would be incidental, not guaranteed). *)
let next_uid = Atomic.make 0

let create () =
  { entries = [||]; count = 0; uid = Atomic.fetch_and_add next_uid 1; gen = 0 }

let reject detail =
  Pqdb_runtime.Pqdb_error.invalid_probability ~context:"Wtable.add_var" detail

let add_var ?name t dist =
  let dist = Array.of_list dist in
  if Array.length dist = 0 then reject "empty distribution";
  Array.iter
    (fun p ->
      if Rational.sign p <= 0 then reject "probabilities must be positive";
      if Rational.compare p Rational.one > 0 then
        reject "probabilities must be at most 1")
    dist;
  let total = Array.fold_left Rational.add Rational.zero dist in
  if not (Rational.equal total Rational.one) then
    reject "probabilities must sum to 1";
  let id = t.count in
  let var_name =
    match name with Some n -> n | None -> "x" ^ string_of_int id
  in
  let entry =
    {
      var_name;
      dist;
      dist_float = Array.map Rational.to_float dist;
      alias = None;
    }
  in
  if id >= Array.length t.entries then begin
    let capacity = max 8 (2 * Array.length t.entries) in
    let entries = Array.make capacity entry in
    Array.blit t.entries 0 entries 0 t.count;
    t.entries <- entries
  end;
  t.entries.(id) <- entry;
  t.count <- id + 1;
  t.gen <- t.gen + 1;
  id

let uid t = t.uid
let generation t = t.gen
let var_count t = t.count
let vars t = List.init t.count Fun.id

let entry t v =
  if v < 0 || v >= t.count then invalid_arg "Wtable: unknown variable"
  else t.entries.(v)

let name t v = (entry t v).var_name
let domain_size t v = Array.length (entry t v).dist

let prob t v x =
  let e = entry t v in
  if x < 0 || x >= Array.length e.dist then
    invalid_arg "Wtable.prob: value out of domain"
  else e.dist.(x)

let prob_float t v x =
  let e = entry t v in
  if x < 0 || x >= Array.length e.dist_float then
    invalid_arg "Wtable.prob_float: value out of domain"
  else e.dist_float.(x)

let alias t v =
  let e = entry t v in
  match e.alias with
  | Some a -> a
  | None ->
      let a = Rng.Alias.of_weights e.dist_float in
      e.alias <- Some a;
      a

let world_count t =
  let rec go acc v = if v >= t.count then acc else go (acc * domain_size t v) (v + 1) in
  go 1 0

let to_relation t =
  let rows = ref [] in
  for v = t.count - 1 downto 0 do
    let e = t.entries.(v) in
    for x = Array.length e.dist - 1 downto 0 do
      rows :=
        [ Value.Str e.var_name; Value.Int x; Value.Rat e.dist.(x) ] :: !rows
    done
  done;
  Relation.of_rows [ "Var"; "Dom"; "P" ] !rows

let pp fmt t = Relation.pp fmt (to_relation t)
