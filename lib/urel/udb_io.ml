open Pqdb_numeric
open Pqdb_relational

let manifest_file = "manifest.csv"
let wtable_file = "wtable.csv"
let rel_file name = "rel_" ^ name ^ ".csv"

(* --- conditions --------------------------------------------------------- *)

let condition_to_string a =
  String.concat ";"
    (List.map
       (fun (v, x) -> Printf.sprintf "x%d=%d" v x)
       (Assignment.bindings a))

let condition_of_string ~source s =
  if String.trim s = "" then Assignment.empty
  else begin
    let atom part =
      match String.split_on_char '=' (String.trim part) with
      | [ var; value ]
        when String.length var > 1 && var.[0] = 'x' -> begin
          match
            ( int_of_string_opt (String.sub var 1 (String.length var - 1)),
              int_of_string_opt value )
          with
          | Some v, Some x -> (v, x)
          | _ ->
              Pqdb_runtime.Pqdb_error.malformed ~source
                ("bad condition atom " ^ part)
        end
      | _ ->
          Pqdb_runtime.Pqdb_error.malformed ~source
            ("bad condition atom " ^ part)
    in
    Assignment.of_list (List.map atom (String.split_on_char ';' s))
  end

(* --- save ---------------------------------------------------------------- *)

(* Every CSV goes through the atomic writer (temp + fsync + rename), so a
   crash mid-save leaves each file either whole-old or whole-new — never a
   torn CSV inside the directory. *)
let save_csv path rel = Udb_binary.write_file_atomic path (Csv.to_string rel)

let save_text dir udb =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let w = Udb.wtable udb in
  (* W table with names and exact probabilities. *)
  let w_rows =
    List.concat_map
      (fun v ->
        List.init (Wtable.domain_size w v) (fun x ->
            [
              Value.Int v;
              Value.Str (Wtable.name w v);
              Value.Int x;
              Value.Str (Rational.to_string (Wtable.prob w v x));
            ]))
      (Wtable.vars w)
  in
  save_csv
    (Filename.concat dir wtable_file)
    (Relation.of_rows [ "Var"; "Name"; "Dom"; "P" ] w_rows);
  (* Manifest. *)
  (* Relations are sets (sorted), so registration order needs an explicit
     column to survive. *)
  let manifest_rows =
    List.mapi
      (fun i name ->
        [ Value.Int i; Value.Str name; Value.Bool (Udb.is_complete udb name) ])
      (Udb.names udb)
  in
  save_csv
    (Filename.concat dir manifest_file)
    (Relation.of_rows [ "Ord"; "Name"; "Complete" ] manifest_rows);
  (* One file per relation, with the D column first. *)
  List.iter
    (fun name ->
      let u = Udb.find udb name in
      let attrs = Schema.attributes (Urelation.schema u) in
      let rows =
        List.map
          (fun (a, t) ->
            Value.Str (condition_to_string a) :: Tuple.to_list t)
          (Urelation.rows u)
      in
      save_csv
        (Filename.concat dir (rel_file name))
        (Relation.of_rows ("D" :: attrs) rows))
    (Udb.names udb)

(* --- load ---------------------------------------------------------------- *)

(* Every parse failure in a load is a typed [Malformed_input] naming the
   offending file: truncated/ragged CSVs (whatever {!Csv.load} rejects),
   unreadable probabilities, duplicate or non-dense variable ids — the CLI
   and tests match on the type, not on message strings. *)
let load_csv path =
  match Csv.load path with
  | rel -> rel
  | exception (Invalid_argument d | Failure d) ->
      Pqdb_runtime.Pqdb_error.malformed ~source:path d
  | exception Sys_error d -> Pqdb_runtime.Pqdb_error.malformed ~source:path d

let load_text dir =
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  (* Rebuild the W table in id order; ids must come out dense. *)
  let wsource = Filename.concat dir wtable_file in
  let bad_wtable detail = Pqdb_runtime.Pqdb_error.malformed ~source:wsource detail in
  Pqdb_runtime.Faultpoint.fire "udb_io.wtable";
  let wrel = load_csv wsource in
  let entries = Hashtbl.create 16 in
  Relation.iter
    (fun t ->
      match Tuple.to_list t with
      | [ Value.Int v; Value.Str name; Value.Int x; p ] ->
          let prob =
            match p with
            | Value.Str s -> (
                try Rational.of_string s
                with _ -> bad_wtable ("bad probability " ^ s))
            | Value.Int n -> Rational.of_int n
            | Value.Rat r -> r
            | _ -> bad_wtable "bad probability"
          in
          let name_ref, dist =
            match Hashtbl.find_opt entries v with
            | Some e -> e
            | None ->
                let e = (ref name, Hashtbl.create 4) in
                Hashtbl.add entries v e;
                e
          in
          name_ref := name;
          if Hashtbl.mem dist x then
            bad_wtable
              (Printf.sprintf "duplicate row for variable %d value %d" v x);
          Hashtbl.replace dist x prob
      | _ -> bad_wtable "bad wtable row")
    wrel;
  let var_count = Hashtbl.length entries in
  for v = 0 to var_count - 1 do
    match Hashtbl.find_opt entries v with
    | None -> bad_wtable "variable ids are not dense"
    | Some (name, dist) ->
        let n = Hashtbl.length dist in
        let probs =
          List.init n (fun x ->
              match Hashtbl.find_opt dist x with
              | Some p -> p
              | None -> bad_wtable "domain values are not dense")
        in
        let id = Wtable.add_var ~name:!name w probs in
        assert (id = v)
  done;
  (* Relations per the manifest. *)
  let msource = Filename.concat dir manifest_file in
  let bad_manifest detail =
    Pqdb_runtime.Pqdb_error.malformed ~source:msource detail
  in
  let manifest = load_csv msource in
  let ordered =
    List.sort
      (fun a b ->
        match (Tuple.get a 0, Tuple.get b 0) with
        | Value.Int i, Value.Int j -> compare i j
        | _ -> bad_manifest "bad manifest order column")
      (Relation.tuples manifest)
  in
  List.iter
    (fun t ->
      match Tuple.to_list t with
      | [ _; name_v; Value.Bool complete ] ->
          let name = Value.to_string name_v in
          let rsource = Filename.concat dir (rel_file name) in
          let bad_rel detail =
            Pqdb_runtime.Pqdb_error.malformed ~source:rsource detail
          in
          let rel = load_csv rsource in
          let schema = Relation.schema rel in
          let attrs =
            match Schema.attributes schema with
            | "D" :: rest -> rest
            | _ -> bad_rel "relation lacks a D column"
          in
          let rows =
            List.map
              (fun t ->
                match Tuple.to_list t with
                | d :: values ->
                    let cond =
                      match d with
                      | Value.Str s -> condition_of_string ~source:rsource s
                      | _ -> bad_rel "bad D value"
                    in
                    (cond, Tuple.of_list values)
                | [] -> bad_rel "empty row")
              (Relation.tuples rel)
          in
          let u = Urelation.make (Schema.of_list attrs) rows in
          Udb.add_urelation ~complete udb name u
      | _ -> bad_manifest "bad manifest row")
    ordered;
  udb

(* --- format dispatch ------------------------------------------------------ *)

let save path udb =
  if Udb_binary.is_binary_path path then Udb_binary.save path udb
  else save_text path udb

let load path =
  if Udb_binary.is_binary_path path then Udb_binary.load path
  else load_text path
