(** Binary columnar storage for U-relational databases (".udbb").

    One file per database:
    - a 16-byte versioned header;
    - concatenated {e segments}: the deduplicated W table ('W', names and
      exact rationals, shared by every condition column), and per relation
      one condition column ('D', CSR prefix offsets into a (variable,
      value) pair array referencing W by id) plus one typed value column
      per attribute ('C', tag byte + 8-byte word per row, variable-width
      string/rational payloads in a per-segment heap);
    - a manifest listing every segment's offset, length and CRC-32
      (the {!Pqdb_runtime.Checkpoint} polynomial) and every relation's
      schema, row count, completeness flag and segment indices;
    - a fixed trailer locating and CRC-protecting the manifest.

    {!save} writes atomically (temp file in the destination directory,
    fsync, rename, directory fsync).  {!load} maps the file read-only
    ({!Unix.map_file}) and decodes only the header, trailer, manifest and
    W-table segment; each relation is registered with {!Udb.add_lazy} and
    decoded from the mapping on first {!Udb.find}, its segments
    CRC-checked then.  Cold start therefore costs O(pages touched), not
    O(rows), and N forked workers reading the same file share one page
    cache image.  The mapping stays alive while any relation is
    undecoded and is unmapped by the GC afterwards; decoded relations
    are ordinary heap values with no further mmap dependence.

    Round trips are exact: rationals travel in lowest-terms decimal
    syntax, floats as their IEEE bits, conditions as dense variable ids —
    confidences computed from a reloaded database are bit-identical. *)

val extension : string
(** [".udbb"]. *)

val is_binary_path : string -> bool
(** Whether a path names the binary format (by extension) — the
    {!Udb_io} dispatch predicate. *)

val save : string -> Udb.t -> unit
(** [save path udb] writes the whole database to [path], atomically.
    Forces every lazy relation.
    @raise Sys_error on I/O failure. *)

val load : string -> Udb.t
(** Map [path] and return a database whose W table is decoded eagerly and
    whose relations decode lazily on first access.  Fires the
    ["udb_binary.load"] fault point.
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input {source; _}]
    with [source = path]) on a bad header or trailer, a manifest problem,
    or — possibly later, when the touched relation first decodes — a
    segment whose CRC mismatches or that extends past the end of the
    file; the detail names the segment index and kind. *)

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path contents]: temp file + fsync + rename +
    directory fsync.  Shared with the text format's CSV writer so neither
    format can leave a torn file behind a crash. *)
