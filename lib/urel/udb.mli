(** U-relational databases: a W table plus named U-relations
    [⟨U_{R₁}, …, U_{Rₖ}, W⟩] (Section 3).

    The W table is shared and mutable — [repair-key] grows it during query
    evaluation.  Relations marked complete are certain by definition
    (the [c] function of Section 2). *)

open Pqdb_relational

type t

val create : unit -> t
val wtable : t -> Wtable.t

val add_complete : t -> string -> Relation.t -> unit
(** Register a complete base relation.
    @raise Invalid_argument on duplicate names. *)

val add_urelation : ?complete:bool -> t -> string -> Urelation.t -> unit
(** Register an uncertain relation represented by a U-relation.
    [complete] defaults to false. *)

val add_lazy : ?complete:bool -> t -> string -> Urelation.t Lazy.t -> unit
(** Register a relation whose decoding is deferred until {!find} first
    touches it.  Storage backends use this so cold start is O(pages
    touched): the thunk typically reads column segments out of a shared
    read-only mapping.  Forcing may raise whatever the decoder raises
    (e.g. the typed [Malformed_input] of a corrupt segment). *)

val find : t -> string -> Urelation.t
(** Forces the relation if it was registered with {!add_lazy}.
    @raise Not_found on unknown names. *)

val mem : t -> string -> bool
val names : t -> string list
val is_complete : t -> string -> bool

val is_decoded : t -> string -> bool
(** Whether the relation has been decoded ([true] for all eagerly
    registered relations).  Diagnostic — the storage benches use it to
    show lazy loads touch nothing.
    @raise Not_found on unknown names. *)

val copy : t -> t
(** Deep enough a copy that evaluating queries (which mutates the W table)
    does not affect the original. *)

val pp : Format.formatter -> t -> unit
