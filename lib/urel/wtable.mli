(** The W table of a U-relational database (Section 3): a finite set of
    independent discrete random variables with their distributions.

    [W(Var, Dom, P)] holds [⟨X, x, p⟩] iff [Pr(X = x) = p > 0] and the
    probabilities of each variable sum to 1.  Variables are created by
    [repair-key] during query evaluation, so the table is mutable and grows
    monotonically; variable and domain values are dense integer ids. *)

open Pqdb_numeric
open Pqdb_relational

type t
type var = int

val create : unit -> t

val add_var : ?name:string -> t -> Rational.t list -> var
(** [add_var t dist] registers a fresh variable whose domain is
    [0 .. length dist - 1] with the given probabilities.
    @raise Pqdb_runtime.Pqdb_error.Error
    ([Invalid_probability {context = "Wtable.add_var"; _}]) unless all
    probabilities are in (0, 1] and sum to 1, with at least one
    alternative. *)

val uid : t -> int
(** Process-unique instance id (two tables never share one, copies
    included).  Together with {!generation} it identifies "this table in
    this state" — the W-table component of a compiled-lineage cache key. *)

val generation : t -> int
(** Monotone edit counter: bumped by every {!add_var}.  A cache entry keyed
    on [(uid, generation)] is invalidated by any table edit. *)

val var_count : t -> int
val vars : t -> var list
val name : t -> var -> string
val domain_size : t -> var -> int

val prob : t -> var -> int -> Rational.t
(** @raise Invalid_argument on an out-of-range variable or value. *)

val prob_float : t -> var -> int -> float
(** Cached float image of {!prob} for the Monte-Carlo path. *)

val alias : t -> var -> Rng.Alias.dist
(** The variable's Walker alias sampler (O(1) per draw), built on first use
    and cached on the entry, so every DNF prepared against this W table
    shares one table per variable.  The cache is filled during (serial) DNF
    preparation; domains in the parallel Karp-Luby phase only read it. *)

val world_count : t -> int
(** Π domain sizes — the number of total assignments (can be huge; used by
    diagnostics and the exponential-path benchmarks). *)

val to_relation : t -> Relation.t
(** Render as the W(Var, Dom, P) relation of Figure 1. *)

val pp : Format.formatter -> t -> unit
