open Pqdb_numeric
open Pqdb_relational
module Checkpoint = Pqdb_runtime.Checkpoint
module Pqdb_error = Pqdb_runtime.Pqdb_error
module Faultpoint = Pqdb_runtime.Faultpoint

(* Binary columnar single-file format (".udbb"):

     header   "pqdb-udbb/v1\n" + 3 zero bytes           (16 bytes)
     segments concatenated, offsets recorded in the manifest
     manifest segment directory + relation directory
     trailer  u64 manifest_off | u32 manifest_len | u32 manifest_crc
              | "UDBBEND\n"                             (24 bytes)

   All integers little-endian.  Segment kinds: 'W' the deduplicated W
   table (names + exact rationals, shared by every condition column),
   'D' a relation's condition column (CSR-style prefix offsets into a
   (var, value) pair array, referencing W by variable id), 'C' one typed
   value column (tag byte + 8-byte word per row, variable-width Str/Rat
   payloads in a per-segment heap).  Every segment carries a CRC-32
   (same polynomial as Runtime.Checkpoint) checked when the segment is
   first decoded; the manifest CRC lives in the trailer and is checked
   eagerly.  Loading maps the file once ({!Unix.map_file}, read-only)
   and decodes the W table plus manifest; each relation decodes lazily
   from the mapping on first {!Udb.find}, so cold start touches only the
   header, trailer, manifest and W-table pages. *)

let magic = "pqdb-udbb/v1\n"
let header_len = 16
let tail_magic = "UDBBEND\n"
let trailer_len = 24
let extension = ".udbb"
let is_binary_path path = Filename.check_suffix path extension

let tag_int = 0
let tag_float = 1
let tag_str = 2
let tag_bool = 3
let tag_rat = 4

(* --- atomic file replacement ------------------------------------------- *)

(* Temp in the destination directory (rename must not cross filesystems),
   fsync'd before the rename and the directory fsync'd after, so a crash
   leaves either the old file or the new one, never a torn hybrid.  The
   text format's CSV writer goes through this too. *)
let write_file_atomic path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (try
     let oc = Unix.out_channel_of_descr fd in
     output_string oc contents;
     flush oc;
     Unix.fsync fd;
     close_out oc
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      (try Unix.close dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* --- segment model ------------------------------------------------------ *)

type seg = { kind : char; off : int; len : int; crc : int32 }

type rel_entry = {
  rel_name : string;
  complete : bool;
  nrows : int;
  attrs : string list;
  cond_seg : int;
  col_segs : int array;
}

type manifest = { segs : seg array; wtable_seg : int; rels : rel_entry list }

(* --- writing ------------------------------------------------------------ *)

let add_str buf s =
  Buffer.add_int32_le buf (Int32.of_int (String.length s));
  Buffer.add_string buf s

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)

let check_u32 what n =
  if n < 0 || n > 0xFFFF_FFFF then
    invalid_arg (Printf.sprintf "Udb_binary.save: %s (%d) exceeds u32" what n)

let encode_wtable w =
  let buf = Buffer.create 1024 in
  add_u32 buf (Wtable.var_count w);
  List.iter
    (fun v ->
      add_str buf (Wtable.name w v);
      let d = Wtable.domain_size w v in
      add_u32 buf d;
      for x = 0 to d - 1 do
        add_str buf (Rational.to_string (Wtable.prob w v x))
      done)
    (Wtable.vars w);
  Buffer.contents buf

let encode_conds rows =
  let buf = Buffer.create 1024 in
  let nrows = List.length rows in
  let npairs =
    List.fold_left (fun acc (a, _) -> acc + Assignment.cardinal a) 0 rows
  in
  check_u32 "condition pair count" npairs;
  add_u32 buf nrows;
  add_u32 buf npairs;
  let start = ref 0 in
  List.iter
    (fun (a, _) ->
      add_u32 buf !start;
      start := !start + Assignment.cardinal a)
    rows;
  add_u32 buf !start;
  List.iter
    (fun (a, _) ->
      List.iter
        (fun (v, x) ->
          add_u32 buf v;
          add_u32 buf x)
        (Assignment.bindings a))
    rows;
  Buffer.contents buf

let encode_column rows pos =
  let nrows = List.length rows in
  let tags = Buffer.create nrows in
  let words = Buffer.create (8 * nrows) in
  let heap = Buffer.create 256 in
  List.iter
    (fun (_, t) ->
      let heap_word s =
        let off = Buffer.length heap in
        check_u32 "column heap offset" off;
        check_u32 "column heap entry length" (String.length s);
        Buffer.add_string heap s;
        Int64.logor (Int64.of_int off)
          (Int64.shift_left (Int64.of_int (String.length s)) 32)
      in
      let tag, word =
        match Tuple.get t pos with
        | Value.Int n -> (tag_int, Int64.of_int n)
        | Value.Float f -> (tag_float, Int64.bits_of_float f)
        | Value.Str s -> (tag_str, heap_word s)
        | Value.Bool b -> (tag_bool, if b then 1L else 0L)
        | Value.Rat q -> (tag_rat, heap_word (Rational.to_string q))
      in
      Buffer.add_char tags (Char.chr tag);
      Buffer.add_int64_le words word)
    rows;
  let buf = Buffer.create (Buffer.length tags + Buffer.length words + Buffer.length heap + 8) in
  add_u32 buf nrows;
  Buffer.add_buffer buf tags;
  Buffer.add_buffer buf words;
  add_u32 buf (Buffer.length heap);
  Buffer.add_buffer buf heap;
  Buffer.contents buf

let save path udb =
  let segs = ref [] in
  let seg_count = ref 0 in
  let body = Buffer.create 4096 in
  let add_segment kind payload =
    let off = header_len + Buffer.length body in
    let idx = !seg_count in
    incr seg_count;
    segs :=
      { kind; off; len = String.length payload; crc = Checkpoint.crc32 payload }
      :: !segs;
    Buffer.add_string body payload;
    idx
  in
  let w_idx = add_segment 'W' (encode_wtable (Udb.wtable udb)) in
  let rels =
    List.map
      (fun name ->
        let u = Udb.find udb name in
        let rows = Urelation.rows u in
        let attrs = Schema.attributes (Urelation.schema u) in
        let cond_seg = add_segment 'D' (encode_conds rows) in
        let col_segs =
          Array.of_list
            (List.mapi (fun i _ -> add_segment 'C' (encode_column rows i)) attrs)
        in
        {
          rel_name = name;
          complete = Udb.is_complete udb name;
          nrows = List.length rows;
          attrs;
          cond_seg;
          col_segs;
        })
      (Udb.names udb)
  in
  let manifest = Buffer.create 512 in
  let segs = Array.of_list (List.rev !segs) in
  add_u32 manifest (Array.length segs);
  Array.iter
    (fun s ->
      Buffer.add_char manifest s.kind;
      Buffer.add_int64_le manifest (Int64.of_int s.off);
      Buffer.add_int64_le manifest (Int64.of_int s.len);
      Buffer.add_int32_le manifest s.crc)
    segs;
  add_u32 manifest w_idx;
  add_u32 manifest (List.length rels);
  List.iter
    (fun r ->
      add_str manifest r.rel_name;
      Buffer.add_char manifest (if r.complete then '\001' else '\000');
      add_u32 manifest r.nrows;
      add_u32 manifest (List.length r.attrs);
      List.iter (add_str manifest) r.attrs;
      add_u32 manifest r.cond_seg;
      Array.iter (add_u32 manifest) r.col_segs)
    rels;
  let manifest = Buffer.contents manifest in
  let file = Buffer.create (header_len + Buffer.length body + 64) in
  Buffer.add_string file magic;
  Buffer.add_string file (String.make (header_len - String.length magic) '\000');
  Buffer.add_buffer file body;
  let manifest_off = Buffer.length file in
  Buffer.add_string file manifest;
  Buffer.add_int64_le file (Int64.of_int manifest_off);
  add_u32 file (String.length manifest);
  Buffer.add_int32_le file (Checkpoint.crc32 manifest);
  Buffer.add_string file tail_magic;
  write_file_atomic path (Buffer.contents file)

(* --- reading ------------------------------------------------------------ *)

type map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let bad source detail = Pqdb_error.malformed ~source detail

let map_file path : map =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size = 0 then bad path "empty file";
      (* The mapping outlives the descriptor; lazy relation thunks keep it
         reachable until the last one decodes, then the GC unmaps. *)
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]))

let map_sub (m : map) ~source off len =
  if off < 0 || len < 0 || off + len > Bigarray.Array1.dim m then
    bad source
      (Printf.sprintf "range [%d, %d) outside the %d-byte file" off (off + len)
         (Bigarray.Array1.dim m));
  String.init len (fun i -> Bigarray.Array1.unsafe_get m (off + i))

(* A bounds-checked cursor over one extracted blob (a segment or the
   manifest); [what] names it in errors, e.g. "segment 3 ('C')". *)
type cursor = { buf : string; mutable pos : int; source : string; what : string }

let cursor ~source ~what buf = { buf; pos = 0; source; what }

let need c n =
  if c.pos + n > String.length c.buf then
    bad c.source
      (Printf.sprintf "%s: truncated at byte %d (need %d more)" c.what c.pos n)

let read_u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let read_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v land 0xFFFF_FFFF

let read_u64 c =
  need c 8;
  let v = String.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  match Int64.unsigned_to_int v with
  | Some n -> n
  | None -> bad c.source (Printf.sprintf "%s: 64-bit field overflows" c.what)

let read_i64 c =
  need c 8;
  let v = String.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let read_bytes c n =
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let read_str c =
  let n = read_u32 c in
  read_bytes c n

(* Extract segment [idx] from the mapping, checking bounds ("torn final
   segment" shows up here as a range past end of file) and its CRC. *)
let segment_string (m : map) ~source (segs : seg array) idx =
  if idx < 0 || idx >= Array.length segs then
    bad source (Printf.sprintf "manifest references unknown segment %d" idx);
  let s = segs.(idx) in
  let what = Printf.sprintf "segment %d ('%c')" idx s.kind in
  let payload =
    match map_sub m ~source s.off s.len with
    | p -> p
    | exception Pqdb_error.Error (Pqdb_error.Malformed_input _) ->
        bad source
          (Printf.sprintf "%s: extends past end of file (torn write?)" what)
  in
  if Checkpoint.crc32 payload <> s.crc then
    bad source (Printf.sprintf "%s: CRC mismatch" what);
  (payload, what)

let decode_wtable ~source ~what w payload =
  let c = cursor ~source ~what payload in
  let nvars = read_u32 c in
  for v = 0 to nvars - 1 do
    let name = read_str c in
    let d = read_u32 c in
    if d = 0 then bad source (Printf.sprintf "%s: variable %d has an empty domain" what v);
    let dist =
      List.init d (fun _ ->
          let s = read_str c in
          try Rational.of_string s
          with _ -> bad source (Printf.sprintf "%s: bad probability %S" what s))
    in
    let id = Wtable.add_var ~name w dist in
    assert (id = v)
  done

let decode_conds ~source ~what nrows payload =
  let c = cursor ~source ~what payload in
  let stored = read_u32 c in
  if stored <> nrows then
    bad source
      (Printf.sprintf "%s: row count %d disagrees with manifest (%d)" what
         stored nrows);
  let npairs = read_u32 c in
  let starts = Array.init (nrows + 1) (fun _ -> read_u32 c) in
  if starts.(0) <> 0 || starts.(nrows) <> npairs then
    bad source (Printf.sprintf "%s: inconsistent condition offsets" what);
  let pairs_pos = c.pos in
  need c (8 * npairs);
  Array.init nrows (fun i ->
      let lo = starts.(i) and hi = starts.(i + 1) in
      if lo > hi || hi > npairs then
        bad source (Printf.sprintf "%s: row %d has bad condition bounds" what i);
      match
        Assignment.of_list
          (List.init (hi - lo) (fun k ->
               let p = pairs_pos + (8 * (lo + k)) in
               ( Int32.to_int (String.get_int32_le c.buf p) land 0xFFFF_FFFF,
                 Int32.to_int (String.get_int32_le c.buf (p + 4))
                 land 0xFFFF_FFFF )))
      with
      | a -> a
      | exception Invalid_argument d ->
          bad source (Printf.sprintf "%s: row %d: %s" what i d))

let decode_column ~source ~what nrows payload =
  let c = cursor ~source ~what payload in
  let stored = read_u32 c in
  if stored <> nrows then
    bad source
      (Printf.sprintf "%s: row count %d disagrees with manifest (%d)" what
         stored nrows);
  let tags = read_bytes c nrows in
  let words = Array.init nrows (fun _ -> read_i64 c) in
  let heap_len = read_u32 c in
  let heap = read_bytes c heap_len in
  let from_heap i word =
    let off = Int64.to_int (Int64.logand word 0xFFFF_FFFFL) in
    let len = Int64.to_int (Int64.shift_right_logical word 32) in
    if off + len > heap_len then
      bad source (Printf.sprintf "%s: row %d points outside the heap" what i);
    String.sub heap off len
  in
  Array.init nrows (fun i ->
      let tag = Char.code tags.[i] in
      let word = words.(i) in
      if tag = tag_int then Value.Int (Int64.to_int word)
      else if tag = tag_float then Value.Float (Int64.float_of_bits word)
      else if tag = tag_str then Value.Str (from_heap i word)
      else if tag = tag_bool then Value.Bool (word <> 0L)
      else if tag = tag_rat then
        let s = from_heap i word in
        match Rational.of_string s with
        | q -> Value.Rat q
        | exception _ ->
            bad source (Printf.sprintf "%s: row %d: bad rational %S" what i s)
      else bad source (Printf.sprintf "%s: row %d: unknown value tag %d" what i tag))

let read_manifest ~source (m : map) =
  let size = Bigarray.Array1.dim m in
  if size < header_len + trailer_len then
    bad source (Printf.sprintf "too short to be a %s file (%d bytes)" extension size);
  let header = map_sub m ~source 0 header_len in
  if not (String.equal (String.sub header 0 (String.length magic)) magic) then
    bad source
      (Printf.sprintf "bad magic %S (want %S — not a %s file, or a future version)"
         (String.sub header 0 (min header_len (String.length magic)))
         magic extension);
  let trailer = map_sub m ~source (size - trailer_len) trailer_len in
  if not (String.equal (String.sub trailer 16 8) tail_magic) then
    bad source "bad trailer magic (torn or truncated file)";
  let tc = cursor ~source ~what:"trailer" trailer in
  let manifest_off = read_u64 tc in
  let manifest_len = read_u32 tc in
  let manifest_crc = String.get_int32_le trailer 12 in
  if manifest_off < header_len || manifest_off + manifest_len > size - trailer_len
  then bad source "manifest offset outside the file";
  let manifest = map_sub m ~source manifest_off manifest_len in
  if Checkpoint.crc32 manifest <> manifest_crc then
    bad source "manifest CRC mismatch";
  let c = cursor ~source ~what:"manifest" manifest in
  let nsegs = read_u32 c in
  let segs =
    Array.init nsegs (fun _ ->
        let kind = Char.chr (read_u8 c) in
        let off = read_u64 c in
        let len = read_u64 c in
        need c 4;
        let crc = String.get_int32_le c.buf c.pos in
        c.pos <- c.pos + 4;
        { kind; off; len; crc })
  in
  let wtable_seg = read_u32 c in
  let nrels = read_u32 c in
  let rels =
    List.init nrels (fun _ ->
        let rel_name = read_str c in
        let complete = read_u8 c <> 0 in
        let nrows = read_u32 c in
        let arity = read_u32 c in
        let attrs = List.init arity (fun _ -> read_str c) in
        let cond_seg = read_u32 c in
        let col_segs = Array.init arity (fun _ -> read_u32 c) in
        { rel_name; complete; nrows; attrs; cond_seg; col_segs })
  in
  { segs; wtable_seg; rels }

let decode_relation (m : map) ~source (mf : manifest) (r : rel_entry) =
  let payload, what = segment_string m ~source mf.segs r.cond_seg in
  let conds = decode_conds ~source ~what r.nrows payload in
  let columns =
    Array.map
      (fun idx ->
        let payload, what = segment_string m ~source mf.segs idx in
        decode_column ~source ~what r.nrows payload)
      r.col_segs
  in
  let ncols = Array.length columns in
  let rows =
    List.init r.nrows (fun i ->
        (conds.(i), Tuple.of_array (Array.init ncols (fun j -> columns.(j).(i)))))
  in
  match Urelation.make (Schema.of_list r.attrs) rows with
  | u -> u
  | exception Invalid_argument d ->
      bad source (Printf.sprintf "relation %s: %s" r.rel_name d)

let load path =
  Faultpoint.fire "udb_binary.load";
  let m =
    match map_file path with
    | m -> m
    | exception Unix.Unix_error (e, _, _) ->
        bad path (Printf.sprintf "cannot map: %s" (Unix.error_message e))
    | exception Sys_error d -> bad path d
  in
  let mf = read_manifest ~source:path m in
  let udb = Udb.create () in
  let payload, what = segment_string m ~source:path mf.segs mf.wtable_seg in
  decode_wtable ~source:path ~what (Udb.wtable udb) payload;
  List.iter
    (fun r ->
      Udb.add_lazy ~complete:r.complete udb r.rel_name
        (lazy (decode_relation m ~source:path mf r)))
    mf.rels;
  udb
