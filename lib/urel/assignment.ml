open Pqdb_numeric

(* Sorted-by-variable array of (var, value) pairs; no duplicate vars. *)
type t = (int * int) array

let empty = [||]

let of_list pairs =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then invalid_arg "Assignment.of_list: duplicate variable"
        else check rest
    | _ -> ()
  in
  check sorted;
  Array.of_list sorted

let singleton v x = [| (v, x) |]
let is_empty a = Array.length a = 0
let cardinal = Array.length
let bindings a = Array.to_list a
let vars a = Array.to_list (Array.map fst a)

let value a v =
  let n = Array.length a in
  let rec search lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let w, x = a.(mid) in
      if w = v then Some x
      else if w < v then search (mid + 1) hi
      else search lo mid
    end
  in
  search 0 n

(* Merge two sorted assignments; detect conflicts on shared variables. *)
let union a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) (0, 0) in
  let rec go i j k ok =
    if not ok then None
    else if i >= la && j >= lb then
      Some (if k = la + lb then out else Array.sub out 0 k)
    else if i >= la then begin
      out.(k) <- b.(j);
      go i (j + 1) (k + 1) true
    end
    else if j >= lb then begin
      out.(k) <- a.(i);
      go (i + 1) j (k + 1) true
    end
    else begin
      let va, xa = a.(i) and vb, xb = b.(j) in
      if va < vb then begin
        out.(k) <- a.(i);
        go (i + 1) j (k + 1) true
      end
      else if vb < va then begin
        out.(k) <- b.(j);
        go i (j + 1) (k + 1) true
      end
      else if xa = xb then begin
        out.(k) <- a.(i);
        go (i + 1) (j + 1) (k + 1) true
      end
      else go i j k false
    end
  in
  go 0 0 0 true

let consistent a b = union a b <> None

let restrict a keep =
  Array.of_list
    (List.filter (fun (v, _) -> List.mem v keep) (Array.to_list a))

let remove a v =
  Array.of_list (List.filter (fun (w, _) -> w <> v) (Array.to_list a))

let extended_by total a = Array.for_all (fun (v, x) -> total v = x) a

(* Sorted-merge subset test: every binding of [a] is a binding of [b]. *)
let subsumes a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb || lb - j < la - i then false
    else begin
      let va, xa = a.(i) and vb, xb = b.(j) in
      if va < vb then false
      else if va > vb then go i (j + 1)
      else xa = xb && go (i + 1) (j + 1)
    end
  in
  la <= lb && go 0 0

let iter_vars f a = Array.iter (fun (v, _) -> f v) a

let weight w a =
  Array.fold_left
    (fun acc (v, x) -> Rational.mul acc (Wtable.prob w v x))
    Rational.one a

let weight_float w a =
  Array.fold_left
    (fun acc (v, x) -> acc *. Wtable.prob_float w v x)
    1. a

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b
let hash (a : t) = Hashtbl.hash a

let pp fmt a =
  if is_empty a then Format.pp_print_string fmt "{}"
  else begin
    Format.pp_print_string fmt "{";
    Array.iteri
      (fun i (v, x) ->
        if i > 0 then Format.pp_print_string fmt ", ";
        Format.fprintf fmt "x%d=%d" v x)
      a;
    Format.pp_print_string fmt "}"
  end

let to_string w a =
  if is_empty a then "{}"
  else begin
    let parts =
      List.map
        (fun (v, x) -> Printf.sprintf "%s=%d" (Wtable.name w v) x)
        (bindings a)
    in
    "{" ^ String.concat ", " parts ^ "}"
  end
