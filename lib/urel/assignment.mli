(** Partial functions [f : Var → Dom] — the condition columns [D] of a
    U-relation (Section 3).

    A partial assignment represents the set of possible worlds (total
    assignments) consistent with it; its weight is
    [p_f = Π_{X ∈ dom f} Pr(X = f(X))] (Equation 2).  Two partial functions
    are {e consistent} when they agree on every variable on which both are
    defined. *)

open Pqdb_numeric

type t

val empty : t
(** Defined nowhere — represents all worlds (a complete tuple's condition). *)

val of_list : (Wtable.var * int) list -> t
(** @raise Invalid_argument when the same variable is bound twice (even to
    the same value — callers should not build redundant conditions). *)

val singleton : Wtable.var -> int -> t
val is_empty : t -> bool
val cardinal : t -> int
val bindings : t -> (Wtable.var * int) list
(** Sorted by variable. *)

val vars : t -> Wtable.var list
val value : t -> Wtable.var -> int option

val consistent : t -> t -> bool
val union : t -> t -> t option
(** Merge; [None] when inconsistent.  This is the condition calculus of the
    product/join translation. *)

val restrict : t -> Wtable.var list -> t
(** Drop bindings for variables not in the list. *)

val remove : t -> Wtable.var -> t

val extended_by : (Wtable.var -> int) -> t -> bool
(** [extended_by f* f]: does the total assignment [f*] belong to [ω(f)]? *)

val subsumes : t -> t -> bool
(** [subsumes a b] iff every binding of [a] is a binding of [b], i.e.
    [ω(b) ⊆ ω(a)].  As DNF clauses, [b] is then redundant next to [a].
    O(|a| + |b|) on the sorted binding arrays. *)

val iter_vars : (Wtable.var -> unit) -> t -> unit
(** Iterate over the domain without building a list — the lineage
    partitioner's hot loop. *)

val weight : Wtable.t -> t -> Rational.t
val weight_float : Wtable.t -> t -> float

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : Wtable.t -> t -> string
(** Human-readable, with variable names from the W table. *)
