open Pqdb_numeric

(* ------------------------------------------------------------------ *)
(* Brute force: enumerate total assignments of the variables of F.     *)
(* ------------------------------------------------------------------ *)

let by_enumeration w clauses =
  if List.exists Assignment.is_empty clauses then Rational.one
  else begin
    let vars =
      List.sort_uniq compare (List.concat_map Assignment.vars clauses)
    in
    let rec go acc bound = function
      | [] ->
          let lookup v = List.assoc v bound in
          if
            List.exists
              (fun f -> Assignment.extended_by lookup f)
              clauses
          then
            Rational.add acc
              (List.fold_left
                 (fun p (v, x) -> Rational.mul p (Wtable.prob w v x))
                 Rational.one bound)
          else acc
      | v :: rest ->
          let n = Wtable.domain_size w v in
          let rec each acc x =
            if x >= n then acc
            else each (go acc ((v, x) :: bound) rest) (x + 1)
          in
          each acc 0
    in
    if clauses = [] then Rational.zero else go Rational.zero [] vars
  end

(* ------------------------------------------------------------------ *)
(* Shannon expansion with memoisation.                                 *)
(* ------------------------------------------------------------------ *)

(* Key: the residual clause set as a sorted list of binding lists.  A
   structural key under polymorphic hash/equality — no string building and
   no separator ambiguity (the former string key concatenated decimal ids
   with ":"/","/";", paying an allocation-heavy sort-of-strings per node). *)
let canonical clauses =
  List.sort compare (List.map Assignment.bindings clauses)

(* Pick the variable occurring in the most clauses (a standard DPLL-style
   branching heuristic). *)
let pick_var clauses =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (fun v ->
          Hashtbl.replace counts v
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
        (Assignment.vars a))
    clauses;
  Hashtbl.fold
    (fun v c best ->
      match best with
      | Some (_, c') when c' >= c -> best
      | _ -> Some (v, c))
    counts None
  |> Option.map fst

let by_shannon w clauses =
  let memo = Hashtbl.create 64 in
  let rec weight clauses =
    if clauses = [] then Rational.zero
    else if List.exists Assignment.is_empty clauses then Rational.one
    else begin
      let key = canonical clauses in
      match Hashtbl.find_opt memo key with
      | Some p -> p
      | None ->
          let v =
            match pick_var clauses with
            | Some v -> v
            | None -> assert false (* nonempty clauses have variables *)
          in
          let n = Wtable.domain_size w v in
          let p = ref Rational.zero in
          for x = 0 to n - 1 do
            (* Condition on X = x: drop clauses demanding another value,
               remove the X binding from the rest. *)
            let residual =
              List.filter_map
                (fun a ->
                  match Assignment.value a v with
                  | Some y when y <> x -> None
                  | Some _ -> Some (Assignment.remove a v)
                  | None -> Some a)
                clauses
            in
            p :=
              Rational.add !p
                (Rational.mul (Wtable.prob w v x) (weight residual))
          done;
          Hashtbl.add memo key !p;
          !p
    end
  in
  weight clauses

(* Shannon expansion + independence partitioning: clause sets over disjoint
   variables are independent, so P(F1 or F2) = 1 - (1-p1)(1-p2); branch on a
   variable only within a connected component. *)
let by_decomposition w clauses =
  let memo = Hashtbl.create 64 in
  (* Split a clause set into variable-connected components. *)
  let components clauses =
    let clause_arr = Array.of_list clauses in
    let n = Array.length clause_arr in
    let parent = Array.init n Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union_sets i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    let owner = Hashtbl.create 16 in
    Array.iteri
      (fun i clause ->
        List.iter
          (fun v ->
            match Hashtbl.find_opt owner v with
            | Some j -> union_sets i j
            | None -> Hashtbl.add owner v i)
          (Assignment.vars clause))
      clause_arr;
    let buckets = Hashtbl.create 8 in
    Array.iteri
      (fun i clause ->
        let root = find i in
        Hashtbl.replace buckets root
          (clause
          :: Option.value ~default:[] (Hashtbl.find_opt buckets root)))
      clause_arr;
    Hashtbl.fold (fun _ cs acc -> cs :: acc) buckets []
  in
  let rec weight clauses =
    if clauses = [] then Rational.zero
    else if List.exists Assignment.is_empty clauses then Rational.one
    else begin
      let key = canonical clauses in
      match Hashtbl.find_opt memo key with
      | Some p -> p
      | None ->
          let p =
            match components clauses with
            | ([] | [ _ ]) -> shannon_step clauses
            | comps ->
                (* Independent components: 1 - prod(1 - p_i). *)
                Rational.complement
                  (List.fold_left
                     (fun acc comp ->
                       Rational.mul acc (Rational.complement (weight comp)))
                     Rational.one comps)
          in
          Hashtbl.add memo key p;
          p
    end
  and shannon_step clauses =
    let v =
      match pick_var clauses with Some v -> v | None -> assert false
    in
    let n = Wtable.domain_size w v in
    let p = ref Rational.zero in
    for x = 0 to n - 1 do
      let residual =
        List.filter_map
          (fun a ->
            match Assignment.value a v with
            | Some y when y <> x -> None
            | Some _ -> Some (Assignment.remove a v)
            | None -> Some a)
          clauses
      in
      p := Rational.add !p (Rational.mul (Wtable.prob w v x) (weight residual))
    done;
    !p
  in
  weight clauses

(* Float variant of the Shannon expansion: same structure, machine floats.
   Used by the ablation experiment E15 — faster constants, rounding error. *)
let by_shannon_float w clauses =
  let memo = Hashtbl.create 64 in
  let rec weight clauses =
    if clauses = [] then 0.
    else if List.exists Assignment.is_empty clauses then 1.
    else begin
      let key = canonical clauses in
      match Hashtbl.find_opt memo key with
      | Some p -> p
      | None ->
          let v =
            match pick_var clauses with
            | Some v -> v
            | None -> assert false
          in
          let n = Wtable.domain_size w v in
          let p = ref 0. in
          for x = 0 to n - 1 do
            let residual =
              List.filter_map
                (fun a ->
                  match Assignment.value a v with
                  | Some y when y <> x -> None
                  | Some _ -> Some (Assignment.remove a v)
                  | None -> Some a)
                clauses
            in
            p := !p +. (Wtable.prob_float w v x *. weight residual)
          done;
          Hashtbl.add memo key !p;
          !p
    end
  in
  weight clauses

let exact = by_shannon

let tuple_confidence w u tuple =
  exact w (Urelation.clauses_for u tuple)

let all_confidences w u =
  List.map
    (fun (t, clauses) -> (t, exact w clauses))
    (Urelation.clauses_by_tuple u)
