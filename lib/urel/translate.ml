open Pqdb_numeric
open Pqdb_relational

let select pred u =
  let schema = Urelation.schema u in
  Predicate.check schema pred;
  Urelation.filter (fun (_, t) -> Predicate.eval schema t pred) u

let project cols u =
  let in_schema = Urelation.schema u in
  List.iter (fun (e, _) -> Expr.check in_schema e) cols;
  let out_schema = Schema.of_list (List.map snd cols) in
  let exprs = List.map fst cols in
  Urelation.map_rows out_schema
    (fun (a, t) ->
      (a, Tuple.of_list (List.map (Expr.eval in_schema t) exprs)))
    u

let project_attrs names u =
  project (List.map (fun a -> (Expr.attr a, a)) names) u

let rename mapping u =
  let out_schema = Schema.rename (Urelation.schema u) mapping in
  Urelation.map_rows out_schema (fun row -> row) u

let product a b =
  let out_schema =
    Schema.concat (Urelation.schema a) (Urelation.schema b)
  in
  let rows_b = Urelation.rows b in
  let rows =
    List.concat_map
      (fun (fa, ta) ->
        List.filter_map
          (fun (fb, tb) ->
            match Assignment.union fa fb with
            | Some f -> Some (f, Tuple.concat ta tb)
            | None -> None)
          rows_b)
      (Urelation.rows a)
  in
  Urelation.make out_schema rows

let join a b =
  let sa = Urelation.schema a and sb = Urelation.schema b in
  let shared = Schema.common sa sb in
  let sb_only =
    List.filter (fun x -> not (List.mem x shared)) (Schema.attributes sb)
  in
  let out_schema = Schema.of_list (Schema.attributes sa @ sb_only) in
  let sa_shared = List.map (Schema.index sa) shared in
  let sb_shared = List.map (Schema.index sb) shared in
  let sb_only_pos = List.map (Schema.index sb) sb_only in
  (* Hash b's rows by their shared-attribute key tuple; Tuple.Table's
     Value-aware equality makes probes exact, so no re-check is needed. *)
  let index = Tuple.Table.create (max 16 (Urelation.size b)) in
  List.iter
    (fun (fb, tb) ->
      Tuple.Table.add index (Tuple.project tb sb_shared) (fb, tb))
    (Urelation.rows b);
  let rows =
    List.concat_map
      (fun (fa, ta) ->
        List.filter_map
          (fun (fb, tb) ->
            match Assignment.union fa fb with
            | Some f ->
                Some (f, Tuple.concat ta (Tuple.project tb sb_only_pos))
            | None -> None)
          (Tuple.Table.find_all index (Tuple.project ta sa_shared)))
      (Urelation.rows a)
  in
  Urelation.make out_schema rows

let union = Urelation.union

let diff_complete a b =
  if not (Urelation.is_complete_rep a && Urelation.is_complete_rep b) then
    invalid_arg "Translate.diff_complete: arguments must be complete"
  else
    Urelation.of_relation
      (Relation.diff (Urelation.to_relation a) (Urelation.to_relation b))

let poss u = Relation.of_list (Urelation.schema u) (Urelation.possible_tuples u)

let bad_weight detail =
  Pqdb_runtime.Pqdb_error.invalid_probability ~context:"Translate.repair_key"
    detail

let weight_of value =
  match Value.to_rational_opt value with
  | Some r when Rational.sign r > 0 -> r
  | Some _ -> bad_weight "weight must be positive"
  | None -> begin
      match value with
      | Value.Float f when Float.is_nan f -> bad_weight "weight is NaN"
      | Value.Float f when f > 0. && Float.is_finite f -> Rational.of_float f
      | _ -> bad_weight "weight must be a positive finite number"
    end

let repair_key w ~key ~weight u =
  if not (Urelation.is_complete_rep u) then
    invalid_arg "Translate.repair_key: input must be complete";
  let rel = Urelation.to_relation u in
  let schema = Relation.schema rel in
  let weight_idx = Schema.index schema weight in
  let groups = Algebra.group_by key rel in
  let rows =
    List.concat_map
      (fun (group_key, group) ->
        let tuples = Relation.tuples group in
        match tuples with
        | [ t ] ->
            (* Single alternative: certain, no variable (Figure 1(b)). *)
            [ (Assignment.empty, t) ]
        | _ ->
            let weights =
              List.map (fun t -> weight_of (Tuple.get t weight_idx)) tuples
            in
            let total = Rational.sum weights in
            let dist = List.map (fun p -> Rational.div p total) weights in
            let name =
              Format.asprintf "%a" Pqdb_relational.Tuple.pp group_key
            in
            let var = Wtable.add_var ~name w dist in
            List.mapi (fun i t -> (Assignment.singleton var i, t)) tuples)
      groups
  in
  Urelation.make (Urelation.schema u) rows
