(** U-relations: representation relations [U_R(D, Ā)] pairing a condition
    (partial assignment) with a data tuple (Section 3, Figure 1).

    A tuple [t̄] is in relation [R] of possible world [f*] iff some
    [⟨f, t̄⟩ ∈ U_R] has [f] consistent with [f*].  Set semantics on the
    [(D, tuple)] pairs. *)

open Pqdb_relational

type row = Assignment.t * Tuple.t
type t

val make : Schema.t -> row list -> t
(** Deduplicates rows. @raise Invalid_argument on arity mismatches. *)

val of_relation : Relation.t -> t
(** A complete relation as a U-relation: every condition empty. *)

val schema : t -> Schema.t
val rows : t -> row list
(** Sorted (by condition, then tuple). *)

val size : t -> int
(** Number of representation rows (the input size for the data-complexity
    statements of Section 3). *)

val is_empty : t -> bool

val is_complete_rep : t -> bool
(** All conditions empty — the relation is certain {e syntactically}. *)

val to_relation : t -> Relation.t
(** Forget conditions: the relation containing all possible tuples.  For a
    complete representation this is the represented relation itself. *)

val possible_tuples : t -> Tuple.t list
(** Distinct data tuples (poss). *)

val clauses_for : t -> Tuple.t -> Assignment.t list
(** The DNF [F = {f | ⟨f, t̄⟩ ∈ U_R}] whose weight is the tuple's confidence
    (Section 4). *)

val clauses_by_tuple : t -> (Tuple.t * Assignment.t list) list
(** Every possible tuple with its DNF, grouped in one hash pass — the batched
    confidence path uses this instead of one {!clauses_for} scan per tuple.
    Ordered by {!Pqdb_relational.Tuple.compare} (the {!possible_tuples}
    order). *)

val variables : t -> Wtable.var list
(** Variables mentioned by any condition, deduplicated, sorted. *)

val filter : (row -> bool) -> t -> t
val map_rows : Schema.t -> (row -> row) -> t -> t
val union : t -> t -> t
(** @raise Invalid_argument unless schemas agree. *)

val pp : Format.formatter -> t -> unit
