open Pqdb_relational

type row = Assignment.t * Tuple.t

let compare_row (a1, t1) (a2, t2) =
  let c = Assignment.compare a1 a2 in
  if c <> 0 then c else Tuple.compare t1 t2

module RS = Set.Make (struct
  type t = row

  let compare = compare_row
end)

type t = { schema : Schema.t; set : RS.t }

let check_arity schema (_, tuple) =
  if Tuple.arity tuple <> Schema.arity schema then
    invalid_arg "Urelation: tuple arity does not match schema"

let make schema rows =
  List.iter (check_arity schema) rows;
  { schema; set = RS.of_list rows }

let of_relation rel =
  {
    schema = Relation.schema rel;
    set =
      Relation.fold
        (fun t acc -> RS.add (Assignment.empty, t) acc)
        rel RS.empty;
  }

let schema u = u.schema
let rows u = RS.elements u.set
let size u = RS.cardinal u.set
let is_empty u = RS.is_empty u.set
let is_complete_rep u = RS.for_all (fun (a, _) -> Assignment.is_empty a) u.set

let to_relation u =
  Relation.of_list u.schema (List.map snd (rows u))

let possible_tuples u = Relation.tuples (to_relation u)

let clauses_for u tuple =
  RS.fold
    (fun (a, t) acc -> if Tuple.equal t tuple then a :: acc else acc)
    u.set []

(* One hash pass instead of a clauses_for scan per possible tuple. *)
let clauses_by_tuple u =
  let table = Tuple.Table.create (max 16 (RS.cardinal u.set)) in
  let order = ref [] in
  RS.iter
    (fun (a, t) ->
      match Tuple.Table.find_opt table t with
      | Some acc -> Tuple.Table.replace table t (a :: acc)
      | None ->
          order := t :: !order;
          Tuple.Table.add table t [ a ])
    u.set;
  List.rev_map (fun t -> (t, List.rev (Tuple.Table.find table t))) !order
  |> List.sort (fun (t1, _) (t2, _) -> Tuple.compare t1 t2)

let variables u =
  let vars =
    RS.fold (fun (a, _) acc -> Assignment.vars a @ acc) u.set []
  in
  List.sort_uniq compare vars

let filter p u = { u with set = RS.filter p u.set }

let map_rows schema f u =
  let set =
    RS.fold
      (fun row acc ->
        let row' = f row in
        check_arity schema row';
        RS.add row' acc)
      u.set RS.empty
  in
  { schema; set }

let union a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Urelation.union: schema mismatch"
  else { a with set = RS.union a.set b.set }

let pp fmt u =
  Format.pp_open_vbox fmt 0;
  Format.fprintf fmt "U%a:@," Schema.pp u.schema;
  List.iter
    (fun (a, t) ->
      Format.fprintf fmt "  %a  %a@," Assignment.pp a Tuple.pp t)
    (rows u);
  Format.pp_close_box fmt ()
