(** Recursive-descent parser for the UA query language.

    Grammar sketch (case-insensitive keywords):
    {v
    program  ::= (stmt)* expr?
    stmt     ::= let IDENT = expr ;
               | (assert | condition) constr ;   -- parse_program_full only
    constr   ::= fd [ attrs -> attrs ] ( IDENT ) -- functional dependency
               | empty ( expr )                  -- denial: no answers
               | ( expr )                        -- holds: some answer
    expr     ::= term ((union | minus | join | times) term)*
    term     ::= IDENT                          -- table or let-bound view
               | ( expr )
               | select [ cond ] ( expr )
               | project [ columns ] ( expr )
               | rename [ IDENT -> IDENT, ... ] ( expr )
               | conf ( expr )
               | aconf [ FLOAT , FLOAT ] ( expr )
               | repairkey [ attrs @ IDENT ] ( expr )
               | poss ( expr ) | cert ( expr )
               | aselect [ apred | conf [ attrs ], ... ] ( expr )
               | lit [ attrs ] ( ( value, ... ), ... )
    columns  ::= (arith (-> IDENT)?) , ...      -- bare attribute or computed
    cond     ::= or-combination of comparisons over arithmetic expressions
    apred    ::= like cond, with $1, $2, ... referring to the conf arguments
    v}

    [let]-bound views are substituted by reference; since the evaluators
    memoize structurally identical subqueries, a view used twice denotes one
    relation (Example 2.2's S). *)

exception Error of string * int
(** Message and character offset. *)

val parse_query : string -> Pqdb_ast.Ua.t
(** A single expression (no [let]s, no trailing [;]). *)

val parse_program : string -> (string * Pqdb_ast.Ua.t) list * Pqdb_ast.Ua.t option
(** All [let] bindings (fully substituted, in order) and the optional final
    expression.  Rejects [assert]/[condition] statements with a parse error
    naming {!parse_program_full}-capable entry points — a program with
    constraints is never silently stripped of them. *)

val parse_constraint : string -> Pqdb_ast.Uconstraint.t
(** A single constraint (the part after [assert], optionally [;]-terminated)
    — the form taken by [--assert] flags and the serve [assert] request.
    Validated against the positive confidence-free fragment. *)

type program = {
  views : (string * Pqdb_ast.Ua.t) list;  (** fully substituted, in order *)
  constraints : Pqdb_ast.Uconstraint.t list;  (** in statement order *)
  query : Pqdb_ast.Ua.t option;
}

val parse_program_full : string -> program
(** Like {!parse_program} but also accepting [assert]/[condition]
    statements anywhere among the [let]s. *)
