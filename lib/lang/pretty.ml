open Pqdb_relational
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.17g" f in
    (* The lexer has no exponent syntax; fall back to a long fixed form. *)
    if String.contains s 'e' || String.contains s 'E' then
      Printf.sprintf "%.17f" f
    else s
  end

let value fmt = function
  | Value.Int n ->
      if n < 0 then Format.fprintf fmt "-%d" (-n) else Format.pp_print_int fmt n
  | Value.Float f -> Format.pp_print_string fmt (float_literal f)
  | Value.Str s -> Format.fprintf fmt "'%s'" s
  | Value.Bool b -> Format.pp_print_bool fmt b
  | Value.Rat r ->
      Format.fprintf fmt "(%s / %s)"
        (Pqdb_numeric.Bigint.to_string (Pqdb_numeric.Rational.num r))
        (Pqdb_numeric.Bigint.to_string (Pqdb_numeric.Rational.den r))

let rec expr fmt = function
  | Expr.Attr a -> Format.pp_print_string fmt a
  | Expr.Const v -> value fmt v
  | Expr.Add (x, y) -> Format.fprintf fmt "(%a + %a)" expr x expr y
  | Expr.Sub (x, y) -> Format.fprintf fmt "(%a - %a)" expr x expr y
  | Expr.Mul (x, y) -> Format.fprintf fmt "(%a * %a)" expr x expr y
  | Expr.Div (x, y) -> Format.fprintf fmt "(%a / %a)" expr x expr y
  | Expr.Neg x -> Format.fprintf fmt "(-%a)" expr x

let cmp_source = function
  | Predicate.Eq -> "="
  | Predicate.Neq -> "<>"
  | Predicate.Lt -> "<"
  | Predicate.Le -> "<="
  | Predicate.Gt -> ">"
  | Predicate.Ge -> ">="

let rec predicate fmt = function
  | Predicate.Cmp (op, x, y) ->
      Format.fprintf fmt "%a %s %a" expr x (cmp_source op) expr y
  | Predicate.And (p, q) ->
      Format.fprintf fmt "(%a and %a)" predicate p predicate q
  | Predicate.Or (p, q) ->
      Format.fprintf fmt "(%a or %a)" predicate p predicate q
  | Predicate.Not p -> Format.fprintf fmt "not (%a)" predicate p
  | Predicate.True -> Format.pp_print_string fmt "true"
  | Predicate.False -> Format.pp_print_string fmt "false"

let rec aexpr fmt = function
  | Apred.Var i -> Format.fprintf fmt "$%d" (i + 1)
  | Apred.Const c -> Format.pp_print_string fmt (float_literal c)
  | Apred.Add (x, y) -> Format.fprintf fmt "(%a + %a)" aexpr x aexpr y
  | Apred.Sub (x, y) -> Format.fprintf fmt "(%a - %a)" aexpr x aexpr y
  | Apred.Mul (x, y) -> Format.fprintf fmt "(%a * %a)" aexpr x aexpr y
  | Apred.Div (x, y) -> Format.fprintf fmt "(%a / %a)" aexpr x aexpr y
  | Apred.Neg x -> Format.fprintf fmt "(-%a)" aexpr x

let acmp_source = function
  | Apred.Eq -> "="
  | Apred.Neq -> "<>"
  | Apred.Lt -> "<"
  | Apred.Le -> "<="
  | Apred.Gt -> ">"
  | Apred.Ge -> ">="

let rec apred fmt = function
  | Apred.Cmp (op, x, y) ->
      Format.fprintf fmt "%a %s %a" aexpr x (acmp_source op) aexpr y
  | Apred.And (p, q) -> Format.fprintf fmt "(%a and %a)" apred p apred q
  | Apred.Or (p, q) -> Format.fprintf fmt "(%a or %a)" apred p apred q
  | Apred.Not p -> Format.fprintf fmt "not (%a)" apred p
  | Apred.True -> Format.pp_print_string fmt "true"
  | Apred.False -> Format.pp_print_string fmt "false"

let strings fmt names =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
    Format.pp_print_string fmt names

let rec query fmt = function
  | Ua.Table n -> Format.pp_print_string fmt n
  | Ua.Lit rel ->
      let attrs = Schema.attributes (Relation.schema rel) in
      let rows = Relation.tuples rel in
      let row fmt t =
        Format.fprintf fmt "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
             value)
          (Tuple.to_list t)
      in
      Format.fprintf fmt "lit[%a](%a)" strings attrs
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           row)
        rows
  | Ua.Select (p, q) ->
      Format.fprintf fmt "select[%a](%a)" predicate p query q
  | Ua.Project (cols, q) ->
      let col fmt (e, name) =
        match e with
        | Expr.Attr a when a = name -> Format.pp_print_string fmt a
        | _ -> Format.fprintf fmt "%a -> %s" expr e name
      in
      Format.fprintf fmt "project[%a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           col)
        cols query q
  | Ua.Rename (m, q) ->
      let one fmt (a, b) = Format.fprintf fmt "%s -> %s" a b in
      Format.fprintf fmt "rename[%a](%a)"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           one)
        m query q
  | Ua.Product (a, b) -> Format.fprintf fmt "(%a times %a)" query a query b
  | Ua.Join (a, b) -> Format.fprintf fmt "(%a join %a)" query a query b
  | Ua.Union (a, b) -> Format.fprintf fmt "(%a union %a)" query a query b
  | Ua.Diff (a, b) -> Format.fprintf fmt "(%a minus %a)" query a query b
  | Ua.Conf q -> Format.fprintf fmt "conf(%a)" query q
  | Ua.ApproxConf ({ eps; delta }, q) ->
      Format.fprintf fmt "aconf[%s, %s](%a)" (float_literal eps)
        (float_literal delta) query q
  | Ua.RepairKey { key; weight; query = q } ->
      Format.fprintf fmt "repairkey[%a @@ %s](%a)" strings key weight query q
  | Ua.Poss q -> Format.fprintf fmt "poss(%a)" query q
  | Ua.Cert q -> Format.fprintf fmt "cert(%a)" query q
  | Ua.ApproxSelect { phi; conf_args; input } ->
      let arg fmt attrs = Format.fprintf fmt "conf[%a]" strings attrs in
      Format.fprintf fmt "aselect[%a | %a](%a)" apred phi
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           arg)
        conf_args query input

let query_to_string q = Format.asprintf "%a" query q

let constraint_ fmt = function
  | Pqdb_ast.Uconstraint.Fd { table; key; determined } ->
      Format.fprintf fmt "fd[%a -> %a](%s)" strings key strings determined
        table
  | Pqdb_ast.Uconstraint.Denial q -> Format.fprintf fmt "empty(%a)" query q
  | Pqdb_ast.Uconstraint.Holds q -> Format.fprintf fmt "(%a)" query q

let constraint_to_string c = Format.asprintf "%a" constraint_ c
