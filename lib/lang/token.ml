type t =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Dollar of int
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Arrow
  | Pipe
  | At
  | Plus
  | Minus
  | Star
  | Slash
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Kw of string
  | Eof

let keywords =
  [
    "select";
    "project";
    "rename";
    "join";
    "times";
    "union";
    "minus";
    "conf";
    "aconf";
    "repairkey";
    "poss";
    "cert";
    "aselect";
    "and";
    "or";
    "not";
    "true";
    "false";
    "let";
    "in";
    "lit";
    "assert";
    "condition";
    "fd";
    "empty";
  ]

let to_string = function
  | Ident s -> s
  | Int n -> string_of_int n
  | Float f -> string_of_float f
  | String s -> "'" ^ s ^ "'"
  | Dollar i -> "$" ^ string_of_int i
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semicolon -> ";"
  | Arrow -> "->"
  | Pipe -> "|"
  | At -> "@"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Kw s -> s
  | Eof -> "<eof>"

let pp fmt t = Format.pp_print_string fmt (to_string t)
