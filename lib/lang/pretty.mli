(** Source-level printer: renders queries in the concrete syntax accepted by
    {!Qparser}, so that [parse_query (to_string q) = q].

    Limitations (documented, checked by the round-trip property tests):
    - attribute and table names must be valid identifiers;
    - string literals must not contain quote characters;
    - float literals must have a plain decimal rendering (no exponent);
    - exact-rational constants print as divisions ([1/3]), which re-parse as
      a division expression with the same exact value but a different AST —
      avoid them when structural round-tripping matters. *)

val value : Format.formatter -> Pqdb_relational.Value.t -> unit
val expr : Format.formatter -> Pqdb_relational.Expr.t -> unit
val predicate : Format.formatter -> Pqdb_relational.Predicate.t -> unit
val apred : Format.formatter -> Pqdb_ast.Apred.t -> unit
val query : Format.formatter -> Pqdb_ast.Ua.t -> unit
val query_to_string : Pqdb_ast.Ua.t -> string

val constraint_ : Format.formatter -> Pqdb_ast.Uconstraint.t -> unit
(** Renders in the [assert] statement syntax, so that
    [Qparser.parse_constraint (constraint_to_string c) = c] under the same
    limitations as {!query}. *)

val constraint_to_string : Pqdb_ast.Uconstraint.t -> string
