open Pqdb_relational
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred
module Uconstraint = Pqdb_ast.Uconstraint

exception Error of string * int

type state = {
  tokens : (Token.t * int) array;
  mutable pos : int;
  mutable views : (string * Ua.t) list;
}

let peek st = fst st.tokens.(st.pos)
let offset st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s (found %s)" msg (Token.to_string (peek st)), offset st))

let expect st tok msg =
  if peek st = tok then advance st else fail st msg

let expect_ident st msg =
  match peek st with
  | Token.Ident s ->
      advance st;
      s
  | _ -> fail st msg

let number st =
  match peek st with
  | Token.Int n ->
      advance st;
      float_of_int n
  | Token.Float f ->
      advance st;
      f
  | _ -> fail st "expected a number"

(* --- attribute lists --------------------------------------------------- *)

let attr_list st ~stop =
  let rec go acc =
    match peek st with
    | Token.Ident a ->
        advance st;
        if peek st = Token.Comma then begin
          advance st;
          go (a :: acc)
        end
        else List.rev (a :: acc)
    | t when t = stop -> List.rev acc
    | _ -> fail st "expected an attribute name"
  in
  go []

(* --- scalar expressions over attributes ------------------------------- *)

let rec r_arith st =
  let lhs = r_arith_term st in
  match peek st with
  | Token.Plus ->
      advance st;
      Expr.Add (lhs, r_arith st)
  | Token.Minus ->
      advance st;
      Expr.Sub (lhs, r_arith st)
  | _ -> lhs

and r_arith_term st =
  let lhs = r_arith_atom st in
  match peek st with
  | Token.Star ->
      advance st;
      Expr.Mul (lhs, r_arith_term st)
  | Token.Slash ->
      advance st;
      Expr.Div (lhs, r_arith_term st)
  | _ -> lhs

and r_arith_atom st =
  match peek st with
  | Token.Ident a ->
      advance st;
      Expr.Attr a
  | Token.Int n ->
      advance st;
      Expr.Const (Value.Int n)
  | Token.Float f ->
      advance st;
      Expr.Const (Value.Float f)
  | Token.String s ->
      advance st;
      Expr.Const (Value.Str s)
  | Token.Kw "true" ->
      advance st;
      Expr.Const (Value.Bool true)
  | Token.Kw "false" ->
      advance st;
      Expr.Const (Value.Bool false)
  | Token.Minus ->
      advance st;
      Expr.Neg (r_arith_atom st)
  | Token.Lparen ->
      advance st;
      let e = r_arith st in
      expect st Token.Rparen "expected )";
      e
  | _ -> fail st "expected an arithmetic expression"

(* --- selection conditions ---------------------------------------------- *)

let comparison_op st =
  match peek st with
  | Token.Eq -> advance st; Some Predicate.Eq
  | Token.Neq -> advance st; Some Predicate.Neq
  | Token.Lt -> advance st; Some Predicate.Lt
  | Token.Le -> advance st; Some Predicate.Le
  | Token.Gt -> advance st; Some Predicate.Gt
  | Token.Ge -> advance st; Some Predicate.Ge
  | _ -> None

let rec r_cond st =
  let lhs = r_cond_and st in
  match peek st with
  | Token.Kw "or" ->
      advance st;
      Predicate.Or (lhs, r_cond st)
  | _ -> lhs

and r_cond_and st =
  let lhs = r_cond_atom st in
  match peek st with
  | Token.Kw "and" ->
      advance st;
      Predicate.And (lhs, r_cond_and st)
  | _ -> lhs

and r_cond_atom st =
  match peek st with
  | Token.Kw "not" ->
      advance st;
      Predicate.Not (r_cond_atom st)
  | Token.Kw "true" when fst st.tokens.(st.pos + 1) <> Token.Eq ->
      advance st;
      Predicate.True
  | Token.Kw "false" when fst st.tokens.(st.pos + 1) <> Token.Eq ->
      advance st;
      Predicate.False
  | Token.Lparen ->
      (* Could be a parenthesized condition or a parenthesized arithmetic
         expression followed by a comparison; try the condition first by
         backtracking. *)
      let saved = st.pos in
      (advance st;
       match r_cond st with
       | cond when peek st = Token.Rparen -> begin
           advance st;
           (* (cond) possibly continued as comparison?  Conditions are not
              comparable values, so just return. *)
           match cond with c -> c
         end
       | _ -> fail st "expected )"
       | exception Error _ ->
           st.pos <- saved;
           comparison st)
  | _ -> comparison st

and comparison st =
  let lhs = r_arith st in
  match comparison_op st with
  | Some op -> Predicate.Cmp (op, lhs, r_arith st)
  | None -> fail st "expected a comparison operator"

(* --- aselect predicates (over $i variables) ----------------------------- *)

let rec a_arith st =
  let lhs = a_term st in
  match peek st with
  | Token.Plus ->
      advance st;
      Apred.Add (lhs, a_arith st)
  | Token.Minus ->
      advance st;
      Apred.Sub (lhs, a_arith st)
  | _ -> lhs

and a_term st =
  let lhs = a_atom st in
  match peek st with
  | Token.Star ->
      advance st;
      Apred.Mul (lhs, a_term st)
  | Token.Slash ->
      advance st;
      Apred.Div (lhs, a_term st)
  | _ -> lhs

and a_atom st =
  match peek st with
  | Token.Dollar i ->
      advance st;
      if i < 1 then fail st "conf-argument variables start at $1"
      else Apred.Var (i - 1)
  | Token.Int n ->
      advance st;
      Apred.Const (float_of_int n)
  | Token.Float f ->
      advance st;
      Apred.Const f
  | Token.Minus ->
      advance st;
      Apred.Neg (a_atom st)
  | Token.Lparen ->
      advance st;
      let e = a_arith st in
      expect st Token.Rparen "expected )";
      e
  | _ -> fail st "expected an approximable-value expression"

let a_comparison_op st =
  match peek st with
  | Token.Eq -> advance st; Some Apred.Eq
  | Token.Neq -> advance st; Some Apred.Neq
  | Token.Lt -> advance st; Some Apred.Lt
  | Token.Le -> advance st; Some Apred.Le
  | Token.Gt -> advance st; Some Apred.Gt
  | Token.Ge -> advance st; Some Apred.Ge
  | _ -> None

let rec a_pred st =
  let lhs = a_pred_and st in
  match peek st with
  | Token.Kw "or" ->
      advance st;
      Apred.Or (lhs, a_pred st)
  | _ -> lhs

and a_pred_and st =
  let lhs = a_pred_atom st in
  match peek st with
  | Token.Kw "and" ->
      advance st;
      Apred.And (lhs, a_pred_and st)
  | _ -> lhs

and a_pred_atom st =
  match peek st with
  | Token.Kw "not" ->
      advance st;
      Apred.Not (a_pred_atom st)
  | Token.Kw "true" ->
      advance st;
      Apred.True
  | Token.Kw "false" ->
      advance st;
      Apred.False
  | _ ->
      let lhs = a_arith st in
      (match a_comparison_op st with
      | Some op -> Apred.Cmp (op, lhs, a_arith st)
      | None -> fail st "expected a comparison operator")

(* --- values / literal relations ----------------------------------------- *)

let value st =
  match peek st with
  | Token.Int n ->
      advance st;
      Value.Int n
  | Token.Float f ->
      advance st;
      Value.Float f
  | Token.String s ->
      advance st;
      Value.Str s
  | Token.Kw "true" ->
      advance st;
      Value.Bool true
  | Token.Kw "false" ->
      advance st;
      Value.Bool false
  | Token.Minus ->
      advance st;
      Value.neg (match peek st with
        | Token.Int n -> advance st; Value.Int n
        | Token.Float f -> advance st; Value.Float f
        | _ -> fail st "expected a number after -")
  | _ -> fail st "expected a literal value"

(* --- queries -------------------------------------------------------------- *)

let rec expr st =
  let lhs = term st in
  binops st lhs

and binops st lhs =
  match peek st with
  | Token.Kw "union" ->
      advance st;
      binops st (Ua.Union (lhs, term st))
  | Token.Kw "minus" ->
      advance st;
      binops st (Ua.Diff (lhs, term st))
  | Token.Kw "join" ->
      advance st;
      binops st (Ua.Join (lhs, term st))
  | Token.Kw "times" ->
      advance st;
      binops st (Ua.Product (lhs, term st))
  | _ -> lhs

and parenthesized st =
  expect st Token.Lparen "expected (";
  let q = expr st in
  expect st Token.Rparen "expected )";
  q

and columns st =
  let rec go acc =
    if peek st = Token.Rbracket then List.rev acc
    else begin
      let e = r_arith st in
      let col =
        if peek st = Token.Arrow then begin
          advance st;
          (e, expect_ident st "expected a column name after ->")
        end
        else begin
          match e with
          | Expr.Attr a -> (e, a)
          | _ -> fail st "computed columns need '-> name'"
        end
      in
      if peek st = Token.Comma then begin
        advance st;
        go (col :: acc)
      end
      else List.rev (col :: acc)
    end
  in
  go []

and term st =
  match peek st with
  | Token.Ident name ->
      advance st;
      (* let-bound views shadow base tables. *)
      (match List.assoc_opt name st.views with
      | Some q -> q
      | None -> Ua.Table name)
  | Token.Lparen -> parenthesized st
  | Token.Kw "select" ->
      advance st;
      expect st Token.Lbracket "expected [";
      let cond = r_cond st in
      expect st Token.Rbracket "expected ]";
      Ua.Select (cond, parenthesized st)
  | Token.Kw "project" ->
      advance st;
      expect st Token.Lbracket "expected [";
      let cols = columns st in
      expect st Token.Rbracket "expected ]";
      Ua.Project (cols, parenthesized st)
  | Token.Kw "rename" ->
      advance st;
      expect st Token.Lbracket "expected [";
      let rec pairs acc =
        let a = expect_ident st "expected an attribute" in
        expect st Token.Arrow "expected ->";
        let b = expect_ident st "expected a new name" in
        if peek st = Token.Comma then begin
          advance st;
          pairs ((a, b) :: acc)
        end
        else List.rev ((a, b) :: acc)
      in
      let mapping = pairs [] in
      expect st Token.Rbracket "expected ]";
      Ua.Rename (mapping, parenthesized st)
  | Token.Kw "conf" ->
      advance st;
      Ua.Conf (parenthesized st)
  | Token.Kw "aconf" ->
      advance st;
      expect st Token.Lbracket "expected [";
      let eps = number st in
      expect st Token.Comma "expected ,";
      let delta = number st in
      expect st Token.Rbracket "expected ]";
      Ua.ApproxConf ({ eps; delta }, parenthesized st)
  | Token.Kw "repairkey" ->
      advance st;
      expect st Token.Lbracket "expected [";
      let key = attr_list st ~stop:Token.At in
      expect st Token.At "expected @ before the weight attribute";
      let weight = expect_ident st "expected the weight attribute" in
      expect st Token.Rbracket "expected ]";
      Ua.RepairKey { key; weight; query = parenthesized st }
  | Token.Kw "poss" ->
      advance st;
      Ua.Poss (parenthesized st)
  | Token.Kw "cert" ->
      advance st;
      Ua.Cert (parenthesized st)
  | Token.Kw "aselect" ->
      advance st;
      expect st Token.Lbracket "expected [";
      let phi = a_pred st in
      expect st Token.Pipe "expected | before the conf arguments";
      let rec conf_args acc =
        expect st (Token.Kw "conf") "expected conf[...]";
        expect st Token.Lbracket "expected [";
        let attrs = attr_list st ~stop:Token.Rbracket in
        expect st Token.Rbracket "expected ]";
        if peek st = Token.Comma then begin
          advance st;
          conf_args (attrs :: acc)
        end
        else List.rev (attrs :: acc)
      in
      let args = conf_args [] in
      expect st Token.Rbracket "expected ]";
      Ua.ApproxSelect { phi; conf_args = args; input = parenthesized st }
  | Token.Kw "lit" ->
      advance st;
      expect st Token.Lbracket "expected [";
      let attrs = attr_list st ~stop:Token.Rbracket in
      expect st Token.Rbracket "expected ]";
      expect st Token.Lparen "expected (";
      let rec rows acc =
        if peek st = Token.Rparen then List.rev acc
        else begin
          expect st Token.Lparen "expected ( starting a row";
          let rec vals acc =
            let v = value st in
            if peek st = Token.Comma then begin
              advance st;
              vals (v :: acc)
            end
            else List.rev (v :: acc)
          in
          let row = if peek st = Token.Rparen then [] else vals [] in
          expect st Token.Rparen "expected ) ending the row";
          if peek st = Token.Comma then begin
            advance st;
            rows (row :: acc)
          end
          else List.rev (row :: acc)
        end
      in
      let row_list = rows [] in
      expect st Token.Rparen "expected )";
      Ua.Lit (Relation.of_rows attrs row_list)
  | _ -> fail st "expected a query"

(* --- constraints --------------------------------------------------------- *)

let constraint_ st =
  let c =
    match peek st with
    | Token.Kw "fd" ->
        advance st;
        expect st Token.Lbracket "expected [";
        let key = attr_list st ~stop:Token.Arrow in
        expect st Token.Arrow "expected -> between key and determined attributes";
        let determined = attr_list st ~stop:Token.Rbracket in
        expect st Token.Rbracket "expected ]";
        expect st Token.Lparen "expected (";
        let table = expect_ident st "expected a table name" in
        expect st Token.Rparen "expected )";
        if key = [] then fail st "fd needs at least one key attribute"
        else if determined = [] then
          fail st "fd needs at least one determined attribute"
        else Uconstraint.Fd { table; key; determined }
    | Token.Kw "empty" ->
        advance st;
        Uconstraint.Denial (parenthesized st)
    | Token.Lparen -> Uconstraint.Holds (parenthesized st)
    | _ ->
        fail st
          "expected a constraint: fd[key -> determined](table), empty(query), \
           or (query)"
  in
  (* Constraints live in the positive confidence-free fragment; reject the
     rest at parse time with the offset of the offending statement. *)
  match Uconstraint.validate c with
  | () -> c
  | exception Invalid_argument msg -> fail st msg

let make_state text =
  { tokens = Array.of_list (Lexer.tokenize text); pos = 0; views = [] }

let parse_query text =
  let st = make_state text in
  let q = expr st in
  if peek st <> Token.Eof then fail st "trailing input after query" else q

let parse_constraint text =
  let st = make_state text in
  let c = constraint_ st in
  if peek st = Token.Semicolon then advance st;
  if peek st <> Token.Eof then fail st "trailing input after constraint"
  else c

type program = {
  views : (string * Ua.t) list;
  constraints : Uconstraint.t list;
  query : Ua.t option;
}

let parse_gen ~allow_constraints text =
  let st = make_state text in
  let constraints = ref [] in
  let rec go () =
    match peek st with
    | Token.Eof -> None
    | Token.Kw "let" ->
        advance st;
        let name = expect_ident st "expected a view name" in
        expect st Token.Eq "expected =";
        let q = expr st in
        expect st Token.Semicolon "expected ; after let";
        st.views <- (name, q) :: st.views;
        go ()
    | Token.Kw (("assert" | "condition") as kw) ->
        if not allow_constraints then
          fail st
            (Printf.sprintf
               "%s statements are not accepted here (this entry point takes \
                plain queries)"
               kw);
        advance st;
        let c = constraint_ st in
        expect st Token.Semicolon
          (Printf.sprintf "expected ; after %s" kw);
        constraints := c :: !constraints;
        go ()
    | _ ->
        let q = expr st in
        if peek st = Token.Semicolon then advance st;
        if peek st <> Token.Eof then fail st "trailing input after query"
        else Some q
  in
  let final = go () in
  {
    views = List.rev st.views;
    constraints = List.rev !constraints;
    query = final;
  }

let parse_program_full text = parse_gen ~allow_constraints:true text

let parse_program text =
  let p = parse_gen ~allow_constraints:false text in
  (p.views, p.query)
