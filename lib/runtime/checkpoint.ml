let magic = "pqdb-checkpoint/v1"

(* IEEE 802.3 CRC-32, table-driven; hand-rolled so the runtime library keeps
   its no-dependency footprint. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_hex s = Printf.sprintf "%08lx" (crc32 s)

let frame payload = Printf.sprintf "r %s %s" (crc32_hex payload) payload

(* A framed line is "r " ^ 8 hex chars ^ " " ^ payload. *)
let unframe line =
  let n = String.length line in
  if n < 11 || line.[0] <> 'r' || line.[1] <> ' ' || line.[10] <> ' ' then None
  else
    let payload = String.sub line 11 (n - 11) in
    if String.equal (String.sub line 2 8) (crc32_hex payload) then Some payload
    else None

let malformed source detail = Pqdb_error.malformed ~source detail

(* Walk the raw journal text.  Returns the validated payloads (in order) and
   the byte length of the valid prefix — everything past it is a torn tail a
   crash could legitimately have left, safe to truncate away.  Corruption
   strictly before the final line is not crash damage and raises. *)
let validate ~source text =
  let len = String.length text in
  let payloads = ref [] in
  let valid = ref 0 in
  let pos = ref 0 in
  let saw_header = ref false in
  let record = ref 0 in
  (try
     while !pos < len do
       match String.index_from_opt text !pos '\n' with
       | None -> raise Exit (* incomplete final line: torn, drop *)
       | Some nl ->
           let line = String.sub text !pos (nl - !pos) in
           let last = nl + 1 >= len in
           if not !saw_header then
             if String.equal line magic then (
               saw_header := true;
               valid := nl + 1)
             else
               raise
                 (malformed source
                    (Printf.sprintf "bad journal header %S (want %S)" line
                       magic))
           else (
             (match unframe line with
             | Some payload ->
                 payloads := payload :: !payloads;
                 valid := nl + 1
             | None ->
                 if last then raise Exit (* torn/corrupt tail record: drop *)
                 else
                   raise
                     (malformed source
                        (Printf.sprintf
                           "record %d: bad frame or CRC mismatch"
                           (!record + 1))));
             incr record);
           pos := nl + 1
     done
   with Exit -> ());
  (List.rev !payloads, !valid)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read path =
  if not (Sys.file_exists path) then []
  else fst (validate ~source:path (read_file path))

type writer = { path : string; fd : Unix.file_descr; mutable oc : out_channel option }

let open_writer ?(resume = false) path =
  let text = if resume && Sys.file_exists path then read_file path else "" in
  let payloads, valid_bytes =
    if text = "" then ([], 0) else validate ~source:path text
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  (try
     Unix.ftruncate fd valid_bytes;
     ignore (Unix.lseek fd 0 Unix.SEEK_END)
   with e ->
     Unix.close fd;
     raise e);
  let oc = Unix.out_channel_of_descr fd in
  if valid_bytes = 0 then (
    output_string oc (magic ^ "\n");
    flush oc);
  ({ path; fd; oc = Some oc }, payloads)

let append w payload =
  if String.contains payload '\n' then
    invalid_arg "Checkpoint.append: payload must be newline-free";
  (match Faultpoint.check "checkpoint.write" with
  | None -> ()
  | Some Faultpoint.Torn ->
      (* Simulate a crash mid-record: half the framed line reaches the file
         (flushed, not fsynced) and the writer dies with a typed error.  The
         torn tail is exactly what {!validate} tolerates and truncates on
         resume. *)
      (match w.oc with
      | None -> ()
      | Some oc ->
          let line = frame payload ^ "\n" in
          output_string oc (String.sub line 0 (String.length line / 2));
          flush oc);
      Pqdb_error.error (Pqdb_error.Injected "checkpoint.write")
  | Some m -> Faultpoint.act "checkpoint.write" m);
  match w.oc with
  | None -> failwith (Printf.sprintf "Checkpoint.append: %s is closed" w.path)
  | Some oc ->
      output_string oc (frame payload ^ "\n");
      flush oc;
      Unix.fsync w.fd

let close w =
  match w.oc with
  | None -> ()
  | Some oc ->
      w.oc <- None;
      close_out_noerr oc
