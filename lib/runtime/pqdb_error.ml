type t =
  | Invalid_probability of { context : string; detail : string }
  | Malformed_input of { source : string; detail : string }
  | Task_failure of { index : int; inner : exn }
  | Injected of string
  | Timeout of { site : string; seconds : float }
  | Busy of { site : string; detail : string }
  | Unsatisfiable_condition of { context : string; detail : string }

exception Error of t

let error t = raise (Error t)
let invalid_probability ~context detail = error (Invalid_probability { context; detail })
let malformed ~source detail = error (Malformed_input { source; detail })
let timeout ~site seconds = error (Timeout { site; seconds })
let busy ~site detail = error (Busy { site; detail })
let unsatisfiable ~context detail = error (Unsatisfiable_condition { context; detail })

let to_string = function
  | Invalid_probability { context; detail } ->
      Printf.sprintf "%s: %s" context detail
  | Malformed_input { source; detail } ->
      Printf.sprintf "malformed input in %s: %s" source detail
  | Task_failure { index; inner } ->
      Printf.sprintf "task %d failed: %s" index (Printexc.to_string inner)
  | Injected name -> Printf.sprintf "injected fault %S" name
  | Timeout { site; seconds } ->
      Printf.sprintf "timeout in %s after %gs" site seconds
  | Busy { site; detail } -> Printf.sprintf "%s busy: %s" site detail
  | Unsatisfiable_condition { context; detail } ->
      Printf.sprintf "unsatisfiable condition in %s: %s" context detail

let () =
  Printexc.register_printer (function
    | Error t -> Some ("Pqdb_error.Error: " ^ to_string t)
    | _ -> None)
