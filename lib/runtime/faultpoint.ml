type mode = Raise | Delay of float | Stall | Torn

let known =
  [
    "karp_luby.estimator";
    "pool.task";
    "pool.spawn";
    "udb_io.wtable";
    "udb_binary.load";
    "checkpoint.write";
    "shard.run";
    "distrib.send";
    "distrib.recv";
    "distrib.spawn";
    "distrib.tcp.drop";
    "distrib.tcp.stall";
    "distrib.tcp.dup";
    "serve.accept";
    "serve.session";
  ]

let mode_to_string = function
  | Raise -> "raise"
  | Delay s -> Printf.sprintf "delay:%g" (s *. 1000.)
  | Stall -> "stall"
  | Torn -> "torn"

let mode_of_string spec =
  match spec with
  | "raise" -> Ok Raise
  | "stall" -> Ok Stall
  | "torn" -> Ok Torn
  | _ ->
      let prefix = "delay:" in
      let pl = String.length prefix in
      if
        String.length spec > pl && String.equal (String.sub spec 0 pl) prefix
      then
        match float_of_string_opt (String.sub spec pl (String.length spec - pl)) with
        | Some ms when ms >= 0. && Float.is_finite ms -> Ok (Delay (ms /. 1000.))
        | _ -> Error (Printf.sprintf "bad delay %S (want delay:<ms>)" spec)
      else
        Error
          (Printf.sprintf "unknown mode %S (raise | delay:<ms> | stall | torn)"
             spec)

let table : (string, int * mode) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

(* The hot-path guard: sites check this single atomic before touching the
   table, so an unarmed engine pays one load per instrumented call. *)
let any_armed = Atomic.make false
let env_loaded = ref false

(* Stalled threads poll this generation: any registry mutation (disarm,
   re-arm, reset) bumps it and releases them, so "block until disarmed"
   cannot outlive the test that armed it.  The cap bounds a stall nobody
   ever disarms (an env-armed CI matrix run). *)
let stall_gen = Atomic.make 0
let release_stalls () = Atomic.incr stall_gen
let stall_cap_s = Atomic.make 2.0
let set_stall_cap_s s = if s > 0. then Atomic.set stall_cap_s s

let refresh_flag () = Atomic.set any_armed (Hashtbl.length table > 0)

(* Unknown site names in PQDB_FAULTPOINTS are overwhelmingly typos that
   would otherwise never fire; say so on stderr, once, at first use.  The
   entry is still armed — tests legitimately use synthetic site names. *)
let warned_unknown : (string, unit) Hashtbl.t = Hashtbl.create 4

let warn_unknown name =
  if (not (List.mem name known)) && not (Hashtbl.mem warned_unknown name)
  then begin
    Hashtbl.replace warned_unknown name ();
    Printf.eprintf
      "pqdb: warning: PQDB_FAULTPOINTS names unknown site %S (known: %s)\n%!"
      name
      (String.concat ", " known)
  end

let parse_entry entry =
  (* site[:count][@mode] *)
  let base, mode =
    match String.index_opt entry '@' with
    | None -> (entry, Raise)
    | Some i ->
        let spec =
          String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
        in
        let mode =
          match mode_of_string spec with
          | Ok m -> m
          | Error msg ->
              Printf.eprintf "pqdb: warning: PQDB_FAULTPOINTS entry %S: %s\n%!"
                entry msg;
              Raise
        in
        (String.sub entry 0 i, mode)
  in
  let name, count =
    match String.index_opt base ':' with
    | None -> (base, max_int)
    | Some i -> (
        let name = String.sub base 0 i in
        let n = String.sub base (i + 1) (String.length base - i - 1) in
        match int_of_string_opt (String.trim n) with
        | Some c when c > 0 -> (name, c)
        | _ -> (name, max_int))
  in
  (String.trim name, count, mode)

let load_env () =
  match Sys.getenv_opt "PQDB_FAULTPOINTS" with
  | None | Some "" -> ()
  | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun entry ->
             let entry = String.trim entry in
             if entry <> "" then begin
               let name, count, mode = parse_entry entry in
               warn_unknown name;
               Hashtbl.replace table name (count, mode)
             end);
      refresh_flag ()

let ensure_env () =
  if not !env_loaded then begin
    env_loaded := true;
    load_env ()
  end

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ?(count = max_int) ?(mode = Raise) name =
  with_lock (fun () ->
      ensure_env ();
      Hashtbl.replace table name (count, mode);
      refresh_flag ());
  release_stalls ()

let disarm name =
  with_lock (fun () ->
      ensure_env ();
      Hashtbl.remove table name;
      refresh_flag ());
  release_stalls ()

let reset () =
  with_lock (fun () ->
      Hashtbl.reset table;
      load_env ();
      refresh_flag ());
  release_stalls ()

let armed () =
  with_lock (fun () ->
      ensure_env ();
      Hashtbl.fold (fun name _ acc -> name :: acc) table [])

let check name =
  if not (Atomic.get any_armed) && !env_loaded then None
  else
    with_lock (fun () ->
        ensure_env ();
        match Hashtbl.find_opt table name with
        | None -> None
        | Some (n, mode) ->
            if n <= 1 then Hashtbl.remove table name
            else Hashtbl.replace table name (n - 1, mode);
            refresh_flag ();
            Some mode)

let should_fail name = check name <> None

let stall () =
  let g0 = Atomic.get stall_gen in
  let deadline = Unix.gettimeofday () +. Atomic.get stall_cap_s in
  while Atomic.get stall_gen = g0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done

let act name = function
  | Raise | Torn ->
      (* Torn is meaningful only at sites that write frames; everywhere else
         it degrades to the raise behavior, which is still a fault. *)
      Pqdb_error.error (Pqdb_error.Injected name)
  | Delay s -> if s > 0. then Unix.sleepf s
  | Stall -> stall ()

let fire name = match check name with None -> () | Some m -> act name m
