let known =
  [
    "karp_luby.estimator";
    "pool.task";
    "pool.spawn";
    "udb_io.wtable";
    "udb_binary.load";
    "checkpoint.write";
    "shard.run";
    "distrib.send";
    "distrib.recv";
    "distrib.spawn";
    "serve.accept";
  ]

let table : (string, int) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

(* The hot-path guard: sites check this single atomic before touching the
   table, so an unarmed engine pays one load per instrumented call. *)
let any_armed = Atomic.make false
let env_loaded = ref false

let refresh_flag () = Atomic.set any_armed (Hashtbl.length table > 0)

let load_env () =
  match Sys.getenv_opt "PQDB_FAULTPOINTS" with
  | None | Some "" -> ()
  | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun entry ->
             let entry = String.trim entry in
             if entry <> "" then begin
               let name, count =
                 match String.index_opt entry ':' with
                 | None -> (entry, max_int)
                 | Some i -> (
                     let name = String.sub entry 0 i in
                     let n =
                       String.sub entry (i + 1) (String.length entry - i - 1)
                     in
                     match int_of_string_opt (String.trim n) with
                     | Some c when c > 0 -> (name, c)
                     | _ -> (name, max_int))
               in
               Hashtbl.replace table name count
             end);
      refresh_flag ()

let ensure_env () =
  if not !env_loaded then begin
    env_loaded := true;
    load_env ()
  end

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ?(count = max_int) name =
  with_lock (fun () ->
      ensure_env ();
      Hashtbl.replace table name count;
      refresh_flag ())

let disarm name =
  with_lock (fun () ->
      ensure_env ();
      Hashtbl.remove table name;
      refresh_flag ())

let reset () =
  with_lock (fun () ->
      Hashtbl.reset table;
      load_env ();
      refresh_flag ())

let armed () =
  with_lock (fun () ->
      ensure_env ();
      Hashtbl.fold (fun name _ acc -> name :: acc) table [])

let should_fail name =
  if not (Atomic.get any_armed) && !env_loaded then false
  else
    with_lock (fun () ->
        ensure_env ();
        match Hashtbl.find_opt table name with
        | None -> false
        | Some n ->
            if n <= 1 then Hashtbl.remove table name
            else Hashtbl.replace table name (n - 1);
            refresh_flag ();
            true)

let fire name =
  if should_fail name then Pqdb_error.error (Pqdb_error.Injected name)
