(** Typed errors for the library boundaries.

    The engine's internal invariants keep using [Invalid_argument] /
    [assert]; this module covers the places where the cause is {e outside}
    the library — malformed external data, invalid probabilities handed in
    by a caller, a worker task blowing up, or an injected fault — so that
    front ends can catch one exception type and render a friendly message
    instead of a raw trace, and so tests can assert on structure rather than
    on message strings. *)

type t =
  | Invalid_probability of { context : string; detail : string }
      (** A probability or weight outside what the model admits: negative,
          greater than 1, NaN, or a distribution whose mass does not sum
          to 1.  [context] names the operation (e.g. ["Wtable.add_var"],
          ["repair-key"]). *)
  | Malformed_input of { source : string; detail : string }
      (** External data that does not parse or is internally inconsistent
          (truncated CSV, non-dense variable ids, duplicate rows).  [source]
          names the file or stream. *)
  | Task_failure of { index : int; inner : exn }
      (** A pool task raised.  [index] is the failing task's index in the
          job; [inner] is the original exception. *)
  | Injected of string
      (** A {!Faultpoint} fired.  Carries the fault point's name. *)
  | Timeout of { site : string; seconds : float }
      (** An I/O deadline expired.  [site] names the operation (e.g.
          ["distrib.recv"], ["serve.client"]); [seconds] is the deadline
          that was exceeded. *)
  | Busy of { site : string; detail : string }
      (** A bounded resource shed the request instead of queueing it
          (e.g. the serve daemon at its in-flight session limit).  The
          caller may retry with backoff. *)
  | Unsatisfiable_condition of { context : string; detail : string }
      (** Conditioning on a constraint set whose probability is zero — or,
          for anytime estimates, whose certified interval cannot be bounded
          away from zero — so the renormalized confidence [Pr(q ∧ c)/Pr(c)]
          is undefined.  [context] names the operation (e.g.
          ["Condition.solve"]); [detail] carries the constraint set or the
          straddling interval. *)

exception Error of t

val error : t -> 'a
(** [raise (Error t)], typed as bottom for use in expression position. *)

val invalid_probability : context:string -> string -> 'a
val malformed : source:string -> string -> 'a
val timeout : site:string -> float -> 'a
val busy : site:string -> string -> 'a
val unsatisfiable : context:string -> string -> 'a

val to_string : t -> string
(** Human-readable one-liner (also installed as the [Printexc] printer for
    {!Error}, so uncaught typed errors render readably). *)
