(** Append-only, CRC-guarded journals for crash-recoverable batch runs.

    A journal is a text file: a magic header line followed by one framed
    record per line, [r <crc32-hex> <payload>].  Records are appended and
    fsync'd one at a time, so a process killed at any point leaves a journal
    whose every record but possibly the last is intact.  Reading applies a
    {e torn-tail} rule: a final line that is incomplete (no newline) or fails
    its CRC is silently dropped — exactly the damage a crash mid-append can
    cause — while any damage {e before} the tail (a bit-flipped record, a
    record split in two) raises the typed
    {!Pqdb_error.Malformed_input} naming the journal path and the 0-based
    record index, because mid-file corruption can never be produced by a
    crash and must not be silently skipped.

    Payloads must be newline-free; framing does not escape.  The layer knows
    nothing about payload contents — shard records, their fingerprints and
    duplicate policy live in [Montecarlo.Shard].

    The [checkpoint.write] fault point fires inside {!append}, letting tests
    and CI drive the journal down its failure path. *)

type writer

val magic : string
(** First line of every journal. *)

val crc32 : string -> int32
(** IEEE CRC-32 of a string — the checksum used by the journal frames, the
    distrib protocol and the binary storage segments. *)

val crc32_hex : string -> string
(** Lower-case 8-hex-digit rendering of {!crc32} (exposed so tests can
    craft corrupt and conflicting journals, and callers can fingerprint
    payload components). *)

val read : string -> string list
(** Validated record payloads of a journal, torn tail dropped.  A missing or
    empty file reads as [[]] (a fresh journal).
    @raise Pqdb_error.Error ([Malformed_input]) on a bad header or on
    corruption before the final record. *)

val open_writer : ?resume:bool -> string -> writer * string list
(** Open a journal for appending.  With [~resume:true] the existing file is
    validated first: its torn tail (if any) is truncated away so subsequent
    appends start on a clean record boundary, and the surviving payloads are
    returned.  With [resume] false (the default) the file is truncated to
    empty.  Either way the header is (re)written when the valid prefix is
    empty, and the returned payload list is what a reader would have seen.
    @raise Pqdb_error.Error as {!read} when resuming a corrupt journal.
    @raise Sys_error / Unix.Unix_error on I/O failure. *)

val append : writer -> string -> unit
(** Frame, write, flush and fsync one record.
    @raise Invalid_argument when the payload contains a newline.
    @raise Pqdb_error.Error ([Injected "checkpoint.write"]) under an armed
    fault point; I/O errors surface as exceptions for the caller's retry
    policy. *)

val close : writer -> unit
(** Flush and close.  Idempotent. *)
