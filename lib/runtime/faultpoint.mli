(** Behavioral fault-injection registry.

    A fault point is a named site in the engine (see {!known}:
    ["karp_luby.estimator"], ["pool.task"], ["pool.spawn"],
    ["udb_io.wtable"], ["udb_binary.load"], ["checkpoint.write"],
    ["shard.run"], ["distrib.send"], ["distrib.recv"], ["distrib.spawn"],
    ["distrib.tcp.drop"], ["distrib.tcp.stall"], ["distrib.tcp.dup"],
    ["serve.accept"], ["serve.session"]) that calls {!fire}, {!check} or
    {!should_fail}.  Nothing happens unless the point is {e armed} —
    programmatically via {!arm}, or through the [PQDB_FAULTPOINTS]
    environment variable, a comma-separated list of
    [name[:count][@mode]] entries read once at first use, where [count]
    bounds how many times the site fires (default: forever) and [mode]
    selects the {e behavior}:

    - [raise] (default) — raise [Pqdb_error.Error (Injected name)];
    - [delay:<ms>] — sleep that many milliseconds, then proceed normally;
    - [stall] — block until the site is disarmed (or any registry
      mutation), capped at {!set_stall_cap_s} seconds;
    - [torn] — at frame/record-writing sites, emit a truncated write and
      then raise [Injected]; elsewhere it degrades to [raise].

    Unknown site names are armed anyway (tests use synthetic names) but
    warned about on stderr once — in an env spec they are almost always
    typos that would otherwise never fire.

    The unarmed fast path is one atomic load, so instrumented hot paths stay
    free when no injection is configured.  Arming/consuming is serialized by
    a mutex and safe to use from pool worker domains. *)

type mode = Raise | Delay of float  (** seconds *) | Stall | Torn

val mode_of_string : string -> (mode, string) result
(** Parse the [@mode] suffix syntax: ["raise"], ["delay:<ms>"], ["stall"],
    ["torn"].  [Error] carries a human-readable reason. *)

val mode_to_string : mode -> string

val known : string list
(** Every site instrumented in the tree, for CLI/tooling validation and
    [--help] discoverability.  Arming an unknown name is legal (it simply
    never fires) but almost always a typo — front ends should check against
    this list and say so. *)

val arm : ?count:int -> ?mode:mode -> string -> unit
(** Arm [name].  [count] bounds how many times it fires (default:
    unlimited); [mode] selects the behavior (default: {!Raise}). *)

val disarm : string -> unit
(** Disarm [name] and release any thread blocked in a [Stall] at any
    site. *)

val reset : unit -> unit
(** Clear every programmatic arm, then re-apply [PQDB_FAULTPOINTS].
    Releases stalled threads. *)

val armed : unit -> string list
(** Names currently armed (for diagnostics; does not consume shots). *)

val set_stall_cap_s : float -> unit
(** Upper bound (seconds, default 2.0) on how long a [Stall] blocks when
    nobody disarms it — the backstop that keeps env-armed CI runs finite.
    Non-positive values are ignored. *)

val check : string -> mode option
(** [Some mode] iff [name] is armed, consuming one shot.  For sites that
    implement a mode's behavior themselves (torn writers); everyone else
    should use {!fire}. *)

val act : string -> mode -> unit
(** Perform [mode]'s behavior for site [name]: sleep, stall, or raise.
    Use after {!check} at sites that special-case only some modes. *)

val should_fail : string -> bool
(** [true] iff [name] is armed, consuming one shot.  For sites that degrade
    in place rather than raise.  Ignores the armed mode. *)

val fire : string -> unit
(** Consume one shot of [name] if armed and perform its behavior: [Raise]
    and [Torn] raise [Pqdb_error.Error (Injected name)], [Delay] sleeps,
    [Stall] blocks until release or cap. *)
