(** Fault-injection registry.

    A fault point is a named site in the engine (see {!known}:
    ["karp_luby.estimator"], ["pool.task"], ["pool.spawn"],
    ["udb_io.wtable"], ["udb_binary.load"], ["checkpoint.write"],
    ["shard.run"], ["distrib.send"], ["distrib.recv"],
    ["distrib.spawn"]) that calls
    {!fire} or {!should_fail}.  Nothing
    happens unless the point is {e armed} — programmatically via {!arm}, or
    through the [PQDB_FAULTPOINTS] environment variable, a comma-separated
    list of [name] (fires forever) or [name:count] (fires [count] times)
    entries, read once at first use.  Tests and CI use this to drive the
    estimator, the domain pool and the loaders down their degradation paths
    on demand.

    The unarmed fast path is one atomic load, so instrumented hot paths stay
    free when no injection is configured.  Arming/consuming is serialized by
    a mutex and safe to use from pool worker domains. *)

val known : string list
(** Every site instrumented in the tree, for CLI/tooling validation and
    [--help] discoverability.  Arming an unknown name is legal (it simply
    never fires) but almost always a typo — front ends should check against
    this list and say so. *)

val arm : ?count:int -> string -> unit
(** Arm [name].  [count] bounds how many times it fires (default:
    unlimited). *)

val disarm : string -> unit

val reset : unit -> unit
(** Clear every programmatic arm, then re-apply [PQDB_FAULTPOINTS]. *)

val armed : unit -> string list
(** Names currently armed (for diagnostics; does not consume shots). *)

val should_fail : string -> bool
(** [true] iff [name] is armed, consuming one shot.  For sites that degrade
    in place rather than raise. *)

val fire : string -> unit
(** @raise Pqdb_error.Error [(Injected name)] iff [name] is armed,
    consuming one shot. *)
