open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
module Q = Rational

let random_tuple rng ~width ~domain =
  Tuple.of_list (List.init width (fun _ -> Value.Int (Rng.int rng domain)))

let random_relation rng ~attrs ~rows ~domain =
  let width = List.length attrs in
  Relation.of_list (Schema.of_list attrs)
    (List.init rows (fun _ -> random_tuple rng ~width ~domain))

let weighted_relation rng ~attrs ~rows ~domain ~weight =
  let width = List.length attrs in
  let schema = Schema.of_list (attrs @ [ weight ]) in
  Relation.of_list schema
    (List.init rows (fun _ ->
         Tuple.concat
           (random_tuple rng ~width ~domain)
           (Tuple.of_list [ Value.Int (1 + Rng.int rng 10) ])))

(* Probability in tenths, in (0, 1) exclusive, as an exact rational. *)
let random_proper_prob rng =
  let num = 1 + Rng.int rng 9 in
  (Q.of_ints num 10, Q.of_ints (10 - num) 10)

let tuple_independent rng w ~attrs ~rows ~domain =
  let width = List.length attrs in
  let schema = Schema.of_list attrs in
  let rows =
    List.init rows (fun _ ->
        let p, q = random_proper_prob rng in
        let var = Wtable.add_var w [ q; p ] in
        (Assignment.singleton var 1, random_tuple rng ~width ~domain))
  in
  Urelation.make schema rows

let random_dnf rng w ~vars ~clauses ~clause_len =
  let ids =
    Array.init vars (fun _ ->
        let p, q = random_proper_prob rng in
        Wtable.add_var w [ q; p ])
  in
  let clause () =
    let len = max 1 (min clause_len vars) in
    let chosen = ref [] in
    for _ = 1 to len do
      let v = ids.(Rng.int rng vars) in
      if not (List.mem_assoc v !chosen) then
        chosen := (v, Rng.int rng 2) :: !chosen
    done;
    Assignment.of_list !chosen
  in
  List.init clauses (fun _ -> clause ())

let bernoulli_dnf _rng w ~p =
  let num = int_of_float (Float.round (p *. 1000.)) in
  let num = max 1 (min 999 num) in
  let var = Wtable.add_var w [ Q.of_ints (1000 - num) 1000; Q.of_ints num 1000 ] in
  [ Assignment.singleton var 1 ]

(* A whole storable database.  Every value is Int/Str/Rat — types whose text
   CSV rendering round-trips exactly — and rationals stay non-integral
   (tenths with numerator 1..9) so they re-parse as rationals, which keeps
   text and binary images of the same db byte-comparable after
   canonicalisation.  Floats are deliberately absent: text CSV renders them
   with %g and would break cross-format identity. *)
let uncertain_db rng ~tuples ~clauses =
  if tuples < 0 then invalid_arg "Gen.uncertain_db: tuples must be >= 0";
  if clauses < 1 then invalid_arg "Gen.uncertain_db: clauses must be >= 1";
  let clauses = min 3 clauses in
  let udb = Udb.create () in
  let w = Udb.wtable udb in
  let nvars = max 1 ((tuples + 2) / 3) in
  let vars =
    Array.init nvars (fun _ ->
        let p, q = random_proper_prob rng in
        Wtable.add_var w [ q; p ])
  in
  let tags = [| "alpha"; "beta"; "gamma"; "delta" |] in
  let rows =
    List.concat
      (List.init tuples (fun i ->
           let t =
             Tuple.of_list
               [
                 Value.Int i;
                 Value.Str tags.(Rng.int rng (Array.length tags));
                 Value.of_ints (1 + Rng.int rng 9) 10;
               ]
           in
           List.init
             (1 + Rng.int rng clauses)
             (fun _ ->
               let v = vars.(Rng.int rng nvars) in
               let v2 = vars.(Rng.int rng nvars) in
               let cond =
                 if v2 = v || Rng.bool rng then Assignment.singleton v 1
                 else Assignment.of_list [ (v, 1); (v2, Rng.int rng 2) ]
               in
               (cond, t))))
  in
  Udb.add_urelation udb "events"
    (Urelation.make (Schema.of_list [ "id"; "tag"; "score" ]) rows);
  Udb.add_complete udb "tags"
    (Relation.of_list
       (Schema.of_list [ "tag"; "weight" ])
       (Array.to_list
          (Array.mapi
             (fun k tag -> Tuple.of_list [ Value.Str tag; Value.Int (k + 1) ])
             tags)));
  udb

(* Duplicate-heavy dedup fixture: every entity id carries 1..max_dups
   independent candidate tuples agreeing on the key [id] and differing on
   [name] — the Example 2.2 cleaning scenario at scale.  Conditioning on
   fd[id -> name](people) renormalizes away the worlds where an entity
   keeps two names; with several candidates per entity the constraint is
   improbable enough that conditioned and unconditioned answers separate
   clearly.  Values are Int/Str only, so text and binary images stay
   canonically byte-identical (same contract as {!uncertain_db}). *)
let add_dirty_people rng udb ~entities ~max_dups =
  if entities < 0 then
    invalid_arg "Gen.add_dirty_people: entities must be >= 0";
  if max_dups < 1 then
    invalid_arg "Gen.add_dirty_people: max_dups must be >= 1";
  let w = Udb.wtable udb in
  let rows =
    List.concat
      (List.init entities (fun id ->
           List.init
             (1 + Rng.int rng max_dups)
             (fun k ->
               let p, q = random_proper_prob rng in
               let v = Wtable.add_var w [ q; p ] in
               ( Assignment.singleton v 1,
                 Tuple.of_list
                   [ Value.Int id; Value.Str (Printf.sprintf "n%d_%d" id k) ]
               ))))
  in
  Udb.add_urelation udb "people"
    (Urelation.make (Schema.of_list [ "id"; "name" ]) rows)

let dirty_db rng ~entities ~max_dups =
  let udb = Udb.create () in
  add_dirty_people rng udb ~entities ~max_dups;
  udb

let linear_predicate rng ~arity =
  let k = arity in
  let open Pqdb_ast.Apred in
  let coef () = Rng.float_range rng (-2.) 2. in
  let sum =
    List.fold_left
      (fun acc i ->
        let term = Mul (Const (coef ()), Var i) in
        match acc with None -> Some term | Some e -> Some (Add (e, term)))
      None
      (List.init k Fun.id)
  in
  let lhs = Option.value ~default:(Const 0.) sum in
  ge lhs (Const (Rng.float_range rng (-1.) 1.))
