(** Random-instance generators for benchmarks and property tests.

    All generators are deterministic given the {!Pqdb_numeric.Rng.t}; the
    bench harness seeds them explicitly so every experiment is
    reproducible. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

val random_relation :
  Rng.t -> attrs:string list -> rows:int -> domain:int -> Relation.t
(** Uniform random integer tuples over [0, domain). Duplicates collapse, so
    cardinality may be below [rows]. *)

val weighted_relation :
  Rng.t -> attrs:string list -> rows:int -> domain:int -> weight:string ->
  Relation.t
(** Like {!random_relation} plus a positive integer weight column (1..10) —
    repair-key fodder. *)

val tuple_independent :
  Rng.t -> Wtable.t -> attrs:string list -> rows:int -> domain:int ->
  Urelation.t
(** A tuple-independent U-relation: each tuple gets its own Bernoulli
    variable with probability drawn from (0, 1) (in tenths, so exact
    rationals). *)

val random_dnf :
  Rng.t -> Wtable.t -> vars:int -> clauses:int -> clause_len:int ->
  Assignment.t list
(** Fresh Bernoulli variables and random clauses over them — the
    confidence-computation microbenchmark instance.  Clause length is capped
    by [vars]; duplicate variables within a clause are merged. *)

val bernoulli_dnf :
  Rng.t -> Wtable.t -> p:float -> Assignment.t list
(** A single-clause DNF whose weight is exactly [p] (to 3 decimals) — used
    when an experiment needs an approximable value with a known truth. *)

val uncertain_db :
  Rng.t -> tuples:int -> clauses:int -> Udb.t
(** A complete storable database: an uncertain ["events"] relation
    ([id:Int], [tag:Str], [score:Rat]) where each tuple carries 1 to
    [clauses] (capped at 3) clause rows over a shared pool of exact-tenths
    Bernoulli variables, plus a small complete ["tags"] relation.  Value
    types are restricted to those whose text rendering round-trips exactly,
    so the same instance saved as text and binary is canonically
    byte-identical — the [pqdb gen] / [pqdb convert --verify] fixture. *)

val add_dirty_people :
  Rng.t -> Udb.t -> entities:int -> max_dups:int -> unit
(** Add a duplicate-heavy ["people"] relation ([id:Int], [name:Str]) to the
    database: each of [entities] ids carries 1 to [max_dups] independent
    Bernoulli candidate tuples sharing the id but not the name — the
    deduplication fixture behind [pqdb gen --dirty] and the conditioning
    bench.  Conditioning on [fd[id -> name](people)] renormalizes away
    worlds where an id keeps two names.  Int/Str values only, so the
    text/binary round-trip identity of {!uncertain_db} is preserved. *)

val dirty_db : Rng.t -> entities:int -> max_dups:int -> Udb.t
(** A fresh database holding only the {!add_dirty_people} relation. *)

val linear_predicate :
  Rng.t -> arity:int -> Pqdb_ast.Apred.t
(** Random linear inequality [Σ aᵢxᵢ ≥ b] with coefficients in [-2, 2]. *)
